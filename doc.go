// Package columbas is a from-scratch Go reproduction of Columba S, the
// scalable co-layout design automation tool for microfluidic large-scale
// integration (mLSI) published at DAC 2018 (Tseng et al., DOI
// 10.1145/3195970.3196011).
//
// The library synthesizes manufacturing-ready two-layer mLSI chip designs
// from plain-text netlist descriptions. The flow (Figure 5 of the paper)
// is: netlist planarization -> MILP-based layout generation over merged
// rectangles -> layout validation (explicit module placement, channel
// routing, fluid-inlet synthesis) -> binary multiplexer synthesis ->
// AutoCAD-script / SVG / JSON export.
//
// Entry points:
//
//   - internal/core: the end-to-end flow (core.Synthesize)
//   - internal/netlist: the input language
//   - internal/cases: the paper's six evaluation applications
//   - internal/bench: the Table 1 / Figure 1 harness
//   - cmd/columbas, cmd/muxsim, cmd/benchtab: command-line tools
//
// The MILP solver the paper delegates to Gurobi is implemented in pure Go
// (internal/lp + internal/milp); see DESIGN.md for the substitution notes
// and EXPERIMENTS.md for paper-vs-measured results.
package columbas
