// Warm-start measurement harness: the same end-to-end synthesis (parse →
// planarize → layout MILP → validate) run with branch-and-bound basis
// reuse on (the default) and off (the seed solver's cold behaviour), on
// the chip9 / chip16 / chip64 cases. The reported custom metrics are the
// before/after numbers recorded in EXPERIMENTS.md:
//
//	make bench-warmstart
//
// Workers is pinned to 1 so the pivot counts are deterministic — the
// search order, and therefore the LP sequence, is identical between the
// warm and cold runs; only the per-LP work changes.
package columbas

import (
	"fmt"
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
	"columbas/internal/milp"
)

func warmstartOpts(noWarm bool) core.Options {
	o := core.DefaultOptions()
	o.Layout.TimeLimit = 60 * time.Second
	o.Layout.StallLimit = 40
	o.Layout.Gap = 0.1
	o.Layout.Workers = 1
	o.Layout.NoWarmStart = noWarm
	return o
}

func benchWarmstart(b *testing.B, caseID string, noWarm bool) {
	c, err := cases.Get(caseID)
	if err != nil {
		b.Fatal(err)
	}
	var st milp.SearchStats
	for i := 0; i < b.N; i++ {
		n, err := c.Netlist()
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Synthesize(n, warmstartOpts(noWarm))
		if err != nil {
			b.Fatal(err)
		}
		if !res.DRC.Clean() {
			b.Fatalf("%s: design not DRC-clean", caseID)
		}
		st = res.Plan.Stats.Search
	}
	b.ReportMetric(float64(st.SimplexPivots), "pivots")
	b.ReportMetric(float64(st.LPSolves), "lp_solves")
	b.ReportMetric(float64(st.WarmStarts), "warm_starts")
	b.ReportMetric(float64(st.WarmStartFallbacks), "warm_fallbacks")
	b.ReportMetric(float64(st.Phase1Rows), "phase1_rows")
}

func BenchmarkWarmstart(b *testing.B) {
	for _, id := range []string{"chip9", "chip16", "chip64"} {
		for _, mode := range []struct {
			name   string
			noWarm bool
		}{{"warm", false}, {"cold", true}} {
			b.Run(fmt.Sprintf("%s/%s", id, mode.name), func(b *testing.B) {
				benchWarmstart(b, id, mode.noWarm)
			})
		}
	}
}

// TestWarmStartPivotReductionChip16 pins the acceptance criterion of the
// warm-start kernel: on the chip16 case, basis reuse must cut total
// simplex pivots by at least 25% against the cold solver at an identical
// search order (Workers=1), while reaching a DRC-clean design of equal
// quality. Skipped in -short mode (two full mid-size syntheses).
func TestWarmStartPivotReductionChip16(t *testing.T) {
	if testing.Short() {
		t.Skip("pivot-reduction measurement skipped in -short mode")
	}
	c, err := cases.Get("chip16")
	if err != nil {
		t.Fatal(err)
	}
	run := func(noWarm bool) *core.Result {
		n, err := c.Netlist()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Synthesize(n, warmstartOpts(noWarm))
		if err != nil {
			t.Fatal(err)
		}
		if !res.DRC.Clean() {
			t.Fatal("design not DRC-clean")
		}
		return res
	}
	warm := run(false).Plan.Stats
	cold := run(true).Plan.Stats
	if warm.Search.WarmStarts == 0 {
		t.Fatalf("warm run never warm-started: %+v", warm.Search)
	}
	if cold.Search.WarmStarts != 0 {
		t.Fatalf("cold run warm-started: %+v", cold.Search)
	}
	wp, cp := warm.Search.SimplexPivots, cold.Search.SimplexPivots
	if cp == 0 {
		t.Fatalf("cold run did no simplex work (pivots=0, nodes=%d)", cold.Search.NodesExplored)
	}
	reduction := 1 - float64(wp)/float64(cp)
	t.Logf("chip16 pivots: cold=%d warm=%d (%.1f%% reduction); lp_solves cold=%d warm=%d; warm_starts=%d fallbacks=%d phase1_rows cold=%d warm=%d",
		cp, wp, reduction*100, cold.Search.LPSolves, warm.Search.LPSolves,
		warm.Search.WarmStarts, warm.Search.WarmStartFallbacks,
		cold.Search.Phase1Rows, warm.Search.Phase1Rows)
	if reduction < 0.25 {
		t.Errorf("pivot reduction %.1f%% < 25%% (cold=%d warm=%d)", reduction*100, cp, wp)
	}
}
