package sim

import (
	"fmt"
	"time"

	"columbas/internal/module"
	"columbas/internal/netlist"
	"columbas/internal/validate"
)

// Protocol is a high-level application schedule: a sequence of fluidic
// operations compiled down to valve actuations. Because Columba S controls
// every independent valve individually through its multiplexers, the same
// design executes any protocol — the reconfigurability property that
// distinguishes it from pressure-shared designs (Section 1).
type Protocol struct {
	Name string
	ops  []op
}

type op struct {
	kind string
	unit string
	peer string
	n    int
}

// NewProtocol returns an empty protocol.
func NewProtocol(name string) *Protocol { return &Protocol{Name: name} }

// Mix runs n peristaltic pump cycles on a rotary mixer: the in/out valves
// close, then the three pump valves actuate in rotation.
func (p *Protocol) Mix(unit string, n int) *Protocol {
	p.ops = append(p.ops, op{kind: "mix", unit: unit, n: n})
	return p
}

// Transfer moves fluid from one unit into the next: both transfer valves
// open, then close again.
func (p *Protocol) Transfer(from, to string) *Protocol {
	p.ops = append(p.ops, op{kind: "transfer", unit: from, peer: to})
	return p
}

// Wash flushes a sieve mixer: the sieve valve pairs close (retaining the
// beads), the in/out valves open for the wash flow, then everything
// reopens (Figure 3(c), citing [20]).
func (p *Protocol) Wash(unit string) *Protocol {
	p.ops = append(p.ops, op{kind: "wash", unit: unit})
	return p
}

// Capture closes the separation valves of a cell-trap mixer (Figure 3(d),
// citing [18]).
func (p *Protocol) Capture(unit string) *Protocol {
	p.ops = append(p.ops, op{kind: "capture", unit: unit})
	return p
}

// Release reopens the separation valves of a cell-trap mixer.
func (p *Protocol) Release(unit string) *Protocol {
	p.ops = append(p.ops, op{kind: "release", unit: unit})
	return p
}

// Ops returns the number of high-level operations.
func (p *Protocol) Ops() int { return len(p.ops) }

// Compile lowers the protocol to a valve schedule for a specific design,
// verifying that every referenced unit exists and supports the operation.
func (p *Protocol) Compile(d *validate.Design) ([]Step, error) {
	var steps []Step
	add := func(name string, pressurized bool) error {
		// Resolve through the module line: parallel lanes share channels.
		ch, err := d.ChannelFor(name)
		if err != nil {
			return fmt.Errorf("sim: protocol %q: %w", p.Name, err)
		}
		steps = append(steps, Step{Channel: ch, Pressurized: pressurized})
		return nil
	}
	mixer := func(u string, opts ...netlist.MixerOpt) (*module.Instance, error) {
		in := d.Module(u)
		if in == nil {
			return nil, fmt.Errorf("sim: protocol %q references unknown unit %q", p.Name, u)
		}
		if in.Kind != module.KindMixer {
			return nil, fmt.Errorf("sim: unit %q is not a mixer", u)
		}
		for _, o := range opts {
			if in.Opt != o {
				return nil, fmt.Errorf("sim: mixer %q lacks the %v configuration", u, o)
			}
		}
		return in, nil
	}
	for _, o := range p.ops {
		switch o.kind {
		case "mix":
			if _, err := mixer(o.unit); err != nil {
				return nil, err
			}
			if err := add(o.unit+".in", true); err != nil {
				return nil, err
			}
			if err := add(o.unit+".out", true); err != nil {
				return nil, err
			}
			for c := 0; c < o.n; c++ {
				for ph := 1; ph <= 3; ph++ {
					if err := add(fmt.Sprintf("%s.pump%d", o.unit, ph), true); err != nil {
						return nil, err
					}
					if err := add(fmt.Sprintf("%s.pump%d", o.unit, ph), false); err != nil {
						return nil, err
					}
				}
			}
			if err := add(o.unit+".in", false); err != nil {
				return nil, err
			}
			if err := add(o.unit+".out", false); err != nil {
				return nil, err
			}
		case "transfer":
			if d.Module(o.unit) == nil || d.Module(o.peer) == nil {
				return nil, fmt.Errorf("sim: transfer between unknown units %q -> %q", o.unit, o.peer)
			}
			// Open both transfer valves (vent), then close again.
			if err := add(o.unit+".out", false); err != nil {
				return nil, err
			}
			if err := add(o.peer+".in", false); err != nil {
				return nil, err
			}
			if err := add(o.unit+".out", true); err != nil {
				return nil, err
			}
			if err := add(o.peer+".in", true); err != nil {
				return nil, err
			}
		case "wash":
			if _, err := mixer(o.unit, netlist.Sieve); err != nil {
				return nil, err
			}
			for _, s := range []string{"A", "B"} {
				if err := add(o.unit+".sieve"+s, true); err != nil {
					return nil, err
				}
			}
			if err := add(o.unit+".in", false); err != nil {
				return nil, err
			}
			if err := add(o.unit+".out", false); err != nil {
				return nil, err
			}
			for _, s := range []string{"A", "B"} {
				if err := add(o.unit+".sieve"+s, false); err != nil {
					return nil, err
				}
			}
		case "capture":
			if _, err := mixer(o.unit, netlist.CellTrap); err != nil {
				return nil, err
			}
			for _, s := range []string{"A", "B"} {
				if err := add(o.unit+".sep"+s, true); err != nil {
					return nil, err
				}
			}
		case "release":
			if _, err := mixer(o.unit, netlist.CellTrap); err != nil {
				return nil, err
			}
			for _, s := range []string{"A", "B"} {
				if err := add(o.unit+".sep"+s, false); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("sim: unknown operation %q", o.kind)
		}
	}
	return steps, nil
}

// Execute compiles and runs the protocol on a controller, returning the
// simulated execution time.
func (p *Protocol) Execute(ctl *Controller) (time.Duration, error) {
	steps, err := p.Compile(ctl.Design())
	if err != nil {
		return 0, err
	}
	return ctl.RunSchedule(steps)
}
