package sim

import (
	"fmt"
	"math"
	"time"

	"columbas/internal/geom"
	"columbas/internal/module"
	"columbas/internal/mux"
	"columbas/internal/validate"
)

// ActuationTime is the time to actuate one valve through the multiplexer
// (10 ms per the paper, citing [22]).
const ActuationTime = 10 * time.Millisecond

// HoldLimit is how long a latched valve holds pressure despite PDMS gas
// permeability (over 10 minutes per the paper, citing [1]).
const HoldLimit = 10 * time.Minute

// Controller drives a design's valves through its multiplexers. Channels
// are addressed one at a time per multiplexer; pressure latches once set,
// but PDMS is gas permeable, so a latched valve only holds for HoldLimit
// before it needs refreshing — the controller tracks set times and
// reports hold violations.
type Controller struct {
	d     *validate.Design
	state map[string]bool          // control channel name -> pressurised
	setAt map[string]time.Duration // Elapsed value at the last pressurise

	// Elapsed accumulates simulated actuation time.
	Elapsed time.Duration
	// Actuations counts addressing operations.
	Actuations int
}

// NewController returns a controller with all channels vented.
func NewController(d *validate.Design) *Controller {
	return &Controller{d: d, state: map[string]bool{}, setAt: map[string]time.Duration{}}
}

// HoldViolation reports a latched valve held beyond the PDMS limit.
type HoldViolation struct {
	Channel string
	Held    time.Duration
}

// HoldViolations lists channels that have stayed pressurised longer than
// HoldLimit of simulated time without a refresh.
func (c *Controller) HoldViolations() []HoldViolation {
	var out []HoldViolation
	for _, ch := range c.d.Ctrl {
		if !c.state[ch.Name] {
			continue
		}
		if held := c.Elapsed - c.setAt[ch.Name]; held > HoldLimit {
			out = append(out, HoldViolation{Channel: ch.Name, Held: held})
		}
	}
	return out
}

// Refresh re-addresses a latched channel to renew its pressure (resets
// its hold clock) without changing its state.
func (c *Controller) Refresh(name string) error {
	if !c.state[name] {
		return fmt.Errorf("sim: channel %q is not pressurised", name)
	}
	return c.Set(name, true)
}

// Design returns the controlled design.
func (c *Controller) Design() *validate.Design { return c.d }

// channel finds a control channel by name.
func (c *Controller) channel(name string) (*validate.CtrlChannel, error) {
	for i := range c.d.Ctrl {
		if c.d.Ctrl[i].Name == name {
			return &c.d.Ctrl[i], nil
		}
	}
	return nil, fmt.Errorf("sim: unknown control channel %q", name)
}

// muxFor returns the multiplexer serving the channel.
func (c *Controller) muxFor(ch *validate.CtrlChannel) (*mux.Mux, error) {
	m := c.d.MuxBottom
	if ch.Top {
		m = c.d.MuxTop
	}
	if m == nil {
		return nil, fmt.Errorf("sim: channel %q has no multiplexer", ch.Name)
	}
	return m, nil
}

// Set addresses the channel through its multiplexer and latches the given
// pressure state. It verifies the multiplexer isolation property: under
// the selection configuration, the addressed channel is the only open
// pressure-transportation path of that multiplexer.
func (c *Controller) Set(name string, pressurised bool) error {
	ch, err := c.channel(name)
	if err != nil {
		return err
	}
	m, err := c.muxFor(ch)
	if err != nil {
		return err
	}
	sel, err := m.Select(ch.MuxIndex)
	if err != nil {
		return err
	}
	open := m.Open(sel)
	if len(open) != 1 || open[0] != ch.MuxIndex {
		return fmt.Errorf("sim: MUX isolation violated for %q: open=%v", name, open)
	}
	c.state[name] = pressurised
	c.Elapsed += ActuationTime
	c.Actuations++
	if pressurised {
		c.setAt[name] = c.Elapsed
	} else {
		delete(c.setAt, name)
	}
	return nil
}

// Wait advances the simulated clock (e.g. an incubation phase) without
// actuating anything; latched valves keep ageing toward HoldLimit.
func (c *Controller) Wait(d time.Duration) {
	if d > 0 {
		c.Elapsed += d
	}
}

// Pressurized reports the latched state of a control channel.
func (c *Controller) Pressurized(name string) bool { return c.state[name] }

// PressurizedCount returns the number of latched-pressurised channels.
func (c *Controller) PressurizedCount() int {
	n := 0
	for _, v := range c.state {
		if v {
			n++
		}
	}
	return n
}

// ClosedValves returns the positions of all closed module valves: a valve
// is closed when its control line's channel is pressurised. Control lines
// map to channels by x position within the owning module's block.
func (c *Controller) ClosedValves() []module.Valve {
	var out []module.Valve
	for _, ch := range c.d.Ctrl {
		if !c.state[ch.Name] {
			continue
		}
		for _, m := range c.d.Modules {
			for _, l := range m.Lines {
				if math.Abs(l.X-ch.X) < 0.2 {
					out = append(out, l.Valves...)
				}
			}
		}
	}
	return out
}

// Step is one operation of a scheduling protocol.
type Step struct {
	Channel     string
	Pressurized bool
}

// RunSchedule executes a protocol: a sequence of valve operations,
// addressed sequentially through the multiplexers. It returns the total
// simulated execution time. The same design accepts arbitrary schedules —
// the reconfigurability property that pressure-sharing designs
// (Columba 2.0) lack.
func (c *Controller) RunSchedule(steps []Step) (time.Duration, error) {
	start := c.Elapsed
	for i, s := range steps {
		if err := c.Set(s.Channel, s.Pressurized); err != nil {
			return 0, fmt.Errorf("sim: step %d: %w", i, err)
		}
	}
	return c.Elapsed - start, nil
}

// flowNode is a quantised point on the flow layer.
type flowNode struct{ x, y int }

func nodeOf(p geom.Pt) flowNode {
	return flowNode{int(math.Round(p.X / 10)), int(math.Round(p.Y / 10))}
}

// FlowGraph is the connectivity of the flow layer under a valve state.
type FlowGraph struct {
	adj map[flowNode][]flowNode
}

// BuildFlowGraph constructs flow-layer connectivity with the controller's
// closed valves breaking their segments.
func (c *Controller) BuildFlowGraph() *FlowGraph {
	g := &FlowGraph{adj: map[flowNode][]flowNode{}}
	closed := c.ClosedValves()
	var segs []geom.Seg
	for _, f := range c.d.Flow {
		segs = append(segs, f.Seg)
	}
	for _, m := range c.d.Modules {
		segs = append(segs, m.Flow...)
	}
	// T-junctions: a segment endpoint may land mid-way on another segment
	// (a mixer stub meeting the ring, a junction channel meeting the
	// spine), so every segment is cut at every touching endpoint.
	var pts []geom.Pt
	for _, s := range segs {
		pts = append(pts, s.A, s.B)
	}
	for _, s := range segs {
		g.addSeg(s, pts, closed)
	}
	return g
}

// addSeg splits the segment at touching points and closed valve
// positions; sub-segments on either side of a closed valve stay
// disconnected.
func (g *FlowGraph) addSeg(s geom.Seg, pts []geom.Pt, closed []module.Valve) {
	cuts := []geom.Pt{s.Canon().A, s.Canon().B}
	blocked := map[int]bool{}
	for _, p := range pts {
		if onSeg(s, p) {
			cuts = append(cuts, p)
		}
	}
	for _, v := range closed {
		if onSeg(s, v.At) {
			cuts = append(cuts, v.At)
		}
	}
	// Order cut points along the segment.
	sc := s.Canon()
	horizontal := sc.Horizontal()
	lessP := func(a, b geom.Pt) bool {
		if horizontal {
			return a.X < b.X
		}
		return a.Y < b.Y
	}
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && lessP(cuts[j], cuts[j-1]); j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	// Mark pieces adjacent to a closed valve: the valve point itself is
	// removed from the graph (both incident pieces lose that endpoint).
	for i, p := range cuts {
		for _, v := range closed {
			if p.Eq(v.At) && onSeg(s, v.At) {
				blocked[i] = true
			}
		}
	}
	for i := 0; i+1 < len(cuts); i++ {
		if blocked[i] || blocked[i+1] {
			// Connect the piece only up to (not through) the valve: the
			// piece still exists but its valve-side endpoint is private.
			// Simplest sound model: drop connectivity through the valve
			// by not linking across it — link the piece's open endpoint
			// to a midpoint node.
			mid := geom.Pt{X: (cuts[i].X + cuts[i+1].X) / 2, Y: (cuts[i].Y + cuts[i+1].Y) / 2}
			if !blocked[i] {
				g.link(cuts[i], mid)
			}
			if !blocked[i+1] {
				g.link(mid, cuts[i+1])
			}
			continue
		}
		g.link(cuts[i], cuts[i+1])
	}
}

func (g *FlowGraph) link(a, b geom.Pt) {
	na, nb := nodeOf(a), nodeOf(b)
	if na == nb {
		return
	}
	g.adj[na] = append(g.adj[na], nb)
	g.adj[nb] = append(g.adj[nb], na)
}

// Reachable reports whether fluid can travel between two points of the
// flow layer (e.g. an inlet and a module pin).
func (g *FlowGraph) Reachable(from, to geom.Pt) bool {
	src, dst := nodeOf(from), nodeOf(to)
	if src == dst {
		return true
	}
	seen := map[flowNode]bool{src: true}
	stack := []flowNode{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.adj[n] {
			if nb == dst {
				return true
			}
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return false
}

func onSeg(s geom.Seg, p geom.Pt) bool {
	sc := s.Canon()
	if sc.Horizontal() {
		return math.Abs(p.Y-sc.A.Y) < geom.Eps && p.X >= sc.A.X-geom.Eps && p.X <= sc.B.X+geom.Eps
	}
	ylo := math.Min(sc.A.Y, sc.B.Y)
	yhi := math.Max(sc.A.Y, sc.B.Y)
	return math.Abs(p.X-sc.A.X) < geom.Eps && p.Y >= ylo-geom.Eps && p.Y <= yhi+geom.Eps
}

// InletPoint returns the location of a named fluid terminal.
func InletPoint(d *validate.Design, name string) (geom.Pt, error) {
	for _, in := range d.Inlets {
		if in.Name == name {
			return in.At, nil
		}
	}
	return geom.Pt{}, fmt.Errorf("sim: unknown fluid terminal %q", name)
}
