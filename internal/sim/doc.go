// Package sim simulates the control behaviour of a Columba S design: the
// multiplexer addressing of control channels, the resulting valve states,
// and fluid reachability through the flow layer.
//
// This is the reproduction's stand-in for the paper's fabricated-chip
// demonstrations (Figures 1, 7(c), 8): instead of dye photographs we
// verify mechanically that selecting a control channel through the
// multiplexer pressurises exactly that channel, that the corresponding
// valve blocks its flow channel, and that the same design executes
// different scheduling protocols (the reconfigurability claim of
// Section 1).
//
// Key types: Controller wraps a validate.Design; Select and Run drive
// multiplexer addressing and Protocol execution; RunFaultAnalysis
// evaluates TestVectors against the single-valve Fault universe into a
// FaultReport.
package sim
