package sim

import (
	"strings"
	"testing"
)

func TestFaultKindString(t *testing.T) {
	if StuckClosed.String() != "stuck-closed" || StuckOpen.String() != "stuck-open" {
		t.Error("fault kind strings wrong")
	}
	f := Fault{Channel: "m1.in", Kind: StuckClosed}
	if !strings.Contains(f.String(), "m1.in") {
		t.Errorf("Fault.String = %q", f.String())
	}
}

func TestStuckClosedDetectedByOpenProbe(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	// A probe along the open path detects any stuck-closed valve on it.
	vectors := []TestVector{{From: "sample", To: "waste"}}
	rep, err := c.RunFaultAnalysis(vectors)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Detected {
		if f.Channel == "m1.in" && f.Kind == StuckClosed {
			found = true
		}
	}
	if !found {
		t.Fatal("stuck-closed m1.in must be detected by the open-path probe")
	}
	// Stuck-open faults are NOT detectable by the open probe alone.
	for _, f := range rep.Detected {
		if f.Kind == StuckOpen {
			t.Fatalf("open probe cannot detect %v", f)
		}
	}
}

func TestStuckOpenNeedsPressurisedProbe(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	vectors := []TestVector{
		{From: "sample", To: "waste"},
		{Pressurized: []string{"m1.in"}, From: "sample", To: "waste"},
	}
	rep, err := c.RunFaultAnalysis(vectors)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Detected {
		if f.Channel == "m1.in" && f.Kind == StuckOpen {
			found = true
		}
	}
	if !found {
		t.Fatal("pressurised probe must detect stuck-open m1.in")
	}
}

func TestDefaultVectorsCoverage(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	vectors := DefaultVectors(c)
	if len(vectors) == 0 {
		t.Fatal("no default vectors derived")
	}
	rep, err := c.RunFaultAnalysis(vectors)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 2*len(d.Ctrl) {
		t.Fatalf("fault universe = %d, want %d", rep.Total, 2*len(d.Ctrl))
	}
	cov := rep.Coverage()
	if cov <= 0 || cov > 1 {
		t.Fatalf("coverage = %v", cov)
	}
	// The flow-path valves (in/out of each unit) must all be covered both
	// ways; pump/sieve valves sit off the transport path and may escape
	// these structural vectors.
	for _, want := range []Fault{
		{"m1.in", StuckClosed}, {"m1.in", StuckOpen},
		{"c1.out", StuckClosed}, {"c1.out", StuckOpen},
	} {
		found := false
		for _, f := range rep.Detected {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("fault %v undetected by default vectors", want)
		}
	}
}

func TestFaultAnalysisBadVector(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	if _, err := c.RunFaultAnalysis([]TestVector{{From: "ghost", To: "waste"}}); err == nil {
		t.Fatal("unknown port should error")
	}
	if _, err := c.RunFaultAnalysis([]TestVector{
		{Pressurized: []string{"ghost"}, From: "sample", To: "waste"},
	}); err == nil {
		t.Fatal("unknown channel should error")
	}
}

func TestCoverageEmptyUniverse(t *testing.T) {
	r := &FaultReport{}
	if r.Coverage() != 1 {
		t.Fatal("empty universe is fully covered")
	}
}
