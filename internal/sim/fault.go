package sim

import (
	"fmt"
	"sort"

	"columbas/internal/geom"
	"columbas/internal/module"
)

// Fault models for mLSI valves, following the fault taxonomy of Hu et al.
// (paper reference [19]: testing of flow-based microfluidic biochips).
// A stuck-closed valve blocks its flow channel permanently; a stuck-open
// valve never blocks it.
type FaultKind int

// Valve fault kinds.
const (
	StuckClosed FaultKind = iota
	StuckOpen
)

func (k FaultKind) String() string {
	if k == StuckClosed {
		return "stuck-closed"
	}
	return "stuck-open"
}

// Fault is a single-valve fault site: the control channel that actuates
// the valve(s) and the fault kind.
type Fault struct {
	Channel string
	Kind    FaultKind
}

func (f Fault) String() string { return fmt.Sprintf("%s@%s", f.Kind, f.Channel) }

// TestVector is one observation: with a given set of channels
// pressurised, probe whether fluid can travel between two ports.
type TestVector struct {
	Pressurized []string
	From, To    string
}

// FaultReport is the outcome of a fault-coverage analysis.
type FaultReport struct {
	Total      int
	Detected   []Fault
	Undetected []Fault
}

// Coverage returns the detected fraction.
func (r *FaultReport) Coverage() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(len(r.Detected)) / float64(r.Total)
}

// faultGraph builds the flow graph under a valve state where the faulted
// channel's valves behave per the fault kind.
func (c *Controller) faultGraph(pressurised map[string]bool, fault *Fault) *FlowGraph {
	closed := map[string]bool{}
	for name, p := range pressurised {
		closed[name] = p
	}
	if fault != nil {
		closed[fault.Channel] = fault.Kind == StuckClosed
	}
	var closedValves []module.Valve
	for _, ch := range c.d.Ctrl {
		if !closed[ch.Name] {
			continue
		}
		for _, m := range c.d.Modules {
			for _, l := range m.Lines {
				if absf(l.X-ch.X) < 0.2 {
					closedValves = append(closedValves, l.Valves...)
				}
			}
		}
	}
	g := &FlowGraph{adj: map[flowNode][]flowNode{}}
	var segs []geom.Seg
	for _, f := range c.d.Flow {
		segs = append(segs, f.Seg)
	}
	for _, m := range c.d.Modules {
		segs = append(segs, m.Flow...)
	}
	var pts []geom.Pt
	for _, s := range segs {
		pts = append(pts, s.A, s.B)
	}
	for _, s := range segs {
		g.addSeg(s, pts, closedValves)
	}
	return g
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RunFaultAnalysis simulates every single-valve fault of the design under
// the given test vectors and reports which faults at least one vector
// detects (the fault-free and faulty observations differ).
func (c *Controller) RunFaultAnalysis(vectors []TestVector) (*FaultReport, error) {
	var faults []Fault
	for _, ch := range c.d.Ctrl {
		faults = append(faults, Fault{Channel: ch.Name, Kind: StuckClosed})
		faults = append(faults, Fault{Channel: ch.Name, Kind: StuckOpen})
	}
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Channel != faults[j].Channel {
			return faults[i].Channel < faults[j].Channel
		}
		return faults[i].Kind < faults[j].Kind
	})

	type obs struct {
		from, to geom.Pt
		press    map[string]bool
	}
	var observations []obs
	for vi, v := range vectors {
		from, err := InletPoint(c.d, v.From)
		if err != nil {
			return nil, fmt.Errorf("sim: vector %d: %w", vi, err)
		}
		to, err := InletPoint(c.d, v.To)
		if err != nil {
			return nil, fmt.Errorf("sim: vector %d: %w", vi, err)
		}
		press := map[string]bool{}
		for _, name := range v.Pressurized {
			found := false
			for _, ch := range c.d.Ctrl {
				if ch.Name == name {
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("sim: vector %d pressurises unknown channel %q", vi, name)
			}
			press[name] = true
		}
		observations = append(observations, obs{from, to, press})
	}

	rep := &FaultReport{Total: len(faults)}
	for _, f := range faults {
		detected := false
		for _, o := range observations {
			clean := c.faultGraph(o.press, nil).Reachable(o.from, o.to)
			faulty := c.faultGraph(o.press, &f).Reachable(o.from, o.to)
			if clean != faulty {
				detected = true
				break
			}
		}
		if detected {
			rep.Detected = append(rep.Detected, f)
		} else {
			rep.Undetected = append(rep.Undetected, f)
		}
	}
	return rep, nil
}

// DefaultVectors derives a simple structural test set: for every pair of
// fluid ports that are connected in the fault-free open state, one
// open-path probe, plus one probe per control channel with only that
// channel pressurised.
func DefaultVectors(c *Controller) []TestVector {
	var ports []string
	for _, in := range c.d.Inlets {
		ports = append(ports, in.Name)
	}
	sort.Strings(ports)
	open := c.faultGraph(nil, nil)
	var base []TestVector
	for i := 0; i < len(ports); i++ {
		for j := i + 1; j < len(ports); j++ {
			a, errA := InletPoint(c.d, ports[i])
			b, errB := InletPoint(c.d, ports[j])
			if errA != nil || errB != nil {
				continue
			}
			if open.Reachable(a, b) {
				base = append(base, TestVector{From: ports[i], To: ports[j]})
			}
		}
	}
	var out []TestVector
	out = append(out, base...)
	for _, ch := range c.d.Ctrl {
		for _, bv := range base {
			out = append(out, TestVector{
				Pressurized: []string{ch.Name},
				From:        bv.From, To: bv.To,
			})
		}
	}
	return out
}
