package sim

import (
	"strings"
	"testing"
	"time"
)

const protoSrc = `
design proto
unit m1 mixer sieve
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`

func TestProtocolMixCompiles(t *testing.T) {
	d := design(t, protoSrc)
	p := NewProtocol("mix-only").Mix("m1", 2)
	steps, err := p.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	// 2 close + 2 cycles*3 phases*2 ops + 2 open = 16.
	if len(steps) != 16 {
		t.Fatalf("steps = %d, want 16", len(steps))
	}
	ctl := NewController(d)
	dur, err := p.Execute(ctl)
	if err != nil {
		t.Fatal(err)
	}
	if dur != 16*ActuationTime {
		t.Fatalf("duration = %v", dur)
	}
	// All pumps vented at the end.
	for _, ch := range []string{"m1.pump1", "m1.pump2", "m1.pump3"} {
		if ctl.Pressurized(ch) {
			t.Errorf("%s still pressurised after mix", ch)
		}
	}
}

func TestProtocolTransfer(t *testing.T) {
	d := design(t, protoSrc)
	p := NewProtocol("xfer").Transfer("m1", "c1")
	ctl := NewController(d)
	if _, err := p.Execute(ctl); err != nil {
		t.Fatal(err)
	}
	// Transfer ends closed.
	if !ctl.Pressurized("m1.out") || !ctl.Pressurized("c1.in") {
		t.Fatal("transfer valves should end closed")
	}
}

func TestProtocolWashRequiresSieve(t *testing.T) {
	d := design(t, protoSrc)
	// m1 is a sieve mixer: wash works.
	if _, err := NewProtocol("w").Wash("m1").Compile(d); err != nil {
		t.Fatalf("wash on sieve mixer: %v", err)
	}
	// A plain-mixer design rejects wash.
	d2 := design(t, `
design plainmix
unit m1 mixer
connect in:a m1
connect m1 out:b
`)
	if _, err := NewProtocol("w").Wash("m1").Compile(d2); err == nil {
		t.Fatal("wash on plain mixer should fail")
	}
}

func TestProtocolCaptureRequiresCellTrap(t *testing.T) {
	d := design(t, `
design trap
unit m1 mixer celltrap
connect in:cells m1
connect m1 out:waste
`)
	p := NewProtocol("cap").Capture("m1").Release("m1")
	ctl := NewController(d)
	if _, err := p.Execute(ctl); err != nil {
		t.Fatal(err)
	}
	if ctl.Pressurized("m1.sepA") || ctl.Pressurized("m1.sepB") {
		t.Fatal("release should vent the separation valves")
	}
	// Capture on a sieve mixer fails.
	d2 := design(t, protoSrc)
	if _, err := NewProtocol("cap").Capture("m1").Compile(d2); err == nil {
		t.Fatal("capture on sieve mixer should fail")
	}
}

func TestProtocolUnknownUnit(t *testing.T) {
	d := design(t, protoSrc)
	if _, err := NewProtocol("x").Mix("ghost", 1).Compile(d); err == nil ||
		!strings.Contains(err.Error(), "unknown unit") {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewProtocol("x").Transfer("m1", "ghost").Compile(d); err == nil {
		t.Fatal("transfer to unknown unit should fail")
	}
}

func TestProtocolOnChamberRejected(t *testing.T) {
	d := design(t, protoSrc)
	if _, err := NewProtocol("x").Mix("c1", 1).Compile(d); err == nil ||
		!strings.Contains(err.Error(), "not a mixer") {
		t.Fatalf("err = %v", err)
	}
}

// Reconfigurability: two quite different protocols execute on the very
// same design without any re-synthesis. A pressure-shared design would
// hard-wire one of them.
func TestReconfigurabilityTwoProtocols(t *testing.T) {
	d := design(t, protoSrc)

	ipProtocol := NewProtocol("immunoprecipitation").
		Mix("m1", 3).
		Wash("m1").
		Transfer("m1", "c1")
	quickFlush := NewProtocol("flush").
		Transfer("m1", "c1").
		Transfer("m1", "c1")

	t1, err := ipProtocol.Execute(NewController(d))
	if err != nil {
		t.Fatalf("protocol 1: %v", err)
	}
	t2, err := quickFlush.Execute(NewController(d))
	if err != nil {
		t.Fatalf("protocol 2: %v", err)
	}
	if t1 <= t2 {
		t.Fatalf("IP protocol (%v) should take longer than the flush (%v)", t1, t2)
	}
	if t1 > HoldLimit {
		t.Fatalf("protocol duration %v exceeds the PDMS hold limit", t1)
	}
}

func TestProtocolOps(t *testing.T) {
	p := NewProtocol("n").Mix("a", 1).Wash("a").Transfer("a", "b")
	if p.Ops() != 3 {
		t.Fatalf("Ops = %d", p.Ops())
	}
	if p.Name != "n" {
		t.Fatalf("Name = %q", p.Name)
	}
}

func TestProtocolChaining(t *testing.T) {
	d := design(t, protoSrc)
	// A long realistic protocol: load, mix, wash twice, elute.
	p := NewProtocol("chip-ip").
		Mix("m1", 5).
		Wash("m1").
		Wash("m1").
		Transfer("m1", "c1")
	ctl := NewController(d)
	dur, err := p.Execute(ctl)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 || dur != time.Duration(ctl.Actuations)*ActuationTime {
		t.Fatalf("accounting broken: %v vs %d actuations", dur, ctl.Actuations)
	}
}
