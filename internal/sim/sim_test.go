package sim

import (
	"testing"
	"time"

	"columbas/internal/geom"
	"columbas/internal/layout"
	"columbas/internal/module"
	"columbas/internal/netlist"
	"columbas/internal/planar"
	"columbas/internal/validate"
)

func design(t *testing.T, src string) *validate.Design {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatal(err)
	}
	o := layout.DefaultOptions()
	o.TimeLimit = 2 * time.Second
	o.StallLimit = 30
	o.Gap = 0.1
	p, err := layout.Generate(pr, o)
	if err != nil {
		t.Fatal(err)
	}
	d, err := validate.Validate(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const chainSrc = `
design chain
unit m1 mixer
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`

func TestSetLatchesPressure(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	name := d.Ctrl[0].Name
	if c.Pressurized(name) {
		t.Fatal("channels must start vented")
	}
	if err := c.Set(name, true); err != nil {
		t.Fatal(err)
	}
	if !c.Pressurized(name) {
		t.Fatal("pressure did not latch")
	}
	if err := c.Set(name, false); err != nil {
		t.Fatal(err)
	}
	if c.Pressurized(name) {
		t.Fatal("vent did not latch")
	}
	if c.Actuations != 2 {
		t.Fatalf("actuations = %d, want 2", c.Actuations)
	}
	if c.Elapsed != 2*ActuationTime {
		t.Fatalf("elapsed = %v", c.Elapsed)
	}
}

func TestSetUnknownChannel(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	if err := c.Set("nope", true); err == nil {
		t.Fatal("expected error for unknown channel")
	}
}

// The Figure 8 experiment: select one control channel through the
// multiplexer; the addressing must isolate exactly that channel, and the
// actuated valve must block fluid flow through its channel while other
// paths stay open.
func TestFigure8ValveBlocksFlow(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)

	in, err := InletPoint(d, "sample")
	if err != nil {
		t.Fatal(err)
	}
	out, err := InletPoint(d, "waste")
	if err != nil {
		t.Fatal(err)
	}
	// All valves open: the full path is reachable.
	g := c.BuildFlowGraph()
	if !g.Reachable(in, out) {
		t.Fatal("fluid path sample->waste must exist with open valves")
	}
	// Close m1's inlet valve: the path breaks.
	if err := c.Set("m1.in", true); err != nil {
		t.Fatal(err)
	}
	g = c.BuildFlowGraph()
	if g.Reachable(in, out) {
		t.Fatal("closed inlet valve must block the path")
	}
	// Reopen: path restored.
	if err := c.Set("m1.in", false); err != nil {
		t.Fatal(err)
	}
	g = c.BuildFlowGraph()
	if !g.Reachable(in, out) {
		t.Fatal("vented valve must restore the path")
	}
}

func TestEveryChannelAddressable(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	for _, ch := range d.Ctrl {
		if err := c.Set(ch.Name, true); err != nil {
			t.Fatalf("channel %s not addressable: %v", ch.Name, err)
		}
	}
	if c.PressurizedCount() != len(d.Ctrl) {
		t.Fatalf("latched = %d, want %d", c.PressurizedCount(), len(d.Ctrl))
	}
}

func TestClosedValvesTrackState(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	if len(c.ClosedValves()) != 0 {
		t.Fatal("no valves should be closed initially")
	}
	if err := c.Set("m1.pump2", true); err != nil {
		t.Fatal(err)
	}
	vs := c.ClosedValves()
	if len(vs) == 0 {
		t.Fatal("pump valve should be closed")
	}
	for _, v := range vs {
		if v.Kind != module.ValvePump {
			t.Fatalf("unexpected closed valve kind %v", v.Kind)
		}
	}
}

// Reconfigurability (Section 1): the same design runs different
// scheduling protocols without redesign.
func TestRunScheduleReconfigurable(t *testing.T) {
	d := design(t, chainSrc)

	mixProtocol := []Step{
		{"m1.in", true}, {"m1.out", true},
		{"m1.pump1", true}, {"m1.pump1", false},
		{"m1.pump2", true}, {"m1.pump2", false},
		{"m1.pump3", true}, {"m1.pump3", false},
		{"m1.in", false}, {"m1.out", false},
	}
	flushProtocol := []Step{
		{"c1.in", true}, {"c1.in", false},
		{"c1.out", true}, {"c1.out", false},
	}
	c1 := NewController(d)
	t1, err := c1.RunSchedule(mixProtocol)
	if err != nil {
		t.Fatalf("mix protocol: %v", err)
	}
	if t1 != time.Duration(len(mixProtocol))*ActuationTime {
		t.Fatalf("mix time = %v", t1)
	}
	c2 := NewController(d)
	if _, err := c2.RunSchedule(flushProtocol); err != nil {
		t.Fatalf("flush protocol: %v", err)
	}
}

func TestRunScheduleBadStep(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	if _, err := c.RunSchedule([]Step{{"bogus", true}}); err == nil {
		t.Fatal("expected error for unknown channel in schedule")
	}
}

func TestFlowGraphSwitchRouting(t *testing.T) {
	d := design(t, `
design sw
unit a mixer
unit b mixer
connect in:x a
connect in:y b
net a b out:waste
`)
	c := NewController(d)
	inA, err := InletPoint(d, "x")
	if err != nil {
		t.Fatal(err)
	}
	out, err := InletPoint(d, "waste")
	if err != nil {
		t.Fatal(err)
	}
	g := c.BuildFlowGraph()
	if !g.Reachable(inA, out) {
		t.Fatal("switch spine must connect a's inlet to waste")
	}
	// Closing a's switch junction valve isolates it from the spine.
	sw := d.Module("s1")
	if sw == nil {
		t.Fatal("switch missing")
	}
	// Find the junction on a's pin row and its control channel name.
	aPin := d.Module("a").PinRight.Y
	jIdx := -1
	for i, j := range sw.Junctions {
		if abs(j.Y-aPin) < 1 {
			jIdx = i
		}
	}
	if jIdx < 0 {
		t.Fatal("no junction on a's row")
	}
	chName := sw.Lines[jIdx].Name
	if err := c.Set(chName, true); err != nil {
		t.Fatal(err)
	}
	g = c.BuildFlowGraph()
	if g.Reachable(inA, out) {
		t.Fatal("closed junction valve must isolate a from the spine")
	}
	// b remains connected.
	inB, err := InletPoint(d, "y")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Reachable(inB, out) {
		t.Fatal("b's path must stay open")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestInletPointUnknown(t *testing.T) {
	d := design(t, chainSrc)
	if _, err := InletPoint(d, "zz"); err == nil {
		t.Fatal("expected error")
	}
}

func TestReachableTrivial(t *testing.T) {
	g := &FlowGraph{adj: map[flowNode][]flowNode{}}
	p := geom.Pt{X: 5, Y: 5}
	if !g.Reachable(p, p) {
		t.Fatal("a point reaches itself")
	}
	if g.Reachable(p, geom.Pt{X: 500, Y: 500}) {
		t.Fatal("disconnected points must not be reachable")
	}
}

func TestHoldViolationTracking(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	if err := c.Set("m1.in", true); err != nil {
		t.Fatal(err)
	}
	if len(c.HoldViolations()) != 0 {
		t.Fatal("fresh latch should not violate the hold limit")
	}
	// An incubation longer than the PDMS hold limit ages the latch out.
	c.Wait(HoldLimit + time.Minute)
	vs := c.HoldViolations()
	if len(vs) != 1 || vs[0].Channel != "m1.in" {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Held <= HoldLimit {
		t.Fatalf("held = %v", vs[0].Held)
	}
	// Refreshing the channel resets its hold clock.
	if err := c.Refresh("m1.in"); err != nil {
		t.Fatal(err)
	}
	if len(c.HoldViolations()) != 0 {
		t.Fatal("refresh should clear the violation")
	}
	// Venting clears tracking entirely.
	if err := c.Set("m1.in", false); err != nil {
		t.Fatal(err)
	}
	c.Wait(2 * HoldLimit)
	if len(c.HoldViolations()) != 0 {
		t.Fatal("vented channels cannot violate")
	}
}

func TestRefreshRequiresLatch(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	if err := c.Refresh("m1.in"); err == nil {
		t.Fatal("refreshing a vented channel should fail")
	}
}

func TestWaitIgnoresNegative(t *testing.T) {
	d := design(t, chainSrc)
	c := NewController(d)
	c.Wait(-time.Hour)
	if c.Elapsed != 0 {
		t.Fatalf("Elapsed = %v", c.Elapsed)
	}
}
