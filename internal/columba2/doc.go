// Package columba2 reimplements the Columba 2.0 model family [12] as the
// comparison baseline of Table 1. The original tool is closed source; this
// baseline reproduces the published modelling ingredients that Columba S
// removed, because those ingredients are exactly what the paper's
// comparison measures:
//
//   - no parallel-unit merging: every functional unit is its own
//     rectangle, every rectangle pair gets a non-overlap disjunction;
//   - module rotation: a binary per unit swaps its width and height;
//   - channel detours: every flow channel routes as a
//     horizontal–vertical–horizontal three-segment path with continuity
//     constraints, instead of a single straight run;
//   - per-unit control routing to the nearest chip boundary with
//     *pressure sharing*: control lines that are actuated identically
//     under the application protocol (pumps and sieve pairs at the same
//     chain position, transfer-valve pairs across a channel) share one
//     pressure inlet. Sharing is hard-wired to the protocol, which is why
//     2.0 designs do not adapt to re-scheduling (Section 1).
//
// Both the baseline and Columba S run on the same MILP solver
// (internal/milp), so Table 1's runtime comparison measures model size —
// the paper's actual claim — rather than solver differences.
//
// Key types: Options bounds the solve; Synthesize runs the baseline flow
// on a planarized netlist and returns a Result (placed units, routed
// channels, inlet count after PressureSharedInlets-style sharing).
package columba2
