package columba2

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"columbas/internal/milp"
	"columbas/internal/netlist"
	"columbas/internal/planar"
)

func planarize(t *testing.T, src string) *planar.Result {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

const chainSrc = `
design chain
unit m1 mixer
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`

func TestGridDesignMetrics(t *testing.T) {
	pr := planarize(t, chainSrc)
	r, err := Synthesize(pr, Options{SkipMILP: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.W <= 0 || r.H <= 0 {
		t.Fatalf("dims = %v x %v", r.W, r.H)
	}
	if r.FlowLength <= 0 {
		t.Fatalf("FlowLength = %v", r.FlowLength)
	}
	if len(r.Units) != 2 {
		t.Fatalf("units = %d", len(r.Units))
	}
	// Units inside chip, non-overlapping.
	for i, u := range r.Units {
		if u.X < 0 || u.Y < 0 || u.X+u.W > r.W || u.Y+u.H > r.H {
			t.Errorf("unit %s outside chip", u.Name)
		}
		for j := i + 1; j < len(r.Units); j++ {
			v := r.Units[j]
			if u.X < v.X+v.W && v.X < u.X+u.W && u.Y < v.Y+v.H && v.Y < u.Y+u.H {
				t.Errorf("units %s and %s overlap", u.Name, v.Name)
			}
		}
	}
}

func TestPressureSharingKinaseLane(t *testing.T) {
	// One kinase lane: mixer -> chamber -> chamber.
	// Lines: in, pump1-3, m.out+ca.in (shared), ca.out+cb.in (shared),
	// cb.out => 7 inlets.
	pr := planarize(t, `
design lane
unit m mixer
unit ca chamber
unit cb chamber
connect in:s m
connect m ca
connect ca cb
connect cb out:r
`)
	if got := PressureSharedInlets(pr); got != 7 {
		t.Fatalf("inlets = %d, want 7", got)
	}
}

func TestPressureSharingSevenLanes(t *testing.T) {
	// The kinase21 shape: 7 identical lanes share pumps across lanes:
	// 3 pump classes + 7*(in + 2 transfers + out) = 3 + 28 = 31,
	// matching Table 1's 31 control inlets for Columba 2.0.
	var src = "design k\n"
	for i := 1; i <= 7; i++ {
		src += fmt.Sprintf("unit m%d mixer\nunit ca%d chamber\nunit cb%d chamber\n", i, i, i)
	}
	for i := 1; i <= 7; i++ {
		src += fmt.Sprintf("connect in:s%d m%d\nconnect m%d ca%d\nconnect ca%d cb%d\nconnect cb%d out:r%d\n",
			i, i, i, i, i, i, i, i)
	}
	pr := planarize(t, src)
	if got := PressureSharedInlets(pr); got != 31 {
		t.Fatalf("inlets = %d, want 31 (Table 1, Columba 2.0, kinase)", got)
	}
}

func TestSharingDoesNotMergeDifferentChains(t *testing.T) {
	// A sieve lane and a plain lane have different signatures: no pump
	// sharing between them.
	pr := planarize(t, `
design mix
unit a mixer sieve
unit b mixer
connect in:x a
connect a out:p
connect in:y b
connect b out:q
`)
	// a: 3 pumps + 2 sieve pairs + in + out = 7; b: 3 pumps + in + out = 5.
	if got := PressureSharedInlets(pr); got != 12 {
		t.Fatalf("inlets = %d, want 12", got)
	}
}

func TestTooLargeRejected(t *testing.T) {
	var src = "design big\n"
	for i := 0; i < MaxUnits+1; i++ {
		src += fmt.Sprintf("unit u%d chamber\n", i)
	}
	for i := 0; i < MaxUnits+1; i++ {
		src += fmt.Sprintf("connect in:x%d u%d\n", i, i)
	}
	pr := planarize(t, src)
	_, err := Synthesize(pr, Options{SkipMILP: true})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestFullModelBuildsAndBudgets(t *testing.T) {
	// The full 2.0 model on a tiny case: must build, run under a small
	// budget, and report its (large) model size.
	pr := planarize(t, chainSrc)
	r, err := Synthesize(pr, Options{
		TimeLimit:  2 * time.Second,
		StallLimit: 20,
		Gap:        0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ModelBinaries == 0 || r.ModelRows == 0 {
		t.Fatalf("model size not reported: %+v", r)
	}
	// The unreduced model for even 2 units is far bigger than the
	// Columba S model for the same netlist (which has ~10 binaries).
	if r.ModelBinaries < 20 {
		t.Fatalf("binaries = %d; the unreduced model should be much larger", r.ModelBinaries)
	}
	if r.Status != milp.Optimal && r.Status != milp.Feasible && r.Status != milp.Limit {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Runtime <= 0 {
		t.Fatal("runtime not measured")
	}
}

func TestGridScalesRoughlySquare(t *testing.T) {
	var src = "design sq\n"
	for i := 0; i < 9; i++ {
		src += fmt.Sprintf("unit u%d chamber\n", i)
	}
	for i := 0; i < 9; i++ {
		src += fmt.Sprintf("connect in:x%d u%d\n", i, i)
	}
	pr := planarize(t, src)
	r, err := Synthesize(pr, Options{SkipMILP: true})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.W / r.H
	if ratio < 0.3 || ratio > 3.5 {
		t.Fatalf("aspect ratio %v not grid-like", ratio)
	}
}

func TestSwitchAnchoredRoutes(t *testing.T) {
	pr := planarize(t, `
design sw
unit a mixer
unit b mixer
unit c mixer
net a b c out:w
connect in:x a
connect in:y b
connect in:z c
`)
	r, err := Synthesize(pr, Options{SkipMILP: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.FlowLength <= 0 {
		t.Fatal("switch-mediated routes must contribute length")
	}
}
