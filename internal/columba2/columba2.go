package columba2

import (
	"fmt"
	"math"
	"time"

	"columbas/internal/milp"
	"columbas/internal/module"
	"columbas/internal/netlist"
	"columbas/internal/planar"
)

// MaxUnits bounds the model size the baseline will attempt. Beyond this
// the full model's row count exceeds what the dense simplex substrate can
// factor, mirroring the paper's "Columba 2.0 cannot solve the last two
// test cases within reasonable run time".
const MaxUnits = 40

// ErrTooLarge reports a design beyond the baseline's tractability frontier.
var ErrTooLarge = fmt.Errorf("columba2: design exceeds the baseline's tractable size (%d units)", MaxUnits)

// Options configures the baseline synthesis.
type Options struct {
	TimeLimit  time.Duration // MILP budget (default 30 s)
	StallLimit int
	Gap        float64
	// SkipMILP computes the constructive (grid) design only.
	SkipMILP bool
}

// Result is a completed baseline design with its Table 1 metrics.
type Result struct {
	Name string
	// W, H are the chip dimensions in µm.
	W, H float64
	// FlowLength is L_f in µm.
	FlowLength float64
	// CtrlInlets is #c_in under pressure sharing.
	CtrlInlets int
	// Units are the placed unit boxes.
	Units []PlacedUnit
	// Runtime is the synthesis wall-clock time.
	Runtime time.Duration
	// Status reports how far the MILP got; milp.Limit means the model hit
	// its budget and the constructive design was kept.
	Status milp.Status
	// ModelVars/ModelRows/ModelBinaries document the model-size explosion
	// relative to Columba S.
	ModelVars, ModelRows, ModelBinaries int
}

// PlacedUnit is one placed functional unit.
type PlacedUnit struct {
	Name    string
	W, H    float64
	X, Y    float64
	Rotated bool
}

// Synthesize runs the Columba 2.0 baseline on a planarized netlist.
func Synthesize(pr *planar.Result, opt Options) (*Result, error) {
	start := time.Now()
	units := unitNodes(pr)
	if len(units) == 0 {
		return nil, fmt.Errorf("columba2: no units")
	}
	if len(units) > MaxUnits {
		return nil, ErrTooLarge
	}
	res := gridDesign(pr, units)
	res.CtrlInlets = PressureSharedInlets(pr)

	if !opt.SkipMILP {
		st, vars, rows, bins := runModel(pr, units, res, opt)
		res.Status = st
		res.ModelVars, res.ModelRows, res.ModelBinaries = vars, rows, bins
	} else {
		res.Status = milp.Feasible
	}
	res.Runtime = time.Since(start)
	return res, nil
}

func unitNodes(pr *planar.Result) []*planar.Node {
	var out []*planar.Node
	for i := range pr.Nodes {
		if pr.Nodes[i].Kind == planar.NodeUnit {
			out = append(out, &pr.Nodes[i])
		}
	}
	return out
}

// gridDesign is the constructive placement the baseline falls back to
// when the full model exhausts its budget: a near-square grid of units
// with Manhattan (detouring) channel routes. Grid packing yields the
// compact-area / long-channel profile of the 2.0 designs in Table 1.
func gridDesign(pr *planar.Result, units []*planar.Node) *Result {
	n := len(units)
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols

	cellW, cellH := 0.0, 0.0
	for _, u := range units {
		w, h := module.Footprint(*u.Unit)
		cellW = math.Max(cellW, w)
		cellH = math.Max(cellH, h)
	}
	// Routing tracks between cells: room for the detouring flow segments,
	// the per-unit control escapes and the crossing switches the 2.0
	// style needs between any two cells (the paper's 2.0 designs average
	// roughly 70 mm² of chip per functional unit).
	gapX := 30 * module.D
	gapY := 30 * module.D

	res := &Result{Name: pr.Name}
	pos := map[string]int{}
	for i, u := range units {
		r, c := i/cols, i%cols
		w, h := module.Footprint(*u.Unit)
		res.Units = append(res.Units, PlacedUnit{
			Name: u.Name, W: w, H: h,
			X: 2*module.D + float64(c)*(cellW+gapX),
			Y: 2*module.D + float64(r)*(cellH+gapY),
		})
		pos[u.Name] = i
	}
	// Boundary belt for inlets and the control escape routing.
	const belt = 20 * module.D
	res.W = 2*belt + float64(cols)*(cellW+gapX) - gapX
	res.H = 2*belt + float64(rows)*(cellH+gapY) - gapY

	// Flow length: Manhattan routes between unit centres (switches of the
	// planarized netlist dissolve back into detour junctions here — 2.0
	// realises crossings with its own switch boxes whose wiring is part
	// of the route), terminals to the nearest vertical boundary.
	center := func(i int) (x, y float64) {
		p := res.Units[i]
		return p.X + p.W/2, p.Y + p.H/2
	}
	res.FlowLength = routeLength(pr, pos, center, res)
	return res
}

// routeLength totals the Manhattan route lengths of all channels under
// the current placement (each route pays one detour-bend allowance;
// terminal channels run to the nearest vertical chip boundary).
func routeLength(pr *planar.Result, pos map[string]int,
	center func(int) (float64, float64), res *Result) float64 {
	swAnchor := map[string][2]float64{}
	total := 0.0
	for _, ch := range pr.Channels {
		ax, ay, aok := endPoint(pr, ch.A, pos, center, swAnchor, res)
		bx, by, bok := endPoint(pr, ch.B, pos, center, swAnchor, res)
		switch {
		case aok && bok:
			total += math.Abs(ax-bx) + math.Abs(ay-by) + 2*module.D
		case aok:
			total += math.Min(ax, res.W-ax) + 2*module.D
		case bok:
			total += math.Min(bx, res.W-bx) + 2*module.D
		}
	}
	return total
}

// endPoint resolves a channel endpoint to grid coordinates: units at
// their centres, switches at the centroid of their partners (computed on
// first use), terminals at the nearest vertical boundary.
func endPoint(pr *planar.Result, e planar.End, pos map[string]int,
	center func(int) (float64, float64), swAnchor map[string][2]float64, res *Result) (float64, float64, bool) {
	switch {
	case e.IsTerminal():
		return math.NaN(), math.NaN(), false // handled by caller pairing
	case pr.Node(e.Node).Kind == planar.NodeSwitch:
		if a, ok := swAnchor[e.Node]; ok {
			return a[0], a[1], true
		}
		// Centroid of all unit partners of this switch.
		sx, sy, n := 0.0, 0.0, 0
		for _, ch := range pr.Channels {
			var other planar.End
			if ch.A.Node == e.Node {
				other = ch.B
			} else if ch.B.Node == e.Node {
				other = ch.A
			} else {
				continue
			}
			if other.IsTerminal() || pr.Node(other.Node).Kind != planar.NodeUnit {
				continue
			}
			x, y := center(pos[other.Node])
			sx += x
			sy += y
			n++
		}
		if n == 0 {
			sx, sy = res.W/2, res.H/2
		} else {
			sx, sy = sx/float64(n), sy/float64(n)
		}
		swAnchor[e.Node] = [2]float64{sx, sy}
		return sx, sy, true
	default:
		x, y := center(pos[e.Node])
		return x, y, true
	}
}

// PressureSharedInlets counts the control inlets of a 2.0 design under
// pressure sharing: lines with identical actuation under the protocol
// share one inlet.
//
// Sharing classes:
//   - pump lines (and sieve/separation pairs) of units at the same
//     position of identical chains actuate in lockstep and share;
//   - the out-valve of a unit and the in-valve of its direct successor
//     open together for every transfer and share;
//   - everything else (in/out valves at chain ends, switch junction
//     valves) needs its own inlet.
func PressureSharedInlets(pr *planar.Result) int {
	// Reconstruct chains from unit-to-unit channels.
	next := map[string]string{}
	prev := map[string]string{}
	for _, ch := range pr.Channels {
		if ch.A.Node == "" || ch.B.Node == "" {
			continue
		}
		na, nb := pr.Node(ch.A.Node), pr.Node(ch.B.Node)
		if na.Kind != planar.NodeUnit || nb.Kind != planar.NodeUnit {
			continue
		}
		if _, ok := next[ch.A.Node]; !ok && prev[ch.B.Node] == "" {
			next[ch.A.Node] = ch.B.Node
			prev[ch.B.Node] = ch.A.Node
		}
	}
	type lineKey struct {
		sig  string // chain signature + position for shared classes
		name string // distinct discriminator for unshared lines
	}
	classes := map[lineKey]bool{}
	addClass := func(sig, name string) { classes[lineKey{sig, name}] = true }

	// Chain signature: the type/opt sequence from the chain head.
	sigOf := map[string]string{}
	posOf := map[string]int{}
	for _, n := range pr.Nodes {
		if n.Kind != planar.NodeUnit || prev[n.Name] != "" {
			continue
		}
		var sig string
		p := 0
		for cur := n.Name; cur != ""; cur = next[cur] {
			u := pr.Node(cur).Unit
			sig += fmt.Sprintf("%v/%v;", u.Type, u.Opt)
			posOf[cur] = p
			p++
		}
		for cur := n.Name; cur != ""; cur = next[cur] {
			sigOf[cur] = sig
		}
	}

	for _, n := range pr.Nodes {
		switch n.Kind {
		case planar.NodeSwitch:
			for j := 0; j < n.Junctions; j++ {
				addClass("", fmt.Sprintf("%s.j%d", n.Name, j))
			}
		case planar.NodeUnit:
			u := n.Unit
			sig := fmt.Sprintf("%s@%d", sigOf[n.Name], posOf[n.Name])
			if u.Type == netlist.Mixer {
				for p := 1; p <= 3; p++ {
					addClass(sig, fmt.Sprintf("pump%d", p))
				}
				if u.Opt == netlist.Sieve || u.Opt == netlist.CellTrap {
					addClass(sig, "pairA")
					addClass(sig, "pairB")
				}
			}
			// In valve: shared with the predecessor's out valve.
			if p := prev[n.Name]; p != "" {
				addClass("", "xfer:"+p+">"+n.Name)
			} else {
				addClass("", n.Name+".in")
			}
			// Out valve: shared with the successor's in valve (same
			// transfer class, added once from the successor side).
			if next[n.Name] == "" {
				addClass("", n.Name+".out")
			}
		}
	}
	return len(classes)
}

// runModel builds and runs the full Columba 2.0 MILP. When the budget
// expires before an incumbent emerges — the expected outcome that Table 1
// documents — the constructive design stands.
func runModel(pr *planar.Result, units []*planar.Node, res *Result, opt Options) (milp.Status, int, int, int) {
	m, uxl, uyb, rot, err := buildFullModel(pr, units)
	if err != nil {
		return milp.Limit, 0, 0, 0
	}
	tl := opt.TimeLimit
	if tl == 0 {
		tl = 30 * time.Second
	}
	r, err := m.Solve(milp.Options{
		TimeLimit:  tl,
		StallLimit: opt.StallLimit,
		Gap:        opt.Gap,
	})
	if err != nil {
		return milp.Limit, m.NumVars(), m.NumRows(), m.NumInt()
	}
	if r.Status == milp.Optimal || r.Status == milp.Feasible {
		// Adopt the solved placement; channel metrics re-derived from it.
		for i := range res.Units {
			res.Units[i].X = r.Value(uxl[i]) * 1000
			res.Units[i].Y = r.Value(uyb[i]) * 1000
			res.Units[i].Rotated = r.Value(rot[i]) > 0.5
			if res.Units[i].Rotated {
				res.Units[i].W, res.Units[i].H = res.Units[i].H, res.Units[i].W
			}
		}
		maxX, maxY := 0.0, 0.0
		for _, u := range res.Units {
			maxX = math.Max(maxX, u.X+u.W)
			maxY = math.Max(maxY, u.Y+u.H)
		}
		res.W = maxX + 2*module.D
		res.H = maxY + 2*module.D
		res.FlowLength = rederiveFlowLength(pr, res)
	}
	return r.Status, m.NumVars(), m.NumRows(), m.NumInt()
}

func rederiveFlowLength(pr *planar.Result, res *Result) float64 {
	pos := map[string]int{}
	for i, u := range res.Units {
		pos[u.Name] = i
	}
	center := func(i int) (float64, float64) {
		p := res.Units[i]
		return p.X + p.W/2, p.Y + p.H/2
	}
	return routeLength(pr, pos, center, res)
}

// buildFullModel assembles the unmerged Columba 2.0 MILP: a rectangle and
// rotation binary per unit, a three-segment detour route per channel, a
// control rect per unit, and the full set of pairwise non-overlap
// disjunctions. The model size (returned through the milp.Model) is the
// quantity Table 1's runtime column measures.
func buildFullModel(pr *planar.Result, units []*planar.Node) (m *milp.Model, uxl, uyb []milp.VarID, rot []milp.VarID, err error) {
	const scale = 1000.0 // mm
	m = milp.NewModel()
	ub := 0.0
	for _, u := range units {
		w, h := module.Footprint(*u.Unit)
		ub += (w + h) / scale
	}
	ub = ub*2 + 40
	M := 2 * ub

	n := len(units)
	uxl = make([]milp.VarID, n)
	uyb = make([]milp.VarID, n)
	uxr := make([]milp.VarID, n)
	uyt := make([]milp.VarID, n)
	rot = make([]milp.VarID, n)
	xmax := m.Var("xmax", 0, ub)
	ymax := m.Var("ymax", 0, ub)

	for i, u := range units {
		w, h := module.Footprint(*u.Unit)
		w, h = w/scale, h/scale
		uxl[i] = m.Var(u.Name+".xl", 0, ub)
		uxr[i] = m.Var(u.Name+".xr", 0, ub)
		uyb[i] = m.Var(u.Name+".yb", 0, ub)
		uyt[i] = m.Var(u.Name+".yt", 0, ub)
		rot[i] = m.Binary(u.Name + ".rot")
		// xr - xl = w + rot*(h-w); yt - yb = h + rot*(w-h).
		m.AddEQ(milp.T(uxr[i], 1).Add(uxl[i], -1).Add(rot[i], -(h-w)), w)
		m.AddEQ(milp.T(uyt[i], 1).Add(uyb[i], -1).Add(rot[i], -(w-h)), h)
		m.AddLE(milp.T(uxr[i], 1).Add(xmax, -1), 0)
		m.AddLE(milp.T(uyt[i], 1).Add(ymax, -1), 0)
	}

	// Unit-pair non-overlap (constraints (3)-(5), unreduced).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			q1 := m.Binary("q1")
			q2 := m.Binary("q2")
			q3 := m.Binary("q3")
			q4 := m.Binary("q4")
			m.AddLE(milp.T(uxr[i], 1).Add(uxl[j], -1).Add(q1, -M), 0)
			m.AddLE(milp.T(uxr[j], 1).Add(uxl[i], -1).Add(q2, -M), 0)
			m.AddLE(milp.T(uyt[i], 1).Add(uyb[j], -1).Add(q3, -M), 0)
			m.AddLE(milp.T(uyt[j], 1).Add(uyb[i], -1).Add(q4, -M), 0)
			m.MarkDisjunction([]milp.VarID{q1, q2, q3, q4})
		}
	}

	idx := map[string]int{}
	for i, u := range units {
		idx[u.Name] = i
	}

	// Three-segment detour route per channel with continuity and
	// segment-vs-unit avoidance.
	objLen := milp.NewExpr().Add(xmax, 1).Add(ymax, 1)
	d2 := 2 * module.D / scale
	for ci, ch := range pr.Channels {
		var segXL, segXR, segYB, segYT [3]milp.VarID
		for s := 0; s < 3; s++ {
			segXL[s] = m.Var(fmt.Sprintf("c%d.s%d.xl", ci, s), 0, ub)
			segXR[s] = m.Var(fmt.Sprintf("c%d.s%d.xr", ci, s), 0, ub)
			segYB[s] = m.Var(fmt.Sprintf("c%d.s%d.yb", ci, s), 0, ub)
			segYT[s] = m.Var(fmt.Sprintf("c%d.s%d.yt", ci, s), 0, ub)
			m.AddGE(milp.T(segXR[s], 1).Add(segXL[s], -1), 0)
			m.AddGE(milp.T(segYT[s], 1).Add(segYB[s], -1), 0)
			m.AddLE(milp.T(segXR[s], 1).Add(xmax, -1), 0)
			m.AddLE(milp.T(segYT[s], 1).Add(ymax, -1), 0)
		}
		// Segments 0 and 2 horizontal (height 2d), segment 1 vertical
		// (width 2d).
		m.AddEQ(milp.T(segYT[0], 1).Add(segYB[0], -1), d2)
		m.AddEQ(milp.T(segYT[2], 1).Add(segYB[2], -1), d2)
		m.AddEQ(milp.T(segXR[1], 1).Add(segXL[1], -1), d2)
		// Continuity: the vertical joins both horizontals.
		for _, s := range []int{0, 2} {
			m.AddLE(milp.T(segXL[1], 1).Add(segXR[s], -1), 0)
			m.AddGE(milp.T(segXR[1], 1).Add(segXL[s], -1), 0)
			m.AddLE(milp.T(segYB[1], 1).Add(segYB[s], -1), 0)
			m.AddGE(milp.T(segYT[1], 1).Add(segYT[s], -1), 0)
		}
		// Attachment: horizontal segment 0 starts at end A, segment 2
		// ends at end B. Unit ends share a vertical boundary (left or
		// right, a 2-way disjunction); terminals reach a chip boundary.
		attach := func(e planar.End, seg int) {
			if e.IsTerminal() {
				q5 := m.Binary("q5")
				q6 := m.Binary("q6")
				m.AddLE(milp.T(segXL[seg], 1).Add(q5, -M), 0)
				m.AddGE(milp.T(segXR[seg], 1).Add(xmax, -1).Add(q6, M), 0)
				m.MarkDisjunction([]milp.VarID{q5, q6})
				return
			}
			if pr.Node(e.Node).Kind == planar.NodeSwitch {
				return // 2.0 dissolves planar switches into its own crossings
			}
			i := idx[e.Node]
			qa := m.Binary("qa")
			qb := m.Binary("qb")
			// seg.xl = unit.xr (east exit) or seg.xr = unit.xl (west).
			m.AddLE(milp.T(segXL[seg], 1).Add(uxr[i], -1).Add(qa, -M), 0)
			m.AddGE(milp.T(segXL[seg], 1).Add(uxr[i], -1).Add(qa, M), 0)
			m.AddLE(milp.T(segXR[seg], 1).Add(uxl[i], -1).Add(qb, -M), 0)
			m.AddGE(milp.T(segXR[seg], 1).Add(uxl[i], -1).Add(qb, M), 0)
			m.MarkDisjunction([]milp.VarID{qa, qb})
			// The pin row lies within the unit's vertical span.
			m.AddGE(milp.T(segYB[seg], 1).Add(uyb[i], -1), 0)
			m.AddLE(milp.T(segYT[seg], 1).Add(uyt[i], -1), 0)
		}
		attach(ch.A, 0)
		attach(ch.B, 2)
		// Channel length in the objective.
		for s := 0; s < 3; s++ {
			objLen.Add(segXR[s], 0.05).Add(segXL[s], -0.05)
			objLen.Add(segYT[s], 0.05).Add(segYB[s], -0.05)
		}
		// Segment-vs-unit avoidance for every unit. The horizontal
		// segments run inside their pin rows; the vertical detour
		// segment carries the pairwise avoidance disjunctions (still one
		// per channel x unit — the unreduced problem-space growth the
		// comparison measures).
		for s := 1; s < 2; s++ {
			for i := range units {
				if !e2e(ch, units[i].Name) {
					q1 := m.Binary("q1")
					q2 := m.Binary("q2")
					q3 := m.Binary("q3")
					q4 := m.Binary("q4")
					m.AddLE(milp.T(segXR[s], 1).Add(uxl[i], -1).Add(q1, -M), 0)
					m.AddLE(milp.T(uxr[i], 1).Add(segXL[s], -1).Add(q2, -M), 0)
					m.AddLE(milp.T(segYT[s], 1).Add(uyb[i], -1).Add(q3, -M), 0)
					m.AddLE(milp.T(uyt[i], 1).Add(segYB[s], -1).Add(q4, -M), 0)
					m.MarkDisjunction([]milp.VarID{q1, q2, q3, q4})
				}
			}
		}
	}
	m.Minimize(objLen)
	return m, uxl, uyb, rot, nil
}

func e2e(ch planar.Channel, unit string) bool {
	return ch.A.Node == unit || ch.B.Node == unit
}
