package netlist

import (
	"strings"
	"testing"
)

const sample = `
# ChIP-style application
design chip4
muxes 2

unit m1 mixer sieve
unit m2 mixer sieve
unit c1 chamber
unit c2 chamber w=2000 h=1500
unit col mixer

connect in:beads m1
connect m1 c1
connect m2 c2
net c1 c2 col out:waste
parallel m1 m2
parallel c1 c2
`

func parseSample(t *testing.T) *Netlist {
	t.Helper()
	n, err := ParseString(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return n
}

func TestParseBasics(t *testing.T) {
	n := parseSample(t)
	if n.Name != "chip4" {
		t.Errorf("Name = %q", n.Name)
	}
	if n.Muxes != 2 {
		t.Errorf("Muxes = %d", n.Muxes)
	}
	if n.NumUnits() != 5 {
		t.Errorf("NumUnits = %d", n.NumUnits())
	}
	if len(n.Nets) != 4 {
		t.Errorf("Nets = %d", len(n.Nets))
	}
	if len(n.Parallel) != 2 {
		t.Errorf("Parallel = %d", len(n.Parallel))
	}
}

func TestParseUnitOptions(t *testing.T) {
	n := parseSample(t)
	m1 := n.Unit("m1")
	if m1 == nil || m1.Type != Mixer || m1.Opt != Sieve {
		t.Fatalf("m1 = %+v", m1)
	}
	c2 := n.Unit("c2")
	if c2 == nil || c2.Type != Chamber || c2.W != 2000 || c2.H != 1500 {
		t.Fatalf("c2 = %+v", c2)
	}
	col := n.Unit("col")
	if col == nil || col.Opt != Plain {
		t.Fatalf("col = %+v", col)
	}
	if n.Unit("nope") != nil {
		t.Error("Unit(nope) should be nil")
	}
}

func TestDefaultMuxes(t *testing.T) {
	n, err := ParseString("design d\nunit a mixer\nconnect in:x a\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.Muxes != 1 {
		t.Errorf("default Muxes = %d, want 1", n.Muxes)
	}
}

func TestTerminals(t *testing.T) {
	n := parseSample(t)
	in, out := n.Terminals()
	if len(in) != 1 || in[0] != "beads" {
		t.Errorf("inlets = %v", in)
	}
	if len(out) != 1 || out[0] != "waste" {
		t.Errorf("outlets = %v", out)
	}
}

func TestDegree(t *testing.T) {
	n := parseSample(t)
	if d := n.Degree("m1"); d != 2 {
		t.Errorf("Degree(m1) = %d, want 2", d)
	}
	if d := n.Degree("col"); d != 1 {
		t.Errorf("Degree(col) = %d, want 1", d)
	}
}

func TestParallelGroup(t *testing.T) {
	n := parseSample(t)
	if g := n.ParallelGroup("m2"); g != 0 {
		t.Errorf("ParallelGroup(m2) = %d", g)
	}
	if g := n.ParallelGroup("c1"); g != 1 {
		t.Errorf("ParallelGroup(c1) = %d", g)
	}
	if g := n.ParallelGroup("col"); g != -1 {
		t.Errorf("ParallelGroup(col) = %d", g)
	}
}

func TestRoundTrip(t *testing.T) {
	n := parseSample(t)
	n2, err := ParseString(n.Format())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, n.Format())
	}
	if n2.Format() != n.Format() {
		t.Fatalf("round-trip mismatch:\n%s\nvs\n%s", n.Format(), n2.Format())
	}
}

func TestValidateOK(t *testing.T) {
	n := parseSample(t)
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateDisconnectedUnit(t *testing.T) {
	n, err := ParseString("design d\nunit a mixer\nunit b mixer\nconnect in:x a\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "no connections") {
		t.Fatalf("Validate = %v, want disconnected-unit error", err)
	}
}

func TestValidateTerminalOnlyNet(t *testing.T) {
	n, err := ParseString("design d\nunit a mixer\nconnect in:x a\nconnect in:y out:z\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "only terminals") {
		t.Fatalf("Validate = %v, want terminal-only error", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown directive", "design d\nfrobnicate x\n", "unknown directive"},
		{"bad muxes", "design d\nmuxes 3\n", "muxes must be 1 or 2"},
		{"muxes arity", "design d\nmuxes\n", "exactly one number"},
		{"dup unit", "design d\nunit a mixer\nunit a chamber\n", "duplicate unit"},
		{"bad type", "design d\nunit a pump\n", "unknown unit type"},
		{"sieve chamber", "design d\nunit a chamber sieve\n", "only applies to mixers"},
		{"bad width", "design d\nunit a mixer w=-5\n", "bad width"},
		{"bad height", "design d\nunit a mixer h=zero\n", "bad height"},
		{"unknown option", "design d\nunit a mixer frob\n", "unknown unit option"},
		{"connect arity", "design d\nunit a mixer\nconnect a\n", "exactly two endpoints"},
		{"unknown unit in connect", "design d\nunit a mixer\nconnect a b\n", "unknown unit"},
		{"net arity", "design d\nunit a mixer\nnet a\n", "at least two"},
		{"empty inlet", "design d\nunit a mixer\nconnect in: a\n", "empty inlet"},
		{"empty outlet", "design d\nunit a mixer\nconnect out: a\n", "empty outlet"},
		{"parallel unknown", "design d\nunit a mixer\nparallel a b\n", "unknown unit"},
		{"parallel dup", "design d\nunit a mixer\nunit b mixer\nparallel a b\nparallel b a\n", "already in a parallel group"},
		{"parallel arity", "design d\nunit a mixer\nparallel a\n", "at least two"},
		{"no design", "unit a mixer\n", "missing design"},
		{"no units", "design d\n", "no units"},
		{"unit arity", "design d\nunit a\n", "a name and a type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := ParseString("design d\n# comment\nunit a pump\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("Line = %d, want 3", pe.Line)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	n, err := ParseString("design d # trailing comment\n\n   \nunit a mixer # another\nconnect in:x a\n")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "d" || n.NumUnits() != 1 {
		t.Fatalf("parsed = %+v", n)
	}
}

func TestTypeStrings(t *testing.T) {
	if Mixer.String() != "mixer" || Chamber.String() != "chamber" {
		t.Error("UnitType strings wrong")
	}
	if UnitType(9).String() != "unknown" {
		t.Error("unknown UnitType string")
	}
	if Plain.String() != "plain" || Sieve.String() != "sieve" || CellTrap.String() != "celltrap" {
		t.Error("MixerOpt strings wrong")
	}
	if MixerOpt(9).String() != "unknown" {
		t.Error("unknown MixerOpt string")
	}
}

func TestEndpointString(t *testing.T) {
	e := Endpoint{Terminal: "buf", Inlet: true}
	if e.String() != "in:buf" {
		t.Errorf("String = %q", e.String())
	}
	e = Endpoint{Terminal: "waste"}
	if e.String() != "out:waste" {
		t.Errorf("String = %q", e.String())
	}
	e = Endpoint{Unit: "m1"}
	if e.String() != "m1" || e.IsTerminal() {
		t.Errorf("unit endpoint wrong: %q", e.String())
	}
}
