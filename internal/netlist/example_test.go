package netlist_test

import (
	"fmt"

	"columbas/internal/netlist"
)

func ExampleParseString() {
	n, err := netlist.ParseString(`
design demo
muxes 1
unit mix1 mixer sieve
unit inc1 chamber
connect in:sample mix1
connect mix1 inc1
connect inc1 out:waste
`)
	if err != nil {
		panic(err)
	}
	in, out := n.Terminals()
	fmt.Printf("%s: %d units, inlets %v, outlets %v\n", n.Name, n.NumUnits(), in, out)
	fmt.Printf("mix1 degree: %d\n", n.Degree("mix1"))
	// Output:
	// demo: 2 units, inlets [sample], outlets [waste]
	// mix1 degree: 2
}
