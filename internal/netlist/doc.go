// Package netlist defines the plain-text application description that is
// the input of Columba S (Section 3, Figure 7(a)): the number, type and
// logic connection of the required functional units, plus chip-level
// directives such as the number of multiplexers.
//
// # File format
//
// The format is line-oriented; '#' starts a comment. Directives:
//
//	design <name>
//	muxes <1|2>
//	unit <id> mixer [sieve|celltrap]
//	unit <id> chamber [w=<µm>] [h=<µm>]
//	connect <a> <b>            # dedicated flow channel between two endpoints
//	net <a> <b> <c> ...        # shared interconnect (>=3 endpoints -> switch)
//	parallel <id> <id> ...     # units driven by common control channels
//
// Endpoints are unit ids, or terminals "in:<fluid>" / "out:<fluid>" naming
// a fluid inlet or outlet on a flow boundary.
//
// Key types: Parse and ParseString return a Netlist of Units and Nets
// (with Endpoint terminals); errors carry line numbers via ParseError.
package netlist
