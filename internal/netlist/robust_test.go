package netlist

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser pseudo-random token soup built
// from the grammar's vocabulary: every input must either parse or return
// an error — never panic.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"design", "muxes", "unit", "connect", "net", "parallel",
		"mixer", "chamber", "sieve", "celltrap",
		"a", "b", "c", "in:x", "out:y", "in:", "out:",
		"1", "2", "3", "-5", "w=100", "h=-1", "w=", "#", "\n",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		tokens := rng.Intn(40)
		for i := 0; i < tokens; i++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			if rng.Intn(4) == 0 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", b.String(), r)
				}
			}()
			n, err := ParseString(b.String())
			if err == nil && n != nil {
				// Parsed inputs must survive Format/re-parse.
				if _, err2 := ParseString(n.Format()); err2 != nil {
					t.Fatalf("round-trip failed for %q: %v", n.Format(), err2)
				}
			}
		}()
	}
}

// Deeply nested / long inputs stay linear.
func TestParserLargeInput(t *testing.T) {
	var b strings.Builder
	b.WriteString("design big\n")
	for i := 0; i < 2000; i++ {
		b.WriteString("unit u")
		b.WriteString(itoa(i))
		b.WriteString(" chamber\n")
	}
	for i := 0; i < 2000; i++ {
		b.WriteString("connect in:x")
		b.WriteString(itoa(i))
		b.WriteString(" u")
		b.WriteString(itoa(i))
		b.WriteString("\n")
	}
	n, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if n.NumUnits() != 2000 {
		t.Fatalf("units = %d", n.NumUnits())
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
