package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// UnitType is the kind of a functional unit.
type UnitType int

// Functional unit types from the Columba S module model library (§2.1).
// Inlet modules were removed from the library, and switches are not
// user-declared: they are introduced by netlist planarization.
const (
	Mixer UnitType = iota
	Chamber
)

func (u UnitType) String() string {
	switch u {
	case Mixer:
		return "mixer"
	case Chamber:
		return "chamber"
	}
	return "unknown"
}

// MixerOpt selects the mixer configuration of Figure 3(b)-(d).
type MixerOpt int

// Mixer configurations.
const (
	Plain    MixerOpt = iota // Figure 3(b): valves accessed from one side
	Sieve                    // Figure 3(c): adds four sieve valves (washing)
	CellTrap                 // Figure 3(d): adds four separation valves (cell capture)
)

func (o MixerOpt) String() string {
	switch o {
	case Plain:
		return "plain"
	case Sieve:
		return "sieve"
	case CellTrap:
		return "celltrap"
	}
	return "unknown"
}

// Unit is one functional unit required by the application.
type Unit struct {
	Name string
	Type UnitType
	Opt  MixerOpt // mixers only
	// W, H override the library footprint in µm when positive.
	W, H float64
}

// Endpoint is one end of a logic connection: either a functional unit or a
// fluid terminal on a flow boundary.
type Endpoint struct {
	Unit     string // unit name, or "" for a terminal
	Terminal string // fluid name, or "" for a unit endpoint
	Inlet    bool   // terminal direction: true = fluid inlet, false = outlet
}

// IsTerminal reports whether e names a boundary terminal.
func (e Endpoint) IsTerminal() bool { return e.Terminal != "" }

func (e Endpoint) String() string {
	if e.IsTerminal() {
		if e.Inlet {
			return "in:" + e.Terminal
		}
		return "out:" + e.Terminal
	}
	return e.Unit
}

// Net is one logic connection: all endpoints must be mutually reachable
// through the flow layer. Two-endpoint nets become dedicated channels;
// larger nets are realised with a switch during planarization.
type Net struct {
	Endpoints []Endpoint
}

// Netlist is a parsed application description.
type Netlist struct {
	Name     string
	Muxes    int // number of multiplexers, 1 or 2 (default 1)
	Units    []Unit
	Nets     []Net
	Parallel [][]string // groups of unit names sharing control channels
}

// Unit returns the named unit, or nil.
func (n *Netlist) Unit(name string) *Unit {
	for i := range n.Units {
		if n.Units[i].Name == name {
			return &n.Units[i]
		}
	}
	return nil
}

// NumUnits returns the number of functional units (#u in Table 1).
func (n *Netlist) NumUnits() int { return len(n.Units) }

// ParallelGroup returns the index of the parallel group containing the
// unit, or -1 when the unit is not parallelised.
func (n *Netlist) ParallelGroup(unit string) int {
	for gi, g := range n.Parallel {
		for _, u := range g {
			if u == unit {
				return gi
			}
		}
	}
	return -1
}

// Degree returns the number of net endpoints attached to the unit.
func (n *Netlist) Degree(unit string) int {
	d := 0
	for _, net := range n.Nets {
		for _, e := range net.Endpoints {
			if e.Unit == unit {
				d++
			}
		}
	}
	return d
}

// Terminals returns the distinct terminal names referenced by the netlist,
// sorted, split into inlets and outlets.
func (n *Netlist) Terminals() (inlets, outlets []string) {
	seenIn := map[string]bool{}
	seenOut := map[string]bool{}
	for _, net := range n.Nets {
		for _, e := range net.Endpoints {
			if !e.IsTerminal() {
				continue
			}
			if e.Inlet && !seenIn[e.Terminal] {
				seenIn[e.Terminal] = true
				inlets = append(inlets, e.Terminal)
			}
			if !e.Inlet && !seenOut[e.Terminal] {
				seenOut[e.Terminal] = true
				outlets = append(outlets, e.Terminal)
			}
		}
	}
	sort.Strings(inlets)
	sort.Strings(outlets)
	return inlets, outlets
}

// ParseError reports a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("netlist: line %d: %s", e.Line, e.Msg)
}

// Parse reads a netlist description.
func Parse(r io.Reader) (*Netlist, error) {
	n := &Netlist{Muxes: 1}
	sc := bufio.NewScanner(r)
	lineNo := 0
	fail := func(msg string, args ...any) error {
		return &ParseError{Line: lineNo, Msg: fmt.Sprintf(msg, args...)}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "design":
			if len(fields) != 2 {
				return nil, fail("design takes exactly one name")
			}
			n.Name = fields[1]
		case "muxes":
			if len(fields) != 2 {
				return nil, fail("muxes takes exactly one number")
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || (v != 1 && v != 2) {
				return nil, fail("muxes must be 1 or 2, got %q", fields[1])
			}
			n.Muxes = v
		case "unit":
			u, err := parseUnit(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if n.Unit(u.Name) != nil {
				return nil, fail("duplicate unit %q", u.Name)
			}
			n.Units = append(n.Units, u)
		case "connect":
			if len(fields) != 3 {
				return nil, fail("connect takes exactly two endpoints")
			}
			eps, err := parseEndpoints(n, fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			n.Nets = append(n.Nets, Net{Endpoints: eps})
		case "net":
			if len(fields) < 3 {
				return nil, fail("net takes at least two endpoints")
			}
			eps, err := parseEndpoints(n, fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			n.Nets = append(n.Nets, Net{Endpoints: eps})
		case "parallel":
			if len(fields) < 3 {
				return nil, fail("parallel takes at least two unit names")
			}
			group := fields[1:]
			for _, name := range group {
				if n.Unit(name) == nil {
					return nil, fail("parallel references unknown unit %q", name)
				}
				if n.ParallelGroup(name) >= 0 {
					return nil, fail("unit %q already in a parallel group", name)
				}
			}
			n.Parallel = append(n.Parallel, group)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n.Name == "" {
		return nil, &ParseError{Line: lineNo, Msg: "missing design directive"}
	}
	if len(n.Units) == 0 {
		return nil, &ParseError{Line: lineNo, Msg: "netlist declares no units"}
	}
	return n, nil
}

// ParseString parses a netlist from a string.
func ParseString(s string) (*Netlist, error) { return Parse(strings.NewReader(s)) }

func parseUnit(fields []string) (Unit, error) {
	if len(fields) < 2 {
		return Unit{}, fmt.Errorf("unit takes a name and a type")
	}
	u := Unit{Name: fields[0]}
	switch fields[1] {
	case "mixer":
		u.Type = Mixer
	case "chamber":
		u.Type = Chamber
	default:
		return Unit{}, fmt.Errorf("unknown unit type %q", fields[1])
	}
	for _, f := range fields[2:] {
		switch {
		case f == "sieve":
			if u.Type != Mixer {
				return Unit{}, fmt.Errorf("sieve option only applies to mixers")
			}
			u.Opt = Sieve
		case f == "celltrap":
			if u.Type != Mixer {
				return Unit{}, fmt.Errorf("celltrap option only applies to mixers")
			}
			u.Opt = CellTrap
		case strings.HasPrefix(f, "w="):
			v, err := strconv.ParseFloat(f[2:], 64)
			if err != nil || v <= 0 {
				return Unit{}, fmt.Errorf("bad width %q", f)
			}
			u.W = v
		case strings.HasPrefix(f, "h="):
			v, err := strconv.ParseFloat(f[2:], 64)
			if err != nil || v <= 0 {
				return Unit{}, fmt.Errorf("bad height %q", f)
			}
			u.H = v
		default:
			return Unit{}, fmt.Errorf("unknown unit option %q", f)
		}
	}
	return u, nil
}

func parseEndpoints(n *Netlist, fields []string) ([]Endpoint, error) {
	var eps []Endpoint
	for _, f := range fields {
		switch {
		case strings.HasPrefix(f, "in:"):
			name := f[len("in:"):]
			if name == "" {
				return nil, fmt.Errorf("empty inlet name")
			}
			eps = append(eps, Endpoint{Terminal: name, Inlet: true})
		case strings.HasPrefix(f, "out:"):
			name := f[len("out:"):]
			if name == "" {
				return nil, fmt.Errorf("empty outlet name")
			}
			eps = append(eps, Endpoint{Terminal: name, Inlet: false})
		default:
			if n.Unit(f) == nil {
				return nil, fmt.Errorf("unknown unit %q (units must be declared before use)", f)
			}
			eps = append(eps, Endpoint{Unit: f})
		}
	}
	return eps, nil
}

// Format renders the netlist back into its textual form; Parse(Format(n))
// round-trips.
func (n *Netlist) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %s\n", n.Name)
	fmt.Fprintf(&b, "muxes %d\n", n.Muxes)
	for _, u := range n.Units {
		fmt.Fprintf(&b, "unit %s %s", u.Name, u.Type)
		if u.Type == Mixer && u.Opt != Plain {
			fmt.Fprintf(&b, " %s", u.Opt)
		}
		if u.W > 0 {
			fmt.Fprintf(&b, " w=%g", u.W)
		}
		if u.H > 0 {
			fmt.Fprintf(&b, " h=%g", u.H)
		}
		b.WriteByte('\n')
	}
	for _, net := range n.Nets {
		if len(net.Endpoints) == 2 {
			fmt.Fprintf(&b, "connect %s %s\n", net.Endpoints[0], net.Endpoints[1])
			continue
		}
		b.WriteString("net")
		for _, e := range net.Endpoints {
			b.WriteByte(' ')
			b.WriteString(e.String())
		}
		b.WriteByte('\n')
	}
	for _, g := range n.Parallel {
		fmt.Fprintf(&b, "parallel %s\n", strings.Join(g, " "))
	}
	return b.String()
}

// Validate performs semantic checks beyond parsing: pin budgets and
// parallel-group shape. It returns nil when the netlist is synthesizable.
func (n *Netlist) Validate() error {
	for _, u := range n.Units {
		if d := n.Degree(u.Name); d == 0 {
			return fmt.Errorf("netlist: unit %q has no connections", u.Name)
		}
	}
	for gi, g := range n.Parallel {
		if len(g) < 2 {
			return fmt.Errorf("netlist: parallel group %d has fewer than two units", gi)
		}
	}
	for ni, net := range n.Nets {
		if len(net.Endpoints) < 2 {
			return fmt.Errorf("netlist: net %d has fewer than two endpoints", ni)
		}
		terminalOnly := true
		for _, e := range net.Endpoints {
			if !e.IsTerminal() {
				terminalOnly = false
			}
		}
		if terminalOnly {
			return fmt.Errorf("netlist: net %d connects only terminals", ni)
		}
	}
	return nil
}
