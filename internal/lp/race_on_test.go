//go:build race

package lp

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
