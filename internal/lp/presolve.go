package lp

import "math"

// Presolve: affine-substitution reduction. The physical-synthesis models
// are dominated by two-term equality rows — x_r = x_l + w (constraint 1),
// attachment glue (x_f = x_block), control-rect bindings — so eliminating
// one variable per such row roughly halves the working problem, which the
// dense simplex repays quadratically.
//
// The reduction maintains a union-find over variables where every member
// is an affine function of its root: x_v = K·x_root + C. Two-term
// equality rows merge classes, one-term equality rows fix roots; bounds
// and costs map onto the roots, and the reduced solution maps back.

type psClass struct {
	parent int
	k, c   float64 // x_this = k · x_parent + c
}

type presolved struct {
	classes []psClass
	fixed   []bool    // indexed by root
	value   []float64 // value of fixed roots
	prob    *Problem  // reduced problem
	rootOf  []int     // original root var -> reduced var (-1 otherwise)
	infeas  bool
}

const psTol = 1e-9

// find resolves v to (root, K, C) with x_v = K·x_root + C, compressing
// paths.
func (ps *presolved) find(v int) (int, float64, float64) {
	cl := ps.classes[v]
	if cl.parent == v {
		return v, 1, 0
	}
	r, k, c := ps.find(cl.parent)
	nk, nc := cl.k*k, cl.k*c+cl.c
	ps.classes[v] = psClass{parent: r, k: nk, c: nc}
	return r, nk, nc
}

// presolve builds the reduced problem, or returns nil when no reduction
// applies.
func (p *Problem) presolve() *presolved {
	n := len(p.cost)
	ps := &presolved{
		classes: make([]psClass, n),
		fixed:   make([]bool, n),
		value:   make([]float64, n),
	}
	for i := range ps.classes {
		ps.classes[i] = psClass{parent: i, k: 1}
	}
	for v := 0; v < n; v++ {
		if p.lo[v] == p.hi[v] {
			ps.fixed[v] = true
			ps.value[v] = p.lo[v]
		}
	}

	// resolveRow folds a row through the current classes: surviving
	// root terms plus an adjusted rhs.
	type rt struct {
		root int
		coef float64
	}
	resolveRow := func(r rowDef) ([]rt, float64) {
		var terms []rt
		rhs := r.rhs
		for _, t := range r.terms {
			root, k, c := ps.find(t.Var)
			if ps.fixed[root] {
				rhs -= t.Coef * (k*ps.value[root] + c)
				continue
			}
			rhs -= t.Coef * c
			coef := t.Coef * k
			merged := false
			for i := range terms {
				if terms[i].root == root {
					terms[i].coef += coef
					merged = true
					break
				}
			}
			if !merged {
				terms = append(terms, rt{root, coef})
			}
		}
		out := terms[:0]
		for _, t := range terms {
			if math.Abs(t.coef) > psTol {
				out = append(out, t)
			}
		}
		return out, rhs
	}

	subsumed := make([]bool, len(p.rows))
	reductions := 0
	for ri, r := range p.rows {
		if r.sense != EQ {
			continue
		}
		terms, rhs := resolveRow(r)
		switch len(terms) {
		case 0:
			if math.Abs(rhs) > 1e-6 {
				ps.infeas = true
				return ps
			}
			subsumed[ri] = true
			reductions++
		case 1:
			root := terms[0].root
			ps.fixed[root] = true
			ps.value[root] = rhs / terms[0].coef
			subsumed[ri] = true
			reductions++
		case 2:
			// a·x + b·y = rhs  ->  x = (-b/a)·y + rhs/a.
			a, b := terms[0], terms[1]
			ps.classes[a.root] = psClass{parent: b.root, k: -b.coef / a.coef, c: rhs / a.coef}
			subsumed[ri] = true
			reductions++
		}
	}
	if reductions == 0 {
		return nil
	}

	// Verify fixed classes against every member's bounds, and intersect
	// member bounds / accumulate costs onto live roots.
	lo := make([]float64, n)
	hi := make([]float64, n)
	cost := make([]float64, n)
	for i := range lo {
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	for v := 0; v < n; v++ {
		root, k, c := ps.find(v)
		if ps.fixed[root] {
			val := k*ps.value[root] + c
			if val < p.lo[v]-1e-6 || val > p.hi[v]+1e-6 {
				ps.infeas = true
				return ps
			}
			continue
		}
		lv, hv := p.lo[v], p.hi[v]
		var rl, rh float64
		if k > 0 {
			rl, rh = (lv-c)/k, (hv-c)/k
		} else {
			rl, rh = (hv-c)/k, (lv-c)/k
		}
		lo[root] = math.Max(lo[root], rl)
		hi[root] = math.Min(hi[root], rh)
		cost[root] += p.cost[v] * k
	}

	ps.prob = NewProblem()
	ps.prob.deadline = p.deadline
	ps.prob.interrupt = p.interrupt
	ps.prob.kernel = p.kernel
	ps.rootOf = make([]int, n)
	for i := range ps.rootOf {
		ps.rootOf[i] = -1
	}
	for v := 0; v < n; v++ {
		root, _, _ := ps.find(v)
		if root != v || ps.fixed[root] {
			continue
		}
		if lo[root] > hi[root]+1e-6 {
			ps.infeas = true
			return ps
		}
		// Guard against inverted-by-noise bounds.
		l, h := lo[root], hi[root]
		if l > h {
			l = (l + h) / 2
			h = l
		}
		ps.rootOf[root] = ps.prob.AddVar(l, h, cost[root])
	}

	// Rewrite surviving rows over the reduced variables.
	for ri, r := range p.rows {
		if subsumed[ri] {
			continue
		}
		terms, rhs := resolveRow(r)
		if len(terms) == 0 {
			sat := true
			switch r.sense {
			case LE:
				sat = rhs >= -1e-6
			case GE:
				sat = rhs <= 1e-6
			case EQ:
				sat = math.Abs(rhs) <= 1e-6
			}
			if !sat {
				ps.infeas = true
				return ps
			}
			continue
		}
		out := make([]Term, 0, len(terms))
		for _, t := range terms {
			out = append(out, Term{Var: ps.rootOf[t.root], Coef: t.coef})
		}
		ps.prob.AddConstraint(out, r.sense, rhs)
	}
	return ps
}

// expand maps a reduced solution back to the original variable space.
func (ps *presolved) expand(x []float64, n int) []float64 {
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		root, k, c := ps.find(v)
		var rv float64
		if ps.fixed[root] {
			rv = ps.value[root]
		} else if ps.rootOf[root] >= 0 {
			rv = x[ps.rootOf[root]]
		}
		out[v] = k*rv + c
	}
	return out
}
