package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	return s
}

func wantObj(t *testing.T, s *Solution, obj float64) {
	t.Helper()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if math.Abs(s.Obj-obj) > 1e-5 {
		t.Fatalf("obj = %v, want %v", s.Obj, obj)
	}
}

func TestTrivialBounds(t *testing.T) {
	// min x subject to 2 <= x <= 5 --> x = 2
	p := NewProblem()
	x := p.AddVar(2, 5, 1)
	s := solveOK(t, p)
	wantObj(t, s, 2)
	if math.Abs(s.X[x]-2) > 1e-6 {
		t.Fatalf("x = %v", s.X[x])
	}
}

func TestMaximizeViaNegation(t *testing.T) {
	// max x+y st x+y <= 4, x <= 3, y <= 2  --> 4
	p := NewProblem()
	x := p.AddVar(0, 3, -1)
	y := p.AddVar(0, 2, -1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	s := solveOK(t, p)
	wantObj(t, s, -4)
}

func TestClassicDiet(t *testing.T) {
	// min 0.6a + 0.35b
	// st 5a + 7b >= 8 ; 4a + 2b >= 15 ; 2a + b >= 3
	p := NewProblem()
	a := p.AddVar(0, Inf, 0.6)
	b := p.AddVar(0, Inf, 0.35)
	p.AddConstraint([]Term{{a, 5}, {b, 7}}, GE, 8)
	p.AddConstraint([]Term{{a, 4}, {b, 2}}, GE, 15)
	p.AddConstraint([]Term{{a, 2}, {b, 1}}, GE, 3)
	s := solveOK(t, p)
	// optimum at a = 3.75, b = 0: 2.25
	wantObj(t, s, 2.25)
}

func TestEqualityRows(t *testing.T) {
	// min x+y st x + y = 10, x - y = 4  --> x=7, y=3
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	y := p.AddVar(0, Inf, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 4)
	s := solveOK(t, p)
	wantObj(t, s, 10)
	if math.Abs(s.X[x]-7) > 1e-6 || math.Abs(s.X[y]-3) > 1e-6 {
		t.Fatalf("x,y = %v,%v", s.X[x], s.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 10)
	p.AddConstraint([]Term{{x, 1}}, LE, 5)
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem()
	p.AddVar(5, 2, 1) // lo > hi
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, Inf, -1)
	y := p.AddVar(0, Inf, 0)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 3)
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x st x >= -7 via constraint (x itself is free)
	p := NewProblem()
	x := p.AddVar(-Inf, Inf, 1)
	p.AddConstraint([]Term{{x, 1}}, GE, -7)
	s := solveOK(t, p)
	wantObj(t, s, -7)
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y, -5 <= x <= 5, -3 <= y <= 3, x + y >= -6
	p := NewProblem()
	x := p.AddVar(-5, 5, 1)
	y := p.AddVar(-3, 3, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, -6)
	s := solveOK(t, p)
	wantObj(t, s, -6)
}

func TestBoundFlipPath(t *testing.T) {
	// max 2x + y with x,y in [0,1] and x + y <= 1.5: solution x=1, y=0.5.
	p := NewProblem()
	x := p.AddVar(0, 1, -2)
	y := p.AddVar(0, 1, -1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1.5)
	s := solveOK(t, p)
	wantObj(t, s, -2.5)
	if math.Abs(s.X[x]-1) > 1e-6 {
		t.Fatalf("x = %v, want 1", s.X[x])
	}
}

func TestDegenerateVertex(t *testing.T) {
	// A classic degenerate LP; must not cycle.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7 (Beale's example)
	p := NewProblem()
	x4 := p.AddVar(0, Inf, -0.75)
	x5 := p.AddVar(0, Inf, 150)
	x6 := p.AddVar(0, Inf, -0.02)
	x7 := p.AddVar(0, Inf, 6)
	p.AddConstraint([]Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0)
	p.AddConstraint([]Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0)
	p.AddConstraint([]Term{{x6, 1}}, LE, 1)
	s := solveOK(t, p)
	wantObj(t, s, -0.05)
}

func TestBigMDisjunction(t *testing.T) {
	// The paper's non-overlap pattern (3)-(5): with q fixed 0/1 the big-M
	// rows must behave as active constraint / tautology.
	const M = 1e4
	build := func(q1v, q2v float64) *Solution {
		p := NewProblem()
		xa := p.AddVar(0, Inf, 1) // left edge of rect A (width 10)
		xb := p.AddVar(0, Inf, 1) // left edge of rect B (width 10)
		q1 := p.AddVar(q1v, q1v, 0)
		q2 := p.AddVar(q2v, q2v, 0)
		// A right-of B or B right-of A
		p.AddConstraint([]Term{{xa, 1}, {xb, -1}, {q1, -M}}, LE, -10) // xa+10 <= xb + q1 M
		p.AddConstraint([]Term{{xb, 1}, {xa, -1}, {q2, -M}}, LE, -10)
		p.AddConstraint([]Term{{xb, 1}}, GE, 2)
		s, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// q1=0: A left of B. min xa+xb => xa=0, xb=max(2,10)=10
	s := build(0, 1)
	wantObj(t, s, 10)
	// q2=0: B left of A => xb=2, xa=12
	s = build(1, 0)
	wantObj(t, s, 14)
}

func TestRedundantAndDuplicateTerms(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	// x + x - 0.5x = 1.5x >= 3 --> x = 2
	p.AddConstraint([]Term{{x, 1}, {x, 1}, {x, -0.5}}, GE, 3)
	s := solveOK(t, p)
	wantObj(t, s, 2)
}

func TestSetBoundsReSolve(t *testing.T) {
	// Branch-and-bound usage pattern: change bounds between solves.
	p := NewProblem()
	x := p.AddVar(0, 1, -1)
	y := p.AddVar(0, 1, -1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1.2)
	s := solveOK(t, p)
	wantObj(t, s, -1.2)
	p.SetBounds(x, 0, 0)
	s = solveOK(t, p)
	wantObj(t, s, -1)
	p.SetBounds(x, 1, 1)
	s = solveOK(t, p)
	wantObj(t, s, -1.2)
	if math.Abs(s.X[y]-0.2) > 1e-6 {
		t.Fatalf("y = %v, want 0.2", s.X[y])
	}
}

func TestSetCost(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 10, 1)
	s := solveOK(t, p)
	wantObj(t, s, 0)
	p.SetCost(x, -1)
	s = solveOK(t, p)
	wantObj(t, s, -10)
}

func TestTransportation(t *testing.T) {
	// 2 plants (supply 20, 30) x 3 markets (demand 10, 25, 15).
	costs := [2][3]float64{{8, 6, 10}, {9, 12, 13}}
	p := NewProblem()
	var v [2][3]int
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			v[i][j] = p.AddVar(0, Inf, costs[i][j])
		}
	}
	supply := []float64{20, 30}
	demand := []float64{10, 25, 15}
	for i := 0; i < 2; i++ {
		p.AddConstraint([]Term{{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}}, LE, supply[i])
	}
	for j := 0; j < 3; j++ {
		p.AddConstraint([]Term{{v[0][j], 1}, {v[1][j], 1}}, EQ, demand[j])
	}
	s := solveOK(t, p)
	// optimal: plant1 -> m2 (20 @6); plant2 -> m1 (10 @9), m2 (5 @12), m3 (15 @13)
	wantObj(t, s, 20*6+10*9+5*12+15*13)
}

// Randomised consistency check: generate feasible-by-construction LPs and
// verify the solver's solution satisfies all constraints and beats (or ties)
// the known feasible point used for construction.
func TestRandomFeasibleLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(8)
		p := NewProblem()
		feas := make([]float64, n)
		for v := 0; v < n; v++ {
			feas[v] = rng.Float64() * 10
			p.AddVar(0, 20, rng.Float64()*4-2)
		}
		for r := 0; r < m; r++ {
			var terms []Term
			lhs := 0.0
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.6 {
					c := rng.Float64()*6 - 3
					terms = append(terms, Term{v, c})
					lhs += c * feas[v]
				}
			}
			if len(terms) == 0 {
				continue
			}
			// Make the row satisfied by the feasible point with slack.
			if rng.Float64() < 0.5 {
				p.AddConstraint(terms, LE, lhs+rng.Float64()*5)
			} else {
				p.AddConstraint(terms, GE, lhs-rng.Float64()*5)
			}
		}
		s, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v (feasible point exists)", trial, s.Status)
		}
		checkFeasible(t, p, s.X, trial)
		// Objective must not exceed the constructed feasible point's value.
		fObj := 0.0
		for v := 0; v < n; v++ {
			fObj += p.cost[v] * feas[v]
		}
		if s.Obj > fObj+1e-5 {
			t.Fatalf("trial %d: obj %v worse than known feasible %v", trial, s.Obj, fObj)
		}
	}
}

func checkFeasible(t *testing.T, p *Problem, x []float64, trial int) {
	t.Helper()
	const ftol = 1e-5
	for v := range p.cost {
		if x[v] < p.lo[v]-ftol || x[v] > p.hi[v]+ftol {
			t.Fatalf("trial %d: var %d = %v outside [%v,%v]", trial, v, x[v], p.lo[v], p.hi[v])
		}
	}
	for ri, r := range p.rows {
		lhs := 0.0
		for _, tm := range r.terms {
			lhs += tm.Coef * x[tm.Var]
		}
		switch r.sense {
		case LE:
			if lhs > r.rhs+ftol {
				t.Fatalf("trial %d: row %d violated: %v <= %v", trial, ri, lhs, r.rhs)
			}
		case GE:
			if lhs < r.rhs-ftol {
				t.Fatalf("trial %d: row %d violated: %v >= %v", trial, ri, lhs, r.rhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > ftol {
				t.Fatalf("trial %d: row %d violated: %v = %v", trial, ri, lhs, r.rhs)
			}
		}
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("sense strings wrong")
	}
	if Sense(99).String() != "?" {
		t.Error("unknown sense should be ?")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if Status(99).String() != "unknown" {
		t.Error("unknown status string wrong")
	}
}

func TestConstraintUnknownVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown variable")
		}
	}()
	p := NewProblem()
	p.AddConstraint([]Term{{5, 1}}, LE, 1)
}

func TestNumVarsRows(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 1, 0)
	p.AddConstraint([]Term{{x, 1}}, LE, 1)
	if p.NumVars() != 1 || p.NumRows() != 1 {
		t.Fatalf("NumVars/NumRows = %d/%d", p.NumVars(), p.NumRows())
	}
	if lo, hi := p.Bounds(x); lo != 0 || hi != 1 {
		t.Fatalf("Bounds = %v,%v", lo, hi)
	}
}
