//go:build !race

package lp

// raceEnabled reports whether the race detector instruments this build.
// The zero-alloc steady-state assertion is skipped under -race: the
// instrumentation itself allocates, which is not the property under test.
const raceEnabled = false
