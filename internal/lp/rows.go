package lp

// Row-level access for presolve and cut separation. Clone shares row
// storage between worker problems, so the mutating calls below demand a
// problem that owns its rows (CloneWithRows, or rows it appended
// itself); the branch-and-bound root presolve is the intended caller.

// Row returns the terms, sense and right-hand side of constraint row i.
// The returned slice is the problem's live storage — callers must treat
// it as read-only and use ReplaceRow to modify a row.
func (p *Problem) Row(i int) ([]Term, Sense, float64) {
	r := &p.rows[i]
	return r.terms, r.sense, r.rhs
}

// CloneWithRows returns an independent copy of the problem that owns a
// private deep copy of the constraint rows, unlike Clone (which shares
// row storage with the original — see Clone). Root presolve uses it to
// obtain a problem whose rows may be strengthened, replaced or removed
// without touching the model the copy came from. Like Clone, the copy
// starts with no workspace and zeroed counters.
func (p *Problem) CloneWithRows() *Problem {
	q := p.Clone()
	rows := make([]rowDef, len(p.rows))
	for i, r := range p.rows {
		rows[i] = rowDef{terms: append([]Term(nil), r.terms...), sense: r.sense, rhs: r.rhs}
	}
	q.rows = rows
	// Private storage is a structural change: any workspace column arena
	// built against the shared rows must rebuild before the next solve.
	q.rev++
	return q
}

// ReplaceRow swaps the contents of row i. Must only be called on a
// problem that owns its row storage; replacing a row on a plain Clone
// would silently mutate every other clone sharing the slice.
func (p *Problem) ReplaceRow(i int, terms []Term, sense Sense, rhs float64) {
	p.rows[i] = rowDef{terms: mergeTerms(terms), sense: sense, rhs: rhs}
	p.rev++
}

// DeleteRows removes every row for which drop returns true, preserving
// the order of the remainder, and returns how many were removed. Row
// indices shift down; like ReplaceRow this must only be used on a
// problem that owns its row storage, and never while a solve is in
// flight on any clone sharing it.
func (p *Problem) DeleteRows(drop func(i int) bool) int {
	kept := p.rows[:0]
	removed := 0
	for i := range p.rows {
		if drop(i) {
			removed++
			continue
		}
		kept = append(kept, p.rows[i])
	}
	if removed == 0 {
		p.rows = kept
		return 0
	}
	p.rows = kept
	p.rev++
	return removed
}
