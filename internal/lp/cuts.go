package lp

import "math"

// Gomory mixed-integer (GMI) cut separation from the kernel's own final
// tableau. Branch and bound calls this at the root: after a full-tableau
// optimal solve, every basis row whose basic variable is an integer
// structural at a fractional value yields one valid inequality that the
// current LP optimum violates, derived purely from the tableau row and
// the integrality of the shifted nonbasic variables. The cuts are
// returned over the structural variables (slack contributions are
// substituted back through their defining rows), so the caller can add
// them as ordinary ≤ constraints and re-solve.

// CutRow is one separated valid inequality Σ Terms·x ≤ RHS over the
// problem's structural variables.
type CutRow struct {
	Terms []Term
	RHS   float64
	// Violation is the Euclidean-normalized amount by which the LP point
	// the cut was separated from violates it; callers threshold on it to
	// keep only cuts that cut deeply.
	Violation float64
}

const (
	// gomoryAway: a basic integer variable must be at least this far from
	// integrality before its row is worth cutting on.
	gomoryAway = 0.01
	// cutCoefDrop: coefficients this small relative to the cut's largest
	// are folded into the right-hand side (conservatively, via the
	// variable's bounds) to keep the added rows sparse and stable.
	cutCoefDrop = 1e-11
	// cutMaxDynamic: reject cuts whose coefficient magnitudes span a wider
	// ratio than this — they are numerically untrustworthy.
	cutMaxDynamic = 1e7
	// intDataTol: tolerance for treating row data / bounds as integral.
	intDataTol = 1e-9
)

func nearInt(x float64) bool {
	return math.Abs(x-math.Round(x)) < intDataTol
}

// GomoryCuts derives GMI cuts from the final tableau of the immediately
// preceding solve on this problem, which must have been a full-tableau
// solve (SolveFrom path) that ended Optimal, with no row, bound or cost
// change since. Any other state returns nil. isInt flags the integer
// structural variables; at most max cuts are returned, each violated by
// the current LP optimum by at least minViol (normalized).
func (p *Problem) GomoryCuts(isInt []bool, max int, minViol float64) []CutRow {
	ws := p.ws
	if ws == nil || !ws.tabOptimal || ws.owner != p || ws.rev != p.rev || max <= 0 {
		return nil
	}
	t := &ws.tab
	m, nStru := t.m, t.nStru
	if m == 0 || nStru > len(isInt) {
		return nil
	}
	// Slack integrality: the slack of row r takes integer values at every
	// mixed-integer point iff the row's rhs and coefficients are integral
	// and every variable it touches is integer.
	intSlack := make([]bool, m)
	for i, r := range p.rows {
		ok := nearInt(r.rhs)
		for _, tm := range r.terms {
			if !isInt[tm.Var] || !nearInt(tm.Coef) {
				ok = false
				break
			}
		}
		intSlack[i] = ok
	}
	coef := make([]float64, nStru)
	var out []CutRow
	for i := 0; i < m && len(out) < max; i++ {
		bv := t.basis[i]
		if bv >= nStru || !isInt[bv] {
			continue
		}
		f0 := t.x[bv] - math.Floor(t.x[bv])
		if f0 < gomoryAway || f0 > 1-gomoryAway {
			continue
		}
		if c := p.gomoryFromRow(t, i, f0, isInt, intSlack, coef, minViol); c != nil {
			out = append(out, *c)
		}
	}
	return out
}

// gomoryFromRow derives the GMI cut of tableau row i with fractional
// part f0, writing scratch into coef (length nStru, zeroed on entry and
// exit). Returns nil when the row admits no valid or worthwhile cut.
//
// The derivation works in the shifted nonbasic space: with t_j ≥ 0 the
// distance of nonbasic column j from its resting bound, the tableau row
// reads x_B(i) = x̄_B(i) − Σ ā'_j t_j, and integrality of x_B(i) gives
// the GMI inequality Σ γ_j t_j ≥ f0 with
//
//	γ_j = f_j                 integral t_j, f_j ≤ f0   (f_j = frac(ā'_j))
//	γ_j = f0(1−f_j)/(1−f0)    integral t_j, f_j > f0
//	γ_j = ā'_j                continuous t_j, ā'_j ≥ 0
//	γ_j = −f0·ā'_j/(1−f0)     continuous t_j, ā'_j < 0
//
// which is then substituted back to structural space (t_j = x_j − lo_j,
// hi_j − x_j, or the slack's defining row) and returned in ≤ form.
func (p *Problem) gomoryFromRow(t *tableau, i int, f0 float64, isInt, intSlack []bool, coef []float64, minViol float64) *CutRow {
	nStru := t.nStru
	binvRow := t.binvRow(i)
	ratio := f0 / (1 - f0)
	K := 0.0
	rhsRelax := 0.0 // conservative rhs slack from folded-away tiny terms
	defer func() {
		for k := range coef {
			coef[k] = 0
		}
	}()
	for j := 0; j < t.n; j++ {
		if t.state[j] == basic || j >= t.nArt {
			continue // artificials are frozen at zero after phase 1
		}
		if t.hi[j]-t.lo[j] < tol && !math.IsInf(t.hi[j], 1) {
			continue // fixed column: t_j ≡ 0
		}
		a := 0.0
		for _, tm := range t.cols[j] {
			a += binvRow[tm.Var] * tm.Coef
		}
		if math.Abs(a) < 1e-12 {
			continue
		}
		atUpper := t.state[j] == atUp
		if atUpper {
			if math.IsInf(t.hi[j], 1) {
				return nil
			}
			a = -a
		} else if math.IsInf(t.lo[j], -1) {
			return nil // free nonbasic pinned at 0: no valid shift
		}
		integral := false
		if j < nStru {
			if atUpper {
				integral = isInt[j] && nearInt(t.hi[j])
			} else {
				integral = isInt[j] && nearInt(t.lo[j])
			}
		} else {
			integral = intSlack[j-nStru]
		}
		var g float64
		if integral {
			fj := a - math.Floor(a)
			if fj <= f0+intDataTol {
				g = fj
			} else {
				g = ratio * (1 - fj)
			}
		} else if a >= 0 {
			g = a
		} else {
			g = -ratio * a
		}
		if g < 1e-12 {
			continue
		}
		// Fold away a negligible term when its total reach is bounded:
		// Σ' γt ≥ f0 − γ_j·range_j remains valid.
		if rng := t.hi[j] - t.lo[j]; !math.IsInf(rng, 1) && g*rng < 1e-10 {
			rhsRelax += g * rng
			continue
		}
		// Substitute t_j back to structural space, accumulating the cut
		// left-hand side as K + Σ coef·x.
		if j < nStru {
			if atUpper {
				coef[j] -= g
				K += g * t.hi[j]
			} else {
				coef[j] += g
				K -= g * t.lo[j]
			}
		} else {
			r := j - nStru
			terms, _, rrhs := p.Row(r)
			if atUpper {
				// GE slack resting at 0: t = Σ a·x − b.
				K -= g * rrhs
				for _, tm := range terms {
					coef[tm.Var] += g * tm.Coef
				}
			} else {
				// LE slack resting at 0: t = b − Σ a·x.
				K += g * rrhs
				for _, tm := range terms {
					coef[tm.Var] -= g * tm.Coef
				}
			}
		}
	}
	// Σ γt ≥ f0 − rhsRelax  ⇒  Σ (−coef)·x ≤ K − f0 + rhsRelax.
	cutRHS := K - f0 + rhsRelax
	maxAbs := 0.0
	for _, c := range coef {
		if a := math.Abs(c); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return nil
	}
	var terms []Term
	minAbs := math.Inf(1)
	for v, c := range coef {
		a := math.Abs(c)
		if a == 0 {
			continue
		}
		if a < cutCoefDrop*maxAbs {
			// Fold −c·x into the rhs conservatively via the bounds; an
			// unbounded direction makes the fold invalid — reject.
			lo, hi := t.lo[v], t.hi[v]
			worst := math.Min(-c*lo, -c*hi)
			if math.IsInf(worst, -1) || math.IsNaN(worst) {
				return nil
			}
			cutRHS -= worst
			continue
		}
		if a < minAbs {
			minAbs = a
		}
		terms = append(terms, Term{Var: v, Coef: -c})
	}
	if len(terms) == 0 || maxAbs/minAbs > cutMaxDynamic {
		return nil
	}
	// Violation at the separated point, Euclidean-normalized.
	lhs, norm := 0.0, 0.0
	for _, tm := range terms {
		lhs += tm.Coef * t.x[tm.Var]
		norm += tm.Coef * tm.Coef
	}
	viol := (lhs - cutRHS) / math.Sqrt(norm)
	if viol < minViol {
		return nil
	}
	return &CutRow{Terms: terms, RHS: cutRHS, Violation: viol}
}
