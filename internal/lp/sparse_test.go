package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkInverseOps is the engine-agnostic counterpart of
// checkInverseExact: instead of reading the dense B⁻¹ element-wise, it
// verifies the basis representation through the same FTRAN operation the
// simplex uses — B⁻¹·A_v must equal the j-th unit vector for the
// variable v basic in row j, within the 1e-6 drift budget.
func checkInverseOps(t *testing.T, p *Problem, seed int64, step int) {
	t.Helper()
	tb := &p.ws.tab
	m := tb.m
	for j := 0; j < m; j++ {
		tb.ftranColumn(tb.basis[j])
		for i := 0; i < m; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(tb.ws.w[i]-want) > 1e-6 {
				t.Fatalf("seed %d step %d: (B⁻¹B)[%d][%d] = %v, want %v",
					seed, step, i, j, tb.ws.w[i], want)
			}
		}
	}
}

// TestKernelParse pins the strict flag grammar of ParseKernel.
func TestKernelParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
		err  bool
	}{
		{"", KernelAuto, false},
		{"auto", KernelAuto, false},
		{"dense", KernelDense, false},
		{"sparse", KernelSparse, false},
		{"Sparse", KernelAuto, true},
		{"lu", KernelAuto, true},
	} {
		got, err := ParseKernel(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	for _, k := range []Kernel{KernelAuto, KernelDense, KernelSparse} {
		if back, err := ParseKernel(k.String()); err != nil || back != k {
			t.Errorf("ParseKernel(%v.String()) = %v, %v", k, back, err)
		}
	}
}

// TestCloneInheritsKernel: branch-and-bound worker clones must solve
// with the same engine as the problem they were cloned from.
func TestCloneInheritsKernel(t *testing.T) {
	p := NewProblem()
	p.SetKernel(KernelSparse)
	if got := p.Clone().KernelMode(); got != KernelSparse {
		t.Fatalf("clone kernel = %v, want sparse", got)
	}
}

// TestSparseMatchesDenseRandom solves the randomized warm-start fixtures
// under both engines and requires identical statuses and objectives:
// the factorized path may pivot differently but must prove the same
// optima.
func TestSparseMatchesDenseRandom(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 40
	}
	for seed := int64(0); seed < seeds; seed++ {
		dense := randomLP(rand.New(rand.NewSource(seed)))
		dense.SetKernel(KernelDense)
		sparse := randomLP(rand.New(rand.NewSource(seed)))
		sparse.SetKernel(KernelSparse)
		ds, err := dense.Solve()
		if err != nil {
			t.Fatalf("seed %d dense: %v", seed, err)
		}
		ss, err := sparse.Solve()
		if err != nil {
			t.Fatalf("seed %d sparse: %v", seed, err)
		}
		if ds.Status != ss.Status {
			t.Fatalf("seed %d: dense status %v, sparse status %v", seed, ds.Status, ss.Status)
		}
		if ds.Status == Optimal && math.Abs(ds.Obj-ss.Obj) > 1e-6 {
			t.Fatalf("seed %d: dense obj %v, sparse obj %v", seed, ds.Obj, ss.Obj)
		}
	}
}

// TestSparseBtranConsistency checks the transpose solve directly: after
// an optimal sparse solve, a random position-space vector c pushed
// through BTRAN must satisfy Bᵀy = c, i.e. y·A_{basis[j]} = c_j for
// every basis column.
func TestSparseBtranConsistency(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		p.SetKernel(KernelSparse)
		sol, err := p.SolveFrom(nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sol.Status != Optimal {
			continue
		}
		tb := &p.ws.tab
		if !tb.sparse {
			t.Fatalf("seed %d: tableau not sparse under KernelSparse", seed)
		}
		m := tb.m
		c := make([]float64, m)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		cb := tb.f.cw
		copy(cb[:m], c)
		y := make([]float64, m)
		tb.f.btran(cb, y)
		for j := 0; j < m; j++ {
			dot := 0.0
			for _, tm := range tb.cols[tb.basis[j]] {
				dot += y[tm.Var] * tm.Coef
			}
			if math.Abs(dot-c[j]) > 1e-6 {
				t.Fatalf("seed %d: (Bᵀy)[%d] = %v, want %v", seed, j, dot, c[j])
			}
		}
	}
}

// TestSparseUpdatesMatchRefactorization is the sparse half of the
// numerical-drift property (see TestEtaUpdatesMatchRefactorization):
// with periodic refactorization disabled, 60-pivot-chain solves
// accumulate eta columns on the LU factors across solves via the
// factorization cache, and the factor-plus-eta operator must still
// agree with the basis it represents — and with a reference run that
// refactorizes after every pivot — to 1e-6.
func TestSparseUpdatesMatchRefactorization(t *testing.T) {
	const steps = 60
	runChain := func(seed int64, check bool) []float64 {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		p.SetKernel(KernelSparse)
		var objs []float64
		sol, err := p.SolveFrom(nil)
		if err != nil {
			t.Fatalf("seed %d: root: %v", seed, err)
		}
		basis := sol.Basis()
		for step := 0; step < steps; step++ {
			tightenOne(p, rng)
			sol, err = p.SolveFrom(basis)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if sol.Status == Optimal {
				objs = append(objs, sol.Obj)
				if check {
					checkInverseOps(t, p, seed, step)
				}
			} else {
				objs = append(objs, math.Inf(1))
			}
			if nb := sol.Basis(); nb != nil {
				basis = nb
			}
		}
		if check && p.ws.tab.m > 0 && p.ws.tab.sparse {
			// Final cross-check: a from-scratch refactorization of the same
			// basis must leave every FTRAN answer where the eta-updated
			// factors already had it.
			tb := &p.ws.tab
			m := tb.m
			before := make([]float64, 0, m*m)
			for j := 0; j < m; j++ {
				tb.ftranColumn(tb.basis[j])
				before = append(before, tb.ws.w[:m]...)
			}
			if !tb.factorize() {
				t.Fatalf("seed %d: final basis singular on refactorization", seed)
			}
			for j := 0; j < m; j++ {
				tb.ftranColumn(tb.basis[j])
				for i := 0; i < m; i++ {
					if math.Abs(before[j*m+i]-tb.ws.w[i]) > 1e-6 {
						t.Fatalf("seed %d: eta-updated (B⁻¹B)[%d][%d] = %v, refactorized %v",
							seed, i, j, before[j*m+i], tb.ws.w[i])
					}
				}
			}
		}
		return objs
	}

	for seed := int64(0); seed < 8; seed++ {
		prev := SetRefactorInterval(1 << 30)
		etaObjs := runChain(seed, true)
		SetRefactorInterval(1)
		refObjs := runChain(seed, false)
		SetRefactorInterval(prev)

		if len(etaObjs) != len(refObjs) {
			t.Fatalf("seed %d: %d eta objectives vs %d reference", seed, len(etaObjs), len(refObjs))
		}
		for i := range etaObjs {
			a, b := etaObjs[i], refObjs[i]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("seed %d step %d: eta status differs from reference", seed, i)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-5 {
				t.Fatalf("seed %d step %d: eta obj %v, reference obj %v", seed, i, a, b)
			}
		}
	}
}

// TestSparseWorkspaceReuse pins the factorization cache on the sparse
// path: re-solving an unchanged problem from its own optimal basis must
// reuse the factors (no refactorization), exactly as the dense cache
// does, and sparse counters must obey their identities.
func TestSparseWorkspaceReuse(t *testing.T) {
	var p *Problem
	var sol *Solution
	var err error
	for seed := int64(0); ; seed++ {
		if seed == 64 {
			t.Fatal("no seed produced an optimal root")
		}
		p = randomLP(rand.New(rand.NewSource(seed)))
		p.SetKernel(KernelSparse)
		sol, err = p.SolveFrom(nil)
		if err != nil {
			t.Fatalf("seed %d root: %v", seed, err)
		}
		if sol.Status == Optimal {
			break
		}
	}
	basis := sol.Basis()
	refacBefore := p.RefactorizationCount()
	for i := 0; i < 5; i++ {
		sol, err = p.SolveFrom(basis)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("resolve %d: status %v err %v", i, sol.Status, err)
		}
		basis = sol.Basis()
	}
	if got := p.WorkspaceReuseCount(); got != 5 {
		t.Errorf("WorkspaceReuseCount = %d, want 5", got)
	}
	if got := p.RefactorizationCount(); got != refacBefore {
		t.Errorf("RefactorizationCount grew %d -> %d on cache hits", refacBefore, got)
	}
	if p.SparseRefactorizationCount() > p.RefactorizationCount() {
		t.Errorf("SparseRefactorizations %d > Refactorizations %d",
			p.SparseRefactorizationCount(), p.RefactorizationCount())
	}
	if p.DenseFallbackCount() > p.SolveCount() {
		t.Errorf("DenseFallbacks %d > Solves %d", p.DenseFallbackCount(), p.SolveCount())
	}
	// Now force basis changes until a from-scratch factorization happens;
	// in sparse mode with no fill blow-up every refactorization must be a
	// sparse one (Refactorizations = SparseRefactorizations + dense ones,
	// and these tiny models never trip the fill guard).
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 40 && p.RefactorizationCount() == refacBefore; i++ {
		tightenOne(p, rng)
		sol, err = p.SolveFrom(basis)
		if err != nil {
			t.Fatalf("tighten resolve %d: %v", i, err)
		}
		if nb := sol.Basis(); nb != nil {
			basis = nb
		}
	}
	if p.RefactorizationCount() > refacBefore &&
		p.SparseRefactorizationCount()+p.DenseFallbackCount() == 0 {
		t.Errorf("Refactorizations grew to %d but SparseRefactorizations=%d DenseFallbacks=%d",
			p.RefactorizationCount(), p.SparseRefactorizationCount(), p.DenseFallbackCount())
	}
	if p.FillInCount() < 0 {
		t.Errorf("FillInCount = %d, want ≥ 0", p.FillInCount())
	}
}

// TestSparseWarmChainsMatchDense drives branch-and-bound-style warm
// chains under both engines and cross-checks every step's outcome.
func TestSparseWarmChainsMatchDense(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < seeds; seed++ {
		run := func(k Kernel) []float64 {
			rng := rand.New(rand.NewSource(seed))
			p := randomLP(rng)
			p.SetKernel(k)
			sol, err := p.SolveFrom(nil)
			if err != nil {
				t.Fatalf("seed %d %v root: %v", seed, k, err)
			}
			basis := sol.Basis()
			var objs []float64
			for step := 0; step < 20; step++ {
				tightenOne(p, rng)
				sol, err = p.SolveFrom(basis)
				if err != nil {
					t.Fatalf("seed %d %v step %d: %v", seed, k, step, err)
				}
				if sol.Status == Optimal {
					objs = append(objs, sol.Obj)
				} else {
					objs = append(objs, math.Inf(1))
				}
				if nb := sol.Basis(); nb != nil {
					basis = nb
				}
			}
			return objs
		}
		dense := run(KernelDense)
		sparse := run(KernelSparse)
		for i := range dense {
			a, b := dense[i], sparse[i]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("seed %d step %d: dense/sparse status mismatch", seed, i)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-5 {
				t.Fatalf("seed %d step %d: dense obj %v, sparse obj %v", seed, i, a, b)
			}
		}
	}
}
