package lp

import (
	"math/rand"
	"testing"
	"time"
)

// TestDeadlineInterruptsLargeSolve builds an LP big enough that the
// simplex cannot finish instantly and verifies an already-expired
// deadline aborts it with IterLimit instead of running to completion.
func TestDeadlineInterruptsLargeSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewProblem()
	const n = 220
	for i := 0; i < n; i++ {
		p.AddVar(0, 50, rng.Float64()*4-2)
	}
	for r := 0; r < n; r++ {
		var terms []Term
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.2 {
				terms = append(terms, Term{v, rng.Float64()*6 - 3})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint(terms, LE, 20+rng.Float64()*30)
	}
	p.SetDeadline(time.Now().Add(-time.Second))
	start := time.Now()
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != IterLimit {
		t.Fatalf("status = %v, want iteration-limit under expired deadline", s.Status)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("deadline ignored: solve took %v", time.Since(start))
	}
	// Clearing the deadline lets the same problem solve normally.
	p.SetDeadline(time.Time{})
	s, err = p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == IterLimit {
		t.Fatalf("status = %v after clearing deadline", s.Status)
	}
}

// A generous deadline must not perturb results.
func TestDeadlineGenerous(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 10, -1)
	p.AddConstraint([]Term{{x, 2}}, LE, 10)
	p.SetDeadline(time.Now().Add(time.Hour))
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Obj != -5 {
		t.Fatalf("solution = %+v", s)
	}
}
