// Package lp implements a linear-programming solver: a dense,
// bounded-variable, two-phase primal simplex method.
//
// Columba S solves its physical-synthesis models with a commercial MILP
// solver (Gurobi). This reproduction has no solver dependency, so lp —
// together with the branch-and-bound driver in internal/milp — stands in
// for it. The solver handles the model class the paper needs: minimisation
// of a linear objective over continuous variables with individual bounds
// (possibly infinite) and ≤ / ≥ / = row constraints, including the big-M
// disjunctions of constraints (3)–(11).
//
// The implementation is a textbook revised simplex with an explicitly
// maintained basis inverse, bound-flip ratio tests, Dantzig pricing with a
// Bland's-rule fallback for anti-cycling, and a phase-1 artificial-variable
// start. It is dense and intended for the model sizes Columba S produces
// (tens of rectangles, hundreds to a few thousand rows), not for
// general-purpose large-scale LP.
//
// Key types: Problem accumulates variables and rows and Solve returns a
// Solution with Status; Clone supports the concurrent branch-and-bound
// workers, and SolveCount/PivotCount expose the effort counters behind
// the milp.SearchStats LP totals.
package lp
