package lp

import "math"

// Sparse LU basis engine (see DESIGN.md, "Sparse kernel"). The basis
// matrix B is factorized into P·B·Q = L·U by a left-looking
// Gilbert–Peierls elimination: columns are processed in ascending
// nonzero-count order (the static Markowitz proxy), each column is
// sparse-triangular-solved against the L built so far (symbolic reach by
// depth-first search, numeric update in topological order), and the
// pivot row is chosen among the eligible rows within luTau of the
// column's largest entry, breaking ties toward the sparsest original
// row. Factors live in flat grow-only arenas inside the Workspace; a
// from-scratch factorization allocates nothing once the arenas reached
// their high-water capacity.
//
// Between refactorizations, pivots append product-form eta columns to an
// eta file instead of touching the factors, so B⁻¹ is represented as
// E_k⁻¹…E_1⁻¹·(LU)⁻¹ and both FTRAN (w = B⁻¹a) and BTRAN (y = B⁻ᵀc)
// stay O(nnz). The counted periodic refactorization (refactorEvery) and
// the cross-solve factorization cache work exactly as on the dense path:
// the factors-plus-eta-file pair is the cached object.

const (
	// luTau is the threshold-pivoting relaxation: any row whose column
	// entry is within luTau of the largest magnitude is pivot-eligible,
	// and the sparsest such row wins (stability vs fill-in trade).
	luTau = 0.1
	// luSingTol: a column whose largest eligible entry is below this is
	// declared numerically singular.
	luSingTol = 1e-9
	// luFillFactor bounds accepted fill-in: a factorization whose
	// off-diagonal nonzeros exceed luFillFactor·(nnz(B)+m) aborts and the
	// run falls back to the dense inverse (counted as a DenseFallback).
	luFillFactor = 16
)

// sparseLU factorization outcomes.
const (
	luOK = iota
	luSingular
	luFill
)

// sparseLU holds the factors, the eta file and every scratch vector the
// sparse engine needs. All slices are grow-only workspace arenas.
type sparseLU struct {
	m int

	pivRow   []int32 // elimination step k → original row pivoted at k
	pivCol   []int32 // elimination step k → basis position eliminated at k
	posOfRow []int32 // original row → elimination step (−1 while unpivoted)

	// L: unit lower triangular, stored as per-step elimination columns
	// (off-diagonal entries only, row-indexed).
	lPtr []int32
	lIdx []int32
	lVal []float64
	// U: per-step columns; uIdx holds earlier elimination steps t < k,
	// the diagonal lives in uDiag.
	uPtr  []int32
	uIdx  []int32
	uVal  []float64
	uDiag []float64

	// Product-form eta file: eta e replaced basis position etaPos[e] with
	// the direction column w (diagonal w_r in etaDiag, off-pivot entries
	// position-indexed in etaIdx/etaVal).
	etaPtr  []int32
	etaPos  []int32
	etaDiag []float64
	etaIdx  []int32
	etaVal  []float64

	// Scratch.
	xw     []float64 // dense numeric accumulator, zero outside live patterns
	vw     []float64 // per-step solve values
	cw     []float64 // position-space BTRAN input
	pat    []int32   // symbolic reach, topological order
	stack  []int32   // DFS node stack
	iter   []int32   // DFS per-depth child cursor
	flag   []int32   // DFS visited marks, generation-counted
	gen    int32
	cnt    []int32 // per-column nonzero counts
	bkt    []int32 // counting-sort buckets
	ord    []int32 // column elimination order
	rowCnt []int32 // static row nonzero counts of B (Markowitz tie-break)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// ensure sizes every fixed-width buffer for an m-row basis; append-grown
// arenas keep their capacity.
func (f *sparseLU) ensure(m int) {
	f.m = m
	f.pivRow = growI32(f.pivRow, m)
	f.pivCol = growI32(f.pivCol, m)
	f.posOfRow = growI32(f.posOfRow, m)
	f.lPtr = growI32(f.lPtr, m+1)
	f.uPtr = growI32(f.uPtr, m+1)
	f.uDiag = growF(f.uDiag, m)
	f.xw = growF(f.xw, m)
	f.vw = growF(f.vw, m)
	f.cw = growF(f.cw, m)
	f.pat = growI32(f.pat, m)
	f.stack = growI32(f.stack, m)
	f.iter = growI32(f.iter, m)
	if cap(f.flag) < m {
		f.flag = make([]int32, m)
		f.gen = 0
	} else {
		f.flag = f.flag[:m]
	}
	f.cnt = growI32(f.cnt, m)
	f.bkt = growI32(f.bkt, m+2)
	f.ord = growI32(f.ord, m)
	f.rowCnt = growI32(f.rowCnt, m)
	// xw needs no clearing: a fresh allocation is zeroed by make, and
	// every factorize pass restores zeros before returning (including the
	// singular/fill abort paths), so the zero-outside-live-pattern
	// invariant holds across ensure calls of any size.
}

// resetEtas empties the eta file (every refactorization starts clean).
func (f *sparseLU) resetEtas() {
	f.etaPtr = append(f.etaPtr[:0], 0)
	f.etaPos = f.etaPos[:0]
	f.etaDiag = f.etaDiag[:0]
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
}

// setIdentity installs the trivial factorization of a diagonal basis
// (the cold start's signed artificial basis): L empty, U diagonal 1 —
// the caller overwrites uDiag entries with the ±1 signs.
func (f *sparseLU) setIdentity(m int) {
	f.ensure(m)
	f.resetEtas()
	f.lIdx = f.lIdx[:0]
	f.lVal = f.lVal[:0]
	f.uIdx = f.uIdx[:0]
	f.uVal = f.uVal[:0]
	for k := 0; k < m; k++ {
		f.pivRow[k] = int32(k)
		f.pivCol[k] = int32(k)
		f.posOfRow[k] = int32(k)
		f.uDiag[k] = 1
		f.lPtr[k+1] = 0
		f.uPtr[k+1] = 0
	}
	f.lPtr[0], f.uPtr[0] = 0, 0
}

// factorize computes the LU factors of the basis matrix whose column j
// is cols[basis[j]]. Returns the outcome plus nnz(B) and the fill-in
// (factor nonzeros beyond nnz(B)) for the observability counters. On
// luSingular/luFill the factors are unusable and must not be solved
// against.
func (f *sparseLU) factorize(basis []int, cols [][]Term, m int) (status, bNnz, fill int) {
	f.ensure(m)
	f.resetEtas()
	f.lIdx = f.lIdx[:0]
	f.lVal = f.lVal[:0]
	f.uIdx = f.uIdx[:0]
	f.uVal = f.uVal[:0]
	f.lPtr[0], f.uPtr[0] = 0, 0
	for i := 0; i < m; i++ {
		f.posOfRow[i] = -1
		f.rowCnt[i] = 0
	}
	for j := 0; j < m; j++ {
		c := cols[basis[j]]
		f.cnt[j] = int32(len(c))
		bNnz += len(c)
		for _, tm := range c {
			f.rowCnt[tm.Var]++
		}
	}
	// Column order: ascending nonzero count, stable (counting sort).
	bkt := f.bkt[:m+2]
	for i := range bkt {
		bkt[i] = 0
	}
	for j := 0; j < m; j++ {
		bkt[f.cnt[j]]++
	}
	start := int32(0)
	for b := 0; b <= m; b++ {
		c := bkt[b]
		bkt[b] = start
		start += c
	}
	for j := 0; j < m; j++ {
		f.ord[bkt[f.cnt[j]]] = int32(j)
		bkt[f.cnt[j]]++
	}

	fillMax := luFillFactor * (bNnz + m)
	for k := 0; k < m; k++ {
		j := int(f.ord[k])
		col := cols[basis[j]]
		// Symbolic: reach of the column's rows through the pivoted part of
		// L, collected in topological order into pat[top:m].
		f.gen++
		top := m
		for _, tm := range col {
			r0 := int32(tm.Var)
			if f.flag[r0] == f.gen {
				continue
			}
			depth := 0
			f.stack[0] = r0
			for depth >= 0 {
				node := f.stack[depth]
				if f.flag[node] != f.gen {
					f.flag[node] = f.gen
					if t := f.posOfRow[node]; t >= 0 {
						f.iter[depth] = f.lPtr[t]
					} else {
						f.iter[depth] = -1
					}
				}
				descended := false
				if it := f.iter[depth]; it >= 0 {
					end := f.lPtr[f.posOfRow[node]+1]
					for it < end {
						child := f.lIdx[it]
						it++
						if f.flag[child] != f.gen {
							f.iter[depth] = it
							depth++
							f.stack[depth] = child
							descended = true
							break
						}
					}
					if !descended {
						f.iter[depth] = it
					}
				}
				if descended {
					continue
				}
				top--
				f.pat[top] = node
				depth--
			}
		}
		// Numeric: scatter the column, then eliminate in topological order.
		for _, tm := range col {
			f.xw[tm.Var] = tm.Coef
		}
		for q := top; q < m; q++ {
			node := f.pat[q]
			t := f.posOfRow[node]
			if t < 0 {
				continue
			}
			xr := f.xw[node]
			if xr == 0 {
				continue
			}
			for e := f.lPtr[t]; e < f.lPtr[t+1]; e++ {
				f.xw[f.lIdx[e]] -= f.lVal[e] * xr
			}
		}
		// Threshold pivot choice among the unpivoted rows.
		amax := 0.0
		for q := top; q < m; q++ {
			node := f.pat[q]
			if f.posOfRow[node] >= 0 {
				continue
			}
			if a := math.Abs(f.xw[node]); a > amax {
				amax = a
			}
		}
		if amax <= luSingTol {
			for q := top; q < m; q++ {
				f.xw[f.pat[q]] = 0
			}
			return luSingular, bNnz, 0
		}
		pr := int32(-1)
		prCnt := int32(math.MaxInt32)
		thresh := luTau * amax
		for q := top; q < m; q++ {
			node := f.pat[q]
			if f.posOfRow[node] >= 0 {
				continue
			}
			if math.Abs(f.xw[node]) < thresh {
				continue
			}
			if c := f.rowCnt[node]; pr < 0 || c < prCnt || (c == prCnt && node < pr) {
				pr, prCnt = node, c
			}
		}
		piv := f.xw[pr]
		// Emit the U column (pivoted rows) and L column (the rest).
		for q := top; q < m; q++ {
			node := f.pat[q]
			x := f.xw[node]
			f.xw[node] = 0
			if node == pr || x == 0 {
				continue
			}
			if t := f.posOfRow[node]; t >= 0 {
				f.uIdx = append(f.uIdx, t)
				f.uVal = append(f.uVal, x)
			} else {
				f.lIdx = append(f.lIdx, node)
				f.lVal = append(f.lVal, x/piv)
			}
		}
		f.uDiag[k] = piv
		f.pivRow[k] = pr
		f.pivCol[k] = int32(j)
		f.posOfRow[pr] = int32(k)
		f.lPtr[k+1] = int32(len(f.lIdx))
		f.uPtr[k+1] = int32(len(f.uIdx))
		if len(f.lIdx)+len(f.uIdx) > fillMax {
			return luFill, bNnz, 0
		}
	}
	fill = len(f.lIdx) + len(f.uIdx) + m - bNnz
	if fill < 0 {
		fill = 0
	}
	return luOK, bNnz, fill
}

// ftran solves B·w = z in place: z enters row-indexed and leaves as the
// basis-position-indexed solution (the dense kernel's w = B⁻¹·a).
func (f *sparseLU) ftran(z []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		zk := z[f.pivRow[k]]
		if zk == 0 {
			continue
		}
		for e := f.lPtr[k]; e < f.lPtr[k+1]; e++ {
			z[f.lIdx[e]] -= f.lVal[e] * zk
		}
	}
	v := f.vw
	for k := m - 1; k >= 0; k-- {
		xk := z[f.pivRow[k]] / f.uDiag[k]
		v[k] = xk
		if xk == 0 {
			continue
		}
		for e := f.uPtr[k]; e < f.uPtr[k+1]; e++ {
			z[f.pivRow[f.uIdx[e]]] -= f.uVal[e] * xk
		}
	}
	for k := 0; k < m; k++ {
		z[f.pivCol[k]] = v[k]
	}
	// Eta file, chronological: B = B₀·E₁…E_k ⇒ B⁻¹ = E_k⁻¹…E₁⁻¹·B₀⁻¹.
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		zr := z[r]
		if zr == 0 {
			continue
		}
		pr := zr / f.etaDiag[e]
		z[r] = pr
		for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
			z[f.etaIdx[q]] -= f.etaVal[q] * pr
		}
	}
}

// btran solves Bᵀ·y = c: c is basis-position-indexed and consumed as
// scratch; y receives the row-indexed result (the dense kernel's
// y = c_B·B⁻¹). c and y must be distinct slices.
func (f *sparseLU) btran(c, y []float64) {
	m := f.m
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		s := c[r]
		for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
			s -= f.etaVal[q] * c[f.etaIdx[q]]
		}
		c[r] = s / f.etaDiag[e]
	}
	v := f.vw
	for k := 0; k < m; k++ {
		s := c[f.pivCol[k]]
		for e := f.uPtr[k]; e < f.uPtr[k+1]; e++ {
			s -= f.uVal[e] * v[f.uIdx[e]]
		}
		v[k] = s / f.uDiag[k]
	}
	for k := 0; k < m; k++ {
		y[f.pivRow[k]] = v[k]
	}
	for k := m - 1; k >= 0; k-- {
		lo, hi := f.lPtr[k], f.lPtr[k+1]
		if lo == hi {
			continue
		}
		s := y[f.pivRow[k]]
		for e := lo; e < hi; e++ {
			s -= f.lVal[e] * y[f.lIdx[e]]
		}
		y[f.pivRow[k]] = s
	}
}

// appendEta records the pivot that replaced basis position r with the
// direction column w (w = B⁻¹·A_enter, position-indexed) — the sparse
// counterpart of the dense kernel's in-place inverse update.
func (f *sparseLU) appendEta(r int, w []float64) {
	f.etaPos = append(f.etaPos, int32(r))
	f.etaDiag = append(f.etaDiag, w[r])
	for i, wi := range w[:f.m] {
		if wi != 0 && i != r {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, wi)
		}
	}
	f.etaPtr = append(f.etaPtr, int32(len(f.etaIdx)))
}

// factorNonzeros returns nnz(L)+nnz(U) including the unit/diagonal
// entries — the resident size of the current factors.
func (f *sparseLU) factorNonzeros() int {
	return len(f.lIdx) + len(f.uIdx) + 2*f.m
}
