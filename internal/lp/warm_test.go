package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomLP builds a random bounded LP the way branch-and-bound sees them:
// a mix of binaries-as-[0,1] boxes and wider continuous variables under a
// handful of LE/GE/EQ rows.
func randomLP(rng *rand.Rand) *Problem {
	p := NewProblem()
	nv := 2 + rng.Intn(6)
	for v := 0; v < nv; v++ {
		if rng.Intn(2) == 0 {
			p.AddVar(0, 1, rng.NormFloat64())
		} else {
			p.AddVar(0, 5+rng.Float64()*5, rng.NormFloat64())
		}
	}
	nr := 1 + rng.Intn(4)
	for r := 0; r < nr; r++ {
		var terms []Term
		for v := 0; v < nv; v++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, Term{Var: v, Coef: float64(rng.Intn(7) - 3)})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{Var: rng.Intn(nv), Coef: 1}}
		}
		sense := Sense(rng.Intn(3))
		rhs := float64(rng.Intn(9) - 2)
		if sense == EQ {
			rhs = float64(rng.Intn(3)) // keep equalities satisfiable more often
		}
		p.AddConstraint(terms, sense, rhs)
	}
	return p
}

// tightenOne applies a branch-and-bound-style one-variable bound change.
func tightenOne(p *Problem, rng *rand.Rand) {
	v := rng.Intn(p.NumVars())
	lo, hi := p.Bounds(v)
	if rng.Intn(2) == 0 {
		p.SetBounds(v, lo, math.Max(lo, math.Floor((lo+hi)/2)))
	} else {
		p.SetBounds(v, math.Min(hi, math.Floor((lo+hi)/2)+1), hi)
	}
}

func sameOutcome(t *testing.T, seed int64, warm, cold *Solution) {
	t.Helper()
	if warm.Status != cold.Status {
		t.Fatalf("seed %d: warm status %v, cold status %v", seed, warm.Status, cold.Status)
	}
	if warm.Status == Optimal && math.Abs(warm.Obj-cold.Obj) > 1e-5 {
		t.Fatalf("seed %d: warm obj %v, cold obj %v", seed, warm.Obj, cold.Obj)
	}
}

// TestSolveFromNilMatchesSolve pins the cold full-tableau path of
// SolveFrom against the presolving Solve on random LPs, and checks that
// an Optimal outcome always carries a reusable basis.
func TestSolveFromNilMatchesSolve(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		cold, err := p.Clone().Solve()
		if err != nil {
			t.Fatalf("seed %d: Solve: %v", seed, err)
		}
		q := p.Clone()
		warm, err := q.SolveFrom(nil)
		if err != nil {
			t.Fatalf("seed %d: SolveFrom(nil): %v", seed, err)
		}
		sameOutcome(t, seed, warm, cold)
		if warm.Status == Optimal && warm.Basis() == nil {
			t.Fatalf("seed %d: optimal SolveFrom solution has no basis", seed)
		}
		if q.WarmStartCount() != 0 || q.ColdSolveCount() != 1 || q.WarmStartFallbackCount() != 0 {
			t.Fatalf("seed %d: SolveFrom(nil) counters warm=%d cold=%d fb=%d",
				seed, q.WarmStartCount(), q.ColdSolveCount(), q.WarmStartFallbackCount())
		}
	}
}

// TestWarmAgreesWithCold is the kernel-level equivalence check: solve a
// parent, tighten one bound the way a branch-and-bound child does, and
// require the warm-started child solve to agree with a cold solve of the
// same child — repeatedly, down a chain of tightenings.
func TestWarmAgreesWithCold(t *testing.T) {
	warmUsed := 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		p := randomLP(rng)
		sol, err := p.SolveFrom(nil)
		if err != nil {
			t.Fatalf("seed %d: root solve: %v", seed, err)
		}
		basis := sol.Basis()
		for step := 0; step < 4 && basis != nil; step++ {
			tightenOne(p, rng)
			warm, err := p.SolveFrom(basis)
			if err != nil {
				t.Fatalf("seed %d step %d: SolveFrom: %v", seed, step, err)
			}
			cold, err := p.Clone().Solve()
			if err != nil {
				t.Fatalf("seed %d step %d: cold Solve: %v", seed, step, err)
			}
			sameOutcome(t, seed, warm, cold)
			basis = warm.Basis()
		}
		warmUsed += int(p.WarmStartCount())
		if p.SolveCount() != p.WarmStartCount()+p.ColdSolveCount() {
			t.Fatalf("seed %d: solves=%d warm=%d cold=%d", seed, p.SolveCount(), p.WarmStartCount(), p.ColdSolveCount())
		}
		if p.PivotCount() != p.WarmPivotCount()+p.ColdPivotCount() {
			t.Fatalf("seed %d: pivots=%d warm=%d cold=%d", seed, p.PivotCount(), p.WarmPivotCount(), p.ColdPivotCount())
		}
	}
	if warmUsed == 0 {
		t.Fatalf("warm path never used across the whole suite")
	}
}

// TestWarmStartSkipsPhase1 checks the point of the whole exercise: a warm
// start re-enters the simplex without the artificial phase 1.
func TestWarmStartSkipsPhase1(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 10, 1)
	y := p.AddVar(0, 10, 2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 4)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 2)
	sol, err := p.SolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("root: %v %v", sol, err)
	}
	if p.Phase1RowCount() != 2 {
		t.Fatalf("cold phase-1 rows = %d, want 2", p.Phase1RowCount())
	}
	p.SetBounds(x, 0, 1) // branch: x <= 1
	warm, err := p.SolveFrom(sol.Basis())
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm: %v %v", warm, err)
	}
	if p.WarmStartCount() != 1 {
		t.Fatalf("warm start not used (fallbacks=%d)", p.WarmStartFallbackCount())
	}
	if p.Phase1RowCount() != 2 {
		t.Fatalf("warm start ran phase 1: rows = %d", p.Phase1RowCount())
	}
	// min x+2y st x+y>=4, x<=1 --> x=1, y=3, obj=7
	wantObj(t, warm, 7)
}

// TestWarmStartInfeasibleChild checks that the dual repair proves
// infeasibility (the common prune outcome in branch and bound) instead of
// falling back.
func TestWarmStartInfeasibleChild(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 10, 1)
	y := p.AddVar(0, 10, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 8)
	sol, err := p.SolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("root: %v %v", sol, err)
	}
	p.SetBounds(x, 0, 2)
	p.SetBounds(y, 0, 2) // x+y >= 8 now impossible
	warm, err := p.SolveFrom(sol.Basis())
	if err != nil {
		t.Fatalf("SolveFrom: %v", err)
	}
	if warm.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", warm.Status)
	}
	if p.WarmStartCount() != 1 || p.WarmStartFallbackCount() != 0 {
		t.Fatalf("warm=%d fallbacks=%d, want 1/0", p.WarmStartCount(), p.WarmStartFallbackCount())
	}
}

// TestWarmStartStaleBasisFallsBack feeds SolveFrom a basis from an
// unrelated problem shape and expects a counted cold fallback, not an
// error or a wrong answer.
func TestWarmStartStaleBasisFallsBack(t *testing.T) {
	other := NewProblem()
	other.AddVar(0, 1, 1)
	other.AddConstraint([]Term{{0, 1}}, LE, 1)
	osol, err := other.SolveFrom(nil)
	if err != nil || osol.Basis() == nil {
		t.Fatalf("other: %v %v", osol, err)
	}
	p := NewProblem()
	x := p.AddVar(0, 3, -1)
	y := p.AddVar(0, 2, -1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	sol, err := p.SolveFrom(osol.Basis())
	if err != nil {
		t.Fatalf("SolveFrom: %v", err)
	}
	wantObj(t, sol, -4)
	if p.WarmStartFallbackCount() != 1 || p.ColdSolveCount() != 1 || p.WarmStartCount() != 0 {
		t.Fatalf("counters warm=%d cold=%d fb=%d, want 0/1/1",
			p.WarmStartCount(), p.ColdSolveCount(), p.WarmStartFallbackCount())
	}
}

// TestBasisSharedAcrossClones mimics the worker handoff: a basis captured
// on one Problem clone warm-starts a solve on another.
func TestBasisSharedAcrossClones(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 4, -2)
	y := p.AddVar(0, 4, -3)
	p.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 8)
	p.AddConstraint([]Term{{x, 2}, {y, 1}}, LE, 8)
	a := p.Clone()
	sol, err := a.SolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("root: %v %v", sol, err)
	}
	b := p.Clone()
	b.SetBounds(int(x), 0, 1)
	warm, err := b.SolveFrom(sol.Basis())
	if err != nil {
		t.Fatalf("SolveFrom on clone: %v", err)
	}
	if b.WarmStartCount() != 1 {
		t.Fatalf("clone did not warm-start (fallbacks=%d)", b.WarmStartFallbackCount())
	}
	cold, err := b.Clone().Solve()
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	sameOutcome(t, 0, warm, cold)
}

// TestReducedCostsSigns sanity-checks the reduced costs used by the
// root's bound fixing: nonnegative at a lower bound, nonpositive at an
// upper bound, and predictive of the objective change of a forced move.
func TestReducedCostsSigns(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 1, 5) // expensive: stays at lo, rc ≈ 5
	y := p.AddVar(0, 10, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 3)
	sol, err := p.SolveFrom(nil)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol, err)
	}
	rc := sol.ReducedCosts()
	if rc == nil {
		t.Fatalf("no reduced costs on optimal solution")
	}
	if rc[x] < 1e-7 {
		t.Fatalf("rc[x] = %v, want > 0 (nonbasic at lower bound)", rc[x])
	}
	// Forcing x to 1 must degrade the objective by about rc[x]·1.
	p.SetBounds(x, 1, 1)
	forced, err := p.SolveFrom(sol.Basis())
	if err != nil || forced.Status != Optimal {
		t.Fatalf("forced: %v %v", forced, err)
	}
	if math.Abs((forced.Obj-sol.Obj)-rc[x]) > 1e-5 {
		t.Fatalf("obj moved %v, reduced cost predicted %v", forced.Obj-sol.Obj, rc[x])
	}
}
