package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Inf is the bound value representing "unbounded" in either direction.
var Inf = math.Inf(1)

// Sense is the relational operator of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // Σ aᵢxᵢ ≤ b
	GE              // Σ aᵢxᵢ ≥ b
	EQ              // Σ aᵢxᵢ = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Problem is a linear program under construction. Variables and
// constraints are added incrementally; bounds and costs may be changed
// between Solve calls (branch-and-bound relies on this).
type Problem struct {
	cost      []float64
	lo        []float64
	hi        []float64
	rows      []rowDef
	rev       int64 // bumped on every structural change (vars/rows added)
	deadline  time.Time
	interrupt <-chan struct{}
	kernel    Kernel // basis-factorization engine selection (see SetKernel)

	// ws is the kernel scratch memory, created lazily on first solve and
	// reused for the problem's lifetime (see Workspace). Not copied by
	// Clone: each clone — one per branch-and-bound worker — owns its own.
	ws *Workspace

	// Cumulative observability counters (see SolveCount / PivotCount).
	// Not copied by Clone: each clone reports its own work.
	solves        int64
	pivots        int64
	warmSolves    int64
	coldSolves    int64
	warmFallbacks int64
	warmPivots    int64
	phase1Rows    int64
	etaUpdates    int64
	refactors     int64
	wsReuses      int64
	sparseRefacs  int64
	denseFBs      int64
	fillIn        int64
	basisNnzPeak  int64
}

// SetDeadline makes Solve abort with IterLimit once the wall clock passes
// t (checked periodically inside the simplex loop). The zero time means
// no deadline. Branch and bound uses this so a single oversized LP cannot
// blow through the search budget.
func (p *Problem) SetDeadline(t time.Time) { p.deadline = t }

// SetInterrupt makes Solve abort with IterLimit as soon as ch is closed,
// checked at the same cadence as the deadline. A nil channel (the
// default) disables the check. Branch and bound threads its caller's
// cancellation here so even a single in-flight LP stops within a few
// dozen pivots instead of running out its deadline.
func (p *Problem) SetInterrupt(ch <-chan struct{}) { p.interrupt = ch }

// budgetStop reports whether the problem's budget is exhausted: the
// deadline passed or the interrupt fired. Solve paths use it to tell a
// genuine stop (return IterLimit to the caller) from a numerical stall
// (retry on a different pivot path).
func (p *Problem) budgetStop() bool {
	if !p.deadline.IsZero() && !time.Now().Before(p.deadline) {
		return true
	}
	if p.interrupt != nil {
		select {
		case <-p.interrupt:
			return true
		default:
		}
	}
	return false
}

type rowDef struct {
	terms []Term
	sense Sense
	rhs   float64
}

// NewProblem returns an empty LP.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.cost) }

// NumRows returns the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar adds a variable with bounds [lo, hi] and objective coefficient
// cost, returning its index. Use -Inf / Inf for free directions.
func (p *Problem) AddVar(lo, hi, cost float64) int {
	p.cost = append(p.cost, cost)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	p.rev++
	return len(p.cost) - 1
}

// Clone returns an independent copy of the problem. Bounds, costs and the
// deadline of the clone may be changed freely without affecting the
// original — branch-and-bound workers rely on this to explore different
// subtrees concurrently. The constraint rows themselves are shared
// (Solve never mutates them); neither problem may gain rows while the
// other is solving. The clone starts with no workspace and zeroed
// counters: each worker owns its scratch memory and reports its own
// work.
func (p *Problem) Clone() *Problem {
	return &Problem{
		cost:      append([]float64(nil), p.cost...),
		lo:        append([]float64(nil), p.lo...),
		hi:        append([]float64(nil), p.hi...),
		rows:      p.rows[:len(p.rows):len(p.rows)],
		rev:       p.rev,
		deadline:  p.deadline,
		interrupt: p.interrupt,
		kernel:    p.kernel,
	}
}

// SetCost replaces the objective coefficient of variable v.
func (p *Problem) SetCost(v int, cost float64) { p.cost[v] = cost }

// Cost returns the current objective coefficient of variable v.
func (p *Problem) Cost(v int) float64 { return p.cost[v] }

// SetBounds replaces the bounds of variable v.
func (p *Problem) SetBounds(v int, lo, hi float64) {
	p.lo[v] = lo
	p.hi[v] = hi
}

// Bounds returns the current bounds of variable v.
func (p *Problem) Bounds(v int) (lo, hi float64) { return p.lo[v], p.hi[v] }

// AddConstraint adds the row Σ terms (sense) rhs. Terms referring to the
// same variable are accumulated. Returns the row index.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) int {
	merged := mergeTerms(terms)
	for _, t := range merged {
		if t.Var < 0 || t.Var >= len(p.cost) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
	}
	p.rows = append(p.rows, rowDef{terms: merged, sense: sense, rhs: rhs})
	p.rev++
	return len(p.rows) - 1
}

func mergeTerms(terms []Term) []Term {
	out := make([]Term, 0, len(terms))
	idx := make(map[int]int, len(terms))
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		if k, ok := idx[t.Var]; ok {
			out[k].Coef += t.Coef
		} else {
			idx[t.Var] = len(out)
			out = append(out, t)
		}
	}
	return out
}

// RowsSatisfied reports whether x (length NumVars) satisfies every
// constraint row within tol. Variable bounds are not checked.
func (p *Problem) RowsSatisfied(x []float64, tol float64) bool {
	for _, r := range p.rows {
		lhs := 0.0
		for _, t := range r.terms {
			lhs += t.Coef * x[t.Var]
		}
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol {
				return false
			}
		case GE:
			if lhs < r.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return false
			}
		}
	}
	return true
}

// Solution is the result of a Solve call.
type Solution struct {
	Status Status
	X      []float64 // values of the problem variables (length NumVars)
	Obj    float64   // objective value at X (minimisation)
	Iters  int       // simplex iterations across both phases

	basis   *Basis    // optimal basis snapshot (nil when unavailable)
	redCost []float64 // reduced costs of the structural variables at X
	p1rows  int       // rows the artificial phase 1 had to process
}

// Basis returns a snapshot of the optimal simplex basis, or nil when the
// solve did not produce one (presolved, trivially infeasible, or
// non-optimal outcomes). The snapshot is immutable and safe to share
// across goroutines and Problem clones; feed it to SolveFrom on a problem
// with the same rows to warm-start a related solve.
func (s *Solution) Basis() *Basis { return s.basis }

// ReducedCosts returns the reduced costs of the structural variables at
// the optimum, or nil when unavailable. For a variable nonbasic at its
// lower bound the entry is ≥ 0 and measures the objective degradation per
// unit increase; at the upper bound it is ≤ 0. Branch-and-bound uses
// these for reduced-cost bound fixing at the root.
func (s *Solution) ReducedCosts() []float64 { return s.redCost }

// reset prepares a Solution for reuse: recycle, when non-nil, donates
// its X and reduced-cost buffer capacity (the caller has promised it no
// longer reads them — see SolveFromReuse). nStru is the structural
// variable count of the new result.
func resetSolution(recycle *Solution, nStru int) *Solution {
	s := recycle
	if s == nil {
		s = &Solution{}
	}
	s.Status = Optimal
	s.Obj = 0
	s.Iters = 0
	s.p1rows = 0
	s.basis = nil
	if cap(s.X) >= nStru {
		s.X = s.X[:nStru]
		for i := range s.X {
			s.X[i] = 0
		}
	} else {
		s.X = make([]float64, nStru)
	}
	if s.redCost != nil {
		s.redCost = s.redCost[:0]
	}
	return s
}

const (
	tol     = 1e-7
	pivTol  = 1e-9
	stall   = 200 // degenerate iterations before switching to Bland's rule
	refresh = 120 // iterations between basic-value refreshes
	// stabPivTol is the relative pivot-stability threshold: a ratio-test
	// winner whose pivot element is below stabPivTol × max|w| triggers a
	// refactorization and re-price instead of a basis-corrupting pivot.
	stabPivTol = 1e-8
)

// nonbasic variable states
const (
	atLo int8 = iota
	atUp
	basic
)

// tableau is the working state of one simplex run over the equality form
// A·x = b with bounded variables (structurals, slacks, artificials).
// Every slice is a view into the problem's Workspace; the struct itself
// is the workspace's reused tab field, so a steady-state solve allocates
// nothing here.
type tableau struct {
	ws    *Workspace
	m, n  int       // rows, total columns
	nStru int       // structural variable count
	nArt  int       // first artificial column index (= nStru + m slacks)
	cols  [][]Term  // column-sparse A (Term.Var is the row index here)
	b     []float64 // right-hand sides
	lo    []float64
	hi    []float64
	cost  []float64 // phase-2 costs

	basis     []int // basis[i] = variable basic in row i
	state     []int8
	x         []float64
	binv      []float64 // m×m row-major B⁻¹ (workspace-backed, dense engine)
	sparse    bool      // this run factorizes instead of inverting
	f         *sparseLU // workspace-owned sparse factors (valid when sparse)
	iters     int
	maxIter   int
	deadline  time.Time
	interrupt <-chan struct{}
	// forceBland prices with Bland's rule from the first iteration — the
	// cold path's verification retry uses it to walk a different, maximally
	// cautious pivot sequence after a default run went numerically wrong.
	forceBland bool

	// Per-run kernel tallies, folded into the Problem counters only when
	// the run's result is actually returned (abandoned warm attempts
	// leave the cumulative counters untouched, keeping the documented
	// identities exact).
	etaUpd      int64
	refac       int64
	sparseRefac int64  // subset of refac performed by the sparse LU engine
	fillIn      int64  // cumulative LU fill-in across this run's factorizations
	basisNnz    int64  // peak nnz(B) observed at factorization time
	denseFB     bool   // the sparse engine fell back to the dense inverse
	reusedInv   bool   // install skipped factorization via the workspace cache
	basisDirty  bool   // basis or nonbasic states changed since install
	invBad      bool   // B⁻¹ is untrusted (mid-run refactorization failed)
	stabHits    int    // stability-guard triggers: the run saw numerical distress
	installed   *Basis // snapshot installed by a warm start (nil when cold)
}

// Solve optimises the problem with the current bounds and costs.
func (p *Problem) Solve() (*Solution, error) {
	sol, err := p.solve()
	if sol != nil {
		p.solves++
		p.coldSolves++
		p.pivots += int64(sol.Iters)
		p.phase1Rows += int64(sol.p1rows)
	}
	return sol, err
}

// SolveCount returns the number of completed Solve calls on this problem
// since creation (clones start at zero). Branch-and-bound workers read it
// to report LP-solve totals without any shared-counter traffic on the hot
// path: each worker owns its clone, so the counter has a single writer.
func (p *Problem) SolveCount() int64 { return p.solves }

// PivotCount returns the cumulative simplex iterations (phase 1 + phase 2
// pivots) across all Solve calls on this problem.
func (p *Problem) PivotCount() int64 { return p.pivots }

// WarmStartCount returns the number of SolveFrom calls that re-entered
// the simplex from a supplied basis (the warm path ran to completion).
func (p *Problem) WarmStartCount() int64 { return p.warmSolves }

// ColdSolveCount returns the number of solves that went through the full
// two-phase method from an artificial basis: every plain Solve, every
// SolveFrom without a usable basis, and every warm-start fallback.
// SolveCount() == WarmStartCount() + ColdSolveCount() always holds.
func (p *Problem) ColdSolveCount() int64 { return p.coldSolves }

// WarmStartFallbackCount returns how many SolveFrom calls were handed a
// basis but had to abandon it (singular, stale, or numerically off) and
// re-solve cold. Fallbacks are counted under ColdSolveCount.
func (p *Problem) WarmStartFallbackCount() int64 { return p.warmFallbacks }

// WarmPivotCount returns the simplex iterations spent inside successful
// warm starts (dual repair + primal polish). PivotCount() ==
// WarmPivotCount() + ColdPivotCount() always holds.
func (p *Problem) WarmPivotCount() int64 { return p.warmPivots }

// ColdPivotCount returns the simplex iterations spent in cold two-phase
// solves, phase 1 included.
func (p *Problem) ColdPivotCount() int64 { return p.pivots - p.warmPivots }

// Phase1RowCount returns the cumulative constraint-row count processed by
// artificial phase-1 runs — the work warm starts exist to avoid. A warm
// start contributes zero; every cold solve contributes its row count.
func (p *Problem) Phase1RowCount() int64 { return p.phase1Rows }

// EtaUpdateCount returns the cumulative product-form (eta) updates
// applied to B⁻¹ — one per basis-changing pivot of every solve whose
// result was returned. EtaUpdateCount() ≤ PivotCount() always holds
// (bound-flip iterations change no basis and apply no update).
func (p *Problem) EtaUpdateCount() int64 { return p.etaUpdates }

// RefactorizationCount returns the number of from-scratch Gauss-Jordan
// factorizations of the basis matrix: warm-start installs that missed
// the workspace's factorization cache, plus the counted periodic
// refactorizations that flush eta-update drift (see SetRefactorInterval).
// The diagonal artificial start basis of a cold solve is written in
// place and is not counted.
func (p *Problem) RefactorizationCount() int64 { return p.refactors }

// WorkspaceReuseCount returns the number of completed solves that
// skipped the O(m³) basis factorization entirely because the workspace
// already held B⁻¹ for exactly the requested basis — the steady-state
// branch-and-bound case where a worker expands a child of the node it
// just solved. WorkspaceReuseCount() ≤ WarmStartCount() always holds.
func (p *Problem) WorkspaceReuseCount() int64 { return p.wsReuses }

// foldKernelCounters merges the kernel-level tallies of q — a reduced
// problem the presolver solved on this problem's behalf — into p.
// Solve/pivot counts are deliberately excluded: those flow back through
// the returned Solution, and folding them here would double-count.
func (p *Problem) foldKernelCounters(q *Problem) {
	p.etaUpdates += q.etaUpdates
	p.refactors += q.refactors
	p.sparseRefacs += q.sparseRefacs
	p.denseFBs += q.denseFBs
	p.fillIn += q.fillIn
	if q.basisNnzPeak > p.basisNnzPeak {
		p.basisNnzPeak = q.basisNnzPeak
	}
}

// foldTableau accumulates a finished run's kernel tallies. Called only
// for tableaus whose result is returned to the caller, so abandoned warm
// attempts never skew the counters.
func (p *Problem) foldTableau(t *tableau) {
	p.etaUpdates += t.etaUpd
	p.refactors += t.refac
	p.sparseRefacs += t.sparseRefac
	p.fillIn += t.fillIn
	// Sample the final basis too: a solve that stays under the
	// refactorization interval never factorizes, and the peak would
	// otherwise read zero for exactly the large single-LP models the
	// counter exists to describe.
	var bnnz int64
	for j := 0; j < t.m; j++ {
		bnnz += int64(len(t.cols[t.basis[j]]))
	}
	if bnnz > t.basisNnz {
		t.basisNnz = bnnz
	}
	if t.basisNnz > p.basisNnzPeak {
		p.basisNnzPeak = t.basisNnz
	}
	if t.denseFB {
		p.denseFBs++
	}
	if t.reusedInv {
		p.wsReuses++
	}
}

// SparseRefactorizationCount returns the subset of RefactorizationCount
// performed by the sparse LU engine; the remainder ran the dense
// Gauss-Jordan rebuild. SparseRefactorizationCount() ≤
// RefactorizationCount() always holds.
func (p *Problem) SparseRefactorizationCount() int64 { return p.sparseRefacs }

// DenseFallbackCount returns the number of completed solves during which
// the sparse engine abandoned its factors (fill-in blow-up at
// refactorization time) and finished the run on the dense inverse.
// DenseFallbackCount() ≤ SolveCount() always holds: a run falls back at
// most once and stays dense until its next install.
func (p *Problem) DenseFallbackCount() int64 { return p.denseFBs }

// FillInCount returns the cumulative LU fill-in — factor nonzeros beyond
// nnz(B), summed over the sparse refactorizations of every returned run.
// Zero whenever SparseRefactorizationCount is zero.
func (p *Problem) FillInCount() int64 { return p.fillIn }

// BasisNonzeroPeak returns the largest basis-matrix nonzero count
// observed at factorization time (a high-water mark, not a sum). Solves
// that never refactorize — the cold start's diagonal artificial basis is
// written in place — contribute nothing.
func (p *Problem) BasisNonzeroPeak() int64 { return p.basisNnzPeak }

func (p *Problem) solve() (*Solution, error) {
	if p.ws != nil {
		p.ws.tabOptimal = false
	}
	for v := range p.cost {
		if p.lo[v] > p.hi[v]+tol {
			// Conflicting bounds make the whole problem trivially infeasible;
			// branch-and-bound produces such nodes routinely.
			return &Solution{Status: Infeasible, X: make([]float64, len(p.cost))}, nil
		}
	}
	if ps := p.presolve(); ps != nil {
		if ps.infeas {
			return &Solution{Status: Infeasible, X: make([]float64, len(p.cost))}, nil
		}
		inner, err := ps.prob.Solve()
		if err != nil {
			return nil, err
		}
		if inner.Status != IterLimit || p.budgetStop() {
			// The reduced problem ran its own kernel; its factorization
			// tallies belong to this solve. Pivot and solve counts flow
			// back through the returned Solution instead, so only the
			// kernel counters fold here. The IterLimit fall-through below
			// abandons the reduced run, so — like a failed warm attempt —
			// its tallies are dropped.
			p.foldKernelCounters(ps.prob)
			out := &Solution{Status: inner.Status, Iters: inner.Iters, X: make([]float64, len(p.cost)), p1rows: inner.p1rows}
			if inner.Status == Optimal {
				out.X = ps.expand(inner.X, len(p.cost))
				for v, xv := range out.X {
					out.Obj += p.cost[v] * xv
				}
			}
			return out, nil
		}
		// The reduced problem hit the iteration limit without the deadline
		// passing — almost always numerical breakdown rather than a genuinely
		// hard LP: the affine substitutions (x = k·y + c with extreme k) can
		// destroy the scaling of rows that were well-conditioned in the
		// original space, driving the reduced basis singular. The reduction
		// is only an optimization, so fall through and solve the original
		// problem with the full tableau instead of surfacing a bogus limit.
	}
	t := p.newTableau()
	p1 := t.phase1()
	st := p1
	if p1 == Optimal {
		st = t.phase2()
	}
	if (st == Optimal && !p.warmResultOK(t.x[:t.nStru])) || (st == IterLimit && t.invBad) ||
		(st == Infeasible && t.stabHits > 0) {
		// The default pivot sequence claimed optimality on a point that
		// violates bounds or rows, drove the basis numerically singular
		// (invBad), or claimed infeasibility from a run that tripped the
		// pivot-stability guard — accumulated drift corrupted the run.
		// Retry once from scratch under Bland's rule, whose cautious
		// pricing walks a different (and far more stable) pivot path; the
		// abandoned run's tallies are dropped, like a failed warm attempt.
		t = p.newTableau()
		t.forceBland = true
		if p1 = t.phase1(); p1 == Optimal {
			st = t.phase2()
		} else {
			st = p1
		}
	}
	if p1 != Optimal {
		t.saveCache()
		p.foldTableau(t)
		return &Solution{Status: st, X: make([]float64, len(p.cost)), Iters: t.iters, p1rows: t.m}, nil
	}
	t.saveCache()
	p.foldTableau(t)
	sol := &Solution{Status: st, X: make([]float64, len(p.cost)), Iters: t.iters, p1rows: t.m}
	copy(sol.X, t.x[:t.nStru])
	for v, xv := range sol.X {
		sol.Obj += p.cost[v] * xv
	}
	if st == Optimal {
		sol.basis = t.snapshot()
		sol.redCost = t.reducedCostsInto(nil, t.cost)
		t.ws.tabOptimal = true
	}
	return sol, nil
}

// prepTableau readies the workspace and fills the tableau fields shared
// by the cold and warm constructors: dimensions, column views, bounds
// and costs of structurals and slacks, right-hand sides, and zeroed
// costs for slack and artificial columns. Artificial bounds and
// coefficients are left to the caller (the two paths differ there).
func (p *Problem) prepTableau() *tableau {
	ws := p.Workspace()
	ws.prepare(p)
	t := &ws.tab
	m, nStru, n := ws.m, ws.nStru, ws.n
	*t = tableau{
		ws: ws, m: m, n: n, nStru: nStru, nArt: nStru + m,
		cols:   ws.cols,
		b:      ws.b,
		lo:     ws.lo,
		hi:     ws.hi,
		cost:   ws.cost,
		basis:  ws.basis,
		state:  ws.state,
		x:      ws.x,
		binv:   ws.binv,
		sparse: ws.sparse,
		f:      &ws.lu,
	}
	t.basisDirty = true
	t.maxIter = 5000 + 40*(m+nStru)
	t.deadline = p.deadline
	t.interrupt = p.interrupt
	for v := 0; v < nStru; v++ {
		t.lo[v] = p.lo[v]
		t.hi[v] = p.hi[v]
		t.cost[v] = p.cost[v]
	}
	for i, r := range p.rows {
		t.b[i] = r.rhs
		s := nStru + i
		t.cost[s] = 0
		switch r.sense {
		case LE:
			t.lo[s], t.hi[s] = 0, Inf
		case GE:
			t.lo[s], t.hi[s] = -Inf, 0
		case EQ:
			t.lo[s], t.hi[s] = 0, 0
		}
		t.cost[t.nArt+i] = 0
	}
	return t
}

// newTableau builds the cold-start tableau: nonbasic structurals and
// slacks on their nearest bounds, and a signed artificial basis
// absorbing the residuals, with B⁻¹ = diag(±1) written in place into
// workspace memory.
func (p *Problem) newTableau() *tableau {
	t := p.prepTableau()
	m := t.m
	// Nonbasic start values for structurals and slacks: nearest finite
	// bound, or zero for free variables.
	for v := 0; v < t.nArt; v++ {
		switch {
		case !math.IsInf(t.lo[v], -1):
			t.state[v], t.x[v] = atLo, t.lo[v]
		case !math.IsInf(t.hi[v], 1):
			t.state[v], t.x[v] = atUp, t.hi[v]
		default:
			t.state[v], t.x[v] = atLo, 0 // free variable pinned at 0
		}
	}
	// Artificial basis absorbing the residuals. This overwrites binv, so
	// any cached factorization is gone until saveCache re-validates one.
	// The signed identity below is an exact inverse of the start basis,
	// so the drift counter restarts from zero — without this, repeated
	// cold solves accumulate toward refactorEvery and pay needless
	// mid-solve refactorizations.
	t.ws.basisValid = false
	t.ws.updatesSinceRefactor = 0
	if t.sparse {
		t.f.setIdentity(m)
	} else {
		identInto(t.binv, m)
	}
	resid := t.ws.resid
	copy(resid, t.b)
	for v := 0; v < t.nArt; v++ {
		if t.x[v] == 0 {
			continue
		}
		for _, tm := range t.cols[v] {
			resid[tm.Var] -= tm.Coef * t.x[v]
		}
	}
	for i := 0; i < m; i++ {
		a := t.nArt + i
		sign := 1.0
		if resid[i] < 0 {
			sign = -1
		}
		t.cols[a][0] = Term{Var: i, Coef: sign}
		t.lo[a], t.hi[a] = 0, Inf
		t.basis[i] = a
		t.state[a] = basic
		t.x[a] = math.Abs(resid[i])
		// B = diag(±1) for the artificial start basis: its exact inverse is
		// written in place (dense) or installed as a trivial U (sparse).
		if t.sparse {
			t.f.uDiag[i] = sign
		} else {
			t.binv[i*m+i] = sign
		}
	}
	return t
}

// phase1 minimises the sum of artificials; Optimal means a feasible basis
// was found (artificials driven to zero and fixed).
func (t *tableau) phase1() Status {
	c1 := t.ws.c1
	for v := 0; v < t.nArt; v++ {
		c1[v] = 0
	}
	for a := t.nArt; a < t.n; a++ {
		c1[a] = 1
	}
	st := t.simplex(c1)
	if st == IterLimit {
		return IterLimit
	}
	sum := 0.0
	for a := t.nArt; a < t.n; a++ {
		sum += t.x[a]
	}
	if sum > 1e-6 {
		return Infeasible
	}
	// Freeze artificials at zero so phase 2 cannot reuse them.
	for a := t.nArt; a < t.n; a++ {
		t.lo[a], t.hi[a] = 0, 0
		if t.state[a] != basic {
			t.x[a] = 0
		}
	}
	return Optimal
}

func (t *tableau) phase2() Status {
	return t.simplex(t.cost)
}

// applyEta counts one product-form update of B⁻¹ (the per-pivot row
// elimination the callers just performed) and, every refactorEvery
// updates — accumulated across solves through the workspace cache —
// rebuilds the inverse from scratch for numerical hygiene. Returns false
// when that periodic refactorization finds the basis numerically
// singular; callers abort with IterLimit and the warm path falls back.
func (t *tableau) applyEta() bool {
	t.etaUpd++
	t.basisDirty = true
	t.ws.basisValid = false // binv no longer matches any cached basis
	t.ws.updatesSinceRefactor++
	if t.ws.updatesSinceRefactor >= refactorEvery {
		if !t.factorize() {
			t.invBad = true
			return false
		}
		t.refreshBasics()
	}
	return true
}

// saveCache records that the workspace's binv is the inverse of the
// tableau's final basis, so the next warm install of exactly this basis
// can skip factorization. A basis holding a sign-flipped artificial
// column is not cacheable: warm tableaus rebuild artificials with +1
// coefficients, which would silently change the matrix behind the
// cached inverse.
func (t *tableau) saveCache() {
	ws := t.ws
	if t.invBad {
		ws.basisValid = false
		return
	}
	for i := 0; i < t.m; i++ {
		v := t.basis[i]
		if v >= t.nArt && t.cols[v][0].Coef != 1 {
			ws.basisValid = false
			return
		}
	}
	ws.basisValid = true
	ws.cacheSparse = t.sparse
	ws.cachedBasis = append(ws.cachedBasis[:0], t.basis...)
}

// aborted reports that the run's budget is gone: the deadline passed or
// the caller's interrupt channel fired. The simplex loops poll it every
// 64 iterations — cheap enough to be free, frequent enough that a
// cancellation stops even a huge LP within a few dozen pivots.
func (t *tableau) aborted() bool {
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		return true
	}
	if t.interrupt != nil {
		select {
		case <-t.interrupt:
			return true
		default:
		}
	}
	return false
}

// simplex runs the bounded-variable primal simplex with costs c from the
// current basis until optimality or failure.
func (t *tableau) simplex(c []float64) Status {
	m := t.m
	y := t.ws.y
	w := t.ws.w
	degen := 0
	for ; t.iters < t.maxIter; t.iters++ {
		if t.iters%64 == 0 && t.aborted() {
			return IterLimit
		}
		// Simplex multipliers y = c_B · B⁻¹.
		t.computeMultipliers(c)
		// Pricing.
		enter, dir := t.price(c, y, degen >= stall || t.forceBland)
		if enter < 0 {
			return Optimal
		}
		// Direction w = B⁻¹ A_enter.
		t.ftranColumn(enter)
		// Ratio test. Moving x_enter by dir·t changes basics by -dir·t·w.
		tMax := Inf
		leave := -1 // index into basis; -1 = bound flip of entering var
		leaveAt := atLo
		if gap := t.hi[enter] - t.lo[enter]; !math.IsInf(gap, 1) {
			tMax = gap
		}
		fdir := float64(dir)
		for i := 0; i < m; i++ {
			d := fdir * w[i]
			bv := t.basis[i]
			var lim float64
			var hitState int8
			switch {
			case d > pivTol: // basic value decreases toward lower bound
				if math.IsInf(t.lo[bv], -1) {
					continue
				}
				lim = (t.x[bv] - t.lo[bv]) / d
				hitState = atLo
			case d < -pivTol: // basic value increases toward upper bound
				if math.IsInf(t.hi[bv], 1) {
					continue
				}
				lim = (t.x[bv] - t.hi[bv]) / d
				hitState = atUp
			default:
				continue
			}
			if lim < -tol {
				lim = 0
			}
			if lim < tMax-tol || (lim < tMax+tol && leave >= 0 && math.Abs(w[i]) > math.Abs(w[leave])) {
				tMax = lim
				leave = i
				leaveAt = hitState
			}
		}
		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if leave >= 0 && t.ws.updatesSinceRefactor > 0 {
			// Pivot stability guard: dividing the basis inverse by a pivot
			// element that is tiny relative to the direction vector's largest
			// entry multiplies every accumulated rounding error by the same
			// huge factor, and one such pivot is enough to corrupt B⁻¹ beyond
			// repair (observed: |w| entries of 1e14 turning a degenerate step
			// into an 0.04 bound violation the primal loop can never undo).
			// Tiny relative pivots are almost always artifacts of eta-update
			// drift, so rebuild the factorization and re-price; a pivot that
			// is still tiny on a fresh inverse is accepted as genuine.
			wmax := 0.0
			for i := 0; i < m; i++ {
				if a := math.Abs(w[i]); a > wmax {
					wmax = a
				}
			}
			if math.Abs(w[leave]) < stabPivTol*wmax {
				t.stabHits++
				if !t.factorize() {
					t.invBad = true
					return IterLimit
				}
				t.refreshBasics()
				continue
			}
		}
		if tMax < tol {
			degen++
		} else {
			degen = 0
		}
		// Apply the step.
		t.x[enter] += float64(dir) * tMax
		for i := 0; i < m; i++ {
			if w[i] != 0 {
				t.x[t.basis[i]] -= float64(dir) * tMax * w[i]
			}
		}
		if leave < 0 {
			// Bound flip: entering variable moved to its other bound.
			if dir > 0 {
				t.state[enter] = atUp
				t.x[enter] = t.hi[enter]
			} else {
				t.state[enter] = atLo
				t.x[enter] = t.lo[enter]
			}
			t.basisDirty = true
			continue
		}
		// Pivot enter into the basis replacing basis[leave].
		out := t.basis[leave]
		t.state[out] = leaveAt
		if leaveAt == atLo {
			t.x[out] = t.lo[out]
		} else {
			t.x[out] = t.hi[out]
		}
		t.basis[leave] = enter
		t.state[enter] = basic
		t.updateInverse(leave, w)
		if !t.applyEta() {
			return IterLimit
		}
		if t.iters%refresh == refresh-1 {
			t.refreshBasics()
		}
	}
	return IterLimit
}

// price selects an entering variable. dir = +1 to increase, -1 to
// decrease. Returns (-1, 0) at optimality.
func (t *tableau) price(c, y []float64, bland bool) (enter, dir int) {
	best := -1
	bestDir := 0
	bestScore := tol
	for v := 0; v < t.n; v++ {
		if t.state[v] == basic {
			continue
		}
		if t.hi[v]-t.lo[v] < tol && !math.IsInf(t.hi[v], 1) {
			continue // fixed variable can never move
		}
		rc := c[v]
		for _, tm := range t.cols[v] {
			rc -= y[tm.Var] * tm.Coef
		}
		free := math.IsInf(t.lo[v], -1) && math.IsInf(t.hi[v], 1)
		var d int
		switch {
		case (t.state[v] == atLo || free) && rc < -tol:
			d = +1
		case (t.state[v] == atUp || free) && rc > tol:
			d = -1
		default:
			continue
		}
		if bland {
			return v, d
		}
		if math.Abs(rc) > bestScore {
			bestScore = math.Abs(rc)
			best, bestDir = v, d
		}
	}
	return best, bestDir
}

// refreshBasics recomputes basic variable values from scratch to flush
// accumulated floating-point drift.
func (t *tableau) refreshBasics() {
	m := t.m
	r := t.ws.resid
	copy(r, t.b)
	for v := 0; v < t.n; v++ {
		if t.state[v] == basic || t.x[v] == 0 {
			continue
		}
		for _, tm := range t.cols[v] {
			r[tm.Var] -= tm.Coef * t.x[v]
		}
	}
	if t.sparse {
		t.f.ftran(r)
		for i := 0; i < m; i++ {
			t.x[t.basis[i]] = r[i]
		}
		return
	}
	for i := 0; i < m; i++ {
		sum := 0.0
		row := t.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			sum += row[k] * r[k]
		}
		t.x[t.basis[i]] = sum
	}
}

// computeMultipliers computes the simplex multipliers y = c_B·B⁻¹ into
// the workspace's y vector: a dense row sweep over the explicit inverse,
// or one BTRAN against the sparse factors.
func (t *tableau) computeMultipliers(c []float64) {
	m, y := t.m, t.ws.y
	if t.sparse {
		cb := t.f.cw
		for i := 0; i < m; i++ {
			cb[i] = c[t.basis[i]]
		}
		t.f.btran(cb, y)
		return
	}
	for i := 0; i < m; i++ {
		y[i] = 0
	}
	for i := 0; i < m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			y[k] += cb * row[k]
		}
	}
}

// ftranColumn computes the direction w = B⁻¹·A_enter into the
// workspace's w vector.
func (t *tableau) ftranColumn(enter int) {
	m, w := t.m, t.ws.w
	for i := 0; i < m; i++ {
		w[i] = 0
	}
	if t.sparse {
		for _, tm := range t.cols[enter] {
			w[tm.Var] += tm.Coef
		}
		t.f.ftran(w)
		return
	}
	for _, tm := range t.cols[enter] {
		for i := 0; i < m; i++ {
			w[i] += t.binv[i*m+tm.Var] * tm.Coef
		}
	}
}

// binvRow returns row r of B⁻¹ (the BTRAN of the r-th unit vector): the
// dense engine hands out its matrix row in place; the sparse engine
// solves into the workspace's rho scratch.
func (t *tableau) binvRow(r int) []float64 {
	m := t.m
	if !t.sparse {
		return t.binv[r*m : r*m+m]
	}
	cb, rho := t.f.cw, t.ws.rho
	for i := 0; i < m; i++ {
		cb[i] = 0
	}
	cb[r] = 1
	t.f.btran(cb, rho)
	return rho
}

// updateInverse applies a pivot with direction column w and leaving row
// r to the basis representation: in-place row elimination on the dense
// inverse, or one appended product-form eta on the sparse factors.
func (t *tableau) updateInverse(r int, w []float64) {
	if t.sparse {
		t.f.appendEta(r, w)
		return
	}
	m := t.m
	piv := w[r]
	brow := t.binv[r*m : r*m+m]
	inv := 1 / piv
	for k := 0; k < m; k++ {
		brow[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r || w[i] == 0 {
			continue
		}
		f := w[i]
		row := t.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			row[k] -= f * brow[k]
		}
	}
}

// ErrBadModel reports structurally invalid model input.
var ErrBadModel = errors.New("lp: invalid model")
