package lp

import (
	"sync"
	"testing"
	"time"
)

// small LP: min -x - 2y  st  x + y <= 12, x,y in [0,10]  ->  obj -22.
func cloneFixture() *Problem {
	p := NewProblem()
	x := p.AddVar(0, 10, -1)
	y := p.AddVar(0, 10, -2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 12)
	return p
}

func TestCloneIndependentBounds(t *testing.T) {
	p := cloneFixture()
	q := p.Clone()
	q.SetBounds(0, 5, 5)
	q.SetCost(1, 7)
	q.SetDeadline(time.Now().Add(time.Hour))
	if lo, hi := p.Bounds(0); lo != 0 || hi != 10 {
		t.Fatalf("original bounds mutated via clone: [%v,%v]", lo, hi)
	}
	if p.Cost(1) != -2 {
		t.Fatalf("original cost mutated via clone: %v", p.Cost(1))
	}
	if !p.deadline.IsZero() {
		t.Fatal("original deadline mutated via clone")
	}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Obj != -22 {
		t.Fatalf("original solve after clone edits = %+v", s)
	}
}

func TestCloneRowAppendDoesNotAlias(t *testing.T) {
	p := cloneFixture()
	q := p.Clone()
	// Appending a row to the clone must not leak into the original's row
	// storage (the clone caps its shared slice).
	q.AddConstraint([]Term{{1, 1}}, LE, 8)
	if p.NumRows() != 1 {
		t.Fatalf("original rows = %d after clone append, want 1", p.NumRows())
	}
	if q.NumRows() != 2 {
		t.Fatalf("clone rows = %d, want 2", q.NumRows())
	}
	s, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Obj != -20 { // y=8, x=4
		t.Fatalf("clone solve = %+v", s)
	}
}

// TestConcurrentCloneSolves is the lp-level race check: many clones of
// one problem solving concurrently with different bounds, sharing only
// the immutable row storage.
func TestConcurrentCloneSolves(t *testing.T) {
	p := cloneFixture()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := p.Clone()
			q.SetBounds(0, 0, float64(g))
			s, err := q.Solve()
			if err != nil {
				t.Errorf("clone %d: %v", g, err)
				return
			}
			want := -20 - float64(min(g, 2)) // y=10; x = min(g, 2) under x+y<=12
			if s.Status != Optimal || s.Obj != want {
				t.Errorf("clone %d: %+v, want obj %v", g, s, want)
			}
		}(g)
	}
	wg.Wait()
	// The shared original must still solve to its own optimum.
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.Obj != -22 {
		t.Fatalf("original after concurrent clone solves = %+v", s)
	}
}
