package lp

// The kernel memory model (see DESIGN.md, "Sparse kernel"): every piece
// of scratch a simplex run needs — the column-sparse constraint matrix,
// the basis representation (sparse LU factors, or the flat row-major
// dense inverse for small models), the working bounds/costs/values and
// the per-iteration vectors — lives in a Workspace that is reused from
// solve to solve. Branch and bound performs thousands of LP solves per
// chip; with a per-worker Workspace the steady-state warm path allocates
// nothing in either kernel mode (pinned by TestSolveFromSteadyStateAllocs
// and the make bench-kernel gate).
//
// The Workspace also caches the factorization itself: the basis
// representation is maintained across pivots by product-form (eta)
// updates, and when the next SolveFrom installs exactly the basis the
// workspace already holds factors for, refactorization is skipped
// entirely (WorkspaceReuseCount). Numerical hygiene comes from a counted
// periodic refactorization: after refactorEvery eta updates the factors
// are rebuilt from scratch (RefactorizationCount, split out as
// SparseRefactorizationCount on the LU engine), and every warm result
// is still verified against the original rows before it is trusted.
// Which engine a solve runs is the Problem's Kernel mode resolved by
// wantSparse (kernel.go); a sparse factorization that blows the fill
// threshold flips the workspace to the dense engine for good
// (DenseFallbackCount).

// defaultRefactorEvery is the number of product-form (eta) updates the
// kernel lets accumulate on the basis representation — across solves,
// thanks to the factorization cache — before forcing a from-scratch
// refactorization.
const defaultRefactorEvery = 512

var refactorEvery = defaultRefactorEvery

// SetRefactorInterval sets how many eta (product-form) updates may be
// applied to B⁻¹ before the kernel forces a from-scratch
// refactorization, returning the previous value. n ≤ 0 restores the
// default. Interval 1 refactorizes after every pivot — the reference
// behaviour the numerical-drift property tests compare the eta path
// against. Not safe to call while any solve is in flight.
func SetRefactorInterval(n int) int {
	prev := refactorEvery
	if n <= 0 {
		n = defaultRefactorEvery
	}
	refactorEvery = n
	return prev
}

// Workspace is the reusable scratch memory of the LP kernel. A Problem
// lazily creates one on first solve and keeps it for its lifetime;
// branch-and-bound workers attach one per worker clone explicitly
// (Problem.SetWorkspace) so the search hot loop runs entirely on
// recycled memory. A Workspace must not be shared between Problems that
// solve concurrently — like the Problem itself, it assumes one solve in
// flight at a time.
type Workspace struct {
	// Column-cache identity: the problem and revision (row/variable
	// count) the cols arena was built for. Any mismatch rebuilds the
	// arena and invalidates the factorization cache.
	owner *Problem
	rev   int64

	m, nStru, n int

	// cols is the column-sparse constraint matrix over the full tableau
	// space (structurals, slacks, artificials); terms is the flat arena
	// backing every cols[v] slice. Term.Var is the row index here.
	cols   [][]Term
	terms  []Term
	colOff []int

	// Flat simplex state. binv is the m×m row-major basis inverse; bmat
	// is the factorization scratch of the same shape. Both are grown only
	// while the dense engine is selected (or on a sparse run's dense
	// fallback) — the sparse path must not pay O(m²) memory.
	binv []float64
	bmat []float64

	// lu holds the sparse engine's factors, eta file and scratch; rho is
	// the BTRAN-unit output buffer (binvRow) the sparse path solves into.
	lu  sparseLU
	rho []float64

	// sparse records the engine chosen for the solve in flight (and, via
	// the factorization cache, the engine that produced the cached
	// representation until the next prepare).
	sparse bool

	b, lo, hi, cost, x, c1 []float64
	y, w, resid            []float64
	basis                  []int
	state                  []int8

	// Factorization cache: when basisValid, the basis representation —
	// dense binv when !cacheSparse, LU factors + eta file when
	// cacheSparse — matches the basis recorded in cachedBasis over the
	// current cols arena, and the next install of exactly that basis
	// under the same engine skips the from-scratch rebuild.
	basisValid  bool
	cacheSparse bool
	cachedBasis []int

	// updatesSinceRefactor counts eta updates applied to binv since the
	// last from-scratch factorization — across solves, because the cache
	// carries binv across solves too.
	updatesSinceRefactor int

	// tabOptimal records that tab holds the final state of a full-tableau
	// solve that ended Optimal and that nothing on the problem has changed
	// since (cleared on every solve entry and bound-revision mismatch).
	// Gomory separation reads the tableau only while this holds.
	tabOptimal bool

	tab tableau // reused tableau header, one live solve at a time
}

// NewWorkspace returns an empty workspace. Buffers are sized on first
// use and only ever grow.
func NewWorkspace() *Workspace { return &Workspace{} }

// Workspace returns the problem's kernel workspace, creating one on
// first use.
func (p *Problem) Workspace() *Workspace {
	if p.ws == nil {
		p.ws = NewWorkspace()
	}
	return p.ws
}

// SetWorkspace attaches ws as the problem's kernel scratch memory,
// replacing any previous one. Branch-and-bound owns one workspace per
// worker and attaches it to the worker's Problem clone so that every
// solve of the worker's subtree reuses the same buffers and cached
// factorization.
func (p *Problem) SetWorkspace(ws *Workspace) { p.ws = ws }

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growS(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

// prepare points the workspace at p: the cols arena is rebuilt if p (or
// its row/variable revision) changed since the last solve, and every
// flat buffer is resized — growing only — to the problem's dimensions.
func (ws *Workspace) prepare(p *Problem) {
	if ws.owner != p || ws.rev != p.rev ||
		ws.m != len(p.rows) || ws.nStru != len(p.cost) {
		ws.rebuildCols(p)
	}
	m, n := ws.m, ws.n
	ws.sparse = p.wantSparse(ws)
	if ws.sparse {
		ws.lu.ensure(m)
		ws.rho = growF(ws.rho, m)
	} else {
		ws.binv = growF(ws.binv, m*m)
		ws.bmat = growF(ws.bmat, m*m)
	}
	ws.b = growF(ws.b, m)
	ws.y = growF(ws.y, m)
	ws.w = growF(ws.w, m)
	ws.resid = growF(ws.resid, m)
	ws.lo = growF(ws.lo, n)
	ws.hi = growF(ws.hi, n)
	ws.cost = growF(ws.cost, n)
	ws.x = growF(ws.x, n)
	ws.c1 = growF(ws.c1, n)
	ws.basis = growI(ws.basis, m)
	if !ws.basisValid {
		// Content is only meaningful while the cache is valid; when it is,
		// the dimensions cannot have changed, so growI never reallocates
		// a live cache away.
		ws.cachedBasis = growI(ws.cachedBasis, m)[:0]
	}
	ws.state = growS(ws.state, n)
}

// rebuildCols builds the column-sparse tableau matrix for p into the
// term arena: structural columns gathered from the rows, one unit slack
// column per row, one unit artificial column per row (cold solves flip
// artificial signs in place per solve). Invalidates the factorization
// cache — binv is meaningless over a different matrix.
func (ws *Workspace) rebuildCols(p *Problem) {
	m := len(p.rows)
	nStru := len(p.cost)
	n := nStru + 2*m
	ws.owner, ws.rev = p, p.rev
	ws.m, ws.nStru, ws.n = m, nStru, n
	ws.basisValid = false
	ws.updatesSinceRefactor = refactorEvery // force a factorization before reuse

	total := 2 * m
	for _, r := range p.rows {
		total += len(r.terms)
	}
	if cap(ws.terms) < total {
		ws.terms = make([]Term, total)
	} else {
		ws.terms = ws.terms[:total]
	}
	if cap(ws.cols) < n {
		ws.cols = make([][]Term, n)
	} else {
		ws.cols = ws.cols[:n]
	}
	if cap(ws.colOff) < nStru+1 {
		ws.colOff = make([]int, nStru+1)
	} else {
		ws.colOff = ws.colOff[:nStru+1]
	}
	off := ws.colOff
	for i := range off {
		off[i] = 0
	}
	for _, r := range p.rows {
		for _, t := range r.terms {
			off[t.Var+1]++
		}
	}
	for v := 0; v < nStru; v++ {
		off[v+1] += off[v]
	}
	fill := off // reuse as running fill cursor: fill[v] advances to off[v+1]
	for i, r := range p.rows {
		for _, t := range r.terms {
			ws.terms[fill[t.Var]] = Term{Var: i, Coef: t.Coef}
			fill[t.Var]++
		}
	}
	// fill[v] now holds the end offset of column v.
	start := 0
	for v := 0; v < nStru; v++ {
		ws.cols[v] = ws.terms[start:fill[v]:fill[v]]
		start = fill[v]
	}
	base := start // == total - 2m
	for i := 0; i < m; i++ {
		ws.terms[base+i] = Term{Var: i, Coef: 1}
		ws.cols[nStru+i] = ws.terms[base+i : base+i+1 : base+i+1]
	}
	abase := base + m
	for i := 0; i < m; i++ {
		ws.terms[abase+i] = Term{Var: i, Coef: 1}
		ws.cols[nStru+m+i] = ws.terms[abase+i : abase+i+1 : abase+i+1]
	}
}

// identInto writes the m×m identity into the flat row-major matrix b in
// place — the workspace-memory replacement for the old per-solve
// ident(m) allocation.
func identInto(b []float64, m int) {
	for i := range b[:m*m] {
		b[i] = 0
	}
	for i := 0; i < m; i++ {
		b[i*m+i] = 1
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
