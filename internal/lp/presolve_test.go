package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresolveEliminatesDoubletons(t *testing.T) {
	// x_r = x_l + 5 (the paper's constraint (1) shape): presolve must
	// collapse the pair and still find the right optimum.
	p := NewProblem()
	xl := p.AddVar(0, 100, 0)
	xr := p.AddVar(0, 100, 1) // minimise the right edge
	p.AddConstraint([]Term{{xr, 1}, {xl, -1}}, EQ, 5)
	p.AddConstraint([]Term{{xl, 1}}, GE, 3)
	s := solveOK(t, p)
	wantObj(t, s, 8)
	if math.Abs(s.X[xl]-3) > 1e-6 || math.Abs(s.X[xr]-8) > 1e-6 {
		t.Fatalf("x = %v", s.X)
	}
	// The reduction really happened.
	ps := p.presolve()
	if ps == nil {
		t.Fatal("presolve found nothing to reduce")
	}
	if ps.prob.NumVars() != 1 {
		t.Fatalf("reduced vars = %d, want 1", ps.prob.NumVars())
	}
}

func TestPresolveChainOfEqualities(t *testing.T) {
	// a = b + 1 = c + 2 = d + 3: all collapse to one root.
	p := NewProblem()
	a := p.AddVar(0, 100, 1)
	b := p.AddVar(0, 100, 1)
	c := p.AddVar(0, 100, 1)
	d := p.AddVar(0, 100, 1)
	p.AddConstraint([]Term{{a, 1}, {b, -1}}, EQ, 1)
	p.AddConstraint([]Term{{b, 1}, {c, -1}}, EQ, 1)
	p.AddConstraint([]Term{{c, 1}, {d, -1}}, EQ, 1)
	p.AddConstraint([]Term{{d, 1}}, GE, 2)
	s := solveOK(t, p)
	// d=2, c=3, b=4, a=5: obj 14.
	wantObj(t, s, 14)
	ps := p.presolve()
	if ps == nil || ps.prob.NumVars() != 1 {
		t.Fatalf("chain should reduce to one variable")
	}
}

func TestPresolveFixedVariableFolds(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(4, 4, 1) // fixed by bounds
	y := p.AddVar(0, 10, 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 7)
	s := solveOK(t, p)
	wantObj(t, s, 7) // y = 3
	if math.Abs(s.X[x]-4) > 1e-9 {
		t.Fatalf("fixed var = %v", s.X[x])
	}
}

func TestPresolveSingletonEqualityFixes(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 10, -1)
	y := p.AddVar(0, 10, -1)
	p.AddConstraint([]Term{{x, 2}}, EQ, 6) // x = 3
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 8)
	s := solveOK(t, p)
	wantObj(t, s, -8) // x=3, y=5
	if math.Abs(s.X[x]-3) > 1e-6 {
		t.Fatalf("x = %v", s.X[x])
	}
}

func TestPresolveDetectsContradiction(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 10, 0)
	p.AddConstraint([]Term{{x, 1}}, EQ, 3)
	p.AddConstraint([]Term{{x, 1}}, EQ, 5)
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestPresolveDetectsBoundViolation(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 2, 0)
	y := p.AddVar(5, 10, 0)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 0) // x = y but ranges disjoint
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestPresolveNegativeCoefficientAlias(t *testing.T) {
	// x + y = 10 aliases x = -y + 10 (K < 0 path).
	p := NewProblem()
	x := p.AddVar(0, 10, 1)
	y := p.AddVar(0, 10, 0)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddConstraint([]Term{{y, 1}}, LE, 4)
	s := solveOK(t, p)
	// minimise x = 10 - y with y <= 4: y = 4, x = 6.
	wantObj(t, s, 6)
	if math.Abs(s.X[y]-4) > 1e-6 {
		t.Fatalf("y = %v", s.X[y])
	}
}

// Randomised equivalence: the same LP with and without reducible
// equality chains must agree. Build a base LP, then add redundant alias
// variables tied by equalities and check the optimum is unchanged.
func TestPresolveEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		nb := 2 + rng.Intn(4)
		base := NewProblem()
		costs := make([]float64, nb)
		for i := 0; i < nb; i++ {
			costs[i] = rng.Float64()*4 - 2
			base.AddVar(0, 10, costs[i])
		}
		type rowSpec struct {
			terms []Term
			rhs   float64
		}
		var rows []rowSpec
		for r := 0; r < 1+rng.Intn(3); r++ {
			var terms []Term
			for v := 0; v < nb; v++ {
				if rng.Float64() < 0.7 {
					terms = append(terms, Term{v, rng.Float64()*4 - 2})
				}
			}
			if len(terms) == 0 {
				continue
			}
			rhs := rng.Float64() * 8
			base.AddConstraint(terms, LE, rhs)
			rows = append(rows, rowSpec{terms, rhs})
		}
		sBase, err := base.Solve()
		if err != nil {
			t.Fatal(err)
		}

		// Aliased version: every base var gets a shadow z_i = 2·x_i - 1,
		// costs split between the pair, rows rewritten onto shadows.
		ali := NewProblem()
		var xs, zs []int
		for i := 0; i < nb; i++ {
			xs = append(xs, ali.AddVar(0, 10, costs[i]/2))
			zs = append(zs, ali.AddVar(-1, 19, costs[i]/4))
		}
		for i := 0; i < nb; i++ {
			// z = 2x - 1  ->  x appears as (z+1)/2.
			ali.AddConstraint([]Term{{zs[i], 1}, {xs[i], -2}}, EQ, -1)
		}
		for _, r := range rows {
			var terms []Term
			rhs := r.rhs
			for _, tm := range r.terms {
				// a·x = a/2·x + a/4·(z+1) with z = 2x-1.
				terms = append(terms, Term{xs[tm.Var], tm.Coef / 2})
				terms = append(terms, Term{zs[tm.Var], tm.Coef / 4})
				rhs -= tm.Coef / 4
			}
			ali.AddConstraint(terms, LE, rhs)
		}
		sAli, err := ali.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sBase.Status != sAli.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, sBase.Status, sAli.Status)
		}
		if sBase.Status != Optimal {
			continue
		}
		// Aliased objective: c/2·x + c/4·(2x-1) = c·x - c/4.
		shift := 0.0
		for i := 0; i < nb; i++ {
			shift += costs[i] / 4
		}
		if math.Abs((sAli.Obj+shift)-sBase.Obj) > 1e-5 {
			t.Fatalf("trial %d: base %v vs aliased %v (shift %v)", trial, sBase.Obj, sAli.Obj, shift)
		}
		// Shadow relation holds in the expanded solution.
		for i := 0; i < nb; i++ {
			if math.Abs(sAli.X[zs[i]]-(2*sAli.X[xs[i]]-1)) > 1e-5 {
				t.Fatalf("trial %d: alias broken: z=%v x=%v", trial, sAli.X[zs[i]], sAli.X[xs[i]])
			}
		}
	}
}

func TestPresolveNoReductionPassthrough(t *testing.T) {
	// Pure inequality problem: presolve must step aside.
	p := NewProblem()
	x := p.AddVar(0, 10, -1)
	p.AddConstraint([]Term{{x, 1}}, LE, 7)
	if ps := p.presolve(); ps != nil {
		t.Fatal("nothing to reduce, presolve should return nil")
	}
	s := solveOK(t, p)
	wantObj(t, s, -7)
}

func TestPresolveFoldsKernelCounters(t *testing.T) {
	// A presolve-reduced solve runs on an inner Problem; its kernel
	// tallies must fold back into the outer one, and the outer kernel
	// mode must reach the reduced problem. The large guided layout
	// models solve exactly this way — without the fold their
	// basis-nonzero peak read zero.
	build := func() *Problem {
		p := NewProblem()
		xl := p.AddVar(0, 100, 0)
		xr := p.AddVar(0, 100, 1)
		p.AddConstraint([]Term{{xr, 1}, {xl, -1}}, EQ, 5)
		p.AddConstraint([]Term{{xl, 1}}, GE, 3)
		return p
	}
	for _, k := range []Kernel{KernelDense, KernelSparse} {
		p := build()
		p.SetKernel(k)
		if ps := p.presolve(); ps == nil {
			t.Fatal("model should presolve")
		}
		solveOK(t, p)
		if p.BasisNonzeroPeak() == 0 {
			t.Fatalf("kernel %v: basis-nonzero peak not folded from the reduced solve", k)
		}
		if k == KernelSparse && p.RefactorizationCount() == 0 {
			// The reduced cold solve installs no basis and stays under the
			// refactorization interval, so refactorizations may be zero —
			// but the peak above proves foldTableau ran on the inner
			// problem and its tallies reached the outer counters.
			t.Log("sparse reduced solve finished without refactorizing (expected for tiny models)")
		}
	}
}
