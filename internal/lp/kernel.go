package lp

import "fmt"

// Kernel selects the basis-factorization engine behind a Problem's
// solves. The dense kernel keeps an explicit row-major B⁻¹ and updates
// it in place per pivot — unbeatable on small models where the m×m
// matrix fits in cache. The sparse kernel factorizes the basis into
// sparse LU factors (Markowitz-style pivoting, product-form updates)
// and answers FTRAN/BTRAN solves against the factors, turning the
// per-iteration cost from O(m²) into O(nnz) — the path that unlocks
// chip256-class placement models. See DESIGN.md, "Sparse kernel".
type Kernel int

// Kernel modes.
const (
	// KernelAuto picks per solve: sparse once the model clears the
	// size/density thresholds below, dense otherwise.
	KernelAuto Kernel = iota
	KernelDense
	KernelSparse
)

func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelDense:
		return "dense"
	case KernelSparse:
		return "sparse"
	}
	return "unknown"
}

// ParseKernel parses a -kernel flag value. The empty string means auto;
// anything else must be one of auto, dense, sparse.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "dense":
		return KernelDense, nil
	case "sparse":
		return KernelSparse, nil
	}
	return KernelAuto, fmt.Errorf("unknown kernel %q (want auto, dense or sparse)", s)
}

// Auto-dispatch thresholds: the sparse path wins once the dense kernel's
// O(m²) per-iteration sweeps dominate, which on this code base happens
// comfortably above the chip9/chip64 row counts (m ≤ 430); below that
// the flat dense inverse is faster and keeps byte-identical behaviour
// with earlier releases. The density guard keeps near-dense constraint
// matrices — where LU fill would approach m² anyway — on the dense path.
const (
	sparseAutoRows    = 500
	sparseAutoDensity = 0.05
)

// SetKernel selects the factorization engine for this problem's solves.
// Clones inherit the setting. The zero value KernelAuto dispatches on
// model size and density per solve.
func (p *Problem) SetKernel(k Kernel) { p.kernel = k }

// KernelMode returns the problem's configured kernel selection mode.
func (p *Problem) KernelMode() Kernel { return p.kernel }

// wantSparse decides the engine for the next solve given the prepared
// workspace dimensions.
func (p *Problem) wantSparse(ws *Workspace) bool {
	switch p.kernel {
	case KernelDense:
		return false
	case KernelSparse:
		return true
	}
	m := ws.m
	if m < sparseAutoRows {
		return false
	}
	nnz := len(ws.terms) - 2*m // structural nonzeros (slacks/artificials excluded)
	return float64(nnz) <= sparseAutoDensity*float64(m)*float64(m)
}
