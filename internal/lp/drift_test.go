package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkInverseExact verifies the workspace's eta-updated B⁻¹ against the
// basis it claims to invert: B⁻¹·A_v must equal the j-th unit vector for
// the variable v basic in row j. Tolerance 1e-6 bounds the drift the
// product-form updates are allowed to accumulate between refactorizations.
func checkInverseExact(t *testing.T, p *Problem, seed int64, step int) {
	t.Helper()
	tb := &p.ws.tab
	m := tb.m
	for j := 0; j < m; j++ {
		v := tb.basis[j]
		for i := 0; i < m; i++ {
			sum := 0.0
			for _, tm := range tb.cols[v] {
				sum += tb.binv[i*m+tm.Var] * tm.Coef
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(sum-want) > 1e-6 {
				t.Fatalf("seed %d step %d: (B⁻¹B)[%d][%d] = %v, want %v", seed, step, i, j, sum, want)
			}
		}
	}
}

// TestEtaUpdatesMatchRefactorization is the numerical-drift property test
// of the product-form kernel: with periodic refactorization disabled (a
// huge interval), long branch-and-bound-style pivot sequences accumulate
// eta updates on B⁻¹ across solves via the factorization cache — and the
// updated inverse must still agree with (a) the basis matrix it claims to
// invert after every solve, (b) a from-scratch Gauss-Jordan
// refactorization at the end of the chain, and (c) the objectives of a
// reference run that refactorizes after every single pivot.
func TestEtaUpdatesMatchRefactorization(t *testing.T) {
	const steps = 60
	runChain := func(seed int64, check bool) []float64 {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng)
		var objs []float64
		sol, err := p.SolveFrom(nil)
		if err != nil {
			t.Fatalf("seed %d: root: %v", seed, err)
		}
		basis := sol.Basis()
		for step := 0; step < steps; step++ {
			tightenOne(p, rng)
			sol, err = p.SolveFrom(basis)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if sol.Status == Optimal {
				objs = append(objs, sol.Obj)
				if check {
					checkInverseExact(t, p, seed, step)
				}
			} else {
				objs = append(objs, math.Inf(1)) // status marker, compared too
			}
			if nb := sol.Basis(); nb != nil {
				basis = nb
			}
		}
		if check && p.ws.tab.m > 0 {
			// Final cross-check of the satellite property: the eta-updated
			// inverse must match a from-scratch refactorization of the same
			// basis element for element.
			tb := &p.ws.tab
			m := tb.m
			etaInv := append([]float64(nil), tb.binv[:m*m]...)
			if !tb.factorize() {
				t.Fatalf("seed %d: final basis singular on refactorization", seed)
			}
			for i := range etaInv {
				if math.Abs(etaInv[i]-tb.binv[i]) > 1e-6 {
					t.Fatalf("seed %d: eta B⁻¹[%d] = %v, refactorized %v",
						seed, i, etaInv[i], tb.binv[i])
				}
			}
		}
		return objs
	}

	for seed := int64(0); seed < 8; seed++ {
		// Eta path: no periodic refactorization at all — every update since
		// the chain's first factorization accumulates.
		prev := SetRefactorInterval(1 << 30)
		etaObjs := runChain(seed, true)
		// Reference path: refactorize after every pivot.
		SetRefactorInterval(1)
		refObjs := runChain(seed, false)
		SetRefactorInterval(prev)

		if len(etaObjs) != len(refObjs) {
			t.Fatalf("seed %d: %d eta objectives vs %d reference", seed, len(etaObjs), len(refObjs))
		}
		for i := range etaObjs {
			a, b := etaObjs[i], refObjs[i]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("seed %d step %d: eta status differs from reference", seed, i)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-5 {
				t.Fatalf("seed %d step %d: eta obj %v, reference obj %v", seed, i, a, b)
			}
		}
	}
}

// TestWorkspaceReuseSkipsFactorization pins the factorization cache:
// re-solving an unchanged problem from its own optimal basis must reuse
// the workspace's B⁻¹ (no refactorization), and the reuse counter obeys
// its identity against the warm-start counter.
func TestWorkspaceReuseSkipsFactorization(t *testing.T) {
	var p *Problem
	var sol *Solution
	var err error
	for seed := int64(0); ; seed++ {
		if seed == 64 {
			t.Fatal("no seed produced an optimal root")
		}
		p = randomLP(rand.New(rand.NewSource(seed)))
		sol, err = p.SolveFrom(nil)
		if err != nil {
			t.Fatalf("seed %d root: %v", seed, err)
		}
		if sol.Status == Optimal {
			break
		}
	}
	basis := sol.Basis()
	refacBefore := p.RefactorizationCount()
	for i := 0; i < 5; i++ {
		sol, err = p.SolveFrom(basis)
		if err != nil || sol.Status != Optimal {
			t.Fatalf("resolve %d: status %v err %v", i, sol.Status, err)
		}
		basis = sol.Basis()
	}
	if got := p.WorkspaceReuseCount(); got != 5 {
		t.Errorf("WorkspaceReuseCount = %d, want 5", got)
	}
	if got := p.RefactorizationCount(); got != refacBefore {
		t.Errorf("RefactorizationCount grew %d -> %d on cache hits", refacBefore, got)
	}
	if p.WorkspaceReuseCount() > p.WarmStartCount() {
		t.Errorf("WorkspaceReuses %d > WarmStarts %d", p.WorkspaceReuseCount(), p.WarmStartCount())
	}
	if p.EtaUpdateCount() > p.PivotCount() {
		t.Errorf("EtaUpdates %d > Pivots %d", p.EtaUpdateCount(), p.PivotCount())
	}
}
