package lp

import (
	"math"
)

// Basis is a compact snapshot of a simplex basis: which variable is basic
// in each row plus the bound each nonbasic column rests on, over the full
// tableau column space (structurals, slacks, artificials). A Basis is
// immutable after creation — branch-and-bound shares one snapshot between
// sibling nodes and across worker Problem clones without copying, and
// SolveFromReuse never recycles one.
type Basis struct {
	m, nStru int
	rows     []int  // rows[i] = variable basic in row i
	state    []int8 // per-column nonbasic position (atLo / atUp / basic)
}

// compatible reports whether the snapshot can seed a solve of p: same row
// count and same structural variable count. Rows are shared by Clone and
// never mutated by Solve, so dimension equality is the whole check.
func (b *Basis) compatible(p *Problem) bool {
	return b != nil && b.m == len(p.rows) && b.nStru == len(p.cost)
}

// snapshot captures the tableau's current basis. Only valid at a basic
// solution (after a successful simplex run). When a warm start installed
// a snapshot and the solve finished without moving anything — no pivot,
// no bound flip, no state normalisation — the installed snapshot itself
// is returned: it is immutable and still exact, and the steady-state
// warm path stays allocation-free.
func (t *tableau) snapshot() *Basis {
	if !t.basisDirty && t.installed != nil {
		return t.installed
	}
	return &Basis{
		m:     t.m,
		nStru: t.nStru,
		rows:  append([]int(nil), t.basis...),
		state: append([]int8(nil), t.state...),
	}
}

// reducedCostsInto computes d_j = c_j − y·A_j for the structural
// variables at the current basis, with y = c_B·B⁻¹, writing into dst
// when its capacity suffices (steady-state solves recycle the previous
// Solution's buffer and allocate nothing).
func (t *tableau) reducedCostsInto(dst []float64, c []float64) []float64 {
	y := t.ws.y
	t.computeMultipliers(c)
	if cap(dst) >= t.nStru {
		dst = dst[:t.nStru]
	} else {
		dst = make([]float64, t.nStru)
	}
	for v := 0; v < t.nStru; v++ {
		rc := c[v]
		for _, tm := range t.cols[v] {
			rc -= y[tm.Var] * tm.Coef
		}
		dst[v] = rc
	}
	return dst
}

// SolveFrom optimises the problem starting from a prior basis snapshot.
// The intended caller is branch and bound: a child node differs from its
// parent by one variable-bound change, the parent's optimal basis stays
// dual feasible under that change, and a short dual-simplex repair
// reaches the child optimum without any artificial phase 1. When basis is
// nil, incompatible, singular, or the repair goes off the rails, the
// solve silently falls back to the cold two-phase path (see
// WarmStartFallbackCount). Unlike Solve, SolveFrom never presolves — the
// returned Solution always carries a Basis for the next generation.
func (p *Problem) SolveFrom(basis *Basis) (*Solution, error) {
	return p.SolveFromReuse(basis, nil)
}

// SolveFromReuse is SolveFrom with Solution recycling: when recycle is
// non-nil its X and reduced-cost buffers are reused for the new result,
// and the returned Solution may be recycle itself. The caller promises it
// no longer reads recycle (or slices obtained from it) — branch-and-bound
// hands back the previous node's Solution once its values have been
// copied out, which makes the steady-state warm path allocation-free.
// Basis snapshots are never recycled; any Basis previously returned
// remains valid and immutable.
func (p *Problem) SolveFromReuse(basis *Basis, recycle *Solution) (*Solution, error) {
	sol, warm := p.solveFrom(basis, recycle)
	p.solves++
	p.pivots += int64(sol.Iters)
	if warm {
		p.warmSolves++
		p.warmPivots += int64(sol.Iters)
	} else {
		p.coldSolves++
		p.phase1Rows += int64(sol.p1rows)
		if basis != nil {
			p.warmFallbacks++
		}
	}
	return sol, nil
}

// solveFrom runs the warm path and reports whether it was used; any
// failure inside the warm attempt discards its state and re-solves cold.
func (p *Problem) solveFrom(basis *Basis, recycle *Solution) (sol *Solution, warm bool) {
	if p.ws != nil {
		p.ws.tabOptimal = false
	}
	for v := range p.cost {
		if p.lo[v] > p.hi[v]+tol {
			// Trivially infeasible child; no simplex work on either path.
			// Attributed to the warm side when a basis was offered so a
			// fallback is never recorded for a node the parent basis
			// could not have helped.
			s := resetSolution(recycle, len(p.cost))
			s.Status = Infeasible
			return s, basis != nil
		}
	}
	if basis.compatible(p) {
		if s := p.warmSolve(basis, recycle); s != nil {
			return s, true
		}
	}
	return p.coldFull(recycle), false
}

// coldFull is the fallback: a full-tableau two-phase solve that bypasses
// presolve so the result carries a reusable basis.
func (p *Problem) coldFull(recycle *Solution) *Solution {
	t := p.newTableau()
	p1 := t.phase1()
	st := p1
	if p1 == Optimal {
		st = t.phase2()
	}
	if (st == Optimal && !p.warmResultOK(t.x[:t.nStru])) || (st == IterLimit && t.invBad) ||
		(st == Infeasible && t.stabHits > 0) {
		// Same verification retry as Problem.solve: a cold run that claims
		// optimality on a bound- or row-violating point, drove the basis
		// numerically singular, or claims infeasibility after tripping the
		// pivot-stability guard is re-run once under Bland's rule (see the
		// comment there).
		t = p.newTableau()
		t.forceBland = true
		if p1 = t.phase1(); p1 == Optimal {
			st = t.phase2()
		} else {
			st = p1
		}
	}
	if p1 != Optimal {
		t.saveCache()
		p.foldTableau(t)
		sol := resetSolution(recycle, len(p.cost))
		sol.Status, sol.Iters, sol.p1rows = st, t.iters, t.m
		return sol
	}
	t.saveCache()
	p.foldTableau(t)
	sol := resetSolution(recycle, len(p.cost))
	sol.Status, sol.Iters, sol.p1rows = st, t.iters, t.m
	copy(sol.X, t.x[:t.nStru])
	for v, xv := range sol.X {
		sol.Obj += p.cost[v] * xv
	}
	if st == Optimal {
		sol.basis = t.snapshot()
		sol.redCost = t.reducedCostsInto(sol.redCost, t.cost)
		t.ws.tabOptimal = true
	}
	return sol
}

// warmSolve attempts the warm path. A nil return means the basis could
// not be used (singular factorization, iteration blow-up, or a result
// that fails verification) and the caller should fall back. The recycle
// buffers are only consumed on a returned result; a fallback leaves them
// for coldFull to claim.
func (p *Problem) warmSolve(basis *Basis, recycle *Solution) *Solution {
	t := p.newWarmTableau(basis)
	if t == nil {
		return nil
	}
	// Dual simplex drives the primal infeasibilities introduced by the
	// bound change out of the basis; the parent basis is dual feasible so
	// no phase 1 is needed. A nil-candidate outcome is a genuine
	// infeasibility proof, not a failure.
	switch st := t.dualSimplex(t.cost); st {
	case Infeasible:
		t.saveCache()
		p.foldTableau(t)
		sol := resetSolution(recycle, len(p.cost))
		sol.Status, sol.Iters = Infeasible, t.iters
		return sol
	case IterLimit:
		if p.budgetStop() {
			p.foldTableau(t)
			sol := resetSolution(recycle, len(p.cost))
			sol.Status, sol.Iters = IterLimit, t.iters
			return sol
		}
		return nil // stale basis ground away the budget — fall back
	}
	// Primal polish from the repaired basis: confirms optimality and
	// absorbs any dual drift the repair introduced.
	st := t.phase2()
	if st == Unbounded || st == IterLimit {
		if st == IterLimit && p.budgetStop() {
			p.foldTableau(t)
			sol := resetSolution(recycle, len(p.cost))
			sol.Status, sol.Iters = IterLimit, t.iters
			return sol
		}
		if st == Unbounded {
			t.saveCache()
			p.foldTableau(t)
			sol := resetSolution(recycle, len(p.cost))
			sol.Status, sol.Iters = Unbounded, t.iters
			return sol
		}
		return nil
	}
	sol := resetSolution(recycle, len(p.cost))
	sol.Status, sol.Iters = st, t.iters
	copy(sol.X, t.x[:t.nStru])
	for v, xv := range sol.X {
		sol.Obj += p.cost[v] * xv
	}
	if !p.warmResultOK(sol.X) {
		return nil // numerically off — rebuild from scratch
	}
	t.saveCache()
	p.foldTableau(t)
	sol.basis = t.snapshot()
	sol.redCost = t.reducedCostsInto(sol.redCost, t.cost)
	t.ws.tabOptimal = true
	return sol
}

// warmResultOK verifies a warm optimum against the original rows and
// bounds with a loose tolerance; a failure indicates the inherited
// factorization drifted and the answer cannot be trusted.
func (p *Problem) warmResultOK(x []float64) bool {
	const vtol = 1e-5
	for v, xv := range x {
		if xv < p.lo[v]-vtol || xv > p.hi[v]+vtol {
			return false
		}
	}
	return p.RowsSatisfied(x, vtol)
}

// installBasis adopts the snapshot's basis and states, producing a valid
// B⁻¹ in workspace memory. When the workspace's factorization cache
// already holds the inverse of exactly this basis — the steady-state
// branch-and-bound case, where a worker expands a child of the node it
// just solved — the O(m³) Gauss-Jordan rebuild is skipped entirely and
// the solve is tallied as a workspace reuse. Returns false when the
// basis matrix is numerically singular.
func (t *tableau) installBasis(b *Basis) bool {
	copy(t.basis, b.rows)
	copy(t.state, b.state)
	t.installed = b
	// A cache hit requires the cached representation to match this run's
	// engine: dense binv and sparse factors are not interchangeable.
	if t.ws.basisValid && t.ws.cacheSparse == t.sparse && intsEqual(t.ws.cachedBasis, b.rows) {
		t.reusedInv = true
		return true
	}
	return t.factorize()
}

// newWarmTableau builds the full tableau (as newTableau does) but
// installs the snapshot basis instead of the artificial one. Artificials
// are fixed at zero with +1 coefficients — they exist only so snapshot
// column indices stay aligned and a degenerate parent basis that still
// holds an artificial remains representable. Returns nil when the basis
// matrix is singular.
func (p *Problem) newWarmTableau(b *Basis) *tableau {
	t := p.prepTableau()
	m := t.m
	// A prior cold solve may have sign-flipped artificial coefficients in
	// the shared column arena; the warm convention is +1, fixed at zero.
	// Rewriting a nonbasic column never touches B⁻¹, and saveCache refuses
	// to cache a basis holding a flipped artificial, so a cache hit can
	// only ever see +1 columns.
	for i := 0; i < m; i++ {
		a := t.nArt + i
		t.cols[a][0] = Term{Var: i, Coef: 1}
		t.lo[a], t.hi[a] = 0, 0
	}
	if !t.installBasis(b) {
		return nil
	}
	t.basisDirty = false
	// Nonbasic variables rest on their (possibly tightened) bounds; the
	// snapshot's atUp/atLo choice is kept where both bounds are finite.
	for v := 0; v < t.n; v++ {
		if t.state[v] == basic {
			continue
		}
		switch {
		case t.state[v] == atUp && !math.IsInf(t.hi[v], 1):
			t.x[v] = t.hi[v]
		case !math.IsInf(t.lo[v], -1):
			if t.state[v] != atLo {
				t.state[v] = atLo
				t.basisDirty = true
			}
			t.x[v] = t.lo[v]
		case !math.IsInf(t.hi[v], 1):
			if t.state[v] != atUp {
				t.state[v] = atUp
				t.basisDirty = true
			}
			t.x[v] = t.hi[v]
		default:
			if t.state[v] != atLo {
				t.state[v] = atLo
				t.basisDirty = true
			}
			t.x[v] = 0 // free variable pinned at 0
		}
	}
	t.refreshBasics()
	return t
}

// factorize rebuilds the basis representation for the currently
// installed basis from scratch: sparse LU factors on the sparse path,
// the explicit Gauss-Jordan inverse on the dense one. Returns false when
// the basis matrix is numerically singular; the factorization cache is
// invalidated either way until a trusted exit re-validates it
// (saveCache). A sparse factorization whose fill-in blows past the
// luFillFactor threshold abandons the sparse engine for the rest of the
// run and rebuilds the dense inverse instead (counted as a
// DenseFallback).
func (t *tableau) factorize() bool {
	t.ws.basisValid = false
	t.ws.updatesSinceRefactor = 0
	t.refac++
	if t.m == 0 {
		if t.sparse {
			t.f.setIdentity(0)
		}
		return true
	}
	if t.sparse {
		st, bNnz, fill := t.f.factorize(t.basis, t.cols, t.m)
		if int64(bNnz) > t.basisNnz {
			t.basisNnz = int64(bNnz)
		}
		switch st {
		case luOK:
			t.sparseRefac++
			t.fillIn += int64(fill)
			return true
		case luSingular:
			return false
		}
		// luFill: the basis wants a near-dense factorization — grow the
		// dense buffers (a rare, amortized allocation) and switch the run
		// over to the explicit inverse.
		ws := t.ws
		ws.binv = growF(ws.binv, t.m*t.m)
		ws.bmat = growF(ws.bmat, t.m*t.m)
		t.binv = ws.binv
		t.sparse = false
		ws.sparse = false
		t.denseFB = true
		return t.factorizeDense()
	}
	bnnz := int64(0)
	for j := 0; j < t.m; j++ {
		bnnz += int64(len(t.cols[t.basis[j]]))
	}
	if bnnz > t.basisNnz {
		t.basisNnz = bnnz
	}
	return t.factorizeDense()
}

// factorizeDense computes binv = B⁻¹ for the currently installed basis
// by Gauss-Jordan elimination with partial pivoting, entirely inside
// workspace memory.
func (t *tableau) factorizeDense() bool {
	m := t.m
	// Dense B from the basis columns, augmented with the identity.
	bmat := t.ws.bmat
	binv := t.binv
	for i := range bmat[:m*m] {
		bmat[i] = 0
	}
	identInto(binv, m)
	for j := 0; j < m; j++ {
		v := t.basis[j]
		if v < 0 || v >= t.n {
			return false
		}
		for _, tm := range t.cols[v] {
			bmat[tm.Var*m+j] = tm.Coef
		}
	}
	const singTol = 1e-9
	for col := 0; col < m; col++ {
		piv, pivAbs := -1, singTol
		for r := col; r < m; r++ {
			if a := math.Abs(bmat[r*m+col]); a > pivAbs {
				piv, pivAbs = r, a
			}
		}
		if piv < 0 {
			return false
		}
		if piv != col {
			cr := bmat[col*m : col*m+m]
			pr := bmat[piv*m : piv*m+m]
			for k := 0; k < m; k++ {
				cr[k], pr[k] = pr[k], cr[k]
			}
			ci := binv[col*m : col*m+m]
			pi := binv[piv*m : piv*m+m]
			for k := 0; k < m; k++ {
				ci[k], pi[k] = pi[k], ci[k]
			}
		}
		crow := bmat[col*m : col*m+m]
		irow := binv[col*m : col*m+m]
		inv := 1 / crow[col]
		for k := 0; k < m; k++ {
			crow[k] *= inv
			irow[k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := bmat[r*m+col]
			if f == 0 {
				continue
			}
			rrow := bmat[r*m : r*m+m]
			xrow := binv[r*m : r*m+m]
			for k := 0; k < m; k++ {
				rrow[k] -= f * crow[k]
				xrow[k] -= f * irow[k]
			}
		}
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis with
// costs c. Each iteration kicks the most-violated basic variable out to
// its nearest bound, choosing the entering column by the dual ratio test
// so reduced-cost signs are preserved. Returns Optimal once every basic
// value is inside its bounds, Infeasible when a violated row admits no
// entering column (a valid infeasibility certificate), or IterLimit.
func (t *tableau) dualSimplex(c []float64) Status {
	m := t.m
	y := t.ws.y
	w := t.ws.w
	degen := 0
	for ; t.iters < t.maxIter; t.iters++ {
		if t.iters%64 == 0 && t.aborted() {
			return IterLimit
		}
		// Leaving row: largest bound violation among basic variables.
		r, viol, e := -1, tol, 0.0
		var target float64
		var leaveAt int8
		for i := 0; i < m; i++ {
			bv := t.basis[i]
			if d := t.x[bv] - t.hi[bv]; d > viol {
				r, viol, e, target, leaveAt = i, d, 1, t.hi[bv], atUp
			}
			if d := t.lo[bv] - t.x[bv]; d > viol {
				r, viol, e, target, leaveAt = i, d, -1, t.lo[bv], atLo
			}
		}
		if r < 0 {
			return Optimal
		}
		// Simplex multipliers for the dual ratio test.
		t.computeMultipliers(c)
		rho := t.binvRow(r)
		enter, bestRatio := -1, Inf
		bland := degen >= stall
		for v := 0; v < t.n; v++ {
			if t.state[v] == basic {
				continue
			}
			if t.hi[v]-t.lo[v] < tol && !math.IsInf(t.hi[v], 1) {
				continue // fixed column can never enter
			}
			alpha := 0.0
			for _, tm := range t.cols[v] {
				alpha += rho[tm.Var] * tm.Coef
			}
			ab := e * alpha
			free := math.IsInf(t.lo[v], -1) && math.IsInf(t.hi[v], 1)
			var ok bool
			switch {
			case free:
				ok = math.Abs(ab) > pivTol
			case t.state[v] == atLo:
				ok = ab > pivTol
			case t.state[v] == atUp:
				ok = ab < -pivTol
			}
			if !ok {
				continue
			}
			rc := c[v]
			for _, tm := range t.cols[v] {
				rc -= y[tm.Var] * tm.Coef
			}
			ratio := math.Abs(rc) / math.Abs(ab)
			if enter < 0 || ratio < bestRatio-tol {
				enter, bestRatio = v, ratio
				if bland {
					break // first admissible column: anti-cycling
				}
			}
		}
		if enter < 0 {
			// The violated row cannot be repaired: primal infeasible.
			return Infeasible
		}
		if bestRatio < tol {
			degen++
		} else {
			degen = 0
		}
		// Direction w = B⁻¹ A_enter; the step drives row r exactly to its
		// violated bound.
		t.ftranColumn(enter)
		if math.Abs(w[r]) < pivTol {
			return IterLimit // numerically dead pivot — let the caller fall back
		}
		out := t.basis[r]
		step := (t.x[out] - target) / w[r]
		t.x[enter] += step
		for i := 0; i < m; i++ {
			if w[i] != 0 {
				t.x[t.basis[i]] -= step * w[i]
			}
		}
		t.state[out] = leaveAt
		t.x[out] = target
		t.basis[r] = enter
		t.state[enter] = basic
		t.updateInverse(r, w)
		if !t.applyEta() {
			return IterLimit
		}
		if t.iters%refresh == refresh-1 {
			t.refreshBasics()
		}
	}
	return IterLimit
}
