package lp

import (
	"math"
	"time"
)

// Basis is a compact snapshot of a simplex basis: which variable is basic
// in each row plus the bound each nonbasic column rests on, over the full
// tableau column space (structurals, slacks, artificials). A Basis is
// immutable after creation — branch-and-bound shares one snapshot between
// sibling nodes and across worker Problem clones without copying.
type Basis struct {
	m, nStru int
	rows     []int  // rows[i] = variable basic in row i
	state    []int8 // per-column nonbasic position (atLo / atUp / basic)
}

// compatible reports whether the snapshot can seed a solve of p: same row
// count and same structural variable count. Rows are shared by Clone and
// never mutated by Solve, so dimension equality is the whole check.
func (b *Basis) compatible(p *Problem) bool {
	return b != nil && b.m == len(p.rows) && b.nStru == len(p.cost)
}

// snapshot captures the tableau's current basis. Only valid at a basic
// solution (after a successful simplex run).
func (t *tableau) snapshot() *Basis {
	return &Basis{
		m:     t.m,
		nStru: t.nStru,
		rows:  append([]int(nil), t.basis...),
		state: append([]int8(nil), t.state...),
	}
}

// reducedCosts returns d_j = c_j − y·A_j for the structural variables at
// the current basis, with y = c_B·B⁻¹.
func (t *tableau) reducedCosts(c []float64) []float64 {
	m := t.m
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.binv[i]
		for k := 0; k < m; k++ {
			y[k] += cb * row[k]
		}
	}
	d := make([]float64, t.nStru)
	for v := 0; v < t.nStru; v++ {
		rc := c[v]
		for _, tm := range t.cols[v] {
			rc -= y[tm.Var] * tm.Coef
		}
		d[v] = rc
	}
	return d
}

// SolveFrom optimises the problem starting from a prior basis snapshot.
// The intended caller is branch and bound: a child node differs from its
// parent by one variable-bound change, the parent's optimal basis stays
// dual feasible under that change, and a short dual-simplex repair
// reaches the child optimum without any artificial phase 1. When basis is
// nil, incompatible, singular, or the repair goes off the rails, the
// solve silently falls back to the cold two-phase path (see
// WarmStartFallbackCount). Unlike Solve, SolveFrom never presolves — the
// returned Solution always carries a Basis for the next generation.
func (p *Problem) SolveFrom(basis *Basis) (*Solution, error) {
	sol, warm := p.solveFrom(basis)
	p.solves++
	p.pivots += int64(sol.Iters)
	if warm {
		p.warmSolves++
		p.warmPivots += int64(sol.Iters)
	} else {
		p.coldSolves++
		p.phase1Rows += int64(sol.p1rows)
		if basis != nil {
			p.warmFallbacks++
		}
	}
	return sol, nil
}

// solveFrom runs the warm path and reports whether it was used; any
// failure inside the warm attempt discards its state and re-solves cold.
func (p *Problem) solveFrom(basis *Basis) (sol *Solution, warm bool) {
	for v := range p.cost {
		if p.lo[v] > p.hi[v]+tol {
			// Trivially infeasible child; no simplex work on either path.
			// Attributed to the warm side when a basis was offered so a
			// fallback is never recorded for a node the parent basis
			// could not have helped.
			return &Solution{Status: Infeasible, X: make([]float64, len(p.cost))}, basis != nil
		}
	}
	if basis.compatible(p) {
		if s := p.warmSolve(basis); s != nil {
			return s, true
		}
	}
	return p.coldFull(), false
}

// coldFull is the fallback: a full-tableau two-phase solve that bypasses
// presolve so the result carries a reusable basis.
func (p *Problem) coldFull() *Solution {
	t := p.newTableau()
	if st := t.phase1(); st != Optimal {
		return &Solution{Status: st, X: make([]float64, len(p.cost)), Iters: t.iters, p1rows: t.m}
	}
	st := t.phase2()
	sol := &Solution{Status: st, X: make([]float64, len(p.cost)), Iters: t.iters, p1rows: t.m}
	copy(sol.X, t.x[:t.nStru])
	for v, xv := range sol.X {
		sol.Obj += p.cost[v] * xv
	}
	if st == Optimal {
		sol.basis = t.snapshot()
		sol.redCost = t.reducedCosts(t.cost)
	}
	return sol
}

// warmSolve attempts the warm path. A nil return means the basis could
// not be used (singular factorization, iteration blow-up, or a result
// that fails verification) and the caller should fall back.
func (p *Problem) warmSolve(basis *Basis) *Solution {
	t := p.newWarmTableau(basis)
	if t == nil {
		return nil
	}
	// Dual simplex drives the primal infeasibilities introduced by the
	// bound change out of the basis; the parent basis is dual feasible so
	// no phase 1 is needed. A nil-candidate outcome is a genuine
	// infeasibility proof, not a failure.
	switch st := t.dualSimplex(t.cost); st {
	case Infeasible:
		return &Solution{Status: Infeasible, X: make([]float64, len(p.cost)), Iters: t.iters}
	case IterLimit:
		if !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return &Solution{Status: IterLimit, X: make([]float64, len(p.cost)), Iters: t.iters}
		}
		return nil // stale basis ground away the budget — fall back
	}
	// Primal polish from the repaired basis: confirms optimality and
	// absorbs any dual drift the repair introduced.
	st := t.phase2()
	if st == Unbounded || st == IterLimit {
		if st == IterLimit && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return &Solution{Status: IterLimit, X: make([]float64, len(p.cost)), Iters: t.iters}
		}
		if st == Unbounded {
			return &Solution{Status: Unbounded, X: make([]float64, len(p.cost)), Iters: t.iters}
		}
		return nil
	}
	sol := &Solution{Status: st, X: make([]float64, len(p.cost)), Iters: t.iters}
	copy(sol.X, t.x[:t.nStru])
	for v, xv := range sol.X {
		sol.Obj += p.cost[v] * xv
	}
	if !p.warmResultOK(sol.X) {
		return nil // numerically off — rebuild from scratch
	}
	sol.basis = t.snapshot()
	sol.redCost = t.reducedCosts(t.cost)
	return sol
}

// warmResultOK verifies a warm optimum against the original rows and
// bounds with a loose tolerance; a failure indicates the inherited
// factorization drifted and the answer cannot be trusted.
func (p *Problem) warmResultOK(x []float64) bool {
	const vtol = 1e-5
	for v, xv := range x {
		if xv < p.lo[v]-vtol || xv > p.hi[v]+vtol {
			return false
		}
	}
	return p.RowsSatisfied(x, vtol)
}

// newWarmTableau builds the full tableau (as newTableau does) but
// installs the snapshot basis instead of the artificial one. Artificials
// are created fixed at zero with +1 coefficients — they exist only so
// snapshot column indices stay aligned and a degenerate parent basis that
// still holds an artificial remains representable. Returns nil when the
// basis matrix is singular.
func (t *tableau) installBasis(b *Basis) bool {
	copy(t.basis, b.rows)
	copy(t.state, b.state)
	return t.factorize()
}

func (p *Problem) newWarmTableau(b *Basis) *tableau {
	m := len(p.rows)
	nStru := len(p.cost)
	n := nStru + m + m
	t := &tableau{
		m: m, n: n, nStru: nStru, nArt: nStru + m,
		cols:  make([][]Term, n),
		b:     make([]float64, m),
		lo:    make([]float64, n),
		hi:    make([]float64, n),
		cost:  make([]float64, n),
		basis: make([]int, m),
		state: make([]int8, n),
		x:     make([]float64, n),
	}
	t.maxIter = 5000 + 40*(m+nStru)
	t.deadline = p.deadline
	for v := 0; v < nStru; v++ {
		t.lo[v] = p.lo[v]
		t.hi[v] = p.hi[v]
		t.cost[v] = p.cost[v]
	}
	for i, r := range p.rows {
		for _, tm := range r.terms {
			t.cols[tm.Var] = append(t.cols[tm.Var], Term{Var: i, Coef: tm.Coef})
		}
		t.b[i] = r.rhs
		s := nStru + i
		t.cols[s] = []Term{{Var: i, Coef: 1}}
		switch r.sense {
		case LE:
			t.lo[s], t.hi[s] = 0, Inf
		case GE:
			t.lo[s], t.hi[s] = -Inf, 0
		case EQ:
			t.lo[s], t.hi[s] = 0, 0
		}
		a := t.nArt + i
		t.cols[a] = []Term{{Var: i, Coef: 1}}
		t.lo[a], t.hi[a] = 0, 0
	}
	if !t.installBasis(b) {
		return nil
	}
	// Nonbasic variables rest on their (possibly tightened) bounds; the
	// snapshot's atUp/atLo choice is kept where both bounds are finite.
	for v := 0; v < t.n; v++ {
		if t.state[v] == basic {
			continue
		}
		switch {
		case t.state[v] == atUp && !math.IsInf(t.hi[v], 1):
			t.x[v] = t.hi[v]
		case !math.IsInf(t.lo[v], -1):
			t.state[v], t.x[v] = atLo, t.lo[v]
		case !math.IsInf(t.hi[v], 1):
			t.state[v], t.x[v] = atUp, t.hi[v]
		default:
			t.state[v], t.x[v] = atLo, 0 // free variable pinned at 0
		}
	}
	t.refreshBasics()
	return t
}

// factorize computes binv = B⁻¹ for the currently installed basis by
// Gauss-Jordan elimination with partial pivoting. Returns false when the
// basis matrix is numerically singular.
func (t *tableau) factorize() bool {
	m := t.m
	if m == 0 {
		t.binv = ident(0)
		return true
	}
	// Dense B from the basis columns, augmented with the identity.
	bmat := make([][]float64, m)
	t.binv = ident(m)
	for i := range bmat {
		bmat[i] = make([]float64, m)
	}
	for j := 0; j < m; j++ {
		v := t.basis[j]
		if v < 0 || v >= t.n {
			return false
		}
		for _, tm := range t.cols[v] {
			bmat[tm.Var][j] = tm.Coef
		}
	}
	const singTol = 1e-9
	for col := 0; col < m; col++ {
		piv, pivAbs := -1, singTol
		for r := col; r < m; r++ {
			if a := math.Abs(bmat[r][col]); a > pivAbs {
				piv, pivAbs = r, a
			}
		}
		if piv < 0 {
			return false
		}
		bmat[col], bmat[piv] = bmat[piv], bmat[col]
		t.binv[col], t.binv[piv] = t.binv[piv], t.binv[col]
		inv := 1 / bmat[col][col]
		for k := 0; k < m; k++ {
			bmat[col][k] *= inv
			t.binv[col][k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := bmat[r][col]
			if f == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				bmat[r][k] -= f * bmat[col][k]
				t.binv[r][k] -= f * t.binv[col][k]
			}
		}
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis with
// costs c. Each iteration kicks the most-violated basic variable out to
// its nearest bound, choosing the entering column by the dual ratio test
// so reduced-cost signs are preserved. Returns Optimal once every basic
// value is inside its bounds, Infeasible when a violated row admits no
// entering column (a valid infeasibility certificate), or IterLimit.
func (t *tableau) dualSimplex(c []float64) Status {
	m := t.m
	y := make([]float64, m)
	w := make([]float64, m)
	degen := 0
	for ; t.iters < t.maxIter; t.iters++ {
		if t.iters%64 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return IterLimit
		}
		// Leaving row: largest bound violation among basic variables.
		r, viol, e := -1, tol, 0.0
		var target float64
		var leaveAt int8
		for i := 0; i < m; i++ {
			bv := t.basis[i]
			if d := t.x[bv] - t.hi[bv]; d > viol {
				r, viol, e, target, leaveAt = i, d, 1, t.hi[bv], atUp
			}
			if d := t.lo[bv] - t.x[bv]; d > viol {
				r, viol, e, target, leaveAt = i, d, -1, t.lo[bv], atLo
			}
		}
		if r < 0 {
			return Optimal
		}
		// Simplex multipliers for the dual ratio test.
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for i := 0; i < m; i++ {
			cb := c[t.basis[i]]
			if cb == 0 {
				continue
			}
			row := t.binv[i]
			for k := 0; k < m; k++ {
				y[k] += cb * row[k]
			}
		}
		rho := t.binv[r]
		enter, bestRatio := -1, Inf
		bland := degen >= stall
		for v := 0; v < t.n; v++ {
			if t.state[v] == basic {
				continue
			}
			if t.hi[v]-t.lo[v] < tol && !math.IsInf(t.hi[v], 1) {
				continue // fixed column can never enter
			}
			alpha := 0.0
			for _, tm := range t.cols[v] {
				alpha += rho[tm.Var] * tm.Coef
			}
			ab := e * alpha
			free := math.IsInf(t.lo[v], -1) && math.IsInf(t.hi[v], 1)
			var ok bool
			switch {
			case free:
				ok = math.Abs(ab) > pivTol
			case t.state[v] == atLo:
				ok = ab > pivTol
			case t.state[v] == atUp:
				ok = ab < -pivTol
			}
			if !ok {
				continue
			}
			rc := c[v]
			for _, tm := range t.cols[v] {
				rc -= y[tm.Var] * tm.Coef
			}
			ratio := math.Abs(rc) / math.Abs(ab)
			if enter < 0 || ratio < bestRatio-tol {
				enter, bestRatio = v, ratio
				if bland {
					break // first admissible column: anti-cycling
				}
			}
		}
		if enter < 0 {
			// The violated row cannot be repaired: primal infeasible.
			return Infeasible
		}
		if bestRatio < tol {
			degen++
		} else {
			degen = 0
		}
		// Direction w = B⁻¹ A_enter; the step drives row r exactly to its
		// violated bound.
		for i := 0; i < m; i++ {
			w[i] = 0
		}
		for _, tm := range t.cols[enter] {
			for i := 0; i < m; i++ {
				w[i] += t.binv[i][tm.Var] * tm.Coef
			}
		}
		if math.Abs(w[r]) < pivTol {
			return IterLimit // numerically dead pivot — let the caller fall back
		}
		out := t.basis[r]
		step := (t.x[out] - target) / w[r]
		t.x[enter] += step
		for i := 0; i < m; i++ {
			if w[i] != 0 {
				t.x[t.basis[i]] -= step * w[i]
			}
		}
		t.state[out] = leaveAt
		t.x[out] = target
		t.basis[r] = enter
		t.state[enter] = basic
		piv := w[r]
		brow := t.binv[r]
		inv := 1 / piv
		for k := 0; k < m; k++ {
			brow[k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == r || w[i] == 0 {
				continue
			}
			f := w[i]
			row := t.binv[i]
			for k := 0; k < m; k++ {
				row[k] -= f * brow[k]
			}
		}
		if t.iters%refresh == refresh-1 {
			t.refreshBasics()
		}
	}
	return IterLimit
}
