package lp

import (
	"math"
	"math/rand"
	"testing"
)

// kernelBenchProblem builds a deterministic mid-size LP (the shape of one
// branch-and-bound relaxation) under the requested engine and solves it
// once on the full tableau so the warm path has a basis to start from.
// Seeds are probed in order until one yields an Optimal, basis-carrying
// solve, so the fixture stays stable if the generator's arithmetic
// shifts.
func kernelBenchProblem(tb testing.TB, k Kernel) (*Problem, *Basis) {
	tb.Helper()
	for seed := int64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem()
		p.SetKernel(k)
		const nv, nr = 40, 25
		for v := 0; v < nv; v++ {
			p.AddVar(0, 10+rng.Float64()*10, rng.NormFloat64())
		}
		for r := 0; r < nr; r++ {
			var terms []Term
			for v := 0; v < nv; v++ {
				if rng.Intn(3) == 0 {
					terms = append(terms, Term{Var: v, Coef: float64(rng.Intn(7) - 3)})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{Var: rng.Intn(nv), Coef: 1}}
			}
			p.AddConstraint(terms, LE, float64(5+rng.Intn(20)))
		}
		sol, err := p.SolveFrom(nil)
		if err == nil && sol.Status == Optimal && sol.Basis() != nil {
			return p, sol.Basis()
		}
	}
	tb.Fatal("no seed produced an optimal basis-carrying fixture")
	return nil, nil
}

// BenchmarkSolveFromSteadyState measures the branch-and-bound steady
// state: re-solving an unchanged problem from its own optimal basis. The
// workspace's factorization cache turns the whole solve into a pair of
// feasibility scans — no factorization, no pivots, and (pinned by
// TestSolveFromSteadyStateAllocs and make bench-kernel) no allocations.
func BenchmarkSolveFromSteadyState(b *testing.B) {
	benchSteadyState(b, KernelDense)
}

// BenchmarkSolveFromSteadyStateSparse is the same steady state on the
// factorized (LU + eta) engine; make bench-kernel runs both so the
// sparse path stays under the same zero-allocation discipline.
func BenchmarkSolveFromSteadyStateSparse(b *testing.B) {
	benchSteadyState(b, KernelSparse)
}

func benchSteadyState(b *testing.B, k Kernel) {
	p, basis := kernelBenchProblem(b, k)
	var spare *Solution
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.SolveFromReuse(basis, spare)
		if err != nil || sol.Status != Optimal {
			b.Fatalf("iter %d: status %v err %v", i, sol.Status, err)
		}
		basis = sol.Basis()
		spare = sol
	}
}

// BenchmarkSolveFromBranchToggle measures the other half of the hot loop:
// a child-style bound change followed by a warm re-solve, alternating a
// tightened and a restored bound so every iteration performs real dual
// repair work (pivots, eta updates) on recycled memory.
func BenchmarkSolveFromBranchToggle(b *testing.B) {
	benchBranchToggle(b, KernelDense)
}

// BenchmarkSolveFromBranchToggleSparse: the same bound-toggle repair
// loop with pivots landing on the LU factors as eta columns.
func BenchmarkSolveFromBranchToggleSparse(b *testing.B) {
	benchBranchToggle(b, KernelSparse)
}

func benchBranchToggle(b *testing.B, k Kernel) {
	p, basis := kernelBenchProblem(b, k)
	// Toggle the bound of the variable largest in the optimum — the one
	// most likely to be basic, so tightening it forces pivots.
	sol, err := p.SolveFromReuse(basis, nil)
	if err != nil || sol.Status != Optimal {
		b.Fatalf("fixture re-solve: status %v err %v", sol.Status, err)
	}
	v, best := 0, -1.0
	for i, x := range sol.X {
		if x > best {
			v, best = i, x
		}
	}
	lo, hi := p.Bounds(v)
	tight := math.Floor((lo + hi) / 2)
	basis = sol.Basis()
	spare := sol
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			p.SetBounds(v, lo, tight)
		} else {
			p.SetBounds(v, lo, hi)
		}
		sol, err := p.SolveFromReuse(basis, spare)
		if err != nil || sol.Status != Optimal {
			b.Fatalf("iter %d: status %v err %v", i, sol.Status, err)
		}
		if nb := sol.Basis(); nb != nil {
			basis = nb
		}
		spare = sol
	}
}

// TestSolveFromSteadyStateAllocs pins the zero-allocation steady state of
// the warm-start path in both engines: once the workspace is warmed up,
// re-solving from the previous basis with Solution recycling must not
// allocate at all. This is the alloc regression gate make bench-kernel
// enforces.
func TestSolveFromSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the property is gated in non-race runs")
	}
	for _, k := range []Kernel{KernelDense, KernelSparse} {
		t.Run(k.String(), func(t *testing.T) {
			p, basis := kernelBenchProblem(t, k)
			var spare *Solution
			for i := 0; i < 3; i++ { // warm up buffers, cache, and recycled Solution
				sol, err := p.SolveFromReuse(basis, spare)
				if err != nil || sol.Status != Optimal {
					t.Fatalf("warm-up %d: status %v err %v", i, sol.Status, err)
				}
				basis = sol.Basis()
				spare = sol
			}
			allocs := testing.AllocsPerRun(100, func() {
				sol, err := p.SolveFromReuse(basis, spare)
				if err != nil || sol.Status != Optimal {
					t.Fatalf("status %v err %v", sol.Status, err)
				}
				basis = sol.Basis()
				spare = sol
			})
			if allocs != 0 {
				t.Fatalf("steady-state warm solve: %v allocs/op, want 0", allocs)
			}
			if p.WorkspaceReuseCount() == 0 {
				t.Fatal("steady state never hit the workspace factorization cache")
			}
		})
	}
}
