// Package gen produces seeded pseudo-random application netlists for
// conformance and fuzz testing. Every netlist it emits exercises the
// module library broadly — mixers in all three configurations (plain,
// sieve, celltrap), chambers, multi-endpoint nets that planarize into
// switches, fan-in and fan-out topologies, boundary inlets and outlets,
// per-unit footprint overrides and parallel control groups — while
// remaining semantically valid: Generate guarantees its output passes
// netlist.Validate and round-trips through Format/Parse.
//
// The generator is deterministic in its seed, so a failing conformance
// seed reproduces exactly and can be pinned as a regression test.
package gen
