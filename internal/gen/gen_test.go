package gen

import (
	"reflect"
	"testing"

	"columbas/internal/netlist"
)

// Every seed must produce a netlist that validates and survives a full
// Format → Parse round trip unchanged.
func TestGenerateValidAndRoundTrips(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		n := Generate(seed)
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: Validate: %v", seed, err)
		}
		back, err := netlist.ParseString(n.Format())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, n.Format())
		}
		if !reflect.DeepEqual(n, back) {
			t.Fatalf("seed %d: round trip changed the netlist\nbefore:\n%s\nafter:\n%s",
				seed, n.Format(), back.Format())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 9999} {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two Generate calls disagree", seed)
		}
	}
}

// Scale-class netlists must validate, round-trip, and have the fixed
// chip-scale structure: 2·lanes+1 units, one switch joining every
// chamber, and parallel groups capped at MaxGroupSize lanes.
func TestScaleGenerate(t *testing.T) {
	for _, tc := range []struct{ lanes, group int }{
		{16, 4}, {128, 8}, {256, 8},
	} {
		cfg := Scale(tc.lanes, tc.group)
		for seed := int64(0); seed < 5; seed++ {
			n := cfg.Generate(seed)
			if err := n.Validate(); err != nil {
				t.Fatalf("Scale(%d,%d) seed %d: Validate: %v", tc.lanes, tc.group, seed, err)
			}
			if got, want := n.NumUnits(), 2*tc.lanes+1; got != want {
				t.Fatalf("Scale(%d,%d) seed %d: %d units, want %d", tc.lanes, tc.group, seed, got, want)
			}
			back, err := netlist.ParseString(n.Format())
			if err != nil {
				t.Fatalf("Scale(%d,%d) seed %d: reparse: %v", tc.lanes, tc.group, seed, err)
			}
			if !reflect.DeepEqual(n, back) {
				t.Fatalf("Scale(%d,%d) seed %d: round trip changed the netlist", tc.lanes, tc.group, seed)
			}
			grouped := 0
			for _, g := range n.Parallel {
				if len(g) > 2*tc.group {
					t.Fatalf("Scale(%d,%d) seed %d: group of %d units exceeds cap %d",
						tc.lanes, tc.group, seed, len(g), 2*tc.group)
				}
				if len(g) < 4 {
					t.Fatalf("Scale(%d,%d) seed %d: group of %d units (needs ≥ 2 lanes)",
						tc.lanes, tc.group, seed, len(g))
				}
				grouped += len(g) / 2
			}
			// With lanes ≫ groupSize nearly every lane lands in a group;
			// at most one undersized remainder chunk per mixer option.
			if grouped < tc.lanes-3 {
				t.Fatalf("Scale(%d,%d) seed %d: only %d of %d lanes grouped",
					tc.lanes, tc.group, seed, grouped, tc.lanes)
			}
			if !reflect.DeepEqual(n, cfg.Generate(seed)) {
				t.Fatalf("Scale(%d,%d) seed %d: not deterministic", tc.lanes, tc.group, seed)
			}
		}
	}
}

// The default configuration must actually reach every structural feature
// somewhere in a modest seed range — otherwise the conformance suite is
// silently testing less than it claims.
func TestGenerateCoverage(t *testing.T) {
	var (
		sawOpt      [3]bool
		sawChamber  bool
		sawSwitch   bool // multi-endpoint net
		sawFanOut   bool // unit with degree ≥ 3
		sawParallel bool
		sawMuxes2   bool
		sawResize   bool
	)
	for seed := int64(0); seed < 300; seed++ {
		n := Generate(seed)
		if n.Muxes == 2 {
			sawMuxes2 = true
		}
		for _, u := range n.Units {
			if u.Type == netlist.Mixer {
				sawOpt[u.Opt] = true
			}
			if u.Type == netlist.Chamber {
				sawChamber = true
			}
			if u.W > 0 || u.H > 0 {
				sawResize = true
			}
			if n.Degree(u.Name) >= 3 {
				sawFanOut = true
			}
		}
		for _, net := range n.Nets {
			if len(net.Endpoints) > 2 {
				sawSwitch = true
			}
		}
		if len(n.Parallel) > 0 {
			sawParallel = true
		}
	}
	for opt, ok := range sawOpt {
		if !ok {
			t.Errorf("no seed produced a %v mixer", netlist.MixerOpt(opt))
		}
	}
	for name, ok := range map[string]bool{
		"chamber":        sawChamber,
		"switch net":     sawSwitch,
		"fan-out":        sawFanOut,
		"parallel group": sawParallel,
		"muxes=2":        sawMuxes2,
		"size override":  sawResize,
	} {
		if !ok {
			t.Errorf("no seed produced a %s", name)
		}
	}
}
