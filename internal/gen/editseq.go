package gen

import (
	"fmt"
	"math/rand"

	"columbas/internal/netlist"
)

// EditSequence generates a chain of steps+1 netlists, each one unit edit
// away from its predecessor — the workload of the delta-aware warm-start
// pipeline, which resolves such near misses to a donor design instead of
// solving cold. The chain starts from Generate(seed) under the Default
// configuration and applies one random edit per step: add a chamber,
// remove a previously added one, resize a unit's footprint, or reconnect
// a terminal. The same seed always yields the same chain, and every
// netlist in it is guaranteed to pass netlist.Validate; a violation is a
// generator bug and panics.
func EditSequence(seed int64, steps int) []*netlist.Netlist {
	return EditSequenceFrom(Generate(seed), seed, steps)
}

// EditSequenceFrom builds the same kind of one-edit-apart chain starting
// from an explicit base netlist instead of a generated one — the
// incremental re-synthesis benchmarks edit the paper's evaluation cases
// (chip9-class netlists) this way. The base is not mutated.
func EditSequenceFrom(base *netlist.Netlist, seed int64, steps int) []*netlist.Netlist {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed17))
	seq := make([]*netlist.Netlist, 0, steps+1)
	seq = append(seq, base)

	// Added chambers attach to units of the base netlist only, so a later
	// remove edit can never orphan another added unit.
	baseUnits := make([]string, 0, len(base.Units))
	for _, u := range base.Units {
		baseUnits = append(baseUnits, u.Name)
	}
	var added []string

	cur := base
	for k := 1; k <= steps; k++ {
		n := cloneNetlist(cur)
		n.Name = fmt.Sprintf("%s-e%d", base.Name, k)
		switch op := rng.Intn(4); {
		case op == 0: // add a chamber draining one base unit
			name := fmt.Sprintf("x%d", k)
			host := baseUnits[rng.Intn(len(baseUnits))]
			n.Units = append(n.Units, netlist.Unit{Name: name, Type: netlist.Chamber, Opt: netlist.Plain})
			n.Nets = append(n.Nets,
				net(unit(host), unit(name)),
				net(unit(name), out(fmt.Sprintf("xo%d", k))))
			added = append(added, name)
		case op == 1 && len(added) > 0: // remove a previously added chamber
			victim := added[rng.Intn(len(added))]
			removeUnit(n, victim)
			kept := added[:0]
			for _, a := range added {
				if a != victim {
					kept = append(kept, a)
				}
			}
			added = kept
		case op == 2: // resize one unit's footprint override
			u := &n.Units[rng.Intn(len(n.Units))]
			w, h := baseFootprint(u.Type)
			scale := 1 + 0.25*float64(1+rng.Intn(2))
			u.W, u.H = w*scale, h*scale
		default: // reconnect: move one terminal to a fresh fluid port
			ports := 0
			for ni := range n.Nets {
				for ei := range n.Nets[ni].Endpoints {
					if n.Nets[ni].Endpoints[ei].IsTerminal() {
						ports++
					}
				}
			}
			pick := rng.Intn(ports)
			for ni := range n.Nets {
				for ei := range n.Nets[ni].Endpoints {
					if !n.Nets[ni].Endpoints[ei].IsTerminal() {
						continue
					}
					if pick == 0 {
						n.Nets[ni].Endpoints[ei].Terminal = fmt.Sprintf("r%d", k)
					}
					pick--
				}
			}
		}
		if err := n.Validate(); err != nil {
			panic(fmt.Sprintf("gen: edit sequence seed %d step %d invalid: %v", seed, k, err))
		}
		seq = append(seq, n)
		cur = n
	}
	return seq
}

// cloneNetlist deep-copies a netlist so an edit never aliases its
// predecessor.
func cloneNetlist(n *netlist.Netlist) *netlist.Netlist {
	c := &netlist.Netlist{
		Name:  n.Name,
		Muxes: n.Muxes,
		Units: append([]netlist.Unit(nil), n.Units...),
		Nets:  make([]netlist.Net, len(n.Nets)),
	}
	for i, nt := range n.Nets {
		c.Nets[i] = netlist.Net{Endpoints: append([]netlist.Endpoint(nil), nt.Endpoints...)}
	}
	for _, g := range n.Parallel {
		c.Parallel = append(c.Parallel, append([]string(nil), g...))
	}
	return c
}

// removeUnit drops the unit and every net that references it. Callers
// guarantee the removal orphans no peer (the dropped nets' other
// endpoints keep at least one connection) and that the unit is in no
// parallel group.
func removeUnit(n *netlist.Netlist, name string) {
	units := n.Units[:0]
	for _, u := range n.Units {
		if u.Name != name {
			units = append(units, u)
		}
	}
	n.Units = units
	nets := n.Nets[:0]
	for _, nt := range n.Nets {
		hit := false
		for _, e := range nt.Endpoints {
			if e.Unit == name {
				hit = true
				break
			}
		}
		if !hit {
			nets = append(nets, nt)
		}
	}
	n.Nets = nets
}
