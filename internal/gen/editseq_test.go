package gen

import (
	"reflect"
	"testing"

	"columbas/internal/netlist"
)

// Every netlist in an edit sequence must validate, round-trip through
// Format → Parse, and differ from its predecessor by a bounded edit: at
// most one unit added or removed, and (on a pure resize or reconnect) an
// unchanged unit count.
func TestEditSequenceValidAndBounded(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		seq := EditSequence(seed, 6)
		if len(seq) != 7 {
			t.Fatalf("seed %d: got %d netlists, want 7", seed, len(seq))
		}
		for k, n := range seq {
			if err := n.Validate(); err != nil {
				t.Fatalf("seed %d step %d: Validate: %v", seed, k, err)
			}
			back, err := netlist.ParseString(n.Format())
			if err != nil {
				t.Fatalf("seed %d step %d: reparse: %v\n%s", seed, k, err, n.Format())
			}
			if !reflect.DeepEqual(n, back) {
				t.Fatalf("seed %d step %d: round trip changed the netlist", seed, k)
			}
			if k == 0 {
				continue
			}
			prev := seq[k-1]
			du := len(n.Units) - len(prev.Units)
			if du < -1 || du > 1 {
				t.Fatalf("seed %d step %d: unit count jumped by %d", seed, k, du)
			}
		}
	}
}

// The chain is deterministic in the seed, and edits never mutate the
// predecessor in place.
func TestEditSequenceDeterministicAndUnaliased(t *testing.T) {
	a := EditSequence(42, 5)
	b := EditSequence(42, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two EditSequence(42, 5) calls disagree")
	}
	base := Generate(42)
	if !reflect.DeepEqual(a[0], base) {
		t.Fatal("step 0 is not Generate(seed)")
	}
	// Re-deriving the chain must leave earlier steps untouched.
	c := EditSequence(42, 2)
	if !reflect.DeepEqual(c[0], base) {
		t.Fatal("editing aliased the base netlist")
	}
}
