package gen

import (
	"fmt"
	"io"

	"columbas/internal/layout"
	"columbas/internal/mps"
	"columbas/internal/planar"
)

// MILPModel generates a random netlist from the seed under the Default
// configuration, planarizes it, and builds the full placement MILP —
// the eager-separation model the layout pipeline would converge to. The
// returned instance is self-contained: solving it standalone reproduces
// the placement optimum.
func MILPModel(seed int64) (*mps.Instance, error) {
	return Default().MILPModel(seed)
}

// MILPModel is the configurable form of the package-level MILPModel:
// the netlist is generated under c, so callers control the instance
// size (a 1-lane config yields models a standalone solver finishes in
// seconds; Default yields thousand-variable benchmarks).
func (c Config) MILPModel(seed int64) (*mps.Instance, error) {
	n := c.Generate(seed)
	pr, err := planar.Planarize(n)
	if err != nil {
		return nil, fmt.Errorf("gen: planarize seed %d: %w", seed, err)
	}
	// DefaultOptions carries the paper's objective weights (α, β, γ, κ);
	// the zero Options would emit an empty objective row.
	m, err := layout.PlacementModel(pr, layout.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("gen: placement model seed %d: %w", seed, err)
	}
	return &mps.Instance{Name: n.Name, Model: m, ObjName: "AREA"}, nil
}

// WriteMPS emits the seed's placement MILP in MPS form, giving external
// solvers (or the standalone columbamilp CLI) the exact instances the
// layout benchmarks run.
func WriteMPS(w io.Writer, seed int64) error {
	return Default().WriteMPS(w, seed)
}

// WriteMPS emits the placement MILP for a netlist generated under c.
func (c Config) WriteMPS(w io.Writer, seed int64) error {
	in, err := c.MILPModel(seed)
	if err != nil {
		return err
	}
	return mps.Write(w, in)
}
