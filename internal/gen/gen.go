package gen

import (
	"fmt"
	"math/rand"

	"columbas/internal/netlist"
)

// Config bounds the shape of generated netlists. The zero value is not
// useful; start from Default.
type Config struct {
	// MinLanes, MaxLanes bound the number of independent process lanes
	// (inlet → mixer → chamber chains) in a netlist.
	MinLanes, MaxLanes int
	// MaxMuxes caps the multiplexer count (1 or 2).
	MaxMuxes int
	// Collector enables joining the lanes into a shared collector mixer
	// through a multi-endpoint net (which planarization realises as a
	// switch).
	Collector bool
	// FanOut enables lanes whose mixer feeds two downstream chambers.
	FanOut bool
	// Blend enables an extra fan-in stage: a mixer fed by two inlets
	// through a single multi-endpoint net.
	Blend bool
	// Resize enables per-unit footprint overrides. Overrides only ever
	// scale modules up from their library size, so they cannot create
	// geometry too small for the module's internal valves.
	Resize bool
	// ParallelGroups enables grouping same-configuration lane mixers so
	// they share control channels.
	ParallelGroups bool
	// MaxGroupSize, when positive, switches the generator to scale-class
	// output (see Scale): uniform in → mixer → chamber lanes drained by
	// one collector switch, with same-option lanes chunked into parallel
	// groups of at most MaxGroupSize lanes each. FanOut, Blend, Resize
	// and the per-feature random gates are ignored in this mode — the
	// structure is fixed and only the mixer options vary with the seed.
	// Zero keeps the default small-netlist generator.
	MaxGroupSize int
}

// Default returns the configuration used by the conformance suite: small
// netlists (fast to synthesize) with every structural feature enabled.
func Default() Config {
	return Config{
		MinLanes:       1,
		MaxLanes:       4,
		MaxMuxes:       2,
		Collector:      true,
		FanOut:         true,
		Blend:          true,
		Resize:         true,
		ParallelGroups: true,
	}
}

// Generate builds a random netlist from the seed under the Default
// configuration.
func Generate(seed int64) *netlist.Netlist { return Default().Generate(seed) }

// Scale returns a chip-scale configuration: exactly lanes uniform
// process lanes (in → sieve/cell-trap/plain mixer → chamber) drained by
// one collector switch, with parallel groups of at most groupSize lanes.
// Scale(128, 8) and Scale(256, 8) produce chip128- and chip256-class
// netlists (the layout model keeps one block rectangle per group, so the
// LP dimension grows with lanes/groupSize); they feed the sparse-kernel
// scaling benchmarks (make bench-scaling).
func Scale(lanes, groupSize int) Config {
	return Config{
		MinLanes:       lanes,
		MaxLanes:       lanes,
		MaxMuxes:       1,
		Collector:      true,
		ParallelGroups: true,
		MaxGroupSize:   groupSize,
	}
}

// Generate builds a random netlist from the seed. The same seed always
// yields the same netlist. The result is guaranteed to pass
// netlist.Validate; a violation is a generator bug and panics.
func (c Config) Generate(seed int64) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	n := &netlist.Netlist{
		Name:  fmt.Sprintf("rand%d", seed),
		Muxes: 1,
	}
	if c.MaxMuxes >= 2 && rng.Intn(4) == 0 {
		n.Muxes = 2
	}

	lanes := c.MinLanes
	if c.MaxLanes > c.MinLanes {
		lanes += rng.Intn(c.MaxLanes - c.MinLanes + 1)
	}
	if lanes < 1 {
		lanes = 1
	}

	opts := []netlist.MixerOpt{netlist.Plain, netlist.Sieve, netlist.CellTrap}

	if c.MaxGroupSize > 0 {
		return c.generateScale(rng, n, lanes, opts)
	}

	// Process lanes: in:s<i> → m<i> [→ c<i>], optionally fanning out to a
	// second chamber with its own outlet. tails collects each lane's last
	// unit, to be drained by the collector or a per-lane outlet.
	tails := make([]string, 0, lanes)
	laneOpt := make([]netlist.MixerOpt, 0, lanes)
	for i := 1; i <= lanes; i++ {
		opt := opts[rng.Intn(len(opts))]
		laneOpt = append(laneOpt, opt)
		m := fmt.Sprintf("m%d", i)
		n.Units = append(n.Units, c.unit(rng, m, netlist.Mixer, opt))
		n.Nets = append(n.Nets, net(in(fmt.Sprintf("s%d", i)), unit(m)))

		tail := m
		if rng.Intn(10) < 6 {
			ch := fmt.Sprintf("c%d", i)
			n.Units = append(n.Units, c.unit(rng, ch, netlist.Chamber, netlist.Plain))
			n.Nets = append(n.Nets, net(unit(m), unit(ch)))
			tail = ch
		}
		if c.FanOut && rng.Intn(10) < 3 {
			d := fmt.Sprintf("d%d", i)
			n.Units = append(n.Units, c.unit(rng, d, netlist.Chamber, netlist.Plain))
			n.Nets = append(n.Nets, net(unit(m), unit(d)))
			n.Nets = append(n.Nets, net(unit(d), out(fmt.Sprintf("f%d", i))))
		}
		tails = append(tails, tail)
	}

	// Drain the lanes: either a collector mixer joined by one switch net,
	// or an outlet per lane.
	if c.Collector && lanes >= 2 && rng.Intn(2) == 0 {
		n.Units = append(n.Units, c.unit(rng, "col", netlist.Mixer, opts[rng.Intn(len(opts))]))
		eps := make([]netlist.Endpoint, 0, lanes+2)
		for _, t := range tails {
			eps = append(eps, unit(t))
		}
		eps = append(eps, unit("col"), out("waste"))
		n.Nets = append(n.Nets, netlist.Net{Endpoints: eps})
		n.Nets = append(n.Nets, net(unit("col"), out("collect")))
	} else {
		for i, t := range tails {
			n.Nets = append(n.Nets, net(unit(t), out(fmt.Sprintf("p%d", i+1))))
		}
	}

	// Fan-in blend stage: two inlets and a mixer on one net.
	if c.Blend && rng.Intn(10) < 3 {
		n.Units = append(n.Units, c.unit(rng, "bl", netlist.Mixer, opts[rng.Intn(len(opts))]))
		n.Nets = append(n.Nets, netlist.Net{Endpoints: []netlist.Endpoint{
			in("buf1"), in("buf2"), unit("bl"),
		}})
		n.Nets = append(n.Nets, net(unit("bl"), out("blend")))
	}

	// Parallel-control groups: lane mixers sharing a configuration can
	// share control channels.
	if c.ParallelGroups && rng.Intn(10) < 4 {
		byOpt := map[netlist.MixerOpt][]string{}
		for i, opt := range laneOpt {
			byOpt[opt] = append(byOpt[opt], fmt.Sprintf("m%d", i+1))
		}
		for _, opt := range opts {
			if g := byOpt[opt]; len(g) >= 2 {
				n.Parallel = append(n.Parallel, g)
			}
		}
	}

	if err := n.Validate(); err != nil {
		panic(fmt.Sprintf("gen: seed %d produced an invalid netlist: %v", seed, err))
	}
	return n
}

// generateScale emits a chip128/chip256-class netlist: lanes uniform
// in:s<i> → m<i> → c<i> chains, one collector switch joining every
// chamber, and parallel groups of at most MaxGroupSize same-option lanes
// each (mirroring the synthetic ChIP cases, cases.ChIPScale). Only the
// per-lane mixer options are random; the structure — and therefore the
// layout-model size — is fixed by the configuration. Lanes whose option
// chunk would leave them alone stay independent (a parallel group needs
// at least two members).
func (c Config) generateScale(rng *rand.Rand, n *netlist.Netlist, lanes int, opts []netlist.MixerOpt) *netlist.Netlist {
	laneOpt := make([]netlist.MixerOpt, 0, lanes)
	for i := 1; i <= lanes; i++ {
		opt := opts[rng.Intn(len(opts))]
		laneOpt = append(laneOpt, opt)
		m := fmt.Sprintf("m%d", i)
		ch := fmt.Sprintf("c%d", i)
		n.Units = append(n.Units,
			netlist.Unit{Name: m, Type: netlist.Mixer, Opt: opt},
			netlist.Unit{Name: ch, Type: netlist.Chamber, Opt: netlist.Plain})
		n.Nets = append(n.Nets, net(in(fmt.Sprintf("s%d", i)), unit(m)))
		n.Nets = append(n.Nets, net(unit(m), unit(ch)))
	}

	// One collector mixer drains every chamber through a single switch.
	n.Units = append(n.Units, netlist.Unit{Name: "col", Type: netlist.Mixer, Opt: netlist.Plain})
	eps := make([]netlist.Endpoint, 0, lanes+2)
	for i := 1; i <= lanes; i++ {
		eps = append(eps, unit(fmt.Sprintf("c%d", i)))
	}
	eps = append(eps, unit("col"), out("waste"))
	n.Nets = append(n.Nets, netlist.Net{Endpoints: eps})
	n.Nets = append(n.Nets, net(unit("col"), out("collect")))

	// Chunk same-option lanes into parallel groups of at most MaxGroupSize
	// lanes, each group carrying its mixers and chambers.
	if c.ParallelGroups {
		byOpt := map[netlist.MixerOpt][]int{}
		for i, opt := range laneOpt {
			byOpt[opt] = append(byOpt[opt], i+1)
		}
		for _, opt := range opts {
			ls := byOpt[opt]
			for start := 0; start < len(ls); start += c.MaxGroupSize {
				end := start + c.MaxGroupSize
				if end > len(ls) {
					end = len(ls)
				}
				if end-start < 2 {
					break
				}
				g := make([]string, 0, 2*(end-start))
				for _, i := range ls[start:end] {
					g = append(g, fmt.Sprintf("m%d", i), fmt.Sprintf("c%d", i))
				}
				n.Parallel = append(n.Parallel, g)
			}
		}
	}

	if err := n.Validate(); err != nil {
		panic(fmt.Sprintf("gen: scale netlist (%d lanes, groups of %d) invalid: %v", lanes, c.MaxGroupSize, err))
	}
	return n
}

// unit builds a Unit, rolling an optional scale-up footprint override.
func (c Config) unit(rng *rand.Rand, name string, typ netlist.UnitType, opt netlist.MixerOpt) netlist.Unit {
	u := netlist.Unit{Name: name, Type: typ, Opt: opt}
	if c.Resize && rng.Intn(10) < 2 {
		w, h := baseFootprint(typ)
		// Grow by up to 50% in quarter steps; never shrink below the
		// library footprint.
		u.W = w * (1 + 0.25*float64(rng.Intn(3)))
		u.H = h * (1 + 0.25*float64(rng.Intn(3)))
	}
	return u
}

// baseFootprint mirrors module.Footprint's library defaults without
// importing the module package (gen sits below the geometry layers).
func baseFootprint(typ netlist.UnitType) (w, h float64) {
	if typ == netlist.Chamber {
		return 2000, 1200
	}
	return 3000, 3000
}

func in(name string) netlist.Endpoint  { return netlist.Endpoint{Terminal: name, Inlet: true} }
func out(name string) netlist.Endpoint { return netlist.Endpoint{Terminal: name} }
func unit(name string) netlist.Endpoint {
	return netlist.Endpoint{Unit: name}
}

func net(a, b netlist.Endpoint) netlist.Net { return netlist.Net{Endpoints: []netlist.Endpoint{a, b}} }
