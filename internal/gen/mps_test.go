package gen

import (
	"bytes"
	"testing"
	"time"

	"columbas/internal/milp"
	"columbas/internal/mps"
)

// tinyConfig yields one-lane netlists whose placement MILPs a
// standalone solver (no greedy seed, no lazy separation) finishes
// quickly — the full Default models are thousand-variable benchmarks.
func tinyConfig() Config {
	return Config{MinLanes: 1, MaxLanes: 1, MaxMuxes: 1}
}

// TestWriteMPS checks the generator→MPS path: the emitted file
// re-parses into a model with the same shape as the in-memory one, and
// write→parse→write is a byte fixpoint.
func TestWriteMPS(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		in, err := MILPModel(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var first bytes.Buffer
		if err := WriteMPS(&first, seed); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		in2, err := mps.ParseBytes(first.Bytes())
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v", seed, err)
		}
		a, b := in.Model, in2.Model
		if a.NumVars() != b.NumVars() || a.NumRows() != b.NumRows() || a.NumInt() != b.NumInt() {
			t.Fatalf("seed %d: shape (%d,%d,%d) vs (%d,%d,%d)", seed,
				a.NumVars(), a.NumRows(), a.NumInt(), b.NumVars(), b.NumRows(), b.NumInt())
		}
		if a.NumVars() == 0 || a.NumRows() == 0 {
			t.Fatalf("seed %d: degenerate model", seed)
		}
		nonzeroObj := false
		for v := 0; v < a.NumVars() && !nonzeroObj; v++ {
			nonzeroObj = a.ObjCoef(milp.VarID(v)) != 0
		}
		if !nonzeroObj {
			t.Fatalf("seed %d: empty objective row (weights not applied)", seed)
		}
		var second bytes.Buffer
		if err := mps.Write(&second, in2); err != nil {
			t.Fatalf("seed %d: re-write: %v", seed, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: write→parse→write not a fixpoint", seed)
		}
	}
}

// TestWriteMPSSolvable solves a re-parsed tiny-config instance end to
// end: the emitted MPS must stand alone (no seed, no lazy separation)
// and still reach an incumbent.
func TestWriteMPSSolvable(t *testing.T) {
	in, err := tinyConfig().MILPModel(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mps.Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	in2, err := mps.ParseBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	r, err := in2.Model.Solve(milp.Options{TimeLimit: 30 * time.Second, StallLimit: 200})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != milp.Optimal && r.Status != milp.Feasible {
		t.Fatalf("re-parsed model reached no incumbent: %v", r.Status)
	}
}
