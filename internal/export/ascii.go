package export

import (
	"fmt"
	"io"
	"strings"

	"columbas/internal/module"
	"columbas/internal/validate"
)

// WriteASCII renders the design as a character raster for terminal
// inspection — the quickest way to see what came out of the flow without
// leaving the shell. Legend:
//
//	M/C/S  mixer / chamber / switch module outline
//	-      flow channel      |  control channel
//	=      MUX-flow channel  o  valve
//	()     fluid port
//
// cols sets the raster width in characters; the aspect ratio follows the
// chip (terminal cells are ~2:1, which the row scale compensates).
func WriteASCII(w io.Writer, d *validate.Design, cols int) error {
	if cols < 20 {
		cols = 20
	}
	sx := d.Chip.W() / float64(cols)
	sy := sx * 2 // terminal cells are roughly twice as tall as wide
	rows := int(d.Chip.H()/sy) + 1

	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	// Map chip coordinates to the grid (y flipped).
	cx := func(x float64) int {
		c := int((x - d.Chip.XL) / sx)
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}
	cy := func(y float64) int {
		r := int((d.Chip.YT - y) / sy)
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		return r
	}
	set := func(r, c int, ch byte) { grid[r][c] = ch }
	hline := func(y, x0, x1 float64, ch byte) {
		r := cy(y)
		for c := cx(x0); c <= cx(x1); c++ {
			set(r, c, ch)
		}
	}
	vline := func(x, y0, y1 float64, ch byte) {
		c := cx(x)
		r0, r1 := cy(y1), cy(y0) // flipped
		for r := r0; r <= r1; r++ {
			set(r, c, ch)
		}
	}

	// Control channels first (so flow and modules draw over them).
	for _, ch := range d.Ctrl {
		y1 := 0.0
		if ch.Top {
			y1 = d.FuncRegion.YT
			if d.MuxTop != nil {
				y1 = d.MuxTop.ChannelY1
			}
			vline(ch.X, ch.YValve, y1, '|')
		} else {
			if d.MuxBottom != nil {
				y1 = d.MuxBottom.ChannelY1
			}
			vline(ch.X, y1, ch.YValve, '|')
		}
	}
	// MUX-flow lines.
	for _, mx := range muxList(d) {
		for _, ln := range mx.Lines {
			hline(ln.Y, ln.Seg.A.X, ln.Seg.B.X, '=')
		}
	}
	// Flow channels.
	for _, f := range d.Flow {
		s := f.Seg.Canon()
		hline(s.A.Y, s.A.X, s.B.X, '-')
	}
	// Module outlines with a kind letter in the corner.
	for _, m := range d.Modules {
		letter := byte('M')
		switch m.Kind {
		case module.KindChamber:
			letter = 'C'
		case module.KindSwitch:
			letter = 'S'
		}
		r0, r1 := cy(m.Box.YT), cy(m.Box.YB)
		c0, c1 := cx(m.Box.XL), cx(m.Box.XR)
		for c := c0; c <= c1; c++ {
			set(r0, c, '#')
			set(r1, c, '#')
		}
		for r := r0; r <= r1; r++ {
			set(r, c0, '#')
			set(r, c1, '#')
		}
		set(r0, c0, letter)
	}
	// Valves over everything.
	for _, m := range d.Modules {
		for _, v := range m.Valves() {
			set(cy(v.At.Y), cx(v.At.X), 'o')
		}
	}
	for _, mx := range muxList(d) {
		for _, v := range mx.Valves {
			set(cy(v.At.Y), cx(v.At.X), 'o')
		}
	}
	// Fluid ports.
	for _, in := range d.Inlets {
		r, c := cy(in.At.Y), cx(in.At.X)
		set(r, c, ')')
		if c > 0 {
			set(r, c-1, '(')
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %.1f x %.1f mm (1 char ≈ %.0f µm)\n",
		d.Name, d.Chip.W()/1000, d.Chip.H()/1000, sx)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("legend: M/C/S module  - flow  | control  = MUX-flow  o valve  () port\n")
	_, err := io.WriteString(w, b.String())
	return err
}
