// Package export renders completed designs for inspection and
// fabrication. Columba S outputs an AutoCAD script file that can be
// directly exported for mask fabrication (Section 3.3); this package
// writes that script, plus an SVG rendering (the reproduction's analogue
// of the paper's design figures) and a JSON dump for downstream tooling.
//
// Key types: WriteSCR emits the AutoCAD script, WriteSVG and WriteASCII
// the visual renderings, WriteDXF a minimal DXF, and WriteJSON the
// JSONDesign document for downstream tooling.
package export
