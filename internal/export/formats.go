package export

import (
	"fmt"
	"io"
	"strings"

	"columbas/internal/layout"
	"columbas/internal/validate"
)

// Format describes one registered result export format: its canonical
// name (the value accepted by the columbas -format flag and the
// columbasd ?format= parameter), any aliases, the MIME type the server
// negotiates on and stamps into Content-Type, and the writer itself.
type Format struct {
	// Name is the canonical format name, which doubles as the
	// conventional file extension.
	Name string
	// Aliases are accepted alternative names.
	Aliases []string
	// MIME is the media type (with parameters) of the rendered output.
	MIME string
	// Write renders the design. p is the generation-phase rectangle plan;
	// only the "plan" format consumes it, but every writer receives it so
	// the registry has one uniform signature.
	Write func(w io.Writer, d *validate.Design, p *layout.Plan) error
}

// formats is the registry, in negotiation priority order: when a client
// Accept header matches several entries at equal preference, the earlier
// one wins.
var formats = []Format{
	{
		Name: "svg", MIME: "image/svg+xml",
		Write: func(w io.Writer, d *validate.Design, _ *layout.Plan) error {
			return WriteSVG(w, d)
		},
	},
	{
		Name: "json", MIME: "application/json",
		Write: func(w io.Writer, d *validate.Design, _ *layout.Plan) error {
			return WriteJSON(w, d)
		},
	},
	{
		Name: "scr", MIME: "application/vnd.autocad-script",
		Write: func(w io.Writer, d *validate.Design, _ *layout.Plan) error {
			return WriteSCR(w, d)
		},
	},
	{
		Name: "dxf", MIME: "image/vnd.dxf",
		Write: func(w io.Writer, d *validate.Design, _ *layout.Plan) error {
			return WriteDXF(w, d)
		},
	},
	{
		Name: "txt", Aliases: []string{"ascii"}, MIME: "text/plain; charset=utf-8",
		Write: func(w io.Writer, d *validate.Design, _ *layout.Plan) error {
			return WriteASCII(w, d, 120)
		},
	},
	{
		Name: "md", Aliases: []string{"report"}, MIME: "text/markdown; charset=utf-8",
		Write: func(w io.Writer, d *validate.Design, _ *layout.Plan) error {
			return WriteReport(w, d)
		},
	},
	{
		Name: "plan", MIME: "image/svg+xml",
		Write: func(w io.Writer, _ *validate.Design, p *layout.Plan) error {
			if p == nil {
				return fmt.Errorf("export: plan format requires the generation-phase plan")
			}
			return WritePlanSVG(w, p)
		},
	},
}

// Formats returns the registered export formats in negotiation priority
// order. The returned slice is a copy; mutating it does not affect the
// registry.
func Formats() []Format {
	out := make([]Format, len(formats))
	copy(out, formats)
	return out
}

// Names returns the canonical format names in registry order.
func Names() []string {
	out := make([]string, len(formats))
	for i, f := range formats {
		out[i] = f.Name
	}
	return out
}

// Lookup resolves a format by canonical name or alias
// (case-insensitively). ok is false for unknown names.
func Lookup(name string) (Format, bool) {
	name = strings.ToLower(strings.TrimSpace(name))
	for _, f := range formats {
		if f.Name == name {
			return f, true
		}
		for _, a := range f.Aliases {
			if a == name {
				return f, true
			}
		}
	}
	return Format{}, false
}

// Negotiate resolves an HTTP Accept header value against the registry:
// the first registered format acceptable to the client wins, honouring
// media ranges ("image/*", "*/*") but not q-weights — clients that care
// about order should list preferred types first. An empty header accepts
// anything and yields the first registry entry; ok is false when nothing
// matches.
func Negotiate(accept string) (Format, bool) {
	accept = strings.TrimSpace(accept)
	if accept == "" {
		return formats[0], true
	}
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 { // drop q= and params
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == "" {
			continue
		}
		for _, f := range formats {
			if mimeMatch(mt, f.MIME) {
				return f, true
			}
		}
	}
	return Format{}, false
}

// mimeMatch reports whether the media range pattern (possibly "type/*"
// or "*/*") accepts the concrete media type (parameters ignored).
func mimeMatch(pattern, mime string) bool {
	if i := strings.IndexByte(mime, ';'); i >= 0 {
		mime = strings.TrimSpace(mime[:i])
	}
	if pattern == "*/*" || pattern == mime {
		return true
	}
	if major, ok := strings.CutSuffix(pattern, "/*"); ok {
		return strings.HasPrefix(mime, major+"/")
	}
	return false
}
