package export

import (
	"fmt"
	"io"
	"strings"

	"columbas/internal/geom"
	"columbas/internal/module"
	"columbas/internal/validate"
)

// WriteDXF writes the design as a minimal ASCII DXF (R12 subset) with the
// same layer structure as the SCR output. DXF is the interchange format
// most mask-layout tool chains accept alongside raw AutoCAD scripts, so
// both are provided for the paper's "directly exported for mask
// fabrication" step (Section 3.3). Geometry uses LINE entities for
// channels and closed LWPOLYLINE-equivalent 4-line loops for boxes;
// coordinates are micrometres.
func WriteDXF(w io.Writer, d *validate.Design) error {
	b := &strings.Builder{}
	wr := func(code int, val string) { fmt.Fprintf(b, "%d\n%s\n", code, val) }

	// Header.
	wr(0, "SECTION")
	wr(2, "HEADER")
	wr(9, "$ACADVER")
	wr(1, "AC1009")
	wr(0, "ENDSEC")

	// Layer table.
	wr(0, "SECTION")
	wr(2, "TABLES")
	wr(0, "TABLE")
	wr(2, "LAYER")
	wr(70, "5")
	for i, name := range []string{LayerOutline, LayerFlow, LayerControl, LayerValve, LayerPort} {
		wr(0, "LAYER")
		wr(2, name)
		wr(70, "0")
		wr(62, fmt.Sprintf("%d", i+1)) // colour index
		wr(6, "CONTINUOUS")
	}
	wr(0, "ENDTAB")
	wr(0, "ENDSEC")

	// Entities.
	wr(0, "SECTION")
	wr(2, "ENTITIES")
	line := func(layer string, a, c geom.Pt) {
		wr(0, "LINE")
		wr(8, layer)
		wr(10, fmt.Sprintf("%.1f", a.X))
		wr(20, fmt.Sprintf("%.1f", a.Y))
		wr(11, fmt.Sprintf("%.1f", c.X))
		wr(21, fmt.Sprintf("%.1f", c.Y))
	}
	box := func(layer string, r geom.Rect) {
		corners := []geom.Pt{
			{X: r.XL, Y: r.YB}, {X: r.XR, Y: r.YB},
			{X: r.XR, Y: r.YT}, {X: r.XL, Y: r.YT},
		}
		for i := range corners {
			line(layer, corners[i], corners[(i+1)%4])
		}
	}
	circle := func(layer string, p geom.Pt, radius float64) {
		wr(0, "CIRCLE")
		wr(8, layer)
		wr(10, fmt.Sprintf("%.1f", p.X))
		wr(20, fmt.Sprintf("%.1f", p.Y))
		wr(40, fmt.Sprintf("%.1f", radius))
	}

	box(LayerOutline, d.Chip)
	for _, m := range d.Modules {
		box(LayerOutline, m.Box)
	}
	for _, f := range d.Flow {
		line(LayerFlow, f.Seg.A, f.Seg.B)
	}
	for _, m := range d.Modules {
		for _, s := range m.Flow {
			line(LayerFlow, s.A, s.B)
		}
	}
	for _, mx := range muxList(d) {
		for _, ln := range mx.Lines {
			line(LayerFlow, ln.Seg.A, ln.Seg.B)
		}
		for _, cx := range mx.ChannelX {
			line(LayerControl,
				geom.Pt{X: cx, Y: mx.ChannelY0},
				geom.Pt{X: cx, Y: mx.ChannelY1})
		}
	}
	for _, c := range d.Ctrl {
		s := ctrlSeg(d, c)
		line(LayerControl, s.A, s.B)
	}
	vb := func(p geom.Pt) {
		h := module.ValveSize / 2
		box(LayerValve, geom.Rect{XL: p.X - h, XR: p.X + h, YB: p.Y - h, YT: p.Y + h})
	}
	for _, m := range d.Modules {
		for _, v := range m.Valves() {
			vb(v.At)
		}
	}
	for _, mx := range muxList(d) {
		for _, v := range mx.Valves {
			vb(v.At)
		}
	}
	for _, in := range d.Inlets {
		circle(LayerPort, in.At, module.DPrime/3)
	}
	wr(0, "ENDSEC")
	wr(0, "EOF")
	_, err := io.WriteString(w, b.String())
	return err
}
