package export

import (
	"fmt"
	"io"
	"strings"

	"columbas/internal/layout"
)

// WritePlanSVG renders the layout-generation phase's merged rectangles in
// the style of the paper's Figure 6(b): blue rectangles are merged flow
// channels, green rectangles merged control channels, grey boxes the
// placeable block/switch rectangles. This is the intermediate artifact
// between the two synthesis phases (Section 3.2), useful for inspecting
// what the MILP actually decided before restoration.
func WritePlanSVG(w io.Writer, p *layout.Plan) error {
	const scale = 0.1
	W := p.XMax * scale
	H := p.YMax * scale
	x := func(v float64) float64 { return v * scale }
	y := func(v float64) float64 { return (p.YMax - v) * scale }

	b := &strings.Builder{}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.1f %.1f">`+"\n", W, H, W, H)
	fmt.Fprintf(b, `<title>%s — layout generation plan</title>`+"\n", p.Name)
	fmt.Fprintf(b, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="white" stroke="black" stroke-width="0.6"/>`+"\n", W, H)

	// Paint channels first so the placeables' outlines stay visible.
	order := []layout.RectKind{layout.RCtrl, layout.RFlow, layout.RBlock, layout.RSwitch}
	style := map[layout.RectKind][2]string{
		layout.RCtrl:   {"#2e8b57", "#b9e4cd"},
		layout.RFlow:   {"#1e66c8", "#bcd5f5"},
		layout.RBlock:  {"#444444", "#eeeeee"},
		layout.RSwitch: {"#444444", "#dddddd"},
	}
	for _, kind := range order {
		for _, r := range p.Rects {
			if r.Kind != kind {
				continue
			}
			st := style[kind]
			fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" stroke="%s" fill="%s" fill-opacity="0.8" stroke-width="0.5"/>`+"\n",
				x(r.Box.XL), y(r.Box.YT), r.Box.W()*scale, r.Box.H()*scale, st[0], st[1])
			if r.Placeable() {
				fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="7" fill="#333">%s</text>`+"\n",
					x(r.Box.XL)+1, y(r.Box.YT)+8, r.Name)
			}
		}
	}
	fmt.Fprintln(b, "</svg>")
	_, err := io.WriteString(w, b.String())
	return err
}
