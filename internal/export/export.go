package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"columbas/internal/geom"
	"columbas/internal/module"
	"columbas/internal/mux"
	"columbas/internal/validate"
)

// layer names used in both the SCR and SVG outputs.
const (
	LayerFlow    = "FLOW"
	LayerControl = "CONTROL"
	LayerValve   = "VALVE"
	LayerOutline = "OUTLINE"
	LayerPort    = "PORT"
)

// WriteSCR writes an AutoCAD script that draws the design's two layers:
// flow geometry as polylines on FLOW, control channels on CONTROL, valves
// as rectangles on VALVE, module outlines on OUTLINE and fluid ports as
// circles on PORT. Coordinates are micrometres.
func WriteSCR(w io.Writer, d *validate.Design) error {
	b := &strings.Builder{}
	fmt.Fprintf(b, "; Columba S design %q — AutoCAD script\n", d.Name)
	fmt.Fprintf(b, "; chip %.0f x %.0f um, %d module(s), %d control channel(s)\n",
		d.Chip.W(), d.Chip.H(), len(d.Modules), len(d.Ctrl))
	layer := func(name string) { fmt.Fprintf(b, "-LAYER M %s\n\n", name) }

	layer(LayerOutline)
	rect(b, d.Chip)
	for _, m := range d.Modules {
		rect(b, m.Box)
	}

	layer(LayerFlow)
	for _, f := range d.Flow {
		line(b, f.Seg)
	}
	for _, m := range d.Modules {
		for _, s := range m.Flow {
			line(b, s)
		}
	}
	for _, mx := range muxList(d) {
		for _, ln := range mx.Lines {
			line(b, ln.Seg)
		}
	}

	layer(LayerControl)
	for _, c := range d.Ctrl {
		line(b, ctrlSeg(d, c))
	}

	layer(LayerValve)
	for _, m := range d.Modules {
		for _, v := range m.Valves() {
			valveRect(b, v.At)
		}
	}
	for _, mx := range muxList(d) {
		for _, v := range mx.Valves {
			valveRect(b, v.At)
		}
	}

	layer(LayerPort)
	for _, in := range d.Inlets {
		fmt.Fprintf(b, "CIRCLE %.1f,%.1f %.1f\n", in.At.X, in.At.Y, module.DPrime/3)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func rect(b *strings.Builder, r geom.Rect) {
	fmt.Fprintf(b, "RECTANG %.1f,%.1f %.1f,%.1f\n", r.XL, r.YB, r.XR, r.YT)
}

func line(b *strings.Builder, s geom.Seg) {
	fmt.Fprintf(b, "PLINE %.1f,%.1f %.1f,%.1f \n", s.A.X, s.A.Y, s.B.X, s.B.Y)
}

func valveRect(b *strings.Builder, p geom.Pt) {
	h := module.ValveSize / 2
	fmt.Fprintf(b, "RECTANG %.1f,%.1f %.1f,%.1f\n", p.X-h, p.Y-h, p.X+h, p.Y+h)
}

// ctrlSeg materialises a control channel as a vertical segment from its
// farthest valve to (and through) its multiplexer region.
func ctrlSeg(d *validate.Design, c validate.CtrlChannel) geom.Seg {
	y0 := c.YValve
	var y1 float64
	if c.Top {
		if d.MuxTop != nil {
			y1 = d.MuxTop.ChannelY1
		} else {
			y1 = d.FuncRegion.YT
		}
	} else {
		if d.MuxBottom != nil {
			y1 = d.MuxBottom.ChannelY1
		} else {
			y1 = 0
		}
	}
	return geom.Seg{A: geom.Pt{X: c.X, Y: y0}, B: geom.Pt{X: c.X, Y: y1}}
}

func muxList(d *validate.Design) []*mux.Mux {
	var out []*mux.Mux
	if d.MuxBottom != nil {
		out = append(out, d.MuxBottom)
	}
	if d.MuxTop != nil {
		out = append(out, d.MuxTop)
	}
	return out
}

// WriteSVG renders the design as an SVG in the style of the paper's
// figures: flow channels blue, control channels green, valves as filled
// rectangles, modules as grey outlines, fluid ports as circles.
func WriteSVG(w io.Writer, d *validate.Design) error {
	// SVG y grows downward; flip around the chip box.
	flip := func(y float64) float64 { return d.Chip.YT - y + 0 }
	scale := 0.1 // 10 µm per SVG unit keeps files small
	W := d.Chip.W() * scale
	H := d.Chip.H() * scale
	x := func(v float64) float64 { return (v - d.Chip.XL) * scale }
	y := func(v float64) float64 { return (flip(v) - 0) * scale }

	b := &strings.Builder{}
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.1f %.1f">`+"\n", W, H, W, H)
	fmt.Fprintf(b, `<title>%s</title>`+"\n", d.Name)
	fmt.Fprintf(b, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="white" stroke="black" stroke-width="0.5"/>`+"\n", W, H)

	seg := func(s geom.Seg, color string, sw float64) {
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
			x(s.A.X), y(s.A.Y), x(s.B.X), y(s.B.Y), color, sw)
	}
	box := func(r geom.Rect, stroke, fill string) {
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" stroke="%s" fill="%s" stroke-width="0.4"/>`+"\n",
			x(r.XL), y(r.YT), r.W()*scale, r.H()*scale, stroke, fill)
	}

	for _, m := range d.Modules {
		box(m.Box, "#999999", "none")
	}
	for _, c := range d.Ctrl {
		seg(ctrlSeg(d, c), "#2e8b57", module.ChannelW*scale)
	}
	for _, mx := range muxList(d) {
		for _, ln := range mx.Lines {
			seg(ln.Seg, "#1e66c8", module.ChannelW*scale)
		}
		// Control-channel extensions through the MUX region.
		for _, cx := range mx.ChannelX {
			seg(geom.Seg{
				A: geom.Pt{X: cx, Y: mx.ChannelY0},
				B: geom.Pt{X: cx, Y: mx.ChannelY1},
			}, "#2e8b57", module.ChannelW*scale)
		}
	}
	for _, f := range d.Flow {
		seg(f.Seg, "#1e66c8", module.ChannelW*scale)
	}
	for _, m := range d.Modules {
		for _, s := range m.Flow {
			seg(s, "#1e66c8", module.ChannelW*scale)
		}
	}
	valveColor := map[module.ValveKind]string{
		module.ValveRegular:    "#e07020",
		module.ValvePump:       "#8040c0",
		module.ValveSieve:      "#107040",
		module.ValveSeparation: "#c02060",
		module.ValveMux:        "#208080",
	}
	valve := func(p geom.Pt, k module.ValveKind) {
		h := module.ValveSize / 2 * scale
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x(p.X)-h, y(p.Y)-h, 2*h, 2*h, valveColor[k])
	}
	for _, m := range d.Modules {
		for _, v := range m.Valves() {
			valve(v.At, v.Kind)
		}
	}
	for _, mx := range muxList(d) {
		for _, v := range mx.Valves {
			valve(v.At, module.ValveMux)
		}
	}
	for _, in := range d.Inlets {
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#1e66c8" stroke-width="0.6"/>`+"\n",
			x(in.At.X), y(in.At.Y), module.DPrime/3*scale)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-size="8" fill="#333">%s</text>`+"\n",
			x(in.At.X)+3, y(in.At.Y)-3, in.Name)
	}
	fmt.Fprintln(b, "</svg>")
	_, err := io.WriteString(w, b.String())
	return err
}

// JSONDesign is the serialisable summary of a design.
type JSONDesign struct {
	Name      string        `json:"name"`
	Muxes     int           `json:"muxes"`
	WidthMM   float64       `json:"width_mm"`
	HeightMM  float64       `json:"height_mm"`
	FlowMM    float64       `json:"flow_channel_length_mm"`
	CtrlIn    int           `json:"control_inlets"`
	FluidIO   int           `json:"fluid_ports"`
	Modules   []JSONModule  `json:"modules"`
	Channels  []JSONChannel `json:"control_channels"`
	MuxBottom *JSONMux      `json:"mux_bottom,omitempty"`
	MuxTop    *JSONMux      `json:"mux_top,omitempty"`
}

// JSONModule summarises one placed module.
type JSONModule struct {
	Name string    `json:"name"`
	Kind string    `json:"kind"`
	Box  []float64 `json:"box_um"` // xl, yb, xr, yt
}

// JSONChannel summarises one control channel.
type JSONChannel struct {
	Name     string  `json:"name"`
	X        float64 `json:"x_um"`
	Top      bool    `json:"top"`
	MuxIndex int     `json:"mux_index"`
}

// JSONMux summarises one multiplexer.
type JSONMux struct {
	Channels int `json:"channels"`
	Bits     int `json:"bits"`
	Inlets   int `json:"inlets"`
	Valves   int `json:"valves"`
}

// WriteJSON writes the design summary as indented JSON.
func WriteJSON(w io.Writer, d *validate.Design) error {
	out := JSONDesign{
		Name:     d.Name,
		Muxes:    d.Muxes,
		WidthMM:  geom.MM(d.Chip.W()),
		HeightMM: geom.MM(d.Chip.H()),
		FlowMM:   geom.MM(d.FlowLength()),
		CtrlIn:   d.ControlInlets(),
		FluidIO:  len(d.Inlets),
	}
	for _, m := range d.Modules {
		out.Modules = append(out.Modules, JSONModule{
			Name: m.Name,
			Kind: m.Kind.String(),
			Box:  []float64{m.Box.XL, m.Box.YB, m.Box.XR, m.Box.YT},
		})
	}
	sort.Slice(out.Modules, func(i, j int) bool { return out.Modules[i].Name < out.Modules[j].Name })
	for _, c := range d.Ctrl {
		out.Channels = append(out.Channels, JSONChannel{
			Name: c.Name, X: c.X, Top: c.Top, MuxIndex: c.MuxIndex,
		})
	}
	jm := func(m *mux.Mux) *JSONMux {
		if m == nil {
			return nil
		}
		return &JSONMux{Channels: m.N, Bits: m.Bits, Inlets: m.Inlets(), Valves: len(m.Valves)}
	}
	out.MuxBottom = jm(d.MuxBottom)
	out.MuxTop = jm(d.MuxTop)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
