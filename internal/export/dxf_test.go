package export

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDXF(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteDXF(&buf, d); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Structural envelope.
	for _, want := range []string{
		"SECTION", "HEADER", "$ACADVER", "AC1009",
		"TABLES", "LAYER", "ENTITIES", "ENDSEC", "EOF",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("DXF missing %q", want)
		}
	}
	// All five layers declared.
	for _, l := range []string{LayerOutline, LayerFlow, LayerControl, LayerValve, LayerPort} {
		if !strings.Contains(s, l) {
			t.Errorf("layer %s missing", l)
		}
	}
	// Entity counts: one CIRCLE per port, LINEs for channels and boxes.
	if got := strings.Count(s, "\nCIRCLE\n"); got != len(d.Inlets) {
		t.Errorf("CIRCLE count = %d, want %d", got, len(d.Inlets))
	}
	lines := strings.Count(s, "\nLINE\n")
	minLines := len(d.Flow) + len(d.Ctrl) + 4*(1+len(d.Modules)) // channels + chip/module boxes
	if lines < minLines {
		t.Errorf("LINE count = %d, want >= %d", lines, minLines)
	}
	// Balanced sections.
	if strings.Count(s, "\nSECTION\n") != strings.Count(s, "\nENDSEC\n") {
		t.Error("unbalanced SECTION/ENDSEC")
	}
}

func TestWriteDXFDeterministic(t *testing.T) {
	d := design(t, chainSrc)
	var a, b bytes.Buffer
	if err := WriteDXF(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteDXF(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("DXF output must be deterministic")
	}
}

// Every group-code line is followed by a value line: even line count and
// numeric codes parse.
func TestDXFWellFormedPairs(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteDXF(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines)%2 != 0 {
		t.Fatalf("odd number of lines: %d", len(lines))
	}
	for i := 0; i < len(lines); i += 2 {
		code := strings.TrimSpace(lines[i])
		for _, ch := range code {
			if ch < '0' || ch > '9' {
				t.Fatalf("line %d: group code %q not numeric", i, code)
			}
		}
	}
}
