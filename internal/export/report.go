package export

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"columbas/internal/geom"
	"columbas/internal/module"
	"columbas/internal/mux"
	"columbas/internal/validate"
)

// WriteReport writes a markdown datasheet for a completed design: the
// Table 1 metrics, the module inventory, the control-channel map with
// multiplexer addresses, and the fluid ports. This is the human-readable
// companion to the fabrication outputs — what a wet-lab collaborator
// needs to operate the chip.
func WriteReport(w io.Writer, d *validate.Design) error {
	b := &strings.Builder{}
	fmt.Fprintf(b, "# Design datasheet: %s\n\n", d.Name)

	fmt.Fprintf(b, "## Summary\n\n")
	fmt.Fprintf(b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(b, "| chip dimensions | %.2f × %.2f mm |\n", geom.MM(d.Chip.W()), geom.MM(d.Chip.H()))
	fmt.Fprintf(b, "| functional region | %.2f × %.2f mm |\n",
		geom.MM(d.FuncRegion.W()), geom.MM(d.FuncRegion.H()))
	fmt.Fprintf(b, "| flow channel length | %.2f mm |\n", geom.MM(d.FlowLength()))
	fmt.Fprintf(b, "| modules | %d |\n", len(d.Modules))
	fmt.Fprintf(b, "| control channels | %d |\n", len(d.Ctrl))
	fmt.Fprintf(b, "| control inlets | %d |\n", d.ControlInlets())
	fmt.Fprintf(b, "| fluid ports | %d |\n", len(d.Inlets))
	fmt.Fprintf(b, "| multiplexers | %d |\n\n", d.Muxes)

	fmt.Fprintf(b, "## Modules\n\n")
	fmt.Fprintf(b, "| name | kind | position (µm) | size (µm) | control lines | valves |\n|---|---|---|---|---|---|\n")
	mods := append([]*module.Instance(nil), d.Modules...)
	sort.Slice(mods, func(i, j int) bool { return mods[i].Name < mods[j].Name })
	for _, m := range mods {
		kind := m.Kind.String()
		if m.Kind == module.KindMixer && m.Opt.String() != "plain" {
			kind += " (" + m.Opt.String() + ")"
		}
		fmt.Fprintf(b, "| %s | %s | (%.0f, %.0f) | %.0f × %.0f | %d | %d |\n",
			m.Name, kind, m.Box.XL, m.Box.YB, m.Box.W(), m.Box.H(),
			len(m.Lines), len(m.Valves()))
	}
	b.WriteString("\n")

	writeMux := func(label string, mx *mux.Mux, chans []validate.CtrlChannel) {
		if mx == nil {
			return
		}
		fmt.Fprintf(b, "## %s multiplexer\n\n", label)
		fmt.Fprintf(b, "%d channels, %d address bits, %d pressure inlets (2·⌈log₂ n⌉+1), %d MUX valves.\n\n",
			mx.N, mx.Bits, mx.Inlets(), len(mx.Valves))
		fmt.Fprintf(b, "| address | binary | pair config | channel | actuates |\n|---|---|---|---|---|\n")
		byIdx := map[int]validate.CtrlChannel{}
		for _, c := range chans {
			byIdx[c.MuxIndex] = c
		}
		width := mx.Bits
		if width == 0 {
			width = 1
		}
		for a := 0; a < mx.N; a++ {
			sel, err := mx.Select(a)
			if err != nil {
				continue
			}
			ch := byIdx[a]
			fmt.Fprintf(b, "| %d | %0*b | %s | %s | %s |\n",
				a, width, a, mx.PairString(sel), ch.Name, ch.Owner)
		}
		b.WriteString("\n")
	}
	var bottom, top []validate.CtrlChannel
	for _, c := range d.Ctrl {
		if c.Top {
			top = append(top, c)
		} else {
			bottom = append(bottom, c)
		}
	}
	writeMux("Bottom", d.MuxBottom, bottom)
	writeMux("Top", d.MuxTop, top)

	fmt.Fprintf(b, "## Fluid ports\n\n")
	fmt.Fprintf(b, "| name | direction | boundary | position (µm) |\n|---|---|---|---|\n")
	ports := append([]validate.Inlet(nil), d.Inlets...)
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].Name != ports[j].Name {
			return ports[i].Name < ports[j].Name
		}
		return ports[i].At.Y < ports[j].At.Y
	})
	for _, in := range ports {
		dir := "outlet"
		if in.Inlet {
			dir = "inlet"
		}
		side := "left"
		if in.At.X > d.FuncRegion.XR/2 {
			side = "right"
		}
		fmt.Fprintf(b, "| %s | %s | %s | (%.0f, %.0f) |\n", in.Name, dir, side, in.At.X, in.At.Y)
	}
	b.WriteString("\n")

	_, err := io.WriteString(w, b.String())
	return err
}
