package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"columbas/internal/layout"
	"columbas/internal/netlist"
	"columbas/internal/planar"
	"columbas/internal/validate"
)

func design(t *testing.T, src string) *validate.Design {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatal(err)
	}
	o := layout.DefaultOptions()
	o.TimeLimit = 2 * time.Second
	o.StallLimit = 30
	o.Gap = 0.1
	p, err := layout.Generate(pr, o)
	if err != nil {
		t.Fatal(err)
	}
	d, err := validate.Validate(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const chainSrc = `
design chain
unit m1 mixer
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`

func TestWriteSCR(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteSCR(&buf, d); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"-LAYER M FLOW", "-LAYER M CONTROL", "-LAYER M VALVE",
		"-LAYER M OUTLINE", "-LAYER M PORT",
		"RECTANG", "PLINE", "CIRCLE",
		`design "chain"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SCR missing %q", want)
		}
	}
	// One PLINE per flow channel at minimum.
	if got := strings.Count(s, "PLINE"); got < len(d.Flow)+len(d.Ctrl) {
		t.Errorf("PLINE count %d too small", got)
	}
	// One CIRCLE per fluid port.
	if got := strings.Count(s, "CIRCLE"); got != len(d.Inlets) {
		t.Errorf("CIRCLE count %d, want %d", got, len(d.Inlets))
	}
}

func TestWriteSCRDeterministic(t *testing.T) {
	d := design(t, chainSrc)
	var a, b bytes.Buffer
	if err := WriteSCR(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteSCR(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SCR output must be deterministic")
	}
}

func TestWriteSVG(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, d); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatal("not a well-formed SVG envelope")
	}
	for _, want := range []string{
		"<title>chain</title>",
		"#1e66c8", // flow blue
		"#2e8b57", // control green
		"<circle", "<rect", "<line",
		">sample<", ">waste<",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Balanced tags (self-closing shapes aside): count < and > sanity.
	if strings.Count(s, "<line") < len(d.Flow) {
		t.Error("too few line elements")
	}
}

func TestWriteJSON(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	var out JSONDesign
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Name != "chain" || out.Muxes != 1 {
		t.Fatalf("header = %+v", out)
	}
	if out.WidthMM <= 0 || out.HeightMM <= 0 {
		t.Fatal("dimensions must be positive")
	}
	if len(out.Modules) != 2 {
		t.Fatalf("modules = %d", len(out.Modules))
	}
	// Modules sorted by name.
	if out.Modules[0].Name != "c1" || out.Modules[1].Name != "m1" {
		t.Fatalf("modules unsorted: %+v", out.Modules)
	}
	if out.MuxBottom == nil || out.MuxBottom.Channels != 7 {
		t.Fatalf("mux summary = %+v", out.MuxBottom)
	}
	if out.MuxTop != nil {
		t.Fatal("no top MUX expected")
	}
	if out.CtrlIn != 7 {
		t.Fatalf("control inlets = %d", out.CtrlIn)
	}
	if len(out.Channels) != 7 {
		t.Fatalf("channels = %d", len(out.Channels))
	}
}

func TestSVGContainsMuxValves(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteSVG(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#208080") {
		t.Error("MUX valves missing from SVG")
	}
}

func TestWritePlanSVG(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WritePlanSVG(&buf, d.Plan); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") {
		t.Fatal("not an SVG")
	}
	for _, want := range []string{
		"layout generation plan",
		"#2e8b57",      // merged control rects (green, Figure 6(b))
		"#1e66c8",      // merged flow rects (blue)
		">m1<", ">c1<", // placeable labels
	} {
		if !strings.Contains(s, want) {
			t.Errorf("plan SVG missing %q", want)
		}
	}
	// One rect element per plan rect plus the canvas.
	if got := strings.Count(s, "<rect"); got != len(d.Plan.Rects)+1 {
		t.Errorf("rect count = %d, want %d", got, len(d.Plan.Rects)+1)
	}
}

func TestWriteASCII(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteASCII(&buf, d, 100); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"M", "C", "#", "-", "|", "=", "o", "legend:"} {
		if !strings.Contains(s, want) {
			t.Errorf("ASCII raster missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 10 {
		t.Fatalf("raster too small: %d lines", len(lines))
	}
	// Raster rows all share the requested width.
	for i, l := range lines[1 : len(lines)-1] {
		if len(l) != 100 {
			t.Fatalf("row %d width = %d, want 100", i, len(l))
		}
	}
}

func TestWriteASCIIMinWidth(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteASCII(&buf, d, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend") {
		t.Fatal("tiny raster should still render")
	}
}

func TestWriteReport(t *testing.T) {
	d := design(t, chainSrc)
	var buf bytes.Buffer
	if err := WriteReport(&buf, d); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"# Design datasheet: chain",
		"## Summary",
		"## Modules",
		"## Bottom multiplexer",
		"## Fluid ports",
		"| m1 | mixer |",
		"| c1 | chamber |",
		"| sample | inlet |",
		"| waste | outlet |",
		"control inlets | 7",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// One address row per control channel.
	if got := strings.Count(s, "| m1."); got < 5 {
		t.Errorf("m1 channel rows = %d", got)
	}
	if strings.Contains(s, "## Top multiplexer") {
		t.Error("1-MUX design must not report a top multiplexer")
	}
}
