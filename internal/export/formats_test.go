package export

import (
	"bytes"
	"strings"
	"testing"
)

func TestFormatsRegistryShape(t *testing.T) {
	fs := Formats()
	if len(fs) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if f.Name == "" || f.MIME == "" || f.Write == nil {
			t.Fatalf("incomplete format entry %+v", f)
		}
		for _, name := range append([]string{f.Name}, f.Aliases...) {
			if seen[name] {
				t.Fatalf("duplicate format name %q", name)
			}
			if name != strings.ToLower(name) {
				t.Fatalf("format name %q is not lowercase", name)
			}
			seen[name] = true
		}
	}
	for _, want := range []string{"svg", "json", "scr", "dxf", "txt", "md", "plan"} {
		if !seen[want] {
			t.Errorf("registry is missing %q", want)
		}
	}
}

func TestLookupNamesAndAliases(t *testing.T) {
	for name, canonical := range map[string]string{
		"svg": "svg", "SVG": "svg", " json ": "json",
		"ascii": "txt", "report": "md", "md": "md",
	} {
		f, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if f.Name != canonical {
			t.Fatalf("Lookup(%q) = %q, want %q", name, f.Name, canonical)
		}
	}
	if _, ok := Lookup("pdf"); ok {
		t.Fatal("Lookup(pdf) should fail")
	}
}

func TestNegotiate(t *testing.T) {
	for accept, want := range map[string]string{
		"":                               "svg", // wildcard default: first entry
		"*/*":                            "svg",
		"image/svg+xml":                  "svg",
		"application/json":               "json",
		"application/json; q=0.9":        "json",
		"text/html, application/json":    "json",
		"image/*":                        "svg",
		"text/*":                         "txt",
		"image/vnd.dxf, image/svg+xml":   "dxf",
		"text/markdown; charset=utf-8":   "md",
		"application/vnd.autocad-script": "scr",
	} {
		f, ok := Negotiate(accept)
		if !ok {
			t.Fatalf("Negotiate(%q) failed", accept)
		}
		if f.Name != want {
			t.Fatalf("Negotiate(%q) = %q, want %q", accept, f.Name, want)
		}
	}
	if _, ok := Negotiate("text/html"); ok {
		t.Fatal("Negotiate(text/html) should fail")
	}
}

// TestFormatWritersRender runs every registry writer against a real
// design and checks each produces non-empty output through the uniform
// signature (the plan format exercising its plan argument).
func TestFormatWritersRender(t *testing.T) {
	d := design(t, chainSrc)
	for _, f := range Formats() {
		var buf bytes.Buffer
		if err := f.Write(&buf, d, d.Plan); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", f.Name)
		}
	}
	// The plan writer must fail cleanly without a plan rather than panic.
	pf, _ := Lookup("plan")
	if err := pf.Write(&bytes.Buffer{}, d, nil); err == nil {
		t.Fatal("plan format with nil plan should error")
	}
}
