package milp

import (
	"testing"
	"time"
)

// hardSubsetSum builds an even-weight subset-sum model with an odd
// target: LP-feasible everywhere but integer-infeasible, so branch and
// bound must enumerate an exponential tree (minutes at n=30). The
// cancellation tests need a solve that reliably outlives its interrupt.
func hardSubsetSum(n int) *Model {
	m := NewModel()
	e := NewExpr()
	total := 0
	for i := 0; i < n; i++ {
		w := 2 * ((i*7919)%47 + 3)
		e.Add(m.Binary("x"), float64(w))
		total += w
	}
	m.AddEQ(e, float64(total/2|1))
	return m
}

// TestInterruptStopsSearch closes the interrupt channel mid-solve and
// checks the search halts promptly, returns whatever it had, and flags
// the interruption in SearchStats.
func TestInterruptStopsSearch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := hardSubsetSum(30)
		interrupt := make(chan struct{})
		time.AfterFunc(50*time.Millisecond, func() { close(interrupt) })
		start := time.Now()
		r, err := m.Solve(Options{Workers: workers, Interrupt: interrupt})
		if err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("workers=%d: interrupt ignored, solve took %v", workers, elapsed)
		}
		if !r.Stats.Interrupted {
			t.Fatalf("workers=%d: Stats.Interrupted not set (status %v)", workers, r.Status)
		}
		if r.Status == Infeasible || r.Status == Optimal {
			t.Fatalf("workers=%d: search ran to completion (%v) despite interrupt", workers, r.Status)
		}
	}
}

// TestInterruptAlreadyClosed starts the solve with a dead channel: the
// search must do essentially no tree work.
func TestInterruptAlreadyClosed(t *testing.T) {
	m := hardSubsetSum(30)
	interrupt := make(chan struct{})
	close(interrupt)
	r, err := m.Solve(Options{Workers: 4, Interrupt: interrupt})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.Interrupted {
		t.Fatal("Stats.Interrupted not set")
	}
	// The watcher races the first few expansions; "a handful" is the
	// contract, not zero.
	if r.Stats.NodesExplored > 64 {
		t.Fatalf("explored %d nodes after a pre-closed interrupt", r.Stats.NodesExplored)
	}
}

// TestInterruptKeepsIncumbent seeds a feasible start and interrupts: the
// seed must survive as the returned solution.
func TestInterruptKeepsIncumbent(t *testing.T) {
	m := hardKnapsack(32)
	seed := make([]float64, m.NumVars()) // all-zero is feasible (weight 0)
	interrupt := make(chan struct{})
	close(interrupt)
	r, err := m.Solve(Options{Interrupt: interrupt, Start: seed})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status %v, want the seeded incumbent to survive", r.Status)
	}
	if r.X == nil {
		t.Fatal("no solution returned despite seeded incumbent")
	}
}

// TestAbsoluteDeadline checks Options.Deadline alone bounds the search,
// and that the earlier of Deadline and TimeLimit wins.
func TestAbsoluteDeadline(t *testing.T) {
	m := hardSubsetSum(30)
	start := time.Now()
	r, err := m.Solve(Options{
		Workers:   2,
		Deadline:  time.Now().Add(80 * time.Millisecond),
		TimeLimit: time.Hour, // the absolute deadline must win
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("absolute deadline ignored: solve took %v", elapsed)
	}
	if r.Stats.Interrupted {
		t.Fatal("deadline expiry must not be reported as an interrupt")
	}
}
