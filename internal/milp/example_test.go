package milp_test

import (
	"fmt"

	"columbas/internal/milp"
)

// A small binary knapsack: the branch-and-bound driver on top of the
// bounded simplex.
func Example() {
	m := milp.NewModel()
	a := m.Binary("a") // value 9, weight 6
	b := m.Binary("b") // value 7, weight 5
	c := m.Binary("c") // value 5, weight 4
	m.AddLE(milp.NewExpr().Add(a, 6).Add(b, 5).Add(c, 4), 10)
	m.Minimize(milp.NewExpr().Add(a, -9).Add(b, -7).Add(c, -5))

	res, err := m.Solve(milp.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("status=%v value=%v\n", res.Status, -res.Obj)
	fmt.Printf("take a=%v b=%v c=%v\n", res.Value(a) > 0.5, res.Value(b) > 0.5, res.Value(c) > 0.5)
	// Output:
	// status=optimal value=14
	// take a=true b=false c=true
}
