// Package milp provides a mixed-integer linear-programming solver built on
// the bounded-variable simplex in internal/lp. Together they replace the
// commercial MILP solver (Gurobi) the Columba S paper uses for its
// physical-synthesis models.
//
// The solver is a branch-and-bound search over LP relaxations with:
//
//   - best-bound node selection with depth tie-breaking (so the search
//     dives for early incumbents but still proves bounds),
//   - most-fractional variable branching,
//   - disjunction-aware branching: the paper's relative-position
//     constraints (3)–(5) introduce groups of four binaries of which
//     exactly one must be 0. Branching on the whole group (k children,
//     each fixing a different member to 0) resolves a placement decision
//     in one level instead of four,
//   - warm incumbents: callers may seed a feasible solution (Columba S
//     seeds a greedy placement) which prunes most of the tree,
//   - a node/time budget that degrades gracefully to the best incumbent.
//
// Key types: Model assembles variables, constraints and binary groups;
// Options selects budgets and Workers; Solve returns a Result carrying
// the incumbent, the bound, and the SearchStats effort counters
// (documented in docs/metrics.md).
package milp
