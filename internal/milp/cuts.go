package milp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"columbas/internal/lp"
)

// Root cutting-plane loop: before any worker starts, the search
// strengthens the root relaxation with two cut families separated
// against the fractional root LP point — Gomory mixed-integer cuts read
// off the kernel's final tableau (lp.GomoryCuts) and knapsack cover
// cuts derived combinatorially from the rows (coverCuts below). Both
// families are valid for every integer-feasible point within the base
// bounds, so adding them never changes the optimum the tree converges
// to (FuzzCutValidity pins this against brute force); they only raise
// the root bound and shrink the tree.

const (
	// cutMaxRounds bounds the separate→add→re-solve loop.
	cutMaxRounds = 10
	// cutMaxPerRound caps how many cuts of each family one round adds.
	cutMaxPerRound = 24
	// cutMinViolation is the normalized violation a cut must achieve at
	// the current fractional point to be worth adding.
	cutMinViolation = 1e-4
)

// coverCuts separates knapsack cover cuts from prob's rows at the
// fractional point x. Each LE row (GE rows negated; EQ rows both ways)
// is relaxed to a pure binary knapsack Σ ã·z ≤ b̃ by complementing
// negative-coefficient binaries and absorbing the extreme activity of
// every non-binary term into the right-hand side; a greedy minimal-ish
// cover C (Σ_{C} ã > b̃) then yields Σ_{C} z ≤ |C|−1, mapped back to the
// original variables. Valid because any integer point with all of C at
// its complemented value 1 would violate the relaxed knapsack.
func coverCuts(prob *lp.Problem, isInt []bool, x []float64, max int, minViol float64) []lp.CutRow {
	var out []lp.CutRow
	nr := prob.NumRows()
	for r := 0; r < nr && len(out) < max; r++ {
		terms, sense, rhs := prob.Row(r)
		if sense != lp.GE {
			if c := coverFromLE(prob, isInt, x, terms, rhs, 1, minViol); c != nil {
				out = append(out, *c)
			}
		}
		if sense != lp.LE && len(out) < max {
			if c := coverFromLE(prob, isInt, x, terms, rhs, -1, minViol); c != nil {
				out = append(out, *c)
			}
		}
	}
	return out
}

type coverItem struct {
	v      int
	weight float64
	zstar  float64 // complemented LP value: fraction of the item "used"
	compl  bool
}

// coverFromLE derives one cover cut from the row sign·(Σ terms·x) ≤
// sign·rhs. Returns nil when the row admits no violated cover.
func coverFromLE(prob *lp.Problem, isInt []bool, x []float64, terms []lp.Term, rhs, sign, minViol float64) *lp.CutRow {
	b := sign * rhs
	items := make([]coverItem, 0, len(terms))
	wsum := 0.0
	for _, t := range terms {
		a := sign * t.Coef
		lo, hi := prob.Bounds(t.Var)
		if isInt[t.Var] && lo == 0 && hi == 1 {
			z := math.Min(1, math.Max(0, x[t.Var]))
			if a > 0 {
				items = append(items, coverItem{v: t.Var, weight: a, zstar: z})
			} else {
				// Complement: a·x = a − a·(1−x); move the constant to b.
				b -= a
				items = append(items, coverItem{v: t.Var, weight: -a, zstar: 1 - z, compl: true})
			}
			wsum += math.Abs(a)
			continue
		}
		// Non-binary term: absorb its minimum contribution so dropping it
		// relaxes the knapsack (any feasible point still satisfies it).
		mc := minContrib(a, lo, hi)
		if math.IsInf(mc, -1) {
			return nil
		}
		b -= mc
	}
	if len(items) < 2 || wsum <= b+1e-9 || b < -1e-9 {
		return nil // no cover exists (or row is activity-infeasible: not ours to report)
	}
	// Greedy cover: cheapest violation first — items the LP point already
	// uses heavily (small 1−z*) enter the cover first per unit of weight.
	sort.Slice(items, func(i, j int) bool {
		ri := (1 - items[i].zstar) / items[i].weight
		rj := (1 - items[j].zstar) / items[j].weight
		if ri != rj {
			return ri < rj
		}
		return items[i].v < items[j].v
	})
	wcov := 0.0
	ncov := 0
	for ncov < len(items) {
		wcov += items[ncov].weight
		ncov++
		if wcov > b+1e-9 {
			break
		}
	}
	if wcov <= b+1e-9 {
		return nil
	}
	cover := items[:ncov]
	// Violation of Σ z ≤ |C|−1 at the LP point, Euclidean-normalized
	// (every coefficient is ±1, so the norm is √|C|).
	lhs := 0.0
	for _, it := range cover {
		lhs += it.zstar
	}
	viol := (lhs - float64(ncov-1)) / math.Sqrt(float64(ncov))
	if viol < minViol {
		return nil
	}
	// Map back: complemented members contribute (1−x), shifting the rhs.
	cutTerms := make([]lp.Term, 0, ncov)
	cutRHS := float64(ncov - 1)
	for _, it := range cover {
		if it.compl {
			cutTerms = append(cutTerms, lp.Term{Var: it.v, Coef: -1})
			cutRHS--
		} else {
			cutTerms = append(cutTerms, lp.Term{Var: it.v, Coef: 1})
		}
	}
	return &lp.CutRow{Terms: cutTerms, RHS: cutRHS, Violation: viol}
}

// cutKey is the cut pool's dedup key: terms sorted by variable, rounded
// to printable precision. Two separation rounds often rediscover the
// same inequality; adding it twice would bloat every later LP.
func cutKey(c lp.CutRow) string {
	ts := append([]lp.Term(nil), c.Terms...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Var < ts[j].Var })
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "%d:%.9g;", t.Var, t.Coef)
	}
	fmt.Fprintf(&b, "|%.9g", c.RHS)
	return b.String()
}

// rootCutLoop strengthens the search's base problem with root cuts:
// solve the relaxation on the full tableau, separate Gomory + cover
// cuts at the fractional optimum, add the violated ones, repeat. The
// loop stops when the point goes integral, a round separates nothing
// new, or the round budget is spent. Runs single-threaded before any
// worker exists; its LP work lands on baseProb's counters (folded into
// worker slot 0 by prepareRoot) and each round counts as one CutRound.
// The final basis is kept as the root node's warm start when no row was
// added after it.
func (s *search) rootCutLoop() {
	prob := s.baseProb
	pool := make(map[string]bool)
	var lastBasis *lp.Basis
	rowsAtBasis := -1
	for round := 0; round < cutMaxRounds; round++ {
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			break
		}
		if s.pollInterrupt() {
			// Canceled during root preparation: stop strengthening. The
			// loop runs before any worker exists, so the flag write cannot
			// race the watcher (it starts after prepareRoot).
			s.interrupted = true
			break
		}
		sol, err := prob.SolveFrom(nil)
		s.cutRounds++
		if err != nil || sol.Status != lp.Optimal {
			if err == nil && sol.Status == lp.Infeasible {
				// Cuts never exclude an integer point, so an infeasible root
				// relaxation proves integer infeasibility: drain the tree.
				s.frontier = s.frontier[:0]
				return
			}
			// The solve failed for another reason — usually numerical
			// breakdown on tableau-derived cut coefficients. The rows added
			// since the last validated solve poisoned the problem; roll them
			// back so the tree searches a base problem some solve has
			// actually handled.
			s.rollbackCuts(rowsAtBasis)
			break
		}
		lastBasis, rowsAtBasis = sol.Basis(), prob.NumRows()
		if bv, bg := s.m.pickBranch(sol.X); bv < 0 && bg < 0 {
			break // relaxation already integral: nothing to cut
		}
		cuts := prob.GomoryCuts(s.m.isInt, cutMaxPerRound, cutMinViolation)
		cuts = append(cuts, coverCuts(prob, s.m.isInt, sol.X, cutMaxPerRound, cutMinViolation)...)
		added := 0
		for _, c := range cuts {
			k := cutKey(c)
			if pool[k] {
				continue
			}
			pool[k] = true
			prob.AddConstraint(c.Terms, lp.LE, c.RHS)
			added++
		}
		if added == 0 {
			break
		}
		s.cutsAdded += int64(added)
	}
	if rowsAtBasis >= 0 && prob.NumRows() > rowsAtBasis {
		// The loop ended right after adding cuts (round budget or deadline),
		// so the final row set was never solved. Validate it now: the tree
		// must never start from a base problem no solve has handled.
		sol, err := prob.SolveFrom(nil)
		s.cutRounds++
		switch {
		case err == nil && sol.Status == lp.Optimal:
			lastBasis, rowsAtBasis = sol.Basis(), prob.NumRows()
		case err == nil && sol.Status == lp.Infeasible:
			s.frontier = s.frontier[:0]
			return
		default:
			s.rollbackCuts(rowsAtBasis)
		}
	}
	if lastBasis != nil && rowsAtBasis == prob.NumRows() {
		s.rootBasis = lastBasis
	}
}

// rollbackCuts removes every row at or past keep from the base problem —
// the cut rows added since the last validated solve — and restores the
// CutsAdded counter to the rows that actually remain.
func (s *search) rollbackCuts(keep int) {
	if keep < 0 || s.baseProb.NumRows() <= keep {
		return
	}
	rolled := s.baseProb.DeleteRows(func(i int) bool { return i >= keep })
	s.cutsAdded -= int64(rolled)
}
