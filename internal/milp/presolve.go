package milp

import (
	"math"

	"columbas/internal/lp"
)

// Presolve: single-row activity analysis applied at two levels of the
// search. At the root it runs to a fixpoint on the search's row-owning
// base problem — implied-bound tightening (rounded for integer
// variables), redundant-row removal, and coefficient strengthening on
// binaries — all provably optimum-preserving reductions (every
// integer-feasible point of the original model survives; the fuzz
// target FuzzCutValidity pins this against brute-force optima). At each
// node it re-runs the bound-tightening part alone against the node's
// local bounds, either shrinking the LP's feasible box or proving the
// node infeasible before any simplex work is spent (NodesPresolved).

const (
	// presolveRootPasses bounds the root fixpoint loop.
	presolveRootPasses = 8
	// presolveNodePasses bounds the per-node propagation (the root has
	// already reached a fixpoint; nodes only propagate their own branch
	// bound changes).
	presolveNodePasses = 2
)

// minContrib / maxContrib are the extreme contributions of one term
// a·x over x ∈ [lo, hi]. a is never zero (mergeTerms drops zeros).
func minContrib(a, lo, hi float64) float64 {
	if a >= 0 {
		return a * lo
	}
	return a * hi
}

func maxContrib(a, lo, hi float64) float64 {
	if a >= 0 {
		return a * hi
	}
	return a * lo
}

// presolveBounds tightens the bound vectors lo/hi in place by activity
// analysis of prob's rows (which are read, never modified). For every
// row, the minimum/maximum activity of the remaining terms bounds how
// far each variable can move without violating the row; implied bounds
// of integer variables are rounded inward. Returns the number of bounds
// tightened and whether the bounds prove the problem infeasible.
//
// The analysis is conservative in both directions: activity sums that
// go stale mid-pass only ever under-tighten, and the infeasibility
// threshold is scaled loose, so a feasible problem is never declared
// infeasible and no feasible point is ever excluded (only fractional
// parts of integer domains are cut).
// Only the first nr rows participate: node-level calls exclude the root
// cut rows appended after presolve, whose tableau-derived coefficients
// are valid only to LP tolerance — propagating integer-rounded bounds
// through them can cut off the true optimum (observed: both children of
// a root killed as "infeasible" on a model whose optimum was intact).
func presolveBounds(prob *lp.Problem, isInt []bool, lo, hi []float64, passes, nr int) (tightened int64, infeas bool) {
	for pass := 0; pass < passes; pass++ {
		changed := false
		for r := 0; r < nr; r++ {
			terms, sense, rhs := prob.Row(r)
			minSum, maxSum := 0.0, 0.0
			minInf, maxInf := 0, 0
			for _, t := range terms {
				if mc := minContrib(t.Coef, lo[t.Var], hi[t.Var]); math.IsInf(mc, -1) {
					minInf++
				} else {
					minSum += mc
				}
				if xc := maxContrib(t.Coef, lo[t.Var], hi[t.Var]); math.IsInf(xc, 1) {
					maxInf++
				} else {
					maxSum += xc
				}
			}
			ftol := 1e-6 * math.Max(1, math.Abs(rhs))
			if sense != lp.GE && minInf == 0 && minSum > rhs+ftol {
				return tightened, true // LE/EQ row cannot reach its rhs
			}
			if sense != lp.LE && maxInf == 0 && maxSum < rhs-ftol {
				return tightened, true // GE/EQ row cannot reach its rhs
			}
			if sense != lp.GE { // LE or EQ: a_v·x_v ≤ rhs − minact(rest)
				for _, t := range terms {
					v := t.Var
					mc := minContrib(t.Coef, lo[v], hi[v])
					restMin := math.Inf(-1)
					switch {
					case minInf == 0:
						restMin = minSum - mc
					case minInf == 1 && math.IsInf(mc, -1):
						restMin = minSum
					}
					if math.IsInf(restMin, -1) {
						continue
					}
					nb := (rhs - restMin) / t.Coef
					if t.Coef > 0 {
						if isInt[v] {
							nb = math.Floor(nb + intTol)
						} else {
							nb += 1e-9
						}
						if nb < hi[v]-1e-9 {
							hi[v] = nb
							tightened++
							changed = true
						}
					} else {
						if isInt[v] {
							nb = math.Ceil(nb - intTol)
						} else {
							nb -= 1e-9
						}
						if nb > lo[v]+1e-9 {
							lo[v] = nb
							tightened++
							changed = true
						}
					}
					if lo[v] > hi[v]+1e-7 {
						return tightened, true
					}
				}
			}
			if sense != lp.LE { // GE or EQ: a_v·x_v ≥ rhs − maxact(rest)
				for _, t := range terms {
					v := t.Var
					xc := maxContrib(t.Coef, lo[v], hi[v])
					restMax := math.Inf(1)
					switch {
					case maxInf == 0:
						restMax = maxSum - xc
					case maxInf == 1 && math.IsInf(xc, 1):
						restMax = maxSum
					}
					if math.IsInf(restMax, 1) {
						continue
					}
					nb := (rhs - restMax) / t.Coef
					if t.Coef > 0 {
						if isInt[v] {
							nb = math.Ceil(nb - intTol)
						} else {
							nb -= 1e-9
						}
						if nb > lo[v]+1e-9 {
							lo[v] = nb
							tightened++
							changed = true
						}
					} else {
						if isInt[v] {
							nb = math.Floor(nb + intTol)
						} else {
							nb += 1e-9
						}
						if nb < hi[v]-1e-9 {
							hi[v] = nb
							tightened++
							changed = true
						}
					}
					if lo[v] > hi[v]+1e-7 {
						return tightened, true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return tightened, false
}

// rowRedundant reports whether row r of prob can never be violated
// within the bounds lo/hi — its worst-case activity already satisfies
// the sense — so it can be dropped from the root problem.
func rowRedundant(prob *lp.Problem, r int, lo, hi []float64) bool {
	terms, sense, rhs := prob.Row(r)
	switch sense {
	case lp.LE:
		sum := 0.0
		for _, t := range terms {
			sum += maxContrib(t.Coef, lo[t.Var], hi[t.Var])
		}
		return sum <= rhs+1e-9 && !math.IsNaN(sum)
	case lp.GE:
		sum := 0.0
		for _, t := range terms {
			sum += minContrib(t.Coef, lo[t.Var], hi[t.Var])
		}
		return sum >= rhs-1e-9 && !math.IsNaN(sum)
	case lp.EQ:
		lo1, hi1 := 0.0, 0.0
		for _, t := range terms {
			lo1 += minContrib(t.Coef, lo[t.Var], hi[t.Var])
			hi1 += maxContrib(t.Coef, lo[t.Var], hi[t.Var])
		}
		return math.Abs(lo1-rhs) <= 1e-9 && math.Abs(hi1-rhs) <= 1e-9
	}
	return false
}

// strengthenLE applies coefficient strengthening to the LE row in
// place: for a binary x_j with coefficient a > 0 whose row is redundant
// at x_j = 0 but not at x_j = 1 (d = rhs − maxact(rest) ∈ (0, a)), the
// row (a−d)·x_j + rest ≤ rhs−d keeps exactly the same integer points
// and dominates the original for fractional x_j; the a < 0 case is the
// complemented mirror (coefficient moves up by d, rhs unchanged).
// Returns the number of coefficients tightened.
func strengthenLE(terms []lp.Term, rhs *float64, lo, hi []float64, isInt []bool) int {
	u := 0.0
	for _, t := range terms {
		xc := maxContrib(t.Coef, lo[t.Var], hi[t.Var])
		if math.IsInf(xc, 1) {
			return 0
		}
		u += xc
	}
	changed := 0
	b := *rhs
	for i := range terms {
		v := terms[i].Var
		if !isInt[v] || lo[v] != 0 || hi[v] != 1 {
			continue
		}
		a := terms[i].Coef
		if a > 0 {
			d := b - (u - a) // rhs − maxact(rest)
			if d > 1e-9 && a-d > 1e-9 {
				terms[i].Coef = a - d
				b -= d
				u -= d
				changed++
			}
		} else {
			d := b - a - u // complemented mirror; max contribution is 0
			if d > 1e-9 && -a-d > 1e-9 {
				terms[i].Coef = a + d
				changed++
			}
		}
	}
	*rhs = b
	return changed
}

// rootPresolve runs the full root reduction on the search's base
// problem (which owns its rows): bound tightening into baseLo/baseHi,
// redundant-row removal, and coefficient strengthening. Returns true
// when the model is proven integer-infeasible. Must run before any
// worker problem is cloned.
func (s *search) rootPresolve() (infeas bool) {
	tight, infeas := presolveBounds(s.baseProb, s.m.isInt, s.baseLo, s.baseHi, presolveRootPasses, s.baseProb.NumRows())
	s.boundsTightened.Add(tight)
	if infeas {
		return true
	}
	for v := range s.baseLo {
		s.baseProb.SetBounds(v, s.baseLo[v], s.baseHi[v])
	}
	s.rowsRemoved = int64(s.baseProb.DeleteRows(func(i int) bool {
		return rowRedundant(s.baseProb, i, s.baseLo, s.baseHi)
	}))
	for r := 0; r < s.baseProb.NumRows(); r++ {
		terms, sense, rhs := s.baseProb.Row(r)
		if sense == lp.EQ {
			continue
		}
		// Strengthen pure-integer rows only. On mixed rows the reduction
		// shaves big-M coefficients down to exactly-supporting planes:
		// valid, but it turns the disjunction rows into degenerate
		// near-duplicates that stall the simplex and produce singular
		// warm bases (observed: 3× the pivots per LP and factorization
		// breakdowns on the layout models).
		pureInt := true
		for _, t := range terms {
			if !s.m.isInt[t.Var] {
				pureInt = false
				break
			}
		}
		if !pureInt {
			continue
		}
		work := append([]lp.Term(nil), terms...)
		b := rhs
		if sense == lp.GE {
			for i := range work {
				work[i].Coef = -work[i].Coef
			}
			b = -b
		}
		n := strengthenLE(work, &b, s.baseLo, s.baseHi, s.m.isInt)
		if n == 0 {
			continue
		}
		if sense == lp.GE {
			for i := range work {
				work[i].Coef = -work[i].Coef
			}
			b = -b
		}
		s.baseProb.ReplaceRow(r, work, sense, b)
		s.coefsStrengthened += int64(n)
	}
	return false
}

// nodePresolve propagates the node's local bounds (already applied to
// prob) through the rows, tightening prob's bounds in place. Returns
// the number of bounds tightened and whether the node is proven
// infeasible — in which case the caller discards it without solving its
// LP. Scratch slices are per worker, so the hot path allocates nothing
// in steady state.
func (s *search) nodePresolve(id int, prob *lp.Problem) (int64, bool) {
	nv := prob.NumVars()
	if cap(s.psLo[id]) < nv {
		s.psLo[id] = make([]float64, nv)
		s.psHi[id] = make([]float64, nv)
	}
	lo, hi := s.psLo[id][:nv], s.psHi[id][:nv]
	for v := 0; v < nv; v++ {
		lo[v], hi[v] = prob.Bounds(v)
	}
	nr := prob.NumRows()
	if s.cutRowStart >= 0 && s.cutRowStart < nr {
		nr = s.cutRowStart // never propagate bounds through root cut rows
	}
	tight, infeas := presolveBounds(prob, s.m.isInt, lo, hi, presolveNodePasses, nr)
	if infeas {
		return tight, true
	}
	if tight > 0 {
		for v := 0; v < nv; v++ {
			prob.SetBounds(v, lo[v], hi[v])
		}
	}
	return tight, false
}
