package milp

import (
	"testing"
	"time"
)

// checkStatsConsistent asserts the internal identities every SearchStats
// must satisfy regardless of worker count or scheduling:
//
//   - LP-solve conservation: LPSolves = NodesExplored + RoundingAttempts
//     (each expanded node costs exactly one relaxation solve; the only
//     other solves are rounding-heuristic re-solves) — see docs/metrics.md;
//   - per-worker totals sum to the pool totals;
//   - the in-flight high-water mark never exceeds the pool size;
//   - pruning counters never exceed the work that could produce them.
func checkStatsConsistent(t *testing.T, st SearchStats, workers int) {
	t.Helper()
	if st.Workers != workers {
		t.Errorf("Workers = %d, want %d", st.Workers, workers)
	}
	if got, want := st.LPSolves, st.NodesExplored+st.RoundingAttempts; got != want {
		t.Errorf("LP-solve conservation violated: LPSolves=%d, NodesExplored+RoundingAttempts=%d", got, want)
	}
	var nodes, solves, pivots int64
	for _, w := range st.PerWorker {
		nodes += w.Nodes
		solves += w.LPSolves
		pivots += w.Pivots
	}
	if nodes != st.NodesExplored {
		t.Errorf("per-worker nodes sum %d != NodesExplored %d", nodes, st.NodesExplored)
	}
	if solves != st.LPSolves {
		t.Errorf("per-worker LP solves sum %d != LPSolves %d", solves, st.LPSolves)
	}
	if pivots != st.SimplexPivots {
		t.Errorf("per-worker pivots sum %d != SimplexPivots %d", pivots, st.SimplexPivots)
	}
	if st.InFlightHighWater > workers {
		t.Errorf("InFlightHighWater %d > workers %d", st.InFlightHighWater, workers)
	}
	if st.NodesExplored > 0 && st.InFlightHighWater < 1 {
		t.Errorf("InFlightHighWater = %d with %d nodes explored", st.InFlightHighWater, st.NodesExplored)
	}
	if st.RoundingHits > st.RoundingAttempts {
		t.Errorf("RoundingHits %d > RoundingAttempts %d", st.RoundingHits, st.RoundingAttempts)
	}
	if st.NodesCutoff+st.NodesPruned > st.NodesExplored+st.NodesPruned {
		t.Errorf("cutoff %d exceeds explored %d", st.NodesCutoff, st.NodesExplored)
	}
	if st.SimplexPivots < st.LPSolves && st.SimplexPivots != 0 {
		// Each non-trivial LP costs at least one pivot; fully presolved
		// LPs cost zero, so only flag the impossible middle ground where
		// pivots exist but fewer than one per solve on a pivot-heavy run.
		t.Logf("note: SimplexPivots %d < LPSolves %d (heavily presolved model)", st.SimplexPivots, st.LPSolves)
	}
}

// TestSearchStatsConservation solves one fixture sequentially and with a
// pool of four and asserts that the totals of both runs satisfy the
// conservation identities and agree on the objective. Node counts may
// differ between the two runs (incumbent timing changes pruning); the
// identities must not. Run under -race this also proves the counter
// collection itself is race-free.
func TestSearchStatsConservation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, err := hardKnapsack(14).Solve(Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Status != Optimal {
			t.Fatalf("workers=%d: status %v", workers, res.Status)
		}
		checkStatsConsistent(t, res.Stats, workers)
		if res.Stats.NodesExplored != int64(res.Nodes) {
			t.Errorf("workers=%d: Stats.NodesExplored %d != Result.Nodes %d",
				workers, res.Stats.NodesExplored, res.Nodes)
		}
		if len(res.Stats.PerWorker) != workers {
			t.Errorf("workers=%d: PerWorker length %d", workers, len(res.Stats.PerWorker))
		}
	}

	// Objective equality between the two configurations is covered by the
	// equivalence suite; re-assert it here so this test stands alone.
	r1, _ := hardKnapsack(14).Solve(Options{Workers: 1})
	r4, _ := hardKnapsack(14).Solve(Options{Workers: 4})
	if d := r1.Obj - r4.Obj; d > 1e-6 || d < -1e-6 {
		t.Errorf("objective differs: sequential %v vs pool %v", r1.Obj, r4.Obj)
	}
}

// TestSearchStatsSeedExcluded: a caller-provided warm start installs the
// incumbent without counting as an IncumbentUpdate; only improvements
// found by the search count.
func TestSearchStatsSeedExcluded(t *testing.T) {
	m := NewModel()
	v := m.Binary("v")
	m.Minimize(T(v, 1))
	res, err := m.Solve(Options{Start: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Stats.IncumbentUpdates != 0 {
		t.Errorf("seed acceptance must not count as an incumbent update; got %d", res.Stats.IncumbentUpdates)
	}
}

func TestSearchStatsMerge(t *testing.T) {
	a := SearchStats{
		Workers: 2, NodesExplored: 10, NodesPruned: 2, NodesCutoff: 1,
		InFlightHighWater: 2, LPSolves: 11, SimplexPivots: 100,
		IncumbentUpdates: 3, RoundingAttempts: 1, RoundingHits: 1,
		Wall:      time.Second,
		PerWorker: []WorkerStats{{Nodes: 6}, {Nodes: 4}},
	}
	b := SearchStats{
		Workers: 4, NodesExplored: 5, InFlightHighWater: 3, LPSolves: 5,
		Wall:      time.Second,
		PerWorker: []WorkerStats{{Nodes: 2}, {Nodes: 1}, {Nodes: 1}, {Nodes: 1}},
	}
	a.Merge(b)
	if a.Workers != 4 || a.NodesExplored != 15 || a.LPSolves != 16 || a.InFlightHighWater != 3 {
		t.Fatalf("merge totals wrong: %+v", a)
	}
	if a.Wall != 2*time.Second {
		t.Fatalf("wall = %v", a.Wall)
	}
	if len(a.PerWorker) != 4 || a.PerWorker[0].Nodes != 8 || a.PerWorker[3].Nodes != 1 {
		t.Fatalf("per-worker merge wrong: %+v", a.PerWorker)
	}
}

func TestWorkerUtilization(t *testing.T) {
	w := WorkerStats{Busy: 500 * time.Millisecond}
	if u := w.Utilization(time.Second); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v", u)
	}
	if u := w.Utilization(0); u != 0 {
		t.Fatalf("utilization with zero wall = %v", u)
	}
	if u := (WorkerStats{Busy: 2 * time.Second}).Utilization(time.Second); u != 1 {
		t.Fatalf("utilization must clamp to 1, got %v", u)
	}
}
