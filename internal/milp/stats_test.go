package milp

import (
	"testing"
	"time"

	"columbas/internal/lp"
)

// checkStatsConsistent asserts the internal identities every SearchStats
// must satisfy regardless of worker count or scheduling:
//
//   - LP-solve conservation: LPSolves = NodesExplored + RoundingAttempts +
//     BasisRefreshes + CutRounds (each expanded node costs exactly one
//     relaxation solve; the only other solves are rounding-heuristic
//     re-solves, pre-branch basis refreshes, and the root cut loop's
//     separation rounds) — see docs/metrics.md;
//   - branching conservation: Branchings = GroupBranches +
//     PseudocostBranches + ReliabilityFallbacks (every branch decision is
//     exactly one of the three);
//   - per-worker totals sum to the pool totals;
//   - the in-flight high-water mark never exceeds the pool size;
//   - pruning counters never exceed the work that could produce them.
func checkStatsConsistent(t *testing.T, st SearchStats, workers int) {
	t.Helper()
	if st.Workers != workers {
		t.Errorf("Workers = %d, want %d", st.Workers, workers)
	}
	if got, want := st.LPSolves, st.NodesExplored+st.RoundingAttempts+st.BasisRefreshes+st.CutRounds; got != want {
		t.Errorf("LP-solve conservation violated: LPSolves=%d, NodesExplored+RoundingAttempts+BasisRefreshes+CutRounds=%d", got, want)
	}
	if got, want := st.Branchings, st.GroupBranches+st.PseudocostBranches+st.ReliabilityFallbacks; got != want {
		t.Errorf("branching conservation violated: Branchings=%d, GroupBranches+PseudocostBranches+ReliabilityFallbacks=%d", got, want)
	}
	if got, want := st.LPSolves, st.WarmStarts+st.ColdSolves; got != want {
		t.Errorf("warm-start conservation violated: LPSolves=%d, WarmStarts+ColdSolves=%d", got, want)
	}
	if got, want := st.SimplexPivots, st.WarmPivots+st.ColdPivots; got != want {
		t.Errorf("pivot split violated: SimplexPivots=%d, WarmPivots+ColdPivots=%d", got, want)
	}
	if st.WarmStartFallbacks > st.ColdSolves {
		t.Errorf("WarmStartFallbacks %d > ColdSolves %d", st.WarmStartFallbacks, st.ColdSolves)
	}
	if st.EtaUpdates > st.SimplexPivots {
		t.Errorf("EtaUpdates %d > SimplexPivots %d", st.EtaUpdates, st.SimplexPivots)
	}
	if st.WorkspaceReuses > st.WarmStarts {
		t.Errorf("WorkspaceReuses %d > WarmStarts %d", st.WorkspaceReuses, st.WarmStarts)
	}
	if st.SparseRefactorizations > st.Refactorizations {
		t.Errorf("SparseRefactorizations %d > Refactorizations %d", st.SparseRefactorizations, st.Refactorizations)
	}
	if st.DenseFallbacks > st.LPSolves {
		t.Errorf("DenseFallbacks %d > LPSolves %d", st.DenseFallbacks, st.LPSolves)
	}
	if st.FillIn > 0 && st.SparseRefactorizations == 0 {
		t.Errorf("FillIn %d with no sparse refactorizations", st.FillIn)
	}
	var nodes, solves, pivots, warm, warmPiv, fallbacks, p1, eta, refac, reuse, sparseRefac, denseFB, fill, nnzMax int64
	for _, w := range st.PerWorker {
		nodes += w.Nodes
		solves += w.LPSolves
		pivots += w.Pivots
		warm += w.WarmStarts
		warmPiv += w.WarmPivots
		fallbacks += w.WarmFallbacks
		p1 += w.Phase1Rows
		eta += w.EtaUpdates
		refac += w.Refactorizations
		reuse += w.WorkspaceReuses
		sparseRefac += w.SparseRefactorizations
		denseFB += w.DenseFallbacks
		fill += w.FillIn
		if w.BasisNonzeros > nnzMax {
			nnzMax = w.BasisNonzeros
		}
	}
	if sparseRefac != st.SparseRefactorizations {
		t.Errorf("per-worker sparse refactorizations sum %d != SparseRefactorizations %d", sparseRefac, st.SparseRefactorizations)
	}
	if denseFB != st.DenseFallbacks {
		t.Errorf("per-worker dense fallbacks sum %d != DenseFallbacks %d", denseFB, st.DenseFallbacks)
	}
	if fill != st.FillIn {
		t.Errorf("per-worker fill-in sum %d != FillIn %d", fill, st.FillIn)
	}
	if nnzMax != st.BasisNonzeros {
		t.Errorf("per-worker basis-nonzero max %d != BasisNonzeros %d", nnzMax, st.BasisNonzeros)
	}
	if eta != st.EtaUpdates {
		t.Errorf("per-worker eta updates sum %d != EtaUpdates %d", eta, st.EtaUpdates)
	}
	if refac != st.Refactorizations {
		t.Errorf("per-worker refactorizations sum %d != Refactorizations %d", refac, st.Refactorizations)
	}
	if reuse != st.WorkspaceReuses {
		t.Errorf("per-worker workspace reuses sum %d != WorkspaceReuses %d", reuse, st.WorkspaceReuses)
	}
	if warm != st.WarmStarts {
		t.Errorf("per-worker warm starts sum %d != WarmStarts %d", warm, st.WarmStarts)
	}
	if warmPiv != st.WarmPivots {
		t.Errorf("per-worker warm pivots sum %d != WarmPivots %d", warmPiv, st.WarmPivots)
	}
	if fallbacks != st.WarmStartFallbacks {
		t.Errorf("per-worker fallbacks sum %d != WarmStartFallbacks %d", fallbacks, st.WarmStartFallbacks)
	}
	if p1 != st.Phase1Rows {
		t.Errorf("per-worker phase-1 rows sum %d != Phase1Rows %d", p1, st.Phase1Rows)
	}
	if nodes != st.NodesExplored {
		t.Errorf("per-worker nodes sum %d != NodesExplored %d", nodes, st.NodesExplored)
	}
	if solves != st.LPSolves {
		t.Errorf("per-worker LP solves sum %d != LPSolves %d", solves, st.LPSolves)
	}
	if pivots != st.SimplexPivots {
		t.Errorf("per-worker pivots sum %d != SimplexPivots %d", pivots, st.SimplexPivots)
	}
	if st.InFlightHighWater > workers {
		t.Errorf("InFlightHighWater %d > workers %d", st.InFlightHighWater, workers)
	}
	if st.NodesExplored > 0 && st.InFlightHighWater < 1 {
		t.Errorf("InFlightHighWater = %d with %d nodes explored", st.InFlightHighWater, st.NodesExplored)
	}
	if st.RoundingHits > st.RoundingAttempts {
		t.Errorf("RoundingHits %d > RoundingAttempts %d", st.RoundingHits, st.RoundingAttempts)
	}
	if st.NodesCutoff+st.NodesPruned > st.NodesExplored+st.NodesPruned {
		t.Errorf("cutoff %d exceeds explored %d", st.NodesCutoff, st.NodesExplored)
	}
	if st.SimplexPivots < st.LPSolves && st.SimplexPivots != 0 {
		// Each non-trivial LP costs at least one pivot; fully presolved
		// LPs cost zero, so only flag the impossible middle ground where
		// pivots exist but fewer than one per solve on a pivot-heavy run.
		t.Logf("note: SimplexPivots %d < LPSolves %d (heavily presolved model)", st.SimplexPivots, st.LPSolves)
	}
}

// TestSearchStatsConservation solves one fixture sequentially and with a
// pool of four and asserts that the totals of both runs satisfy the
// conservation identities and agree on the objective. Node counts may
// differ between the two runs (incumbent timing changes pruning); the
// identities must not. Run under -race this also proves the counter
// collection itself is race-free.
func TestSearchStatsConservation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, err := hardKnapsack(14).Solve(Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Status != Optimal {
			t.Fatalf("workers=%d: status %v", workers, res.Status)
		}
		checkStatsConsistent(t, res.Stats, workers)
		if res.Stats.NodesExplored != int64(res.Nodes) {
			t.Errorf("workers=%d: Stats.NodesExplored %d != Result.Nodes %d",
				workers, res.Stats.NodesExplored, res.Nodes)
		}
		if len(res.Stats.PerWorker) != workers {
			t.Errorf("workers=%d: PerWorker length %d", workers, len(res.Stats.PerWorker))
		}
	}

	// Objective equality between the two configurations is covered by the
	// equivalence suite; re-assert it here so this test stands alone.
	r1, _ := hardKnapsack(14).Solve(Options{Workers: 1})
	r4, _ := hardKnapsack(14).Solve(Options{Workers: 4})
	if d := r1.Obj - r4.Obj; d > 1e-6 || d < -1e-6 {
		t.Errorf("objective differs: sequential %v vs pool %v", r1.Obj, r4.Obj)
	}
}

// TestSearchStatsKernelModes pins the engine-attribution of the sparse
// counters: a forced-dense search reports no sparse work at all, a
// forced-sparse search attributes every refactorization to the sparse
// engine (these tiny bases cannot trip the fill guard), and both modes
// prove the same optimum with consistent stats.
func TestSearchStatsKernelModes(t *testing.T) {
	dense, err := hardKnapsack(14).Solve(Options{Workers: 1, Kernel: lp.KernelDense})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := hardKnapsack(14).Solve(Options{Workers: 1, Kernel: lp.KernelSparse})
	if err != nil {
		t.Fatal(err)
	}
	checkStatsConsistent(t, dense.Stats, 1)
	checkStatsConsistent(t, sparse.Stats, 1)
	if d := dense.Obj - sparse.Obj; d > 1e-6 || d < -1e-6 {
		t.Errorf("dense obj %v vs sparse obj %v", dense.Obj, sparse.Obj)
	}
	if dense.Stats.SparseRefactorizations != 0 || dense.Stats.DenseFallbacks != 0 || dense.Stats.FillIn != 0 {
		t.Errorf("dense-mode run reported sparse work: %+v", dense.Stats)
	}
	if sparse.Stats.Refactorizations > 0 &&
		sparse.Stats.SparseRefactorizations != sparse.Stats.Refactorizations {
		t.Errorf("sparse-mode SparseRefactorizations %d != Refactorizations %d",
			sparse.Stats.SparseRefactorizations, sparse.Stats.Refactorizations)
	}
	if sparse.Stats.DenseFallbacks != 0 {
		t.Errorf("fill guard fired on a tiny basis: %d fallbacks", sparse.Stats.DenseFallbacks)
	}
	if sparse.Stats.LPSolves > 0 && sparse.Stats.BasisNonzeros == 0 && sparse.Stats.Refactorizations > 0 {
		t.Errorf("sparse-mode run never recorded a basis nonzero peak: %+v", sparse.Stats)
	}
}

// TestWarmStartEngaged proves basis reuse actually happens on a real
// search: beyond the root, (nearly) every node solve should re-enter from
// its parent's basis, and the NoWarmStart ablation must report none.
func TestWarmStartEngaged(t *testing.T) {
	res, err := hardKnapsack(14).Solve(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WarmStarts == 0 {
		t.Fatalf("no warm starts on a %d-node search: %+v", res.Stats.NodesExplored, res.Stats)
	}
	// Every solve that had a parent basis should have used it; allow a
	// small fallback margin but not a silently-cold search.
	if res.Stats.WarmStarts*2 < res.Stats.NodesExplored {
		t.Errorf("warm starts %d < half of %d nodes — basis threading is leaking",
			res.Stats.WarmStarts, res.Stats.NodesExplored)
	}
	cold, err := hardKnapsack(14).Solve(Options{Workers: 1, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.WarmStarts != 0 || cold.Stats.WarmPivots != 0 {
		t.Errorf("NoWarmStart run reported warm work: %+v", cold.Stats)
	}
	if d := res.Obj - cold.Obj; d > 1e-6 || d < -1e-6 {
		t.Errorf("warm %v vs cold %v objective", res.Obj, cold.Obj)
	}
	checkStatsConsistent(t, res.Stats, 1)
	checkStatsConsistent(t, cold.Stats, 1)
}

// TestRootReducedCostFixing: with a seeded incumbent, root reduced costs
// must tighten at least one bound on a model built so that an expensive
// binary can be fixed to zero, without changing the optimum.
func TestRootReducedCostFixing(t *testing.T) {
	build := func() *Model {
		m := NewModel()
		a := m.Binary("a") // fractional at the root (2a ≥ 1 → a = 0.5)
		b := m.Binary("b") // expensive alternative: rc ≫ gap, fixable to 0
		m.AddGE(T(a, 2).Add(b, 2), 1)
		m.Minimize(T(a, 1).Add(b, 10))
		return m
	}
	// Root cuts and coefficient strengthening close this tiny model's gap
	// before reduced-cost fixing can fire; ablate them so the test keeps
	// exercising the fixing path specifically.
	seed := []float64{1, 0} // feasible incumbent: obj 1; root relaxation 0.5
	res, err := build().Solve(Options{Start: seed, Workers: 1, NoCuts: true, NoPresolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Obj > 1+1e-6 {
		t.Fatalf("status %v obj %v", res.Status, res.Obj)
	}
	if res.Stats.RootBoundsFixed == 0 {
		t.Errorf("expected reduced-cost fixing to fire on b (rc≈9, gap≈0.5): %+v", res.Stats)
	}
	off, err := build().Solve(Options{Start: seed, Workers: 1, NoWarmStart: true, NoCuts: true, NoPresolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.RootBoundsFixed != 0 {
		t.Errorf("NoWarmStart must disable root fixing, got %d", off.Stats.RootBoundsFixed)
	}
	if d := res.Obj - off.Obj; d > 1e-6 || d < -1e-6 {
		t.Errorf("fixing changed the optimum: %v vs %v", res.Obj, off.Obj)
	}
}

// TestSearchStatsSeedExcluded: a caller-provided warm start installs the
// incumbent without counting as an IncumbentUpdate; only improvements
// found by the search count.
func TestSearchStatsSeedExcluded(t *testing.T) {
	m := NewModel()
	v := m.Binary("v")
	m.Minimize(T(v, 1))
	res, err := m.Solve(Options{Start: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Stats.IncumbentUpdates != 0 {
		t.Errorf("seed acceptance must not count as an incumbent update; got %d", res.Stats.IncumbentUpdates)
	}
}

func TestSearchStatsMerge(t *testing.T) {
	a := SearchStats{
		Workers: 2, NodesExplored: 10, NodesPruned: 2, NodesCutoff: 1,
		InFlightHighWater: 2, LPSolves: 11, SimplexPivots: 100,
		WarmStarts: 8, ColdSolves: 3, WarmStartFallbacks: 1,
		WarmPivots: 40, ColdPivots: 60, Phase1Rows: 30, RootBoundsFixed: 2,
		EtaUpdates: 90, Refactorizations: 4, WorkspaceReuses: 6,
		SparseRefactorizations: 3, DenseFallbacks: 1, FillIn: 12, BasisNonzeros: 40,
		IncumbentUpdates: 3, RoundingAttempts: 1, RoundingHits: 1,
		NodesPresolved: 2, BoundsTightened: 7, RowsRemoved: 1, CoefsStrengthened: 3,
		CutsAdded: 5, CutRounds: 2,
		Branchings: 9, GroupBranches: 4, PseudocostBranches: 3, ReliabilityFallbacks: 2,
		Wall:      time.Second,
		PerWorker: []WorkerStats{{Nodes: 6, WarmStarts: 5, EtaUpdates: 50}, {Nodes: 4, WarmStarts: 3, EtaUpdates: 40}},
	}
	b := SearchStats{
		Workers: 4, NodesExplored: 5, InFlightHighWater: 3, LPSolves: 5,
		WarmStarts: 4, ColdSolves: 1, WarmPivots: 10, Phase1Rows: 6,
		EtaUpdates: 10, Refactorizations: 1, WorkspaceReuses: 3,
		SparseRefactorizations: 1, FillIn: 4, BasisNonzeros: 25,
		NodesPresolved: 1, BoundsTightened: 3, CutsAdded: 2, CutRounds: 1,
		Branchings: 2, PseudocostBranches: 1, ReliabilityFallbacks: 1,
		Wall:      time.Second,
		PerWorker: []WorkerStats{{Nodes: 2, WarmStarts: 4, EtaUpdates: 10}, {Nodes: 1}, {Nodes: 1}, {Nodes: 1}},
	}
	a.Merge(b)
	if a.Workers != 4 || a.NodesExplored != 15 || a.LPSolves != 16 || a.InFlightHighWater != 3 {
		t.Fatalf("merge totals wrong: %+v", a)
	}
	if a.WarmStarts != 12 || a.ColdSolves != 4 || a.WarmStartFallbacks != 1 ||
		a.WarmPivots != 50 || a.ColdPivots != 60 || a.Phase1Rows != 36 || a.RootBoundsFixed != 2 {
		t.Fatalf("warm-start merge totals wrong: %+v", a)
	}
	if a.LPSolves != a.WarmStarts+a.ColdSolves {
		t.Fatalf("merge broke the warm-start conservation identity: %+v", a)
	}
	if a.EtaUpdates != 100 || a.Refactorizations != 5 || a.WorkspaceReuses != 9 {
		t.Fatalf("kernel counter merge totals wrong: %+v", a)
	}
	if a.SparseRefactorizations != 4 || a.DenseFallbacks != 1 || a.FillIn != 16 {
		t.Fatalf("sparse counter merge totals wrong: %+v", a)
	}
	if a.BasisNonzeros != 40 {
		t.Fatalf("BasisNonzeros must merge as a high-water max, got %d", a.BasisNonzeros)
	}
	if a.NodesPresolved != 3 || a.BoundsTightened != 10 || a.RowsRemoved != 1 ||
		a.CoefsStrengthened != 3 || a.CutsAdded != 7 || a.CutRounds != 3 {
		t.Fatalf("presolve/cut counter merge totals wrong: %+v", a)
	}
	if a.Branchings != 11 || a.GroupBranches != 4 || a.PseudocostBranches != 4 || a.ReliabilityFallbacks != 3 {
		t.Fatalf("branching counter merge totals wrong: %+v", a)
	}
	if a.Branchings != a.GroupBranches+a.PseudocostBranches+a.ReliabilityFallbacks {
		t.Fatalf("merge broke the branching conservation identity: %+v", a)
	}
	if a.PerWorker[0].EtaUpdates != 60 || a.PerWorker[1].EtaUpdates != 40 {
		t.Fatalf("per-worker kernel counter merge wrong: %+v", a.PerWorker)
	}
	if a.Wall != 2*time.Second {
		t.Fatalf("wall = %v", a.Wall)
	}
	if len(a.PerWorker) != 4 || a.PerWorker[0].Nodes != 8 || a.PerWorker[3].Nodes != 1 {
		t.Fatalf("per-worker merge wrong: %+v", a.PerWorker)
	}
	if a.PerWorker[0].WarmStarts != 9 || a.PerWorker[1].WarmStarts != 3 {
		t.Fatalf("per-worker warm merge wrong: %+v", a.PerWorker)
	}
}

func TestWorkerUtilization(t *testing.T) {
	w := WorkerStats{Busy: 500 * time.Millisecond}
	if u := w.Utilization(time.Second); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v", u)
	}
	if u := w.Utilization(0); u != 0 {
		t.Fatalf("utilization with zero wall = %v", u)
	}
	if u := (WorkerStats{Busy: 2 * time.Second}).Utilization(time.Second); u != 1 {
		t.Fatalf("utilization must clamp to 1, got %v", u)
	}
}
