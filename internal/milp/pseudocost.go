package milp

import "math"

// Pseudocost branching with reliability initialization. Every two-way
// branch records, once each child's LP solves, how much the relaxation
// objective degraded per unit of fractional distance in that direction;
// the running average is the variable's pseudocost. When choosing the
// next branching variable, the search scores every fractional candidate
// by the product of its predicted down- and up-degradations — the
// classic product rule, which favours variables that hurt in BOTH
// directions and therefore tighten both children's bounds — but only
// trusts variables with at least pcReliabilityMinObs observations per
// direction. Until then the most-fractional rule stands in
// (ReliabilityFallbacks), so early branching never follows noise from a
// single observation.

// pcReliabilityMinObs is the number of observations a variable needs in
// each direction before its pseudocost is trusted.
const pcReliabilityMinObs = 2

// pcRecord adds one observation: branching variable v in direction up
// cost perUnit objective per unit of fractional distance.
func (s *search) pcRecord(v int, up bool, perUnit float64) {
	s.pcMu.Lock()
	if up {
		s.pcUpSum[v] += perUnit
		s.pcUpN[v]++
	} else {
		s.pcDownSum[v] += perUnit
		s.pcDownN[v]++
	}
	s.pcMu.Unlock()
}

// pickPseudocost selects among the fractional integer variables the one
// with the best product score down·f_down × up·f_up, considering only
// variables whose history is reliable in both directions. ok is false
// when no fractional variable qualifies yet — the caller keeps its
// most-fractional choice and counts a reliability fallback. Ties break
// on the lowest variable index, keeping single-worker runs
// deterministic.
func (s *search) pickPseudocost(x []float64) (v int, ok bool) {
	s.pcMu.Lock()
	defer s.pcMu.Unlock()
	best, bestScore := -1, 0.0
	for v := range s.m.isInt {
		if !s.m.isInt[v] {
			continue
		}
		fd := x[v] - math.Floor(x[v])
		fu := 1 - fd
		if fd < intTol || fu < intTol {
			continue
		}
		if s.pcDownN[v] < pcReliabilityMinObs || s.pcUpN[v] < pcReliabilityMinObs {
			continue
		}
		down := s.pcDownSum[v] / float64(s.pcDownN[v])
		up := s.pcUpSum[v] / float64(s.pcUpN[v])
		// Floor each factor so a zero-gain history cannot erase the other
		// direction's signal entirely.
		score := math.Max(down*fd, 1e-9) * math.Max(up*fu, 1e-9)
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	if best < 0 {
		return -1, false
	}
	return best, true
}
