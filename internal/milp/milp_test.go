package milp

import (
	"math"
	"testing"
	"time"
)

func solve(t *testing.T, m *Model, opt Options) *Result {
	t.Helper()
	r, err := m.Solve(opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return r
}

func wantOpt(t *testing.T, r *Result, obj float64) {
	t.Helper()
	if r.Status != Optimal {
		t.Fatalf("status = %v, want optimal (obj=%v bound=%v nodes=%d)", r.Status, r.Obj, r.Bound, r.Nodes)
	}
	if math.Abs(r.Obj-obj) > 1e-5 {
		t.Fatalf("obj = %v, want %v", r.Obj, obj)
	}
}

func TestPureLP(t *testing.T) {
	// No integer vars: a single LP solve.
	m := NewModel()
	x := m.Var("x", 0, 10)
	y := m.Var("y", 0, 10)
	m.AddLE(Sum(x, y), 12)
	m.Minimize(NewExpr().Add(x, -1).Add(y, -2))
	r := solve(t, m, Options{})
	wantOpt(t, r, -22) // y=10, x=2
	if r.Nodes != 1 {
		t.Errorf("nodes = %d, want 1", r.Nodes)
	}
}

func TestSimpleKnapsack(t *testing.T) {
	// max 10a + 6b + 4c st 1a+1b+1c <= 2 (binary) -> a,b chosen: 16
	m := NewModel()
	a, b, c := m.Binary("a"), m.Binary("b"), m.Binary("c")
	m.AddLE(Sum(a, b, c), 2)
	m.Minimize(NewExpr().Add(a, -10).Add(b, -6).Add(c, -4))
	r := solve(t, m, Options{})
	wantOpt(t, r, -16)
	if r.Value(a) < 0.5 || r.Value(b) < 0.5 || r.Value(c) > 0.5 {
		t.Fatalf("selection = %v %v %v", r.Value(a), r.Value(b), r.Value(c))
	}
}

func TestFractionalKnapsackNeedsBranching(t *testing.T) {
	// Weights force a fractional LP relaxation.
	// max 9x1 + 7x2 + 5x3, 6x1 + 5x2 + 4x3 <= 10, binary.
	m := NewModel()
	x1, x2, x3 := m.Binary("x1"), m.Binary("x2"), m.Binary("x3")
	m.AddLE(NewExpr().Add(x1, 6).Add(x2, 5).Add(x3, 4), 10)
	m.Minimize(NewExpr().Add(x1, -9).Add(x2, -7).Add(x3, -5))
	// Root cuts solve this instance without branching (that is their job);
	// ablate them so the branching machinery itself stays under test.
	r := solve(t, m, Options{NoCuts: true, NoPresolve: true})
	wantOpt(t, r, -14) // x1 + x3 = 9 + 5
	if r.Nodes < 2 {
		t.Errorf("expected branching, nodes = %d", r.Nodes)
	}
}

func TestIntegerVariable(t *testing.T) {
	// min -x st 3x <= 10, x integer in [0, 10] -> x = 3
	m := NewModel()
	x := m.Int("x", 0, 10)
	m.AddLE(T(x, 3), 10)
	m.Minimize(T(x, -1))
	r := solve(t, m, Options{})
	wantOpt(t, r, -3)
}

func TestObjectiveConstant(t *testing.T) {
	m := NewModel()
	x := m.Int("x", 0, 5)
	m.AddGE(T(x, 1), 2)
	m.Minimize(NewExpr().Add(x, 1).AddConst(100))
	r := solve(t, m, Options{})
	wantOpt(t, r, 102)
}

func TestInfeasibleInteger(t *testing.T) {
	// 2x = 3 has no integer solution.
	m := NewModel()
	x := m.Int("x", 0, 10)
	m.AddEQ(T(x, 2), 3)
	r := solve(t, m, Options{})
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestUnboundedRelaxation(t *testing.T) {
	m := NewModel()
	x := m.Var("x", 0, math.Inf(1))
	m.Minimize(T(x, -1))
	r := solve(t, m, Options{})
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestDisjunctionBranching(t *testing.T) {
	// Two 10-wide intervals on a line of length 25 must not overlap:
	// xa + 10 <= xb + q1*M  or  xb + 10 <= xa + q2*M, exactly one active.
	const M = 1000
	m := NewModel()
	xa := m.Var("xa", 0, 15)
	xb := m.Var("xb", 0, 15)
	q1 := m.Binary("q1")
	q2 := m.Binary("q2")
	m.AddLE(NewExpr().Add(xa, 1).Add(xb, -1).Add(q1, -M), -10)
	m.AddLE(NewExpr().Add(xb, 1).Add(xa, -1).Add(q2, -M), -10)
	m.MarkDisjunction([]VarID{q1, q2})
	// Prefer both as far left as possible.
	m.Minimize(Sum(xa, xb))
	r := solve(t, m, Options{})
	wantOpt(t, r, 10) // one at 0, other at 10
	sep := math.Abs(r.Value(xa) - r.Value(xb))
	if sep < 10-1e-6 {
		t.Fatalf("intervals overlap: xa=%v xb=%v", r.Value(xa), r.Value(xb))
	}
}

func TestFourWayDisjunction(t *testing.T) {
	// The paper's full 2D non-overlap: two 10x10 squares in a 20x11 box.
	// Only horizontal separation fits, so q3/q4 (vertical options) must
	// lose. Minimise total extent.
	const M = 1000
	m := NewModel()
	ax := m.Var("ax", 0, 10) // left edges; squares are 10 wide
	bx := m.Var("bx", 0, 10)
	ay := m.Var("ay", 0, 1) // box height 11 -> y in [0,1]
	by := m.Var("by", 0, 1)
	q1, q2 := m.Binary("q1"), m.Binary("q2")
	q3, q4 := m.Binary("q3"), m.Binary("q4")
	m.AddLE(NewExpr().Add(ax, 1).Add(bx, -1).Add(q1, -M), -10)
	m.AddLE(NewExpr().Add(bx, 1).Add(ax, -1).Add(q2, -M), -10)
	m.AddLE(NewExpr().Add(ay, 1).Add(by, -1).Add(q3, -M), -10)
	m.AddLE(NewExpr().Add(by, 1).Add(ay, -1).Add(q4, -M), -10)
	m.MarkDisjunction([]VarID{q1, q2, q3, q4})
	m.Minimize(Sum(ax, bx, ay, by))
	r := solve(t, m, Options{})
	wantOpt(t, r, 10)
	if r.Value(q3) < 0.5 || r.Value(q4) < 0.5 {
		t.Fatal("vertical separation should be inactive (tautology)")
	}
}

func TestStartIncumbentAccepted(t *testing.T) {
	m := NewModel()
	a, b := m.Binary("a"), m.Binary("b")
	m.AddLE(Sum(a, b), 1)
	m.Minimize(NewExpr().Add(a, -3).Add(b, -2))
	// Seed the optimal solution; search should confirm it.
	start := []float64{1, 0}
	r := solve(t, m, Options{Start: start})
	wantOpt(t, r, -3)
}

func TestStartIncumbentRejectedIfInfeasible(t *testing.T) {
	m := NewModel()
	a, b := m.Binary("a"), m.Binary("b")
	m.AddLE(Sum(a, b), 1)
	m.Minimize(NewExpr().Add(a, -3).Add(b, -2))
	// Infeasible seed (violates the row) must be ignored, not crash.
	r := solve(t, m, Options{Start: []float64{1, 1}})
	wantOpt(t, r, -3)
}

func TestNodeLimitReturnsIncumbent(t *testing.T) {
	m := NewModel()
	a, b := m.Binary("a"), m.Binary("b")
	m.AddLE(Sum(a, b), 1)
	m.Minimize(NewExpr().Add(a, -3).Add(b, -2))
	r := solve(t, m, Options{Start: []float64{0, 1}, NodeLimit: 1})
	// With a 1-node budget and a seeded incumbent, we get Feasible (or
	// Optimal if the single node already proved it).
	if r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Obj > -2+1e-9 {
		t.Fatalf("obj = %v, incumbent lost", r.Obj)
	}
}

func TestTimeLimit(t *testing.T) {
	// A big symmetric knapsack that cannot finish in ~0 time.
	m := NewModel()
	var vars []VarID
	cap := NewExpr()
	obj := NewExpr()
	for i := 0; i < 40; i++ {
		v := m.Binary("v")
		vars = append(vars, v)
		cap.Add(v, float64(3+i%7))
		obj.Add(v, -float64(5+i%11))
	}
	m.AddLE(cap, 50)
	m.Minimize(obj)
	r := solve(t, m, Options{TimeLimit: time.Millisecond})
	if r.Status == Optimal {
		t.Skip("machine fast enough to prove optimality within 1ms")
	}
	if r.Status != Feasible && r.Status != Limit {
		t.Fatalf("status = %v", r.Status)
	}
	_ = vars
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	m := NewModel()
	x := m.Int("x", 0, 10)
	m.AddLE(T(x, 3), 10)
	m.Minimize(T(x, -1))
	if _, err := m.Solve(Options{}); err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Bounds(x)
	if lo != 0 || hi != 10 {
		t.Fatalf("bounds after solve = [%v,%v], want [0,10]", lo, hi)
	}
	// Second solve must reproduce the result.
	r := solve(t, m, Options{})
	wantOpt(t, r, -3)
}

func TestFixVariable(t *testing.T) {
	m := NewModel()
	x := m.Int("x", 0, 10)
	y := m.Int("y", 0, 10)
	m.AddLE(Sum(x, y), 10)
	m.Fix(x, 4)
	m.Minimize(NewExpr().Add(x, -1).Add(y, -1))
	r := solve(t, m, Options{})
	wantOpt(t, r, -10)
	if math.Abs(r.Value(x)-4) > 1e-6 {
		t.Fatalf("x = %v, want 4", r.Value(x))
	}
}

func TestExprHelpers(t *testing.T) {
	e := NewExpr().Add(VarID(0), 2).AddConst(5)
	f := T(VarID(1), 3)
	e.AddExpr(f)
	if len(e.Terms) != 2 || e.Const != 5 {
		t.Fatalf("expr = %+v", e)
	}
	s := Sum(VarID(0), VarID(1), VarID(2))
	if len(s.Terms) != 3 {
		t.Fatalf("sum = %+v", s)
	}
}

func TestNames(t *testing.T) {
	m := NewModel()
	x := m.Var("width", 0, 1)
	if m.Name(x) != "width" {
		t.Fatalf("Name = %q", m.Name(x))
	}
	if m.NumVars() != 1 || m.NumInt() != 0 {
		t.Fatal("counts wrong")
	}
	m.Binary("q")
	if m.NumInt() != 1 {
		t.Fatal("NumInt wrong")
	}
}

func TestMarkDisjunctionPanicsOnContinuous(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m := NewModel()
	x := m.Var("x", 0, 1)
	m.MarkDisjunction([]VarID{x})
}

func TestGapTermination(t *testing.T) {
	// With Gap = 1.0 (100%) any incumbent stops the search immediately.
	m := NewModel()
	var obj, cap *Expr = NewExpr(), NewExpr()
	for i := 0; i < 12; i++ {
		v := m.Binary("v")
		cap.Add(v, float64(2+i%3))
		obj.Add(v, -float64(3+i%5))
	}
	m.AddLE(cap, 9)
	m.Minimize(obj)
	r := solve(t, m, Options{Gap: 1.0})
	if r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.X == nil {
		t.Fatal("no solution returned")
	}
}

// A placement-flavoured integration test: pack three rectangles of widths
// 4, 5, 6 on a strip of height 10 (all height 10) minimising total width.
// The optimum is abutting them: width 15.
func TestStripPacking(t *testing.T) {
	const M = 100
	widths := []float64{4, 5, 6}
	m := NewModel()
	var xs []VarID
	W := m.Var("W", 0, 100)
	for i, w := range widths {
		x := m.Var("x", 0, 100)
		xs = append(xs, x)
		m.AddLE(NewExpr().Add(x, 1).AddConst(w).Add(W, -1), 0)
		_ = i
	}
	for i := range widths {
		for j := i + 1; j < len(widths); j++ {
			q1, q2 := m.Binary("q1"), m.Binary("q2")
			m.AddLE(NewExpr().Add(xs[i], 1).AddConst(widths[i]).Add(xs[j], -1).Add(q1, -M), 0)
			m.AddLE(NewExpr().Add(xs[j], 1).AddConst(widths[j]).Add(xs[i], -1).Add(q2, -M), 0)
			m.MarkDisjunction([]VarID{q1, q2})
		}
	}
	m.Minimize(T(W, 1))
	r := solve(t, m, Options{})
	wantOpt(t, r, 15)
}
