package milp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"columbas/internal/lp"
)

// Solver-equivalence harness: every fixture is solved three ways — the
// exact sequential algorithm (Workers=1), the worker pool (Workers=4) and
// brute-force enumeration of all integer assignments — and all three must
// agree on status and optimal objective within 1e-6. This is the proof
// obligation behind the parallel branch-and-bound core: parallelism may
// reorder the search and break variable-assignment ties differently, but
// it must never change what the solver proves.

const equivTol = 1e-6

// bruteForce enumerates every assignment of the model's integer variables
// (bounds product must stay small), LP-solves the continuous remainder of
// each, and returns the best status/objective. build must return a fresh
// equivalent model on every call.
func bruteForce(t *testing.T, build func() *Model) (Status, float64) {
	t.Helper()
	probe := build()
	type intVar struct {
		v      int
		lo, hi int
	}
	var ints []intVar
	combos := 1
	for v, isInt := range probe.isInt {
		if !isInt {
			continue
		}
		lo, hi := probe.prob.Bounds(v)
		iv := intVar{v: v, lo: int(math.Ceil(lo - equivTol)), hi: int(math.Floor(hi + equivTol))}
		if iv.hi < iv.lo {
			return Infeasible, 0
		}
		combos *= iv.hi - iv.lo + 1
		if combos > 1<<14 {
			t.Fatalf("fixture too large for brute force: %d combos", combos)
		}
		ints = append(ints, iv)
	}
	best := math.Inf(1)
	feasible := false
	assign := make([]int, len(ints))
	var rec func(k int)
	rec = func(k int) {
		if k == len(ints) {
			m := build()
			for i, iv := range ints {
				m.Fix(VarID(iv.v), float64(assign[i]))
			}
			r, err := m.Solve(Options{})
			if err != nil {
				t.Fatalf("brute force LP: %v", err)
			}
			if r.Status == Optimal {
				feasible = true
				if r.Obj < best {
					best = r.Obj
				}
			}
			return
		}
		for val := ints[k].lo; val <= ints[k].hi; val++ {
			assign[k] = val
			rec(k + 1)
		}
	}
	rec(0)
	if !feasible {
		return Infeasible, 0
	}
	return Optimal, best
}

// checkEquivalence solves build() with Workers=1 and Workers=4, each both
// warm-started (the default) and with NoWarmStart (the seed solver's cold
// behaviour), and cross-checks all four against brute force. This is the
// proof obligation behind the warm-start kernel: basis reuse may change
// pivot order and tie-breaking, but never status or optimal objective.
func checkEquivalence(t *testing.T, name string, build func() *Model) {
	t.Helper()
	bStatus, bObj := bruteForce(t, build)
	for _, workers := range []int{1, 4} {
		for _, noWarm := range []bool{false, true} {
			label := fmt.Sprintf("%s workers=%d warm=%v", name, workers, !noWarm)
			r, err := build().Solve(Options{Workers: workers, NoWarmStart: noWarm})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if r.Status != bStatus {
				t.Fatalf("%s: status %v, brute force %v", label, r.Status, bStatus)
			}
			if bStatus == Optimal && math.Abs(r.Obj-bObj) > equivTol {
				t.Fatalf("%s: obj %v, brute force %v (diff %g)",
					label, r.Obj, bObj, math.Abs(r.Obj-bObj))
			}
			if bStatus == Optimal {
				// The returned assignment must actually be feasible at the
				// claimed objective, whatever ties it broke.
				ok, obj := build().checkFeasible(r.X)
				if !ok {
					t.Fatalf("%s: returned infeasible assignment %v", label, r.X)
				}
				if math.Abs(obj-r.Obj) > 1e-5 {
					t.Fatalf("%s: assignment objective %v != reported %v", label, obj, r.Obj)
				}
			}
			if noWarm && (r.Stats.WarmStarts != 0 || r.Stats.WarmPivots != 0) {
				t.Fatalf("%s: ablation run reported warm work: %+v", label, r.Stats)
			}
			if r.Stats.LPSolves != r.Stats.WarmStarts+r.Stats.ColdSolves {
				t.Fatalf("%s: LPSolves %d != WarmStarts %d + ColdSolves %d",
					label, r.Stats.LPSolves, r.Stats.WarmStarts, r.Stats.ColdSolves)
			}
		}
	}
	// 2×2 cuts × presolve matrix: disabling either tree reduction (or
	// both) may only change how the tree is searched, never what it
	// proves — every cell must reproduce the brute-force status and
	// optimum. The both-enabled cell is the default already covered by
	// the warm/worker sweep above, so only the three ablated cells run.
	// This is the proof obligation behind the root-cut and presolve
	// layers: cuts and tightened bounds must never exclude an
	// integer-feasible point.
	for _, noCuts := range []bool{false, true} {
		for _, noPresolve := range []bool{false, true} {
			if !noCuts && !noPresolve {
				continue
			}
			label := fmt.Sprintf("%s cuts=%v presolve=%v", name, !noCuts, !noPresolve)
			r, err := build().Solve(Options{Workers: 1, NoCuts: noCuts, NoPresolve: noPresolve})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if r.Status != bStatus {
				t.Fatalf("%s: status %v, brute force %v", label, r.Status, bStatus)
			}
			if bStatus == Optimal && math.Abs(r.Obj-bObj) > equivTol {
				t.Fatalf("%s: obj %v, brute force %v (diff %g)",
					label, r.Obj, bObj, math.Abs(r.Obj-bObj))
			}
			if bStatus == Optimal {
				ok, obj := build().checkFeasible(r.X)
				if !ok {
					t.Fatalf("%s: returned infeasible assignment %v", label, r.X)
				}
				if math.Abs(obj-r.Obj) > 1e-5 {
					t.Fatalf("%s: assignment objective %v != reported %v", label, obj, r.Obj)
				}
			}
			if noCuts && (r.Stats.CutsAdded != 0 || r.Stats.CutRounds != 0) {
				t.Fatalf("%s: NoCuts run reported cut work: %+v", label, r.Stats)
			}
			if noPresolve && (r.Stats.NodesPresolved != 0 || r.Stats.BoundsTightened != 0 ||
				r.Stats.RowsRemoved != 0 || r.Stats.CoefsStrengthened != 0) {
				t.Fatalf("%s: NoPresolve run reported presolve work: %+v", label, r.Stats)
			}
		}
	}
	// Kernel matrix: the dense explicit-inverse engine and the sparse LU
	// engine must prove the same status and optimum as brute force on
	// every fixture. This is the proof obligation behind the factorized
	// kernel — FTRAN/BTRAN on factors may pivot differently from the
	// explicit inverse, but never changes what the search proves. The
	// sparse cell also runs on the pool to cover cross-worker basis
	// handoffs landing on LU factors.
	for _, cell := range []struct {
		kernel  lp.Kernel
		workers int
	}{{lp.KernelDense, 1}, {lp.KernelSparse, 1}, {lp.KernelSparse, 4}} {
		label := fmt.Sprintf("%s kernel=%v workers=%d", name, cell.kernel, cell.workers)
		r, err := build().Solve(Options{Workers: cell.workers, Kernel: cell.kernel})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if r.Status != bStatus {
			t.Fatalf("%s: status %v, brute force %v", label, r.Status, bStatus)
		}
		if bStatus == Optimal && math.Abs(r.Obj-bObj) > equivTol {
			t.Fatalf("%s: obj %v, brute force %v (diff %g)",
				label, r.Obj, bObj, math.Abs(r.Obj-bObj))
		}
		if bStatus == Optimal {
			ok, obj := build().checkFeasible(r.X)
			if !ok {
				t.Fatalf("%s: returned infeasible assignment %v", label, r.X)
			}
			if math.Abs(obj-r.Obj) > 1e-5 {
				t.Fatalf("%s: assignment objective %v != reported %v", label, obj, r.Obj)
			}
		}
		if cell.kernel == lp.KernelDense &&
			(r.Stats.SparseRefactorizations != 0 || r.Stats.DenseFallbacks != 0 || r.Stats.FillIn != 0) {
			t.Fatalf("%s: dense run reported sparse work: %+v", label, r.Stats)
		}
		if r.Stats.SparseRefactorizations > r.Stats.Refactorizations {
			t.Fatalf("%s: SparseRefactorizations %d > Refactorizations %d",
				label, r.Stats.SparseRefactorizations, r.Stats.Refactorizations)
		}
		if r.Stats.DenseFallbacks > r.Stats.LPSolves {
			t.Fatalf("%s: DenseFallbacks %d > LPSolves %d",
				label, r.Stats.DenseFallbacks, r.Stats.LPSolves)
		}
	}
}

// TestEquivalenceFixtures runs the named fixtures of the package's test
// suite (the deterministic models of milp_test.go/brute_test.go) through
// the sequential/parallel/brute-force cross-check.
func TestEquivalenceFixtures(t *testing.T) {
	fixtures := []struct {
		name  string
		build func() *Model
	}{
		{"knapsack", func() *Model {
			m := NewModel()
			a, b, c := m.Binary("a"), m.Binary("b"), m.Binary("c")
			m.AddLE(Sum(a, b, c), 2)
			m.Minimize(NewExpr().Add(a, -10).Add(b, -6).Add(c, -4))
			return m
		}},
		{"fractional-knapsack", func() *Model {
			m := NewModel()
			x1, x2, x3 := m.Binary("x1"), m.Binary("x2"), m.Binary("x3")
			m.AddLE(NewExpr().Add(x1, 6).Add(x2, 5).Add(x3, 4), 10)
			m.Minimize(NewExpr().Add(x1, -9).Add(x2, -7).Add(x3, -5))
			return m
		}},
		{"integer-var", func() *Model {
			m := NewModel()
			x := m.Int("x", 0, 10)
			m.AddLE(T(x, 3), 10)
			m.Minimize(T(x, -1))
			return m
		}},
		{"objective-constant", func() *Model {
			m := NewModel()
			x := m.Int("x", 0, 5)
			m.AddGE(T(x, 1), 2)
			m.Minimize(NewExpr().Add(x, 1).AddConst(100))
			return m
		}},
		{"infeasible-parity", func() *Model {
			m := NewModel()
			x := m.Int("x", 0, 10)
			m.AddEQ(T(x, 2), 3)
			return m
		}},
		{"two-way-disjunction", func() *Model {
			const M = 1000
			m := NewModel()
			xa := m.Var("xa", 0, 15)
			xb := m.Var("xb", 0, 15)
			q1, q2 := m.Binary("q1"), m.Binary("q2")
			m.AddLE(NewExpr().Add(xa, 1).Add(xb, -1).Add(q1, -M), -10)
			m.AddLE(NewExpr().Add(xb, 1).Add(xa, -1).Add(q2, -M), -10)
			m.MarkDisjunction([]VarID{q1, q2})
			m.Minimize(Sum(xa, xb))
			return m
		}},
		{"four-way-disjunction", func() *Model {
			const M = 1000
			m := NewModel()
			ax := m.Var("ax", 0, 10)
			bx := m.Var("bx", 0, 10)
			ay := m.Var("ay", 0, 1)
			by := m.Var("by", 0, 1)
			q1, q2 := m.Binary("q1"), m.Binary("q2")
			q3, q4 := m.Binary("q3"), m.Binary("q4")
			m.AddLE(NewExpr().Add(ax, 1).Add(bx, -1).Add(q1, -M), -10)
			m.AddLE(NewExpr().Add(bx, 1).Add(ax, -1).Add(q2, -M), -10)
			m.AddLE(NewExpr().Add(ay, 1).Add(by, -1).Add(q3, -M), -10)
			m.AddLE(NewExpr().Add(by, 1).Add(ay, -1).Add(q4, -M), -10)
			m.MarkDisjunction([]VarID{q1, q2, q3, q4})
			m.Minimize(Sum(ax, bx, ay, by))
			return m
		}},
		{"strip-packing", func() *Model {
			const M = 100
			widths := []float64{4, 5, 6}
			m := NewModel()
			var xs []VarID
			W := m.Var("W", 0, 100)
			for _, w := range widths {
				x := m.Var("x", 0, 100)
				xs = append(xs, x)
				m.AddLE(NewExpr().Add(x, 1).AddConst(w).Add(W, -1), 0)
			}
			for i := range widths {
				for j := i + 1; j < len(widths); j++ {
					q1, q2 := m.Binary("q1"), m.Binary("q2")
					m.AddLE(NewExpr().Add(xs[i], 1).AddConst(widths[i]).Add(xs[j], -1).Add(q1, -M), 0)
					m.AddLE(NewExpr().Add(xs[j], 1).AddConst(widths[j]).Add(xs[i], -1).Add(q2, -M), 0)
					m.MarkDisjunction([]VarID{q1, q2})
				}
			}
			m.Minimize(T(W, 1))
			return m
		}},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) { checkEquivalence(t, fx.name, fx.build) })
	}
}

// randomModel returns a builder for a seeded random MILP in the shape of
// the brute_test generators: binaries plus bounded continuous variables,
// LE/GE rows, and occasionally a marked two-binary disjunction.
func randomModel(seed int64) func() *Model {
	return func() *Model {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + rng.Intn(5)
		nc := rng.Intn(3)
		nr := 1 + rng.Intn(4)
		m := NewModel()
		var bs, cs []VarID
		for i := 0; i < nb; i++ {
			bs = append(bs, m.Binary(fmt.Sprintf("b%d", i)))
		}
		for i := 0; i < nc; i++ {
			cs = append(cs, m.Var(fmt.Sprintf("x%d", i), 0, 5))
		}
		for r := 0; r < nr; r++ {
			e := NewExpr()
			for _, b := range bs {
				e.Add(b, float64(rng.Intn(7)-3))
			}
			for _, c := range cs {
				e.Add(c, float64(rng.Intn(5)-2))
			}
			rhs := float64(rng.Intn(9) - 2)
			if rng.Intn(2) == 0 {
				m.AddGE(e, rhs)
			} else {
				m.AddLE(e, rhs)
			}
		}
		if nb >= 2 && rng.Intn(3) == 0 {
			m.MarkDisjunction([]VarID{bs[0], bs[1]})
		}
		obj := NewExpr()
		for _, b := range bs {
			obj.Add(b, float64(rng.Intn(11)-5))
		}
		for _, c := range cs {
			obj.Add(c, float64(rng.Intn(5)-2)/2+0.5)
		}
		m.Minimize(obj)
		return m
	}
}

// TestEquivalenceRandom cross-checks 100 seeded random MILPs (each solved
// warm and cold at two worker counts against brute force).
func TestEquivalenceRandom(t *testing.T) {
	n := int64(100)
	if testing.Short() {
		n = 25
	}
	for seed := int64(0); seed < n; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkEquivalence(t, fmt.Sprintf("seed%d", seed), randomModel(seed))
		})
	}
}

// TestEquivalenceWorkerSweep fixes one nontrivial model and sweeps the
// worker count further than the pairwise check.
func TestEquivalenceWorkerSweep(t *testing.T) {
	build := randomModel(17)
	ref, err := build().Solve(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8, -1} {
		r, err := build().Solve(Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.Status != ref.Status {
			t.Fatalf("workers=%d: status %v, want %v", workers, r.Status, ref.Status)
		}
		if ref.Status == Optimal && math.Abs(r.Obj-ref.Obj) > equivTol {
			t.Fatalf("workers=%d: obj %v, want %v", workers, r.Obj, ref.Obj)
		}
	}
}
