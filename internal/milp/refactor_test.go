package milp

import (
	"math"
	"testing"

	"columbas/internal/lp"
)

// TestRefactorIntervalEquivalence runs seeded random MILPs through the
// full branch-and-bound stack twice: once on the default eta-update
// kernel (B⁻¹ carried across pivots and solves, periodic refactorization
// only) and once refactorizing after every single pivot — the drift-free
// reference. Statuses and objectives must agree, pinning that the
// product-form updates introduce no solver-visible numerical error.
func TestRefactorIntervalEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		build := randomModel(seed)
		ref, err := build().Solve(Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d (default interval): %v", seed, err)
		}
		prev := lp.SetRefactorInterval(1)
		r, err := build().Solve(Options{Workers: 1})
		lp.SetRefactorInterval(prev)
		if err != nil {
			t.Fatalf("seed %d (interval 1): %v", seed, err)
		}
		if r.Status != ref.Status {
			t.Fatalf("seed %d: interval-1 status %v, default %v", seed, r.Status, ref.Status)
		}
		if ref.Status == Optimal && math.Abs(r.Obj-ref.Obj) > equivTol {
			t.Fatalf("seed %d: interval-1 obj %v, default %v", seed, r.Obj, ref.Obj)
		}
		checkStatsConsistent(t, ref.Stats, 1)
	}
}
