package milp

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// hardKnapsack builds a symmetric knapsack large enough that branch and
// bound cannot finish within a few milliseconds.
func hardKnapsack(n int) *Model {
	m := NewModel()
	cap := NewExpr()
	obj := NewExpr()
	for i := 0; i < n; i++ {
		v := m.Binary("v")
		cap.Add(v, float64(3+i%7))
		obj.Add(v, -float64(5+i%11))
	}
	m.AddLE(cap, float64(n)*5/4)
	m.Minimize(obj)
	return m
}

// TestConcurrentSolveSharedModel runs many parallel Solve calls against
// ONE shared Model. Solve must not mutate the model (each worker explores
// on a private clone), so under -race this is the shared-state proof for
// the whole solver stack.
func TestConcurrentSolveSharedModel(t *testing.T) {
	m := NewModel()
	a, b, c := m.Binary("a"), m.Binary("b"), m.Binary("c")
	x := m.Var("x", 0, 4)
	m.AddLE(NewExpr().Add(a, 6).Add(b, 5).Add(c, 4).Add(x, 1), 12)
	m.Minimize(NewExpr().Add(a, -9).Add(b, -7).Add(c, -5).Add(x, -1))

	const goroutines = 8
	objs := make([]float64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := m.Solve(Options{Workers: 1 + g%3})
			if err != nil {
				errs[g] = err
				return
			}
			if r.Status != Optimal {
				t.Errorf("goroutine %d: status %v", g, r.Status)
			}
			objs[g] = r.Obj
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if math.Abs(objs[g]-objs[0]) > 1e-6 {
			t.Fatalf("objective diverged across concurrent solves: %v", objs)
		}
	}
	// The model's bounds must be untouched afterwards.
	for _, v := range []VarID{a, b, c} {
		if lo, hi := m.Bounds(v); lo != 0 || hi != 1 {
			t.Fatalf("binary bounds mutated: [%v,%v]", lo, hi)
		}
	}
	if lo, hi := m.Bounds(x); lo != 0 || hi != 4 {
		t.Fatalf("continuous bounds mutated: [%v,%v]", lo, hi)
	}
}

// TestParallelDeadlineStopsWorkers proves cancellation: a parallel solve
// under a short time limit must return promptly AND leave no worker
// goroutines behind.
func TestParallelDeadlineStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	m := hardKnapsack(48)
	start := time.Now()
	r, err := m.Solve(Options{Workers: 8, TimeLimit: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// The LP deadline fires on a 64-iteration cadence inside the simplex,
	// so allow generous slack over the nominal 100ms — but nothing close
	// to what an unbounded search would take.
	if elapsed > 10*time.Second {
		t.Fatalf("deadline ignored: solve took %v", elapsed)
	}
	if r.Status == Optimal && elapsed > time.Second {
		t.Fatalf("optimal after %v on a model meant to exceed the budget", elapsed)
	}
	// Solve joins its workers before returning, so the goroutine count
	// must settle back to the baseline (poll briefly: the runtime may lag
	// reclaiming exited goroutines).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelNodeLimitKeepsIncumbent mirrors the sequential node-limit
// contract with a worker pool: a seeded incumbent must survive.
func TestParallelNodeLimitKeepsIncumbent(t *testing.T) {
	m := NewModel()
	a, b := m.Binary("a"), m.Binary("b")
	m.AddLE(Sum(a, b), 1)
	m.Minimize(NewExpr().Add(a, -3).Add(b, -2))
	r, err := m.Solve(Options{Workers: 4, Start: []float64{0, 1}, NodeLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Obj > -2+1e-9 {
		t.Fatalf("obj = %v, incumbent lost", r.Obj)
	}
}

// TestParallelStallLimit terminates a budgeted parallel search by stall,
// the termination mode the layout flow actually uses.
func TestParallelStallLimit(t *testing.T) {
	m := hardKnapsack(36)
	r, err := m.Solve(Options{Workers: 4, StallLimit: 50, TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.X == nil {
		t.Fatalf("stall-limited search returned no incumbent (status %v)", r.Status)
	}
	if r.Status != Feasible && r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
}

// TestParallelUnbounded: the unbounded-relaxation escape hatch must work
// from a worker pool too.
func TestParallelUnbounded(t *testing.T) {
	m := NewModel()
	x := m.Var("x", 0, math.Inf(1))
	m.Minimize(T(x, -1))
	r, err := m.Solve(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

// TestWorkersDefaulting: 0 means sequential, negative means GOMAXPROCS;
// both must solve correctly.
func TestWorkersDefaulting(t *testing.T) {
	for _, workers := range []int{0, -1} {
		m := NewModel()
		a, b := m.Binary("a"), m.Binary("b")
		m.AddLE(Sum(a, b), 1)
		m.Minimize(NewExpr().Add(a, -3).Add(b, -2))
		r, err := m.Solve(Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Optimal || math.Abs(r.Obj+3) > 1e-6 {
			t.Fatalf("workers=%d: status=%v obj=%v", workers, r.Status, r.Obj)
		}
	}
}
