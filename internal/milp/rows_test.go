package milp

import (
	"math"
	"testing"

	"columbas/internal/lp"
)

// TestModelRows pins the read-only Rows() walker against NumRows() and
// the lp layer's per-row accessor: same count, and per row the same
// terms, sense and right-hand side — including the constant folding
// AddLE/AddGE/AddEQ perform and the group-sum row MarkDisjunction adds.
func TestModelRows(t *testing.T) {
	m := NewModel()
	x := m.Var("x", 0, 10)
	y := m.Int("y", -2, 7)
	a, b := m.Binary("a"), m.Binary("b")
	m.AddLE(NewExpr().Add(x, 2).Add(y, -1).AddConst(3), 8) // 2x - y <= 5
	m.AddGE(NewExpr().Add(y, 1).Add(a, 4), -2)
	m.AddEQ(NewExpr().Add(x, 1).Add(x, 1), 6) // merged to 2x = 6
	m.MarkDisjunction([]VarID{a, b})          // adds a + b = 1

	rows := m.Rows()
	if len(rows) != m.NumRows() {
		t.Fatalf("Rows() returned %d rows, NumRows() = %d", len(rows), m.NumRows())
	}
	if m.NumRows() != 4 {
		t.Fatalf("NumRows() = %d, want 4", m.NumRows())
	}
	for i, r := range rows {
		terms, sense, rhs := m.prob.Row(i)
		if r.Sense != sense || r.RHS != rhs {
			t.Fatalf("row %d: Rows() gave (%v, %v), lp layer has (%v, %v)",
				i, r.Sense, r.RHS, sense, rhs)
		}
		if len(r.Terms) != len(terms) {
			t.Fatalf("row %d: %d terms vs lp's %d", i, len(r.Terms), len(terms))
		}
		for k := range terms {
			if r.Terms[k] != terms[k] {
				t.Fatalf("row %d term %d: %+v vs lp's %+v", i, k, r.Terms[k], terms[k])
			}
		}
	}
	// Spot-check the folded constants and senses.
	if rows[0].Sense != lp.LE || rows[0].RHS != 5 {
		t.Fatalf("row 0: got %v %v, want <= 5", rows[0].Sense, rows[0].RHS)
	}
	if rows[2].Sense != lp.EQ || rows[2].RHS != 6 {
		t.Fatalf("row 2: got %v %v, want = 6", rows[2].Sense, rows[2].RHS)
	}
	if len(rows[2].Terms) != 1 || rows[2].Terms[0].Coef != 2 {
		t.Fatalf("row 2: terms %+v, want the merged single 2x term", rows[2].Terms)
	}
	if rows[3].Sense != lp.EQ || rows[3].RHS != 1 {
		t.Fatalf("disjunction row: got %v %v, want = 1", rows[3].Sense, rows[3].RHS)
	}

	// Integrality and objective accessors used by the same walkers.
	if m.IsInt(x) || !m.IsInt(y) || !m.IsInt(a) {
		t.Fatalf("IsInt: x=%v y=%v a=%v, want false true true", m.IsInt(x), m.IsInt(y), m.IsInt(a))
	}
	m.Minimize(NewExpr().Add(x, 1.5).Add(y, -2).AddConst(7))
	if got := m.ObjCoef(x); got != 1.5 {
		t.Fatalf("ObjCoef(x) = %v, want 1.5", got)
	}
	if got := m.ObjCoef(a); got != 0 {
		t.Fatalf("ObjCoef(a) = %v, want 0", got)
	}
	if got := m.ObjConst(); got != 7 {
		t.Fatalf("ObjConst() = %v, want 7", got)
	}
	if lo, hi := m.Bounds(y); lo != -2 || hi != 7 {
		t.Fatalf("Bounds(y) = [%v, %v], want [-2, 7]", lo, hi)
	}
}

// TestVarByName pins the name↔VarID round trip: every declared name maps
// back to its VarID, duplicates resolve to the first declaration, and
// unknown names report absence.
func TestVarByName(t *testing.T) {
	m := NewModel()
	x := m.Var("x", 0, 1)
	y := m.Int("y", 0, 3)
	dup1 := m.Binary("dup")
	dup2 := m.Binary("dup")
	for _, v := range []VarID{x, y, dup1} {
		got, ok := m.VarByName(m.Name(v))
		if !ok || got != v {
			t.Fatalf("VarByName(%q) = (%v, %v), want (%v, true)", m.Name(v), got, ok, v)
		}
	}
	if got, ok := m.VarByName("dup"); !ok || got != dup1 {
		t.Fatalf("VarByName(dup) = (%v, %v), want first declaration %v", got, ok, dup1)
	}
	if got := m.Name(dup2); got != "dup" {
		t.Fatalf("Name(dup2) = %q, want dup", got)
	}
	if _, ok := m.VarByName("nope"); ok {
		t.Fatal("VarByName(nope) reported a hit")
	}
	// The accessors stay coherent after a solve (Rows/ObjCoef feed the
	// MPS writer, which runs on solved and unsolved models alike).
	m.AddLE(Sum(x, y), 2)
	m.Minimize(NewExpr().Add(y, -1))
	r, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Obj-(-2)) > 1e-6 {
		t.Fatalf("solve: %v obj %v, want optimal -2", r.Status, r.Obj)
	}
	if got, ok := m.VarByName("y"); !ok || got != y {
		t.Fatalf("VarByName(y) after solve = (%v, %v)", got, ok)
	}
}
