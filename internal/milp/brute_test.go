package milp

import (
	"math"
	"math/rand"
	"testing"
)

// TestBranchAndBoundMatchesBruteForce cross-checks the solver against
// exhaustive enumeration on random small binary programs: for every
// assignment of the binaries, the continuous part is empty, so the
// optimum is the best feasible assignment.
func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		nv := 2 + rng.Intn(8) // up to 10 binaries
		nr := 1 + rng.Intn(5)
		m := NewModel()
		var vars []VarID
		for i := 0; i < nv; i++ {
			vars = append(vars, m.Binary("b"))
		}
		type row struct {
			coef []float64
			rhs  float64
			ge   bool
		}
		var rows []row
		for r := 0; r < nr; r++ {
			rw := row{coef: make([]float64, nv)}
			e := NewExpr()
			for i := 0; i < nv; i++ {
				c := float64(rng.Intn(9) - 4)
				rw.coef[i] = c
				if c != 0 {
					e.Add(vars[i], c)
				}
			}
			rw.rhs = float64(rng.Intn(7) - 2)
			rw.ge = rng.Intn(2) == 0
			if rw.ge {
				m.AddGE(e, rw.rhs)
			} else {
				m.AddLE(e, rw.rhs)
			}
			rows = append(rows, rw)
		}
		costs := make([]float64, nv)
		obj := NewExpr()
		for i := 0; i < nv; i++ {
			costs[i] = float64(rng.Intn(11) - 5)
			obj.Add(vars[i], costs[i])
		}
		m.Minimize(obj)

		// Brute force.
		best := math.Inf(1)
		feasible := false
		for mask := 0; mask < 1<<nv; mask++ {
			ok := true
			for _, rw := range rows {
				lhs := 0.0
				for i := 0; i < nv; i++ {
					if mask>>i&1 == 1 {
						lhs += rw.coef[i]
					}
				}
				if rw.ge && lhs < rw.rhs-1e-9 {
					ok = false
					break
				}
				if !rw.ge && lhs > rw.rhs+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			feasible = true
			val := 0.0
			for i := 0; i < nv; i++ {
				if mask>>i&1 == 1 {
					val += costs[i]
				}
			}
			if val < best {
				best = val
			}
		}

		res, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: solver says %v, brute force says infeasible", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (brute force best %v)", trial, res.Status, best)
		}
		if math.Abs(res.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: solver obj %v, brute force %v", trial, res.Obj, best)
		}
	}
}

// TestGroupBranchingMatchesPlain verifies the disjunction-aware branching
// is exact: both branching strategies must agree with each other on models
// with marked groups.
func TestGroupBranchingMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		build := func() *Model {
			rl := rand.New(rand.NewSource(int64(trial)))
			m := NewModel()
			// Three intervals on a line, pairwise disjoint, minimise span.
			n := 3
			w := make([]float64, n)
			var xs []VarID
			span := m.Var("span", 0, 100)
			for i := 0; i < n; i++ {
				w[i] = float64(2 + rl.Intn(5))
				x := m.Var("x", 0, 100)
				xs = append(xs, x)
				m.AddLE(NewExpr().Add(x, 1).AddConst(w[i]).Add(span, -1), 0)
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					q1, q2 := m.Binary("q1"), m.Binary("q2")
					m.AddLE(NewExpr().Add(xs[i], 1).AddConst(w[i]).Add(xs[j], -1).Add(q1, -1000), 0)
					m.AddLE(NewExpr().Add(xs[j], 1).AddConst(w[j]).Add(xs[i], -1).Add(q2, -1000), 0)
					m.MarkDisjunction([]VarID{q1, q2})
				}
			}
			m.Minimize(T(span, 1))
			return m
		}
		_ = rng
		r1, err := build().Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := build().Solve(Options{NoGroupBranching: true})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Status != Optimal || r2.Status != Optimal {
			t.Fatalf("trial %d: statuses %v/%v", trial, r1.Status, r2.Status)
		}
		if math.Abs(r1.Obj-r2.Obj) > 1e-6 {
			t.Fatalf("trial %d: group %v vs plain %v", trial, r1.Obj, r2.Obj)
		}
	}
}

// TestMixedIntegerMatchesBruteForce extends the cross-check to models
// with continuous variables: enumerate every binary assignment, solve the
// continuous remainder as an LP, and compare against branch and bound.
func TestMixedIntegerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nb := 1 + rng.Intn(5) // binaries
		nc := 1 + rng.Intn(3) // continuous
		type rowSpec struct {
			bCoef []float64
			cCoef []float64
			rhs   float64
			ge    bool
		}
		nr := 1 + rng.Intn(4)
		rows := make([]rowSpec, nr)
		bCost := make([]float64, nb)
		cCost := make([]float64, nc)
		for i := range bCost {
			bCost[i] = float64(rng.Intn(9) - 4)
		}
		for i := range cCost {
			cCost[i] = float64(rng.Intn(5)-2)/2 + 0.5 // keep continuous bounded-relevant
		}
		for r := range rows {
			rows[r].bCoef = make([]float64, nb)
			rows[r].cCoef = make([]float64, nc)
			for i := range rows[r].bCoef {
				rows[r].bCoef[i] = float64(rng.Intn(7) - 3)
			}
			for i := range rows[r].cCoef {
				rows[r].cCoef[i] = float64(rng.Intn(5) - 2)
			}
			rows[r].rhs = float64(rng.Intn(9) - 2)
			rows[r].ge = rng.Intn(2) == 0
		}

		build := func() (*Model, []VarID, []VarID) {
			m := NewModel()
			var bs, cs []VarID
			for i := 0; i < nb; i++ {
				bs = append(bs, m.Binary("b"))
			}
			for i := 0; i < nc; i++ {
				cs = append(cs, m.Var("x", 0, 5))
			}
			for _, r := range rows {
				e := NewExpr()
				for i, c := range r.bCoef {
					e.Add(bs[i], c)
				}
				for i, c := range r.cCoef {
					e.Add(cs[i], c)
				}
				if r.ge {
					m.AddGE(e, r.rhs)
				} else {
					m.AddLE(e, r.rhs)
				}
			}
			obj := NewExpr()
			for i := range bs {
				obj.Add(bs[i], bCost[i])
			}
			for i := range cs {
				obj.Add(cs[i], cCost[i])
			}
			m.Minimize(obj)
			return m, bs, cs
		}

		// Brute force: fix each binary assignment, LP-solve the rest.
		best := math.Inf(1)
		feasible := false
		for mask := 0; mask < 1<<nb; mask++ {
			m, bs, _ := build()
			for i := 0; i < nb; i++ {
				m.Fix(bs[i], float64(mask>>i&1))
			}
			r, err := m.Solve(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if r.Status == Optimal {
				feasible = true
				if r.Obj < best {
					best = r.Obj
				}
			}
		}

		m, _, _ := build()
		res, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: status %v, brute force infeasible", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal (best %v)", trial, res.Status, best)
		}
		if math.Abs(res.Obj-best) > 1e-5 {
			t.Fatalf("trial %d: obj %v vs brute %v", trial, res.Obj, best)
		}
	}
}
