package milp

import "time"

// SearchStats is the per-solve counter set of the branch-and-bound worker
// pool, returned in Result.Stats and documented counter by counter in
// docs/metrics.md. Counters with a single writer (per-worker work totals)
// are plain fields aggregated after the pool joins; the few shared ones
// are maintained with atomic adds or under the frontier mutex, so
// collection adds no measurable overhead to the search hot path.
type SearchStats struct {
	// Workers is the pool size the solve actually ran with.
	Workers int
	// NodesExplored counts nodes popped from the frontier and handed to a
	// worker for expansion (each costs exactly one LP relaxation solve).
	NodesExplored int64
	// NodesPruned counts nodes popped but discarded before their LP was
	// solved because their bound was already dominated by the incumbent.
	NodesPruned int64
	// NodesCutoff counts nodes whose LP relaxation was solved and then
	// discarded because the relaxation objective was dominated by the
	// incumbent (work the pruning could not avoid).
	NodesCutoff int64
	// InFlightHighWater is the maximum number of nodes that were being
	// expanded concurrently — ≤ Workers; below it, the frontier starved.
	InFlightHighWater int
	// LPSolves counts LP relaxation solves across all workers, including
	// rounding-heuristic re-solves, basis refreshes and the root cut
	// loop's separation solves: LPSolves = NodesExplored +
	// RoundingAttempts + BasisRefreshes + CutRounds (the conservation
	// identity TestSearchStatsConservation pins for both sequential and
	// parallel runs).
	LPSolves int64
	// SimplexPivots is the total simplex iterations (phase 1 + 2) behind
	// LPSolves — the solver's innermost unit of work.
	SimplexPivots int64
	// WarmStarts counts LP solves that re-entered the simplex from the
	// parent node's basis instead of a full two-phase cold start, and
	// ColdSolves the rest (the root, rounding re-solves, and fallbacks):
	// LPSolves = WarmStarts + ColdSolves is the warm-start conservation
	// identity (pinned alongside the node identity by the stats tests).
	WarmStarts int64
	ColdSolves int64
	// WarmStartFallbacks counts warm attempts abandoned for a cold
	// re-solve (singular or stale parent basis); they are included in
	// ColdSolves.
	WarmStartFallbacks int64
	// WarmPivots / ColdPivots split SimplexPivots by path:
	// SimplexPivots = WarmPivots + ColdPivots.
	WarmPivots int64
	ColdPivots int64
	// Phase1Rows accumulates the constraint-row count over every
	// artificial phase-1 run — the work warm starts exist to skip. Warm
	// solves contribute zero.
	Phase1Rows int64
	// EtaUpdates counts the product-form updates applied to B⁻¹ — one per
	// basis-changing simplex pivot. EtaUpdates ≤ SimplexPivots always
	// holds (bound-flip iterations change no basis).
	EtaUpdates int64
	// Refactorizations counts from-scratch Gauss-Jordan rebuilds of B⁻¹:
	// warm-start installs that missed the per-worker factorization cache
	// plus the counted periodic refactorizations that flush eta-update
	// drift.
	Refactorizations int64
	// WorkspaceReuses counts LP solves that skipped factorization
	// entirely because the worker's workspace already held B⁻¹ for
	// exactly the requested basis — the steady-state parent→child case.
	// WorkspaceReuses ≤ WarmStarts always holds.
	WorkspaceReuses int64
	// SparseRefactorizations is the share of Refactorizations performed by
	// the sparse LU engine (Markowitz-ordered factorize instead of a dense
	// Gauss-Jordan inverse): Refactorizations = SparseRefactorizations +
	// dense refactorizations, so SparseRefactorizations ≤ Refactorizations
	// always holds, with equality in pure sparse-mode runs that never trip
	// the fill guard, and zero in dense-mode runs.
	SparseRefactorizations int64
	// DenseFallbacks counts sparse factorization attempts abandoned to the
	// dense engine because LU fill-in exceeded the fill guard; at most one
	// fallback can happen per LP solve, so DenseFallbacks ≤ LPSolves.
	// Dense-mode runs report zero.
	DenseFallbacks int64
	// FillIn accumulates, over every sparse refactorization, the entries
	// the LU factors hold beyond the basis's own nonzeros — the memory
	// price of factorizing. FillIn/SparseRefactorizations is the mean
	// fill per refactorization the scaling benchmark tracks.
	FillIn int64
	// BasisNonzeros is the high-water basis-matrix nonzero count observed
	// at factorization time (either engine) — the m-by-m basis's actual
	// density, the quantity the dense/sparse dispatch heuristic bets on.
	// A high-water mark: Merge takes the max, not the sum.
	BasisNonzeros int64
	// RootBoundsFixed counts integer-variable bounds tightened by
	// reduced-cost fixing after the root relaxation.
	RootBoundsFixed int64
	// IncumbentUpdates counts installed incumbents (seed acceptance
	// excluded; rounding hits and integer-feasible nodes included).
	IncumbentUpdates int64
	// RoundingAttempts / RoundingHits count the cold-start rounding
	// heuristic's re-solves and how many produced an improving incumbent.
	RoundingAttempts int64
	RoundingHits     int64
	// BasisRefreshes counts full-tableau re-solves of a node whose
	// relaxation was answered by the presolver (which carries no basis)
	// but which is about to branch — the children need a basis to
	// warm-start from. Together with nodes, rounding and the root cut
	// loop these account for every LP solve: LPSolves = NodesExplored +
	// RoundingAttempts + BasisRefreshes + CutRounds.
	BasisRefreshes int64
	// NodesPresolved counts nodes discarded by node presolve: their local
	// bounds were proven infeasible by activity propagation before any
	// simplex work was spent. Such nodes never reach the LP, so they are
	// excluded from NodesExplored and the LP-solve conservation identity
	// stays exact.
	NodesPresolved int64
	// BoundsTightened counts variable bounds tightened by activity-based
	// presolve, at the root (to a fixpoint) and at nodes (local
	// propagation of the branch's bound changes).
	BoundsTightened int64
	// RowsRemoved counts constraint rows dropped at the root because the
	// base bounds prove them redundant (never violable).
	RowsRemoved int64
	// CoefsStrengthened counts binary-variable coefficients tightened by
	// the root's coefficient-strengthening pass.
	CoefsStrengthened int64
	// CutsAdded counts the Gomory and knapsack cover cuts appended to the
	// root problem; CutRounds counts the separation loop's LP solves (one
	// per round, including the final round that separated nothing), which
	// is exactly the root-preparation term of the LP-solve conservation
	// identity.
	CutsAdded int64
	CutRounds int64
	// Branchings counts branch decisions taken; every one is a k-way
	// group branch, a pseudocost branch, or a most-fractional reliability
	// fallback, so Branchings = GroupBranches + PseudocostBranches +
	// ReliabilityFallbacks is the branching conservation identity.
	// Ablation runs with Branching=mostfrac count every variable branch
	// as a fallback (the fallback IS the most-fractional rule).
	Branchings           int64
	GroupBranches        int64
	PseudocostBranches   int64
	ReliabilityFallbacks int64
	// DeltaWarmStarts / DeltaFallbacks / IncumbentFromHint are the
	// delta-aware pipeline's counters. The search itself never writes
	// them: the layout layer increments them on the merged per-solve stats
	// when a caller-provided warm hint (a donor design's geometry, active
	// disjunction pairs and root basis) was applied to a separation round
	// (DeltaWarmStarts), when a hint was present but nothing in it was
	// usable (DeltaFallbacks), or when the donor's geometry vector
	// survived validation and became the round's starting incumbent
	// (IncumbentFromHint). Identities: IncumbentFromHint ≤
	// DeltaWarmStarts, and per layout solve DeltaWarmStarts +
	// DeltaFallbacks ≤ separation rounds; all three are zero when no hint
	// was supplied.
	DeltaWarmStarts   int64
	DeltaFallbacks    int64
	IncumbentFromHint int64
	// Interrupted reports that the search was halted by Options.Interrupt
	// (an external cancellation, e.g. an HTTP client disconnect) rather
	// than running to a status or budget of its own. Merge ORs it across
	// rounds, so a layout-level SolveStats.Search.Interrupted proves the
	// cancellation actually reached the solver.
	Interrupted bool
	// Wall is the solve's wall-clock time (same value as Result.Runtime).
	Wall time.Duration
	// PerWorker holds one entry per pool worker, indexed by worker id.
	PerWorker []WorkerStats
}

// WorkerStats is one worker's share of the search.
type WorkerStats struct {
	// Nodes is the number of nodes this worker expanded.
	Nodes int64
	// LPSolves and Pivots are the worker's private-LP work totals.
	LPSolves int64
	Pivots   int64
	// WarmStarts / WarmFallbacks / WarmPivots / Phase1Rows are the
	// worker's share of the warm-start counters (see SearchStats).
	WarmStarts    int64
	WarmFallbacks int64
	WarmPivots    int64
	Phase1Rows    int64
	// EtaUpdates / Refactorizations / WorkspaceReuses /
	// SparseRefactorizations / DenseFallbacks / FillIn are the worker's
	// share of the kernel memory-model counters, and BasisNonzeros the
	// worker's own factorization-time high-water mark (see SearchStats).
	EtaUpdates             int64
	Refactorizations       int64
	WorkspaceReuses        int64
	SparseRefactorizations int64
	DenseFallbacks         int64
	FillIn                 int64
	BasisNonzeros          int64
	// Busy is the wall-clock time the worker spent expanding nodes (LP
	// solves included); Busy/Wall is the worker's utilization.
	Busy time.Duration
}

// Utilization returns the fraction of wall this worker spent expanding
// nodes (0 when wall is 0).
func (w WorkerStats) Utilization(wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	u := float64(w.Busy) / float64(wall)
	if u > 1 {
		u = 1
	}
	return u
}

// Merge accumulates other into st: counters add, high-water marks take
// the maximum, and per-worker entries add index-wise (padding when the
// worker counts differ). layout's lazy-separation loop uses it to report
// one SearchStats across all separation rounds.
func (st *SearchStats) Merge(other SearchStats) {
	if other.Workers > st.Workers {
		st.Workers = other.Workers
	}
	st.NodesExplored += other.NodesExplored
	st.NodesPruned += other.NodesPruned
	st.NodesCutoff += other.NodesCutoff
	if other.InFlightHighWater > st.InFlightHighWater {
		st.InFlightHighWater = other.InFlightHighWater
	}
	st.LPSolves += other.LPSolves
	st.SimplexPivots += other.SimplexPivots
	st.WarmStarts += other.WarmStarts
	st.ColdSolves += other.ColdSolves
	st.WarmStartFallbacks += other.WarmStartFallbacks
	st.WarmPivots += other.WarmPivots
	st.ColdPivots += other.ColdPivots
	st.Phase1Rows += other.Phase1Rows
	st.EtaUpdates += other.EtaUpdates
	st.Refactorizations += other.Refactorizations
	st.WorkspaceReuses += other.WorkspaceReuses
	st.SparseRefactorizations += other.SparseRefactorizations
	st.DenseFallbacks += other.DenseFallbacks
	st.FillIn += other.FillIn
	if other.BasisNonzeros > st.BasisNonzeros {
		st.BasisNonzeros = other.BasisNonzeros
	}
	st.RootBoundsFixed += other.RootBoundsFixed
	st.IncumbentUpdates += other.IncumbentUpdates
	st.RoundingAttempts += other.RoundingAttempts
	st.RoundingHits += other.RoundingHits
	st.BasisRefreshes += other.BasisRefreshes
	st.NodesPresolved += other.NodesPresolved
	st.BoundsTightened += other.BoundsTightened
	st.RowsRemoved += other.RowsRemoved
	st.CoefsStrengthened += other.CoefsStrengthened
	st.CutsAdded += other.CutsAdded
	st.CutRounds += other.CutRounds
	st.Branchings += other.Branchings
	st.GroupBranches += other.GroupBranches
	st.PseudocostBranches += other.PseudocostBranches
	st.ReliabilityFallbacks += other.ReliabilityFallbacks
	st.DeltaWarmStarts += other.DeltaWarmStarts
	st.DeltaFallbacks += other.DeltaFallbacks
	st.IncumbentFromHint += other.IncumbentFromHint
	st.Interrupted = st.Interrupted || other.Interrupted
	st.Wall += other.Wall
	for len(st.PerWorker) < len(other.PerWorker) {
		st.PerWorker = append(st.PerWorker, WorkerStats{})
	}
	for i, w := range other.PerWorker {
		st.PerWorker[i].Nodes += w.Nodes
		st.PerWorker[i].LPSolves += w.LPSolves
		st.PerWorker[i].Pivots += w.Pivots
		st.PerWorker[i].WarmStarts += w.WarmStarts
		st.PerWorker[i].WarmFallbacks += w.WarmFallbacks
		st.PerWorker[i].WarmPivots += w.WarmPivots
		st.PerWorker[i].Phase1Rows += w.Phase1Rows
		st.PerWorker[i].EtaUpdates += w.EtaUpdates
		st.PerWorker[i].Refactorizations += w.Refactorizations
		st.PerWorker[i].WorkspaceReuses += w.WorkspaceReuses
		st.PerWorker[i].SparseRefactorizations += w.SparseRefactorizations
		st.PerWorker[i].DenseFallbacks += w.DenseFallbacks
		st.PerWorker[i].FillIn += w.FillIn
		if w.BasisNonzeros > st.PerWorker[i].BasisNonzeros {
			st.PerWorker[i].BasisNonzeros = w.BasisNonzeros
		}
		st.PerWorker[i].Busy += w.Busy
	}
}
