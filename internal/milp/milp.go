package milp

import (
	"fmt"
	"math"
	"time"

	"columbas/internal/lp"
)

// VarID identifies a model variable.
type VarID int

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	// Optimal: proven optimal integer solution.
	Optimal Status = iota
	// Feasible: integer solution found but optimality not proven before a
	// node or time budget expired.
	Feasible
	// Infeasible: no integer-feasible point exists.
	Infeasible
	// Unbounded: the relaxation is unbounded below.
	Unbounded
	// Limit: budget exhausted with no integer solution found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return "unknown"
}

// Expr is a linear expression Σ coefᵢ·varᵢ + Const, built incrementally.
type Expr struct {
	Terms []lp.Term
	Const float64
}

// NewExpr returns an empty expression.
func NewExpr() *Expr { return &Expr{} }

// Add appends coef·v to the expression and returns it for chaining.
func (e *Expr) Add(v VarID, coef float64) *Expr {
	e.Terms = append(e.Terms, lp.Term{Var: int(v), Coef: coef})
	return e
}

// AddConst adds a constant offset to the expression.
func (e *Expr) AddConst(c float64) *Expr {
	e.Const += c
	return e
}

// AddExpr appends all terms of f (including its constant).
func (e *Expr) AddExpr(f *Expr) *Expr {
	e.Terms = append(e.Terms, f.Terms...)
	e.Const += f.Const
	return e
}

// Sum builds an expression Σ 1·vᵢ.
func Sum(vs ...VarID) *Expr {
	e := NewExpr()
	for _, v := range vs {
		e.Add(v, 1)
	}
	return e
}

// T builds a single-term expression coef·v.
func T(v VarID, coef float64) *Expr { return NewExpr().Add(v, coef) }

// Model is a MILP under construction.
type Model struct {
	prob   *lp.Problem
	names  []string
	byName map[string]VarID // first variable declared under each name
	isInt  []bool
	groups [][]VarID // disjunction groups: exactly one member is 0
	objSet bool
	objC   float64 // constant part of the objective
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{prob: lp.NewProblem(), byName: map[string]VarID{}} }

// NumVars returns the number of variables declared so far.
func (m *Model) NumVars() int { return len(m.names) }

// NumRows returns the number of constraints added so far.
func (m *Model) NumRows() int { return m.prob.NumRows() }

// NumInt returns the number of integer (incl. binary) variables.
func (m *Model) NumInt() int {
	n := 0
	for _, b := range m.isInt {
		if b {
			n++
		}
	}
	return n
}

// Var declares a continuous variable with bounds [lo, hi].
func (m *Model) Var(name string, lo, hi float64) VarID {
	return m.addVar(name, lo, hi, false)
}

// Binary declares a {0,1} variable.
func (m *Model) Binary(name string) VarID {
	return m.addVar(name, 0, 1, true)
}

// Int declares an integer variable with bounds [lo, hi].
func (m *Model) Int(name string, lo, hi float64) VarID {
	return m.addVar(name, lo, hi, true)
}

func (m *Model) addVar(name string, lo, hi float64, isInt bool) VarID {
	id := m.prob.AddVar(lo, hi, 0)
	m.names = append(m.names, name)
	m.isInt = append(m.isInt, isInt)
	if m.byName == nil {
		m.byName = map[string]VarID{}
	}
	if _, dup := m.byName[name]; !dup {
		m.byName[name] = VarID(id)
	}
	return VarID(id)
}

// Name returns the declared name of v.
func (m *Model) Name(v VarID) string { return m.names[v] }

// VarByName returns the variable declared under name. When several
// variables share a name (legal — the solver never looks at names) the
// first declaration wins. The second result is false when no variable of
// that name exists. Together with Name this is the name↔VarID round trip
// external model formats (internal/mps) rely on.
func (m *Model) VarByName(name string) (VarID, bool) {
	v, ok := m.byName[name]
	return v, ok
}

// IsInt reports whether v carries an integrality constraint (Int or
// Binary declaration).
func (m *Model) IsInt(v VarID) bool { return m.isInt[v] }

// ObjCoef returns the objective coefficient of v as set by the last
// Minimize call (0 before any).
func (m *Model) ObjCoef(v VarID) float64 { return m.prob.Cost(int(v)) }

// ObjConst returns the constant part of the objective as set by the last
// Minimize call (0 before any).
func (m *Model) ObjConst() float64 { return m.objC }

// Row is a read-only view of one constraint: Terms (sense) RHS. The
// terms slice aliases the model's live storage — callers must not modify
// it.
type Row struct {
	Terms []lp.Term
	Sense lp.Sense
	RHS   float64
}

// Rows returns read-only views of every constraint row in insertion
// order, including the group-sum rows MarkDisjunction adds. The views
// alias live storage: cheap to build, never to be mutated. Model walkers
// (the MPS writer, external format exporters) are the intended callers.
func (m *Model) Rows() []Row {
	rows := make([]Row, m.prob.NumRows())
	for i := range rows {
		terms, sense, rhs := m.prob.Row(i)
		rows[i] = Row{Terms: terms, Sense: sense, RHS: rhs}
	}
	return rows
}

// Bounds returns the current bounds of v.
func (m *Model) Bounds(v VarID) (lo, hi float64) { return m.prob.Bounds(int(v)) }

// SetBounds tightens or replaces the bounds of v.
func (m *Model) SetBounds(v VarID, lo, hi float64) { m.prob.SetBounds(int(v), lo, hi) }

// Fix pins v to a single value.
func (m *Model) Fix(v VarID, val float64) { m.prob.SetBounds(int(v), val, val) }

// AddLE adds the constraint e ≤ rhs.
func (m *Model) AddLE(e *Expr, rhs float64) { m.prob.AddConstraint(e.Terms, lp.LE, rhs-e.Const) }

// AddGE adds the constraint e ≥ rhs.
func (m *Model) AddGE(e *Expr, rhs float64) { m.prob.AddConstraint(e.Terms, lp.GE, rhs-e.Const) }

// AddEQ adds the constraint e = rhs.
func (m *Model) AddEQ(e *Expr, rhs float64) { m.prob.AddConstraint(e.Terms, lp.EQ, rhs-e.Const) }

// Minimize sets the objective to e (minimisation).
func (m *Model) Minimize(e *Expr) {
	costs := make(map[int]float64)
	for _, t := range e.Terms {
		costs[t.Var] += t.Coef
	}
	for v := 0; v < m.prob.NumVars(); v++ {
		m.prob.SetCost(v, costs[v])
	}
	m.objC = e.Const
	m.objSet = true
}

// MarkDisjunction registers a group of binaries of which exactly one must
// be 0 (the paper's q₁+q₂+q₃+q₄ = 3 pattern, constraint (5)). The sum
// constraint itself is added here. Branch-and-bound branches on the whole
// group at once.
func (m *Model) MarkDisjunction(vars []VarID) {
	for _, v := range vars {
		if !m.isInt[v] {
			panic(fmt.Sprintf("milp: disjunction member %s is not integer", m.names[v]))
		}
	}
	m.AddEQ(Sum(vars...), float64(len(vars)-1))
	g := make([]VarID, len(vars))
	copy(g, vars)
	m.groups = append(m.groups, g)
}

// BranchRule selects how the search picks a branching variable when no
// disjunction group takes priority (see Options.Branching).
type BranchRule int

const (
	// BranchPseudocost (the default) branches on the variable with the
	// best pseudocost score — the per-unit objective degradation each
	// branching direction has historically caused — falling back to the
	// most-fractional rule until a variable has enough observations in
	// both directions to be reliable.
	BranchPseudocost BranchRule = iota
	// BranchMostFractional always branches on the most fractional
	// integer variable — the pre-pseudocost rule, kept as the ablation
	// baseline (-branching=mostfrac).
	BranchMostFractional
)

func (r BranchRule) String() string {
	switch r {
	case BranchPseudocost:
		return "pseudocost"
	case BranchMostFractional:
		return "mostfrac"
	}
	return fmt.Sprintf("branchrule(%d)", int(r))
}

// ParseBranchRule maps a rule name to its BranchRule. The empty string
// selects the default (pseudocost); an unknown name is an error listing
// the valid names rather than a silent fallback.
func ParseBranchRule(name string) (BranchRule, error) {
	switch name {
	case "", "pseudocost":
		return BranchPseudocost, nil
	case "mostfrac":
		return BranchMostFractional, nil
	}
	return 0, fmt.Errorf("unknown branching rule %q (valid: pseudocost, mostfrac)", name)
}

// Options controls the branch-and-bound search.
type Options struct {
	// TimeLimit bounds wall-clock search time; 0 means no limit.
	TimeLimit time.Duration
	// Deadline is an absolute wall-clock bound on the search; the zero
	// value means no absolute bound. When both Deadline and TimeLimit are
	// set, the earlier one wins. The deadline is propagated into each
	// worker's LP so even a single oversized relaxation cannot overshoot
	// it.
	Deadline time.Time
	// Interrupt, when non-nil, aborts the search as soon as the channel
	// is closed (the conventional use is a context's Done channel).
	// Workers stop pulling nodes immediately; a worker mid-LP finishes
	// its current relaxation first unless Deadline also fires. The
	// result is assembled from whatever incumbent exists, exactly as for
	// a budget expiry, and Stats.Interrupted is set.
	Interrupt <-chan struct{}
	// NodeLimit bounds the number of explored nodes; 0 means no limit.
	NodeLimit int
	// Start, if non-nil, is a caller-provided integer-feasible assignment
	// (length NumVars) used as the initial incumbent after validation.
	Start []float64
	// RootBasis, if non-nil, warm-starts the root relaxation from a
	// caller-provided LP basis — typically Result.RootBasis of a previous
	// solve of a structurally similar model (the delta-aware pipeline's
	// donor). A basis whose dimensions do not match the prepared root
	// problem (different row count after presolve/cuts, different
	// variable count) is silently ignored by the LP kernel's
	// compatibility check, which falls back to a cold solve; when the
	// root cut loop produces its own basis, that one wins. Ignored under
	// NoWarmStart.
	RootBasis *lp.Basis
	// Gap is the relative optimality gap at which search stops early
	// (e.g. 0.01 for 1%). 0 means prove optimality.
	Gap float64
	// StallLimit, when positive, stops the search after this many nodes
	// without an incumbent improvement (once an incumbent exists). Big-M
	// placement models have weak relaxations whose gap rarely closes;
	// stalling out with a good incumbent is the practical termination.
	StallLimit int
	// NoGroupBranching disables the k-way disjunction branching and falls
	// back to plain binary branching (ablation).
	NoGroupBranching bool
	// NoCuts disables root-node cut separation — the Gomory and knapsack
	// cover cuts added to the root relaxation before workers start
	// (ablation; also the seed solver's behaviour).
	NoCuts bool
	// NoPresolve disables the search's presolve — root bound tightening,
	// redundant-row removal and coefficient strengthening, plus the
	// per-node bound propagation that discards infeasible nodes before
	// their LP (ablation).
	NoPresolve bool
	// Branching selects the variable branching rule; the zero value is
	// pseudocost branching with a most-fractional reliability fallback
	// (see BranchRule).
	Branching BranchRule
	// NoWarmStart disables LP basis reuse between parent and child nodes,
	// solving every relaxation cold from an artificial basis (ablation;
	// also the reference behaviour the solver-equivalence suite compares
	// against). Reduced-cost bound fixing at the root is disabled too,
	// since it needs the root basis's reduced costs.
	NoWarmStart bool
	// Kernel selects the LP basis engine every relaxation runs on:
	// KernelAuto (the zero value) picks dense or sparse per problem from
	// the size/density heuristic, KernelDense forces the explicit-inverse
	// engine, KernelSparse forces the LU-factorized one. Applied to every
	// worker clone, so the whole search runs on one engine choice.
	Kernel lp.Kernel
	// Workers is the number of branch-and-bound workers solving LP
	// relaxations concurrently. Each worker explores nodes from the
	// shared best-first frontier on a private copy of the problem and
	// prunes against the freshest incumbent bound. 0 or 1 runs the exact
	// sequential algorithm; a negative value uses runtime.GOMAXPROCS(0).
	//
	// Parallel runs are deterministic by objective: status and optimal
	// objective match the sequential solver (within tolerance), but the
	// returned variable assignment may differ on ties, and budget-limited
	// (Feasible/Limit) outcomes may vary with scheduling.
	Workers int
}

// Result is the outcome of a Solve.
type Result struct {
	Status  Status
	X       []float64
	Obj     float64 // objective of X (meaningful for Optimal/Feasible)
	Bound   float64 // best proven lower bound
	Nodes   int
	Runtime time.Duration
	// Stats is the solve's full counter set (Nodes and Runtime above are
	// retained as convenience aliases of Stats.NodesExplored/Stats.Wall).
	Stats SearchStats
	// RootBasis is the optimal LP basis of the root relaxation (the
	// final cut-loop basis when the root node itself was answered without
	// one), retained so a later solve of a similar model can warm-start
	// from it via Options.RootBasis. Nil when the root never reached an
	// optimal basis (infeasible, interrupted, presolved away).
	RootBasis *lp.Basis
}

// Value returns the solution value of v.
func (r *Result) Value(v VarID) float64 { return r.X[v] }

const intTol = 1e-6

type node struct {
	bound   float64 // parent LP objective (lower bound for the subtree)
	depth   int
	changes []boundChange
	parent  *node
	seq     int // insertion order for deterministic tie-breaking

	// basis is the parent's optimal LP basis (nil at the root). It is an
	// immutable snapshot shared by all siblings, so it travels safely
	// across worker handoffs: whichever worker pops this node warm-starts
	// its relaxation from the parent basis on its own Problem clone.
	basis *lp.Basis

	// Pseudocost bookkeeping: bVar is the variable whose two-way branch
	// created this node (-1 for the root and for k-way group children),
	// bUp whether this is the up child, and bDist the fractional distance
	// the branch moved that variable from the parent's relaxation value.
	// When this node's own LP solves, (objective gain)/bDist becomes one
	// pseudocost observation for bVar in direction bUp.
	bVar  int
	bUp   bool
	bDist float64
}

type boundChange struct {
	v      int
	lo, hi float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth // deeper first: dive toward incumbents
	}
	return h[i].seq > h[j].seq // LIFO among equals
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound and returns the best solution found. The
// search runs on opt.Workers concurrent workers (see Options.Workers);
// the model itself is never mutated, so concurrent Solve calls on one
// Model are safe as long as no variables, rows or bounds are added or
// changed while any solve is in flight.
func (m *Model) Solve(opt Options) (*Result, error) {
	if !m.objSet {
		m.Minimize(NewExpr()) // pure feasibility problem
	}
	return newSearch(m, opt).run()
}

// pickBranch selects a branching target given the relaxation solution.
// It prefers disjunction groups whose members are fractional; otherwise it
// returns the most fractional integer variable. Returns (-1, -1) when the
// solution is integer feasible.
func (m *Model) pickBranch(x []float64) (branchVar, branchGroup int) {
	// Disjunction groups first: a group is unresolved if no member is
	// (near-)zero while all are in bounds, or members are fractional.
	bestGroup, bestGroupScore := -1, 0.0
	for gi, g := range m.groups {
		score := 0.0
		resolved := false
		for _, v := range g {
			xv := x[v]
			if xv < intTol {
				resolved = true
				break
			}
			if f := frac(xv); f > intTol {
				score += f
			}
		}
		if !resolved && score > bestGroupScore {
			bestGroupScore = score
			bestGroup = gi
		}
	}
	if bestGroup >= 0 {
		return -1, bestGroup
	}
	return m.pickBranchVarOnly(x)
}

// pickBranchVarOnly returns the most fractional integer variable.
func (m *Model) pickBranchVarOnly(x []float64) (branchVar, branchGroup int) {
	bestVar, bestFrac := -1, intTol
	for v := 0; v < len(m.isInt); v++ {
		if !m.isInt[v] {
			continue
		}
		if f := frac(x[v]); f > bestFrac {
			// Most-fractional: prefer values near .5.
			d := math.Abs(f - 0.5)
			bd := math.Abs(bestFrac - 0.5)
			if bestVar < 0 || d < bd {
				bestVar = v
				bestFrac = f
			}
		}
	}
	return bestVar, -1
}

func frac(x float64) float64 {
	_, f := math.Modf(math.Abs(x))
	return math.Min(f, 1-f)
}

// tryRoundingOn fixes every integer variable to a rounded value — within
// each disjunction group the member with the smallest relaxation value
// goes to 0 and the rest to 1 — re-solves the LP for the continuous
// variables, and returns the resulting point when integer feasible.
// It operates on prob, a worker-private clone of the model's problem
// currently carrying the node bounds; those bounds are restored before
// returning.
func (m *Model) tryRoundingOn(prob *lp.Problem, x []float64) ([]float64, float64, bool) {
	nv := prob.NumVars()
	saveLo := make([]float64, nv)
	saveHi := make([]float64, nv)
	for v := 0; v < nv; v++ {
		saveLo[v], saveHi[v] = prob.Bounds(v)
	}
	defer func() {
		for v := 0; v < nv; v++ {
			prob.SetBounds(v, saveLo[v], saveHi[v])
		}
	}()
	inGroup := map[int]bool{}
	for _, g := range m.groups {
		zero := g[0]
		for _, v := range g {
			inGroup[int(v)] = true
			if x[v] < x[zero] {
				zero = v
			}
		}
		for _, v := range g {
			val := 1.0
			if v == zero {
				val = 0.0
			}
			lo, hi := saveLo[v], saveHi[v]
			if val < lo || val > hi {
				return nil, 0, false // branching already excluded this choice
			}
			prob.SetBounds(int(v), val, val)
		}
	}
	for v := 0; v < nv; v++ {
		if !m.isInt[v] || inGroup[v] {
			continue
		}
		val := math.Round(x[v])
		val = math.Max(val, saveLo[v])
		val = math.Min(val, saveHi[v])
		prob.SetBounds(v, val, val)
	}
	sol, err := prob.Solve()
	if err != nil || sol.Status != lp.Optimal {
		return nil, 0, false
	}
	cand := append([]float64(nil), sol.X...)
	// Validate against the ORIGINAL bounds (restore first via defer order:
	// verify manually here with the saved bounds).
	const ftol = 1e-5
	for v := 0; v < nv; v++ {
		if cand[v] < saveLo[v]-ftol || cand[v] > saveHi[v]+ftol {
			return nil, 0, false
		}
		if m.isInt[v] && frac(cand[v]) > intTol {
			return nil, 0, false
		}
	}
	if !prob.RowsSatisfied(cand, ftol) {
		return nil, 0, false
	}
	obj := m.objC
	for v := 0; v < nv; v++ {
		obj += prob.Cost(v) * cand[v]
	}
	return cand, obj, true
}

// CheckStart reports whether x is an integer-feasible assignment for the
// model (length, bounds, integrality, every constraint row) and returns
// its objective value when it is. It is exactly the validation Solve
// applies to Options.Start, exported so delta-aware callers can test a
// donor design's vector before offering it as a starting incumbent.
func (m *Model) CheckStart(x []float64) (bool, float64) { return m.checkFeasible(x) }

// checkFeasible verifies a candidate assignment against all constraints,
// bounds and integrality, returning its objective when feasible.
func (m *Model) checkFeasible(x []float64) (bool, float64) {
	if len(x) != m.prob.NumVars() {
		return false, 0
	}
	const ftol = 1e-5
	for v := 0; v < m.prob.NumVars(); v++ {
		lo, hi := m.prob.Bounds(v)
		if x[v] < lo-ftol || x[v] > hi+ftol {
			return false, 0
		}
		if m.isInt[v] && frac(x[v]) > intTol {
			return false, 0
		}
	}
	if !m.prob.RowsSatisfied(x, ftol) {
		return false, 0
	}
	obj := m.objC
	for v := 0; v < m.prob.NumVars(); v++ {
		obj += m.prob.Cost(v) * x[v]
	}
	return true, obj
}
