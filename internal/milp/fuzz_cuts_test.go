package milp

import (
	"math"
	"testing"

	"columbas/internal/lp"
)

// FuzzCutValidity pins the correctness contract of the search-tree
// reduction layer: every root cut and every presolved bound must be
// valid for EVERY integer-feasible point of the model — not just
// convenient ones. For a seeded random MILP the harness enumerates all
// integer assignments, completes each feasible one to its LP-optimal
// point, then runs the root reductions (rootPresolve + rootCutLoop via
// prepareRoot) on a fresh copy of the model and checks that each
// feasible point (a) lies inside the tightened baseLo/baseHi box and
// (b) satisfies every row of the reduced base problem, cut rows
// included. A violation means a reduction cut off a feasible integer
// point — exactly the bug class that silently degrades the optimum.

// bruteForcePoints enumerates every integer assignment of build()'s
// model and returns the LP-optimal completion of each feasible one.
func bruteForcePoints(t *testing.T, build func() *Model) [][]float64 {
	t.Helper()
	probe := build()
	type intVar struct {
		v      int
		lo, hi int
	}
	var ints []intVar
	combos := 1
	for v, isInt := range probe.isInt {
		if !isInt {
			continue
		}
		lo, hi := probe.prob.Bounds(v)
		iv := intVar{v: v, lo: int(math.Ceil(lo - equivTol)), hi: int(math.Floor(hi + equivTol))}
		if iv.hi < iv.lo {
			return nil
		}
		combos *= iv.hi - iv.lo + 1
		if combos > 1<<14 {
			t.Skipf("fixture too large for brute force: %d combos", combos)
		}
		ints = append(ints, iv)
	}
	var points [][]float64
	assign := make([]int, len(ints))
	var rec func(k int)
	rec = func(k int) {
		if k == len(ints) {
			m := build()
			for i, iv := range ints {
				m.Fix(VarID(iv.v), float64(assign[i]))
			}
			r, err := m.Solve(Options{})
			if err != nil {
				t.Fatalf("brute force LP: %v", err)
			}
			if r.Status == Optimal {
				points = append(points, append([]float64(nil), r.X...))
			}
			return
		}
		for val := ints[k].lo; val <= ints[k].hi; val++ {
			assign[k] = val
			rec(k + 1)
		}
	}
	rec(0)
	return points
}

func FuzzCutValidity(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 17, 42, 99, 1234, -5, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		build := randomModel(seed)
		points := bruteForcePoints(t, build)

		m := build()
		s := newSearch(m, Options{})
		s.prepareRoot()

		if len(points) > 0 && len(s.frontier) == 0 {
			t.Fatalf("seed %d: root reductions proved infeasibility but %d integer-feasible points exist",
				seed, len(points))
		}
		const tol = 1e-6
		for pi, x := range points {
			for v := range s.baseLo {
				if x[v] < s.baseLo[v]-tol || x[v] > s.baseHi[v]+tol {
					t.Fatalf("seed %d: presolved bounds exclude feasible point %d: x[%d]=%v outside [%v, %v]",
						seed, pi, v, x[v], s.baseLo[v], s.baseHi[v])
				}
			}
			for r := 0; r < s.baseProb.NumRows(); r++ {
				terms, sense, rhs := s.baseProb.Row(r)
				act := 0.0
				for _, tm := range terms {
					act += tm.Coef * x[tm.Var]
				}
				ftol := tol * math.Max(1, math.Abs(rhs))
				kind := "presolved"
				if s.cutRowStart >= 0 && r >= s.cutRowStart {
					kind = "cut"
				}
				switch sense {
				case lp.LE:
					if act > rhs+ftol {
						t.Fatalf("seed %d: %s row %d cuts off feasible point %d: %v ≤ %v violated by %g",
							seed, kind, r, pi, act, rhs, act-rhs)
					}
				case lp.GE:
					if act < rhs-ftol {
						t.Fatalf("seed %d: %s row %d cuts off feasible point %d: %v ≥ %v violated by %g",
							seed, kind, r, pi, act, rhs, rhs-act)
					}
				case lp.EQ:
					if math.Abs(act-rhs) > ftol {
						t.Fatalf("seed %d: %s row %d cuts off feasible point %d: %v = %v violated by %g",
							seed, kind, r, pi, act, rhs, math.Abs(act-rhs))
					}
				}
			}
		}
	})
}
