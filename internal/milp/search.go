package milp

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"columbas/internal/lp"
)

// This file holds the branch-and-bound engine behind Model.Solve: a pool
// of workers pulling nodes from a shared best-first frontier. The same
// loop serves both configurations — with one worker it executes the
// sequential algorithm node for node (pop best, expand, push children);
// with several, workers expand different subtrees concurrently, each on a
// private clone of the LP, and prune against the freshest incumbent bound
// published through an atomic.
//
// Invariants that keep the parallel search exact:
//
//   - a popped node is either discarded as dominated (its bound is no
//     better than the incumbent, which only improves) or fully expanded:
//     its children are pushed under the same lock that removes it from
//     the in-flight set, so no subtree is ever lost;
//   - the search terminates via the frontier only when the frontier is
//     empty AND no worker is mid-expansion — an empty heap alone is not
//     proof of optimality while a worker may still push children;
//   - the global lower bound used for gap termination is the minimum of
//     the best frontier bound and every in-flight node's bound.

// search is the shared state of one Solve call.
type search struct {
	m       *Model
	opt     Options
	workers int

	start    time.Time
	deadline time.Time // zero: no time limit

	// Base bounds of the model; worker problems are reset to these before
	// a node's own bound changes are applied. Root presolve tightens them
	// before any worker exists.
	baseLo, baseHi []float64

	// baseProb is the problem every worker clones: the model's problem
	// itself when no root reduction runs, or a row-owning copy that root
	// presolve tightened/strengthened and the root cut loop extended
	// (prepareRoot). rootBasis, when non-nil, is the optimal basis of the
	// final cut-loop LP, seeded into the root node as its warm start.
	baseProb  *lp.Problem
	rootBasis *lp.Basis
	// cutRowStart is baseProb's row count before the root cut loop
	// appended anything (-1 when no cuts ran): rows at or past it are cut
	// rows, which node presolve must never propagate bounds through.
	cutRowStart int

	// Pseudocost state (nil unless the rule is BranchPseudocost and the
	// model has integer variables): per-variable, per-direction sums of
	// observed objective gain per unit of fractional distance, and the
	// observation counts that gate reliability. Guarded by pcMu — the
	// frontier lock is busier and the pseudocost reads/writes are tiny.
	pcMu      sync.Mutex
	pcDownSum []float64
	pcUpSum   []float64
	pcDownN   []int32
	pcUpN     []int32

	// Per-worker scratch for node presolve (lazily sized).
	psLo, psHi [][]float64

	// incBits publishes math.Float64bits of the incumbent objective
	// (+Inf while none exists) so workers mid-expansion can prune without
	// taking the lock. The authoritative value is incObj under mu.
	incBits atomic.Uint64

	mu           sync.Mutex
	cond         *sync.Cond
	frontier     nodeHeap
	inflight     map[int]float64 // worker id -> bound of node being expanded
	nodes        int             // expanded node count
	seq          int             // child insertion order (heap tie-break)
	sinceImprove int
	incumbent    []float64
	incObj       float64
	rootObj      float64 // root relaxation objective (global lower bound)
	rootSolved   bool
	rootBasisOut *lp.Basis // optimal basis of the root node's relaxation
	unbounded    bool
	stopped      bool // a budget, gap, interrupt or error ended the search early
	interrupted  bool // opt.Interrupt fired (subset of stopped)
	err          error

	// Observability counters assembled into Result.Stats (SearchStats).
	// Fields written only under mu are plain; the two written outside the
	// lock on the expansion hot path are atomic adds; wstats entries have
	// a single writer each (their worker) and are read after the join.
	pruned        int64        // under mu: popped nodes dominated pre-LP
	cutoffPre     atomic.Int64 // expand: dominated post-LP, lock-free check
	cutoffPost    int64        // under mu: dominated post-LP, authoritative check
	incUpdates    int64        // under mu: installed incumbents
	roundAttempts atomic.Int64 // rounding-heuristic LP re-solves
	basisRefresh  atomic.Int64 // full-tableau re-solves to mint a missing basis
	roundHits     int64        // under mu: rounding incumbents installed
	inflightHW    int          // under mu: max concurrent expansions
	rootFixed     int64        // under mu: reduced-cost bound fixings at the root
	lpLimited     int64        // under mu: nodes dropped because their LP hit a limit
	wstats        []WorkerStats

	// Search-tree reduction counters (see SearchStats). The root-only
	// ones are plain (written before workers spawn); the node-level ones
	// are atomic or under mu like their peers above.
	nodesPresolved    int64        // under mu: nodes killed by node presolve
	boundsTightened   atomic.Int64 // root + node presolve tightenings
	rowsRemoved       int64        // root only
	coefsStrengthened int64        // root only
	cutsAdded         int64        // root only
	cutRounds         int64        // root only
	branchings        int64        // under mu: branch decisions taken
	groupBranches     int64        // under mu
	pcBranches        int64        // under mu
	relFallbacks      int64        // under mu

	// spare holds one recyclable lp.Solution per worker. expand hands the
	// previous node's Solution back to SolveFromReuse once everything it
	// needs has been copied out (incumbents copy X, children only share
	// the immutable Basis), so the steady-state warm path allocates
	// nothing.
	spare []*lp.Solution
}

func newSearch(m *Model, opt Options) *search {
	s := &search{
		m:       m,
		opt:     opt,
		workers: opt.Workers,
		start:   time.Now(),
		incObj:  math.Inf(1),
	}
	s.cond = sync.NewCond(&s.mu)
	switch {
	case s.workers == 0:
		s.workers = 1
	case s.workers < 0:
		s.workers = runtime.GOMAXPROCS(0)
	}
	if opt.TimeLimit > 0 {
		s.deadline = s.start.Add(opt.TimeLimit)
	}
	if !opt.Deadline.IsZero() && (s.deadline.IsZero() || opt.Deadline.Before(s.deadline)) {
		s.deadline = opt.Deadline
	}
	nv := m.prob.NumVars()
	s.baseLo = make([]float64, nv)
	s.baseHi = make([]float64, nv)
	for v := 0; v < nv; v++ {
		s.baseLo[v], s.baseHi[v] = m.prob.Bounds(v)
	}
	s.incBits.Store(math.Float64bits(math.Inf(1)))
	s.frontier = nodeHeap{{bound: math.Inf(-1), bVar: -1}}
	s.inflight = make(map[int]float64, s.workers)
	s.wstats = make([]WorkerStats, s.workers)
	s.spare = make([]*lp.Solution, s.workers)
	s.baseProb = m.prob
	s.cutRowStart = -1
	s.psLo = make([][]float64, s.workers)
	s.psHi = make([][]float64, s.workers)
	if opt.Branching == BranchPseudocost && m.NumInt() > 0 {
		s.pcDownSum = make([]float64, nv)
		s.pcUpSum = make([]float64, nv)
		s.pcDownN = make([]int32, nv)
		s.pcUpN = make([]int32, nv)
	}
	return s
}

// prepareRoot runs the search-tree reductions that happen once, before
// any worker exists: it swaps baseProb to a row-owning copy of the
// model, presolves it (bound tightening into baseLo/baseHi, redundant
// rows, coefficient strengthening), runs the root cutting-plane loop,
// and seeds the root node with the final basis. All LP work done here
// is attributed to worker slot 0 (worker folds add, not assign), so
// every conservation identity over SearchStats stays exact.
func (s *search) prepareRoot() {
	doPresolve := !s.opt.NoPresolve
	doCuts := !s.opt.NoCuts && s.m.NumInt() > 0
	if !doPresolve && !doCuts {
		// No root reductions: the caller-provided donor basis (if any) is
		// the root's only warm start. Dimension mismatches are absorbed by
		// the LP kernel's compatibility check at solve time.
		if !s.opt.NoWarmStart && len(s.frontier) > 0 {
			s.frontier[0].basis = s.opt.RootBasis
		}
		return
	}
	s.baseProb = s.m.prob.CloneWithRows()
	s.baseProb.SetDeadline(s.deadline)
	s.baseProb.SetInterrupt(s.opt.Interrupt)
	s.baseProb.SetKernel(s.opt.Kernel)
	if doPresolve && s.rootPresolve() {
		// Activity analysis proved no point — integer or not — fits the
		// bounds: drain the tree. result() turns the empty frontier into
		// Infeasible (or returns a caller-seeded incumbent, matching what
		// the root LP would have concluded).
		s.frontier = s.frontier[:0]
	}
	if doCuts && len(s.frontier) > 0 {
		s.cutRowStart = s.baseProb.NumRows()
		s.baseProb.SetWorkspace(lp.NewWorkspace())
		s.rootCutLoop()
	}
	w := &s.wstats[0]
	w.LPSolves += s.baseProb.SolveCount()
	w.Pivots += s.baseProb.PivotCount()
	w.WarmStarts += s.baseProb.WarmStartCount()
	w.WarmFallbacks += s.baseProb.WarmStartFallbackCount()
	w.WarmPivots += s.baseProb.WarmPivotCount()
	w.Phase1Rows += s.baseProb.Phase1RowCount()
	w.EtaUpdates += s.baseProb.EtaUpdateCount()
	w.Refactorizations += s.baseProb.RefactorizationCount()
	w.WorkspaceReuses += s.baseProb.WorkspaceReuseCount()
	w.SparseRefactorizations += s.baseProb.SparseRefactorizationCount()
	w.DenseFallbacks += s.baseProb.DenseFallbackCount()
	w.FillIn += s.baseProb.FillInCount()
	if nnz := s.baseProb.BasisNonzeroPeak(); nnz > w.BasisNonzeros {
		w.BasisNonzeros = nnz
	}
	if s.rootBasis == nil && !s.opt.NoWarmStart {
		// The cut loop minted no basis of its own (cuts off, or nothing
		// separated before the first solve): fall back to the donor basis.
		s.rootBasis = s.opt.RootBasis
	}
	if len(s.frontier) > 0 {
		s.frontier[0].basis = s.rootBasis
	}
}

// run executes the search and assembles the Result.
func (s *search) run() (*Result, error) {
	if s.opt.Start != nil {
		if ok, obj := s.m.checkFeasible(s.opt.Start); ok {
			s.incumbent = append([]float64(nil), s.opt.Start...)
			s.incObj = obj
			s.incBits.Store(math.Float64bits(obj))
		}
	}
	s.prepareRoot()
	newProb := func() *lp.Problem {
		p := s.baseProb.Clone()
		// Propagate the budget into the LP so one oversized relaxation
		// cannot overshoot it.
		p.SetDeadline(s.deadline)
		// Cancellation must reach the worker's in-flight LP too: a node
		// relaxation can outlive the rest of the search by seconds.
		p.SetInterrupt(s.opt.Interrupt)
		// Every worker solves on the engine the caller selected (baseProb
		// may still be the shared model problem, which must not be mutated,
		// so the kernel is applied to each owned clone).
		p.SetKernel(s.opt.Kernel)
		// Each worker owns its kernel workspace: tableau scratch, the flat
		// B⁻¹ and its factorization cache live for the worker's whole
		// subtree, so after warm-up the expansion loop runs on recycled
		// memory (see lp.Workspace).
		p.SetWorkspace(lp.NewWorkspace())
		return p
	}
	// The interrupt watcher wakes workers blocked on the frontier condvar
	// when the caller cancels; it is joined before the result is
	// assembled so no write can race the final (lock-free) reads.
	var watchStop, watchDone chan struct{}
	if s.opt.Interrupt != nil {
		watchStop = make(chan struct{})
		watchDone = make(chan struct{})
		go func() {
			defer close(watchDone)
			select {
			case <-s.opt.Interrupt:
				s.mu.Lock()
				s.interrupted = true
				s.haltLocked()
				s.mu.Unlock()
			case <-watchStop:
			}
		}()
	}
	if s.workers == 1 {
		s.worker(0, newProb())
	} else {
		var wg sync.WaitGroup
		for w := 0; w < s.workers; w++ {
			wg.Add(1)
			go func(id int, prob *lp.Problem) {
				defer wg.Done()
				s.worker(id, prob)
			}(w, newProb())
		}
		wg.Wait()
	}
	if watchStop != nil {
		close(watchStop)
		<-watchDone
	}
	return s.result()
}

func (s *search) worker(id int, prob *lp.Problem) {
	w := &s.wstats[id]
	for {
		n, idx, ok := s.next(id)
		if !ok {
			break
		}
		t0 := time.Now()
		if s.expand(id, idx, n, prob) {
			w.Nodes++
		}
		w.Busy += time.Since(t0)
	}
	// The worker's private problem accumulated its LP work; fold it into
	// the worker's stats slot now that no more solves can happen. Adds,
	// not assignments: slot 0 was pre-filled with the root-preparation
	// (presolve + cut loop) LP work.
	w.LPSolves += prob.SolveCount()
	w.Pivots += prob.PivotCount()
	w.WarmStarts += prob.WarmStartCount()
	w.WarmFallbacks += prob.WarmStartFallbackCount()
	w.WarmPivots += prob.WarmPivotCount()
	w.Phase1Rows += prob.Phase1RowCount()
	w.EtaUpdates += prob.EtaUpdateCount()
	w.Refactorizations += prob.RefactorizationCount()
	w.WorkspaceReuses += prob.WorkspaceReuseCount()
	w.SparseRefactorizations += prob.SparseRefactorizationCount()
	w.DenseFallbacks += prob.DenseFallbackCount()
	w.FillIn += prob.FillInCount()
	if nnz := prob.BasisNonzeroPeak(); nnz > w.BasisNonzeros {
		w.BasisNonzeros = nnz
	}
}

// loadInc reads the published incumbent objective without locking.
func (s *search) loadInc() float64 { return math.Float64frombits(s.incBits.Load()) }

// pollInterrupt non-blockingly reports whether opt.Interrupt has fired.
func (s *search) pollInterrupt() bool {
	if s.opt.Interrupt == nil {
		return false
	}
	select {
	case <-s.opt.Interrupt:
		return true
	default:
		return false
	}
}

// haltLocked ends the search early; callers hold mu.
func (s *search) haltLocked() {
	s.stopped = true
	s.cond.Broadcast()
}

// next hands the calling worker its next node (and that node's 1-based
// expansion index), blocking while the frontier is empty but another
// worker may still push children. ok is false when the search is over:
// tree exhausted, a budget or gap limit hit, or an error recorded.
func (s *search) next(id int) (n *node, idx int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.err != nil || s.unbounded {
			return nil, 0, false
		}
		if s.opt.Interrupt != nil {
			// Cheap poll so a cancellation stops node hand-out within one
			// expansion even before the watcher goroutine is scheduled.
			select {
			case <-s.opt.Interrupt:
				s.interrupted = true
				s.haltLocked()
				return nil, 0, false
			default:
			}
		}
		if s.opt.NodeLimit > 0 && s.nodes >= s.opt.NodeLimit {
			s.haltLocked()
			return nil, 0, false
		}
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.haltLocked()
			return nil, 0, false
		}
		if s.opt.StallLimit > 0 && s.incumbent != nil && s.sinceImprove >= s.opt.StallLimit {
			s.haltLocked()
			return nil, 0, false
		}
		if len(s.frontier) == 0 {
			if len(s.inflight) == 0 {
				// Tree exhausted: wake any other waiters so they exit too.
				s.cond.Broadcast()
				return nil, 0, false
			}
			s.cond.Wait()
			continue
		}
		s.sinceImprove++
		n := heap.Pop(&s.frontier).(*node)
		if n.bound >= s.incObj-1e-9 {
			s.pruned++
			continue // already dominated
		}
		// Gap termination: the global lower bound is the minimum over the
		// best frontier node (n, by heap order) and every in-flight node.
		if s.opt.Gap > 0 && !math.IsInf(s.incObj, 1) {
			lb := n.bound
			for _, b := range s.inflight {
				if b < lb {
					lb = b
				}
			}
			if s.incObj-lb <= s.opt.Gap*math.Max(1, math.Abs(s.incObj)) {
				heap.Push(&s.frontier, n)
				s.haltLocked()
				return nil, 0, false
			}
		}
		s.nodes++
		s.inflight[id] = n.bound
		if len(s.inflight) > s.inflightHW {
			s.inflightHW = len(s.inflight)
		}
		return n, s.nodes, true
	}
}

// done removes the worker's node from the in-flight set. Extra work to be
// performed under the same critical section (pushing children, updating
// the incumbent) is passed as fn; the removal and the push must be atomic
// so an empty frontier is never observed while children are pending.
func (s *search) done(id int, fn func()) {
	s.mu.Lock()
	if fn != nil {
		fn()
	}
	delete(s.inflight, id)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// setIncumbentLocked installs a new incumbent; callers hold mu.
func (s *search) setIncumbentLocked(x []float64, obj float64, resetStall bool) {
	if resetStall {
		s.sinceImprove = 0
	}
	s.incUpdates++
	s.incumbent = append([]float64(nil), x...)
	s.incObj = obj
	s.incBits.Store(math.Float64bits(obj))
}

// rootFixLocked applies reduced-cost bound fixing at the root node:
// moving an integer variable δ away from its nonbasic bound degrades the
// relaxation by at least |reduced cost|·δ, so once that exceeds the gap
// to the incumbent, the move cannot lead to an improving solution and the
// base bound is tightened permanently. Callers hold mu, the incumbent (if
// any) is already installed, and no child node exists yet.
func (s *search) rootFixLocked(sol *lp.Solution, obj float64) {
	rc := sol.ReducedCosts()
	if rc == nil || math.IsInf(s.incObj, 1) {
		return
	}
	gap := s.incObj - obj
	if gap < 0 {
		return
	}
	const eps = 1e-9
	for v := range s.baseLo {
		if !s.m.isInt[v] || rc[v] == 0 {
			continue
		}
		lo, hi := s.baseLo[v], s.baseHi[v]
		x := sol.X[v]
		switch {
		case rc[v] > eps && math.Abs(x-lo) < intTol:
			// Nonbasic at lower bound; can rise by at most gap/rc.
			if nh := math.Floor(x + gap/rc[v] + eps); nh < hi {
				s.baseHi[v] = math.Max(nh, lo)
				s.rootFixed++
			}
		case rc[v] < -eps && math.Abs(x-hi) < intTol:
			// Nonbasic at upper bound; can fall by at most gap/|rc|.
			if nl := math.Ceil(x + gap/rc[v] - eps); nl > lo {
				s.baseLo[v] = math.Min(nl, hi)
				s.rootFixed++
			}
		}
	}
}

// expand solves the node's LP relaxation on the worker's private problem
// and either records an incumbent or branches. The return value reports
// whether the node counted as explored — node presolve can prove a node
// infeasible before its LP, in which case it is excluded from
// NodesExplored (and the worker's node count) and counted as
// NodesPresolved instead, keeping the LP-solve identity exact.
func (s *search) expand(id, idx int, n *node, prob *lp.Problem) bool {
	// Reset to base bounds, then walk the chain root→leaf so deeper
	// changes win.
	for v := range s.baseLo {
		prob.SetBounds(v, s.baseLo[v], s.baseHi[v])
	}
	var chain []*node
	for cur := n; cur != nil; cur = cur.parent {
		chain = append(chain, cur)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		for _, bc := range chain[i].changes {
			// Intersect rather than overwrite: group branches record the
			// absolute binary fixings {0,0}/{1,1}, which must not escape
			// bounds the root reductions (presolve, reduced-cost fixing)
			// have since proven — rows deleted as redundant are only
			// redundant inside that box. An empty intersection proves the
			// node infeasible without any LP work.
			lo, hi := prob.Bounds(bc.v)
			lo = math.Max(lo, bc.lo)
			hi = math.Min(hi, bc.hi)
			if lo > hi {
				s.done(id, func() {
					s.nodes--
					s.nodesPresolved++
				})
				return false
			}
			prob.SetBounds(bc.v, lo, hi)
		}
	}
	// Node presolve: propagate this node's bound changes through the rows
	// before paying for a simplex run. The root skips it — prepareRoot
	// already ran the same propagation to a fixpoint.
	if !s.opt.NoPresolve && n.parent != nil {
		tight, infeas := s.nodePresolve(id, prob)
		s.boundsTightened.Add(tight)
		if infeas {
			s.done(id, func() {
				s.nodes--
				s.nodesPresolved++
			})
			return false
		}
	}
	// Warm-start the relaxation from the parent's optimal basis: the
	// child differs from the parent by one bound change, so a short dual
	// repair replaces the full two-phase solve. Nodes without a basis
	// (the root, or children of a node whose basis was lost) go through
	// the presolving Solve — cheaper when the model reduces well and the
	// tree never branches, as the guided large-scale layouts do.
	var sol *lp.Solution
	var err error
	// The worker's spare Solution from the previous expansion is recycled
	// into this solve (its X and reduced costs were copied out before it
	// was parked); whatever Solution this expansion ends up holding is
	// parked as the next spare on every exit path.
	reuse := s.spare[id]
	s.spare[id] = nil
	defer func() { s.spare[id] = sol }()
	if s.opt.NoWarmStart || n.basis == nil {
		sol, err = prob.Solve()
	} else {
		sol, err = prob.SolveFromReuse(n.basis, reuse)
	}
	if err != nil {
		s.done(id, func() {
			if s.err == nil {
				s.err = err
			}
			s.haltLocked()
		})
		return true
	}
	switch sol.Status {
	case lp.Infeasible:
		s.done(id, nil)
		return true
	case lp.Unbounded:
		s.done(id, func() {
			if n.parent == nil {
				s.unbounded = true
				s.haltLocked()
			}
			// Non-root unbounded: unexplorable, bound stays with siblings.
		})
		return true
	case lp.IterLimit:
		// The relaxation ran out of budget (deadline) or broke down
		// numerically: the subtree is unexplorable, not infeasible. The
		// flag keeps result() from claiming optimality or infeasibility
		// over a tree with dropped subtrees.
		s.done(id, func() { s.lpLimited++ })
		return true
	}
	obj := sol.Obj + s.m.objC

	// Feed the branching history: this node's LP degradation per unit of
	// fractional distance is one pseudocost observation for the variable
	// whose branch created it.
	if s.pcDownSum != nil && n.bVar >= 0 && n.bDist > 1e-9 {
		s.pcRecord(n.bVar, n.bUp, math.Max(obj-n.bound, 0)/n.bDist)
	}

	// Prune against the freshest published incumbent before any further
	// work; the authoritative re-check happens under the lock below.
	if n.parent != nil && obj >= s.loadInc()-1e-9 {
		s.cutoffPre.Add(1)
		s.done(id, nil)
		return true
	}

	// Rounding heuristic while no incumbent exists: fix the integer part
	// of the relaxation (group-aware) and re-solve for the continuous
	// part. Cheap, and it often rescues cold starts.
	var roundX []float64
	var roundObj float64
	haveRound := false
	if math.IsInf(s.loadInc(), 1) && idx%16 == 1 {
		s.roundAttempts.Add(1)
		roundX, roundObj, haveRound = s.m.tryRoundingOn(prob, sol.X)
	}

	if !s.opt.NoWarmStart && sol.Basis() == nil {
		if bv, bg := s.m.pickBranch(sol.X); bv >= 0 || bg >= 0 {
			// The node will branch, so its children need a basis to
			// warm-start from, and the presolved solution carries none:
			// re-solve once on the full tableau. This extra solve is the
			// BasisRefreshes term of the node conservation identity; it
			// never fires when the relaxation is already integral (the
			// no-branch guided large-scale runs keep their presolve win).
			sol2, err2 := prob.SolveFrom(nil)
			s.basisRefresh.Add(1)
			if err2 == nil && sol2.Status == lp.Optimal && sol2.Basis() != nil {
				sol = sol2
				obj = sol.Obj + s.m.objC
			}
		}
	}

	branchVar, branchGroup := s.m.pickBranch(sol.X)
	groupConverted := false
	if s.opt.NoGroupBranching && branchGroup >= 0 {
		// Ablation mode: resolve the group with binary branching on its
		// most fractional member instead.
		branchGroup = -1
		branchVar = -1
		groupConverted = true
		bestFrac := intTol
		for _, g := range s.m.groups {
			for _, v := range g {
				if f := frac(sol.X[v]); f > bestFrac {
					bestFrac = f
					branchVar = int(v)
				}
			}
		}
		if branchVar < 0 {
			bv, _ := s.m.pickBranchVarOnly(sol.X)
			branchVar = bv
		}
	}
	// Pseudocost branching: when the history has reliable estimates for
	// any fractional variable, it overrides the most-fractional default.
	// The disjunction-group fast path above stays untouched, and the
	// converted-group ablation keeps its member choice.
	usedPC := false
	if branchGroup < 0 && branchVar >= 0 && !groupConverted && s.pcDownSum != nil {
		if v, ok := s.pickPseudocost(sol.X); ok {
			branchVar = v
			usedPC = true
		}
	}

	// Child bound changes are prepared outside the lock; prob still holds
	// the node's bounds, so Bounds(branchVar) sees the node-local range.
	var downCh, upCh []boundChange
	var fracDown, fracUp float64
	if branchGroup < 0 && branchVar >= 0 {
		x := sol.X[branchVar]
		lo, hi := prob.Bounds(branchVar)
		fl := math.Floor(x)
		fracDown = x - fl
		fracUp = fl + 1 - x
		downCh = []boundChange{{branchVar, lo, fl}}
		upCh = []boundChange{{branchVar, fl + 1, hi}}
	}

	s.done(id, func() {
		if n.parent == nil {
			s.rootObj, s.rootSolved = obj, true
			if b := sol.Basis(); b != nil {
				s.rootBasisOut = b
			}
		}
		if haveRound && roundObj < s.incObj-1e-9 {
			s.roundHits++
			s.setIncumbentLocked(roundX, roundObj, true)
		}
		if obj >= s.incObj-1e-9 {
			s.cutoffPost++
			return // dominated by an incumbent found meanwhile
		}
		if branchVar < 0 && branchGroup < 0 {
			// Integer feasible: new incumbent. Only a significant
			// improvement resets the stall counter — a trickle of
			// marginal gains should not keep a budgeted search alive.
			reset := obj < s.incObj-math.Max(1e-6, 0.002*math.Abs(s.incObj))
			s.setIncumbentLocked(sol.X, obj, reset)
			return
		}
		if n.parent == nil && !s.opt.NoWarmStart {
			// Reduced-cost bound fixing: with an incumbent already in hand
			// (seed or root rounding hit), the root reduced costs bound how
			// far each integer variable can move in any improving solution.
			// The root is expanded before any child exists, so tightening
			// the base bounds here is race-free — every later node applies
			// its chain on top of them.
			s.rootFixLocked(sol, obj)
		}
		// Children warm-start from this node's optimal basis; the snapshot
		// is immutable and shared by all siblings.
		nb := sol.Basis()
		if branchGroup >= 0 {
			// k-way branch: each child fixes a different member to 0 and
			// the rest to 1.
			s.branchings++
			s.groupBranches++
			g := s.m.groups[branchGroup]
			for _, zero := range g {
				ch := &node{bound: obj, depth: n.depth + 1, parent: n, seq: s.seq, basis: nb, bVar: -1}
				s.seq++
				for _, v := range g {
					if v == zero {
						ch.changes = append(ch.changes, boundChange{int(v), 0, 0})
					} else {
						ch.changes = append(ch.changes, boundChange{int(v), 1, 1})
					}
				}
				heap.Push(&s.frontier, ch)
			}
			return
		}
		// Standard two-way branch on a fractional integer variable.
		s.branchings++
		if usedPC {
			s.pcBranches++
		} else {
			s.relFallbacks++
		}
		down := &node{bound: obj, depth: n.depth + 1, parent: n, seq: s.seq, changes: downCh, basis: nb,
			bVar: branchVar, bUp: false, bDist: fracDown}
		s.seq++
		up := &node{bound: obj, depth: n.depth + 1, parent: n, seq: s.seq, changes: upCh, basis: nb,
			bVar: branchVar, bUp: true, bDist: fracUp}
		s.seq++
		heap.Push(&s.frontier, down)
		heap.Push(&s.frontier, up)
	})
	return true
}

// statsSnapshot assembles the SearchStats after all workers have joined;
// no further writes can race with it.
func (s *search) statsSnapshot() SearchStats {
	st := SearchStats{
		Workers:           s.workers,
		Interrupted:       s.interrupted,
		NodesExplored:     int64(s.nodes),
		NodesPruned:       s.pruned,
		NodesCutoff:       s.cutoffPre.Load() + s.cutoffPost,
		InFlightHighWater: s.inflightHW,
		IncumbentUpdates:  s.incUpdates,
		RoundingAttempts:  s.roundAttempts.Load(),
		RoundingHits:      s.roundHits,
		BasisRefreshes:    s.basisRefresh.Load(),
		RootBoundsFixed:   s.rootFixed,
		PerWorker:         s.wstats,

		NodesPresolved:       s.nodesPresolved,
		BoundsTightened:      s.boundsTightened.Load(),
		RowsRemoved:          s.rowsRemoved,
		CoefsStrengthened:    s.coefsStrengthened,
		CutsAdded:            s.cutsAdded,
		CutRounds:            s.cutRounds,
		Branchings:           s.branchings,
		GroupBranches:        s.groupBranches,
		PseudocostBranches:   s.pcBranches,
		ReliabilityFallbacks: s.relFallbacks,
	}
	for _, w := range s.wstats {
		st.LPSolves += w.LPSolves
		st.SimplexPivots += w.Pivots
		st.WarmStarts += w.WarmStarts
		st.WarmStartFallbacks += w.WarmFallbacks
		st.WarmPivots += w.WarmPivots
		st.Phase1Rows += w.Phase1Rows
		st.EtaUpdates += w.EtaUpdates
		st.Refactorizations += w.Refactorizations
		st.WorkspaceReuses += w.WorkspaceReuses
		st.SparseRefactorizations += w.SparseRefactorizations
		st.DenseFallbacks += w.DenseFallbacks
		st.FillIn += w.FillIn
		if w.BasisNonzeros > st.BasisNonzeros {
			st.BasisNonzeros = w.BasisNonzeros
		}
	}
	st.ColdSolves = st.LPSolves - st.WarmStarts
	st.ColdPivots = st.SimplexPivots - st.WarmPivots
	return st
}

// result assembles the Result after all workers have exited.
func (s *search) result() (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	res := &Result{
		Status:  Limit,
		Obj:     math.Inf(1),
		Bound:   math.Inf(-1),
		Nodes:   s.nodes,
		Runtime: time.Since(s.start),
		Stats:   s.statsSnapshot(),
	}
	res.Stats.Wall = res.Runtime
	res.RootBasis = s.rootBasisOut
	if res.RootBasis == nil && s.rootBasis != s.opt.RootBasis {
		// Fall back to the cut loop's final basis — but never echo the
		// caller's own donor basis back as this solve's root basis.
		res.RootBasis = s.rootBasis
	}
	if s.unbounded {
		res.Status = Unbounded
		return res, nil
	}
	if s.rootSolved {
		res.Bound = s.rootObj
	}
	if s.incumbent != nil {
		res.X = s.incumbent
		res.Obj = s.incObj
		// An empty frontier proves optimality even when a budget fired on
		// the final nodes: halted workers never abandon popped nodes, so
		// an empty heap with all workers drained means the whole tree was
		// expanded or dominated — unless some node's LP hit a limit, in
		// which case its subtree was dropped unexplored and the incumbent
		// is only known to be feasible.
		if len(s.frontier) == 0 && s.lpLimited == 0 {
			res.Status = Optimal
			res.Bound = s.incObj
		} else {
			res.Status = Feasible
			// Bound is the best outstanding node bound; with dropped
			// subtrees and an empty frontier, the root bound is all that
			// remains known.
			best := s.incObj
			if len(s.frontier) == 0 {
				best = res.Bound
			}
			for _, n := range s.frontier {
				if n.bound < best {
					best = n.bound
				}
			}
			res.Bound = best
		}
		return res, nil
	}
	// No incumbent: an exhausted tree proves infeasibility only when no
	// subtree was dropped by an LP limit along the way.
	if len(s.frontier) == 0 && s.lpLimited == 0 {
		res.Status = Infeasible
	}
	return res, nil
}
