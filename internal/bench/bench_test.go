package bench

import (
	"strings"
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/milp"
)

func quickCfg() Config {
	return Config{
		STime:      10 * time.Second,
		BTime:      3 * time.Second,
		StallLimit: 30,
		DRC:        true,
	}
}

func TestRunSProducesMetrics(t *testing.T) {
	c, err := cases.Get("mrna8")
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunS(c, 1, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !run.DRCOK {
		t.Error("design not DRC-clean")
	}
	m := run.Metrics
	if m.Units != 8 || m.CtrlInlets != 13 || m.WidthMM <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRunBaselineSmall(t *testing.T) {
	c, err := cases.Get("nap6")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBaseline(c, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if b.TooLarge {
		t.Fatal("nap6 is within the baseline's size limit")
	}
	if b.WidthMM <= 0 || b.FlowMM <= 0 || b.CtrlInlets <= 0 {
		t.Fatalf("baseline metrics = %+v", b)
	}
}

func TestRunBaselineTooLarge(t *testing.T) {
	b, err := RunBaseline(cases.ChIP64(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !b.TooLarge {
		t.Fatal("chip64 must exceed the baseline frontier (Table 1: '\\')")
	}
}

func TestRunCaseAndFormat(t *testing.T) {
	c, err := cases.Get("mrna8")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	row := RunCase(c, cfg)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	out := FormatTable([]*Row{row})
	for _, want := range []string{"mrna8", "dim 2.0", "t 2MUX"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	trends := TrendReport([]*Row{row})
	if !strings.Contains(trends, "trend 2") {
		t.Errorf("trend report incomplete:\n%s", trends)
	}
}

func TestFormatTableTooLargeRow(t *testing.T) {
	row := &Row{
		Case:     cases.ChIP64(),
		Baseline: &BRun{TooLarge: true},
		S1:       &SRun{},
		S2:       &SRun{},
	}
	out := FormatTable([]*Row{row})
	if !strings.Contains(out, "unsolvable") {
		t.Fatalf("too-large baseline not marked:\n%s", out)
	}
}

func TestFormatTableErrRow(t *testing.T) {
	row := &Row{Case: cases.NAP6(), Err: errFake}
	out := FormatTable([]*Row{row})
	if !strings.Contains(out, "error") {
		t.Fatalf("error row not rendered:\n%s", out)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestSkipBaseline(t *testing.T) {
	cfg := quickCfg()
	cfg.SkipBaseline = true
	c, err := cases.Get("mrna8")
	if err != nil {
		t.Fatal(err)
	}
	row := RunCase(c, cfg)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	if row.Baseline != nil {
		t.Fatal("baseline should be skipped")
	}
	out := FormatTable([]*Row{row})
	if !strings.Contains(out, `\`) {
		t.Fatalf("skipped baseline should render as \\:\n%s", out)
	}
}

func TestFormatCSV(t *testing.T) {
	cfg := quickCfg()
	cfg.SkipBaseline = true
	c, err := cases.Get("mrna8")
	if err != nil {
		t.Fatal(err)
	}
	row := RunCase(c, cfg)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	out := FormatCSV([]*Row{row})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "case,units,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "mrna8,8,") {
		t.Fatalf("row = %q", lines[1])
	}
	// The header and the row have the same field count.
	if got, want := strings.Count(lines[1], ","), strings.Count(lines[0], ","); got != want {
		t.Fatalf("row fields = %d, header fields = %d\nrow: %s", got, want, lines[1])
	}
}

func TestFormatCSVErrorAndTooLarge(t *testing.T) {
	rows := []*Row{
		{Case: cases.NAP6(), Err: errFake},
		{Case: cases.ChIP64(), Baseline: &BRun{TooLarge: true}, S1: &SRun{}, S2: &SRun{}},
	}
	out := FormatCSV(rows)
	if !strings.Contains(out, "error") || !strings.Contains(out, "unsolvable") {
		t.Fatalf("CSV missing markers:\n%s", out)
	}
}

// TestPlacementModelSolverAgreement: the benchmark workload itself obeys
// the solver-equivalence contract — sequential and worker-pool solves
// prove the same optimum on the placement MILP.
func TestPlacementModelSolverAgreement(t *testing.T) {
	seq, err := PlacementModel(3, 7).Solve(milp.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := PlacementModel(3, 7).Solve(milp.Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Status != milp.Optimal || par.Status != milp.Optimal {
		t.Fatalf("statuses: sequential %v, parallel %v", seq.Status, par.Status)
	}
	if d := seq.Obj - par.Obj; d > 1e-6 || d < -1e-6 {
		t.Fatalf("objective diverged: sequential %v, parallel %v", seq.Obj, par.Obj)
	}
	m := PlacementModel(3, 7)
	if m.NumInt() != 12 || m.NumRows() < 18 {
		t.Fatalf("unexpected model shape: %d binaries, %d rows", m.NumInt(), m.NumRows())
	}
}

// TestConfigWorkersPlumbed: the harness hands its worker count to the
// layout solver without disturbing the metrics contract.
func TestConfigWorkersPlumbed(t *testing.T) {
	c, err := cases.Get("mrna8")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Workers = 2
	run, err := RunS(c, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !run.DRCOK {
		t.Error("design not DRC-clean with parallel solver")
	}
	if m := run.Metrics; m.Units != 8 || m.WidthMM <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}
