package bench

import (
	"context"
	"fmt"
	"math"
	"time"

	"columbas/internal/cases"
	"columbas/internal/core"
	"columbas/internal/gen"
	"columbas/internal/netlist"
)

// DeltaReportSchema identifies the columbadelta report document — the
// BENCH_delta.json artifact.
const DeltaReportSchema = "columbas-delta/v1"

// DeltaConfig parameterizes one delta-aware warm-start benchmark: an
// edit-sequence scenario (incremental re-synthesis of a netlist chain,
// each step one unit edit from the last) and a weight-sweep scenario
// (one netlist under a grid of objective weights), each solved twice —
// cold with the delta pipeline ablated, and delta-warm with every step
// chaining a hint from its predecessor.
type DeltaConfig struct {
	// Case is the base netlist of both scenarios (a cases ID like
	// "chip9"); empty uses gen.Generate(Seed) — small and fast, the
	// smoke-test shape.
	Case string
	// Steps is the number of single-unit edits in the chain.
	Steps int
	// Seed drives the edit choices (and the generated base when Case is
	// empty).
	Seed int64
	// Time bounds each layout MILP; StallLimit and Workers mirror
	// layout.Options.
	Time       time.Duration
	StallLimit int
	Workers    int
	// Gap is the relative optimality gap each solve may stop at.
	Gap float64
	// Grid lists the α and β axis values of the weight sweep (the grid
	// is Grid×Grid cells); empty skips the sweep scenario.
	Grid []float64
}

// DefaultDeltaConfig is the BENCH_delta.json shape: the paper's chip9
// case, a 10-step edit chain, and a 3×3 weight grid. Seed 6 is the
// first edit seed whose full 10-step chip9 chain keeps every step's
// generation model feasible — on most seeds some edit's model goes
// infeasible and the cold side degrades to the (fast) greedy-seed
// fallback, which would measure seed-fallback wall, not MILP wall.
func DefaultDeltaConfig() DeltaConfig {
	return DeltaConfig{
		Case:       "chip9",
		Steps:      10,
		Seed:       6,
		Time:       20 * time.Second,
		StallLimit: 200,
		Gap:        0.1,
		Grid:       []float64{0.5, 1, 2},
	}
}

// DeltaStep is one solved instance of a scenario, cold and warm side by
// side.
type DeltaStep struct {
	Name   string  `json:"name"`
	ColdMS float64 `json:"cold_ms"`
	WarmMS float64 `json:"warm_ms"`
	// ColdStatus/WarmStatus are the MILP termination statuses. They are
	// recorded for the report but not compared: a delta-warm solve whose
	// donor-fixed relations restricted the model honestly reports
	// Feasible where an unrestricted solve may prove Optimal, and that
	// says nothing about the design. Agree is DRC-verdict parity.
	ColdStatus string `json:"cold_status"`
	WarmStatus string `json:"warm_status"`
	ColdDRC    bool   `json:"cold_drc_clean"`
	WarmDRC    bool   `json:"warm_drc_clean"`
	Agree      bool   `json:"agree"`
	// The delta counter triple of the warm solve (all zero on step 0,
	// which has no donor yet).
	DeltaWarmStarts   int64 `json:"delta_warm_starts"`
	DeltaFallbacks    int64 `json:"delta_fallbacks"`
	IncumbentFromHint int64 `json:"incumbent_from_hint"`
}

// DeltaScenario aggregates one scenario's steps.
type DeltaScenario struct {
	Steps       []DeltaStep `json:"steps"`
	ColdTotalMS float64     `json:"cold_total_ms"`
	WarmTotalMS float64     `json:"warm_total_ms"`
	// SpeedupPct is the warm side's total-wall reduction in percent.
	SpeedupPct float64 `json:"speedup_pct"`
	// AllAgree reports verdict and DRC parity across every step.
	AllAgree bool `json:"all_agree"`
}

// DeltaReport is the columbas-delta/v1 document.
type DeltaReport struct {
	Schema string `json:"schema"`
	Config struct {
		Case       string    `json:"case,omitempty"`
		Steps      int       `json:"steps"`
		Seed       int64     `json:"seed"`
		TimeMS     int64     `json:"time_ms"`
		StallLimit int       `json:"stall_limit"`
		Workers    int       `json:"workers"`
		Gap        float64   `json:"gap"`
		Grid       []float64 `json:"grid,omitempty"`
	} `json:"config"`
	EditSequence DeltaScenario  `json:"edit_sequence"`
	WeightSweep  *DeltaScenario `json:"weight_sweep,omitempty"`
}

// deltaBase resolves the scenario's base netlist.
func deltaBase(cfg DeltaConfig) (*netlist.Netlist, error) {
	if cfg.Case == "" {
		return gen.Generate(cfg.Seed), nil
	}
	c, err := cases.Get(cfg.Case)
	if err != nil {
		return nil, err
	}
	return netlist.ParseString(c.Source)
}

// deltaOptions builds the shared option base of both sides.
func deltaOptions(cfg DeltaConfig) core.Options {
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = cfg.Time
	opt.Layout.StallLimit = cfg.StallLimit
	opt.Layout.Workers = cfg.Workers
	opt.Layout.Gap = cfg.Gap
	return opt
}

// deltaSolve runs one instance and folds it into a step. warm == nil
// solves cold under -no-delta (the ablation side); otherwise the hint is
// chained in. It returns the result for hint harvesting.
func deltaSolve(ctx context.Context, n *netlist.Netlist, base core.Options, warm *core.Result) (*core.Result, error) {
	opt := base
	if warm == nil {
		opt.NoDelta = true
	} else {
		opt.Warm = warm.WarmHint()
	}
	return core.SynthesizeContext(ctx, n, opt)
}

// fillStep records one cold/warm result pair.
func fillStep(name string, cold, warm *core.Result) DeltaStep {
	st := DeltaStep{
		Name:       name,
		ColdMS:     float64(cold.Runtime) / float64(time.Millisecond),
		WarmMS:     float64(warm.Runtime) / float64(time.Millisecond),
		ColdStatus: cold.Plan.Stats.Status.String(),
		WarmStatus: warm.Plan.Stats.Status.String(),
		ColdDRC:    cold.DRC.Clean(),
		WarmDRC:    warm.DRC.Clean(),
	}
	// Verdict parity (success vs typed rejection) is enforced upstream:
	// RunDelta aborts when one side errors. Here both sides produced a
	// design, so agreement is the DRC verdict.
	st.Agree = st.ColdDRC == st.WarmDRC
	se := warm.Plan.Stats.Search
	st.DeltaWarmStarts = se.DeltaWarmStarts
	st.DeltaFallbacks = se.DeltaFallbacks
	st.IncumbentFromHint = se.IncumbentFromHint
	return st
}

// finish seals a scenario's totals.
func (sc *DeltaScenario) finish() {
	sc.AllAgree = true
	for _, st := range sc.Steps {
		sc.ColdTotalMS += st.ColdMS
		sc.WarmTotalMS += st.WarmMS
		if !st.Agree {
			sc.AllAgree = false
		}
	}
	if sc.ColdTotalMS > 0 {
		sc.SpeedupPct = 100 * (sc.ColdTotalMS - sc.WarmTotalMS) / sc.ColdTotalMS
	}
}

// RunDelta measures the delta-aware warm-start pipeline: every instance
// of both scenarios is solved cold (-no-delta) and delta-warm, and the
// report carries per-step walls, verdict parity and the delta counters.
func RunDelta(ctx context.Context, cfg DeltaConfig) (*DeltaReport, error) {
	base, err := deltaBase(cfg)
	if err != nil {
		return nil, err
	}
	opt := deltaOptions(cfg)
	rep := &DeltaReport{Schema: DeltaReportSchema}
	rep.Config.Case = cfg.Case
	rep.Config.Steps = cfg.Steps
	rep.Config.Seed = cfg.Seed
	rep.Config.TimeMS = cfg.Time.Milliseconds()
	rep.Config.StallLimit = cfg.StallLimit
	rep.Config.Workers = cfg.Workers
	rep.Config.Gap = cfg.Gap
	rep.Config.Grid = cfg.Grid

	// Edit-sequence scenario: the warm side chains each step's hint from
	// its predecessor's warm result — the incremental re-synthesis loop.
	chain := gen.EditSequenceFrom(base, cfg.Seed, cfg.Steps)
	var prevWarm *core.Result
	for i, n := range chain {
		cold, err := deltaSolve(ctx, n, opt, nil)
		if err != nil {
			return nil, fmt.Errorf("delta: edit step %d cold: %w", i, err)
		}
		warm, err := deltaSolve(ctx, n, opt, prevWarm)
		if err != nil {
			return nil, fmt.Errorf("delta: edit step %d warm: %w", i, err)
		}
		rep.EditSequence.Steps = append(rep.EditSequence.Steps, fillStep(n.Name, cold, warm))
		prevWarm = warm
	}
	rep.EditSequence.finish()

	// Weight-sweep scenario: one netlist under a Grid×Grid (α, β) grid;
	// the warm side chains each cell from its nearest finished neighbor
	// in weight space, mirroring POST /v2/explore.
	if len(cfg.Grid) > 0 {
		type cell struct{ a, b float64 }
		var cells []cell
		for _, a := range cfg.Grid {
			for _, b := range cfg.Grid {
				cells = append(cells, cell{a, b})
			}
		}
		sweep := &DeltaScenario{}
		results := make([]*core.Result, len(cells))
		for i, cl := range cells {
			copt := opt
			copt.Layout.Alpha, copt.Layout.Beta = cl.a, cl.b
			cold, err := deltaSolve(ctx, base, copt, nil)
			if err != nil {
				return nil, fmt.Errorf("delta: sweep cell %d cold: %w", i, err)
			}
			var donor *core.Result
			bestD := math.Inf(1)
			for p := 0; p < i; p++ {
				d := math.Abs(cells[p].a-cl.a) + math.Abs(cells[p].b-cl.b)
				if results[p] != nil && d < bestD {
					bestD, donor = d, results[p]
				}
			}
			warm, err := deltaSolve(ctx, base, copt, donor)
			if err != nil {
				return nil, fmt.Errorf("delta: sweep cell %d warm: %w", i, err)
			}
			results[i] = warm
			sweep.Steps = append(sweep.Steps,
				fillStep(fmt.Sprintf("a=%g,b=%g", cl.a, cl.b), cold, warm))
		}
		sweep.finish()
		rep.WeightSweep = sweep
	}
	return rep, nil
}
