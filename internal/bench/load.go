package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"columbas/internal/cases"
	"columbas/internal/gen"
)

// LoadReportSchema identifies the columbaload report document — the
// BENCH_serving.json artifact. v2 made the latency percentiles nullable:
// a percentile whose nearest-rank index collapses onto the sample maximum
// (p99 over 9 samples) is reported as null instead of a misleading
// number, and every latency block carries its sample count.
const LoadReportSchema = "columbas-load/v2"

// LoadOptions parameterizes one load run against a columbasd instance.
type LoadOptions struct {
	// BaseURL is the server under test (e.g. "http://127.0.0.1:8080").
	BaseURL string
	// Requests is the total number of synthesis requests to issue.
	Requests int
	// Concurrency is the number of parallel clients.
	Concurrency int
	// HitFraction of requests re-submit a design from a small hot pool,
	// so all but the pool's first solves are cache hits. CancelFraction
	// of requests cancel their job right after submission. The rest are
	// unique generated netlists — guaranteed cache misses.
	HitFraction    float64
	CancelFraction float64
	// Timeout is the per-job deadline option sent with every request
	// ("" = server default).
	Timeout string
	// MissTime is the MILP budget option ("time") for hit and miss
	// requests; past it the solver degrades to the greedy seed, so it
	// bounds a cold solve's cost without failing it. "" sends none.
	MissTime string
	// Seed drives the op schedule and the generated miss netlists, so a
	// run is reproducible end to end.
	Seed int64
	// Warmup pre-solves the hot pool serially before the clock starts,
	// so hit-class requests measure genuine cache hits instead of
	// contending for the first cold solve of their design (which, under
	// overload, can shed the whole hot pool and leave the hit fraction
	// meaningless). The warmup solves are excluded from every counter
	// and latency sample; only WarmupS records their cost.
	Warmup bool
}

// LoadReport is the columbas-load/v1 document: one load run's outcome
// mix and tail latency against a job-API server.
type LoadReport struct {
	Schema string `json:"schema"`
	// Config echoes the run parameters.
	Config LoadConfigDoc `json:"config"`
	// DurationS is the wall-clock time of the timed run; WarmupS the
	// cost of the serial hot-pool warmup before it (0 if disabled).
	DurationS float64 `json:"duration_s"`
	WarmupS   float64 `json:"warmup_s,omitempty"`
	// ThroughputRPS is settled requests (any outcome) per second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Outcome counts. Succeeded splits into CacheHits + cold solves;
	// Shed counts 429 admission refusals; ShedRetryAfter of those
	// carried a Retry-After header (must equal Shed); Canceled counts
	// jobs that reached the canceled state; Timeouts the deadline
	// failures; Errors everything unexpected.
	Succeeded      int64 `json:"succeeded"`
	CacheHits      int64 `json:"cache_hits"`
	Canceled       int64 `json:"canceled"`
	Shed           int64 `json:"shed"`
	ShedRetryAfter int64 `json:"shed_retry_after"`
	Timeouts       int64 `json:"timeouts"`
	Failed         int64 `json:"failed"`
	Errors         int64 `json:"errors"`
	// Latency aggregates submit→terminal-state wall time for settled
	// jobs (succeeded and canceled; shed and errored requests are
	// excluded — they never ran).
	Latency LatencyStats `json:"latency"`
	// HitLatency and MissLatency split Latency by cache outcome for
	// succeeded jobs.
	HitLatency  LatencyStats `json:"hit_latency"`
	MissLatency LatencyStats `json:"miss_latency"`
	// Server is the target's GET /v1/stats document after the run.
	Server json.RawMessage `json:"server,omitempty"`
}

// LoadConfigDoc is the config echo block of a LoadReport.
type LoadConfigDoc struct {
	Requests       int     `json:"requests"`
	Concurrency    int     `json:"concurrency"`
	HitFraction    float64 `json:"hit_fraction"`
	CancelFraction float64 `json:"cancel_fraction"`
	Timeout        string  `json:"timeout,omitempty"`
	MissTime       string  `json:"miss_time,omitempty"`
	Seed           int64   `json:"seed"`
	Warmup         bool    `json:"warmup"`
}

// LatencyStats summarizes a latency sample in milliseconds. Count is the
// sample size every percentile was computed over; a percentile the sample
// is too small to support — its nearest-rank index would just re-report
// the maximum, the way p99 over 9 samples did in early BENCH_serving
// artifacts — is null rather than a number that reads like a tail.
type LatencyStats struct {
	Count  int64    `json:"count"`
	MeanMS float64  `json:"mean_ms"`
	P50MS  *float64 `json:"p50_ms"`
	P90MS  *float64 `json:"p90_ms"`
	P95MS  *float64 `json:"p95_ms"`
	P99MS  *float64 `json:"p99_ms"`
	MaxMS  float64  `json:"max_ms"`
}

// summarize computes the percentile block from raw durations.
func summarize(durs []time.Duration) LatencyStats {
	st := LatencyStats{Count: int64(len(durs))}
	if len(durs) == 0 {
		return st
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	pct := func(q float64) *float64 {
		// Nearest-rank: the smallest sample ≥ q of the distribution. The
		// q-quantile needs at least 1/(1-q) samples (p99: 100, p95: 20,
		// p90: 10, p50: 2) before its rank is distinct from the maximum;
		// below that the percentile is suppressed.
		if float64(len(durs)) < 1/(1-q) {
			return nil
		}
		i := int(math.Ceil(q*float64(len(durs)))) - 1
		if i < 0 {
			i = 0
		}
		v := ms(durs[i])
		return &v
	}
	st.MeanMS = ms(sum / time.Duration(len(durs)))
	st.P50MS = pct(0.50)
	st.P90MS = pct(0.90)
	st.P95MS = pct(0.95)
	st.P99MS = pct(0.99)
	st.MaxMS = ms(durs[len(durs)-1])
	return st
}

// op classes of the load schedule.
const (
	opMiss = iota
	opHit
	opCancel
)

// loadOp is one scheduled request.
type loadOp struct {
	class   int
	netlist string
}

// hotPool returns the designs hit-class requests cycle through: the
// paper's chip9/chip16 evaluation cases, both mux variants.
func hotPool() ([]string, error) {
	pool := make([]string, 0, 4)
	for _, id := range []string{"chip9", "chip16"} {
		c, err := cases.Get(id)
		if err != nil {
			return nil, err
		}
		pool = append(pool, c.Source, c.WithMuxes(2).Source)
	}
	return pool, nil
}

// buildSchedule materializes the deterministic op list: hits cycle the
// hot pool, misses and cancel targets come from the netlist generator.
func buildSchedule(o LoadOptions) ([]loadOp, error) {
	pool, err := hotPool()
	if err != nil {
		return nil, err
	}
	ops := make([]loadOp, o.Requests)
	nHit := int(o.HitFraction * float64(o.Requests))
	nCancel := int(o.CancelFraction * float64(o.Requests))
	for i := range ops {
		switch {
		case i < nHit:
			ops[i] = loadOp{class: opHit, netlist: pool[i%len(pool)]}
		case i < nHit+nCancel:
			// Cancel targets are unique full-effort solves: long enough
			// to still be live when the DELETE lands.
			n := gen.Generate(o.Seed + int64(1_000_000+i))
			ops[i] = loadOp{class: opCancel, netlist: n.Format()}
		default:
			n := gen.Generate(o.Seed + int64(i))
			ops[i] = loadOp{class: opMiss, netlist: n.Format()}
		}
	}
	// Deterministic shuffle so hits, misses and cancels interleave.
	rng := newSplitMix(uint64(o.Seed))
	for i := len(ops) - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		ops[i], ops[j] = ops[j], ops[i]
	}
	return ops, nil
}

// splitMix is a tiny deterministic PRNG for the schedule shuffle (the
// stdlib global source would tie the schedule to unrelated callers).
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed + 0x9e3779b97f4a7c15} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sample is one settled request's accounting.
type sample struct {
	latency  time.Duration
	state    string // terminal job state, or "shed"/"error"
	errCode  string // failed only: the columbas-error/v1 code
	cacheHit bool
	retryOK  bool // shed only: Retry-After header present
}

// RunLoad drives a full load run and aggregates the report. The target
// server must speak the v2 job API.
func RunLoad(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	if o.Requests <= 0 {
		return nil, fmt.Errorf("load: Requests must be positive")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 16
	}
	ops, err := buildSchedule(o)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.Concurrency * 2,
		MaxIdleConnsPerHost: o.Concurrency * 2,
	}}

	var warmup time.Duration
	if o.Warmup && o.HitFraction > 0 {
		wstart := time.Now()
		pool, err := hotPool()
		if err != nil {
			return nil, err
		}
		for _, src := range pool {
			// Serial, so the pool's occupancy stays at one and admission
			// cannot shed the warmup even on a single-slot server.
			sm := runOp(ctx, client, o, loadOp{class: opMiss, netlist: src}, 0)
			if sm.state != "succeeded" {
				return nil, fmt.Errorf("load: hot-pool warmup solve ended %q", sm.state)
			}
		}
		warmup = time.Since(wstart)
	}

	samples := make([]sample, len(ops))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				samples[i] = runOp(ctx, client, o, ops[i], i)
			}
		}()
	}
	start := time.Now()
feed:
	for i := 0; i < len(ops); i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	rep := &LoadReport{
		Schema: LoadReportSchema,
		Config: LoadConfigDoc{
			Requests:       o.Requests,
			Concurrency:    o.Concurrency,
			HitFraction:    o.HitFraction,
			CancelFraction: o.CancelFraction,
			Timeout:        o.Timeout,
			MissTime:       o.MissTime,
			Seed:           o.Seed,
			Warmup:         o.Warmup && o.HitFraction > 0,
		},
		DurationS:     wall.Seconds(),
		WarmupS:       warmup.Seconds(),
		ThroughputRPS: float64(len(ops)) / wall.Seconds(),
	}
	var all, hits, misses []time.Duration
	for _, sm := range samples {
		switch sm.state {
		case "succeeded":
			rep.Succeeded++
			all = append(all, sm.latency)
			if sm.cacheHit {
				rep.CacheHits++
				hits = append(hits, sm.latency)
			} else {
				misses = append(misses, sm.latency)
			}
		case "canceled":
			rep.Canceled++
			all = append(all, sm.latency)
		case "failed":
			if sm.errCode == "deadline_exceeded" {
				rep.Timeouts++
			} else {
				rep.Failed++
			}
		case "shed":
			rep.Shed++
			if sm.retryOK {
				rep.ShedRetryAfter++
			}
		default:
			rep.Errors++
		}
	}
	rep.Latency = summarize(all)
	rep.HitLatency = summarize(hits)
	rep.MissLatency = summarize(misses)

	if stats, err := fetchStats(ctx, client, o.BaseURL); err == nil {
		rep.Server = stats
	}
	return rep, nil
}

// runOp settles one scheduled request: submit, optionally cancel, then
// follow the SSE progress stream to the terminal state.
func runOp(ctx context.Context, client *http.Client, o LoadOptions, op loadOp, i int) sample {
	body := map[string]any{
		"schema":  "columbas-jobrequest/v1",
		"netlist": op.netlist,
	}
	opts := map[string]any{}
	if o.Timeout != "" {
		opts["timeout"] = o.Timeout
	}
	if op.class == opCancel {
		// Full effort with a generous budget: the job must still be
		// running when the cancel lands.
		opts["effort"] = "full"
		opts["time"] = "30s"
	} else if o.MissTime != "" {
		opts["time"] = o.MissTime
	}
	if len(opts) > 0 {
		body["options"] = opts
	}
	payload, _ := json.Marshal(body)

	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, "POST", o.BaseURL+"/v2/jobs", bytes.NewReader(payload))
	if err != nil {
		return sample{state: "error"}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return sample{state: "error"}
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return sample{state: "shed", retryOK: resp.Header.Get("Retry-After") != ""}
	default:
		return sample{state: "error"}
	}
	var doc struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Cache string `json:"cache"`
	}
	if err := json.Unmarshal(respBody, &doc); err != nil || doc.ID == "" {
		return sample{state: "error"}
	}

	if op.class == opCancel {
		dreq, _ := http.NewRequestWithContext(ctx, "DELETE", o.BaseURL+"/v2/jobs/"+doc.ID, nil)
		if dresp, err := client.Do(dreq); err == nil {
			io.Copy(io.Discard, dresp.Body)
			dresp.Body.Close()
		}
	}

	state, cache, errCode, ok := followEvents(ctx, client, o.BaseURL, doc.ID)
	if !ok {
		return sample{state: "error"}
	}
	return sample{latency: time.Since(start), state: state, errCode: errCode, cacheHit: cache == "hit"}
}

// followEvents consumes the job's SSE stream until the terminal state
// event and returns that state, its cache marker and (for failures)
// the error code.
func followEvents(ctx context.Context, client *http.Client, base, id string) (state, cache, errCode string, ok bool) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v2/jobs/"+id+"/events", nil)
	if err != nil {
		return "", "", "", false
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", "", "", false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return "", "", "", false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Type  string `json:"type"`
			State string `json:"state"`
			Cache string `json:"cache"`
			Error *struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		if ev.Type == "state" {
			switch ev.State {
			case "succeeded", "failed", "canceled":
				code := ""
				if ev.Error != nil {
					code = ev.Error.Code
				}
				return ev.State, ev.Cache, code, true
			}
		}
	}
	return "", "", "", false
}

// fetchStats grabs the target's /v1/stats document verbatim.
func fetchStats(ctx context.Context, client *http.Client, base string) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: stats fetch failed")
	}
	return json.RawMessage(b), nil
}
