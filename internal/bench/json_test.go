package bench

import (
	"encoding/json"
	"testing"

	"columbas/internal/cases"
)

// TestFormatJSONRoundTrip runs one real case, renders the columbas-bench/v1
// report and re-parses it through the schema structs: the artifact benchtab
// -json writes must survive an encoding/json round trip unchanged, and the
// embedded trace must carry the per-phase breakdown with the milp_* solver
// counters on the layout phase.
func TestFormatJSONRoundTrip(t *testing.T) {
	c, err := cases.Get("mrna8")
	if err != nil {
		t.Fatal(err)
	}
	row := RunCase(c, quickCfg())
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	doc, err := FormatJSON([]*Row{row})
	if err != nil {
		t.Fatal(err)
	}

	var rep Report
	if err := json.Unmarshal(doc, &rep); err != nil {
		t.Fatalf("report does not parse back into bench.Report: %v", err)
	}
	if rep.Schema != ReportSchemaVersion {
		t.Fatalf("schema = %q, want %q", rep.Schema, ReportSchemaVersion)
	}
	if len(rep.Cases) != 1 || rep.Cases[0].ID != "mrna8" {
		t.Fatalf("cases = %+v", rep.Cases)
	}
	s1 := rep.Cases[0].S1
	if s1 == nil || s1.Phases == nil {
		t.Fatal("S1 run missing its embedded trace")
	}
	phases := map[string]bool{}
	var layoutCounters map[string]float64
	for _, sp := range s1.Phases.Spans {
		phases[sp.Name] = true
		if sp.Name == "layout" {
			layoutCounters = sp.Counters
		}
	}
	for _, want := range []string{"planarize", "layout", "validate", "drc"} {
		if !phases[want] {
			t.Errorf("trace missing phase %q (have %v)", want, phases)
		}
	}
	for _, k := range []string{"milp_nodes", "milp_lp_solves", "milp_simplex_pivots"} {
		if _, ok := layoutCounters[k]; !ok {
			t.Errorf("layout phase missing counter %q (have %v)", k, layoutCounters)
		}
	}

	// Re-marshalling the parsed report must reproduce the document
	// byte-for-byte: no information lives outside the schema structs.
	again, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(append(again, '\n')) != string(doc) {
		t.Error("report is not a fixed point of the schema round trip")
	}
}
