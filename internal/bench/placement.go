package bench

import (
	"fmt"
	"math/rand"

	"columbas/internal/milp"
)

// PlacementModel builds a standalone rectangle-placement MILP with the
// exact structure of the layout-generation model (constraints (1)-(5)):
// n rectangles with randomised dimensions, pairwise four-way big-M
// non-overlap disjunctions, and a chip-extent objective α·x_max + β·y_max.
// At n≈8-10 the model matches the merged-rectangle count of the paper's
// Table 1 cases (chip64 collapses to ~10 placeable rectangles), which
// makes it the reference workload for the sequential-vs-parallel solver
// benchmarks — it exercises group branching, big-M relaxations and
// incumbent pruning without dragging the whole synthesis flow along.
func PlacementModel(n int, seed int64) *milp.Model {
	const bigM = 10000
	rng := rand.New(rand.NewSource(seed))
	m := milp.NewModel()
	w := make([]float64, n)
	h := make([]float64, n)
	xs := make([]milp.VarID, n)
	ys := make([]milp.VarID, n)
	xMax := m.Var("x_max", 0, bigM)
	yMax := m.Var("y_max", 0, bigM)
	for i := 0; i < n; i++ {
		w[i] = float64(200 + rng.Intn(9)*100)
		h[i] = float64(200 + rng.Intn(7)*100)
		xs[i] = m.Var(fmt.Sprintf("x%d", i), 0, bigM)
		ys[i] = m.Var(fmt.Sprintf("y%d", i), 0, bigM)
		// Constraint (2): the chip extent covers every rectangle.
		m.AddLE(milp.NewExpr().Add(xs[i], 1).AddConst(w[i]).Add(xMax, -1), 0)
		m.AddLE(milp.NewExpr().Add(ys[i], 1).AddConst(h[i]).Add(yMax, -1), 0)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Constraints (3)-(5): left-of / right-of / below / above,
			// with exactly one of the four relaxations switched off.
			q1 := m.Binary(fmt.Sprintf("q1_%d_%d", i, j))
			q2 := m.Binary(fmt.Sprintf("q2_%d_%d", i, j))
			q3 := m.Binary(fmt.Sprintf("q3_%d_%d", i, j))
			q4 := m.Binary(fmt.Sprintf("q4_%d_%d", i, j))
			m.AddLE(milp.NewExpr().Add(xs[i], 1).AddConst(w[i]).Add(xs[j], -1).Add(q1, -bigM), 0)
			m.AddLE(milp.NewExpr().Add(xs[j], 1).AddConst(w[j]).Add(xs[i], -1).Add(q2, -bigM), 0)
			m.AddLE(milp.NewExpr().Add(ys[i], 1).AddConst(h[i]).Add(ys[j], -1).Add(q3, -bigM), 0)
			m.AddLE(milp.NewExpr().Add(ys[j], 1).AddConst(h[j]).Add(ys[i], -1).Add(q4, -bigM), 0)
			m.MarkDisjunction([]milp.VarID{q1, q2, q3, q4})
		}
	}
	m.Minimize(milp.NewExpr().Add(xMax, 1).Add(yMax, 1))
	return m
}
