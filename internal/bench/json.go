package bench

import (
	"encoding/json"

	"columbas/internal/obs"
)

// ReportSchemaVersion identifies the benchtab -json document layout
// (see docs/metrics.md). BENCH_*.json artifacts carry it so downstream
// tooling can detect incompatible changes.
const ReportSchemaVersion = "columbas-bench/v1"

// Report is the machine-readable form of one evaluation run — the
// document `benchtab -json` writes. Unlike the CSV, each Columba S run
// embeds its full per-phase trace, so the artifact records not just how
// long a case took but where the time went and how hard the solver
// worked.
type Report struct {
	Schema string       `json:"schema"`
	Cases  []CaseReport `json:"cases"`
}

// CaseReport is one Table 1 row.
type CaseReport struct {
	ID    string `json:"id"`
	Units int    `json:"units"`
	Error string `json:"error,omitempty"`
	// Baseline is the Columba 2.0 run; absent when skipped.
	Baseline *BaselineReport `json:"baseline,omitempty"`
	// S1 and S2 are the Columba S 1-MUX and 2-MUX runs.
	S1 *SReport `json:"s1,omitempty"`
	S2 *SReport `json:"s2,omitempty"`
}

// BaselineReport is the Columba 2.0 side of a row.
type BaselineReport struct {
	WidthMM    float64 `json:"width_mm"`
	HeightMM   float64 `json:"height_mm"`
	FlowMM     float64 `json:"flow_mm"`
	CtrlInlets int     `json:"ctrl_inlets"`
	RuntimeS   float64 `json:"runtime_s"`
	Status     string  `json:"status,omitempty"`
	TooLarge   bool    `json:"too_large,omitempty"`
}

// SReport is one Columba S run with its per-phase breakdown.
type SReport struct {
	WidthMM    float64 `json:"width_mm"`
	HeightMM   float64 `json:"height_mm"`
	FlowMM     float64 `json:"flow_mm"`
	CtrlInlets int     `json:"ctrl_inlets"`
	FluidPorts int     `json:"fluid_ports"`
	RuntimeS   float64 `json:"runtime_s"`
	Status     string  `json:"solver_status"`
	DRCOK      bool    `json:"drc_ok"`
	// Phases is the run's trace (schema columbas-trace/v1): per-phase
	// wall time plus the milp_* solver counters on the layout phase.
	Phases *obs.TraceJSON `json:"phases,omitempty"`
}

func sReport(r *SRun) *SReport {
	if r == nil {
		return nil
	}
	m := r.Metrics
	return &SReport{
		WidthMM:    m.WidthMM,
		HeightMM:   m.HeightMM,
		FlowMM:     m.FlowMM,
		CtrlInlets: m.CtrlInlets,
		FluidPorts: m.FluidPorts,
		RuntimeS:   m.Runtime.Seconds(),
		Status:     m.SolverStatus.String(),
		DRCOK:      r.DRCOK,
		Phases:     r.Trace,
	}
}

// BuildReport assembles the schema form of an evaluation run.
func BuildReport(rows []*Row) *Report {
	rep := &Report{Schema: ReportSchemaVersion}
	for _, r := range rows {
		c := CaseReport{ID: r.Case.ID, Units: r.Case.Units}
		if r.Err != nil {
			c.Error = r.Err.Error()
			rep.Cases = append(rep.Cases, c)
			continue
		}
		if b := r.Baseline; b != nil {
			c.Baseline = &BaselineReport{
				WidthMM:    b.WidthMM,
				HeightMM:   b.HeightMM,
				FlowMM:     b.FlowMM,
				CtrlInlets: b.CtrlInlets,
				RuntimeS:   b.Runtime.Seconds(),
				TooLarge:   b.TooLarge,
			}
			if !b.TooLarge {
				c.Baseline.Status = b.Status.String()
			}
		}
		c.S1 = sReport(r.S1)
		c.S2 = sReport(r.S2)
		rep.Cases = append(rep.Cases, c)
	}
	return rep
}

// FormatJSON renders rows as the indented columbas-bench/v1 document.
func FormatJSON(rows []*Row) ([]byte, error) {
	out, err := json.MarshalIndent(BuildReport(rows), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
