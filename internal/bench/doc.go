// Package bench is the evaluation harness that regenerates the paper's
// Table 1 and the Figure 1 comparison: for each test case it synthesizes
// the Columba 2.0 baseline design and the Columba S 1-MUX and 2-MUX
// designs, and formats the same columns the paper reports (dimension,
// flow-channel length L_f, control inlets #c_in, program run time).
//
// Key types: Config selects budgets and solver workers; RunCase produces a
// Row (baseline BRun plus 1-MUX/2-MUX SRun, each with its obs trace), and
// FormatTable, FormatCSV and FormatJSON render rows as the console table,
// the CSV and the columbas-bench/v1 report.
package bench
