package bench

import (
	"context"
	"testing"
	"time"
)

// TestDeltaSmoke is the `make bench-delta-smoke` gate: a tiny edit chain
// and weight sweep over a generated netlist must complete with cold/warm
// verdict parity on every step and sane counter identities. The
// full-scale chip9 run behind BENCH_delta.json uses the same harness
// with bigger knobs.
func TestDeltaSmoke(t *testing.T) {
	rep, err := RunDelta(context.Background(), DeltaConfig{
		Steps:      2,
		Seed:       9,
		Time:       5 * time.Second,
		StallLimit: 60,
		Gap:        0.2,
		Workers:    2,
		Grid:       []float64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != DeltaReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if got := len(rep.EditSequence.Steps); got != 3 {
		t.Fatalf("edit chain has %d steps, want 3", got)
	}
	if !rep.EditSequence.AllAgree {
		t.Fatalf("cold/warm verdicts diverged: %+v", rep.EditSequence.Steps)
	}
	if rep.WeightSweep == nil || len(rep.WeightSweep.Steps) != 4 {
		t.Fatalf("weight sweep missing or wrong size: %+v", rep.WeightSweep)
	}
	if !rep.WeightSweep.AllAgree {
		t.Fatalf("sweep cold/warm verdicts diverged: %+v", rep.WeightSweep.Steps)
	}
	for i, st := range rep.EditSequence.Steps {
		if st.IncumbentFromHint > st.DeltaWarmStarts {
			t.Fatalf("step %d: IncumbentFromHint %d > DeltaWarmStarts %d",
				i, st.IncumbentFromHint, st.DeltaWarmStarts)
		}
		if i == 0 && (st.DeltaWarmStarts != 0 || st.DeltaFallbacks != 0) {
			t.Fatalf("step 0 has no donor but counted delta rounds: %+v", st)
		}
	}
	// At least one later step must actually have warm-started — the
	// whole point of the pipeline.
	warmed := int64(0)
	for _, st := range rep.EditSequence.Steps[1:] {
		warmed += st.DeltaWarmStarts
	}
	for _, st := range rep.WeightSweep.Steps[1:] {
		warmed += st.DeltaWarmStarts
	}
	if warmed == 0 {
		t.Fatalf("no step warm-started: edit=%+v sweep=%+v",
			rep.EditSequence.Steps, rep.WeightSweep.Steps)
	}
}
