package bench

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"columbas/internal/server"
)

// TestLoadSmoke is the `make loadtest-smoke` gate: a short mixed run
// against an in-process server must complete with zero shed (the load
// is far below capacity), zero transport errors, and a well-formed
// columbas-load/v2 report. The full-scale run behind BENCH_serving.json
// uses the same harness with bigger knobs.
func TestLoadSmoke(t *testing.T) {
	srv := server.New(server.Config{Jobs: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.WaitIdle(ctx); err != nil {
			t.Errorf("WaitIdle: %v", err)
		}
	}()

	const n = 24
	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:        ts.URL,
		Requests:       n,
		Concurrency:    4,
		HitFraction:    0.5,
		CancelFraction: 0.25,
		Timeout:        "60s",
		MissTime:       "200ms",
		Seed:           7,
		Warmup:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != LoadReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Shed != 0 || rep.Errors != 0 {
		t.Fatalf("low-load smoke shed %d / errored %d requests: %+v", rep.Shed, rep.Errors, rep)
	}
	if got := rep.Succeeded + rep.Canceled + rep.Timeouts + rep.Failed; got != n {
		t.Fatalf("settled %d of %d requests: %+v", got, n, rep)
	}
	if rep.Succeeded == 0 || rep.Canceled == 0 {
		t.Fatalf("mix did not exercise both outcomes: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Fatalf("hot pool produced no cache hits: %+v", rep)
	}
	l := rep.Latency
	if l.Count != int64(rep.Succeeded+rep.Canceled) {
		t.Fatalf("latency count %d, want %d", l.Count, rep.Succeeded+rep.Canceled)
	}
	// 24 requests support p50 and p90, never p95 or p99 — the suppression
	// rule must null them instead of restating the maximum.
	if l.P50MS == nil || *l.P50MS <= 0 {
		t.Fatalf("p50 missing from %d samples: %+v", l.Count, l)
	}
	if l.Count >= 10 && (l.P90MS == nil || l.MaxMS < *l.P90MS || *l.P90MS < *l.P50MS) {
		t.Fatalf("p90 missing or not monotone: %+v", l)
	}
	if l.Count < 100 && l.P99MS != nil {
		t.Fatalf("p99 reported over only %d samples: %+v", l.Count, l)
	}
	if l.Count < 20 && l.P95MS != nil {
		t.Fatalf("p95 reported over only %d samples: %+v", l.Count, l)
	}
	if rep.DurationS <= 0 || rep.ThroughputRPS <= 0 {
		t.Fatalf("rate fields empty: %+v", rep)
	}
	if len(rep.Server) == 0 {
		t.Fatal("final server stats missing from report")
	}
	if rep.Config.Requests != n || rep.Config.Seed != 7 {
		t.Fatalf("config echo = %+v", rep.Config)
	}
}
