package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"columbas/internal/cases"
	"columbas/internal/columba2"
	"columbas/internal/core"
	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/obs"
	"columbas/internal/planar"
)

// Config budgets one harness run.
type Config struct {
	// STime bounds each Columba S layout generation.
	STime time.Duration
	// BTime bounds the Columba 2.0 baseline model.
	BTime time.Duration
	// StallLimit for the Columba S search.
	StallLimit int
	// SkipBaseline omits the Columba 2.0 runs.
	SkipBaseline bool
	// DRC verifies every S design.
	DRC bool
	// Workers is the branch-and-bound worker count for the Columba S
	// layout solves (0 or 1: sequential; negative: GOMAXPROCS).
	Workers int
	// NoWarmStart solves every branch-and-bound LP cold instead of
	// warm-starting from the parent basis (the before side of
	// make bench-warmstart).
	NoWarmStart bool
	// NoCuts disables root cutting planes in the layout MILPs (the
	// before side of make bench-cuts).
	NoCuts bool
	// NoPresolve disables MILP presolve (bound tightening, redundant
	// rows, coefficient strengthening).
	NoPresolve bool
	// NoDelta disables the delta-aware warm-start pipeline: any donor
	// hint (core.Options.Warm) is ignored and every solve runs cold.
	NoDelta bool
	// Branching selects the branch-and-bound variable selection rule;
	// the zero value is pseudocost branching.
	Branching milp.BranchRule
	// Kernel selects the LP basis engine for the Columba S layout solves
	// (layout.Options.Kernel): auto (zero value), dense or sparse.
	Kernel lp.Kernel
}

// DefaultConfig mirrors the evaluation setup: generous budget for the
// baseline (which is expected to exhaust it), tight budget for S.
func DefaultConfig() Config {
	return Config{
		STime:      60 * time.Second,
		BTime:      30 * time.Second,
		StallLimit: 200,
		DRC:        true,
	}
}

// SRun is the outcome of one Columba S synthesis.
type SRun struct {
	Metrics core.Metrics
	DRCOK   bool
	// Trace is the run's per-phase breakdown (docs/metrics.md schema):
	// wall time and counters for parse, planarize, layout (with the
	// milp_* solver counters), validate and drc. FormatJSON embeds it so
	// benchmark artifacts carry the full cost structure, not just the
	// end-to-end runtime.
	Trace *obs.TraceJSON
}

// BRun is the outcome of one baseline synthesis.
type BRun struct {
	WidthMM, HeightMM float64
	FlowMM            float64
	CtrlInlets        int
	Runtime           time.Duration
	Status            milp.Status
	Binaries          int
	TooLarge          bool // paper: "cannot solve within reasonable run time"
}

// Row is one Table 1 row: a case with its three design variants.
type Row struct {
	Case     cases.Case
	Baseline *BRun // nil when skipped
	S1, S2   *SRun
	Err      error
}

// RunS synthesizes one Columba S variant of a case.
func RunS(c cases.Case, muxes int, cfg Config) (*SRun, error) {
	n, err := c.WithMuxes(muxes).Netlist()
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = cfg.STime
	opt.Layout.Workers = cfg.Workers
	opt.Layout.NoWarmStart = cfg.NoWarmStart
	opt.Layout.NoCuts = cfg.NoCuts
	opt.Layout.NoPresolve = cfg.NoPresolve
	opt.NoDelta = cfg.NoDelta
	opt.Layout.Branching = cfg.Branching
	opt.Layout.Kernel = cfg.Kernel
	if cfg.StallLimit > 0 {
		opt.Layout.StallLimit = cfg.StallLimit
	}
	opt.RunDRC = cfg.DRC
	tr := obs.New(fmt.Sprintf("%s-%dmux", c.ID, muxes))
	opt.Trace = tr
	res, err := core.Synthesize(n, opt)
	if err != nil {
		return nil, err
	}
	tr.Finish()
	run := &SRun{Metrics: res.Metrics(), Trace: tr.Snapshot()}
	run.DRCOK = res.DRC == nil || res.DRC.Clean()
	return run, nil
}

// RunBaseline synthesizes the Columba 2.0 baseline of a case.
func RunBaseline(c cases.Case, cfg Config) (*BRun, error) {
	n, err := c.Netlist()
	if err != nil {
		return nil, err
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := columba2.Synthesize(pr, columba2.Options{
		TimeLimit:  cfg.BTime,
		StallLimit: cfg.StallLimit,
		Gap:        0.05,
	})
	if errors.Is(err, columba2.ErrTooLarge) {
		return &BRun{TooLarge: true, Runtime: time.Since(start)}, nil
	}
	if err != nil {
		return nil, err
	}
	return &BRun{
		WidthMM:    res.W / 1000,
		HeightMM:   res.H / 1000,
		FlowMM:     res.FlowLength / 1000,
		CtrlInlets: res.CtrlInlets,
		Runtime:    res.Runtime,
		Status:     res.Status,
		Binaries:   res.ModelBinaries,
	}, nil
}

// RunCase produces one complete Table 1 row.
func RunCase(c cases.Case, cfg Config) *Row {
	row := &Row{Case: c}
	if !cfg.SkipBaseline {
		b, err := RunBaseline(c, cfg)
		if err != nil {
			row.Err = fmt.Errorf("baseline: %w", err)
			return row
		}
		row.Baseline = b
	}
	s1, err := RunS(c, 1, cfg)
	if err != nil {
		row.Err = fmt.Errorf("S 1-MUX: %w", err)
		return row
	}
	row.S1 = s1
	s2, err := RunS(c, 2, cfg)
	if err != nil {
		row.Err = fmt.Errorf("S 2-MUX: %w", err)
		return row
	}
	row.S2 = s2
	return row
}

// RunTable1 runs the full evaluation.
func RunTable1(cfg Config) []*Row {
	var rows []*Row
	for _, c := range cases.Table1() {
		rows = append(rows, RunCase(c, cfg))
	}
	return rows
}

// FormatTable renders rows in the layout of the paper's Table 1.
func FormatTable(rows []*Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %4s | %-13s %-13s %-13s | %9s %16s %16s | %5s %10s %10s | %10s %10s %10s\n",
		"app", "#u",
		"dim 2.0", "dim S-1MUX", "dim S-2MUX",
		"Lf 2.0", "Lf S-1MUX", "Lf S-2MUX",
		"#c 2.0", "#c 1MUX", "#c 2MUX",
		"t 2.0", "t 1MUX", "t 2MUX")
	b.WriteString(strings.Repeat("-", 190) + "\n")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-10s %4d | error: %v\n", r.Case.ID, r.Case.Units, r.Err)
			continue
		}
		dim := func(w, h float64) string { return fmt.Sprintf("%.2f*%.2f", w, h) }
		pct := func(v, base float64) string {
			if base == 0 {
				return fmt.Sprintf("%.1f", v)
			}
			return fmt.Sprintf("%.1f (%+.0f%%)", v, (v-base)/base*100)
		}
		pctI := func(v, base int) string {
			if base == 0 {
				return fmt.Sprintf("%d", v)
			}
			return fmt.Sprintf("%d (%+.0f%%)", v, float64(v-base)/float64(base)*100)
		}
		var bdim, blf, bc, bt string
		var baseLf float64
		var baseC int
		if r.Baseline == nil {
			bdim, blf, bc, bt = `\`, `\`, `\`, `\`
		} else if r.Baseline.TooLarge {
			bdim, blf, bc, bt = `\`, `\`, `\`, "unsolvable"
		} else {
			bdim = dim(r.Baseline.WidthMM, r.Baseline.HeightMM)
			blf = fmt.Sprintf("%.1f", r.Baseline.FlowMM)
			bc = fmt.Sprintf("%d", r.Baseline.CtrlInlets)
			suffix := ""
			if r.Baseline.Status == milp.Limit || r.Baseline.Status == milp.Feasible {
				suffix = "+" // budget exhausted: a lower bound on 2.0's runtime
			}
			bt = fmt.Sprintf("%.1fs%s", r.Baseline.Runtime.Seconds(), suffix)
			baseLf = r.Baseline.FlowMM
			baseC = r.Baseline.CtrlInlets
		}
		m1, m2 := r.S1.Metrics, r.S2.Metrics
		fmt.Fprintf(&b, "%-10s %4d | %-13s %-13s %-13s | %9s %16s %16s | %5s %10s %10s | %10s %9.1fs %9.1fs\n",
			r.Case.ID, r.Case.Units,
			bdim, dim(m1.WidthMM, m1.HeightMM), dim(m2.WidthMM, m2.HeightMM),
			blf, pct(m1.FlowMM, baseLf), pct(m2.FlowMM, baseLf),
			bc, pctI(m1.CtrlInlets, baseC), pctI(m2.CtrlInlets, baseC),
			bt, m1.Runtime.Seconds(), m2.Runtime.Seconds())
	}
	return b.String()
}

// FormatCSV renders rows as machine-readable CSV (one line per case) for
// downstream plotting of the evaluation series.
func FormatCSV(rows []*Row) string {
	var b strings.Builder
	b.WriteString("case,units," +
		"b_width_mm,b_height_mm,b_flow_mm,b_ctrl_inlets,b_runtime_s,b_status," +
		"s1_width_mm,s1_height_mm,s1_flow_mm,s1_ctrl_inlets,s1_runtime_s," +
		"s2_width_mm,s2_height_mm,s2_flow_mm,s2_ctrl_inlets,s2_runtime_s\n")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%s,%d,error,,,,,,,,,,,,,,,\n", r.Case.ID, r.Case.Units)
			continue
		}
		if r.Baseline == nil || r.Baseline.TooLarge {
			status := "skipped"
			if r.Baseline != nil {
				status = "unsolvable"
			}
			fmt.Fprintf(&b, "%s,%d,,,,,,%s,", r.Case.ID, r.Case.Units, status)
		} else {
			fmt.Fprintf(&b, "%s,%d,%.2f,%.2f,%.2f,%d,%.2f,%v,",
				r.Case.ID, r.Case.Units,
				r.Baseline.WidthMM, r.Baseline.HeightMM, r.Baseline.FlowMM,
				r.Baseline.CtrlInlets, r.Baseline.Runtime.Seconds(), r.Baseline.Status)
		}
		m1, m2 := r.S1.Metrics, r.S2.Metrics
		fmt.Fprintf(&b, "%.2f,%.2f,%.2f,%d,%.2f,%.2f,%.2f,%.2f,%d,%.2f\n",
			m1.WidthMM, m1.HeightMM, m1.FlowMM, m1.CtrlInlets, m1.Runtime.Seconds(),
			m2.WidthMM, m2.HeightMM, m2.FlowMM, m2.CtrlInlets, m2.Runtime.Seconds())
	}
	return b.String()
}

// TrendReport checks the four qualitative trends of Section 4 against the
// measured rows and describes any departures.
func TrendReport(rows []*Row) string {
	var b strings.Builder
	for _, r := range rows {
		if r.Err != nil || r.Baseline == nil || r.Baseline.TooLarge {
			continue
		}
		m1, m2 := r.S1.Metrics, r.S2.Metrics
		check := func(ok bool, trend string) {
			status := "OK "
			if !ok {
				status = "DEV"
			}
			fmt.Fprintf(&b, "  [%s] %s: %s\n", status, r.Case.ID, trend)
		}
		check(m1.Runtime < r.Baseline.Runtime && m2.Runtime < r.Baseline.Runtime,
			fmt.Sprintf("trend 1: S faster than 2.0 (%.1fs/%.1fs vs %.1fs)",
				m1.Runtime.Seconds(), m2.Runtime.Seconds(), r.Baseline.Runtime.Seconds()))
		check(m1.CtrlInlets <= r.Baseline.CtrlInlets,
			fmt.Sprintf("trend 2: S 1-MUX uses fewer inlets (%d vs %d)", m1.CtrlInlets, r.Baseline.CtrlInlets))
		check(m1.CtrlInlets <= m2.CtrlInlets,
			fmt.Sprintf("trend 2b: 1-MUX <= 2-MUX inlets (%d vs %d)", m1.CtrlInlets, m2.CtrlInlets))
		check(m1.FlowMM < r.Baseline.FlowMM,
			fmt.Sprintf("trend 3: S flow shorter (%.1f vs %.1f mm)", m1.FlowMM, r.Baseline.FlowMM))
		sArea := m1.WidthMM * m1.HeightMM
		bArea := r.Baseline.WidthMM * r.Baseline.HeightMM
		check(sArea >= bArea*0.8,
			fmt.Sprintf("trend 4: S area >= 2.0 area (%.0f vs %.0f mm²)", sArea, bArea))
	}
	return b.String()
}
