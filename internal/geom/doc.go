// Package geom provides the planar geometry kernel used throughout the
// Columba S reproduction: points, rectangles and interval arithmetic on a
// micrometre-denominated coordinate plane.
//
// All coordinates are float64 micrometres. The chip origin (0,0) is the
// bottom-left corner of the functional region; x grows to the right and y
// grows upward, matching the coordinate conventions of the paper's
// physical-synthesis models (Section 3.2).
//
// Key types: Pt, Seg and Rect (with interval helpers such as SpanOverlap
// and BoundingBox); MM and UM convert between the µm model space and the
// mm units the paper reports.
package geom
