package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectWH(t *testing.T) {
	r := RectWH(10, 20, 30, 40)
	if r.XL != 10 || r.XR != 40 || r.YB != 20 || r.YT != 60 {
		t.Fatalf("RectWH wrong: %v", r)
	}
	if r.W() != 30 || r.H() != 40 {
		t.Fatalf("W/H wrong: %v %v", r.W(), r.H())
	}
	if r.Area() != 1200 {
		t.Fatalf("Area wrong: %v", r.Area())
	}
	if got := r.Center(); !got.Eq(Pt{25, 40}) {
		t.Fatalf("Center wrong: %v", got)
	}
}

func TestRectValidEmpty(t *testing.T) {
	if !RectWH(0, 0, 5, 5).Valid() {
		t.Error("positive rect should be valid")
	}
	if (Rect{XL: 10, XR: 0, YB: 0, YT: 10}).Valid() {
		t.Error("inverted rect should be invalid")
	}
	if !RectWH(0, 0, 0, 10).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if RectWH(0, 0, 1, 1).Empty() {
		t.Error("unit rect should not be empty")
	}
}

func TestIntersectTouchingIsNotOverlap(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(10, 0, 10, 10) // abuts a on the right
	if a.Overlaps(b) {
		t.Error("abutting rectangles must not count as overlapping (paper allows shared edges)")
	}
	c := RectWH(9, 0, 10, 10)
	got, ok := a.Intersect(c)
	if !ok {
		t.Fatal("expected overlap")
	}
	want := Rect{XL: 9, XR: 10, YB: 0, YT: 10}
	if got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
}

func TestUnionAndBoundingBox(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(20, -5, 5, 5)
	u := a.Union(b)
	want := Rect{XL: 0, XR: 25, YB: -5, YT: 10}
	if u != want {
		t.Fatalf("Union = %v, want %v", u, want)
	}
	if bb := BoundingBox([]Rect{a, b}); bb != want {
		t.Fatalf("BoundingBox = %v, want %v", bb, want)
	}
	if bb := BoundingBox(nil); bb != (Rect{}) {
		t.Fatalf("empty BoundingBox = %v", bb)
	}
}

func TestContains(t *testing.T) {
	r := RectWH(0, 0, 100, 50)
	for _, p := range []Pt{{0, 0}, {100, 50}, {50, 25}} {
		if !r.Contains(p) {
			t.Errorf("r should contain %v", p)
		}
	}
	for _, p := range []Pt{{-1, 0}, {101, 25}, {50, 51}} {
		if r.Contains(p) {
			t.Errorf("r should not contain %v", p)
		}
	}
	if !r.ContainsRect(RectWH(10, 10, 20, 20)) {
		t.Error("inner rect should be contained")
	}
	if r.ContainsRect(RectWH(90, 40, 20, 20)) {
		t.Error("protruding rect should not be contained")
	}
}

func TestSharedEdges(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	right := RectWH(10, 5, 10, 10)
	if !a.SharesVerticalEdge(right) {
		t.Error("expected shared vertical edge")
	}
	above := RectWH(5, 10, 10, 10)
	if !a.SharesHorizontalEdge(above) {
		t.Error("expected shared horizontal edge")
	}
	diag := RectWH(10, 10, 10, 10) // corner touch only
	if a.SharesVerticalEdge(diag) || a.SharesHorizontalEdge(diag) {
		t.Error("corner touch must not count as a shared edge")
	}
	far := RectWH(30, 0, 10, 10)
	if a.SharesVerticalEdge(far) {
		t.Error("distant rect shares no edge")
	}
}

func TestSegOrientation(t *testing.T) {
	h := Seg{Pt{0, 5}, Pt{10, 5}}
	v := Seg{Pt{3, 0}, Pt{3, 9}}
	if !h.Horizontal() || h.Vertical() {
		t.Error("h should be horizontal only")
	}
	if !v.Vertical() || v.Horizontal() {
		t.Error("v should be vertical only")
	}
	if h.Len() != 10 || v.Len() != 9 {
		t.Errorf("lengths wrong: %v %v", h.Len(), v.Len())
	}
}

func TestSegCanon(t *testing.T) {
	s := Seg{Pt{10, 5}, Pt{0, 5}}
	c := s.Canon()
	if c.A.X != 0 || c.B.X != 10 {
		t.Fatalf("Canon did not order by x: %v", c)
	}
	vs := Seg{Pt{3, 9}, Pt{3, 0}}
	cv := vs.Canon()
	if cv.A.Y != 0 || cv.B.Y != 9 {
		t.Fatalf("Canon did not order vertical by y: %v", cv)
	}
}

func TestSegBounds(t *testing.T) {
	s := Seg{Pt{0, 5}, Pt{10, 5}}
	b := s.Bounds(0.5)
	want := Rect{XL: -0.5, XR: 10.5, YB: 4.5, YT: 5.5}
	if b != want {
		t.Fatalf("Bounds = %v, want %v", b, want)
	}
}

func TestSegCrossesHV(t *testing.T) {
	h := Seg{Pt{0, 5}, Pt{10, 5}}
	v := Seg{Pt{4, 0}, Pt{4, 10}}
	p, ok := h.Crosses(v)
	if !ok || !p.Eq(Pt{4, 5}) {
		t.Fatalf("Crosses = %v %v", p, ok)
	}
	// Crossing is symmetric.
	p2, ok2 := v.Crosses(h)
	if !ok2 || !p2.Eq(p) {
		t.Fatalf("reverse Crosses = %v %v", p2, ok2)
	}
	// Miss.
	v2 := Seg{Pt{4, 6}, Pt{4, 10}}
	if _, ok := h.Crosses(v2); ok {
		t.Error("segments should not cross")
	}
	// Endpoint touch counts.
	v3 := Seg{Pt{0, 5}, Pt{0, 10}}
	if _, ok := h.Crosses(v3); !ok {
		t.Error("endpoint touch should count as a crossing")
	}
}

func TestSegCrossesCollinear(t *testing.T) {
	a := Seg{Pt{0, 5}, Pt{10, 5}}
	b := Seg{Pt{8, 5}, Pt{20, 5}}
	p, ok := a.Crosses(b)
	if !ok || !p.Eq(Pt{9, 5}) {
		t.Fatalf("collinear overlap = %v %v", p, ok)
	}
	c := Seg{Pt{11, 5}, Pt{20, 5}}
	if _, ok := a.Crosses(c); ok {
		t.Error("disjoint collinear segments should not cross")
	}
	va := Seg{Pt{3, 0}, Pt{3, 10}}
	vb := Seg{Pt{3, 5}, Pt{3, 20}}
	p, ok = va.Crosses(vb)
	if !ok || !p.Eq(Pt{3, 7.5}) {
		t.Fatalf("vertical collinear overlap = %v %v", p, ok)
	}
	vc := Seg{Pt{4, 0}, Pt{4, 10}}
	if _, ok := va.Crosses(vc); ok {
		t.Error("parallel verticals at different x should not cross")
	}
}

func TestSpanOverlap(t *testing.T) {
	if got := SpanOverlap(0, 10, 5, 20); got != 5 {
		t.Errorf("SpanOverlap = %v, want 5", got)
	}
	if got := SpanOverlap(0, 10, 10, 20); got != 0 {
		t.Errorf("touching spans should overlap 0, got %v", got)
	}
	if got := SpanOverlap(0, 10, 12, 20); got != 0 {
		t.Errorf("disjoint spans should overlap 0, got %v", got)
	}
}

func TestUnitConversions(t *testing.T) {
	if MM(1500) != 1.5 {
		t.Errorf("MM(1500) = %v", MM(1500))
	}
	if UM(2.5) != 2500 {
		t.Errorf("UM(2.5) = %v", UM(2.5))
	}
}

// Property: Union is commutative and contains both operands.
func TestUnionProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := RectWH(clamp(ax), clamp(ay), abs1(aw), abs1(ah))
		b := RectWH(clamp(bx), clamp(by), abs1(bw), abs1(bh))
		u1 := a.Union(b)
		u2 := b.Union(a)
		return u1 == u2 && u1.ContainsRect(a) && u1.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: overlap is symmetric, and translation preserves it.
func TestOverlapProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh, dx, dy float64) bool {
		a := RectWH(clamp(ax), clamp(ay), abs1(aw), abs1(ah))
		b := RectWH(clamp(bx), clamp(by), abs1(bw), abs1(bh))
		d1, d2 := clamp(dx), clamp(dy)
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		return a.Overlaps(b) == a.Translate(d1, d2).Overlaps(b.Translate(d1, d2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection, when present, is contained in both rects and its
// area is at most min(area(a), area(b)).
func TestIntersectProperties(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := RectWH(clamp(ax), clamp(ay), abs1(aw), abs1(ah))
		b := RectWH(clamp(bx), clamp(by), abs1(bw), abs1(bh))
		in, ok := a.Intersect(b)
		if !ok {
			return true
		}
		return a.ContainsRect(in) && b.ContainsRect(in) &&
			in.Area() <= a.Area()+Eps && in.Area() <= b.Area()+Eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps an arbitrary float into a well-behaved coordinate range.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 10000)
}

// abs1 maps an arbitrary float into a positive size at least 1.
func abs1(v float64) float64 {
	return math.Abs(clamp(v)) + 1
}
