package geom

import (
	"fmt"
	"math"
)

// Eps is the geometric comparison tolerance in micrometres. Physical
// synthesis works on a 1 µm-resolution grid, so anything below a tenth of a
// micrometre is considered numerical noise.
const Eps = 0.1

// MicronsPerMM converts between the internal micrometre unit and the
// millimetre figures reported in the paper's tables.
const MicronsPerMM = 1000.0

// Pt is a point on the chip plane, in micrometres.
type Pt struct {
	X, Y float64
}

// Add returns the translate of p by (dx, dy).
func (p Pt) Add(dx, dy float64) Pt { return Pt{p.X + dx, p.Y + dy} }

// Eq reports whether p and q coincide within Eps.
func (p Pt) Eq(q Pt) bool {
	return math.Abs(p.X-q.X) < Eps && math.Abs(p.Y-q.Y) < Eps
}

func (p Pt) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle described by its four boundary
// coordinates, mirroring the v_{r,xl}, v_{r,xr}, v_{r,yb}, v_{r,yt}
// variables of the paper's models.
type Rect struct {
	XL, XR, YB, YT float64
}

// RectWH builds a rectangle from its bottom-left corner and size.
func RectWH(x, y, w, h float64) Rect { return Rect{XL: x, XR: x + w, YB: y, YT: y + h} }

// W returns the x-extent (width) of r.
func (r Rect) W() float64 { return r.XR - r.XL }

// H returns the y-extent (height/length) of r.
func (r Rect) H() float64 { return r.YT - r.YB }

// Area returns the area of r in µm².
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the midpoint of r.
func (r Rect) Center() Pt { return Pt{(r.XL + r.XR) / 2, (r.YB + r.YT) / 2} }

// Valid reports whether r is a well-formed (possibly degenerate) rectangle.
func (r Rect) Valid() bool { return r.XR >= r.XL-Eps && r.YT >= r.YB-Eps }

// Empty reports whether r has (numerically) zero area.
func (r Rect) Empty() bool { return r.W() < Eps || r.H() < Eps }

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.XL + dx, r.XR + dx, r.YB + dy, r.YT + dy}
}

// Union returns the bounding box of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		XL: math.Min(r.XL, s.XL),
		XR: math.Max(r.XR, s.XR),
		YB: math.Min(r.YB, s.YB),
		YT: math.Max(r.YT, s.YT),
	}
}

// Intersect returns the overlap of r and s and whether it is non-empty.
// Touching boundaries (shared edges) do not count as an overlap: the
// paper's non-overlapping constraints explicitly allow rectangles to abut
// because the module models already include the spacing margin d.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		XL: math.Max(r.XL, s.XL),
		XR: math.Min(r.XR, s.XR),
		YB: math.Max(r.YB, s.YB),
		YT: math.Min(r.YT, s.YT),
	}
	if out.XR-out.XL < Eps || out.YT-out.YB < Eps {
		return Rect{}, false
	}
	return out, true
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	_, ok := r.Intersect(s)
	return ok
}

// Contains reports whether r contains p (boundary inclusive).
func (r Rect) Contains(p Pt) bool {
	return p.X >= r.XL-Eps && p.X <= r.XR+Eps && p.Y >= r.YB-Eps && p.Y <= r.YT+Eps
}

// ContainsRect reports whether s lies entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return s.XL >= r.XL-Eps && s.XR <= r.XR+Eps && s.YB >= r.YB-Eps && s.YT <= r.YT+Eps
}

// SharesVerticalEdge reports whether r and s touch along a vertical edge
// with overlapping y-spans (r's right on s's left or vice versa).
func (r Rect) SharesVerticalEdge(s Rect) bool {
	touch := math.Abs(r.XR-s.XL) < Eps || math.Abs(s.XR-r.XL) < Eps
	return touch && SpanOverlap(r.YB, r.YT, s.YB, s.YT) > Eps
}

// SharesHorizontalEdge reports whether r and s touch along a horizontal
// edge with overlapping x-spans.
func (r Rect) SharesHorizontalEdge(s Rect) bool {
	touch := math.Abs(r.YT-s.YB) < Eps || math.Abs(s.YT-r.YB) < Eps
	return touch && SpanOverlap(r.XL, r.XR, s.XL, s.XR) > Eps
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f]x[%.1f,%.1f]", r.XL, r.XR, r.YB, r.YT)
}

// SpanOverlap returns the length of the overlap of intervals [a0,a1] and
// [b0,b1], or 0 if they are disjoint.
func SpanOverlap(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Seg is an axis-parallel channel segment. Channels in Columba S are
// strictly straight (Section 2): flow channels horizontal, control channels
// vertical, so a segment suffices to describe any routed channel.
type Seg struct {
	A, B Pt
}

// Horizontal reports whether s runs along the x-axis.
func (s Seg) Horizontal() bool { return math.Abs(s.A.Y-s.B.Y) < Eps }

// Vertical reports whether s runs along the y-axis.
func (s Seg) Vertical() bool { return math.Abs(s.A.X-s.B.X) < Eps }

// Len returns the Manhattan length of s.
func (s Seg) Len() float64 {
	return math.Abs(s.A.X-s.B.X) + math.Abs(s.A.Y-s.B.Y)
}

// Canon returns s with endpoints ordered by increasing x then y.
func (s Seg) Canon() Seg {
	if s.B.X < s.A.X || (s.B.X == s.A.X && s.B.Y < s.A.Y) {
		return Seg{s.B, s.A}
	}
	return s
}

// Bounds returns the (possibly degenerate) bounding rectangle of s expanded
// by half-width hw on each side, i.e. the physical footprint of a channel
// of width 2·hw routed along s.
func (s Seg) Bounds(hw float64) Rect {
	c := s.Canon()
	return Rect{
		XL: c.A.X - hw, XR: c.B.X + hw,
		YB: math.Min(c.A.Y, c.B.Y) - hw, YT: math.Max(c.A.Y, c.B.Y) + hw,
	}
}

// Crosses reports whether two axis-parallel segments cross or touch, and
// returns the crossing point when they do. Collinear overlaps report the
// midpoint of the shared span.
func (s Seg) Crosses(t Seg) (Pt, bool) {
	sc, tc := s.Canon(), t.Canon()
	switch {
	case sc.Horizontal() && tc.Vertical():
		return crossHV(sc, tc)
	case sc.Vertical() && tc.Horizontal():
		return crossHV(tc, sc)
	case sc.Horizontal() && tc.Horizontal():
		if math.Abs(sc.A.Y-tc.A.Y) >= Eps {
			return Pt{}, false
		}
		lo := math.Max(sc.A.X, tc.A.X)
		hi := math.Min(sc.B.X, tc.B.X)
		if hi < lo-Eps {
			return Pt{}, false
		}
		return Pt{(lo + hi) / 2, sc.A.Y}, true
	default: // both vertical
		if math.Abs(sc.A.X-tc.A.X) >= Eps {
			return Pt{}, false
		}
		lo := math.Max(math.Min(sc.A.Y, sc.B.Y), math.Min(tc.A.Y, tc.B.Y))
		hi := math.Min(math.Max(sc.A.Y, sc.B.Y), math.Max(tc.A.Y, tc.B.Y))
		if hi < lo-Eps {
			return Pt{}, false
		}
		return Pt{sc.A.X, (lo + hi) / 2}, true
	}
}

func crossHV(h, v Seg) (Pt, bool) {
	x := v.A.X
	y := h.A.Y
	if x < h.A.X-Eps || x > h.B.X+Eps {
		return Pt{}, false
	}
	ylo := math.Min(v.A.Y, v.B.Y)
	yhi := math.Max(v.A.Y, v.B.Y)
	if y < ylo-Eps || y > yhi+Eps {
		return Pt{}, false
	}
	return Pt{x, y}, true
}

// MM converts micrometres to millimetres for reporting.
func MM(um float64) float64 { return um / MicronsPerMM }

// UM converts millimetres to micrometres.
func UM(mm float64) float64 { return mm * MicronsPerMM }

// BoundingBox returns the union of all rectangles, or a zero rect if none.
func BoundingBox(rs []Rect) Rect {
	if len(rs) == 0 {
		return Rect{}
	}
	out := rs[0]
	for _, r := range rs[1:] {
		out = out.Union(r)
	}
	return out
}
