// Package validate implements the layout validation phase of Columba S
// (Section 3.2.2): it takes the rectangle plan of the generation phase and
// completes the design with explicit module placement, channel routing and
// chip boundary restoration, then synthesizes the multiplexers along the
// MUX boundaries.
//
// Key types: Validate (or ValidateObs, which reports the mux-synthesis
// sub-phase to an obs.Span) turns a layout.Plan into a Design of
// FlowChannels, CtrlChannels, Inlets and the per-boundary multiplexers.
package validate
