package validate

import (
	"math"
	"testing"
	"time"

	"columbas/internal/geom"
	"columbas/internal/layout"
	"columbas/internal/module"
	"columbas/internal/netlist"
	"columbas/internal/planar"
)

func design(t *testing.T, src string) *Design {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatalf("planarize: %v", err)
	}
	o := layout.DefaultOptions()
	o.TimeLimit = 3 * time.Second
	o.StallLimit = 40
	o.Gap = 0.1
	p, err := layout.Generate(pr, o)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	d, err := Validate(p)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	return d
}

const chainSrc = `
design chain
unit m1 mixer
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`

func TestChainDesign(t *testing.T) {
	d := design(t, chainSrc)
	if len(d.Modules) != 2 {
		t.Fatalf("modules = %d, want 2", len(d.Modules))
	}
	if d.Module("m1") == nil || d.Module("c1") == nil {
		t.Fatal("module lookup failed")
	}
	if d.Module("nope") != nil {
		t.Fatal("unknown module should be nil")
	}
	// 3 expanded channels (inlet, inter, outlet), no intra-block ones.
	if len(d.Flow) != 3 {
		t.Fatalf("flow channels = %d, want 3", len(d.Flow))
	}
	// 7 control channels (mixer 5 + chamber 2), all to the bottom MUX.
	if len(d.Ctrl) != 7 {
		t.Fatalf("ctrl channels = %d, want 7", len(d.Ctrl))
	}
	if d.MuxBottom == nil || d.MuxTop != nil {
		t.Fatal("1-MUX design must have exactly the bottom MUX")
	}
	if d.MuxBottom.N != 7 {
		t.Fatalf("bottom MUX controls %d channels, want 7", d.MuxBottom.N)
	}
	// #c_in per the formula: 2*ceil(log2 7)+1 = 7.
	if d.ControlInlets() != 7 {
		t.Fatalf("ControlInlets = %d, want 7", d.ControlInlets())
	}
	// Two fluid terminals.
	if len(d.Inlets) != 2 {
		t.Fatalf("fluid terminals = %d, want 2", len(d.Inlets))
	}
}

func TestAllFlowChannelsHorizontal(t *testing.T) {
	d := design(t, chainSrc)
	for _, f := range d.Flow {
		if !f.Seg.Horizontal() {
			t.Errorf("flow channel %s is not horizontal: %v", f.Name, f.Seg)
		}
	}
}

func TestChannelsConnectPins(t *testing.T) {
	d := design(t, chainSrc)
	m1 := d.Module("m1")
	c1 := d.Module("c1")
	// Some flow channel must run between m1's right pin row and c1's left
	// pin row (they are aligned).
	if math.Abs(m1.PinRight.Y-c1.PinLeft.Y) > 1 {
		t.Fatalf("pins misaligned: %v vs %v", m1.PinRight.Y, c1.PinLeft.Y)
	}
	found := false
	for _, f := range d.Flow {
		if math.Abs(f.Seg.A.Y-m1.PinRight.Y) < 1 && f.Seg.A.X >= m1.Box.XR-1 && f.Seg.B.X <= c1.Box.XL+1 {
			found = true
		}
	}
	if !found {
		t.Error("no channel connecting m1 to c1 at the pin row")
	}
}

func TestCtrlChannelsReachMux(t *testing.T) {
	d := design(t, chainSrc)
	for _, c := range d.Ctrl {
		if c.Top {
			t.Errorf("ctrl %s routed top in 1-MUX design", c.Name)
		}
		if c.MuxIndex < 0 || c.MuxIndex >= d.MuxBottom.N {
			t.Errorf("ctrl %s has bad MUX index %d", c.Name, c.MuxIndex)
		}
		if math.Abs(d.MuxBottom.ChannelX[c.MuxIndex]-c.X) > 0.2 {
			t.Errorf("ctrl %s x mismatch with MUX channel", c.Name)
		}
	}
	// Addresses are unique.
	seen := map[int]bool{}
	for _, c := range d.Ctrl {
		if seen[c.MuxIndex] {
			t.Fatalf("duplicate MUX index %d", c.MuxIndex)
		}
		seen[c.MuxIndex] = true
	}
}

func TestParallelSharesCtrlChannels(t *testing.T) {
	d := design(t, `
design par
unit m1 mixer
unit c1 chamber
unit m2 mixer
unit c2 chamber
connect in:a m1
connect m1 c1
connect in:a m2
connect m2 c2
net c1 c2 out:waste
parallel m1 c1 m2 c2
`)
	// 4 units but only one row's worth of control channels for the block:
	// mixer 5 + chamber 2 = 7, plus the switch's junction channels.
	blockCtrl := 0
	for _, c := range d.Ctrl {
		if c.Owner == "g0" {
			blockCtrl++
		}
	}
	if blockCtrl != 7 {
		t.Fatalf("merged block ctrl channels = %d, want 7 (shared rows)", blockCtrl)
	}
	// Intra-block channels exist: m1-c1 and m2-c2.
	intra := 0
	for _, f := range d.Flow {
		if len(f.Name) > 3 && f.Name[:3] == "g0." {
			intra++
		}
	}
	if intra != 2 {
		t.Fatalf("intra-block channels = %d, want 2", intra)
	}
}

func TestSwitchJunctionsOnChannelRows(t *testing.T) {
	d := design(t, `
design sw
unit a mixer
unit b mixer
unit c mixer
connect in:x a
connect in:y b
connect in:z c
net a b c out:waste
`)
	sw := d.Module("s1")
	if sw == nil {
		t.Fatal("switch instance missing")
	}
	if len(sw.Junctions) != 4 {
		t.Fatalf("junctions = %d, want 4", len(sw.Junctions))
	}
	// Each unit's pin row must host one junction.
	for _, name := range []string{"a", "b", "c"} {
		u := d.Module(name)
		found := false
		for _, j := range sw.Junctions {
			if math.Abs(j.Y-u.PinRight.Y) < 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("no junction on %s's pin row %v", name, u.PinRight.Y)
		}
	}
	// Junctions stay inside the switch box.
	for i, j := range sw.Junctions {
		if j.Y < sw.Box.YB-1 || j.Y > sw.Box.YT+1 {
			t.Errorf("junction %d at y=%v outside box %v", i, j.Y, sw.Box)
		}
	}
}

func TestTwoMuxDesign(t *testing.T) {
	d := design(t, `
design two
muxes 2
unit m1 mixer
unit c1 chamber
unit m2 mixer
unit c2 chamber
connect in:a m1
connect m1 c1
connect c1 out:w1
connect in:b m2
connect m2 c2
connect c2 out:w2
`)
	if d.MuxBottom == nil || d.MuxTop == nil {
		t.Fatalf("2-MUX design should populate both MUXes (bottom=%v top=%v)",
			d.MuxBottom != nil, d.MuxTop != nil)
	}
	total := d.MuxBottom.N + d.MuxTop.N
	if total != 14 {
		t.Fatalf("total channels = %d, want 14", total)
	}
	// Inlets follow the per-MUX formula.
	want := 0
	for _, m := range []*int{&d.MuxBottom.N, &d.MuxTop.N} {
		want += 2*ceilLog2(*m) + 1
	}
	if d.ControlInlets() != want {
		t.Fatalf("ControlInlets = %d, want %d", d.ControlInlets(), want)
	}
	// The top MUX sits above the functional region, bottom below.
	if d.MuxTop.Box.YB < d.FuncRegion.YT-1 {
		t.Error("top MUX overlaps functional region")
	}
	if d.MuxBottom.Box.YT > d.FuncRegion.YB+1 {
		t.Error("bottom MUX overlaps functional region")
	}
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

func TestChipContainsEverything(t *testing.T) {
	d := design(t, chainSrc)
	for _, m := range d.Modules {
		if !d.Chip.ContainsRect(m.Box) {
			t.Errorf("module %s outside chip", m.Name)
		}
	}
	for _, f := range d.Flow {
		if !d.Chip.Contains(f.Seg.A) || !d.Chip.Contains(f.Seg.B) {
			t.Errorf("flow %s outside chip", f.Name)
		}
	}
	if d.MuxBottom != nil && !d.Chip.ContainsRect(d.MuxBottom.Box) {
		t.Error("bottom MUX outside chip")
	}
	w, h := d.Dimensions()
	if w <= 0 || h <= 0 {
		t.Fatalf("dimensions = %v x %v", w, h)
	}
}

func TestInletsOnBoundaries(t *testing.T) {
	d := design(t, chainSrc)
	for _, in := range d.Inlets {
		onWest := math.Abs(in.At.X) < 1
		onEast := math.Abs(in.At.X-d.FuncRegion.XR) < 1
		if !onWest && !onEast {
			t.Errorf("terminal %s at %v not on a flow boundary", in.Name, in.At)
		}
	}
	names := map[string]bool{}
	for _, in := range d.Inlets {
		names[in.Name] = true
	}
	if !names["sample"] || !names["waste"] {
		t.Fatalf("terminals missing: %v", names)
	}
}

func TestFlowLengthPositiveAndFinite(t *testing.T) {
	d := design(t, chainSrc)
	l := d.FlowLength()
	if l <= 0 || math.IsInf(l, 0) || math.IsNaN(l) {
		t.Fatalf("FlowLength = %v", l)
	}
	// Plan-level and design-level lengths agree within the intra-module
	// stubs (design counts intra-block chain channels too).
	if l < d.Plan.FlowLength()-1 {
		t.Fatalf("design flow length %v below plan estimate %v", l, d.Plan.FlowLength())
	}
}

func TestCtrlAccessMatchesMuxSide(t *testing.T) {
	d := design(t, chainSrc)
	for _, m := range d.Modules {
		for _, l := range m.Lines {
			if l.Access != module.FromBottom {
				t.Errorf("line %s access %v, want bottom (1-MUX)", l.Name, l.Access)
			}
		}
	}
}

func TestValveYExtents(t *testing.T) {
	d := design(t, chainSrc)
	for _, c := range d.Ctrl {
		if math.IsInf(c.YValve, 0) {
			t.Errorf("ctrl %s has unset valve extent", c.Name)
		}
		if c.YValve <= 0 {
			t.Errorf("ctrl %s valve extent %v not above the MUX boundary", c.Name, c.YValve)
		}
	}
}

func TestMuxChannelOrderIsByX(t *testing.T) {
	d := design(t, chainSrc)
	xs := d.MuxBottom.ChannelX
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("MUX channels not sorted by x: %v", xs)
		}
	}
}

func TestDegenerateSingleUnit(t *testing.T) {
	d := design(t, "design one\nunit a mixer\nconnect in:x a\nconnect a out:y\n")
	if len(d.Modules) != 1 || len(d.Flow) != 2 {
		t.Fatalf("modules=%d flow=%d", len(d.Modules), len(d.Flow))
	}
	if d.MuxBottom.N != 5 {
		t.Fatalf("channels = %d, want 5", d.MuxBottom.N)
	}
}

func TestGeomSanity(t *testing.T) {
	d := design(t, chainSrc)
	// No two modules overlap.
	for i := 0; i < len(d.Modules); i++ {
		for j := i + 1; j < len(d.Modules); j++ {
			if in, ok := d.Modules[i].Box.Intersect(d.Modules[j].Box); ok && in.W() > 1 && in.H() > 1 {
				t.Errorf("modules %s and %s overlap", d.Modules[i].Name, d.Modules[j].Name)
			}
		}
	}
	_ = geom.Pt{}
}
