package validate

import (
	"strings"
	"testing"
)

func TestChannelForResolvesOwnLines(t *testing.T) {
	d := design(t, chainSrc)
	for _, want := range []string{"m1.in", "m1.pump2", "c1.out"} {
		ch, err := d.ChannelFor(want)
		if err != nil {
			t.Fatalf("ChannelFor(%s): %v", want, err)
		}
		if ch != want {
			t.Fatalf("ChannelFor(%s) = %s (no sharing in this design)", want, ch)
		}
	}
}

func TestChannelForSharesAcrossLanes(t *testing.T) {
	d := design(t, `
design shared
unit m1 mixer
unit c1 chamber
unit m2 mixer
unit c2 chamber
connect in:a m1
connect m1 c1
connect in:a m2
connect m2 c2
net c1 c2 out:waste
parallel m1 c1 m2 c2
`)
	// Lane 2's line resolves to the shared channel (named after lane 1).
	ch1, err := d.ChannelFor("m1.in")
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := d.ChannelFor("m2.in")
	if err != nil {
		t.Fatal(err)
	}
	if ch1 != ch2 {
		t.Fatalf("parallel lanes must share: %s vs %s", ch1, ch2)
	}
}

func TestChannelForUnknownLine(t *testing.T) {
	d := design(t, chainSrc)
	if _, err := d.ChannelFor("ghost.in"); err == nil ||
		!strings.Contains(err.Error(), "no control line") {
		t.Fatalf("err = %v", err)
	}
}
