package validate

import (
	"fmt"
	"math"
	"sort"

	"columbas/internal/geom"
	"columbas/internal/layout"
	"columbas/internal/module"
	"columbas/internal/mux"
	"columbas/internal/obs"
	"columbas/internal/planar"
)

// FlowChannel is one routed inter-module flow channel (straight,
// horizontal per the routing discipline).
type FlowChannel struct {
	Name  string
	Seg   geom.Seg
	Width float64
}

// CtrlChannel is one independent vertical control channel.
type CtrlChannel struct {
	Name string
	// Owner is the placeable rect (block or switch) the channel serves.
	Owner string
	X     float64
	// YValve is the channel's module-side extent (the farthest valve).
	YValve float64
	// Top reports whether the channel exits through the top MUX boundary.
	Top bool
	// MuxIndex is the channel's address within its multiplexer.
	MuxIndex int
}

// Inlet is a fluid port on a flow boundary.
type Inlet struct {
	Name  string
	At    geom.Pt
	Inlet bool // true: fluid inlet, false: outlet
}

// Design is a complete, manufacturing-ready Columba S design.
type Design struct {
	Name  string
	Muxes int
	Plan  *layout.Plan

	Modules []*module.Instance
	Flow    []FlowChannel
	Ctrl    []CtrlChannel
	Inlets  []Inlet

	MuxBottom *mux.Mux // nil when no channel exits bottom
	MuxTop    *mux.Mux // nil unless a 2-MUX design routes channels up

	// FuncRegion is the functional region box (origin at (0,0)).
	FuncRegion geom.Rect
	// Chip is the full chip extent including MUX regions and boundary
	// margins.
	Chip geom.Rect
}

// Module returns the named module instance, or nil.
func (d *Design) Module(name string) *module.Instance {
	for _, m := range d.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// ChannelFor resolves a module control line (e.g. "m1.pump2") to the
// control channel that actuates it. Lines of parallel units share one
// vertical channel, so the returned channel may carry a sibling lane's
// name — actuating it drives all lanes at once (the point of parallel
// merging).
func (d *Design) ChannelFor(lineName string) (string, error) {
	for _, m := range d.Modules {
		for _, l := range m.Lines {
			if l.Name != lineName {
				continue
			}
			top := l.Access == module.FromTop
			for i := range d.Ctrl {
				if d.Ctrl[i].Top == top && math.Abs(d.Ctrl[i].X-l.X) < 0.2 {
					return d.Ctrl[i].Name, nil
				}
			}
			return "", fmt.Errorf("validate: line %q has no control channel at x=%.0f", lineName, l.X)
		}
	}
	return "", fmt.Errorf("validate: no control line named %q", lineName)
}

// ControlInlets returns #c_in of Table 1: the total pressure inlets of all
// multiplexers.
func (d *Design) ControlInlets() int {
	n := 0
	if d.MuxBottom != nil {
		n += d.MuxBottom.Inlets()
	}
	if d.MuxTop != nil {
		n += d.MuxTop.Inlets()
	}
	return n
}

// FlowLength returns the functional-region flow channel length in µm
// (inter-module channels; MUX-flow channels excluded per Section 4).
func (d *Design) FlowLength() float64 {
	total := 0.0
	for _, f := range d.Flow {
		total += f.Seg.Len()
	}
	return total
}

// Dimensions returns the full chip width and height in µm.
func (d *Design) Dimensions() (w, h float64) { return d.Chip.W(), d.Chip.H() }

// Validate restores a generation-phase plan into a complete design.
func Validate(p *layout.Plan) (*Design, error) { return ValidateObs(p, nil) }

// ValidateObs is Validate with phase tracing: sp (may be nil) is the
// pipeline's "validate" span, under which multiplexer synthesis records
// its own sub-span and counters.
func ValidateObs(p *layout.Plan, sp *obs.Span) (*Design, error) {
	d := &Design{
		Name:       p.Name,
		Muxes:      p.Muxes,
		Plan:       p,
		FuncRegion: geom.Rect{XL: 0, XR: p.XMax, YB: 0, YT: p.YMax},
	}
	instances := map[string]*module.Instance{}
	ctrlTop := map[string]bool{}
	for _, r := range p.Rects {
		if r.Kind == layout.RCtrl {
			ctrlTop[p.Rects[r.Owner].Name] = r.CtrlTop
		}
	}
	access := func(owner string) module.CtrlAccess {
		if ctrlTop[owner] {
			return module.FromTop
		}
		return module.FromBottom
	}

	// 1. Explicit module placement.
	for _, r := range p.Rects {
		switch r.Kind {
		case layout.RBlock:
			for i := range r.Block.Units {
				bu := &r.Block.Units[i]
				at := geom.Pt{X: r.Box.XL + bu.Off.X, Y: r.Box.YB + bu.Off.Y}
				in, err := module.Instantiate(bu.Name, *bu.Unit, at, access(r.Name))
				if err != nil {
					return nil, err
				}
				instances[bu.Name] = in
				d.Modules = append(d.Modules, in)
			}
		case layout.RSwitch:
			in, err := module.InstantiateSwitch(r.Name, r.SwitchNode.Junctions,
				geom.Pt{X: r.Box.XL, Y: r.Box.YB}, r.Box.H(), access(r.Name))
			if err != nil {
				return nil, err
			}
			instances[r.Name] = in
			d.Modules = append(d.Modules, in)
		}
	}

	// 2. Intra-block chain channels.
	for _, r := range p.Rects {
		if r.Kind != layout.RBlock {
			continue
		}
		b := r.Block
		byRow := map[int][]*layout.BlockUnit{}
		for i := range b.Units {
			byRow[b.Units[i].Row] = append(byRow[b.Units[i].Row], &b.Units[i])
		}
		for row, us := range byRow {
			sort.Slice(us, func(i, j int) bool { return us[i].Col < us[j].Col })
			for k := 0; k+1 < len(us); k++ {
				a := instances[us[k].Name]
				c := instances[us[k+1].Name]
				d.Flow = append(d.Flow, FlowChannel{
					Name:  fmt.Sprintf("%s.r%d.%d", b.Name, row, k),
					Seg:   geom.Seg{A: a.PinRight, B: c.PinLeft},
					Width: module.ChannelW,
				})
			}
		}
	}

	// 3. Expand merged flow rects into explicit channels.
	if err := d.expandFlowRects(p, instances); err != nil {
		return nil, err
	}

	// 4. Control channels from module control lines.
	d.collectCtrlChannels(p, instances)

	// 5. Multiplexer synthesis along the MUX boundaries.
	muxSp := sp.Child("mux synthesis")
	if err := d.buildMuxes(p); err != nil {
		muxSp.End()
		return nil, err
	}
	recordMuxes(muxSp, d)

	// 6. Chip boundary restoration.
	chip := d.FuncRegion
	if d.MuxBottom != nil {
		chip = chip.Union(d.MuxBottom.Box)
	}
	if d.MuxTop != nil {
		chip = chip.Union(d.MuxTop.Box)
	}
	// Flow boundary strips for the fluid inlets.
	chip.XL -= 4 * module.D
	chip.XR += 4 * module.D
	chip.YB -= 2 * module.D
	chip.YT += 2 * module.D
	d.Chip = chip
	return d, nil
}

// expandFlowRects turns each merged rectangle back into its individual
// channels, placing switch junctions onto the channel rows (the paper lets
// junctions pick their position along the spine during validation).
func (d *Design) expandFlowRects(p *layout.Plan, instances map[string]*module.Instance) error {
	for _, r := range p.Rects {
		if r.Kind != layout.RFlow {
			continue
		}
		for k, cref := range r.Channels {
			ch := cref.Planar
			y, err := d.channelRowY(p, r, k, ch, instances)
			if err != nil {
				return err
			}
			xw, xe := r.Box.XL, r.Box.XR
			// Attach switch junctions and determine terminal inlets.
			for _, endAtt := range []struct {
				att  layout.FlowAttach
				end  planar.End
				west bool
			}{{r.A, pickEnd(ch, p, r.A), true}, {r.B, pickEnd(ch, p, r.B), false}} {
				if endAtt.att.Rect < 0 {
					// Chip flow boundary: fluid terminal.
					x := 0.0
					if !endAtt.west {
						x = p.XMax
					}
					term := terminalOf(ch)
					if term != nil {
						d.Inlets = append(d.Inlets, Inlet{
							Name:  term.Terminal,
							At:    geom.Pt{X: x, Y: y},
							Inlet: term.Inlet,
						})
					}
					continue
				}
				tr := p.Rects[endAtt.att.Rect]
				if tr.Kind == layout.RSwitch {
					in := instances[tr.Name]
					j := junctionOf(ch, tr.Name)
					if j < 0 {
						return fmt.Errorf("validate: channel %v has no junction on %s", ch, tr.Name)
					}
					in.SetJunctionY(j, y)
					// The channel enters the switch from the side facing
					// the rect: rect west of switch -> junction on the
					// switch's west boundary.
					in.SetJunctionSide(j, !endAtt.west)
				}
			}
			d.Flow = append(d.Flow, FlowChannel{
				Name:  fmt.Sprintf("%s.%d", r.Name, k),
				Seg:   geom.Seg{A: geom.Pt{X: xw, Y: y}, B: geom.Pt{X: xe, Y: y}},
				Width: module.ChannelW,
			})
		}
	}
	return nil
}

// channelRowY picks the row of one expanded channel: the attached unit's
// pin row when a unit is involved, a d'-pitch stack for switch-to-boundary
// rects, a 2d-pitch stack for switch-to-switch rects.
func (d *Design) channelRowY(p *layout.Plan, r *layout.PRect, k int, ch planar.Channel, instances map[string]*module.Instance) (float64, error) {
	for _, e := range []planar.End{ch.A, ch.B} {
		if e.IsTerminal() || e.Node == "" {
			continue
		}
		if in, ok := instances[e.Node]; ok && in.Kind != module.KindSwitch {
			return in.PinLeft.Y, nil
		}
	}
	// No unit end: switch-to-switch or switch-to-boundary.
	aSwitch := r.A.Rect >= 0 && p.Rects[r.A.Rect].Kind == layout.RSwitch
	bSwitch := r.B.Rect >= 0 && p.Rects[r.B.Rect].Kind == layout.RSwitch
	switch {
	case aSwitch && bSwitch:
		return r.Box.YB + module.D + float64(k)*2*module.D, nil
	case aSwitch || bSwitch:
		return r.Box.YB + module.DPrime*(float64(k)+0.5), nil
	}
	return 0, fmt.Errorf("validate: channel %v of rect %s has no row anchor", ch, r.Name)
}

// pickEnd returns the planar endpoint of ch that corresponds to the given
// rect attachment (unit/switch name match, or the terminal end).
func pickEnd(ch planar.Channel, p *layout.Plan, att layout.FlowAttach) planar.End {
	if att.Rect < 0 {
		if ch.A.IsTerminal() {
			return ch.A
		}
		return ch.B
	}
	name := p.Rects[att.Rect].Name
	if ch.A.Node == name {
		return ch.A
	}
	if ch.B.Node == name {
		return ch.B
	}
	// Unit ends belong to a block whose name differs from the unit name;
	// fall back to the non-terminal end.
	if ch.A.IsTerminal() {
		return ch.B
	}
	return ch.A
}

func terminalOf(ch planar.Channel) *planar.End {
	if ch.A.IsTerminal() {
		return &ch.A
	}
	if ch.B.IsTerminal() {
		return &ch.B
	}
	return nil
}

func junctionOf(ch planar.Channel, sw string) int {
	if ch.A.Node == sw {
		return ch.A.Junction
	}
	if ch.B.Node == sw {
		return ch.B.Junction
	}
	return -1
}

// collectCtrlChannels derives the independent vertical control channels.
// Within a block, lines of parallel rows at the same x are shared (the
// whole point of parallel merging), so channels are grouped by x.
func (d *Design) collectCtrlChannels(p *layout.Plan, instances map[string]*module.Instance) {
	for _, r := range p.Rects {
		if !r.Placeable() {
			continue
		}
		top := false
		for _, c := range p.Rects {
			if c.Kind == layout.RCtrl && p.Rects[c.Owner].Name == r.Name {
				top = c.CtrlTop
			}
		}
		type group struct {
			name   string
			yValve float64
		}
		groups := map[int]*group{} // key: x rounded to 0.1 µm
		var order []int
		addLine := func(in *module.Instance, l module.CtrlLine) {
			key := int(math.Round(l.X * 10))
			g, ok := groups[key]
			if !ok {
				g = &group{name: l.Name, yValve: math.Inf(-1)}
				if top {
					g.yValve = math.Inf(1)
				}
				groups[key] = g
				order = append(order, key)
			}
			for _, v := range l.Valves {
				if top {
					// Channel runs from its lowest valve up to the top.
					g.yValve = math.Min(g.yValve, v.At.Y)
				} else {
					g.yValve = math.Max(g.yValve, v.At.Y)
				}
			}
		}
		switch r.Kind {
		case layout.RBlock:
			for i := range r.Block.Units {
				in := instances[r.Block.Units[i].Name]
				for _, l := range in.Lines {
					addLine(in, l)
				}
			}
		case layout.RSwitch:
			in := instances[r.Name]
			for _, l := range in.Lines {
				addLine(in, l)
			}
		}
		sort.Ints(order)
		for _, key := range order {
			g := groups[key]
			d.Ctrl = append(d.Ctrl, CtrlChannel{
				Name:     g.name,
				Owner:    r.Name,
				X:        float64(key) / 10,
				YValve:   g.yValve,
				Top:      top,
				MuxIndex: -1,
			})
		}
	}
}

// recordMuxes attaches the synthesized multiplexers' dimensions to the
// mux-synthesis trace span. No-op on a nil span.
func recordMuxes(sp *obs.Span, d *Design) {
	if sp == nil {
		return
	}
	channels, bits, valves, inlets := 0, 0, 0, 0
	count := func(m *mux.Mux) {
		if m == nil {
			return
		}
		channels += m.N
		bits += m.Bits
		valves += len(m.Valves)
		inlets += m.Inlets()
	}
	count(d.MuxBottom)
	count(d.MuxTop)
	sp.SetInt("channels", int64(channels))
	sp.SetInt("address_bits", int64(bits))
	sp.SetInt("valves", int64(valves))
	sp.SetInt("pressure_inlets", int64(inlets))
	sp.End()
}

// buildMuxes synthesizes the bottom (and top) multiplexers and assigns
// every control channel its address.
func (d *Design) buildMuxes(p *layout.Plan) error {
	var bottomIdx, topIdx []int
	for i := range d.Ctrl {
		if d.Ctrl[i].Top {
			topIdx = append(topIdx, i)
		} else {
			bottomIdx = append(bottomIdx, i)
		}
	}
	build := func(idx []int, bottom bool, boundaryY float64) (*mux.Mux, error) {
		if len(idx) == 0 {
			return nil, nil
		}
		sort.Slice(idx, func(a, b int) bool { return d.Ctrl[idx[a]].X < d.Ctrl[idx[b]].X })
		xs := make([]float64, len(idx))
		for k, i := range idx {
			xs[k] = d.Ctrl[i].X
			d.Ctrl[i].MuxIndex = k
		}
		return mux.Build(xs, bottom, boundaryY)
	}
	var err error
	if d.MuxBottom, err = build(bottomIdx, true, 0); err != nil {
		return err
	}
	if d.MuxTop, err = build(topIdx, false, p.YMax); err != nil {
		return err
	}
	if p.Muxes == 1 && d.MuxTop != nil {
		return fmt.Errorf("validate: 1-MUX design routed control channels to the top boundary")
	}
	return nil
}
