package mux_test

import (
	"fmt"

	"columbas/internal/module"
	"columbas/internal/mux"
)

// The paper's Figure 4: fifteen control channels addressed with four
// MUX-flow channel pairs; selecting channel 9 (binary 1001) leaves exactly
// that channel open.
func Example() {
	xs := make([]float64, 15)
	for i := range xs {
		xs[i] = float64(i) * 2 * module.D
	}
	m, err := mux.Build(xs, true, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("channels=%d bits=%d inlets=%d\n", m.N, m.Bits, m.Inlets())

	sel, err := m.Select(9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("pair configuration: %s\n", m.PairString(sel))
	fmt.Printf("open channels: %v\n", m.Open(sel))
	// Output:
	// channels=15 bits=4 inlets=9
	// pair configuration: XO OX OX XO
	// open channels: [9]
}

func ExampleInletsFor() {
	for _, n := range []int{15, 63, 143} {
		fmt.Printf("%d channels need %d inlets\n", n, mux.InletsFor(n))
	}
	// Output:
	// 15 channels need 9 inlets
	// 63 channels need 13 inlets
	// 143 channels need 17 inlets
}
