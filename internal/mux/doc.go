// Package mux synthesizes the binary multiplexers of Columba S
// (Section 2.2, Figure 4) and implements their addressing function.
//
// A multiplexer controls n independent control channels with
// 2·ceil(log2 n)+1 pressure inlets: each control channel is indexed with a
// ceil(log2 n)-bit binary number, and each bit is realised by a
// complementary pair of pressurised MUX-flow channels. Where a MUX-flow
// channel overlaps a control channel, a valve may be placed; pressurising
// the flow channel inflates its valves and blocks the crossed control
// channels. Pressurising, for every bit, the line carrying valves on the
// channels with the *opposite* bit value leaves exactly one control
// channel open. One additional inlet feeds the shared pressure main that
// the selected channel transmits.
//
// Key types: Build lays a Mux over the control-channel x-positions;
// Select computes the Selection for one address, Open the resulting open
// channels, and InletsFor the 2·ceil(log2 n)+1 inlet formula.
package mux
