package mux

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"columbas/internal/module"
)

func channels(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) * 2 * module.D
	}
	return xs
}

func TestInletsFormula(t *testing.T) {
	// 2·ceil(log2 n)+1 (Section 2.2).
	cases := map[int]int{
		1: 1, 2: 3, 3: 5, 4: 5, 5: 7, 8: 7, 9: 9, 15: 9, 16: 9,
		17: 11, 32: 11, 33: 13, 63: 13, 64: 13, 65: 15, 128: 15, 129: 17, 256: 17,
	}
	for n, want := range cases {
		if got := InletsFor(n); got != want {
			t.Errorf("InletsFor(%d) = %d, want %d", n, got, want)
		}
	}
	if InletsFor(0) != 0 {
		t.Error("InletsFor(0) should be 0")
	}
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, true, 0); err == nil {
		t.Fatal("expected error for empty channel set")
	}
}

func TestFigure4FifteenChannels(t *testing.T) {
	// The paper's example: 15 control channels, 4-bit addressing, channel
	// 9 (binary 1001) selected by configuration XO OX OX XO.
	m, err := Build(channels(15), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bits != 4 {
		t.Fatalf("Bits = %d, want 4", m.Bits)
	}
	if m.Inlets() != 9 {
		t.Fatalf("Inlets = %d, want 2*4+1", m.Inlets())
	}
	if len(m.Lines) != 2*4+1 {
		t.Fatalf("lines = %d, want 9", len(m.Lines))
	}
	s, err := m.Select(9)
	if err != nil {
		t.Fatal(err)
	}
	open := m.Open(s)
	if len(open) != 1 || open[0] != 9 {
		t.Fatalf("Open = %v, want [9]", open)
	}
	// Bit pattern: bit0 of 9 is 1 -> pair shows XO (block0 pressurised);
	// bit1 = 0 -> OX; bit2 = 0 -> OX; bit3 = 1 -> XO.
	if got := m.BitString(s); got != "XOOXOXXO" {
		t.Fatalf("BitString = %q, want XOOXOXXO", got)
	}
}

func TestEveryAddressSelectsExactlyItsChannel(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 15, 16, 31, 64} {
		m, err := Build(channels(n), true, 0)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < n; c++ {
			s, err := m.Select(c)
			if err != nil {
				t.Fatal(err)
			}
			open := m.Open(s)
			if len(open) != 1 || open[0] != c {
				t.Fatalf("n=%d: Select(%d) opens %v", n, c, open)
			}
		}
	}
}

func TestSelectOutOfRange(t *testing.T) {
	m, err := Build(channels(4), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Select(-1); err == nil {
		t.Error("Select(-1) should fail")
	}
	if _, err := m.Select(4); err == nil {
		t.Error("Select(4) should fail")
	}
}

func TestSingleChannelMux(t *testing.T) {
	// n=1: zero bits, only the pressure main; the channel is always open.
	m, err := Build(channels(1), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bits != 0 || m.Inlets() != 1 {
		t.Fatalf("Bits=%d Inlets=%d", m.Bits, m.Inlets())
	}
	s, err := m.Select(0)
	if err != nil {
		t.Fatal(err)
	}
	if open := m.Open(s); len(open) != 1 {
		t.Fatalf("Open = %v", open)
	}
}

func TestBottomMuxGeometry(t *testing.T) {
	m, err := Build(channels(8), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All lines strictly below the boundary, 2d pitch, main furthest.
	prev := 0.0
	for _, ln := range m.Lines {
		if ln.Y >= 0 {
			t.Fatalf("line %s at y=%v, want < 0", ln.Name, ln.Y)
		}
		if ln.Y >= prev {
			t.Fatalf("lines must march downward: %v then %v", prev, ln.Y)
		}
		if math.Abs((prev-ln.Y)-2*module.D) > 1e-9 {
			t.Fatalf("line pitch %v != 2d", prev-ln.Y)
		}
		prev = ln.Y
	}
	if m.Lines[m.Main].Bit != -1 {
		t.Fatal("last line must be the pressure main")
	}
	if m.ChannelY1 != m.Lines[m.Main].Y {
		t.Fatal("control channels must extend to the main")
	}
	// Box covers lines and channels.
	for _, ln := range m.Lines {
		if ln.Y < m.Box.YB || ln.Y > m.Box.YT {
			t.Fatalf("line %v outside box %v", ln.Y, m.Box)
		}
	}
}

func TestTopMuxGeometry(t *testing.T) {
	m, err := Build(channels(4), false, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, ln := range m.Lines {
		if ln.Y <= 5000 {
			t.Fatalf("top MUX line at y=%v, want > boundary", ln.Y)
		}
	}
}

func TestValvePlacementMatchesAddressing(t *testing.T) {
	m, err := Build(channels(6), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Valves {
		ln := m.Lines[v.Line]
		if ln.Bit < 0 {
			t.Fatal("no valves on the pressure main")
		}
		if (v.Channel>>uint(ln.Bit))&1 != ln.Level {
			t.Fatalf("valve on channel %d line %s contradicts addressing", v.Channel, ln.Name)
		}
		if v.At.X != m.ChannelX[v.Channel] || v.At.Y != ln.Y {
			t.Fatalf("valve at %v not on crossing", v.At)
		}
	}
	// Each channel has exactly Bits valves (one per bit).
	count := map[int]int{}
	for _, v := range m.Valves {
		count[v.Channel]++
	}
	for c := 0; c < m.N; c++ {
		if count[c] != m.Bits {
			t.Fatalf("channel %d has %d valves, want %d", c, count[c], m.Bits)
		}
	}
}

func TestBitStringNotation(t *testing.T) {
	m, err := Build(channels(2), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.Select(0) // bit0=0: pressurise block1 line -> OX
	if got := m.BitString(s); got != "OX" {
		t.Fatalf("BitString(0) = %q, want OX", got)
	}
	s, _ = m.Select(1)
	if got := m.BitString(s); got != "XO" {
		t.Fatalf("BitString(1) = %q, want XO", got)
	}
	if strings.ContainsAny(m.BitString(s), " \n") {
		t.Fatal("bit string must be compact")
	}
}

// Property: for random channel counts and addresses, the selected channel
// is open, all others blocked, and the inlet count follows the formula.
func TestSelectionProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw)%60 + 1
		c := int(cRaw) % n
		m, err := Build(channels(n), true, 0)
		if err != nil {
			return false
		}
		s, err := m.Select(c)
		if err != nil {
			return false
		}
		open := m.Open(s)
		return len(open) == 1 && open[0] == c && m.Inlets() == InletsFor(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairString(t *testing.T) {
	m, err := Build(channels(15), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.Select(9)
	if got := m.PairString(s); got != "XO OX OX XO" {
		t.Fatalf("PairString = %q, want the Figure 4 configuration", got)
	}
}

func TestAddressTable(t *testing.T) {
	m, err := Build(channels(4), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := m.AddressTable()
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4", len(lines))
	}
	if !strings.Contains(lines[3], "11") {
		t.Fatalf("last row should show binary 11: %q", lines[3])
	}
}
