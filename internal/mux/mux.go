package mux

import (
	"fmt"
	"math"

	"columbas/internal/geom"
	"columbas/internal/module"
)

// FlowLine is one horizontal MUX-flow channel.
type FlowLine struct {
	Name string
	Y    float64
	// Bit is the address bit this line belongs to; -1 for the pressure
	// main.
	Bit int
	// Level is the bit value whose channels this line blocks when
	// pressurised (valves sit on channels whose Bit-th bit == Level).
	Level int
	Seg   geom.Seg
}

// Valve is a MUX valve at the crossing of a flow line and a control
// channel.
type Valve struct {
	Channel int // controlled channel index
	Line    int // index into FlowLines
	At      geom.Pt
}

// Mux is a synthesized multiplexer.
type Mux struct {
	N      int  // number of controlled channels
	Bits   int  // ceil(log2 N)
	Bottom bool // below (true) or above (false) the functional region

	// ChannelX are the x positions of the controlled channels, in the
	// order they were handed to Build (index = channel address).
	ChannelX []float64
	// Extension of each control channel through the MUX region: from the
	// functional-region boundary to the pressure main.
	ChannelY0, ChannelY1 float64

	Lines  []FlowLine
	Valves []Valve
	Main   int // index of the pressure-main line in Lines

	Box geom.Rect // occupied region
}

// InletsFor returns the paper's inlet formula 2·ceil(log2 n)+1 for one
// multiplexer controlling n channels (0 for an empty multiplexer).
func InletsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return 2*bitsFor(n) + 1
}

func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Build synthesizes a multiplexer for control channels at the given x
// positions. boundaryY is the y coordinate of the MUX boundary of the
// functional region (0 for the bottom boundary, y_max for the top);
// bottom selects the growth direction.
func Build(channelX []float64, bottom bool, boundaryY float64) (*Mux, error) {
	n := len(channelX)
	if n == 0 {
		return nil, fmt.Errorf("mux: no control channels to multiplex")
	}
	m := &Mux{
		N:        n,
		Bits:     bitsFor(n),
		Bottom:   bottom,
		ChannelX: append([]float64(nil), channelX...),
	}
	dir := -1.0
	if !bottom {
		dir = 1.0
	}
	xlo, xhi := channelX[0], channelX[0]
	for _, x := range channelX {
		xlo = math.Min(xlo, x)
		xhi = math.Max(xhi, x)
	}
	xlo -= 4 * module.D
	xhi += 4 * module.D

	// 2·Bits addressing lines then the pressure main, marching away from
	// the functional region at 2d pitch.
	row := 0
	addLine := func(name string, bit, level int) {
		row++
		y := boundaryY + dir*float64(row)*2*module.D
		m.Lines = append(m.Lines, FlowLine{
			Name: name, Y: y, Bit: bit, Level: level,
			Seg: geom.Seg{A: geom.Pt{X: xlo, Y: y}, B: geom.Pt{X: xhi, Y: y}},
		})
	}
	for b := 0; b < m.Bits; b++ {
		addLine(fmt.Sprintf("bit%d:block0", b), b, 0)
		addLine(fmt.Sprintf("bit%d:block1", b), b, 1)
	}
	addLine("main", -1, 0)
	m.Main = len(m.Lines) - 1

	// Control channels extend from the boundary through every line to the
	// main.
	mainY := m.Lines[m.Main].Y
	m.ChannelY0 = boundaryY
	m.ChannelY1 = mainY

	// Valves: line (bit b, level v) crosses every channel; a valve sits
	// where the channel's address bit b equals v.
	for li, ln := range m.Lines {
		if ln.Bit < 0 {
			continue
		}
		for ci := range channelX {
			if (ci>>uint(ln.Bit))&1 == ln.Level {
				m.Valves = append(m.Valves, Valve{
					Channel: ci,
					Line:    li,
					At:      geom.Pt{X: channelX[ci], Y: ln.Y},
				})
			}
		}
	}
	ylo := math.Min(boundaryY, mainY+dir*2*module.D)
	yhi := math.Max(boundaryY, mainY+dir*2*module.D)
	m.Box = geom.Rect{XL: xlo, XR: xhi, YB: ylo, YT: yhi}
	return m, nil
}

// Inlets returns the number of pressure inlets this multiplexer needs.
func (m *Mux) Inlets() int { return 2*m.Bits + 1 }

// Selection is a pressurisation state of the MUX-flow lines.
type Selection struct {
	// Pressurized[i] reports whether Lines[i] is pressurised.
	Pressurized []bool
	// Channel is the selected channel address.
	Channel int
}

// Select returns the line configuration that leaves exactly channel c
// open: for every bit, pressurise the line blocking the opposite value.
func (m *Mux) Select(c int) (Selection, error) {
	if c < 0 || c >= m.N {
		return Selection{}, fmt.Errorf("mux: channel %d out of range [0,%d)", c, m.N)
	}
	s := Selection{Pressurized: make([]bool, len(m.Lines)), Channel: c}
	for li, ln := range m.Lines {
		if ln.Bit < 0 {
			s.Pressurized[li] = true // the main is always pressurised
			continue
		}
		bit := (c >> uint(ln.Bit)) & 1
		if ln.Level != bit {
			s.Pressurized[li] = true
		}
	}
	return s, nil
}

// Blocked reports whether control channel c is blocked under the
// selection: some pressurised line carries a valve on c.
func (m *Mux) Blocked(c int, s Selection) bool {
	for _, v := range m.Valves {
		if v.Channel == c && s.Pressurized[v.Line] {
			return true
		}
	}
	return false
}

// Open returns the channels that can transmit pressure under s.
func (m *Mux) Open(s Selection) []int {
	var out []int
	for c := 0; c < m.N; c++ {
		if !m.Blocked(c, s) {
			out = append(out, c)
		}
	}
	return out
}

// PairString renders a selection as the paper's pair notation
// ("XO OX OX XO" in Figure 4): one two-character group per address bit.
func (m *Mux) PairString(s Selection) string {
	bits := m.BitString(s)
	var b []byte
	for i := 0; i < len(bits); i += 2 {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, bits[i], bits[i+1])
	}
	return string(b)
}

// AddressTable renders the full addressing function: one row per control
// channel with its binary index and the pair configuration selecting it —
// the table Figure 4 illustrates.
func (m *Mux) AddressTable() string {
	var b []byte
	width := m.Bits
	if width == 0 {
		width = 1
	}
	for c := 0; c < m.N; c++ {
		s, err := m.Select(c)
		if err != nil {
			continue
		}
		b = append(b, fmt.Sprintf("%3d  %0*b  %s\n", c, width, c, m.PairString(s))...)
	}
	return string(b)
}

// BitString renders a selection as the paper's O/X notation per line
// (X = pressurised/inflated, O = open), addressing lines only.
func (m *Mux) BitString(s Selection) string {
	out := make([]byte, 0, len(m.Lines))
	for li, ln := range m.Lines {
		if ln.Bit < 0 {
			continue
		}
		if s.Pressurized[li] {
			out = append(out, 'X')
		} else {
			out = append(out, 'O')
		}
	}
	return string(out)
}
