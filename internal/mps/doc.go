// Package mps reads and writes MILP models in MPS form, the interchange
// format of the MIPLIB-style benchmark ecosystem, bridging arbitrary
// external instances into internal/milp (and internal/milp models out to
// external solvers).
//
// The reader (Parse/ParseBytes/ParseFile) accepts fixed- and free-format
// MPS: the NAME, OBJSENSE, ROWS, COLUMNS (with INTORG/INTEND integrality
// markers), RHS, RANGES and BOUNDS sections, the UP/LO/FX/FR/MI/PL and
// integer BV/LI/UI bound types, comment and blank lines, and the
// Fortran 'D' exponent. Every rejection is a typed *ParseError carrying
// the 1-based line and column of the offending field. The writer (Write)
// emits a deterministic free-format file the reader maps back to an
// identical model — the write→parse→write fixpoint the package's
// round-trip suite and FuzzParseMPS pin.
//
// The exact supported subset, the deliberate deviations from the 1960s
// fixed-format standard, and the error model are documented in
// docs/mps.md.
//
// Key types: Instance couples the parsed milp.Model with the file-level
// metadata the model cannot carry (instance name, objective row name,
// and the MAXIMIZE flag — the model always stores the minimization
// form); ParseError is the typed rejection.
package mps
