package mps

import (
	"fmt"

	"columbas/internal/milp"
)

// Instance is a parsed MPS file: the model plus the file-level metadata
// a milp.Model cannot carry.
type Instance struct {
	// Name is the NAME field of the file (empty when absent).
	Name string
	// Model is the instance as a minimization MILP. When Maximize is
	// set, the model's objective is the negation of the file's: solve
	// the model and report -Result.Obj as the instance objective (see
	// Objective).
	Model *milp.Model
	// Maximize records an OBJSENSE MAXIMIZE file.
	Maximize bool
	// ObjName is the name of the objective (first N) row.
	ObjName string
}

// Objective converts a model objective value (always minimization, see
// Model) into the instance's stated sense.
func (in *Instance) Objective(modelObj float64) float64 {
	if in.Maximize {
		return -modelObj
	}
	return modelObj
}

// ParseError is a rejected MPS input. Line and Col are the 1-based
// position of the offending field; Section names the section being
// parsed ("" before the first header).
type ParseError struct {
	Line    int
	Col     int
	Section string
	Msg     string
}

func (e *ParseError) Error() string {
	if e.Section != "" {
		return fmt.Sprintf("mps: line %d, col %d (%s section): %s", e.Line, e.Col, e.Section, e.Msg)
	}
	return fmt.Sprintf("mps: line %d, col %d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, section, format string, args ...any) *ParseError {
	if line < 1 {
		line = 1 // end-of-input errors on empty files have no current line
	}
	return &ParseError{Line: line, Col: col, Section: section, Msg: fmt.Sprintf(format, args...)}
}
