package mps

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"columbas/internal/milp"
)

// corpusEntry is one line of testdata/corpus.json: an instance file and
// its golden outcome. Obj is in the instance's stated sense (so a
// MAXIMIZE instance records its maximum).
type corpusEntry struct {
	File   string  `json:"file"`
	Status string  `json:"status"`
	Obj    float64 `json:"obj"`
}

func loadCorpus(t testing.TB) []corpusEntry {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "corpus.json"))
	if err != nil {
		t.Fatalf("corpus manifest: %v", err)
	}
	var entries []corpusEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatalf("corpus manifest: %v", err)
	}
	if len(entries) < 20 {
		t.Fatalf("corpus has %d instances, want at least 20", len(entries))
	}
	return entries
}

// TestCorpusManifestComplete pins the manifest against the directory:
// every .mps file is listed exactly once and every listed file exists.
func TestCorpusManifestComplete(t *testing.T) {
	entries := loadCorpus(t)
	listed := map[string]bool{}
	for _, e := range entries {
		if listed[e.File] {
			t.Errorf("%s listed twice in corpus.json", e.File)
		}
		listed[e.File] = true
		if _, err := os.Stat(filepath.Join("testdata", e.File)); err != nil {
			t.Errorf("%s listed but missing: %v", e.File, err)
		}
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.mps"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if base := filepath.Base(f); !listed[base] {
			t.Errorf("%s on disk but not in corpus.json", base)
		}
	}
}

// TestCorpusGoldenOptima solves every corpus instance with default
// options and checks the golden status and objective (in the instance's
// stated sense).
func TestCorpusGoldenOptima(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.File, func(t *testing.T) {
			in, err := ParseFile(filepath.Join("testdata", e.File))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			r, err := in.Model.Solve(milp.Options{})
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if r.Status.String() != e.Status {
				t.Fatalf("status %v, golden %s", r.Status, e.Status)
			}
			if e.Status == "optimal" {
				if got := in.Objective(r.Obj); math.Abs(got-e.Obj) > 1e-6 {
					t.Fatalf("objective %v, golden %v", got, e.Obj)
				}
			}
		})
	}
}
