package mps

import (
	"bytes"
	"path/filepath"
	"testing"

	"columbas/internal/milp"
)

// sameInstance asserts structural equivalence of two parsed instances:
// identical variable count, order-aligned bounds/integrality/objective,
// identical rows, identical sense and constant. Variable and row names
// may differ (the writer renames), so comparison is positional.
func sameInstance(t *testing.T, a, b *Instance) {
	t.Helper()
	if a.Maximize != b.Maximize {
		t.Fatalf("Maximize %v vs %v", a.Maximize, b.Maximize)
	}
	ma, mb := a.Model, b.Model
	if ma.NumVars() != mb.NumVars() || ma.NumRows() != mb.NumRows() || ma.NumInt() != mb.NumInt() {
		t.Fatalf("shape (%d,%d,%d) vs (%d,%d,%d)",
			ma.NumVars(), ma.NumRows(), ma.NumInt(),
			mb.NumVars(), mb.NumRows(), mb.NumInt())
	}
	if ma.ObjConst() != mb.ObjConst() {
		t.Fatalf("ObjConst %v vs %v", ma.ObjConst(), mb.ObjConst())
	}
	for v := 0; v < ma.NumVars(); v++ {
		id := milp.VarID(v)
		alo, ahi := ma.Bounds(id)
		blo, bhi := mb.Bounds(id)
		if alo != blo || ahi != bhi || ma.IsInt(id) != mb.IsInt(id) || ma.ObjCoef(id) != mb.ObjCoef(id) {
			t.Fatalf("var %d: bounds [%v,%v]/[%v,%v] int %v/%v obj %v/%v",
				v, alo, ahi, blo, bhi, ma.IsInt(id), mb.IsInt(id), ma.ObjCoef(id), mb.ObjCoef(id))
		}
	}
	ra, rb := ma.Rows(), mb.Rows()
	for i := range ra {
		if ra[i].Sense != rb[i].Sense || ra[i].RHS != rb[i].RHS || len(ra[i].Terms) != len(rb[i].Terms) {
			t.Fatalf("row %d: %+v vs %+v", i, ra[i], rb[i])
		}
		for j := range ra[i].Terms {
			if ra[i].Terms[j] != rb[i].Terms[j] {
				t.Fatalf("row %d term %d: %+v vs %+v", i, j, ra[i].Terms[j], rb[i].Terms[j])
			}
		}
	}
}

// TestRoundTripCorpus checks the write→parse→write fixpoint on every
// corpus instance: writing a parsed instance, re-parsing, and writing
// again yields byte-identical output and an equivalent model.
func TestRoundTripCorpus(t *testing.T) {
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.File, func(t *testing.T) {
			in, err := ParseFile(filepath.Join("testdata", e.File))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var first bytes.Buffer
			if err := Write(&first, in); err != nil {
				t.Fatalf("write: %v", err)
			}
			in2, err := ParseBytes(first.Bytes())
			if err != nil {
				t.Fatalf("re-parse of written output: %v\n%s", err, first.String())
			}
			sameInstance(t, in, in2)
			var second bytes.Buffer
			if err := Write(&second, in2); err != nil {
				t.Fatalf("re-write: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("write→parse→write not a fixpoint:\n--- first ---\n%s--- second ---\n%s",
					first.String(), second.String())
			}
		})
	}
}

// TestRoundTripAwkwardNames exercises the writer's renaming paths:
// duplicate variable names, names with whitespace and '*', an empty
// name, and an objective name colliding with a generated row name.
func TestRoundTripAwkwardNames(t *testing.T) {
	m := milp.NewModel()
	a := m.Int("x y", 0, 3)    // whitespace → sanitized
	b := m.Int("x_y", 0, 3)    // collides with the sanitized a
	c := m.Var("", 0, 5)       // empty → generated
	d := m.Var("s*ar", -2, 2)  // comment char → sanitized
	m.Minimize(milp.T(a, 1).Add(b, 2).Add(c, 3).Add(d, 4))
	m.AddLE(milp.Sum(a, b, c, d), 6)
	in := &Instance{Name: "odd names", Model: m, ObjName: "R0000001"}

	var first bytes.Buffer
	if err := Write(&first, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	in2, err := ParseBytes(first.Bytes())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, first.String())
	}
	sameInstance(t, in, in2)
	if in2.ObjName != "OBJ.0" {
		t.Fatalf("objective renamed to %q, want OBJ.0 (collision with row name)", in2.ObjName)
	}
	var second bytes.Buffer
	if err := Write(&second, in2); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("not a fixpoint:\n--- first ---\n%s--- second ---\n%s", first.String(), second.String())
	}
}
