package mps

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"columbas/internal/lp"
	"columbas/internal/milp"
)

// matrixCells enumerates the 2×2×2×2 differential grid: presolve on/off
// × cuts on/off × dense/sparse kernel × pseudocost/most-fractional
// branching.
func matrixCells() []struct {
	name string
	opt  milp.Options
} {
	var cells []struct {
		name string
		opt  milp.Options
	}
	for _, pre := range []bool{false, true} {
		for _, cut := range []bool{false, true} {
			for _, kern := range []lp.Kernel{lp.KernelDense, lp.KernelSparse} {
				for _, br := range []milp.BranchRule{milp.BranchPseudocost, milp.BranchMostFractional} {
					cells = append(cells, struct {
						name string
						opt  milp.Options
					}{
						name: fmt.Sprintf("presolve=%v,cuts=%v,kernel=%v,branch=%v", !pre, !cut, kern, br),
						opt: milp.Options{
							NoPresolve: pre,
							NoCuts:     cut,
							Kernel:     kern,
							Branching:  br,
						},
					})
				}
			}
		}
	}
	return cells
}

// TestMPSCorpusSolverMatrix solves every corpus instance in all 16
// configuration cells and requires the identical status and (for
// optimal instances) the identical objective in every cell. Instances
// with at most 12 integer variables are additionally cross-checked
// against brute-force enumeration over the integer lattice.
func TestMPSCorpusSolverMatrix(t *testing.T) {
	cells := matrixCells()
	for _, e := range loadCorpus(t) {
		e := e
		t.Run(e.File, func(t *testing.T) {
			for _, c := range cells {
				c := c
				t.Run(c.name, func(t *testing.T) {
					// A fresh parse per cell: Solve mutates internal state
					// (presolve tightens bounds in place).
					in, err := ParseFile(filepath.Join("testdata", e.File))
					if err != nil {
						t.Fatalf("parse: %v", err)
					}
					r, err := in.Model.Solve(c.opt)
					if err != nil {
						t.Fatalf("solve: %v", err)
					}
					if r.Status.String() != e.Status {
						t.Fatalf("status %v, golden %s", r.Status, e.Status)
					}
					if e.Status == "optimal" {
						if got := in.Objective(r.Obj); math.Abs(got-e.Obj) > 1e-6 {
							t.Fatalf("objective %v, golden %v", got, e.Obj)
						}
					}
				})
			}
			t.Run("bruteforce", func(t *testing.T) {
				in, err := ParseFile(filepath.Join("testdata", e.File))
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				obj, status, ok := bruteForce(in)
				if !ok {
					t.Skip("not brute-forceable (too many or unbounded integer variables)")
				}
				if status != e.Status {
					t.Fatalf("brute-force status %s, golden %s", status, e.Status)
				}
				if status == "optimal" && math.Abs(obj-e.Obj) > 1e-6 {
					t.Fatalf("brute-force objective %v, golden %v", obj, e.Obj)
				}
			})
		})
	}
}

// bruteForce enumerates every assignment of the instance's integer
// variables over their (finite) bound boxes, solving the continuous LP
// remainder for each, and returns the best objective in the instance's
// stated sense. It reports ok=false when the instance has more than 12
// integer variables or an integer variable with an infinite bound.
func bruteForce(in *Instance) (best float64, status string, ok bool) {
	m := in.Model
	var ints []milp.VarID
	for v := 0; v < m.NumVars(); v++ {
		if m.IsInt(milp.VarID(v)) {
			ints = append(ints, milp.VarID(v))
		}
	}
	if len(ints) > 12 {
		return 0, "", false
	}
	type span struct {
		lo, hi int
	}
	spans := make([]span, len(ints))
	lattice := 1.0
	for i, v := range ints {
		lo, hi := m.Bounds(v)
		if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return 0, "", false
		}
		spans[i] = span{int(math.Ceil(lo - 1e-9)), int(math.Floor(hi + 1e-9))}
		lattice *= float64(spans[i].hi-spans[i].lo) + 1
	}
	if lattice > 1e6 {
		return 0, "", false
	}

	found, unbounded := false, false
	bestMin := math.Inf(1)
	var walk func(i int)
	walk = func(i int) {
		if i == len(ints) {
			// All integers fixed; the remaining continuous problem is an
			// LP, which Solve handles exactly (no integer variables left
			// unfixed: a fixed integer is integral by construction).
			r, err := m.Solve(milp.Options{NoCuts: true, NoPresolve: true})
			if err != nil {
				return
			}
			switch r.Status {
			case milp.Optimal:
				if r.Obj < bestMin {
					found, bestMin = true, r.Obj
				}
			case milp.Unbounded:
				unbounded = true
			}
			return
		}
		lo, hi := m.Bounds(ints[i])
		for x := spans[i].lo; x <= spans[i].hi; x++ {
			m.Fix(ints[i], float64(x))
			walk(i + 1)
		}
		m.SetBounds(ints[i], lo, hi)
	}
	walk(0)
	if unbounded {
		return 0, "unbounded", true
	}
	if !found {
		return 0, "infeasible", true
	}
	return in.Objective(bestMin), "optimal", true
}
