package mps

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"columbas/internal/lp"
	"columbas/internal/milp"
)

// Intermediate build state: the model is assembled only at end-of-input,
// because integrality (markers vs BV/LI/UI bound types) and bounds are
// not fully known until every section has been read.

type pVar struct {
	name   string
	lo, hi float64
	loSet  bool // an explicit lower bound was given (LO/FX/MI/FR/BV/LI)
	isInt  bool
	obj    float64
}

type pRow struct {
	name   string
	kind   byte // 'N' (free), 'L', 'G', 'E'
	terms  []lp.Term
	rhs    float64
	rng    float64
	rngSet bool
}

type parser struct {
	line    int
	section string

	name     string
	maximize bool
	objName  string
	objRow   int // index into rows of the objective row, -1 until seen
	objConst float64

	vars    []pVar
	varIdx  map[string]int
	rows    []pRow
	rowIdx  map[string]int
	inMark  bool // between INTORG and INTEND
	sawRows bool
	ended   bool // ENDATA seen
}

// token is one whitespace-separated field with its 1-based start column.
type token struct {
	s   string
	col int
}

// splitFields tokenizes a line, recording each field's 1-based column so
// errors can point at the exact offending field. Free- and (blank-free)
// fixed-format lines tokenize identically; see docs/mps.md for the
// embedded-blank deviation.
func splitFields(line string) []token {
	var out []token
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		out = append(out, token{s: line[start:i], col: start + 1})
	}
	return out
}

// parseNum parses an MPS numeric field, accepting the Fortran 'D'
// exponent alongside the usual forms.
func parseNum(t token, line int, section string) (float64, *ParseError) {
	s := t.s
	if strings.ContainsAny(s, "Dd") {
		s = strings.Map(func(r rune) rune {
			if r == 'D' || r == 'd' {
				return 'E'
			}
			return r
		}, s)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, errAt(line, t.col, section, "invalid numeric field %q", t.s)
	}
	return v, nil
}

// Parse reads one MPS instance. Inputs are accepted in free format and
// in the (blank-free) fixed format; every rejection is a *ParseError
// with the exact line/column position.
func Parse(r io.Reader) (*Instance, error) {
	p := &parser{
		objRow: -1,
		varIdx: map[string]int{},
		rowIdx: map[string]int{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		p.line++
		line := strings.TrimRight(sc.Text(), "\r")
		trimmed := strings.TrimLeft(line, " \t")
		if trimmed == "" || trimmed[0] == '*' {
			continue // comment or blank line
		}
		var perr *ParseError
		if line[0] != ' ' && line[0] != '\t' {
			perr = p.header(line)
		} else {
			perr = p.data(line)
		}
		if perr != nil {
			return nil, perr
		}
		if p.ended {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.build()
}

// ParseBytes parses an in-memory MPS document.
func ParseBytes(b []byte) (*Instance, error) { return Parse(bytes.NewReader(b)) }

// ParseFile parses the MPS file at path.
func ParseFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// header handles a section-indicator line (column 1 is non-blank).
func (p *parser) header(line string) *ParseError {
	fields := splitFields(line)
	key := strings.ToUpper(fields[0].s)
	switch key {
	case "NAME":
		if len(fields) > 1 {
			p.name = fields[1].s
		}
		p.section = "NAME"
	case "OBJSENSE":
		p.section = "OBJSENSE"
		if len(fields) > 1 {
			return p.setObjSense(fields[1])
		}
	case "ROWS":
		p.section = "ROWS"
		p.sawRows = true
	case "COLUMNS":
		if !p.sawRows {
			return errAt(p.line, fields[0].col, p.section, "COLUMNS section before ROWS")
		}
		p.section = "COLUMNS"
	case "RHS":
		p.section = "RHS"
	case "RANGES":
		p.section = "RANGES"
	case "BOUNDS":
		p.section = "BOUNDS"
	case "ENDATA":
		p.ended = true
	default:
		return errAt(p.line, fields[0].col, p.section, "unknown section %q", fields[0].s)
	}
	return nil
}

func (p *parser) setObjSense(t token) *ParseError {
	switch strings.ToUpper(t.s) {
	case "MAX", "MAXIMIZE":
		p.maximize = true
	case "MIN", "MINIMIZE":
		p.maximize = false
	default:
		return errAt(p.line, t.col, "OBJSENSE", "unknown objective sense %q (want MIN or MAX)", t.s)
	}
	return nil
}

// data handles an indented data line of the current section.
func (p *parser) data(line string) *ParseError {
	fields := splitFields(line)
	switch p.section {
	case "OBJSENSE":
		return p.setObjSense(fields[0])
	case "ROWS":
		return p.rowLine(fields)
	case "COLUMNS":
		return p.columnLine(fields)
	case "RHS":
		return p.rhsLine(fields)
	case "RANGES":
		return p.rangeLine(fields)
	case "BOUNDS":
		return p.boundLine(fields)
	case "NAME":
		return errAt(p.line, fields[0].col, p.section, "data line outside any section")
	}
	return errAt(p.line, fields[0].col, p.section, "data line before the first section header")
}

func (p *parser) rowLine(fields []token) *ParseError {
	if len(fields) != 2 {
		return errAt(p.line, fields[0].col, "ROWS", "want exactly 2 fields (type, name), got %d", len(fields))
	}
	var kind byte
	switch strings.ToUpper(fields[0].s) {
	case "N":
		kind = 'N'
	case "L":
		kind = 'L'
	case "G":
		kind = 'G'
	case "E":
		kind = 'E'
	default:
		return errAt(p.line, fields[0].col, "ROWS", "unknown row type %q (want N, L, G or E)", fields[0].s)
	}
	name := fields[1].s
	if _, dup := p.rowIdx[name]; dup {
		return errAt(p.line, fields[1].col, "ROWS", "duplicate row name %q", name)
	}
	p.rowIdx[name] = len(p.rows)
	p.rows = append(p.rows, pRow{name: name, kind: kind})
	if kind == 'N' && p.objRow < 0 {
		p.objRow = len(p.rows) - 1
		p.objName = name
	}
	return nil
}

// isMarker reports an INTORG/INTEND marker line. The canonical layout is
//
//	MARKERNAME  'MARKER'  'INTORG'
//
// but the keyword pair is accepted in any fields after the first.
func isMarker(fields []token) (string, bool) {
	for _, f := range fields[1:] {
		if strings.EqualFold(f.s, "'MARKER'") {
			for _, g := range fields[1:] {
				switch strings.ToUpper(g.s) {
				case "'INTORG'":
					return "INTORG", true
				case "'INTEND'":
					return "INTEND", true
				}
			}
			return "", true
		}
	}
	return "", false
}

func (p *parser) columnLine(fields []token) *ParseError {
	if mode, ok := isMarker(fields); ok {
		switch mode {
		case "INTORG":
			p.inMark = true
		case "INTEND":
			p.inMark = false
		default:
			return errAt(p.line, fields[0].col, "COLUMNS", "marker line without 'INTORG' or 'INTEND'")
		}
		return nil
	}
	if len(fields) < 3 || len(fields)%2 == 0 {
		return errAt(p.line, fields[0].col, "COLUMNS", "want column name followed by row/value pairs, got %d fields", len(fields))
	}
	colName := fields[0].s
	vi, ok := p.varIdx[colName]
	if !ok {
		vi = len(p.vars)
		p.varIdx[colName] = vi
		p.vars = append(p.vars, pVar{name: colName, lo: 0, hi: math.Inf(1), isInt: p.inMark})
	}
	for k := 1; k+1 < len(fields); k += 2 {
		rowName, valTok := fields[k], fields[k+1]
		ri, ok := p.rowIdx[rowName.s]
		if !ok {
			return errAt(p.line, rowName.col, "COLUMNS", "unknown row %q", rowName.s)
		}
		v, perr := parseNum(valTok, p.line, "COLUMNS")
		if perr != nil {
			return perr
		}
		switch {
		case ri == p.objRow:
			p.vars[vi].obj += v
		case p.rows[ri].kind == 'N':
			// Non-objective free row: parsed and discarded (docs/mps.md).
		default:
			p.rows[ri].terms = append(p.rows[ri].terms, lp.Term{Var: vi, Coef: v})
		}
	}
	return nil
}

// vectorPairs strips the optional vector-name field of an RHS/RANGES
// line: the canonical form is "name row val [row val]", but the
// nameless free-format variant "row val [row val]" is accepted when the
// first field already names a row and the field count is even.
func (p *parser) vectorPairs(fields []token, section string) ([]token, *ParseError) {
	start := 1
	if _, isRow := p.rowIdx[fields[0].s]; isRow && len(fields)%2 == 0 {
		start = 0
	}
	pairs := fields[start:]
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return nil, errAt(p.line, fields[0].col, section, "want a vector name followed by row/value pairs, got %d fields", len(fields))
	}
	return pairs, nil
}

func (p *parser) rhsLine(fields []token) *ParseError {
	pairs, perr := p.vectorPairs(fields, "RHS")
	if perr != nil {
		return perr
	}
	for k := 0; k < len(pairs); k += 2 {
		rowName, valTok := pairs[k], pairs[k+1]
		ri, ok := p.rowIdx[rowName.s]
		if !ok {
			return errAt(p.line, rowName.col, "RHS", "unknown row %q", rowName.s)
		}
		v, perr := parseNum(valTok, p.line, "RHS")
		if perr != nil {
			return perr
		}
		if ri == p.objRow {
			// An RHS entry on the objective row sets the objective
			// constant with opposite sign (obj = cᵀx − rhs).
			p.objConst = -v
		} else if p.rows[ri].kind != 'N' {
			p.rows[ri].rhs = v
		}
	}
	return nil
}

func (p *parser) rangeLine(fields []token) *ParseError {
	pairs, perr := p.vectorPairs(fields, "RANGES")
	if perr != nil {
		return perr
	}
	for k := 0; k < len(pairs); k += 2 {
		rowName, valTok := pairs[k], pairs[k+1]
		ri, ok := p.rowIdx[rowName.s]
		if !ok {
			return errAt(p.line, rowName.col, "RANGES", "unknown row %q", rowName.s)
		}
		if p.rows[ri].kind == 'N' {
			return errAt(p.line, rowName.col, "RANGES", "range on free (N) row %q", rowName.s)
		}
		v, perr := parseNum(valTok, p.line, "RANGES")
		if perr != nil {
			return perr
		}
		p.rows[ri].rng = v
		p.rows[ri].rngSet = true
	}
	return nil
}

// boundKinds maps a BOUNDS type to whether it takes a value field and
// whether it forces integrality.
var boundKinds = map[string]struct{ hasVal, forcesInt bool }{
	"LO": {true, false}, "UP": {true, false}, "FX": {true, false},
	"FR": {false, false}, "MI": {false, false}, "PL": {false, false},
	"BV": {false, true}, "LI": {true, true}, "UI": {true, true},
}

func (p *parser) boundLine(fields []token) *ParseError {
	kindTok := fields[0]
	kind := strings.ToUpper(kindTok.s)
	spec, ok := boundKinds[kind]
	if !ok {
		return errAt(p.line, kindTok.col, "BOUNDS", "unknown bound type %q", kindTok.s)
	}
	// Canonical: "TYPE vectorname column [value]". The nameless
	// free-format variant "TYPE column [value]" is accepted when the
	// field count matches the short form. Valueless types (FR/MI/PL/BV)
	// tolerate a trailing dummy numeric field, which some writers emit.
	want := 3 // TYPE vectorname column
	if spec.hasVal {
		want = 4
	}
	var colTok token
	var valTok *token
	switch {
	case len(fields) >= want: // canonical form (extras ignored)
		colTok = fields[2]
		if spec.hasVal {
			valTok = &fields[3]
		}
	case len(fields) == want-1: // nameless variant
		colTok = fields[1]
		if spec.hasVal {
			valTok = &fields[2]
		}
	default:
		return errAt(p.line, kindTok.col, "BOUNDS", "want %d fields for bound type %s, got %d", want, kind, len(fields))
	}
	vi, ok := p.varIdx[colTok.s]
	if !ok {
		return errAt(p.line, colTok.col, "BOUNDS", "unknown column %q", colTok.s)
	}
	var val float64
	if valTok != nil {
		var perr *ParseError
		if val, perr = parseNum(*valTok, p.line, "BOUNDS"); perr != nil {
			return perr
		}
	}
	v := &p.vars[vi]
	if spec.forcesInt {
		v.isInt = true
	}
	switch kind {
	case "LO", "LI":
		v.lo = val
		v.loSet = true
	case "UP", "UI":
		v.hi = val
		// MPSX convention: a negative upper bound on a variable whose
		// lower bound is still the default 0 drops the lower bound to
		// -inf rather than leaving an empty [0, v<0] domain.
		if val < 0 && !v.loSet {
			v.lo = math.Inf(-1)
		}
	case "FX":
		v.lo, v.hi = val, val
		v.loSet = true
	case "FR":
		v.lo, v.hi = math.Inf(-1), math.Inf(1)
		v.loSet = true
	case "MI":
		v.lo = math.Inf(-1)
		v.loSet = true
	case "PL":
		v.hi = math.Inf(1)
	case "BV":
		v.lo, v.hi = 0, 1
		v.loSet = true
	}
	return nil
}

// build assembles the milp.Model once every section has been read.
func (p *parser) build() (*Instance, error) {
	if p.objRow < 0 {
		return nil, errAt(p.line, 1, p.section, "no objective (type N) row declared")
	}
	m := milp.NewModel()
	for _, v := range p.vars {
		if v.isInt {
			m.Int(v.name, v.lo, v.hi)
		} else {
			m.Var(v.name, v.lo, v.hi)
		}
	}
	// Constraint rows in declaration order; a RANGES entry widens the
	// row to an activity interval realised as an LE/GE pair.
	for _, r := range p.rows {
		if r.kind == 'N' {
			continue
		}
		lo, hi := math.Inf(-1), math.Inf(1)
		switch r.kind {
		case 'L':
			hi = r.rhs
			if r.rngSet {
				lo = r.rhs - math.Abs(r.rng)
			}
		case 'G':
			lo = r.rhs
			if r.rngSet {
				hi = r.rhs + math.Abs(r.rng)
			}
		case 'E':
			lo, hi = r.rhs, r.rhs
			if r.rngSet {
				if r.rng >= 0 {
					hi = r.rhs + r.rng
				} else {
					lo = r.rhs + r.rng
				}
			}
		}
		e := &milp.Expr{Terms: r.terms}
		switch {
		case lo == hi:
			m.AddEQ(e, lo)
		default:
			if !math.IsInf(hi, 1) {
				m.AddLE(e, hi)
			}
			if !math.IsInf(lo, -1) {
				m.AddGE(e, lo)
			}
		}
	}
	obj := milp.NewExpr()
	sign := 1.0
	if p.maximize {
		sign = -1
	}
	for vi, v := range p.vars {
		if v.obj != 0 {
			obj.Add(milp.VarID(vi), sign*v.obj)
		}
	}
	obj.AddConst(sign * p.objConst)
	m.Minimize(obj)
	return &Instance{Name: p.name, Model: m, Maximize: p.maximize, ObjName: p.objName}, nil
}
