package mps

import (
	"errors"
	"math"
	"strings"
	"testing"

	"columbas/internal/lp"
	"columbas/internal/milp"
)

func mustParse(t *testing.T, src string) *Instance {
	t.Helper()
	in, err := ParseBytes([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return in
}

// TestParseStructure pins the full structural mapping of a small
// instance: names, variable order, integrality, bounds, row senses and
// folded coefficients.
func TestParseStructure(t *testing.T) {
	in := mustParse(t, `
NAME          DEMO
ROWS
 N  COST
 L  CAP
 G  FLOOR
 E  PIN
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    A         COST          -10   CAP             1
    A         FLOOR           2
    MARKER                 'MARKER'                 'INTEND'
    Y         COST          0.5   CAP             3
    Y         PIN             1
RHS
    RHS       CAP             2   FLOOR          -1
    RHS       PIN           1.5
BOUNDS
 UP BND       A               1
 UP BND       Y               9
ENDATA
`[1:])
	if in.Name != "DEMO" || in.ObjName != "COST" || in.Maximize {
		t.Fatalf("metadata: %+v", in)
	}
	m := in.Model
	if m.NumVars() != 2 || m.NumRows() != 3 || m.NumInt() != 1 {
		t.Fatalf("shape: %d vars, %d rows, %d ints", m.NumVars(), m.NumRows(), m.NumInt())
	}
	a, ok := m.VarByName("A")
	if !ok || !m.IsInt(a) || m.Name(a) != "A" {
		t.Fatalf("A: id %v ok %v", a, ok)
	}
	y, _ := m.VarByName("Y")
	if m.IsInt(y) {
		t.Fatal("Y parsed as integer")
	}
	if lo, hi := m.Bounds(a); lo != 0 || hi != 1 {
		t.Fatalf("A bounds [%v, %v]", lo, hi)
	}
	if got := m.ObjCoef(a); got != -10 {
		t.Fatalf("ObjCoef(A) = %v", got)
	}
	if got := m.ObjCoef(y); got != 0.5 {
		t.Fatalf("ObjCoef(Y) = %v", got)
	}
	rows := m.Rows()
	wantRows := []struct {
		sense lp.Sense
		rhs   float64
	}{{lp.LE, 2}, {lp.GE, -1}, {lp.EQ, 1.5}}
	for i, w := range wantRows {
		if rows[i].Sense != w.sense || rows[i].RHS != w.rhs {
			t.Fatalf("row %d: %v %v, want %v %v", i, rows[i].Sense, rows[i].RHS, w.sense, w.rhs)
		}
	}
	if len(rows[0].Terms) != 2 {
		t.Fatalf("CAP terms: %+v", rows[0].Terms)
	}
}

// TestParseRangesExpansion checks that a ranged L row becomes an LE/GE
// pair with the standard activity interval.
func TestParseRangesExpansion(t *testing.T) {
	in := mustParse(t, `
ROWS
 N  OBJ
 L  BAND
COLUMNS
    X         OBJ             1   BAND            1
RHS
    RHS       BAND            8
RANGES
    RNG       BAND            3
ENDATA
`[1:])
	rows := in.Model.Rows()
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want the LE/GE pair", len(rows))
	}
	if rows[0].Sense != lp.LE || rows[0].RHS != 8 {
		t.Fatalf("row 0: %v %v, want <= 8", rows[0].Sense, rows[0].RHS)
	}
	if rows[1].Sense != lp.GE || rows[1].RHS != 5 {
		t.Fatalf("row 1: %v %v, want >= 5", rows[1].Sense, rows[1].RHS)
	}
}

// TestParseBoundSemantics covers the bound-type matrix: FR, MI, PL, FX,
// the MPSX negative-UP convention, and integrality forced by BV/LI/UI.
func TestParseBoundSemantics(t *testing.T) {
	in := mustParse(t, `
ROWS
 N  OBJ
COLUMNS
    F         OBJ             1
    M         OBJ             1
    P         OBJ             1
    X         OBJ             1
    NU        OBJ             1
    NK        OBJ             1
    B         OBJ             1
    L         OBJ             1
BOUNDS
 FR BND       F
 MI BND       M
 PL BND       P
 FX BND       X            -2.5
 UP BND       NU             -2
 LO BND       NK              0
 UP BND       NK             -2
 BV BND       B
 LI BND       L               3
 UI BND       L               7
ENDATA
`)
	m := in.Model
	inf := math.Inf(1)
	check := func(name string, wantLo, wantHi float64, wantInt bool) {
		t.Helper()
		v, ok := m.VarByName(name)
		if !ok {
			t.Fatalf("no variable %s", name)
		}
		lo, hi := m.Bounds(v)
		if lo != wantLo || hi != wantHi || m.IsInt(v) != wantInt {
			t.Fatalf("%s: [%v, %v] int=%v, want [%v, %v] int=%v",
				name, lo, hi, m.IsInt(v), wantLo, wantHi, wantInt)
		}
	}
	check("F", -inf, inf, false)
	check("M", -inf, inf, false) // MI leaves hi at the +inf default
	check("P", 0, inf, false)
	check("X", -2.5, -2.5, false)
	check("NU", -inf, -2, false) // negative UP drops the default lo
	check("NK", 0, -2, false)    // explicit LO 0 pins it (empty domain kept)
	check("B", 0, 1, true)
	check("L", 3, 7, true)
}

// TestParseErrorPositions pins the typed error contract: every
// rejection is a *ParseError carrying the exact 1-based line/column of
// the offending field and the section name.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		line, col int
		section   string
		msgPart   string
	}{
		{"unknown-section", "JUNK\n", 1, 1, "", "unknown section"},
		{"data-before-section", "    X OBJ 1\n", 1, 5, "", "before the first section"},
		{"bad-row-type", "ROWS\n Q  R1\n", 2, 2, "ROWS", "unknown row type"},
		{"dup-row", "ROWS\n N  OBJ\n L  R1\n L  R1\n", 4, 5, "ROWS", "duplicate row"},
		{"columns-before-rows", "COLUMNS\n    X OBJ 1\n", 1, 1, "", "COLUMNS section before ROWS"},
		{"unknown-row", "ROWS\n N  OBJ\nCOLUMNS\n    X  BAD  1\n", 4, 8, "COLUMNS", "unknown row"},
		{"bad-number", "ROWS\n N  OBJ\nCOLUMNS\n    X  OBJ  1x2\n", 4, 13, "COLUMNS", "invalid numeric"},
		{"odd-pairs", "ROWS\n N  OBJ\nCOLUMNS\n    X  OBJ\n", 4, 5, "COLUMNS", "row/value pairs"},
		{"rhs-unknown-row", "ROWS\n N  OBJ\nCOLUMNS\n    X OBJ 1\nRHS\n    RHS  BAD  1\n", 6, 10, "RHS", "unknown row"},
		{"range-on-free-row", "ROWS\n N  OBJ\nCOLUMNS\n    X OBJ 1\nRANGES\n    RNG  OBJ  1\n", 6, 10, "RANGES", "free (N) row"},
		{"bad-bound-type", "ROWS\n N  OBJ\nCOLUMNS\n    X OBJ 1\nBOUNDS\n ZZ BND X 1\n", 6, 2, "BOUNDS", "unknown bound type"},
		{"bound-unknown-col", "ROWS\n N  OBJ\nCOLUMNS\n    X OBJ 1\nBOUNDS\n UP BND Y 1\n", 6, 9, "BOUNDS", "unknown column"},
		{"bound-missing-value", "ROWS\n N  OBJ\nCOLUMNS\n    X OBJ 1\nBOUNDS\n UP X\n", 6, 2, "BOUNDS", "want 4 fields"},
		{"bad-objsense", "OBJSENSE\n    SIDEWAYS\n", 2, 5, "OBJSENSE", "unknown objective sense"},
		{"no-obj-row", "ROWS\n L  R1\nENDATA\n", 3, 1, "ROWS", "no objective"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseBytes([]byte(c.src))
			if err == nil {
				t.Fatal("parse accepted the input")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *ParseError: %v", err, err)
			}
			if pe.Line != c.line || pe.Col != c.col {
				t.Fatalf("position %d:%d, want %d:%d (%v)", pe.Line, pe.Col, c.line, c.col, pe)
			}
			if pe.Section != c.section {
				t.Fatalf("section %q, want %q (%v)", pe.Section, c.section, pe)
			}
			if !strings.Contains(pe.Msg, c.msgPart) {
				t.Fatalf("message %q missing %q", pe.Msg, c.msgPart)
			}
		})
	}
}

// TestParseMaximize checks the OBJSENSE MAX mapping: the model stores
// the negated objective and Objective converts back.
func TestParseMaximize(t *testing.T) {
	in := mustParse(t, `
NAME MAXDEMO
OBJSENSE MAX
ROWS
 N  PROFIT
 L  CAP
COLUMNS
    X         PROFIT          3   CAP             1
RHS
    RHS       CAP             2   PROFIT          5
ENDATA
`[1:])
	if !in.Maximize {
		t.Fatal("Maximize not set")
	}
	m := in.Model
	x, _ := m.VarByName("X")
	if got := m.ObjCoef(x); got != -3 {
		t.Fatalf("model ObjCoef = %v, want the negated -3", got)
	}
	// PROFIT rhs 5 means constant -5 in the max objective, so the
	// minimization model carries +5.
	if got := m.ObjConst(); got != 5 {
		t.Fatalf("model ObjConst = %v, want 5", got)
	}
	r, err := m.Solve(milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// max 3x - 5 with x <= 2: x = 2, objective 1.
	if r.Status != milp.Optimal || math.Abs(in.Objective(r.Obj)-1) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 1", r.Status, in.Objective(r.Obj))
	}
}

// TestParseFortranExponent accepts D-exponent numerals.
func TestParseFortranExponent(t *testing.T) {
	in := mustParse(t, `
ROWS
 N  OBJ
 L  R1
COLUMNS
    X         OBJ        -1.5D1   R1            2d0
RHS
    RHS       R1          1.0D1
ENDATA
`[1:])
	m := in.Model
	x, _ := m.VarByName("X")
	if got := m.ObjCoef(x); got != -15 {
		t.Fatalf("ObjCoef = %v, want -15", got)
	}
	rows := m.Rows()
	if rows[0].Terms[0].Coef != 2 || rows[0].RHS != 10 {
		t.Fatalf("row: %+v", rows[0])
	}
}
