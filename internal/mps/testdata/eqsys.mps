* Equality system with a single feasible point: x+y=7, x-y=1 -> (4,3).
NAME          EQSYS
ROWS
 N  COST
 E  SUM
 E  DIF
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST            1   SUM             1
    X         DIF             1
    Y         COST            2   SUM             1
    Y         DIF            -1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       SUM             7   DIF             1
BOUNDS
 UI BND       X              10
 UI BND       Y              10
ENDATA
