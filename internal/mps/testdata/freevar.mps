* A free continuous variable that goes negative at the optimum.
NAME          FREEVAR
ROWS
 N  COST
 G  R1
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST            1   R1              4
    MARKER                 'MARKER'                 'INTEND'
    Y         COST            1   R1              1
RHS
    RHS       R1              2
BOUNDS
 BV BND       X
 FR BND       Y
ENDATA
