* Pure-binary knapsack whose LP relaxation is fractional (2.5 items of
* weight 4 fill capacity 10): the shape that triggers cover cuts.
NAME          COVER
ROWS
 N  COST
 L  CAP
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X1        COST           -5   CAP             4
    X2        COST           -5   CAP             4
    X3        COST           -5   CAP             4
    X4        COST           -5   CAP             4
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       CAP            10
BOUNDS
 BV BND       X1
 BV BND       X2
 BV BND       X3
 BV BND       X4
ENDATA
