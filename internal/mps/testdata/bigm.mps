* Big-M two-way disjunction (the paper's relative-position pattern):
* either xa is 10 right of xb or vice versa; minimize xa + xb -> 10.
NAME          BIGM
ROWS
 N  COST
 L  D1
 L  D2
 E  ONE
COLUMNS
    XA        COST            1   D1              1
    XA        D2             -1
    XB        COST            1   D1             -1
    XB        D2              1
    MARKER                 'MARKER'                 'INTORG'
    Q1        D1          -1000   ONE             1
    Q2        D2          -1000   ONE             1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       D1            -10   D2            -10
    RHS       ONE             1
BOUNDS
 UP BND       XA             15
 UP BND       XB             15
 BV BND       Q1
 BV BND       Q2
ENDATA
