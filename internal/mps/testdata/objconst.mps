* Objective with a constant term: min x + 100 via an RHS entry on the
* objective row (rhs = -constant).
NAME          OBJCONST
ROWS
 N  COST
 G  LIM
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST            1   LIM             1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       LIM             2   COST         -100
BOUNDS
 UI BND       X               5
ENDATA
