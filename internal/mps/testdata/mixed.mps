* Mixed integer/continuous with fractional data: x int, y continuous.
NAME          MIXED
ROWS
 N  COST
 L  R1
 G  R2
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST           -2   R1              1
    MARKER                 'MARKER'                 'INTEND'
    Y         COST           -1   R1              1
    Y         R2              1
RHS
    RHS       R1            6.5   R2           1.25
BOUNDS
 UI BND       X               4
 UP BND       Y              10
ENDATA
