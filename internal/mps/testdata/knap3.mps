* 3-item knapsack: pick at most 2 of A (10), B (6), C (4).
NAME          KNAP3
ROWS
 N  COST
 L  CAP
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    A         COST          -10   CAP             1
    B         COST           -6   CAP             1
    C         COST           -4   CAP             1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       CAP             2
BOUNDS
 UP BND       A               1
 UP BND       B               1
 UP BND       C               1
ENDATA
