* RANGES on an L row: x1 + x2 <= 8 with range 3 becomes 5 <= x1+x2 <= 8.
NAME          RANGELE
ROWS
 N  COST
 L  BAND
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X1        COST            1   BAND            1
    X2        COST            2   BAND            1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       BAND            8
RANGES
    RNG       BAND            3
BOUNDS
 UI BND       X1              6
 UI BND       X2              6
ENDATA
