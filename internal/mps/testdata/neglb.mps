* Negative integer lower bound: 2x >= -7 rounds up to x >= -3.
NAME          NEGLB
ROWS
 N  COST
 G  R1
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST            1   R1              2
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       R1             -7
BOUNDS
 LO BND       X              -5
 UP BND       X               5
ENDATA
