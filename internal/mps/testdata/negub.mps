* MPSX negative-UP convention: UP -2 with no explicit lower bound drops
* the lower bound to -inf, so x ranges over (-inf, -2]. Continuous only.
NAME          NEGUB
ROWS
 N  COST
 G  FLOOR
COLUMNS
    X         COST            1   FLOOR           1
RHS
    RHS       FLOOR          -6
BOUNDS
 UP BND       X              -2
ENDATA
