* OBJSENSE MAXIMIZE: max 10A + 6B + 4C with at most 2 items -> 16.
NAME          MAXKNAP
OBJSENSE
    MAX
ROWS
 N  PROFIT
 L  CAP
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    A         PROFIT         10   CAP             1
    B         PROFIT          6   CAP             1
    C         PROFIT          4   CAP             1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       CAP             2
BOUNDS
 BV BND       A
 BV BND       B
 BV BND       C
ENDATA
