* LI/UI integer bound types; UI also forces integrality on Y, which is
* declared outside the markers.
NAME          UILITYPE
ROWS
 N  COST
 L  R1
 L  R2
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST           -1   R1              1
    MARKER                 'MARKER'                 'INTEND'
    Y         COST           -1   R2              1
RHS
    RHS       R1            4.5   R2            2.5
BOUNDS
 LI BND       X               2
 UI BND       X               5
 UI BND       Y               3
ENDATA
