* RANGES on an E row, positive range: x = 4 with range 2 becomes 4 <= x <= 6.
NAME          RANGEEQP
ROWS
 N  COST
 E  BAND
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST           -1   BAND            1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       BAND            4
RANGES
    RNG       BAND            2
BOUNDS
 UI BND       X              10
ENDATA
