* RANGES on a G row: x1 + x2 >= 2 with range 5 becomes 2 <= x1+x2 <= 7.
NAME          RANGEGE
ROWS
 N  COST
 G  BAND
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X1        COST           -1   BAND            1
    X2        COST           -1   BAND            1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       BAND            2
RANGES
    RNG       BAND            5
BOUNDS
 UI BND       X1              4
 UI BND       X2              4
ENDATA
