* 2x = 3 has no integer solution.
NAME          INFEAS
ROWS
 N  COST
 E  PAR
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST            1   PAR             2
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       PAR             3
BOUNDS
 UI BND       X              10
ENDATA
