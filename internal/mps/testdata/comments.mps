* Comment and blank-line tolerance, Fortran D exponents, and the
* nameless free-format RHS variant.

NAME COMMENTS
* the rows
ROWS
 N  COST

 L  CAP
COLUMNS
* markers work with comments interleaved
    MARKER                 'MARKER'                 'INTORG'
    A         COST        -3D0   CAP             1

    B         COST      -5.0d0   CAP             1
    MARKER                 'MARKER'                 'INTEND'
RHS
    CAP 1
BOUNDS
 BV BND       A
 BV BND       B

ENDATA
* trailing text after ENDATA is ignored
garbage that would otherwise be a parse error
