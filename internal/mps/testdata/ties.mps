* Degenerate ties: two symmetric optima (x1=1 or x2=1), objective 1.
NAME          TIES
ROWS
 N  COST
 G  ONE
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X1        COST            1   ONE             1
    X2        COST            1   ONE             1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       ONE             1
BOUNDS
 BV BND       X1
 BV BND       X2
ENDATA
