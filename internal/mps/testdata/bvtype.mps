* Integrality via BV bound types only (no COLUMNS markers).
NAME          BVTYPE
ROWS
 N  COST
 G  ONE
COLUMNS
    X1        COST            3   ONE             1
    X2        COST            2   ONE             1
RHS
    RHS       ONE             1
BOUNDS
 BV BND       X1
 BV BND       X2
ENDATA
