NAME          FRACKNAP
ROWS
 N  COST
 L  CAP
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X1        COST           -9   CAP             6
    X2        COST           -7   CAP             5
    X3        COST           -5   CAP             4
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       CAP            10
BOUNDS
 BV BND       X1
 BV BND       X2
 BV BND       X3
ENDATA
