NAME          INTLINE
ROWS
 N  COST
 L  LIM
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST           -1   LIM             3
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       LIM            10
BOUNDS
 UI BND       X              10
ENDATA
