* min -x with x integer and no upper bound: unbounded below.
NAME          UNBOUNDED
ROWS
 N  COST
 G  LB
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X         COST           -1   LB              1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       LB              0
ENDATA
