package mps

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseMPS feeds arbitrary bytes to the parser, seeded with the
// full corpus. The properties under test:
//
//  1. The parser never panics, and every rejection is a typed
//     *ParseError (position-carrying) — never a bare fmt error.
//  2. Anything that parses also writes, and write→parse→write is a
//     byte fixpoint: the second write equals the first.
func FuzzParseMPS(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.mps"))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no corpus seeds")
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte("ROWS\n N  OBJ\nCOLUMNS\n    X OBJ 1\nENDATA\n"))
	f.Add([]byte("OBJSENSE\n MAX\nROWS\n N  O\n L  C\nCOLUMNS\n X O 2 C 1\nRHS\n R C 3\nRANGES\n R C 1\nBOUNDS\n UI B X 4\nENDATA\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			return // keep individual iterations cheap
		}
		in, err := ParseBytes(data)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is %T, want *ParseError: %v", err, err)
			}
			if pe.Line < 1 || pe.Col < 0 {
				t.Fatalf("nonsensical position in %v", pe)
			}
			return
		}
		var first bytes.Buffer
		if err := Write(&first, in); err != nil {
			// Parsed instances can still carry unwritable numbers (an
			// infinite coefficient is rejected at parse time, but e.g.
			// overflow-to-inf products are not constructible here), so a
			// write error on a parsed instance is a bug.
			t.Fatalf("write of parsed instance failed: %v", err)
		}
		in2, err := ParseBytes(first.Bytes())
		if err != nil {
			t.Fatalf("re-parse of written output failed: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := Write(&second, in2); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write→parse→write not a fixpoint:\n--- first ---\n%s--- second ---\n%s",
				first.String(), second.String())
		}
	})
}
