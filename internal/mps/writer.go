package mps

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"columbas/internal/lp"
	"columbas/internal/milp"
)

// Write emits the instance as deterministic free-format MPS. The output
// always re-parses into an identical instance (the round-trip property
// the package tests pin): every variable appears in COLUMNS (with a
// zero objective entry when it has no other coefficient), integrality
// is carried by INTORG/INTEND markers, and bounds are emitted whenever
// they deviate from the MPS defaults ([0, +inf)). RANGES is never
// written — a parsed range row already lives in the model as an LE/GE
// pair, and writing the pair back preserves its semantics.
//
// Variable names are sanitized into single whitespace-free fields and
// de-duplicated (a model is free to reuse names; a file is not). An
// instance whose bounds or coefficients are NaN is rejected.
func Write(w io.Writer, in *Instance) error {
	m := in.Model
	bw := bufio.NewWriter(w)
	names := varNames(m)

	name := in.Name
	if name == "" {
		name = "COLUMBA"
	}
	fmt.Fprintf(bw, "NAME          %s\n", sanitizeName(name))
	if in.Maximize {
		fmt.Fprintf(bw, "OBJSENSE\n    MAX\n")
	}

	objName := sanitizeName(in.ObjName)
	if objName == "" {
		objName = "OBJ"
	}
	rows := m.Rows()
	rowNames := make([]string, len(rows))
	for i := range rows {
		rowNames[i] = fmt.Sprintf("R%07d", i+1)
	}
	if rowTaken(rowNames, objName) {
		objName = "OBJ.0"
	}

	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintf(bw, " N  %s\n", objName)
	for i, r := range rows {
		fmt.Fprintf(bw, " %c  %s\n", senseChar(r.Sense), rowNames[i])
	}

	// Column-major view: per variable, its objective coefficient then
	// its row coefficients in row order.
	type entry struct {
		row  string
		coef float64
	}
	cols := make([][]entry, m.NumVars())
	for i, r := range rows {
		for _, t := range r.Terms {
			if t.Coef == 0 {
				// A zero entry (e.g. duplicate input entries merged to 0)
				// would be dropped on re-parse; omit it so write→parse→write
				// is a fixpoint.
				continue
			}
			cols[t.Var] = append(cols[t.Var], entry{row: rowNames[i], coef: t.Coef})
		}
	}
	sign := 1.0
	if in.Maximize {
		sign = -1 // the model stores the negated (minimization) objective
	}

	fmt.Fprintln(bw, "COLUMNS")
	inMark := false
	for v := 0; v < m.NumVars(); v++ {
		isInt := m.IsInt(milp.VarID(v))
		if isInt != inMark {
			mode := "INTORG"
			if !isInt {
				mode = "INTEND"
			}
			fmt.Fprintf(bw, "    MARKER%04d  'MARKER'  '%s'\n", v, mode)
			inMark = isInt
		}
		var ents []entry
		if oc := m.ObjCoef(milp.VarID(v)); oc != 0 || len(cols[v]) == 0 {
			ents = append(ents, entry{row: objName, coef: sign * oc})
		}
		ents = append(ents, cols[v]...)
		for _, e := range ents {
			val, err := formatNum(e.coef)
			if err != nil {
				return fmt.Errorf("mps: column %s, row %s: %w", names[v], e.row, err)
			}
			fmt.Fprintf(bw, "    %-9s %-9s %s\n", names[v], e.row, val)
		}
	}
	if inMark {
		fmt.Fprintf(bw, "    MARKER%04d  'MARKER'  'INTEND'\n", m.NumVars())
	}

	fmt.Fprintln(bw, "RHS")
	if c := sign * m.ObjConst(); c != 0 {
		val, err := formatNum(-c) // rhs on the objective row = -constant
		if err != nil {
			return fmt.Errorf("mps: objective constant: %w", err)
		}
		fmt.Fprintf(bw, "    %-9s %-9s %s\n", "RHS", objName, val)
	}
	for i, r := range rows {
		if r.RHS == 0 {
			continue
		}
		val, err := formatNum(r.RHS)
		if err != nil {
			return fmt.Errorf("mps: row %s rhs: %w", rowNames[i], err)
		}
		fmt.Fprintf(bw, "    %-9s %-9s %s\n", "RHS", rowNames[i], val)
	}

	var bnds strings.Builder
	for v := 0; v < m.NumVars(); v++ {
		lo, hi := m.Bounds(milp.VarID(v))
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return fmt.Errorf("mps: variable %s has NaN bounds", names[v])
		}
		negInfLo, infHi := math.IsInf(lo, -1), math.IsInf(hi, 1)
		switch {
		case lo == 0 && infHi:
			// The MPS default; nothing to write.
		case negInfLo && infHi:
			fmt.Fprintf(&bnds, " FR %-9s %s\n", "BND", names[v])
		case lo == hi:
			fmt.Fprintf(&bnds, " FX %-9s %-9s %s\n", "BND", names[v], mustNum(lo))
		default:
			switch {
			case negInfLo:
				fmt.Fprintf(&bnds, " MI %-9s %s\n", "BND", names[v])
			case lo != 0:
				fmt.Fprintf(&bnds, " LO %-9s %-9s %s\n", "BND", names[v], mustNum(lo))
			case hi < 0:
				// An UP with a negative value and an unwritten lower
				// bound would flip lo to -inf on re-parse (the MPSX
				// convention) — pin the default 0 explicitly.
				fmt.Fprintf(&bnds, " LO %-9s %-9s 0\n", "BND", names[v])
			}
			if !infHi {
				fmt.Fprintf(&bnds, " UP %-9s %-9s %s\n", "BND", names[v], mustNum(hi))
			}
		}
	}
	if bnds.Len() > 0 {
		fmt.Fprintln(bw, "BOUNDS")
		bw.WriteString(bnds.String())
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

func senseChar(s lp.Sense) byte {
	switch s {
	case lp.LE:
		return 'L'
	case lp.GE:
		return 'G'
	default:
		return 'E'
	}
}

// formatNum renders a finite float64 in the shortest form that parses
// back to the same value.
func formatNum(v float64) (string, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "", fmt.Errorf("non-finite coefficient %v", v)
	}
	return strconv.FormatFloat(v, 'g', -1, 64), nil
}

// mustNum is formatNum for values the caller has already checked are
// finite (bounds after the NaN guard; ±inf never reaches it).
func mustNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sanitizeName turns an arbitrary model name into a single MPS field:
// whitespace (illegal inside a free-format field) and '*' (the comment
// introducer) become '_'.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\r' || r == '\n' || r == '*' {
			return '_'
		}
		return r
	}, s)
}

// varNames returns a sanitized, de-duplicated file name for every model
// variable, deterministically: the first holder keeps the sanitized
// name, later duplicates get a ".<id>" suffix (repeated until unique).
func varNames(m *milp.Model) []string {
	names := make([]string, m.NumVars())
	taken := make(map[string]bool, m.NumVars())
	for v := range names {
		n := sanitizeName(m.Name(milp.VarID(v)))
		if n == "" {
			n = fmt.Sprintf("X%07d", v+1)
		}
		for taken[n] {
			n = fmt.Sprintf("%s.%d", n, v)
		}
		taken[n] = true
		names[v] = n
	}
	return names
}

func rowTaken(rowNames []string, name string) bool {
	for _, r := range rowNames {
		if r == name {
			return true
		}
	}
	return false
}
