package hls

import (
	"strings"
	"testing"
)

const assaySrc = `
# 4-lane immunoprecipitation
assay ip4
muxes 1
lanes 4 shared
mix bind cycles=3 fluid:chromatin fluid:beads
wash bind
incubate react bind
collect react product
`

func TestParseAssay(t *testing.T) {
	a, err := ParseString(assaySrc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "ip4" || a.Lanes() != 4 || a.Ops() != 3 {
		t.Fatalf("assay = %q lanes=%d ops=%d", a.Name, a.Lanes(), a.Ops())
	}
	n, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumUnits() != 8 {
		t.Fatalf("units = %d, want 8", n.NumUnits())
	}
	if len(n.Parallel) != 1 {
		t.Fatal("shared lanes should form a parallel group")
	}
	u := n.Unit("bind_l1")
	if u == nil || u.Opt.String() != "sieve" {
		t.Fatalf("wash should sieve the bind mixer: %+v", u)
	}
}

func TestParseCapture(t *testing.T) {
	a, err := ParseString(`
assay cells
capture trap cycles=2 fluid:cells
incubate lyse trap
collect lyse rna
`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if u := n.Unit("trap_l1"); u == nil || u.Opt.String() != "celltrap" {
		t.Fatalf("trap unit = %+v", u)
	}
}

func TestParseDefaultCycles(t *testing.T) {
	a, err := ParseString("assay a\nmix m fluid:x\ncollect m out\n")
	if err != nil {
		t.Fatal(err)
	}
	p, err := a.Schedule(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops() != 1 {
		t.Fatalf("ops = %d", p.Ops())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"mix m fluid:x\n", "must start with an assay"},
		{"assay a\nassay b\n", "duplicate assay"},
		{"assay\n", "exactly one name"},
		{"assay a\nmuxes zz\n", "bad mux count"},
		{"assay a\nmuxes 5\n", "muxes must be"},
		{"assay a\nlanes x\n", "bad lane count"},
		{"assay a\nlanes 2 frob\n", "unknown lanes option"},
		{"assay a\nmix m cycles=x fluid:y\n", "bad cycles"},
		{"assay a\nmix m\n", "name and inputs"},
		{"assay a\nincubate i\n", "name and one input"},
		{"assay a\nwash\n", "one target"},
		{"assay a\nwash ghost\n", "unknown operation"},
		{"assay a\ncollect x\n", "an input and an outlet"},
		{"assay a\nfrobnicate\n", "unknown directive"},
		{"", "empty assay"},
	}
	for i, tc := range cases {
		_, err := ParseString(tc.src)
		if err == nil {
			t.Fatalf("case %d: expected error", i)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: err = %v, want %q", i, err, tc.want)
		}
	}
}

func TestParseRoundTripThroughFlow(t *testing.T) {
	a, err := ParseString(assaySrc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}
