package hls

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads the textual assay description language — the file-format
// counterpart of the builder API. The format is line-oriented; '#'
// starts a comment:
//
//	assay ip4
//	muxes 1
//	lanes 4 shared          # replicate into 4 lanes, shared control
//	mix bind cycles=3 fluid:chromatin fluid:beads
//	wash bind
//	incubate react bind
//	capture trap cycles=2 fluid:cells
//	collect react product   # route react's output to outlet "product"
//
// Operation inputs are fluids ("fluid:<name>") or earlier operation names.
func Parse(r io.Reader) (*Assay, error) {
	var a *Assay
	sc := bufio.NewScanner(r)
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("hls: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if a == nil && fields[0] != "assay" {
			return nil, fail("file must start with an assay directive")
		}
		switch fields[0] {
		case "assay":
			if len(fields) != 2 {
				return nil, fail("assay takes exactly one name")
			}
			if a != nil {
				return nil, fail("duplicate assay directive")
			}
			a = NewAssay(fields[1])
		case "muxes":
			if len(fields) != 2 {
				return nil, fail("muxes takes exactly one number")
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad mux count %q", fields[1])
			}
			a.WithMuxes(v)
		case "lanes":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fail("lanes takes a count and an optional 'shared'")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad lane count %q", fields[1])
			}
			shared := false
			if len(fields) == 3 {
				if fields[2] != "shared" {
					return nil, fail("unknown lanes option %q", fields[2])
				}
				shared = true
			}
			a.Replicate(n, shared)
		case "mix", "capture":
			if len(fields) < 3 {
				return nil, fail("%s takes a name and inputs", fields[0])
			}
			name := fields[1]
			cycles := 1
			inputs := fields[2:]
			if strings.HasPrefix(inputs[0], "cycles=") {
				v, err := strconv.Atoi(inputs[0][len("cycles="):])
				if err != nil {
					return nil, fail("bad cycles %q", inputs[0])
				}
				cycles = v
				inputs = inputs[1:]
			}
			if fields[0] == "mix" {
				a.Mix(name, cycles, inputs...)
			} else {
				a.Capture(name, cycles, inputs...)
			}
		case "incubate":
			if len(fields) != 3 {
				return nil, fail("incubate takes a name and one input")
			}
			a.Incubate(fields[1], fields[2])
		case "wash":
			if len(fields) != 2 {
				return nil, fail("wash takes one target")
			}
			a.Wash(fields[1])
		case "collect":
			if len(fields) != 3 {
				return nil, fail("collect takes an input and an outlet name")
			}
			a.Collect(fields[1], fields[2])
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
		if err := a.Err(); err != nil {
			return nil, fail("%v", err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if a == nil {
		return nil, fmt.Errorf("hls: empty assay description")
	}
	return a, nil
}

// ParseString parses an assay description from a string.
func ParseString(s string) (*Assay, error) { return Parse(strings.NewReader(s)) }
