// Package hls is a small component-oriented high-level synthesis front
// end for Columba S, in the spirit of the hybrid-scheduling HLS flow the
// paper builds on (reference [18]): a biological assay is described as a
// dataflow of fluidic operations, which compiles into
//
//   - a netlist description (the input of the Columba S physical flow):
//     mixers, chambers, terminals, connections and parallel groups, and
//   - per-lane scheduling protocols (executable on the synthesized chip
//     through internal/sim).
//
// Because Columba S designs are reconfigurable, the schedule is not baked
// into the chip: the same compiled netlist runs any protocol whose
// operations the instantiated units support.
//
// Key types: Assay is the builder (Mix, React, Transfer, Replicate ops);
// Compile lowers it to a netlist source plus per-lane sim.Protocol
// schedules.
package hls
