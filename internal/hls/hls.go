package hls

import (
	"fmt"

	"columbas/internal/netlist"
	"columbas/internal/sim"
)

// OpKind is a fluidic operation class.
type OpKind int

// Operation kinds.
const (
	OpMix      OpKind = iota // rotary mixing of one or more inputs
	OpIncubate               // passive reaction in a chamber
	OpCapture                // cell capture in a cell-trap mixer
	OpCollect                // routing a product to an outlet
)

func (k OpKind) String() string {
	switch k {
	case OpMix:
		return "mix"
	case OpIncubate:
		return "incubate"
	case OpCapture:
		return "capture"
	case OpCollect:
		return "collect"
	}
	return "unknown"
}

// Op is one operation of the assay dataflow.
type Op struct {
	Name   string
	Kind   OpKind
	Inputs []string // fluid names ("fluid:x") or producing op names
	Cycles int      // mixing cycles (OpMix)
	Outlet string   // outlet terminal (OpCollect)
	Washed bool     // a wash step targets this mix op (sieve mixer)
}

// Assay is a high-level application description.
type Assay struct {
	Name  string
	Muxes int
	ops   []*Op
	lanes int
	share bool
	err   error
}

// NewAssay starts an empty single-lane assay.
func NewAssay(name string) *Assay {
	return &Assay{Name: name, Muxes: 1, lanes: 1}
}

func (a *Assay) fail(format string, args ...any) *Assay {
	if a.err == nil {
		a.err = fmt.Errorf("hls: "+format, args...)
	}
	return a
}

func (a *Assay) op(name string) *Op {
	for _, o := range a.ops {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// Fluid references an external fluid input in an operation's input list.
func Fluid(name string) string { return "fluid:" + name }

func isFluid(ref string) (string, bool) {
	if len(ref) > 6 && ref[:6] == "fluid:" {
		return ref[6:], true
	}
	return "", false
}

func (a *Assay) add(o *Op) *Assay {
	if a.err != nil {
		return a
	}
	if o.Name == "" {
		return a.fail("operation needs a name")
	}
	if a.op(o.Name) != nil {
		return a.fail("duplicate operation %q", o.Name)
	}
	for _, in := range o.Inputs {
		if _, ok := isFluid(in); ok {
			continue
		}
		if a.op(in) == nil {
			return a.fail("operation %q consumes unknown input %q", o.Name, in)
		}
	}
	a.ops = append(a.ops, o)
	return a
}

// Mix adds a rotary-mixing operation over the inputs.
func (a *Assay) Mix(name string, cycles int, inputs ...string) *Assay {
	if cycles < 1 {
		return a.fail("mix %q needs at least one cycle", name)
	}
	if len(inputs) == 0 {
		return a.fail("mix %q needs inputs", name)
	}
	return a.add(&Op{Name: name, Kind: OpMix, Cycles: cycles, Inputs: inputs})
}

// Incubate adds a passive reaction step on one input.
func (a *Assay) Incubate(name, input string) *Assay {
	return a.add(&Op{Name: name, Kind: OpIncubate, Inputs: []string{input}})
}

// Capture adds a cell-capture step (cell-trap mixer).
func (a *Assay) Capture(name string, cycles int, inputs ...string) *Assay {
	if len(inputs) == 0 {
		return a.fail("capture %q needs inputs", name)
	}
	if cycles < 1 {
		cycles = 1
	}
	return a.add(&Op{Name: name, Kind: OpCapture, Cycles: cycles, Inputs: inputs})
}

// Wash marks a mix operation as washed: its mixer gains sieve valves and
// the schedule inserts a wash phase (Figure 3(c)).
func (a *Assay) Wash(target string) *Assay {
	if a.err != nil {
		return a
	}
	o := a.op(target)
	if o == nil {
		return a.fail("wash targets unknown operation %q", target)
	}
	if o.Kind != OpMix {
		return a.fail("wash target %q is not a mix operation", target)
	}
	o.Washed = true
	return a
}

// Collect routes an operation's product to a named outlet.
func (a *Assay) Collect(input, outlet string) *Assay {
	if a.err != nil {
		return a
	}
	if a.op(input) == nil {
		return a.fail("collect consumes unknown operation %q", input)
	}
	return a.add(&Op{
		Name: "collect:" + outlet, Kind: OpCollect,
		Inputs: []string{input}, Outlet: outlet,
	})
}

// Replicate runs the whole assay in n identical lanes. With shareControl
// the lanes share their control channels (parallel groups, Figure 6(a)) —
// identical actuation across lanes, fewer multiplexed channels.
func (a *Assay) Replicate(n int, shareControl bool) *Assay {
	if a.err != nil {
		return a
	}
	if n < 1 {
		return a.fail("replicate needs n >= 1")
	}
	a.lanes = n
	a.share = shareControl
	return a
}

// WithMuxes sets the multiplexer count of the compiled netlist.
func (a *Assay) WithMuxes(m int) *Assay {
	if m != 1 && m != 2 {
		return a.fail("muxes must be 1 or 2")
	}
	a.Muxes = m
	return a
}

// Err surfaces the first builder error.
func (a *Assay) Err() error { return a.err }

// unitName is the functional unit instantiated for op o in lane l.
func unitName(o *Op, lane int) string {
	return fmt.Sprintf("%s_l%d", o.Name, lane+1)
}

// Compile lowers the assay to a Columba S netlist description.
func (a *Assay) Compile() (*netlist.Netlist, error) {
	if a.err != nil {
		return nil, a.err
	}
	if len(a.ops) == 0 {
		return nil, fmt.Errorf("hls: assay %q has no operations", a.Name)
	}
	consumed := map[string]int{}
	for _, o := range a.ops {
		for _, in := range o.Inputs {
			if _, ok := isFluid(in); !ok {
				consumed[in]++
			}
		}
	}
	var src []string
	src = append(src, "design "+a.Name, fmt.Sprintf("muxes %d", a.Muxes))
	for lane := 0; lane < a.lanes; lane++ {
		for _, o := range a.ops {
			switch o.Kind {
			case OpMix:
				u := "unit " + unitName(o, lane) + " mixer"
				if o.Washed {
					u += " sieve"
				}
				src = append(src, u)
			case OpCapture:
				src = append(src, "unit "+unitName(o, lane)+" mixer celltrap")
			case OpIncubate:
				src = append(src, "unit "+unitName(o, lane)+" chamber")
			}
		}
	}
	for lane := 0; lane < a.lanes; lane++ {
		suffix := ""
		if a.lanes > 1 {
			suffix = fmt.Sprintf("%d", lane+1)
		}
		for _, o := range a.ops {
			if o.Kind == OpCollect {
				src = append(src, fmt.Sprintf("connect %s out:%s%s",
					unitName(a.op(o.Inputs[0]), lane), o.Outlet, suffix))
				continue
			}
			for _, in := range o.Inputs {
				if f, ok := isFluid(in); ok {
					src = append(src, fmt.Sprintf("connect in:%s%s %s", f, suffix, unitName(o, lane)))
				} else {
					src = append(src, fmt.Sprintf("connect %s %s",
						unitName(a.op(in), lane), unitName(o, lane)))
				}
			}
		}
	}
	if a.share && a.lanes > 1 {
		// One parallel group per lane would be wrong — the group spans
		// the corresponding units ACROSS lanes... no: Columba S parallel
		// groups contain whole chains; all lanes' units form one group.
		var group []string
		for lane := 0; lane < a.lanes; lane++ {
			for _, o := range a.ops {
				if o.Kind != OpCollect {
					group = append(group, unitName(o, lane))
				}
			}
		}
		line := "parallel"
		for _, g := range group {
			line += " " + g
		}
		src = append(src, line)
	}
	text := ""
	for _, l := range src {
		text += l + "\n"
	}
	n, err := netlist.ParseString(text)
	if err != nil {
		return nil, fmt.Errorf("hls: compiled netlist invalid: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("hls: compiled netlist invalid: %w", err)
	}
	return n, nil
}

// Schedule derives the lane's execution protocol: operations in dataflow
// order with transfers between producing and consuming units.
func (a *Assay) Schedule(lane int) (*sim.Protocol, error) {
	if a.err != nil {
		return nil, a.err
	}
	if lane < 0 || lane >= a.lanes {
		return nil, fmt.Errorf("hls: lane %d out of range [0,%d)", lane, a.lanes)
	}
	p := sim.NewProtocol(fmt.Sprintf("%s-lane%d", a.Name, lane+1))
	for _, o := range a.ops {
		if o.Kind == OpCollect {
			continue
		}
		// Fill the unit from its producing units first.
		for _, in := range o.Inputs {
			if _, ok := isFluid(in); ok {
				continue
			}
			p.Transfer(unitName(a.op(in), lane), unitName(o, lane))
		}
		switch o.Kind {
		case OpMix:
			p.Mix(unitName(o, lane), o.Cycles)
			if o.Washed {
				p.Wash(unitName(o, lane))
			}
		case OpCapture:
			p.Mix(unitName(o, lane), o.Cycles)
			p.Capture(unitName(o, lane))
		case OpIncubate:
			// Passive: the transfer above filled the chamber.
		}
	}
	return p, nil
}

// Ops returns the operation count (collects included).
func (a *Assay) Ops() int { return len(a.ops) }

// Lanes returns the replication factor.
func (a *Assay) Lanes() int { return a.lanes }
