package hls

import (
	"strings"
	"testing"
	"time"

	"columbas/internal/core"
	"columbas/internal/planar"
	"columbas/internal/sim"
)

// A single-lane immunoprecipitation-style assay.
func ipAssay() *Assay {
	return NewAssay("ip").
		Mix("bind", 3, Fluid("chromatin"), Fluid("beads")).
		Wash("bind").
		Incubate("react", "bind").
		Collect("react", "product")
}

func TestCompileSingleLane(t *testing.T) {
	n, err := ipAssay().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumUnits() != 2 {
		t.Fatalf("units = %d, want 2 (mixer + chamber)", n.NumUnits())
	}
	u := n.Unit("bind_l1")
	if u == nil || u.Type.String() != "mixer" || u.Opt.String() != "sieve" {
		t.Fatalf("bind unit = %+v (wash should make it a sieve mixer)", u)
	}
	if n.Unit("react_l1") == nil {
		t.Fatal("chamber missing")
	}
	in, out := n.Terminals()
	if len(in) != 2 || len(out) != 1 {
		t.Fatalf("terminals = %v / %v", in, out)
	}
	if _, err := planar.Planarize(n); err != nil {
		t.Fatalf("compiled netlist not planarizable: %v", err)
	}
}

func TestCompileReplicated(t *testing.T) {
	a := ipAssay().Replicate(4, true)
	n, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumUnits() != 8 {
		t.Fatalf("units = %d, want 8", n.NumUnits())
	}
	if len(n.Parallel) != 1 || len(n.Parallel[0]) != 8 {
		t.Fatalf("parallel = %v", n.Parallel)
	}
	// Per-lane fluid terminals.
	in, _ := n.Terminals()
	if len(in) != 8 { // chromatin1..4 + beads1..4
		t.Fatalf("inlets = %v", in)
	}
}

func TestCompileWithoutSharing(t *testing.T) {
	n, err := ipAssay().Replicate(3, false).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Parallel) != 0 {
		t.Fatal("unshared lanes must not form parallel groups")
	}
	if n.NumUnits() != 6 {
		t.Fatalf("units = %d", n.NumUnits())
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		a    *Assay
		want string
	}{
		{NewAssay("e").Mix("", 1, Fluid("x")), "needs a name"},
		{NewAssay("e").Mix("m", 0, Fluid("x")), "at least one cycle"},
		{NewAssay("e").Mix("m", 1), "needs inputs"},
		{NewAssay("e").Mix("m", 1, "ghost"), "unknown input"},
		{NewAssay("e").Mix("m", 1, Fluid("x")).Mix("m", 1, Fluid("y")), "duplicate"},
		{NewAssay("e").Wash("ghost"), "unknown operation"},
		{NewAssay("e").Incubate("i", Fluid("x")).Wash("i"), "not a mix"},
		{NewAssay("e").Collect("ghost", "out"), "unknown operation"},
		{NewAssay("e").Mix("m", 1, Fluid("x")).Replicate(0, false), "n >= 1"},
		{NewAssay("e").WithMuxes(3), "muxes must be"},
		{NewAssay("e").Capture("c", 1), "needs inputs"},
	}
	for i, tc := range cases {
		err := tc.a.Err()
		if err == nil {
			if _, err = tc.a.Compile(); err == nil {
				t.Fatalf("case %d: expected error", i)
			}
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: err = %v, want %q", i, err, tc.want)
		}
	}
}

func TestCompileEmptyAssay(t *testing.T) {
	if _, err := NewAssay("empty").Compile(); err == nil {
		t.Fatal("empty assay should not compile")
	}
}

func TestScheduleOrder(t *testing.T) {
	a := ipAssay()
	p, err := a.Schedule(0)
	if err != nil {
		t.Fatal(err)
	}
	// mix + wash + transfer(bind->react) = 3 high-level ops.
	if p.Ops() != 3 {
		t.Fatalf("protocol ops = %d, want 3", p.Ops())
	}
	if _, err := a.Schedule(5); err == nil {
		t.Fatal("out-of-range lane should fail")
	}
}

// The full pipeline: assay -> netlist -> chip -> executable schedule.
func TestAssayToChipToSchedule(t *testing.T) {
	a := ipAssay().Replicate(2, true)
	n, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 5 * time.Second
	opt.Layout.StallLimit = 30
	res, err := core.Synthesize(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DRC.Clean() {
		t.Fatal("compiled design not DRC-clean")
	}
	for lane := 0; lane < a.Lanes(); lane++ {
		p, err := a.Schedule(lane)
		if err != nil {
			t.Fatal(err)
		}
		ctl := sim.NewController(res.Design)
		dur, err := p.Execute(ctl)
		if err != nil {
			t.Fatalf("lane %d: %v", lane, err)
		}
		if dur <= 0 {
			t.Fatalf("lane %d: zero duration", lane)
		}
	}
}

func TestCaptureAssay(t *testing.T) {
	a := NewAssay("cells").
		Capture("trap", 2, Fluid("cells")).
		Incubate("lyse", "trap").
		Collect("lyse", "rna")
	n, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	u := n.Unit("trap_l1")
	if u == nil || u.Opt.String() != "celltrap" {
		t.Fatalf("capture unit = %+v", u)
	}
}

func TestOpKindStrings(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpMix: "mix", OpIncubate: "incubate", OpCapture: "capture", OpCollect: "collect",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", want, k.String())
		}
	}
	if OpKind(9).String() != "unknown" {
		t.Error("unknown OpKind")
	}
}

func TestFluidRef(t *testing.T) {
	if Fluid("x") != "fluid:x" {
		t.Fatalf("Fluid = %q", Fluid("x"))
	}
	name, ok := isFluid("fluid:abc")
	if !ok || name != "abc" {
		t.Fatalf("isFluid = %q %v", name, ok)
	}
	if _, ok := isFluid("opname"); ok {
		t.Fatal("op names are not fluids")
	}
}
