package hls_test

import (
	"fmt"

	"columbas/internal/hls"
)

// An assay dataflow compiles to a Columba S netlist: operations become
// functional units, dataflow edges become channels, and replicated lanes
// with shared control become a parallel group.
func ExampleAssay() {
	a := hls.NewAssay("ip").
		Mix("bind", 3, hls.Fluid("chromatin"), hls.Fluid("beads")).
		Wash("bind").
		Incubate("react", "bind").
		Collect("react", "product").
		Replicate(2, true)
	n, err := a.Compile()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d units, %d parallel group(s)\n", n.Name, n.NumUnits(), len(n.Parallel))
	fmt.Printf("bind_l1 is a %s %s\n", n.Unit("bind_l1").Opt, n.Unit("bind_l1").Type)
	// Output:
	// ip: 4 units, 1 parallel group(s)
	// bind_l1 is a sieve mixer
}
