package module

import (
	"math"
	"testing"

	"columbas/internal/geom"
	"columbas/internal/netlist"
)

func mixerUnit(opt netlist.MixerOpt) netlist.Unit {
	return netlist.Unit{Name: "m", Type: netlist.Mixer, Opt: opt}
}

func chamberUnit() netlist.Unit {
	return netlist.Unit{Name: "c", Type: netlist.Chamber}
}

func TestFootprintDefaults(t *testing.T) {
	w, h := Footprint(mixerUnit(netlist.Plain))
	if w != MixerW || h != MixerH {
		t.Fatalf("mixer footprint = %v x %v", w, h)
	}
	w, h = Footprint(chamberUnit())
	if w != ChamberW || h != ChamberH {
		t.Fatalf("chamber footprint = %v x %v", w, h)
	}
}

func TestFootprintOverride(t *testing.T) {
	u := netlist.Unit{Name: "c", Type: netlist.Chamber, W: 4000, H: 900}
	w, h := Footprint(u)
	if w != 4000 || h != 900 {
		t.Fatalf("override footprint = %v x %v", w, h)
	}
}

func TestControlLineCount(t *testing.T) {
	cases := []struct {
		u    netlist.Unit
		want int
	}{
		{mixerUnit(netlist.Plain), 5},
		{mixerUnit(netlist.Sieve), 7},
		{mixerUnit(netlist.CellTrap), 7},
		{chamberUnit(), 2},
	}
	for _, tc := range cases {
		if got := ControlLineCount(tc.u); got != tc.want {
			t.Errorf("ControlLineCount(%v/%v) = %d, want %d", tc.u.Type, tc.u.Opt, got, tc.want)
		}
	}
}

func TestSwitchWidthFormula(t *testing.T) {
	// w = 4d + c*2d (Section 3.2)
	for c := 1; c <= 8; c++ {
		want := 4*D + float64(c)*2*D
		if got := SwitchWidth(c); got != want {
			t.Errorf("SwitchWidth(%d) = %v, want %v", c, got, want)
		}
	}
}

func TestInstantiateMixer(t *testing.T) {
	in, err := Instantiate("m1", mixerUnit(netlist.Plain), geom.Pt{X: 100, Y: 200}, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != KindMixer {
		t.Fatalf("Kind = %v", in.Kind)
	}
	wantBox := geom.RectWH(100, 200, MixerW, MixerH)
	if in.Box != wantBox {
		t.Fatalf("Box = %v, want %v", in.Box, wantBox)
	}
	// Pins on the left/right boundaries at mid height.
	if !in.PinLeft.Eq(geom.Pt{X: 100, Y: 200 + MixerH/2}) {
		t.Fatalf("PinLeft = %v", in.PinLeft)
	}
	if !in.PinRight.Eq(geom.Pt{X: 100 + MixerW, Y: 200 + MixerH/2}) {
		t.Fatalf("PinRight = %v", in.PinRight)
	}
	if len(in.Lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(in.Lines))
	}
	// All control lines inside the box, all valves on their line.
	for _, l := range in.Lines {
		if l.X < in.Box.XL || l.X > in.Box.XR {
			t.Errorf("line %s at x=%v outside box", l.Name, l.X)
		}
		if l.Access != FromBottom {
			t.Errorf("line %s access = %v", l.Name, l.Access)
		}
		for _, v := range l.Valves {
			if math.Abs(v.At.X-l.X) > geom.Eps {
				t.Errorf("valve of %s off its control line", l.Name)
			}
			if !in.Box.Contains(v.At) {
				t.Errorf("valve of %s outside module box", l.Name)
			}
		}
	}
	// Pump valves exist and respect the enlarged pitch.
	var pumpXs []float64
	for _, l := range in.Lines {
		for _, v := range l.Valves {
			if v.Kind == ValvePump {
				pumpXs = append(pumpXs, v.At.X)
			}
		}
	}
	if len(pumpXs) != 3 {
		t.Fatalf("pump valves = %d, want 3", len(pumpXs))
	}
	for i := 1; i < len(pumpXs); i++ {
		if gap := math.Abs(pumpXs[i] - pumpXs[i-1]); gap < PumpPitch-geom.Eps {
			t.Errorf("pump pitch %v < %v", gap, PumpPitch)
		}
	}
}

func TestMixerLinesSorted(t *testing.T) {
	in, err := Instantiate("m1", mixerUnit(netlist.Sieve), geom.Pt{}, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(in.Lines); i++ {
		if in.Lines[i].X < in.Lines[i-1].X {
			t.Fatalf("lines not sorted by x: %v then %v", in.Lines[i-1].X, in.Lines[i].X)
		}
	}
}

func TestMixerSieveValves(t *testing.T) {
	in, err := Instantiate("m1", mixerUnit(netlist.Sieve), geom.Pt{}, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Lines) != 7 {
		t.Fatalf("lines = %d, want 7", len(in.Lines))
	}
	sieve := 0
	for _, v := range in.Valves() {
		if v.Kind == ValveSieve {
			sieve++
		}
	}
	if sieve != 4 {
		t.Fatalf("sieve valves = %d, want 4 (Figure 3(c))", sieve)
	}
}

func TestMixerCellTrapValves(t *testing.T) {
	in, err := Instantiate("m1", mixerUnit(netlist.CellTrap), geom.Pt{}, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	sep := 0
	for _, v := range in.Valves() {
		if v.Kind == ValveSeparation {
			sep++
		}
	}
	if sep != 4 {
		t.Fatalf("separation valves = %d, want 4 (Figure 3(d))", sep)
	}
}

func TestCtrlAccessBoth(t *testing.T) {
	in, err := Instantiate("m1", mixerUnit(netlist.Plain), geom.Pt{}, FromBoth)
	if err != nil {
		t.Fatal(err)
	}
	bottom, top := 0, 0
	for _, l := range in.Lines {
		switch l.Access {
		case FromBottom:
			bottom++
		case FromTop:
			top++
		default:
			t.Fatalf("line %s unresolved access", l.Name)
		}
	}
	if bottom == 0 || top == 0 {
		t.Fatalf("FromBoth should split lines: bottom=%d top=%d", bottom, top)
	}
}

func TestInstantiateChamber(t *testing.T) {
	in, err := Instantiate("c1", chamberUnit(), geom.Pt{X: 50, Y: 60}, FromTop)
	if err != nil {
		t.Fatal(err)
	}
	if in.Kind != KindChamber || len(in.Lines) != 2 {
		t.Fatalf("chamber = %+v", in)
	}
	for _, l := range in.Lines {
		if l.Access != FromTop {
			t.Errorf("access = %v", l.Access)
		}
	}
	// Chamber flow is a single straight horizontal channel through the box.
	if len(in.Flow) != 1 || !in.Flow[0].Horizontal() {
		t.Fatalf("chamber flow = %+v", in.Flow)
	}
}

func TestInstantiateUnknownType(t *testing.T) {
	_, err := Instantiate("x", netlist.Unit{Name: "x", Type: netlist.UnitType(99)}, geom.Pt{}, FromBottom)
	if err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestInstantiateSwitch(t *testing.T) {
	sw, err := InstantiateSwitch("s1", 4, geom.Pt{X: 0, Y: 0}, 2000, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Kind != KindSwitch {
		t.Fatalf("Kind = %v", sw.Kind)
	}
	if got, want := sw.Box.W(), SwitchWidth(4); got != want {
		t.Fatalf("width = %v, want %v", got, want)
	}
	if len(sw.Junctions) != 4 || len(sw.Lines) != 4 {
		t.Fatalf("junctions/lines = %d/%d", len(sw.Junctions), len(sw.Lines))
	}
	// Distinct control-channel x positions (one per junction valve).
	seen := map[float64]bool{}
	for _, l := range sw.Lines {
		if seen[l.X] {
			t.Fatalf("duplicate control x %v", l.X)
		}
		seen[l.X] = true
	}
}

func TestSwitchMinHeight(t *testing.T) {
	sw, err := InstantiateSwitch("s1", 5, geom.Pt{}, 10, FromBottom) // too small
	if err != nil {
		t.Fatal(err)
	}
	if sw.Box.H() < 2*D*6 {
		t.Fatalf("height %v below minimum", sw.Box.H())
	}
}

func TestSwitchBadJunctionCount(t *testing.T) {
	if _, err := InstantiateSwitch("s1", 0, geom.Pt{}, 100, FromBottom); err == nil {
		t.Fatal("expected error for zero junctions")
	}
}

func TestSetJunctionY(t *testing.T) {
	sw, err := InstantiateSwitch("s1", 3, geom.Pt{X: 0, Y: 0}, 1000, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	if !sw.SetJunctionY(1, 5000) { // far above the original box
		t.Fatal("SetJunctionY returned false")
	}
	if sw.Junctions[1].Y != 5000 {
		t.Fatalf("junction y = %v", sw.Junctions[1].Y)
	}
	// The spine (and box) must stretch to cover the junction (paper's
	// vertically extensible spine, constraint (12)).
	if sw.Box.YT < 5000 {
		t.Fatalf("box did not stretch: %v", sw.Box)
	}
	spine := sw.Flow[0]
	top := math.Max(spine.A.Y, spine.B.Y)
	if top < 5000-geom.Eps {
		t.Fatalf("spine top = %v, want >= 5000", top)
	}
	if sw.SetJunctionY(9, 0) {
		t.Fatal("out-of-range junction should return false")
	}
}

func TestSetJunctionSide(t *testing.T) {
	sw, err := InstantiateSwitch("s1", 2, geom.Pt{}, 1000, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	if !sw.SetJunctionSide(0, false) {
		t.Fatal("SetJunctionSide returned false")
	}
	if sw.Junctions[0].Left {
		t.Fatal("junction side not updated")
	}
	// Valve moves to the right half of the spine.
	if sw.Junctions[0].Valve.At.X <= sw.SpineX {
		t.Fatalf("valve x = %v, spine = %v", sw.Junctions[0].Valve.At.X, sw.SpineX)
	}
}

func TestSwitchFlowGeometry(t *testing.T) {
	sw, err := InstantiateSwitch("s1", 3, geom.Pt{X: 100, Y: 100}, 1200, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Flow) != 4 { // spine + 3 junction channels
		t.Fatalf("flow segments = %d, want 4", len(sw.Flow))
	}
	if !sw.Flow[0].Vertical() {
		t.Fatal("spine must be vertical")
	}
	for _, s := range sw.Flow[1:] {
		if !s.Horizontal() {
			t.Fatalf("junction channel not horizontal: %v", s)
		}
	}
}

func TestTranslate(t *testing.T) {
	in, err := Instantiate("m1", mixerUnit(netlist.Sieve), geom.Pt{}, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	before := in.Valves()
	in.Translate(100, 200)
	if in.Box.XL != 100 || in.Box.YB != 200 {
		t.Fatalf("box = %v", in.Box)
	}
	after := in.Valves()
	for i := range before {
		want := before[i].At.Add(100, 200)
		if !after[i].At.Eq(want) {
			t.Fatalf("valve %d = %v, want %v", i, after[i].At, want)
		}
	}
	if !in.PinLeft.Eq(geom.Pt{X: 100, Y: 200 + MixerH/2}) {
		t.Fatalf("PinLeft = %v", in.PinLeft)
	}
}

func TestTranslateSwitch(t *testing.T) {
	sw, err := InstantiateSwitch("s1", 2, geom.Pt{}, 800, FromBottom)
	if err != nil {
		t.Fatal(err)
	}
	spineBefore := sw.SpineX
	jyBefore := sw.Junctions[0].Y
	sw.Translate(10, 20)
	if sw.SpineX != spineBefore+10 {
		t.Fatalf("spine = %v", sw.SpineX)
	}
	if sw.Junctions[0].Y != jyBefore+20 {
		t.Fatalf("junction y = %v", sw.Junctions[0].Y)
	}
}

func TestKindStrings(t *testing.T) {
	if KindMixer.String() != "mixer" || KindChamber.String() != "chamber" || KindSwitch.String() != "switch" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "unknown" {
		t.Error("unknown Kind string")
	}
	if FromBottom.String() != "bottom" || FromTop.String() != "top" || FromBoth.String() != "both" {
		t.Error("CtrlAccess strings wrong")
	}
	if CtrlAccess(9).String() != "unknown" {
		t.Error("unknown CtrlAccess string")
	}
	for k, want := range map[ValveKind]string{
		ValveRegular: "regular", ValvePump: "pump", ValveSieve: "sieve",
		ValveSeparation: "separation", ValveMux: "mux",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q", want, k.String())
		}
	}
	if ValveKind(9).String() != "unknown" {
		t.Error("unknown ValveKind string")
	}
}
