// Package module implements the Columba S module model library
// (Section 2.1, Figure 3): parameterised geometry templates for rotary
// mixers, reaction chambers and switches.
//
// A module is a rectangular box defining the physical layout inside and
// around a microfluidic component. Flow channels access every module
// horizontally through pins on the left and right boundaries; valves are
// accessed vertically through control channels leaving the top and/or
// bottom boundaries. Module rotation is prohibited (the straight
// channel-routing discipline depends on it), so templates have a fixed
// orientation.
//
// Key types: Kind enumerates the templates; Footprint and
// ControlLineCount size a netlist.Unit; Instantiate and InstantiateSwitch
// produce an Instance with concrete Valve, CtrlLine and Junction
// geometry.
package module
