package module

import (
	"fmt"
	"math"

	"columbas/internal/geom"
	"columbas/internal/netlist"
)

// Physical constants of the Columba S design rules, in µm.
const (
	// D is the minimum channel spacing distance d (Figure 3(a)).
	D = 100.0
	// DPrime is d', the pitch that prevents fluid inlets from overlapping
	// in the flow boundaries (Figure 3(e)).
	DPrime = 750.0
	// ChannelW is the physical width of an etched channel.
	ChannelW = 100.0
	// PumpPitch is the enlarged spacing between pumping valves that
	// resolves the manufacturing concern mentioned in Section 2.1.
	PumpPitch = 400.0
	// ValveSize is the side length of a (square) valve footprint.
	ValveSize = 200.0
)

// Default module footprints, in µm.
const (
	MixerW   = 3000.0
	MixerH   = 3000.0
	ChamberW = 2000.0
	ChamberH = 1200.0
)

// Kind distinguishes the three module types of the library.
type Kind int

// Module kinds.
const (
	KindMixer Kind = iota
	KindChamber
	KindSwitch
)

func (k Kind) String() string {
	switch k {
	case KindMixer:
		return "mixer"
	case KindChamber:
		return "chamber"
	case KindSwitch:
		return "switch"
	}
	return "unknown"
}

// CtrlAccess selects which vertical boundary a module's control channels
// leave through (Figure 3(b)-(e)).
type CtrlAccess int

// Control access directions.
const (
	FromBottom CtrlAccess = iota
	FromTop
	FromBoth // valves split between both boundaries (Figure 3(d))
)

func (a CtrlAccess) String() string {
	switch a {
	case FromBottom:
		return "bottom"
	case FromTop:
		return "top"
	case FromBoth:
		return "both"
	}
	return "unknown"
}

// ValveKind classifies valves for rendering and control semantics.
type ValveKind int

// Valve kinds. Pump valves drive peristalsis; sieve valves permit washing
// (Figure 3(c)); separation valves support cell capture (Figure 3(d));
// Mux valves live in multiplexers and are driven by MUX-flow channels.
const (
	ValveRegular ValveKind = iota
	ValvePump
	ValveSieve
	ValveSeparation
	ValveMux
)

func (v ValveKind) String() string {
	switch v {
	case ValveRegular:
		return "regular"
	case ValvePump:
		return "pump"
	case ValveSieve:
		return "sieve"
	case ValveSeparation:
		return "separation"
	case ValveMux:
		return "mux"
	}
	return "unknown"
}

// Valve is a placed valve.
type Valve struct {
	At   geom.Pt
	Kind ValveKind
}

// CtrlLine is one independent control channel of a module: a vertical line
// at a fixed x that actuates one or more valves simultaneously.
type CtrlLine struct {
	Name   string
	X      float64 // absolute x of the vertical control channel
	Valves []Valve
	Access CtrlAccess // FromBottom or FromTop after resolution
}

// Junction is one managed flow-channel junction of a switch: a horizontal
// channel entering the spine, guarded by a valve.
type Junction struct {
	Y     float64 // absolute y of the junction channel
	Left  bool    // true: enters from the left boundary, false: right
	Valve Valve
}

// Instance is a placed module with concrete geometry.
type Instance struct {
	Name string
	Kind Kind
	Opt  netlist.MixerOpt // mixers only
	Box  geom.Rect

	// PinLeft/PinRight are the flow access points on the module boundary.
	PinLeft  geom.Pt
	PinRight geom.Pt

	Lines []CtrlLine // control channels, in increasing x
	Flow  []geom.Seg // internal flow geometry for rendering/DRC

	// Switch-specific state.
	SpineX    float64
	Junctions []Junction
}

// Footprint returns the module box size for a functional unit, honouring
// per-unit overrides from the netlist.
func Footprint(u netlist.Unit) (w, h float64) {
	switch u.Type {
	case netlist.Mixer:
		w, h = MixerW, MixerH
	case netlist.Chamber:
		w, h = ChamberW, ChamberH
	}
	if u.W > 0 {
		w = u.W
	}
	if u.H > 0 {
		h = u.H
	}
	return w, h
}

// ControlLineCount returns the number of independent control channels a
// unit's module requires. Parallel units share these lines, so the count
// feeds directly into multiplexer sizing.
func ControlLineCount(u netlist.Unit) int {
	switch u.Type {
	case netlist.Chamber:
		return 2 // inlet valve + outlet valve
	case netlist.Mixer:
		n := 5 // three pump valves + in valve + out valve
		if u.Opt == netlist.Sieve || u.Opt == netlist.CellTrap {
			n += 2 // two pairwise-actuated sieve/separation valve pairs
		}
		return n
	}
	return 0
}

// SwitchWidth returns the x-extent of a switch with c flow-channel
// junctions: w = 4d + c·2d (Section 3.2).
func SwitchWidth(c int) float64 { return 4*D + float64(c)*2*D }

// PinYOffset returns the y offset of the flow pins within a unit's module
// box. Flow channels run through the vertical middle.
func PinYOffset(u netlist.Unit) float64 {
	_, h := Footprint(u)
	return h / 2
}

// Instantiate places the module of a functional unit with its bottom-left
// corner at 'at', resolving the control access direction.
func Instantiate(name string, u netlist.Unit, at geom.Pt, access CtrlAccess) (*Instance, error) {
	switch u.Type {
	case netlist.Mixer:
		return newMixer(name, u, at, access), nil
	case netlist.Chamber:
		return newChamber(name, u, at, access), nil
	default:
		return nil, fmt.Errorf("module: unit %q has unknown type %v", name, u.Type)
	}
}

func newMixer(name string, u netlist.Unit, at geom.Pt, access CtrlAccess) *Instance {
	w, h := Footprint(u)
	box := geom.RectWH(at.X, at.Y, w, h)
	pinY := at.Y + h/2
	in := &Instance{
		Name: name, Kind: KindMixer, Opt: u.Opt, Box: box,
		PinLeft:  geom.Pt{X: box.XL, Y: pinY},
		PinRight: geom.Pt{X: box.XR, Y: pinY},
	}
	// Ring geometry: a rectangular rotary ring centred in the module with
	// the flow-through channel splitting around it.
	ringL := at.X + 0.25*w
	ringR := at.X + 0.75*w
	ringB := at.Y + 0.30*h
	ringT := at.Y + 0.80*h
	in.Flow = []geom.Seg{
		{A: geom.Pt{X: box.XL, Y: pinY}, B: geom.Pt{X: ringL, Y: pinY}}, // left stub
		{A: geom.Pt{X: ringR, Y: pinY}, B: geom.Pt{X: box.XR, Y: pinY}}, // right stub
		{A: geom.Pt{X: ringL, Y: ringB}, B: geom.Pt{X: ringR, Y: ringB}},
		{A: geom.Pt{X: ringL, Y: ringT}, B: geom.Pt{X: ringR, Y: ringT}},
		{A: geom.Pt{X: ringL, Y: ringB}, B: geom.Pt{X: ringL, Y: ringT}},
		{A: geom.Pt{X: ringR, Y: ringB}, B: geom.Pt{X: ringR, Y: ringT}},
	}
	cx := box.Center().X
	// Three pumping valves across the top ring segment, PumpPitch apart.
	for i := -1; i <= 1; i++ {
		x := cx + float64(i)*PumpPitch
		in.Lines = append(in.Lines, CtrlLine{
			Name:   fmt.Sprintf("%s.pump%d", name, i+2),
			X:      x,
			Valves: []Valve{{At: geom.Pt{X: x, Y: ringT}, Kind: ValvePump}},
		})
	}
	// In/out valves on the flow-through stubs.
	inX := at.X + 0.125*w
	outX := at.X + 0.875*w
	in.Lines = append(in.Lines,
		CtrlLine{Name: name + ".in", X: inX,
			Valves: []Valve{{At: geom.Pt{X: inX, Y: pinY}, Kind: ValveRegular}}},
		CtrlLine{Name: name + ".out", X: outX,
			Valves: []Valve{{At: geom.Pt{X: outX, Y: pinY}, Kind: ValveRegular}}},
	)
	switch u.Opt {
	case netlist.Sieve:
		// Two sieve pairs on the vertical ring segments (Figure 3(c)).
		for side, x := range map[string]float64{"A": ringL, "B": ringR} {
			in.Lines = append(in.Lines, CtrlLine{
				Name: name + ".sieve" + side,
				X:    x,
				Valves: []Valve{
					{At: geom.Pt{X: x, Y: at.Y + 0.45*h}, Kind: ValveSieve},
					{At: geom.Pt{X: x, Y: at.Y + 0.65*h}, Kind: ValveSieve},
				},
			})
		}
	case netlist.CellTrap:
		// Two separation-valve pairs on the vertical ring segments
		// (Figure 3(d)); placed on the ring corners to keep d spacing
		// from the pump lines.
		for side, x := range map[string]float64{"A": cx - 0.25*w, "B": cx + 0.25*w} {
			in.Lines = append(in.Lines, CtrlLine{
				Name: name + ".sep" + side,
				X:    x,
				Valves: []Valve{
					{At: geom.Pt{X: x, Y: ringB}, Kind: ValveSeparation},
					{At: geom.Pt{X: x, Y: ringT}, Kind: ValveSeparation},
				},
			})
		}
	}
	resolveAccess(in, access)
	sortLines(in)
	return in
}

func newChamber(name string, u netlist.Unit, at geom.Pt, access CtrlAccess) *Instance {
	w, h := Footprint(u)
	box := geom.RectWH(at.X, at.Y, w, h)
	pinY := at.Y + h/2
	in := &Instance{
		Name: name, Kind: KindChamber, Box: box,
		PinLeft:  geom.Pt{X: box.XL, Y: pinY},
		PinRight: geom.Pt{X: box.XR, Y: pinY},
		Flow: []geom.Seg{
			{A: geom.Pt{X: box.XL, Y: pinY}, B: geom.Pt{X: box.XR, Y: pinY}},
		},
	}
	inX := at.X + 0.15*w
	outX := at.X + 0.85*w
	in.Lines = []CtrlLine{
		{Name: name + ".in", X: inX,
			Valves: []Valve{{At: geom.Pt{X: inX, Y: pinY}, Kind: ValveRegular}}},
		{Name: name + ".out", X: outX,
			Valves: []Valve{{At: geom.Pt{X: outX, Y: pinY}, Kind: ValveRegular}}},
	}
	resolveAccess(in, access)
	sortLines(in)
	return in
}

// InstantiateSwitch places a switch module with c junctions whose spine
// spans [at.Y, at.Y+h]. Junction y positions are provisional (evenly
// spaced); layout validation moves them onto the incident channel rows via
// SetJunctionY.
func InstantiateSwitch(name string, c int, at geom.Pt, h float64, access CtrlAccess) (*Instance, error) {
	if c < 1 {
		return nil, fmt.Errorf("module: switch %q needs at least one junction", name)
	}
	w := SwitchWidth(c)
	minH := 2 * D * float64(c+1)
	if h < minH {
		h = minH
	}
	box := geom.RectWH(at.X, at.Y, w, h)
	in := &Instance{
		Name: name, Kind: KindSwitch, Box: box,
		PinLeft:  geom.Pt{X: box.XL, Y: at.Y + h/2},
		PinRight: geom.Pt{X: box.XR, Y: at.Y + h/2},
	}
	for i := 0; i < c; i++ {
		y := at.Y + float64(i+1)*h/float64(c+1)
		jn := Junction{
			Y:     y,
			Left:  i%2 == 0,
			Valve: Valve{At: geom.Pt{Y: y}, Kind: ValveRegular},
		}
		in.Junctions = append(in.Junctions, jn)
		in.Lines = append(in.Lines, CtrlLine{
			Name:   fmt.Sprintf("%s.j%d", name, i),
			Valves: []Valve{jn.Valve},
		})
	}
	resolveAccess(in, access)
	in.layoutJunctions()
	return in, nil
}

// layoutJunctions places the spine and the junction valves from the
// current side assignment. The spine divides the switch width
// proportionally to the junction counts so every junction valve gets a
// distinct x slot at 2d pitch on its own side (the w = 4d + c·2d formula
// provides exactly c slots plus margins).
func (in *Instance) layoutJunctions() {
	nLeft := 0
	for _, j := range in.Junctions {
		if j.Left {
			nLeft++
		}
	}
	in.SpineX = in.Box.XL + 2*D + float64(nLeft)*2*D
	lk, rk := 0, 0
	for i := range in.Junctions {
		j := &in.Junctions[i]
		var x float64
		if j.Left {
			x = in.Box.XL + 2*D + float64(lk)*2*D
			lk++
		} else {
			x = in.SpineX + 2*D + float64(rk)*2*D
			rk++
		}
		j.Valve.At.X = x
		in.Lines[i].X = x
		in.Lines[i].Valves[0] = j.Valve
	}
	in.rebuildSwitchFlow()
}

// SetJunctionY moves junction i onto the row of its incident flow channel
// and reports whether the junction exists. The spine and the module box
// stretch to cover all junctions (the paper allows the spine to extend
// vertically, constraint (12)).
func (in *Instance) SetJunctionY(i int, y float64) bool {
	if in.Kind != KindSwitch || i < 0 || i >= len(in.Junctions) {
		return false
	}
	j := &in.Junctions[i]
	j.Y = y
	j.Valve.At.Y = y
	in.Lines[i].Valves[0].At.Y = y
	if y-D < in.Box.YB {
		in.Box.YB = y - D
	}
	if y+D > in.Box.YT {
		in.Box.YT = y + D
	}
	in.rebuildSwitchFlow()
	return true
}

// SetJunctionSide sets which boundary junction i enters from and relays
// the valve slots (the spine moves with the side balance).
func (in *Instance) SetJunctionSide(i int, left bool) bool {
	if in.Kind != KindSwitch || i < 0 || i >= len(in.Junctions) {
		return false
	}
	in.Junctions[i].Left = left
	in.layoutJunctions()
	return true
}

func (in *Instance) rebuildSwitchFlow() {
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, j := range in.Junctions {
		ymin = math.Min(ymin, j.Y)
		ymax = math.Max(ymax, j.Y)
	}
	in.Flow = in.Flow[:0]
	// Spine covers all junction rows.
	in.Flow = append(in.Flow, geom.Seg{
		A: geom.Pt{X: in.SpineX, Y: ymin},
		B: geom.Pt{X: in.SpineX, Y: ymax},
	})
	for _, j := range in.Junctions {
		if j.Left {
			in.Flow = append(in.Flow, geom.Seg{
				A: geom.Pt{X: in.Box.XL, Y: j.Y},
				B: geom.Pt{X: in.SpineX, Y: j.Y},
			})
		} else {
			in.Flow = append(in.Flow, geom.Seg{
				A: geom.Pt{X: in.SpineX, Y: j.Y},
				B: geom.Pt{X: in.Box.XR, Y: j.Y},
			})
		}
	}
}

// resolveAccess assigns each control line its boundary. FromBoth splits
// lines alternately between bottom and top, mirroring Figure 3(d).
func resolveAccess(in *Instance, access CtrlAccess) {
	for i := range in.Lines {
		switch access {
		case FromBottom, FromTop:
			in.Lines[i].Access = access
		case FromBoth:
			if i%2 == 0 {
				in.Lines[i].Access = FromBottom
			} else {
				in.Lines[i].Access = FromTop
			}
		}
	}
}

func sortLines(in *Instance) {
	// Control lines ordered by x for deterministic downstream processing.
	for i := 1; i < len(in.Lines); i++ {
		for j := i; j > 0 && in.Lines[j].X < in.Lines[j-1].X; j-- {
			in.Lines[j], in.Lines[j-1] = in.Lines[j-1], in.Lines[j]
		}
	}
}

// Valves returns every valve of the instance.
func (in *Instance) Valves() []Valve {
	var out []Valve
	for _, l := range in.Lines {
		out = append(out, l.Valves...)
	}
	return out
}

// Translate moves the whole instance by (dx, dy).
func (in *Instance) Translate(dx, dy float64) {
	in.Box = in.Box.Translate(dx, dy)
	in.PinLeft = in.PinLeft.Add(dx, dy)
	in.PinRight = in.PinRight.Add(dx, dy)
	in.SpineX += dx
	for i := range in.Lines {
		in.Lines[i].X += dx
		for k := range in.Lines[i].Valves {
			in.Lines[i].Valves[k].At = in.Lines[i].Valves[k].At.Add(dx, dy)
		}
	}
	for i := range in.Flow {
		in.Flow[i].A = in.Flow[i].A.Add(dx, dy)
		in.Flow[i].B = in.Flow[i].B.Add(dx, dy)
	}
	for i := range in.Junctions {
		in.Junctions[i].Y += dy
		in.Junctions[i].Valve.At = in.Junctions[i].Valve.At.Add(dx, dy)
	}
}
