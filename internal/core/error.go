package core

import "fmt"

// Phase names a pipeline stage for error attribution.
const (
	PhasePlanarize = "planarize"
	PhaseLayout    = "layout"
	PhaseValidate  = "validate"
	PhaseDRC       = "drc"
	PhaseCancel    = "canceled"
)

// SynthesisError is the typed failure of a synthesis run: it names the
// pipeline phase that rejected the netlist and wraps that phase's error.
// Callers (the CLI, the daemon, and the conformance suite) use it to
// distinguish a legitimate infeasibility verdict from a crash:
//
//	var serr *core.SynthesisError
//	if errors.As(err, &serr) { ... serr.Phase ... }
//
// Unwrap exposes the underlying cause, so errors.Is(err, context.Canceled)
// and friends keep working through the wrapper.
type SynthesisError struct {
	// Phase is one of the Phase* constants.
	Phase string
	// Err is the phase's own error (a planar, layout, validate or drc
	// failure, or the context error for PhaseCancel).
	Err error
}

func (e *SynthesisError) Error() string {
	return fmt.Sprintf("core: %s: %v", e.Phase, e.Err)
}

func (e *SynthesisError) Unwrap() error { return e.Err }
