package core

import (
	"fmt"
	"time"

	"columbas/internal/layout"
	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/netlist"
)

// OptionSpecSchema identifies the wire form of a synthesis option set —
// the "options" object of a columbas-jobrequest/v1 envelope. The schema
// field is optional on input; when present it must match.
const OptionSpecSchema = "columbas-options/v1"

// OptionSpec is the user-facing form of Options: every tunable knob as a
// flat, JSON- and flag-friendly value. It is the single decode/validate
// point shared by the columbas CLI (flags map onto it), the columbasd
// /v2 job API (request bodies embed it verbatim) and the deprecated /v1
// query parameters (aliases mapped onto it). Apply translates a spec
// onto a base Options, so server-side defaults (worker caps, ablation
// modes) survive unless the spec overrides them.
//
// The zero value is the empty override: Apply returns the base
// unchanged.
type OptionSpec struct {
	// Schema, when non-empty, must be OptionSpecSchema.
	Schema string `json:"schema,omitempty"`
	// Muxes overrides the netlist's multiplexer count (1 or 2; 0 keeps
	// the netlist's own value). It is applied to the netlist, not the
	// Options — see ApplyNetlist.
	Muxes int `json:"muxes,omitempty"`
	// Time is the MILP generation budget as a duration string ("30s").
	// Exceeding it degrades to the greedy seed; it never fails the run.
	Time string `json:"time,omitempty"`
	// Effort is the placement effort: "full", "guided", "seed" or
	// "auto" (empty means auto).
	Effort string `json:"effort,omitempty"`
	// Workers is the branch-and-bound parallelism: 0 keeps the base
	// value, -1 means all cores, >= 1 is an explicit worker count.
	Workers int `json:"workers,omitempty"`
	// NoDRC skips the design-rule check.
	NoDRC bool `json:"nodrc,omitempty"`
	// NoWarmStart, NoCuts and NoPresolve are the solver ablation
	// switches (see layout.Options).
	NoWarmStart bool `json:"no_warmstart,omitempty"`
	NoCuts      bool `json:"no_cuts,omitempty"`
	NoPresolve  bool `json:"no_presolve,omitempty"`
	// NoDelta disables the delta-aware warm-start path for this request:
	// no similarity-index donor is consulted and any supplied hint is
	// ignored (ablation; see Options.NoDelta).
	NoDelta bool `json:"no_delta,omitempty"`
	// Branching selects the variable selection rule: "pseudocost"
	// (default) or "mostfrac"; empty keeps the base rule.
	Branching string `json:"branching,omitempty"`
	// Kernel selects the LP basis engine: "auto", "dense" or "sparse";
	// empty keeps the base engine.
	Kernel string `json:"kernel,omitempty"`
	// Timeout is the hard wall-clock deadline for the whole request as
	// a duration string. Unlike Time it fails the run when it fires.
	// It is not part of Options (deadlines are transient); callers read
	// it via ParseTimeout.
	Timeout string `json:"timeout,omitempty"`
}

// Validate checks every field without building Options. Apply calls it;
// front ends that only want the verdict (e.g. admission control before
// queueing) can call it directly.
func (sp OptionSpec) Validate() error {
	_, err := sp.Apply(DefaultOptions())
	return err
}

// Apply overlays the spec onto base and returns the resulting Options.
// base is not mutated. Every field is validated; the error messages are
// shared verbatim by the CLI and both HTTP API versions.
func (sp OptionSpec) Apply(base Options) (Options, error) {
	opt := base
	if sp.Schema != "" && sp.Schema != OptionSpecSchema {
		return opt, fmt.Errorf("unsupported options schema %q (want %s)", sp.Schema, OptionSpecSchema)
	}
	if sp.Muxes != 0 && sp.Muxes != 1 && sp.Muxes != 2 {
		return opt, fmt.Errorf("muxes must be 1 or 2")
	}
	if sp.Time != "" {
		d, err := time.ParseDuration(sp.Time)
		if err != nil || d <= 0 {
			return opt, fmt.Errorf("time must be a positive duration (e.g. 30s)")
		}
		opt.Layout.TimeLimit = d
	}
	switch sp.Effort {
	case "", "auto":
	case "full":
		opt.Layout.Effort = layout.EffortFull
		opt.Layout.GuidedThreshold = 0
	case "guided":
		opt.Layout.Effort = layout.EffortGuided
	case "seed":
		opt.Layout.SkipMILP = true
	default:
		return opt, fmt.Errorf("unknown effort %q (want full, guided, seed or auto)", sp.Effort)
	}
	switch {
	case sp.Workers < -1:
		return opt, fmt.Errorf("workers must be -1 (all cores), 0 (default) or a positive count")
	case sp.Workers != 0:
		opt.Layout.Workers = sp.Workers
	}
	if sp.NoDRC {
		opt.RunDRC = false
	}
	if sp.NoWarmStart {
		opt.Layout.NoWarmStart = true
	}
	if sp.NoCuts {
		opt.Layout.NoCuts = true
	}
	if sp.NoPresolve {
		opt.Layout.NoPresolve = true
	}
	if sp.NoDelta {
		opt.NoDelta = true
	}
	if sp.Branching != "" {
		rule, err := milp.ParseBranchRule(sp.Branching)
		if err != nil {
			return opt, err
		}
		opt.Layout.Branching = rule
	}
	if sp.Kernel != "" {
		k, err := lp.ParseKernel(sp.Kernel)
		if err != nil {
			return opt, err
		}
		opt.Layout.Kernel = k
	}
	if _, err := sp.ParseTimeout(); err != nil {
		return opt, err
	}
	return opt, nil
}

// ParseTimeout returns the request deadline encoded in the spec: the
// parsed Timeout duration, or 0 when unset (caller default applies).
func (sp OptionSpec) ParseTimeout() (time.Duration, error) {
	if sp.Timeout == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(sp.Timeout)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("timeout must be a positive duration (e.g. 10s)")
	}
	return d, nil
}

// ApplyNetlist applies the spec's netlist-level override (the Muxes
// count) onto a parsed netlist.
func (sp OptionSpec) ApplyNetlist(n *netlist.Netlist) error {
	switch sp.Muxes {
	case 0:
	case 1, 2:
		n.Muxes = sp.Muxes
	default:
		return fmt.Errorf("muxes must be 1 or 2")
	}
	return nil
}
