package core_test

import (
	"fmt"
	"time"

	"columbas/internal/core"
)

// The complete flow on a two-unit application: parse, planarize, generate,
// validate, synthesize the multiplexer, check design rules.
func ExampleSynthesizeSource() {
	opt := core.DefaultOptions()
	opt.Layout.TimeLimit = 10 * time.Second

	res, err := core.SynthesizeSource(`
design demo
unit mix1 mixer
unit inc1 chamber
connect in:sample mix1
connect mix1 inc1
connect inc1 out:waste
`, opt)
	if err != nil {
		panic(err)
	}
	m := res.Metrics()
	fmt.Printf("units=%d control_inlets=%d fluid_ports=%d muxes=%d\n",
		m.Units, m.CtrlInlets, m.FluidPorts, m.Muxes)
	fmt.Printf("drc_violations=%d\n", len(res.DRC.Violations))
	// Output:
	// units=2 control_inlets=7 fluid_ports=2 muxes=1
	// drc_violations=0
}
