// Package core orchestrates the complete Columba S design flow
// (Figure 5): netlist parsing, netlist planarization, layout generation,
// layout validation, multiplexer synthesis and result interpretation.
// It is the library's primary entry point.
package core

import (
	"fmt"
	"io"
	"time"

	"columbas/internal/drc"
	"columbas/internal/export"
	"columbas/internal/geom"
	"columbas/internal/layout"
	"columbas/internal/milp"
	"columbas/internal/netlist"
	"columbas/internal/planar"
	"columbas/internal/validate"
)

// Options configures a synthesis run.
type Options struct {
	// Layout configures the generation-phase MILP; zero value uses
	// layout.DefaultOptions.
	Layout layout.Options
	// RunDRC verifies the completed design against the design rules and
	// fails synthesis on violations.
	RunDRC bool
}

// DefaultOptions returns the standard flow configuration.
func DefaultOptions() Options {
	return Options{Layout: layout.DefaultOptions(), RunDRC: true}
}

// Result is a completed synthesis run with its Table 1 metrics.
type Result struct {
	Design *validate.Design
	Plan   *layout.Plan
	DRC    *drc.Report // nil unless RunDRC

	// Runtime is the end-to-end synthesis wall-clock time (the paper's
	// "program run time" column).
	Runtime time.Duration
}

// Metrics are the Table 1 figures of merit for one design.
type Metrics struct {
	Name string
	// Muxes is the multiplexer count (1 or 2).
	Muxes int
	// WidthMM, HeightMM are v_x_max * v_y_max of the full chip in mm.
	WidthMM, HeightMM float64
	// FlowMM is L_f: functional-region flow channel length in mm.
	FlowMM float64
	// CtrlInlets is #c_in.
	CtrlInlets int
	// FluidPorts is the number of fluid inlets/outlets.
	FluidPorts int
	// Units is #u.
	Units int
	// Runtime is the synthesis time.
	Runtime time.Duration
	// SolverStatus reports how the generation model terminated.
	SolverStatus milp.Status
}

// Metrics extracts the evaluation metrics from a run.
func (r *Result) Metrics() Metrics {
	w, h := r.Design.Dimensions()
	units := 0
	for _, n := range r.Plan.Planar.Nodes {
		if n.Kind == planar.NodeUnit {
			units++
		}
	}
	return Metrics{
		Name:         r.Design.Name,
		Muxes:        r.Design.Muxes,
		WidthMM:      geom.MM(w),
		HeightMM:     geom.MM(h),
		FlowMM:       geom.MM(r.Design.FlowLength()),
		CtrlInlets:   r.Design.ControlInlets(),
		FluidPorts:   len(r.Design.Inlets),
		Units:        units,
		Runtime:      r.Runtime,
		SolverStatus: r.Plan.Stats.Status,
	}
}

// Synthesize runs the full Columba S flow on a parsed netlist.
func Synthesize(n *netlist.Netlist, opt Options) (*Result, error) {
	start := time.Now()
	if opt.Layout == (layout.Options{}) {
		opt.Layout = layout.DefaultOptions()
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		return nil, fmt.Errorf("core: planarization: %w", err)
	}
	plan, err := layout.Generate(pr, opt.Layout)
	if err != nil {
		return nil, fmt.Errorf("core: layout generation: %w", err)
	}
	d, err := validate.Validate(plan)
	if err != nil {
		return nil, fmt.Errorf("core: layout validation: %w", err)
	}
	res := &Result{Design: d, Plan: plan}
	if opt.RunDRC {
		res.DRC = drc.Check(d)
		if !res.DRC.Clean() {
			res.Runtime = time.Since(start)
			return res, fmt.Errorf("core: design-rule check failed with %d violation(s); first: %v",
				len(res.DRC.Violations), res.DRC.Violations[0])
		}
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// SynthesizeSource parses a netlist description and synthesizes it.
func SynthesizeSource(src string, opt Options) (*Result, error) {
	n, err := netlist.ParseString(src)
	if err != nil {
		return nil, err
	}
	return Synthesize(n, opt)
}

// SynthesizeReader parses a netlist description from r and synthesizes it.
func SynthesizeReader(r io.Reader, opt Options) (*Result, error) {
	n, err := netlist.Parse(r)
	if err != nil {
		return nil, err
	}
	return Synthesize(n, opt)
}

// WriteSCR exports the result as an AutoCAD script (Section 3.3).
func (r *Result) WriteSCR(w io.Writer) error { return export.WriteSCR(w, r.Design) }

// WriteSVG renders the result as an SVG figure.
func (r *Result) WriteSVG(w io.Writer) error { return export.WriteSVG(w, r.Design) }

// WriteJSON dumps the design summary as JSON.
func (r *Result) WriteJSON(w io.Writer) error { return export.WriteJSON(w, r.Design) }

// WriteDXF exports the result as an ASCII DXF drawing.
func (r *Result) WriteDXF(w io.Writer) error { return export.WriteDXF(w, r.Design) }

// WritePlanSVG renders the generation-phase rectangle plan (Figure 6(b)).
func (r *Result) WritePlanSVG(w io.Writer) error { return export.WritePlanSVG(w, r.Plan) }

// WriteASCII renders the design as a terminal character raster.
func (r *Result) WriteASCII(w io.Writer, cols int) error {
	return export.WriteASCII(w, r.Design, cols)
}

// WriteReport writes the markdown datasheet (metrics, module inventory,
// multiplexer addressing tables, fluid ports).
func (r *Result) WriteReport(w io.Writer) error { return export.WriteReport(w, r.Design) }
