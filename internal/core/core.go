package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"columbas/internal/drc"
	"columbas/internal/export"
	"columbas/internal/geom"
	"columbas/internal/layout"
	"columbas/internal/milp"
	"columbas/internal/netlist"
	"columbas/internal/obs"
	"columbas/internal/planar"
	"columbas/internal/validate"
)

// Options configures a synthesis run. The json tags are a stable
// contract: columbasd's /v2 job resources embed the resolved Options of
// every job, and OptionSpec is the matching wire form for requests.
type Options struct {
	// Layout configures the generation-phase MILP; zero value uses
	// layout.DefaultOptions.
	Layout layout.Options `json:"layout"`
	// RunDRC verifies the completed design against the design rules and
	// fails synthesis on violations.
	RunDRC bool `json:"run_drc"`
	// NoDelta disables the delta-aware warm-start path: any Warm hint is
	// ignored and the pipeline solves cold (ablation; also what the
	// server sets for -no-delta requests so the win stays measurable).
	NoDelta bool `json:"no_delta,omitempty"`
	// Warm, when non-nil, is a donor design's warm-start payload (see
	// layout.WarmHint), typically Result.WarmHint() of a previous solve
	// of a similar netlist. Stale or wrongly shaped hints degrade
	// silently to a cold solve. Transient: never serialized.
	Warm *layout.WarmHint `json:"-"`
	// Trace, when non-nil, records the run as hierarchical phase spans
	// (parse → planarize → layout → validate → drc) with the counters
	// documented in docs/metrics.md. A nil trace disables all recording.
	// Transient: never serialized.
	Trace *obs.Trace `json:"-"`
}

// DefaultOptions returns the standard flow configuration.
func DefaultOptions() Options {
	return Options{Layout: layout.DefaultOptions(), RunDRC: true}
}

// Result is a completed synthesis run with its Table 1 metrics.
type Result struct {
	Design *validate.Design
	Plan   *layout.Plan
	DRC    *drc.Report // nil unless RunDRC

	// Runtime is the end-to-end synthesis wall-clock time (the paper's
	// "program run time" column).
	Runtime time.Duration
}

// Metrics are the Table 1 figures of merit for one design. The json
// tags are stable: /v2 job status documents embed them.
type Metrics struct {
	Name string `json:"name"`
	// Muxes is the multiplexer count (1 or 2).
	Muxes int `json:"muxes"`
	// WidthMM, HeightMM are v_x_max * v_y_max of the full chip in mm.
	WidthMM  float64 `json:"width_mm"`
	HeightMM float64 `json:"height_mm"`
	// FlowMM is L_f: functional-region flow channel length in mm.
	FlowMM float64 `json:"flow_mm"`
	// CtrlInlets is #c_in.
	CtrlInlets int `json:"ctrl_inlets"`
	// FluidPorts is the number of fluid inlets/outlets.
	FluidPorts int `json:"fluid_ports"`
	// Units is #u.
	Units int `json:"units"`
	// Runtime is the synthesis time in nanoseconds.
	Runtime time.Duration `json:"runtime_ns"`
	// SolverStatus reports how the generation model terminated.
	SolverStatus milp.Status `json:"solver_status"`
}

// Metrics extracts the evaluation metrics from a run.
func (r *Result) Metrics() Metrics {
	w, h := r.Design.Dimensions()
	units := 0
	for _, n := range r.Plan.Planar.Nodes {
		if n.Kind == planar.NodeUnit {
			units++
		}
	}
	return Metrics{
		Name:         r.Design.Name,
		Muxes:        r.Design.Muxes,
		WidthMM:      geom.MM(w),
		HeightMM:     geom.MM(h),
		FlowMM:       geom.MM(r.Design.FlowLength()),
		CtrlInlets:   r.Design.ControlInlets(),
		FluidPorts:   len(r.Design.Inlets),
		Units:        units,
		Runtime:      r.Runtime,
		SolverStatus: r.Plan.Stats.Status,
	}
}

// WarmHint packs this result's layout into the donor payload a later
// synthesis of a similar netlist can warm-start from (Options.Warm).
// Returns nil when the result carries no plan.
func (r *Result) WarmHint() *layout.WarmHint {
	if r == nil {
		return nil
	}
	return layout.HintFromPlan(r.Plan)
}

// Synthesize runs the full Columba S flow on a parsed netlist. It is
// SynthesizeContext under context.Background().
func Synthesize(n *netlist.Netlist, opt Options) (*Result, error) {
	return SynthesizeContext(context.Background(), n, opt)
}

// SynthesizeContext runs the full Columba S flow on a parsed netlist
// under a context. This is the primary entry point; Synthesize,
// SynthesizeSource and SynthesizeReader are thin wrappers over the same
// implementation.
//
// The context's deadline and cancellation are threaded through
// layout.Options into the branch-and-bound workers: a canceled or
// expired context genuinely stops the in-flight MILP solve (observable
// as Plan.Stats.Search.Interrupted) and SynthesizeContext returns a
// *SynthesisError with Phase PhaseCancel wrapping ctx.Err(). Every
// failure path returns a *SynthesisError naming the pipeline phase that
// rejected the netlist. Contrast with Options.Layout.TimeLimit,
// which is a solver budget — exceeding it degrades to the greedy seed
// rather than failing the run.
//
// opt is never mutated: the same Options value can be reused (and
// fingerprinted, e.g. for result caching) across concurrent calls.
func SynthesizeContext(ctx context.Context, n *netlist.Netlist, opt Options) (*Result, error) {
	start := time.Now()
	tr := opt.Trace
	tr.SetName(n.Name)
	// Work on a private copy of the layout options: the pipeline treats
	// the caller's Options as immutable.
	lopt := opt.Layout
	if lopt == (layout.Options{}) {
		lopt = layout.DefaultOptions()
	}
	if opt.Warm != nil && !opt.NoDelta {
		lopt.Warm = opt.Warm
	}
	if err := ctx.Err(); err != nil {
		return nil, &SynthesisError{Phase: PhaseCancel, Err: err}
	}

	sp := tr.Phase("planarize")
	pr, err := planar.Planarize(n)
	if err != nil {
		sp.End()
		return nil, &SynthesisError{Phase: PhasePlanarize, Err: err}
	}
	sp.SetInt("nodes", int64(len(pr.Nodes)))
	sp.SetInt("channels", int64(len(pr.Channels)))
	sp.SetInt("switches_added", int64(pr.SwitchCount))
	sp.End()

	sp = tr.Phase("layout")
	lopt.Obs = sp
	plan, err := layout.GenerateContext(ctx, pr, lopt)
	if err != nil {
		sp.End()
		if ctx.Err() != nil {
			return nil, &SynthesisError{Phase: PhaseCancel, Err: err}
		}
		return nil, &SynthesisError{Phase: PhaseLayout, Err: err}
	}
	recordLayout(sp, plan)
	sp.End()

	if err := ctx.Err(); err != nil {
		return nil, &SynthesisError{Phase: PhaseCancel, Err: err}
	}
	sp = tr.Phase("validate")
	d, err := validate.ValidateObs(plan, sp)
	if err != nil {
		sp.End()
		return nil, &SynthesisError{Phase: PhaseValidate, Err: err}
	}
	sp.SetInt("modules", int64(len(d.Modules)))
	sp.SetInt("flow_channels", int64(len(d.Flow)))
	sp.SetInt("ctrl_channels", int64(len(d.Ctrl)))
	sp.SetInt("fluid_ports", int64(len(d.Inlets)))
	sp.End()

	res := &Result{Design: d, Plan: plan}
	if opt.RunDRC {
		sp = tr.Phase("drc")
		res.DRC = drc.Check(d)
		sp.SetInt("rules_checked", int64(res.DRC.Checked))
		sp.SetInt("violations", int64(len(res.DRC.Violations)))
		sp.End()
		if !res.DRC.Clean() {
			res.Runtime = time.Since(start)
			return res, &SynthesisError{Phase: PhaseDRC, Err: fmt.Errorf(
				"design-rule check failed with %d violation(s); first: %v",
				len(res.DRC.Violations), res.DRC.Violations[0])}
		}
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// recordLayout attaches the generation phase's model shape and aggregated
// branch-and-bound counters (the milp_* family of docs/metrics.md) to the
// layout span. No-op on a nil span.
func recordLayout(sp *obs.Span, plan *layout.Plan) {
	if sp == nil || plan == nil {
		return
	}
	st := plan.Stats
	sp.Label("status", st.Status.String())
	sp.SetInt("vars", int64(st.Vars))
	sp.SetInt("rows", int64(st.Rows))
	sp.SetInt("binaries", int64(st.Binaries))
	sp.SetInt("sep_rounds", int64(st.Rounds))
	if st.SeedOnly {
		sp.Label("seed_only", "true")
	}
	se := st.Search
	if se.Interrupted {
		sp.Label("milp_interrupted", "true")
	}
	sp.SetInt("milp_workers", int64(se.Workers))
	sp.SetInt("milp_nodes", se.NodesExplored)
	sp.SetInt("milp_nodes_pruned", se.NodesPruned)
	sp.SetInt("milp_nodes_cutoff", se.NodesCutoff)
	sp.SetInt("milp_inflight_high_water", int64(se.InFlightHighWater))
	sp.SetInt("milp_lp_solves", se.LPSolves)
	sp.SetInt("milp_simplex_pivots", se.SimplexPivots)
	sp.SetInt("milp_warm_starts", se.WarmStarts)
	sp.SetInt("milp_cold_solves", se.ColdSolves)
	sp.SetInt("milp_warm_fallbacks", se.WarmStartFallbacks)
	sp.SetInt("milp_warm_pivots", se.WarmPivots)
	sp.SetInt("milp_cold_pivots", se.ColdPivots)
	sp.SetInt("milp_phase1_rows", se.Phase1Rows)
	sp.SetInt("milp_eta_updates", se.EtaUpdates)
	sp.SetInt("milp_refactorizations", se.Refactorizations)
	sp.SetInt("milp_sparse_refactorizations", se.SparseRefactorizations)
	sp.SetInt("milp_dense_fallbacks", se.DenseFallbacks)
	sp.SetInt("milp_fill_in", se.FillIn)
	sp.SetInt("milp_basis_nonzeros", se.BasisNonzeros)
	sp.SetInt("milp_workspace_reuses", se.WorkspaceReuses)
	sp.SetInt("milp_root_bounds_fixed", se.RootBoundsFixed)
	sp.SetInt("milp_incumbent_updates", se.IncumbentUpdates)
	sp.SetInt("milp_rounding_attempts", se.RoundingAttempts)
	sp.SetInt("milp_rounding_hits", se.RoundingHits)
	sp.SetInt("milp_basis_refreshes", se.BasisRefreshes)
	sp.SetInt("milp_nodes_presolved", se.NodesPresolved)
	sp.SetInt("milp_bounds_tightened", se.BoundsTightened)
	sp.SetInt("milp_rows_removed", se.RowsRemoved)
	sp.SetInt("milp_coefs_strengthened", se.CoefsStrengthened)
	sp.SetInt("milp_cuts_added", se.CutsAdded)
	sp.SetInt("milp_cut_rounds", se.CutRounds)
	sp.SetInt("milp_branchings", se.Branchings)
	sp.SetInt("milp_group_branches", se.GroupBranches)
	sp.SetInt("milp_pseudocost_branches", se.PseudocostBranches)
	sp.SetInt("milp_reliability_fallbacks", se.ReliabilityFallbacks)
	sp.SetInt("milp_delta_warm_starts", se.DeltaWarmStarts)
	sp.SetInt("milp_delta_fallbacks", se.DeltaFallbacks)
	sp.SetInt("milp_incumbent_from_hint", se.IncumbentFromHint)
	for i, w := range se.PerWorker {
		if se.Workers <= 1 {
			break
		}
		sp.SetInt(fmt.Sprintf("milp_worker%d_nodes", i), w.Nodes)
		sp.Set(fmt.Sprintf("milp_worker%d_utilization", i),
			math.Round(w.Utilization(se.Wall)*1000)/1000)
	}
}

// SynthesizeSource parses a netlist description and synthesizes it.
func SynthesizeSource(src string, opt Options) (*Result, error) {
	return SynthesizeSourceContext(context.Background(), src, opt)
}

// SynthesizeSourceContext parses a netlist description and synthesizes
// it under a context (see SynthesizeContext for the cancellation
// semantics).
func SynthesizeSourceContext(ctx context.Context, src string, opt Options) (*Result, error) {
	sp := opt.Trace.Phase("parse")
	n, err := netlist.ParseString(src)
	recordParse(sp, n, err)
	if err != nil {
		return nil, err
	}
	return SynthesizeContext(ctx, n, opt)
}

// SynthesizeReader parses a netlist description from r and synthesizes it.
func SynthesizeReader(r io.Reader, opt Options) (*Result, error) {
	return SynthesizeReaderContext(context.Background(), r, opt)
}

// SynthesizeReaderContext parses a netlist description from r and
// synthesizes it under a context (see SynthesizeContext).
func SynthesizeReaderContext(ctx context.Context, r io.Reader, opt Options) (*Result, error) {
	sp := opt.Trace.Phase("parse")
	n, err := netlist.Parse(r)
	recordParse(sp, n, err)
	if err != nil {
		return nil, err
	}
	return SynthesizeContext(ctx, n, opt)
}

// recordParse seals the parse span with the netlist's headline counts.
func recordParse(sp *obs.Span, n *netlist.Netlist, err error) {
	if sp == nil {
		return
	}
	if err == nil {
		sp.SetInt("units", int64(n.NumUnits()))
		sp.SetInt("muxes", int64(n.Muxes))
	}
	sp.End()
}

// WriteSCR exports the result as an AutoCAD script (Section 3.3).
func (r *Result) WriteSCR(w io.Writer) error { return export.WriteSCR(w, r.Design) }

// WriteSVG renders the result as an SVG figure.
func (r *Result) WriteSVG(w io.Writer) error { return export.WriteSVG(w, r.Design) }

// WriteJSON dumps the design summary as JSON.
func (r *Result) WriteJSON(w io.Writer) error { return export.WriteJSON(w, r.Design) }

// WriteDXF exports the result as an ASCII DXF drawing.
func (r *Result) WriteDXF(w io.Writer) error { return export.WriteDXF(w, r.Design) }

// WritePlanSVG renders the generation-phase rectangle plan (Figure 6(b)).
func (r *Result) WritePlanSVG(w io.Writer) error { return export.WritePlanSVG(w, r.Plan) }

// WriteASCII renders the design as a terminal character raster.
func (r *Result) WriteASCII(w io.Writer, cols int) error {
	return export.WriteASCII(w, r.Design, cols)
}

// WriteReport writes the markdown datasheet (metrics, module inventory,
// multiplexer addressing tables, fluid ports).
func (r *Result) WriteReport(w io.Writer) error { return export.WriteReport(w, r.Design) }

// Export renders the result in the named format from the export.Formats
// registry (canonical name or alias). The CLI's -format flag and the
// columbasd content negotiation both resolve through the same registry,
// so the accepted names are identical everywhere.
func (r *Result) Export(w io.Writer, format string) error {
	f, ok := export.Lookup(format)
	if !ok {
		return fmt.Errorf("core: unknown export format %q (want one of %s)",
			format, strings.Join(export.Names(), ", "))
	}
	return f.Write(w, r.Design, r.Plan)
}
