package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/layout"
	"columbas/internal/netlist"
)

func fastOpts() Options {
	o := DefaultOptions()
	o.Layout.TimeLimit = 3 * time.Second
	o.Layout.StallLimit = 40
	o.Layout.Gap = 0.1
	return o
}

const chainSrc = `
design chain
unit m1 mixer
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`

func TestEndToEndChain(t *testing.T) {
	r, err := SynthesizeSource(chainSrc, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.DRC == nil || !r.DRC.Clean() {
		t.Fatal("DRC should run and pass")
	}
	m := r.Metrics()
	if m.Units != 2 || m.Muxes != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.WidthMM <= 0 || m.HeightMM <= 0 || m.FlowMM <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.CtrlInlets != 7 {
		t.Fatalf("CtrlInlets = %d, want 7", m.CtrlInlets)
	}
	if m.Runtime <= 0 {
		t.Fatal("runtime not measured")
	}
}

func TestEndToEndCorpusSmallCases(t *testing.T) {
	for _, id := range []string{"nap6", "chip9", "mrna8"} {
		t.Run(id, func(t *testing.T) {
			c, err := cases.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			n, err := c.Netlist()
			if err != nil {
				t.Fatal(err)
			}
			r, err := Synthesize(n, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			m := r.Metrics()
			if m.Units != c.Units {
				t.Fatalf("units = %d, want %d", m.Units, c.Units)
			}
			// 1-MUX inlet counts from Table 1's band.
			if m.CtrlInlets != 13 {
				t.Errorf("CtrlInlets = %d, want 13 (Table 1)", m.CtrlInlets)
			}
		})
	}
}

func TestEndToEndTwoMux(t *testing.T) {
	c, err := cases.Get("mrna8")
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.WithMuxes(2).Netlist()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(n, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.Muxes != 2 {
		t.Fatalf("muxes = %d", m.Muxes)
	}
	if r.Design.MuxTop == nil {
		t.Fatal("2-MUX design should use the top boundary")
	}
}

func TestExports(t *testing.T) {
	r, err := SynthesizeSource(chainSrc, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var scr, svg, js bytes.Buffer
	if err := r.WriteSCR(&scr); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSVG(&svg); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scr.String(), "PLINE") {
		t.Error("SCR lacks geometry")
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Error("SVG malformed")
	}
	if !strings.Contains(js.String(), `"control_inlets"`) {
		t.Error("JSON lacks metrics")
	}
}

func TestSynthesizeReader(t *testing.T) {
	r, err := SynthesizeReader(strings.NewReader(chainSrc), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Design.Name != "chain" {
		t.Fatalf("name = %q", r.Design.Name)
	}
}

func TestBadNetlistSource(t *testing.T) {
	if _, err := SynthesizeSource("garbage input\n", fastOpts()); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := SynthesizeSource("design d\nunit a mixer\nunit b mixer\nconnect in:x a\n", fastOpts()); err == nil {
		t.Fatal("expected validation error (disconnected unit)")
	}
}

func TestZeroOptionsGetDefaults(t *testing.T) {
	// A zero Layout options struct must be replaced by defaults, not used
	// as-is (which would mean 0 weights and instant time-out).
	n, err := netlist.ParseString(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(n, Options{RunDRC: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Design == nil {
		t.Fatal("no design")
	}
}

func TestSeedOnlyFlow(t *testing.T) {
	o := fastOpts()
	o.Layout.SkipMILP = true
	r, err := SynthesizeSource(chainSrc, o)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Plan.Stats.SeedOnly {
		t.Fatal("seed-only flag lost")
	}
	if r.DRC == nil || !r.DRC.Clean() {
		t.Fatal("greedy seed design must be DRC-clean")
	}
}

func TestGuidedFlow(t *testing.T) {
	o := fastOpts()
	o.Layout.Effort = layout.EffortGuided
	r, err := SynthesizeSource(chainSrc, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.DRC == nil || !r.DRC.Clean() {
		t.Fatal("guided design must be DRC-clean")
	}
}

// The headline scalability claim: a >200-unit design synthesizes
// end-to-end (within minutes in the paper; we only assert completion and
// DRC cleanliness here — timing is the benchmark harness's job).
func TestEndToEndChIP64(t *testing.T) {
	if testing.Short() {
		t.Skip("large case skipped in -short mode")
	}
	c := cases.ChIP64()
	n, err := c.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	o := fastOpts()
	o.Layout.TimeLimit = 20 * time.Second
	r, err := Synthesize(n, o)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics()
	if m.Units != 129 {
		t.Fatalf("units = %d", m.Units)
	}
	if m.CtrlInlets != 17 {
		t.Errorf("CtrlInlets = %d, want 17 (Table 1)", m.CtrlInlets)
	}
}
