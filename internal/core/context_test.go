package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"columbas/internal/cases"
	"columbas/internal/layout"
	"columbas/internal/netlist"
)

func mustParse(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSynthesizeContextCancelBeforeStart: an already-canceled context
// fails fast with the context error in the chain.
func TestSynthesizeContextCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SynthesizeSourceContext(ctx, chainSrc, fastOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
}

// TestSynthesizeContextDeadlineCancelsSolver gives a bigger design a
// deadline far shorter than its solve time and checks (a) the error is
// context.DeadlineExceeded, (b) the call returns promptly — i.e. the
// deadline genuinely reached the branch-and-bound workers instead of
// letting them run out their 30 s budget.
func TestSynthesizeContextDeadlineCancelsSolver(t *testing.T) {
	c, err := cases.Get("chip9")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Layout.TimeLimit = 30 * time.Second
	opt.Layout.Effort = layout.EffortFull
	opt.Layout.GuidedThreshold = 0
	opt.Layout.Gap = 0 // prove optimality: keeps the search running
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = SynthesizeSourceContext(ctx, c.Source, opt)
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("design solved inside the deadline on this machine")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; solver workers did not stop", elapsed)
	}
}

// TestSynthesizeDoesNotMutateOptions pins the immutability contract the
// server's content-addressed cache keying depends on: the Options value
// handed to SynthesizeContext — including its Layout sub-struct — must
// compare equal before and after the run, even with tracing attached.
func TestSynthesizeDoesNotMutateOptions(t *testing.T) {
	opt := fastOpts()
	want := opt
	r, err := SynthesizeContext(context.Background(), mustParse(t, chainSrc), opt)
	if err != nil {
		t.Fatal(err)
	}
	if opt != want {
		t.Fatalf("Options mutated by synthesis:\n  before %+v\n  after  %+v", want, opt)
	}
	if opt.Layout.Obs != nil {
		t.Fatal("opt.Layout.Obs set on the caller's copy")
	}
	if r == nil || r.Design == nil {
		t.Fatal("no result")
	}
}

// TestContextAndPlainAgree: with no deadline pressure the context entry
// point and the classic wrapper produce byte-identical exports.
func TestContextAndPlainAgree(t *testing.T) {
	opt := fastOpts()
	opt.Layout.Workers = 1 // sequential: deterministic placement
	r1, err := SynthesizeSource(chainSrc, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SynthesizeSourceContext(context.Background(), chainSrc, opt)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := r1.Export(&b1, "svg"); err != nil {
		t.Fatal(err)
	}
	if err := r2.Export(&b2, "svg"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("context and plain synthesis disagree on identical input")
	}
}

// TestResultExportUnknownFormat: the registry error names the valid set.
func TestResultExportUnknownFormat(t *testing.T) {
	r, err := SynthesizeSource(chainSrc, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Export(&buf, "pdf"); err == nil {
		t.Fatal("Export(pdf) should fail")
	}
}
