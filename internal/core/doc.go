// Package core orchestrates the complete Columba S design flow
// (Figure 5): netlist parsing, netlist planarization, layout generation,
// layout validation, multiplexer synthesis and result interpretation.
// It is the library's primary entry point.
//
// Key types: Options configures every phase (including layout.Options and
// an optional obs.Trace for per-phase timing); Synthesize and its Source/
// Reader variants run the flow and return a Result whose Metrics mirror
// the Table 1 columns.
package core
