package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"columbas/internal/export"
	"columbas/internal/netlist"
)

// writeJSON renders a wire document with the server's standard
// indentation.
func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// formatErrCode maps a chooseFormat failure status onto its error code.
func formatErrCode(status int) string {
	if status == http.StatusNotAcceptable {
		return CodeNotAcceptable
	}
	return CodeUnknownFormat
}

// readBody slurps the (bounded) request body; a limit overrun is
// reported as 413 and the returned bool is false.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		d := errDoc(CodeBodyTooLarge, fmt.Sprintf("reading request body: %v", err))
		writeError(w, http.StatusRequestEntityTooLarge, d)
		return nil, false
	}
	return body, true
}

// submitHTTP runs submit for a handler, translating the refusal
// modes (draining, shed) onto the wire. Returns nil after writing the
// refusal.
func (s *Server) submitHTTP(w http.ResponseWriter, req submitRequest) *job {
	j, retry, err := s.submit(req)
	switch {
	case err == nil:
		return j
	case errors.Is(err, errDraining):
		writeErrorRetry(w, http.StatusServiceUnavailable, retry,
			errDoc(CodeDraining, "server is draining"))
	default: // admission shed
		d := errDoc(CodeOverloaded, err.Error())
		if retry > 0 {
			d.Detail = fmt.Sprintf("estimated wait %s", retry.Round(time.Millisecond))
		}
		writeErrorRetry(w, http.StatusTooManyRequests, retry, d)
	}
	return nil
}

// handleSynthesize is POST /v1/synthesize: netlist source in, rendered
// design out. Since the v2 redesign it is a thin synchronous wrapper —
// submit a job, wait for its terminal state, render — so v1 and v2
// share one synthesis path, one option decoder and one admission
// layer. The endpoint is deprecated in favor of POST /v2/jobs but its
// contract (statuses, headers, byte-identical cache hits) is frozen.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErrorRetry(w, http.StatusServiceUnavailable, drainRetryAfter,
			errDoc(CodeDraining, "server is draining"))
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	fm, status, err := chooseFormat(q.Get("format"), r.Header.Get("Accept"))
	if err != nil {
		writeError(w, status, errDoc(formatErrCode(status), err.Error()))
		return
	}
	n, err := netlist.ParseString(string(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeNetlistParse, err.Error()))
		return
	}
	sp, err := specFromQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
		return
	}
	if err := sp.ApplyNetlist(n); err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
		return
	}
	if err := n.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, errDoc(CodeNetlistInvalid, err.Error()))
		return
	}
	opt, timeout, err := s.resolveOptions(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
		return
	}
	j := s.submitHTTP(w, submitRequest{n: n, opt: opt, timeout: timeout})
	if j == nil {
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client hung up: cancel the job and wait for the solver to
		// actually stop, so the connection closes with the pool drained.
		j.cancelJob()
		<-j.done
		return
	}
	st, res, errStatus, edoc, cache := j.outcome()
	if st == JobSucceeded {
		s.render(w, fm, res, j.key, cache)
		return
	}
	writeError(w, errStatus, edoc)
}

// handleJobCreate is POST /v2/jobs: accept a synthesis job, reply 202
// with the job resource. The body is either a columbas-jobrequest/v1
// JSON envelope (Content-Type: application/json) or, for curl
// convenience, raw netlist source with the v1 query parameters.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErrorRetry(w, http.StatusServiceUnavailable, drainRetryAfter,
			errDoc(CodeDraining, "server is draining"))
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var src, format string
	var jr JobRequest
	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "json") {
		dec := json.NewDecoder(strings.NewReader(string(body)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&jr); err != nil {
			writeError(w, http.StatusBadRequest,
				errDoc(CodeBadRequest, fmt.Sprintf("decoding job request: %v", err)))
			return
		}
		if jr.Schema != "" && jr.Schema != JobRequestSchema {
			writeError(w, http.StatusBadRequest, errDoc(CodeBadRequest,
				fmt.Sprintf("unsupported request schema %q (want %s)", jr.Schema, JobRequestSchema)))
			return
		}
		src, format = jr.Netlist, jr.Format
	} else {
		var err error
		if jr.Options, err = specFromQuery(r.URL.Query()); err != nil {
			writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
			return
		}
		src, format = string(body), r.URL.Query().Get("format")
	}
	if format != "" {
		if _, ok := export.Lookup(format); !ok {
			writeError(w, http.StatusBadRequest, errDoc(CodeUnknownFormat,
				fmt.Sprintf("unknown format %q (want one of %s)", format, strings.Join(export.Names(), ", "))))
			return
		}
	}
	n, err := netlist.ParseString(src)
	if err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeNetlistParse, err.Error()))
		return
	}
	if err := jr.Options.ApplyNetlist(n); err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
		return
	}
	if err := n.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, errDoc(CodeNetlistInvalid, err.Error()))
		return
	}
	opt, timeout, err := s.resolveOptions(jr.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
		return
	}
	j := s.submitHTTP(w, submitRequest{n: n, opt: opt, timeout: timeout, format: format})
	if j == nil {
		return
	}
	w.Header().Set("Location", "/v2/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.doc())
}

// handleJobGet is GET /v2/jobs/{id}: the job resource document.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errDoc(CodeJobNotFound, "no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.doc())
}

// handleJobResult is GET /v2/jobs/{id}/result: the rendered design of
// a succeeded job under the same content negotiation as /v1 (an
// explicit ?format= wins, then the Accept header, then the format
// pinned at submit). A failed job replays its terminal error; a job
// still in flight answers 409.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errDoc(CodeJobNotFound, "no such job"))
		return
	}
	formatParam := r.URL.Query().Get("format")
	if formatParam == "" && r.Header.Get("Accept") == "" {
		formatParam = j.format
	}
	fm, status, err := chooseFormat(formatParam, r.Header.Get("Accept"))
	if err != nil {
		writeError(w, status, errDoc(formatErrCode(status), err.Error()))
		return
	}
	st, res, errStatus, edoc, cache := j.outcome()
	switch {
	case !st.Terminal():
		d := errDoc(CodeNotReady, "job has not finished")
		d.Detail = string(st)
		writeError(w, http.StatusConflict, d)
	case st == JobSucceeded:
		s.render(w, fm, res, j.key, cache)
	default:
		writeError(w, errStatus, edoc)
	}
}

// handleJobCancel is DELETE /v2/jobs/{id}: request cancellation and
// return the (possibly already terminal) job resource. Cancellation is
// idempotent — deleting a finished job changes nothing and still
// answers 200, and the resource stays retrievable until its TTL.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errDoc(CodeJobNotFound, "no such job"))
		return
	}
	j.cancelJob()
	writeJSON(w, http.StatusOK, j.doc())
}

// handleJobEvents is GET /v2/jobs/{id}/events: the job's progress as a
// Server-Sent Events stream of columbas-jobevent/v1 documents. The
// backlog replays first (resumable via Last-Event-ID), then live
// events follow until the terminal state event ends the stream.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errDoc(CodeJobNotFound, "no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError,
			errDoc(CodeInternal, "response writer does not support streaming"))
		return
	}
	var lastSeen int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		lastSeen, _ = strconv.ParseInt(v, 10, 64)
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := j.hub.subscribe()
	defer cancel()
	for _, ev := range replay {
		if ev.Seq > lastSeen {
			writeSSE(w, ev)
		}
	}
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// Hub closed: the terminal state event was the last one
				// delivered (or replayed); the stream is complete.
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one event: id is the sequence number, event the
// type, data the columbas-jobevent/v1 document.
func writeSSE(w io.Writer, ev JobEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}

// handleHealthz is liveness: 200 as long as the process serves HTTP,
// draining or not — a draining server is still alive and must not be
// restarted by its supervisor.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// handleReadyz is readiness: 200 while accepting synthesis work, 503
// (with Retry-After) once draining so load balancers stop routing
// here.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErrorRetry(w, http.StatusServiceUnavailable, drainRetryAfter,
			errDoc(CodeDraining, "server is draining"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}
