package server

import (
	"errors"
	"sync"
	"time"
)

// Admission-control rejections. Handlers map both onto 429 with a
// Retry-After hint; they are distinguishable in stats.
var (
	// errQueueFull: pool and queue are both at capacity.
	errQueueFull = errors.New("admission queue full")
	// errDoomedDeadline: the queue has room, but the request's deadline
	// would expire before a pool slot frees — queueing it would burn a
	// slot on work that can only time out.
	errDoomedDeadline = errors.New("deadline shorter than estimated queue wait")
)

// admission is the load-shedding layer in front of the job pool: a
// bounded queue with deadline-aware rejection. The pool semaphore
// bounds *running* work; admission bounds total occupancy (running +
// waiting), so a burst beyond pool+queue capacity is refused
// immediately with a backoff hint instead of accumulating unbounded
// waiters (queue collapse).
//
// Wait estimation is an EWMA of recent service times: with the pool
// full and q jobs already waiting over n slots, a new arrival waits
// roughly avg·(q+1)/n. A request whose deadline lands inside that
// window is shed up front — by the time it ran, it could only 504.
type admission struct {
	slots int // pool width (Config.Jobs)
	capQ  int // queue bound past the pool (Config.MaxQueue)

	mu      sync.Mutex
	queued  int     // admitted, not yet holding a pool slot
	running int     // holding a pool slot
	avgNS   float64 // EWMA of service time
	samples int64

	admitted     int64
	shedFull     int64
	shedDeadline int64
}

// ewmaAlpha weights the newest service-time sample; ~5 samples of
// history dominate the estimate.
const ewmaAlpha = 0.2

func newAdmission(slots, capQ int) *admission {
	if slots < 1 {
		slots = 1
	}
	if capQ < 0 {
		capQ = 0
	}
	return &admission{slots: slots, capQ: capQ}
}

// admit reserves an occupancy slot for a job with the given absolute
// deadline (zero: none). On rejection it returns the estimated time
// until capacity frees — the Retry-After hint — and one of the shed
// errors. An admitted job must eventually call started (when it takes
// a pool slot) or abandoned (when it gives up waiting).
func (a *admission) admit(deadline time.Time) (time.Duration, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	wait := a.estWaitLocked()
	if a.queued+a.running >= a.slots+a.capQ {
		a.shedFull++
		return wait, errQueueFull
	}
	if !deadline.IsZero() && wait > 0 && time.Now().Add(wait).After(deadline) {
		a.shedDeadline++
		return wait, errDoomedDeadline
	}
	a.queued++
	a.admitted++
	return 0, nil
}

// started moves an admitted job from the queue to the pool.
func (a *admission) started() {
	a.mu.Lock()
	a.queued--
	a.running++
	a.mu.Unlock()
}

// abandoned releases an admitted job that never ran (deadline or cancel
// fired while waiting).
func (a *admission) abandoned() {
	a.mu.Lock()
	a.queued--
	a.mu.Unlock()
}

// finished releases a running job's slot and records its service time
// for the wait estimator.
func (a *admission) finished(d time.Duration) {
	a.mu.Lock()
	a.running--
	if a.samples == 0 {
		a.avgNS = float64(d)
	} else {
		a.avgNS = (1-ewmaAlpha)*a.avgNS + ewmaAlpha*float64(d)
	}
	a.samples++
	a.mu.Unlock()
}

// estWaitLocked estimates how long a new arrival would wait for a pool
// slot. Zero while a slot is free, and zero until the first sample
// lands: with no history the layer admits optimistically rather than
// shedding on a guess.
func (a *admission) estWaitLocked() time.Duration {
	if a.samples == 0 || a.running < a.slots {
		return 0
	}
	return time.Duration(a.avgNS * float64(a.queued+1) / float64(a.slots))
}

// AdmissionStats is the admission-control block of GET /v1/stats.
type AdmissionStats struct {
	// QueueCapacity is the configured queue bound past the pool
	// (Config.MaxQueue).
	QueueCapacity int `json:"queue_capacity"`
	// Queued is the number of admitted jobs waiting for a pool slot.
	Queued int64 `json:"queued"`
	// Admitted counts jobs accepted since start.
	Admitted int64 `json:"admitted"`
	// ShedQueueFull and ShedDeadline count 429s by cause: occupancy at
	// capacity vs deadline shorter than the estimated wait.
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	// AvgServiceMS is the EWMA of service time behind the wait
	// estimator (0 until the first completion).
	AvgServiceMS float64 `json:"avg_service_ms"`
}

func (a *admission) snapshot() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		QueueCapacity: a.capQ,
		Queued:        int64(a.queued),
		Admitted:      a.admitted,
		ShedQueueFull: a.shedFull,
		ShedDeadline:  a.shedDeadline,
		AvgServiceMS:  a.avgNS / 1e6,
	}
}
