package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"columbas/internal/core"
	"columbas/internal/netlist"
)

// Schemas of the /v2/explore wire documents.
const (
	// ExploreRequestSchema identifies the POST /v2/explore request
	// envelope.
	ExploreRequestSchema = "columbas-explorerequest/v1"
	// ExploreSchema identifies the sweep result document.
	ExploreSchema = "columbas-explore/v1"
)

// maxExploreCells bounds one sweep's grid: the cross product of the four
// weight axes may not exceed it.
const maxExploreCells = 64

// ExploreRequest is the columbas-explorerequest/v1 envelope: one netlist,
// one base option set, and a grid of objective weight vectors to sweep.
type ExploreRequest struct {
	// Schema, when non-empty, must be ExploreRequestSchema.
	Schema string `json:"schema,omitempty"`
	// Netlist is the netlist source text, shared by every cell.
	Netlist string `json:"netlist"`
	// Options is the base synthesis option set; each cell overrides only
	// the objective weights.
	Options core.OptionSpec `json:"options"`
	// Sweep lists the values per weight axis. An empty axis keeps the
	// resolved base value; the grid is the cross product of all four.
	Sweep ExploreSweep `json:"sweep"`
}

// ExploreSweep is the per-axis value lists of a weight sweep.
type ExploreSweep struct {
	Alpha []float64 `json:"alpha,omitempty"`
	Beta  []float64 `json:"beta,omitempty"`
	Gamma []float64 `json:"gamma,omitempty"`
	Kappa []float64 `json:"kappa,omitempty"`
}

// ExploreWeights is one grid cell's objective weight vector.
type ExploreWeights struct {
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
	Kappa float64 `json:"kappa"`
}

// l1 is the weight-space distance used to pick each cell's donor.
func (w ExploreWeights) l1(o ExploreWeights) float64 {
	return math.Abs(w.Alpha-o.Alpha) + math.Abs(w.Beta-o.Beta) +
		math.Abs(w.Gamma-o.Gamma) + math.Abs(w.Kappa-o.Kappa)
}

// ExploreCell is one solved grid cell of the sweep result document. Each
// cell is a real job resource — Job links to /v2/jobs/{id} for its trace
// events and renderable design.
type ExploreCell struct {
	Job     string         `json:"job"`
	Weights ExploreWeights `json:"weights"`
	State   JobState       `json:"state"`
	// Cache is "hit" or "miss"; Donor is the index of the finished cell
	// whose design warm-started this one (-1: solved cold or exact hit).
	Cache string `json:"cache,omitempty"`
	Donor int    `json:"donor"`
	// Metrics is the cell's Table 1 figures of merit on success.
	Metrics *core.Metrics `json:"metrics,omitempty"`
	// WallMS is the cell's synthesis wall time (0 on an exact cache hit).
	WallMS float64   `json:"wall_ms"`
	Error  *ErrorDoc `json:"error,omitempty"`
}

// ExploreDoc is the columbas-explore/v1 response: every cell of the
// sweep plus the Pareto frontier over the Table 1 metrics.
type ExploreDoc struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	Cells  []ExploreCell `json:"cells"`
	// Frontier indexes the non-dominated cells: no other succeeded cell
	// is at least as good on width, height, flow length and control
	// inlets and strictly better on one.
	Frontier []int `json:"frontier"`
	// WallMS is the end-to-end sweep time; TotalSolveMS sums the per-cell
	// synthesis walls (the figure a cold-vs-warm comparison uses).
	WallMS       float64 `json:"wall_ms"`
	TotalSolveMS float64 `json:"total_solve_ms"`
}

// grid expands the sweep axes into the cell list. Empty axes take the
// base weights.
func (sw ExploreSweep) grid(base ExploreWeights) []ExploreWeights {
	axis := func(vals []float64, def float64) []float64 {
		if len(vals) == 0 {
			return []float64{def}
		}
		return vals
	}
	as := axis(sw.Alpha, base.Alpha)
	bs := axis(sw.Beta, base.Beta)
	gs := axis(sw.Gamma, base.Gamma)
	ks := axis(sw.Kappa, base.Kappa)
	var out []ExploreWeights
	for _, a := range as {
		for _, b := range bs {
			for _, g := range gs {
				for _, k := range ks {
					out = append(out, ExploreWeights{Alpha: a, Beta: b, Gamma: g, Kappa: k})
				}
			}
		}
	}
	return out
}

// validate rejects non-finite or negative axis values before any cell
// runs.
func (sw ExploreSweep) validate() error {
	check := func(name string, vals []float64) error {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("sweep %s values must be finite and non-negative", name)
			}
		}
		return nil
	}
	if err := check("alpha", sw.Alpha); err != nil {
		return err
	}
	if err := check("beta", sw.Beta); err != nil {
		return err
	}
	if err := check("gamma", sw.Gamma); err != nil {
		return err
	}
	return check("kappa", sw.Kappa)
}

// handleExplore is POST /v2/explore: solve one netlist under a grid of
// objective weight vectors as a single job group and return the Pareto
// frontier. The first cell solves cold; every later cell chains a warm
// hint from its nearest already-finished neighbor in weight space, so the
// whole sweep costs one cold solve plus a string of warm ones. Each cell
// still runs through the normal submit path — admission control, the
// result cache and the job store all apply per cell.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErrorRetry(w, http.StatusServiceUnavailable, drainRetryAfter,
			errDoc(CodeDraining, "server is draining"))
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var er ExploreRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&er); err != nil {
		writeError(w, http.StatusBadRequest,
			errDoc(CodeBadRequest, fmt.Sprintf("decoding explore request: %v", err)))
		return
	}
	if er.Schema != "" && er.Schema != ExploreRequestSchema {
		writeError(w, http.StatusBadRequest, errDoc(CodeBadRequest,
			fmt.Sprintf("unsupported request schema %q (want %s)", er.Schema, ExploreRequestSchema)))
		return
	}
	if err := er.Sweep.validate(); err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
		return
	}
	n, err := netlist.ParseString(er.Netlist)
	if err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeNetlistParse, err.Error()))
		return
	}
	if err := er.Options.ApplyNetlist(n); err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
		return
	}
	if err := n.Validate(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, errDoc(CodeNetlistInvalid, err.Error()))
		return
	}
	baseOpt, timeout, err := s.resolveOptions(er.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption, err.Error()))
		return
	}
	base := ExploreWeights{
		Alpha: baseOpt.Layout.Alpha, Beta: baseOpt.Layout.Beta,
		Gamma: baseOpt.Layout.Gamma, Kappa: baseOpt.Layout.Kappa,
	}
	cells := er.Sweep.grid(base)
	if len(cells) > maxExploreCells {
		writeError(w, http.StatusBadRequest, errDoc(CodeInvalidOption,
			fmt.Sprintf("sweep grid has %d cells (max %d)", len(cells), maxExploreCells)))
		return
	}

	doc := ExploreDoc{
		Schema: ExploreSchema,
		Name:   n.Name,
		Cells:  make([]ExploreCell, 0, len(cells)),
	}
	sweepStart := time.Now()
	// results holds each finished cell's result for donor selection; the
	// explicit chain keeps working even with the result cache disabled.
	results := make([]*core.Result, len(cells))
	for i, wv := range cells {
		opt := baseOpt
		opt.Layout.Alpha, opt.Layout.Beta = wv.Alpha, wv.Beta
		opt.Layout.Gamma, opt.Layout.Kappa = wv.Gamma, wv.Kappa
		cell := ExploreCell{Weights: wv, Donor: -1}
		req := submitRequest{n: n, opt: opt, timeout: timeout}
		if !opt.NoDelta {
			bestD := math.Inf(1)
			for p := 0; p < i; p++ {
				if results[p] == nil {
					continue
				}
				if d := wv.l1(cells[p]); d < bestD {
					bestD, cell.Donor = d, p
				}
			}
			if cell.Donor >= 0 {
				req.warm = results[cell.Donor].WarmHint()
			}
		}
		j, retry, err := s.submit(req)
		if err != nil {
			// Shed or draining mid-sweep: report the refusal on this cell
			// and stop — the finished cells and frontier still go out.
			d := errDoc(CodeOverloaded, err.Error())
			if retry > 0 {
				d.Detail = fmt.Sprintf("estimated wait %s", retry.Round(time.Millisecond))
			}
			cell.State = JobFailed
			cell.Error = d
			doc.Cells = append(doc.Cells, cell)
			break
		}
		cell.Job = j.id
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client hung up: cancel the in-flight cell and give up — the
			// connection cannot carry a response anymore.
			j.cancelJob()
			<-j.done
			return
		}
		st, res, _, edoc, cache := j.outcome()
		cell.State = st
		cell.Error = edoc
		if st == JobSucceeded {
			cell.Cache = cache
			m := res.Metrics()
			cell.Metrics = &m
			if cache != "hit" {
				cell.WallMS = float64(res.Runtime) / float64(time.Millisecond)
				doc.TotalSolveMS += cell.WallMS
			}
			results[i] = res
		} else {
			cell.Donor = -1
		}
		doc.Cells = append(doc.Cells, cell)
	}
	doc.WallMS = float64(time.Since(sweepStart)) / float64(time.Millisecond)
	doc.Frontier = paretoFrontier(doc.Cells)
	writeJSON(w, http.StatusOK, doc)
}

// paretoFrontier returns the indices of the non-dominated succeeded
// cells under minimization of the four Table 1 metrics: chip width,
// height, flow channel length and control inlet count.
func paretoFrontier(cells []ExploreCell) []int {
	point := func(c ExploreCell) ([4]float64, bool) {
		if c.State != JobSucceeded || c.Metrics == nil {
			return [4]float64{}, false
		}
		m := c.Metrics
		return [4]float64{m.WidthMM, m.HeightMM, m.FlowMM, float64(m.CtrlInlets)}, true
	}
	dominates := func(a, b [4]float64) bool {
		strict := false
		for i := range a {
			if a[i] > b[i] {
				return false
			}
			if a[i] < b[i] {
				strict = true
			}
		}
		return strict
	}
	frontier := []int{}
	for i := range cells {
		pi, ok := point(cells[i])
		if !ok {
			continue
		}
		dominated := false
		for jj := range cells {
			if jj == i {
				continue
			}
			pj, ok := point(cells[jj])
			if !ok {
				continue
			}
			// Of identical points, only the first joins the frontier.
			if dominates(pj, pi) || (pj == pi && jj < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, i)
		}
	}
	return frontier
}
