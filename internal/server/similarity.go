package server

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"columbas/internal/core"
	"columbas/internal/netlist"
)

// designFP is the structural fingerprint behind the delta-aware warm-start
// index: a per-unit content hash, the canonicalized net multiset, a hash of
// every non-weight option that shapes the layout model, and the objective
// weight vector kept separate. Two requests whose exact cache keys differ
// can still be near misses here — "same netlist, different α/β/γ/κ"
// resolves to structural distance 0, and a one-unit edit (add, remove,
// resize, reconnect) to a small positive distance — and near misses warm
// start from the donor instead of solving cold.
type designFP struct {
	// units maps unit name to a hash of its type, mixer option and
	// footprint override; nets counts canonical net tokens (multiset —
	// duplicate connections are legal).
	units map[string]uint64
	nets  map[string]int
	// optHash folds in everything that must match exactly for a donor
	// plan to be worth borrowing: mux count, parallel groups, effort
	// shape, and the model-shaping layout options other than the
	// objective weights.
	optHash uint64
	// weights is (α, β, γ, κ) — excluded from optHash so weight sweeps
	// over one netlist land at structural distance 0.
	weights [4]float64
}

// maxDeltaDistance is the similarity admission bound: the largest
// structural distance at which a cached design still donates a warm
// hint. A single unit edit costs at most ~4 (one unit row plus the net
// tokens it rewires), so 8 comfortably covers "one or two edits away"
// while rejecting unrelated designs, which differ in nearly every token.
const maxDeltaDistance = 8

// newDesignFP fingerprints a validated request.
func newDesignFP(n *netlist.Netlist, opt core.Options) *designFP {
	fp := &designFP{
		units: make(map[string]uint64, len(n.Units)),
		nets:  make(map[string]int, len(n.Nets)),
	}
	for _, u := range n.Units {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%d|%g|%g", u.Type, u.Opt, u.W, u.H)
		fp.units[u.Name] = h.Sum64()
	}
	for _, nt := range n.Nets {
		eps := make([]string, 0, len(nt.Endpoints))
		for _, e := range nt.Endpoints {
			eps = append(eps, e.String())
		}
		sort.Strings(eps)
		tok := ""
		for _, e := range eps {
			tok += e + ";"
		}
		fp.nets[tok]++
	}
	oh := fnv.New64a()
	fmt.Fprintf(oh, "muxes=%d", n.Muxes)
	for _, g := range n.Parallel {
		gs := append([]string(nil), g...)
		sort.Strings(gs)
		fmt.Fprintf(oh, "|par=%v", gs)
	}
	lo := opt.Layout
	fmt.Fprintf(oh, "|eff=%d|gthr=%d|skip=%t|noseed=%t|eager=%t|nows=%t|nocuts=%t|nopre=%t|br=%d|kern=%d",
		lo.Effort, lo.GuidedThreshold, lo.SkipMILP, lo.NoSeed, lo.EagerSeparation,
		lo.NoWarmStart, lo.NoCuts, lo.NoPresolve, lo.Branching, lo.Kernel)
	fp.optHash = oh.Sum64()
	fp.weights = [4]float64{lo.Alpha, lo.Beta, lo.Gamma, lo.Kappa}
	return fp
}

// distance returns the structural edit distance between two fingerprints:
// the symmetric difference of the unit sets (a renamed or resized unit
// counts on both sides it differs on) plus the multiset symmetric
// difference of the net tokens. Incompatible option hashes — different
// mux counts, parallel groups or model-shaping options — are reported as
// -1: no hint is worth borrowing across them.
func (a *designFP) distance(b *designFP) int {
	if a.optHash != b.optHash {
		return -1
	}
	d := 0
	for name, h := range a.units {
		if bh, ok := b.units[name]; !ok {
			d++
		} else if bh != h {
			d++
		}
	}
	for name := range b.units {
		if _, ok := a.units[name]; !ok {
			d++
		}
	}
	for tok, ca := range a.nets {
		cb := b.nets[tok]
		if ca > cb {
			d += ca - cb
		}
	}
	for tok, cb := range b.nets {
		ca := a.nets[tok]
		if cb > ca {
			d += cb - ca
		}
	}
	return d
}

// weightDistance is the L1 distance between the objective weight vectors
// — the tie-break when several donors are structurally equidistant, and
// the whole story for a weight sweep (structural distance 0).
func (a *designFP) weightDistance(b *designFP) float64 {
	d := 0.0
	for i := range a.weights {
		d += math.Abs(a.weights[i] - b.weights[i])
	}
	return d
}

// similar scans the cached entries for the nearest donor to fp: minimum
// structural distance within maxDeltaDistance, ties broken by weight
// distance, then by recency (scan order is most-recently-used first).
// Every call counts as exactly one similarity hit or miss.
func (c *resultCache) similar(fp *designFP) *core.Result {
	if fp == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *cacheEntry
	bestD := -1
	bestW := 0.0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.fp == nil {
			continue
		}
		d := fp.distance(ent.fp)
		if d < 0 || d > maxDeltaDistance {
			continue
		}
		w := fp.weightDistance(ent.fp)
		if best == nil || d < bestD || (d == bestD && w < bestW) {
			best, bestD, bestW = ent, d, w
		}
	}
	if best == nil {
		c.simMisses++
		return nil
	}
	c.simHits++
	return best.res
}
