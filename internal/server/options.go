package server

import (
	"fmt"
	"net/url"
	"strconv"
	"time"

	"columbas/internal/core"
)

// JobRequestSchema identifies the POST /v2/jobs request envelope.
const JobRequestSchema = "columbas-jobrequest/v1"

// JobRequest is the columbas-jobrequest/v1 envelope: netlist source
// plus the shared options spec. The same OptionSpec drives the
// columbas CLI flags and (as deprecated query aliases) /v1/synthesize,
// so every surface validates options identically.
type JobRequest struct {
	// Schema, when non-empty, must be JobRequestSchema.
	Schema string `json:"schema,omitempty"`
	// Netlist is the netlist source text.
	Netlist string `json:"netlist"`
	// Format optionally pins the job's default render format; GET
	// /v2/jobs/{id}/result still negotiates per request.
	Format string `json:"format,omitempty"`
	// Options is the synthesis option set (columbas-options/v1).
	Options core.OptionSpec `json:"options"`
}

// specFromQuery maps the deprecated /v1 query parameters onto the
// shared OptionSpec. Only the historical v1 names are accepted here;
// the error messages are pinned by the v1 test suite.
func specFromQuery(q url.Values) (core.OptionSpec, error) {
	var sp core.OptionSpec
	if v := q.Get("muxes"); v != "" {
		mx, err := strconv.Atoi(v)
		if err != nil || (mx != 1 && mx != 2) {
			return sp, fmt.Errorf("muxes must be 1 or 2")
		}
		sp.Muxes = mx
	}
	sp.Time = q.Get("time")
	sp.Effort = q.Get("effort")
	if v := q.Get("workers"); v != "" {
		wk, err := strconv.Atoi(v)
		if err != nil || wk < 1 {
			// v1 never accepted -1; the JSON envelope does.
			return sp, fmt.Errorf("workers must be a positive integer")
		}
		sp.Workers = wk
	}
	switch v := q.Get("nodrc"); v {
	case "", "0", "false":
	case "1", "true":
		sp.NoDRC = true
	default:
		return sp, fmt.Errorf("nodrc must be boolean")
	}
	sp.Timeout = q.Get("timeout")
	return sp, nil
}

// resolveOptions overlays a request spec onto this server's configured
// defaults and applies the server-side clamps: the MILP budget never
// exceeds MaxLayoutTime and clients may lower, never raise, the worker
// count. The returned timeout is the job's wall-clock budget
// (DefaultTimeout when the spec carries none; 0 = no deadline).
func (s *Server) resolveOptions(sp core.OptionSpec) (core.Options, time.Duration, error) {
	base := core.DefaultOptions()
	base.Layout.Workers = s.cfg.Workers
	base.Layout.NoCuts = s.cfg.NoCuts
	base.Layout.NoPresolve = s.cfg.NoPresolve
	base.Layout.Branching = s.cfg.Branching
	base.Layout.Kernel = s.cfg.Kernel
	base.NoDelta = s.cfg.NoDelta
	opt, err := sp.Apply(base)
	if err != nil {
		return opt, 0, err
	}
	if opt.Layout.TimeLimit > s.cfg.MaxLayoutTime {
		opt.Layout.TimeLimit = s.cfg.MaxLayoutTime
	}
	if opt.Layout.Workers < 0 || opt.Layout.Workers > s.cfg.Workers {
		opt.Layout.Workers = s.cfg.Workers
	}
	timeout, err := sp.ParseTimeout()
	if err != nil {
		return opt, 0, err
	}
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	return opt, timeout, nil
}
