package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"columbas/internal/core"
	"columbas/internal/export"
	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/obs"
)

// Config parameterizes a synthesis server. The zero value is usable:
// every field has a production default filled in by New.
type Config struct {
	// Jobs bounds the number of synthesis runs in flight at once; further
	// admitted jobs queue until a slot frees or their deadline fires. 0
	// means runtime.GOMAXPROCS(0).
	Jobs int
	// MaxQueue bounds the number of admitted-but-not-running jobs. A
	// submission past pool+queue capacity is shed with 429 and a
	// Retry-After hint instead of waiting. 0 means 8×Jobs; negative
	// means no queue at all (shed whenever the pool is full).
	MaxQueue int
	// Workers is the MILP branch-and-bound parallelism of each job
	// (layout.Options.Workers). 0 means 1 — with a full pool, Jobs
	// sequential solves already saturate the cores; raise Workers and
	// lower Jobs to trade throughput for latency. Negative means all
	// cores. Clients may lower (never raise) it per request via
	// ?workers=.
	Workers int
	// CacheEntries bounds the content-addressed result cache. 0 means the
	// default of 128 completed designs; negative disables caching.
	CacheEntries int
	// DefaultTimeout is the per-request synthesis deadline applied when
	// the client sends no ?timeout=. 0 means the default of 2 minutes;
	// negative means no implicit deadline.
	DefaultTimeout time.Duration
	// MaxLayoutTime caps the per-request MILP budget (?time=). 0 means
	// the default of 5 minutes.
	MaxLayoutTime time.Duration
	// MaxBodyBytes caps the netlist source size. 0 means 1 MiB.
	MaxBodyBytes int64
	// JobTTL is how long a terminal job resource stays retrievable via
	// GET /v2/jobs/{id} after it finishes. 0 means the default of 5
	// minutes; negative retains jobs until process exit.
	JobTTL time.Duration
	// TraceSink, when non-nil, receives one columbas-trace/v1 JSON
	// document per line for every synthesis request (cache hits
	// included: their trace is the single "cache" span). Writes are
	// serialized by the server.
	TraceSink io.Writer
	// NoCuts disables root cutting planes in every layout MILP served
	// by this process (ablation deployments).
	NoCuts bool
	// NoPresolve disables MILP presolve (bound tightening, redundant
	// rows, coefficient strengthening).
	NoPresolve bool
	// NoDelta disables the delta-aware warm-start pipeline for every job
	// served by this process: no similarity-index donors, no /v2/explore
	// hint chaining — every solve runs cold (ablation deployments).
	NoDelta bool
	// Branching selects the branch-and-bound variable selection rule;
	// the zero value is pseudocost branching.
	Branching milp.BranchRule
	// Kernel selects the LP basis engine for every layout MILP served by
	// this process (layout.Options.Kernel): auto (zero value), dense or
	// sparse.
	Kernel lp.Kernel
}

// drainRetryAfter is the backoff hint sent with draining refusals: the
// client should come back once a replacement instance took over.
const drainRetryAfter = 5 * time.Second

// Server is the columbasd HTTP API: synthesis as asynchronous job
// resources (POST /v2/jobs + status, result, SSE progress and cancel
// subresources) behind an admission-controlled bounded worker pool,
// with a content-addressed result cache and a TTL'd job store.
// /v1/synthesize remains as a synchronous wrapper over the same job
// path. It implements http.Handler; see docs/api.md for the wire
// contract.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	sem   chan struct{} // counting semaphore: one token per running job
	cache *resultCache
	adm   *admission
	jobs  *jobStore
	start time.Time

	draining atomic.Bool
	active   atomic.Int64

	jobsWG sync.WaitGroup // one count per spawned job goroutine

	mu       sync.Mutex // guards activeHW
	activeHW int64

	completed atomic.Int64
	failed    atomic.Int64
	timeouts  atomic.Int64
	canceled  atomic.Int64

	// Cumulative LP-kernel work across all completed syntheses (cache
	// hits contribute nothing — no solver ran).
	lpSolves      atomic.Int64
	simplexPivots atomic.Int64
	warmStarts    atomic.Int64
	etaUpdates    atomic.Int64
	refactors     atomic.Int64
	sparseRefacs  atomic.Int64
	denseFBs      atomic.Int64
	fillIn        atomic.Int64
	basisNnz      atomic.Int64 // high-water max, not a sum
	wsReuses      atomic.Int64
	cutsAdded     atomic.Int64
	cutRounds     atomic.Int64
	nodesPresolve atomic.Int64
	boundsTight   atomic.Int64
	branchings    atomic.Int64
	pcBranches    atomic.Int64
	deltaWarms    atomic.Int64
	deltaFBs      atomic.Int64
	incFromHint   atomic.Int64

	traceMu sync.Mutex
}

// New builds a Server, filling config defaults.
func New(cfg Config) *Server {
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 8 * cfg.Jobs
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0 // no queue: shed when the pool is full
	}
	switch {
	case cfg.Workers == 0:
		cfg.Workers = 1
	case cfg.Workers < 0:
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.CacheEntries == 0:
		cfg.CacheEntries = 128
	case cfg.CacheEntries < 0:
		cfg.CacheEntries = 0 // disabled
	}
	switch {
	case cfg.DefaultTimeout == 0:
		cfg.DefaultTimeout = 2 * time.Minute
	case cfg.DefaultTimeout < 0:
		cfg.DefaultTimeout = 0 // no implicit deadline
	}
	if cfg.MaxLayoutTime <= 0 {
		cfg.MaxLayoutTime = 5 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	switch {
	case cfg.JobTTL == 0:
		cfg.JobTTL = 5 * time.Minute
	case cfg.JobTTL < 0:
		cfg.JobTTL = 0 // retain until process exit
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.Jobs),
		cache: newResultCache(cfg.CacheEntries),
		adm:   newAdmission(cfg.Jobs, cfg.MaxQueue),
		jobs:  newJobStore(cfg.JobTTL),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/formats", s.handleFormats)
	s.mux.HandleFunc("POST /v2/jobs", s.handleJobCreate)
	s.mux.HandleFunc("POST /v2/explore", s.handleExplore)
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v2/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v2/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain flips the server into shutdown mode: /readyz turns 503 so load
// balancers stop routing here, and new synthesis submissions are
// refused with 503 while in-flight jobs run to completion. Pair it
// with http.Server.Shutdown (which waits for open connections) and
// WaitIdle (which waits for detached async jobs).
func (s *Server) Drain() { s.draining.Store(true) }

// WaitIdle blocks until every spawned job goroutine has reached a
// terminal state, or ctx fires. Async jobs outlive their submitting
// connection, so http.Server.Shutdown alone does not cover them; a
// graceful exit is Drain, then Shutdown, then WaitIdle.
func (s *Server) WaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is the GET /v1/stats document.
type Stats struct {
	// Schema identifies this document layout.
	Schema string `json:"schema"`
	// UptimeMS is the server's age in milliseconds.
	UptimeMS int64 `json:"uptime_ms"`
	// Pool reports the worker-pool state.
	Pool PoolStats `json:"pool"`
	// Admission reports the load-shedding layer in front of the pool.
	Admission AdmissionStats `json:"admission"`
	// Jobs reports the v2 job store.
	Jobs JobStats `json:"jobs"`
	// Requests reports the synthesis request counters.
	Requests RequestStats `json:"requests"`
	// Solver aggregates LP-kernel work across completed syntheses.
	Solver SolverStats `json:"solver"`
	// Cache reports the content-addressed result cache counters.
	Cache CacheStats `json:"cache"`
}

// StatsSchema is the Stats document schema identifier.
const StatsSchema = "columbas-serverstats/v1"

// PoolStats describes the bounded worker pool.
type PoolStats struct {
	// Jobs is the pool bound; Workers the MILP parallelism of each job.
	Jobs    int `json:"jobs"`
	Workers int `json:"workers"`
	// Active is the number of running synthesis jobs; Queued the number
	// admitted but waiting for a slot; ActiveHighWater the maximum of
	// Active since start (never exceeds Jobs).
	Active          int64 `json:"active"`
	Queued          int64 `json:"queued"`
	ActiveHighWater int64 `json:"active_high_water"`
	// Draining reports shutdown mode.
	Draining bool `json:"draining"`
}

// RequestStats counts synthesis jobs by outcome, v1 and v2 combined.
// Cache hits are counted under Completed as well as in CacheStats.Hits.
type RequestStats struct {
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Timeouts  int64 `json:"timeouts"`
	Canceled  int64 `json:"canceled"`
}

// SolverStats is the cumulative LP-kernel work behind every completed
// synthesis — the milp_* counter family of docs/metrics.md summed over
// requests (cache hits run no solver and add nothing). It makes kernel
// health observable in production without tracing: warm_starts near
// lp_solves and workspace_reuses near warm_starts mean the factorization
// cache is doing its job; a rising refactorizations share means bases
// are churning.
// The search-tree reduction family (cuts_added onward) mirrors the same
// health story for the branch-and-bound layer: cuts_added and
// bounds_tightened near zero on a default deployment mean the reductions
// have nothing to bite on; pseudocost_branches near branchings means the
// reliability phase has converged.
type SolverStats struct {
	LPSolves         int64 `json:"lp_solves"`
	SimplexPivots    int64 `json:"simplex_pivots"`
	WarmStarts       int64 `json:"warm_starts"`
	EtaUpdates       int64 `json:"eta_updates"`
	Refactorizations int64 `json:"refactorizations"`
	// SparseRefactorizations ≤ Refactorizations is the sparse LU engine's
	// share; DenseFallbacks counts sparse factorizations abandoned to the
	// dense engine on fill blow-up; FillIn is the cumulative LU fill; and
	// BasisNonzeros is the high-water basis density seen by any worker
	// (a max across requests, not a sum).
	SparseRefactorizations int64 `json:"sparse_refactorizations"`
	DenseFallbacks         int64 `json:"dense_fallbacks"`
	FillIn                 int64 `json:"fill_in"`
	BasisNonzeros          int64 `json:"basis_nonzeros"`
	WorkspaceReuses        int64 `json:"workspace_reuses"`
	CutsAdded              int64 `json:"cuts_added"`
	CutRounds              int64 `json:"cut_rounds"`
	NodesPresolved         int64 `json:"nodes_presolved"`
	BoundsTightened        int64 `json:"bounds_tightened"`
	Branchings             int64 `json:"branchings"`
	PseudocostBranches     int64 `json:"pseudocost_branches"`
	// The delta family mirrors the milp_delta_* counters: warm starts and
	// fallbacks of the delta-aware pipeline, and incumbents seeded from a
	// donor design. All three stay zero on a -no-delta deployment.
	DeltaWarmStarts   int64 `json:"delta_warm_starts"`
	DeltaFallbacks    int64 `json:"delta_fallbacks"`
	IncumbentFromHint int64 `json:"incumbent_from_hint"`
}

// recordSolverStats folds a completed synthesis's search counters into
// the server-lifetime solver block.
func (s *Server) recordSolverStats(res *core.Result) {
	if res == nil || res.Plan == nil {
		return
	}
	se := res.Plan.Stats.Search
	s.lpSolves.Add(se.LPSolves)
	s.simplexPivots.Add(se.SimplexPivots)
	s.warmStarts.Add(se.WarmStarts)
	s.etaUpdates.Add(se.EtaUpdates)
	s.refactors.Add(se.Refactorizations)
	s.sparseRefacs.Add(se.SparseRefactorizations)
	s.denseFBs.Add(se.DenseFallbacks)
	s.fillIn.Add(se.FillIn)
	// BasisNonzeros is a high-water mark: CAS-max rather than add.
	for {
		cur := s.basisNnz.Load()
		if se.BasisNonzeros <= cur || s.basisNnz.CompareAndSwap(cur, se.BasisNonzeros) {
			break
		}
	}
	s.wsReuses.Add(se.WorkspaceReuses)
	s.cutsAdded.Add(se.CutsAdded)
	s.cutRounds.Add(se.CutRounds)
	s.nodesPresolve.Add(se.NodesPresolved)
	s.boundsTight.Add(se.BoundsTightened)
	s.branchings.Add(se.Branchings)
	s.pcBranches.Add(se.PseudocostBranches)
	s.deltaWarms.Add(se.DeltaWarmStarts)
	s.deltaFBs.Add(se.DeltaFallbacks)
	s.incFromHint.Add(se.IncumbentFromHint)
}

// snapshot assembles the current Stats.
func (s *Server) snapshot() Stats {
	s.mu.Lock()
	hw := s.activeHW
	s.mu.Unlock()
	adm := s.adm.snapshot()
	return Stats{
		Schema:   StatsSchema,
		UptimeMS: time.Since(s.start).Milliseconds(),
		Pool: PoolStats{
			Jobs:            s.cfg.Jobs,
			Workers:         s.cfg.Workers,
			Active:          s.active.Load(),
			Queued:          adm.Queued,
			ActiveHighWater: hw,
			Draining:        s.draining.Load(),
		},
		Admission: adm,
		Jobs:      s.jobs.stats(),
		Requests: RequestStats{
			Completed: s.completed.Load(),
			Failed:    s.failed.Load(),
			Timeouts:  s.timeouts.Load(),
			Canceled:  s.canceled.Load(),
		},
		Solver: SolverStats{
			LPSolves:               s.lpSolves.Load(),
			SimplexPivots:          s.simplexPivots.Load(),
			WarmStarts:             s.warmStarts.Load(),
			EtaUpdates:             s.etaUpdates.Load(),
			Refactorizations:       s.refactors.Load(),
			SparseRefactorizations: s.sparseRefacs.Load(),
			DenseFallbacks:         s.denseFBs.Load(),
			FillIn:                 s.fillIn.Load(),
			BasisNonzeros:          s.basisNnz.Load(),
			WorkspaceReuses:        s.wsReuses.Load(),
			CutsAdded:              s.cutsAdded.Load(),
			CutRounds:              s.cutRounds.Load(),
			NodesPresolved:         s.nodesPresolve.Load(),
			BoundsTightened:        s.boundsTight.Load(),
			Branchings:             s.branchings.Load(),
			PseudocostBranches:     s.pcBranches.Load(),
			DeltaWarmStarts:        s.deltaWarms.Load(),
			DeltaFallbacks:         s.deltaFBs.Load(),
			IncumbentFromHint:      s.incFromHint.Load(),
		},
		Cache: s.cache.stats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.snapshot())
}

func (s *Server) handleFormats(w http.ResponseWriter, r *http.Request) {
	type fj struct {
		Name    string   `json:"name"`
		MIME    string   `json:"mime"`
		Aliases []string `json:"aliases,omitempty"`
	}
	var out []fj
	for _, f := range export.Formats() {
		out = append(out, fj{Name: f.Name, MIME: f.MIME, Aliases: f.Aliases})
	}
	writeJSON(w, http.StatusOK, out)
}

// chooseFormat resolves the response format: an explicit ?format= wins,
// otherwise the Accept header is negotiated against the registry, and
// an absent or fully wildcarded preference defaults to JSON.
func chooseFormat(formatParam, accept string) (export.Format, int, error) {
	if formatParam != "" {
		f, ok := export.Lookup(formatParam)
		if !ok {
			return f, http.StatusBadRequest, fmt.Errorf(
				"unknown format %q (want one of %s)", formatParam, strings.Join(export.Names(), ", "))
		}
		return f, 0, nil
	}
	if a := strings.TrimSpace(accept); a == "" || a == "*/*" {
		f, _ := export.Lookup("json")
		return f, 0, nil
	}
	f, ok := export.Negotiate(accept)
	if !ok {
		return f, http.StatusNotAcceptable, fmt.Errorf(
			"no acceptable format for %q (available: %s)", accept, strings.Join(export.Names(), ", "))
	}
	return f, 0, nil
}

// render writes the design in the negotiated format. The body is
// buffered first so a writer error can still become a clean 500 instead
// of a torn 200.
func (s *Server) render(w http.ResponseWriter, fm export.Format, res *core.Result, key cacheKey, cache string) {
	var buf bytes.Buffer
	if err := fm.Write(&buf, res.Design, res.Plan); err != nil {
		s.failed.Add(1)
		writeError(w, http.StatusInternalServerError,
			errDoc(CodeRender, fmt.Sprintf("rendering %s: %v", fm.Name, err)))
		return
	}
	h := w.Header()
	h.Set("Content-Type", fm.MIME)
	h.Set("X-Columbas-Cache", cache)
	h.Set("X-Columbas-Key", key.String())
	h.Set("X-Columbas-Runtime", res.Runtime.String())
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes())
}

// emitHitTrace records a cache hit as a single-span trace (the
// "surfaced through the obs trace" contract for requests that never
// reach the pipeline).
func (s *Server) emitHitTrace(name string) {
	if s.cfg.TraceSink == nil {
		return
	}
	tr := obs.New(name)
	sp := tr.Phase("cache")
	sp.Label("result", "hit")
	cs := s.cache.stats()
	sp.SetInt("hits", cs.Hits)
	sp.SetInt("misses", cs.Misses)
	sp.SetInt("evictions", cs.Evictions)
	sp.End()
	s.emitTrace(tr)
}

// emitTrace finishes tr and appends it to the trace sink as one compact
// columbas-trace/v1 JSON line. No-op on a nil trace or sink.
func (s *Server) emitTrace(tr *obs.Trace) {
	if tr == nil || s.cfg.TraceSink == nil {
		return
	}
	tr.Finish()
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	json.NewEncoder(s.cfg.TraceSink).Encode(tr.Snapshot())
}
