package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"columbas/internal/core"
	"columbas/internal/netlist"
)

// tinyEditedSrc is tinySrc one unit-edit away: an extra chamber hung off
// c1. Structural distance 2 (one unit row, one net token) — well inside
// maxDeltaDistance, so a cached tinySrc design donates a warm hint.
const tinyEditedSrc = `design tiny
unit m1 mixer
unit c1 chamber
unit c2 chamber
connect in:a m1
connect m1 c1
connect c1 c2
connect c2 out:w
`

func mustParse(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDesignFPDistance(t *testing.T) {
	opt := core.DefaultOptions()
	base := newDesignFP(mustParse(t, tinySrc), opt)

	// Same netlist, same options: distance 0 both ways.
	if d := base.distance(newDesignFP(mustParse(t, tinySrc), opt)); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}

	// Same netlist, different objective weights: structural distance stays
	// 0 (weights are excluded from optHash), weight distance is the L1 gap.
	wopt := opt
	wopt.Layout.Alpha += 2
	wopt.Layout.Kappa += 0.5
	wfp := newDesignFP(mustParse(t, tinySrc), wopt)
	if d := base.distance(wfp); d != 0 {
		t.Fatalf("weight-only distance = %d, want 0", d)
	}
	if w := base.weightDistance(wfp); w != 2.5 {
		t.Fatalf("weightDistance = %g, want 2.5", w)
	}

	// One unit edit: small positive distance within the admission bound.
	efp := newDesignFP(mustParse(t, tinyEditedSrc), opt)
	d := base.distance(efp)
	if d <= 0 || d > maxDeltaDistance {
		t.Fatalf("one-edit distance = %d, want in (0, %d]", d, maxDeltaDistance)
	}
	if d2 := efp.distance(base); d2 != d {
		t.Fatalf("distance asymmetric: %d vs %d", d, d2)
	}

	// Model-shaping option mismatch: incompatible, reported as -1.
	copt := opt
	copt.Layout.NoCuts = true
	if d := base.distance(newDesignFP(mustParse(t, tinySrc), copt)); d != -1 {
		t.Fatalf("optHash-mismatch distance = %d, want -1", d)
	}
	mn := mustParse(t, tinySrc)
	mn.Muxes = 2
	if d := base.distance(newDesignFP(mn, opt)); d != -1 {
		t.Fatalf("mux-mismatch distance = %d, want -1", d)
	}

	// An unrelated design differs in nearly every token — past the bound.
	big := "design big\n"
	for i := 0; i < 12; i++ {
		big += fmt.Sprintf("unit u%d mixer\nconnect in:i%d u%d\nconnect u%d out:o%d\n", i, i, i, i, i)
	}
	if d := base.distance(newDesignFP(mustParse(t, big), opt)); d <= maxDeltaDistance {
		t.Fatalf("unrelated-design distance = %d, want > %d", d, maxDeltaDistance)
	}
}

// TestSimilarityDonorWarmStart drives the organic near-miss path end to
// end: a cached design one edit away is found by the similarity index on
// the exact-key miss, and the solve runs with its warm hint (visible in
// the delta counters — per round with a hint exactly one of warm-starts
// and fallbacks increments).
func TestSimilarityDonorWarmStart(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1, CacheEntries: 16})

	resp, body := post(t, ts.URL+"/v1/synthesize", tinySrc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed solve: status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/synthesize", tinyEditedSrc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edited solve: status %d: %s", resp.StatusCode, body)
	}
	if c := resp.Header.Get("X-Columbas-Cache"); c != "miss" {
		t.Fatalf("edited design hit the exact cache (%q) — test is vacuous", c)
	}

	st := getStats(t, ts.URL)
	if st.Cache.SimilarityHits != 1 {
		t.Fatalf("similarity_hits = %d, want 1 (misses %d)",
			st.Cache.SimilarityHits, st.Cache.SimilarityMisses)
	}
	if got := st.Solver.DeltaWarmStarts + st.Solver.DeltaFallbacks; got == 0 {
		t.Fatal("solve had a donor hint but neither delta counter moved")
	}
	if st.Solver.IncumbentFromHint > st.Solver.DeltaWarmStarts {
		t.Fatalf("incumbent_from_hint %d > delta_warm_starts %d",
			st.Solver.IncumbentFromHint, st.Solver.DeltaWarmStarts)
	}
}

// TestSimilarityDisabledByNoDelta checks the -no-delta ablation: the
// similarity index is never consulted and the delta counters stay zero.
func TestSimilarityDisabledByNoDelta(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1, CacheEntries: 16, NoDelta: true})

	for _, src := range []string{tinySrc, tinyEditedSrc} {
		resp, body := post(t, ts.URL+"/v1/synthesize", src)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	st := getStats(t, ts.URL)
	if st.Cache.SimilarityHits != 0 || st.Cache.SimilarityMisses != 0 {
		t.Fatalf("similarity index consulted under -no-delta: hits %d misses %d",
			st.Cache.SimilarityHits, st.Cache.SimilarityMisses)
	}
	if st.Solver.DeltaWarmStarts != 0 || st.Solver.DeltaFallbacks != 0 {
		t.Fatalf("delta counters moved under -no-delta: %+v", st.Solver)
	}
}

func postExplore(t *testing.T, url string, er ExploreRequest) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(er)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v2/explore", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestExploreSweep runs a 2×2 (α, β) grid over the tiny netlist and
// checks the columbas-explore/v1 contract: every cell a real succeeded
// job, the first cold, every later cell chained to a finished donor, and
// a consistent Pareto frontier.
func TestExploreSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1, CacheEntries: 16})

	resp, body := postExplore(t, ts.URL, ExploreRequest{
		Schema:  ExploreRequestSchema,
		Netlist: tinySrc,
		Sweep:   ExploreSweep{Alpha: []float64{1, 2}, Beta: []float64{1, 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc ExploreDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	if doc.Schema != ExploreSchema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(doc.Cells))
	}
	for i, c := range doc.Cells {
		if c.State != JobSucceeded {
			t.Fatalf("cell %d state = %q: %+v", i, c.State, c.Error)
		}
		if c.Metrics == nil || c.Metrics.WidthMM <= 0 {
			t.Fatalf("cell %d has no metrics", i)
		}
		if c.Job == "" {
			t.Fatalf("cell %d has no job id", i)
		}
		// Each cell is a real job resource.
		jr, err := http.Get(ts.URL + "/v2/jobs/" + c.Job)
		if err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if jr.StatusCode != http.StatusOK {
			t.Fatalf("cell %d job GET: status %d", i, jr.StatusCode)
		}
		if i == 0 && c.Donor != -1 {
			t.Fatalf("first cell has donor %d, want -1 (cold)", c.Donor)
		}
		if i > 0 && (c.Donor < 0 || c.Donor >= i) {
			t.Fatalf("cell %d donor = %d, want a finished predecessor", i, c.Donor)
		}
	}
	if len(doc.Frontier) == 0 || len(doc.Frontier) > 4 {
		t.Fatalf("frontier = %v", doc.Frontier)
	}
	for _, i := range doc.Frontier {
		if i < 0 || i >= len(doc.Cells) || doc.Cells[i].State != JobSucceeded {
			t.Fatalf("frontier index %d invalid", i)
		}
	}
	if doc.WallMS <= 0 || doc.TotalSolveMS <= 0 {
		t.Fatalf("walls: sweep %g, solve %g", doc.WallMS, doc.TotalSolveMS)
	}

	st := getStats(t, ts.URL)
	if st.Solver.DeltaWarmStarts+st.Solver.DeltaFallbacks == 0 {
		t.Fatal("sweep chained donors but no delta counter moved")
	}
}

func TestExploreBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})

	tooWide := make([]float64, maxExploreCells+1)
	for i := range tooWide {
		tooWide[i] = float64(i + 1)
	}
	for _, tc := range []struct {
		name string
		er   ExploreRequest
		want int
	}{
		{"bad schema", ExploreRequest{Schema: "bogus/v9", Netlist: tinySrc}, http.StatusBadRequest},
		{"negative sweep value", ExploreRequest{Netlist: tinySrc,
			Sweep: ExploreSweep{Alpha: []float64{-1}}}, http.StatusBadRequest},
		{"netlist parse error", ExploreRequest{Netlist: "not a netlist"}, http.StatusBadRequest},
		{"grid too large", ExploreRequest{Netlist: tinySrc,
			Sweep: ExploreSweep{Alpha: tooWide}}, http.StatusBadRequest},
		{"semantic error", ExploreRequest{Netlist: "design d\nunit m1 mixer\n"},
			http.StatusUnprocessableEntity},
	} {
		resp, body := postExplore(t, ts.URL, tc.er)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.want, body)
		}
	}

	// Unknown top-level fields are rejected, not ignored.
	resp, err := http.Post(ts.URL+"/v2/explore", "application/json",
		bytes.NewReader([]byte(`{"netlist": "x", "surprise": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}
