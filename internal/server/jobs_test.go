package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"columbas/internal/cases"
)

// postJob submits a columbas-jobrequest/v1 envelope and decodes the
// job resource from the reply.
func postJob(t *testing.T, base string, req map[string]any) (*http.Response, JobDoc) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v2/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc JobDoc
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("decoding job doc: %v\n%s", err, body)
		}
	}
	return resp, doc
}

// getJob fetches the job resource.
func getJob(t *testing.T, base, id string) (int, JobDoc) {
	t.Helper()
	resp, err := http.Get(base + "/v2/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc JobDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("decoding job doc: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, doc
}

// waitTerminal polls the job resource until it reaches a terminal
// state.
func waitTerminal(t *testing.T, base, id string) JobDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, doc := getJob(t, base, id)
		if status != http.StatusOK {
			t.Fatalf("GET job %s = %d while waiting", id, status)
		}
		if doc.State.Terminal() {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, doc.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// deleteJob issues the cancel request.
func deleteJob(t *testing.T, base, id string) (int, JobDoc) {
	t.Helper()
	req, _ := http.NewRequest("DELETE", base+"/v2/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc JobDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("decoding job doc: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, doc
}

// readSSE consumes a running SSE stream until the terminal state event
// (or EOF) and returns every decoded event.
func readSSE(t *testing.T, body io.Reader) []JobEvent {
	t.Helper()
	var evs []JobEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad SSE data line: %v\n%s", err, line)
		}
		evs = append(evs, ev)
		if ev.Type == "state" && ev.State.Terminal() {
			return evs
		}
	}
	return evs
}

// slowJobReq is a chip64 full-effort solve: long enough to still be
// running when a cancel, drain or competing request lands.
func slowJobReq(t *testing.T) map[string]any {
	t.Helper()
	c, err := cases.Get("chip64")
	if err != nil {
		t.Fatal(err)
	}
	return map[string]any{
		"schema":  JobRequestSchema,
		"netlist": c.Source,
		"options": map[string]any{"effort": "full", "time": "30s", "timeout": "30s"},
	}
}

// TestJobLifecycleAsync walks the happy path: submit → 202 + Location,
// poll to succeeded, fetch the rendered result, and check the sync v1
// wrapper serves the byte-identical design for the same request.
func TestJobLifecycleAsync(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 2})
	resp, doc := postJob(t, ts.URL, map[string]any{
		"schema":  JobRequestSchema,
		"netlist": tinySrc,
		"options": map[string]any{},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/jobs = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v2/jobs/"+doc.ID {
		t.Fatalf("Location = %q, want /v2/jobs/%s", loc, doc.ID)
	}
	if doc.Schema != JobSchema || doc.ID == "" || doc.Name != "tiny" {
		t.Fatalf("job doc = %+v", doc)
	}
	if doc.Links["events"] != "/v2/jobs/"+doc.ID+"/events" {
		t.Fatalf("links = %+v", doc.Links)
	}
	if !doc.Options.RunDRC {
		t.Fatal("resolved options not embedded in job doc")
	}

	final := waitTerminal(t, ts.URL, doc.ID)
	if final.State != JobSucceeded {
		t.Fatalf("final state = %s (error %+v)", final.State, final.Error)
	}
	if final.Cache != "miss" || final.Metrics == nil || final.Metrics.Name != "tiny" {
		t.Fatalf("final doc = %+v", final)
	}
	if final.StartedAt == nil || final.FinishedAt == nil || final.ExpiresAt == nil {
		t.Fatalf("terminal doc missing timestamps: %+v", final)
	}

	rresp, err := http.Get(ts.URL + "/v2/jobs/" + doc.ID + "/result?format=json")
	if err != nil {
		t.Fatal(err)
	}
	v2body, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", rresp.StatusCode, v2body)
	}
	if c := rresp.Header.Get("X-Columbas-Cache"); c != "miss" {
		t.Fatalf("result X-Columbas-Cache = %q", c)
	}

	// The v1 sync wrapper runs the same job path: identical key, and a
	// byte-identical design (served from the cache the job filled).
	v1resp, v1body := post(t, ts.URL+"/v1/synthesize?format=json", tinySrc)
	if v1resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 status %d", v1resp.StatusCode)
	}
	if v1resp.Header.Get("X-Columbas-Key") != final.Key {
		t.Fatalf("v1 key %q != job key %q", v1resp.Header.Get("X-Columbas-Key"), final.Key)
	}
	if !bytes.Equal(v1body, v2body) {
		t.Fatal("v1 and v2 render differ for the same request")
	}

	// Re-submitting the same envelope is a cache hit: the job is born
	// terminal in the 202 reply.
	resp2, doc2 := postJob(t, ts.URL, map[string]any{
		"schema":  JobRequestSchema,
		"netlist": tinySrc,
		"options": map[string]any{},
	})
	if resp2.StatusCode != http.StatusAccepted || doc2.State != JobSucceeded || doc2.Cache != "hit" {
		t.Fatalf("hit submit = %d %+v", resp2.StatusCode, doc2)
	}
}

// TestJobRawBodySubmit covers the curl-convenience form: raw netlist
// body with v1-style query parameters.
func TestJobRawBodySubmit(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	resp, err := http.Post(ts.URL+"/v2/jobs?effort=seed&nodrc=1", "text/plain", strings.NewReader(tinySrc))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("raw submit = %d: %s", resp.StatusCode, body)
	}
	var doc JobDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Options.RunDRC || !doc.Options.Layout.SkipMILP {
		t.Fatalf("query options not applied: %+v", doc.Options)
	}
	final := waitTerminal(t, ts.URL, doc.ID)
	if final.State != JobSucceeded {
		t.Fatalf("final state = %s", final.State)
	}
}

// TestJobEventsStream checks the SSE progress stream: lifecycle state
// events interleaved with live pipeline spans, ordered seq, and a
// replay (with Last-Event-ID resume) after the job finished.
func TestJobEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	_, doc := postJob(t, ts.URL, map[string]any{
		"schema":  JobRequestSchema,
		"netlist": tinySrc,
	})
	resp, err := http.Get(ts.URL + "/v2/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	evs := readSSE(t, resp.Body)
	if len(evs) < 4 {
		t.Fatalf("only %d events: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Schema != JobEventSchema || ev.Job != doc.ID {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[0].Type != "state" || evs[0].State != JobQueued {
		t.Fatalf("first event = %+v", evs[0])
	}
	paths := map[string]bool{}
	var sawRunning bool
	for _, ev := range evs {
		if ev.Type == "state" && ev.State == JobRunning {
			sawRunning = true
		}
		if ev.Type == "span-end" {
			paths[ev.Path] = true
		}
	}
	if !sawRunning {
		t.Fatal("no running state event")
	}
	for _, want := range []string{"cache", "planarize", "layout", "validate", "drc"} {
		if !paths[want] {
			t.Fatalf("no span-end for %q (saw %v)", want, paths)
		}
	}
	last := evs[len(evs)-1]
	if last.Type != "state" || last.State != JobSucceeded || last.Cache != "miss" {
		t.Fatalf("terminal event = %+v", last)
	}
	// The layout span-end carries the solver counters of docs/metrics.md.
	var layoutEnd *JobEvent
	for i := range evs {
		if evs[i].Type == "span-end" && evs[i].Path == "layout" {
			layoutEnd = &evs[i]
		}
	}
	if layoutEnd == nil || layoutEnd.Labels["status"] == "" {
		t.Fatalf("layout span-end lacks counters/labels: %+v", layoutEnd)
	}
	if _, ok := layoutEnd.Counters["milp_nodes"]; !ok {
		t.Fatalf("layout span-end lacks milp_nodes counter: %+v", layoutEnd.Counters)
	}

	// Replay after completion: the full backlog again, then resume past
	// a Last-Event-ID skips what was already seen.
	resp2, err := http.Get(ts.URL + "/v2/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay := readSSE(t, resp2.Body)
	resp2.Body.Close()
	if len(replay) != len(evs) {
		t.Fatalf("replay has %d events, live had %d", len(replay), len(evs))
	}
	req, _ := http.NewRequest("GET", ts.URL+"/v2/jobs/"+doc.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(len(evs)-1))
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resumed := readSSE(t, resp3.Body)
	resp3.Body.Close()
	if len(resumed) != 1 || resumed[0].Seq != int64(len(evs)) {
		t.Fatalf("resume replay = %+v", resumed)
	}
}

// TestCancelRunningJobAndIdempotency cancels a long solve mid-flight
// via DELETE, then checks cancellation (and cancel-after-complete) is
// idempotent: repeated DELETEs return 200, counters move once, and the
// resource stays retrievable.
func TestCancelRunningJobAndIdempotency(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	resp, doc := postJob(t, ts.URL, slowJobReq(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	// Wait for the solve to actually start.
	deadline := time.Now().Add(10 * time.Second)
	for s.active.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	if status, _ := deleteJob(t, ts.URL, doc.ID); status != http.StatusOK {
		t.Fatalf("DELETE = %d", status)
	}
	final := waitTerminal(t, ts.URL, doc.ID)
	if final.State != JobCanceled {
		t.Fatalf("state after cancel = %s", final.State)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v to stop the solver", elapsed)
	}
	if final.Error == nil || final.Error.Code != CodeCanceled {
		t.Fatalf("canceled job error = %+v", final.Error)
	}
	if got := s.canceled.Load(); got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}
	// Cancel after complete: same answer, nothing moves.
	for i := 0; i < 2; i++ {
		status, doc2 := deleteJob(t, ts.URL, doc.ID)
		if status != http.StatusOK || doc2.State != JobCanceled {
			t.Fatalf("repeat DELETE %d = %d %s", i, status, doc2.State)
		}
	}
	if got := s.canceled.Load(); got != 1 {
		t.Fatalf("canceled counter moved on repeat DELETE: %d", got)
	}
	// The result subresource replays the terminal error.
	rresp, err := http.Get(ts.URL + "/v2/jobs/" + doc.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != 499 {
		t.Fatalf("result of canceled job = %d, want 499", rresp.StatusCode)
	}
}

// TestCancelCompletedJobIsNoOp: DELETE on a job that succeeded long ago
// answers 200 with the unchanged resource.
func TestCancelCompletedJobIsNoOp(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	_, doc := postJob(t, ts.URL, map[string]any{"netlist": tinySrc})
	final := waitTerminal(t, ts.URL, doc.ID)
	if final.State != JobSucceeded {
		t.Fatalf("state = %s", final.State)
	}
	status, doc2 := deleteJob(t, ts.URL, doc.ID)
	if status != http.StatusOK || doc2.State != JobSucceeded {
		t.Fatalf("DELETE completed = %d %s", status, doc2.State)
	}
	if s.canceled.Load() != 0 {
		t.Fatalf("canceled counter = %d after no-op DELETE", s.canceled.Load())
	}
}

// TestJobTTLExpiry: a terminal job answers 404 once its TTL passed,
// and the store's expired counter records the collection.
func TestJobTTLExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1, JobTTL: 50 * time.Millisecond})
	_, doc := postJob(t, ts.URL, map[string]any{"netlist": tinySrc})
	final := waitTerminal(t, ts.URL, doc.ID)
	if final.State != JobSucceeded {
		t.Fatalf("state = %s", final.State)
	}
	time.Sleep(120 * time.Millisecond)
	status, _ := getJob(t, ts.URL, doc.ID)
	if status != http.StatusNotFound {
		t.Fatalf("expired job GET = %d, want 404", status)
	}
	st := getStats(t, ts.URL)
	if st.Jobs.Expired < 1 {
		t.Fatalf("jobs stats = %+v, want >= 1 expired", st.Jobs)
	}
	if st.Jobs.TTLMS != 50 {
		t.Fatalf("ttl_ms = %d", st.Jobs.TTLMS)
	}
}

// TestAdmissionShed: with a single slot and no queue, a second request
// is shed with 429, a Retry-After hint and the overloaded error code —
// on both API versions — instead of piling up.
func TestAdmissionShed(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1, MaxQueue: -1})
	resp, slow := postJob(t, ts.URL, slowJobReq(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow submit = %d", resp.StatusCode)
	}
	// Wait until it occupies the pool.
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, ts.URL).Pool.Active != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow solve never took the slot")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// v2 shed.
	resp2, _ := postJob(t, ts.URL, map[string]any{"netlist": tinySrc})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("v2 overload = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 lacks Retry-After")
	}
	// v1 shed, with the structured envelope.
	v1resp, v1body := post(t, ts.URL+"/v1/synthesize", tinySrc)
	if v1resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("v1 overload = %d, want 429", v1resp.StatusCode)
	}
	if v1resp.Header.Get("Retry-After") == "" {
		t.Fatal("v1 429 lacks Retry-After")
	}
	var edoc ErrorDoc
	if err := json.Unmarshal(v1body, &edoc); err != nil {
		t.Fatalf("429 body is not an error envelope: %v\n%s", err, v1body)
	}
	if edoc.Schema != ErrorSchema || edoc.Code != CodeOverloaded {
		t.Fatalf("429 envelope = %+v", edoc)
	}
	st := getStats(t, ts.URL)
	if st.Admission.ShedQueueFull < 2 {
		t.Fatalf("admission stats = %+v, want >= 2 queue-full sheds", st.Admission)
	}
	deleteJob(t, ts.URL, slow.ID)
	waitTerminal(t, ts.URL, slow.ID)
}

// TestDrainWithInFlightAsyncJob: draining refuses new submissions on
// both versions (with Retry-After) while the in-flight async job can
// still be canceled and WaitIdle returns once it settles.
func TestDrainWithInFlightAsyncJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	resp, slow := postJob(t, ts.URL, slowJobReq(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.active.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Drain()
	resp2, _ := postJob(t, ts.URL, map[string]any{"netlist": tinySrc})
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") == "" {
		t.Fatalf("draining v2 submit = %d (Retry-After %q)",
			resp2.StatusCode, resp2.Header.Get("Retry-After"))
	}
	// WaitIdle blocks while the job runs...
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.WaitIdle(shortCtx); err == nil {
		t.Fatal("WaitIdle returned while a job was in flight")
	}
	// ...and returns once the canceled job settles.
	deleteJob(t, ts.URL, slow.ID)
	idleCtx, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel2()
	if err := s.WaitIdle(idleCtx); err != nil {
		t.Fatalf("WaitIdle after cancel: %v", err)
	}
	// The terminal resource survives the drain for inspection.
	status, doc := getJob(t, ts.URL, slow.ID)
	if status != http.StatusOK || doc.State != JobCanceled {
		t.Fatalf("post-drain job = %d %s", status, doc.State)
	}
}

// TestSSEDisconnectNoLeak opens a progress stream on a long solve,
// drops the client mid-stream, and checks the subscriber goroutine
// (and the job's) are gone once the job is canceled and settled.
func TestSSEDisconnectNoLeak(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	base := runtime.NumGoroutine()

	resp, slow := postJob(t, ts.URL, slowJobReq(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v2/jobs/"+slow.ID+"/events", nil)
	evResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first event, then vanish mid-stream.
	buf := make([]byte, 256)
	if _, err := evResp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	evResp.Body.Close()

	deleteJob(t, ts.URL, slow.ID)
	final := waitTerminal(t, ts.URL, slow.ID)
	if final.State != JobCanceled {
		t.Fatalf("state = %s", final.State)
	}
	idleCtx, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel2()
	if err := s.WaitIdle(idleCtx); err != nil {
		t.Fatal(err)
	}
	http.DefaultClient.CloseIdleConnections()

	// Goroutines must settle back to the baseline (plus a little slack
	// for the httptest server's own connection handling).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+5 {
			return
		}
		if time.Now().After(deadline) {
			stack := make([]byte, 1<<20)
			m := runtime.Stack(stack, true)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", n, base, stack[:m])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestErrorEnvelope: non-2xx replies carry the columbas-error/v1
// envelope with stable codes on both API versions.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	for _, tc := range []struct {
		name, method, url, ctype, body string
		wantStatus                     int
		wantCode                       string
	}{
		{"v1 parse", "POST", "/v1/synthesize", "text/plain", "not a netlist",
			http.StatusBadRequest, CodeNetlistParse},
		{"v1 bad option", "POST", "/v1/synthesize?muxes=3", "text/plain", tinySrc,
			http.StatusBadRequest, CodeInvalidOption},
		{"v1 semantic", "POST", "/v1/synthesize", "text/plain", "design d\nunit m1 mixer\n",
			http.StatusUnprocessableEntity, CodeNetlistInvalid},
		{"v2 parse", "POST", "/v2/jobs", "application/json", `{"netlist":"nope"}`,
			http.StatusBadRequest, CodeNetlistParse},
		{"v2 bad envelope", "POST", "/v2/jobs", "application/json", `{"bogus":1}`,
			http.StatusBadRequest, CodeBadRequest},
		{"v2 bad option", "POST", "/v2/jobs", "application/json",
			`{"netlist":"design d\nunit m1 mixer\nconnect in:a m1\nconnect m1 out:w\n","options":{"effort":"extreme"}}`,
			http.StatusBadRequest, CodeInvalidOption},
		{"v2 unknown job", "GET", "/v2/jobs/doesnotexist", "", "",
			http.StatusNotFound, CodeJobNotFound},
		{"v2 unknown job result", "GET", "/v2/jobs/doesnotexist/result", "", "",
			http.StatusNotFound, CodeJobNotFound},
		{"v2 unknown job events", "GET", "/v2/jobs/doesnotexist/events", "", "",
			http.StatusNotFound, CodeJobNotFound},
	} {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		req, _ := http.NewRequest(tc.method, ts.URL+tc.url, body)
		if tc.ctype != "" {
			req.Header.Set("Content-Type", tc.ctype)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, b)
			continue
		}
		var edoc ErrorDoc
		if err := json.Unmarshal(b, &edoc); err != nil {
			t.Errorf("%s: body is not an error envelope: %v\n%s", tc.name, err, b)
			continue
		}
		if edoc.Schema != ErrorSchema || edoc.Code != tc.wantCode || edoc.Message == "" {
			t.Errorf("%s: envelope = %+v, want code %s", tc.name, edoc, tc.wantCode)
		}
	}
}

// TestResultNotReady: fetching the result of a still-running job is a
// 409 with the not_ready code naming the current state.
func TestResultNotReady(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	resp, slow := postJob(t, ts.URL, slowJobReq(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	rresp, err := http.Get(ts.URL + "/v2/jobs/" + slow.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("early result = %d: %s", rresp.StatusCode, b)
	}
	var edoc ErrorDoc
	if err := json.Unmarshal(b, &edoc); err != nil || edoc.Code != CodeNotReady {
		t.Fatalf("early result envelope = %+v (%v)", edoc, err)
	}
	deleteJob(t, ts.URL, slow.ID)
	waitTerminal(t, ts.URL, slow.ID)
}
