package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"columbas/internal/cases"
)

// tinySrc solves in tens of milliseconds — the workhorse netlist for
// functional tests.
const tinySrc = `design tiny
unit m1 mixer
unit c1 chamber
connect in:a m1
connect m1 c1
connect c1 out:w
`

// tinyN returns tinySrc with a distinct design name, giving each call a
// distinct cache key.
func tinyN(i int) string {
	return strings.Replace(tinySrc, "design tiny", fmt.Sprintf("design tiny%d", i), 1)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSynthesizeBasicAndNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 2})

	// Explicit format param.
	resp, body := post(t, ts.URL+"/v1/synthesize?format=svg", tinySrc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !bytes.Contains(body, []byte("<svg")) {
		t.Fatal("response is not an SVG")
	}
	if c := resp.Header.Get("X-Columbas-Cache"); c != "miss" {
		t.Fatalf("X-Columbas-Cache = %q, want miss", c)
	}

	// Accept-header negotiation.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/synthesize", strings.NewReader(tinySrc))
	req.Header.Set("Accept", "image/vnd.dxf")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("dxf status %d: %s", resp2.StatusCode, b2)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "image/vnd.dxf" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// No format, no Accept: JSON default.
	resp3, body3 := post(t, ts.URL+"/v1/synthesize", tinySrc)
	if ct := resp3.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(body3, &doc); err != nil {
		t.Fatalf("default response is not JSON: %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	for _, tc := range []struct {
		name, url, body string
		accept          string
		want            int
	}{
		{"parse error", "/v1/synthesize", "not a netlist", "", http.StatusBadRequest},
		{"unknown format", "/v1/synthesize?format=pdf", tinySrc, "", http.StatusBadRequest},
		{"bad muxes", "/v1/synthesize?muxes=3", tinySrc, "", http.StatusBadRequest},
		{"bad timeout", "/v1/synthesize?timeout=banana", tinySrc, "", http.StatusBadRequest},
		{"bad effort", "/v1/synthesize?effort=extreme", tinySrc, "", http.StatusBadRequest},
		{"unacceptable accept", "/v1/synthesize", tinySrc, "text/html", http.StatusNotAcceptable},
		{"semantic error", "/v1/synthesize", "design d\nunit m1 mixer\n", "", http.StatusUnprocessableEntity},
	} {
		req, _ := http.NewRequest("POST", ts.URL+tc.url, strings.NewReader(tc.body))
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Method not allowed on the mux pattern.
	resp, err := http.Get(ts.URL + "/v1/synthesize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET synthesize: status %d, want 405", resp.StatusCode)
	}
}

// TestCacheHitByteIdentical re-submits an identical netlist and checks
// the reply comes from the cache, byte for byte the same, for both SVG
// and JSON, and that the counters move.
func TestCacheHitByteIdentical(t *testing.T) {
	var traces bytes.Buffer
	s, ts := newTestServer(t, Config{Jobs: 2, TraceSink: &traces})
	for _, format := range []string{"svg", "json"} {
		url := ts.URL + "/v1/synthesize?format=" + format
		resp1, body1 := post(t, url, tinySrc)
		if resp1.StatusCode != http.StatusOK {
			t.Fatalf("%s cold: status %d: %s", format, resp1.StatusCode, body1)
		}
		resp2, body2 := post(t, url, tinySrc)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("%s warm: status %d: %s", format, resp2.StatusCode, body2)
		}
		if resp2.Header.Get("X-Columbas-Cache") != "hit" {
			t.Fatalf("%s warm: X-Columbas-Cache = %q, want hit", format, resp2.Header.Get("X-Columbas-Cache"))
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("%s: cache hit bytes differ from cold solve", format)
		}
		if k1, k2 := resp1.Header.Get("X-Columbas-Key"), resp2.Header.Get("X-Columbas-Key"); k1 == "" || k1 != k2 {
			t.Fatalf("%s: content-address keys differ: %q vs %q", format, k1, k2)
		}
	}
	// Same source + same options = same key, so the second format pair
	// hits too: 1 miss, 3 hits.
	cs := s.cache.stats()
	if cs.Misses != 1 || cs.Hits != 3 {
		t.Fatalf("cache counters = %+v, want 1 miss / 3 hits", cs)
	}
	st := getStats(t, ts.URL)
	if st.Cache.Hits != 3 || st.Requests.Completed != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// The solver block reflects the single cold solve; the three cache
	// hits ran no solver and contributed nothing, so one synthesis worth
	// of LP solves is all there is, and the kernel identities hold.
	if st.Solver.LPSolves == 0 {
		t.Fatalf("solver stats empty after a completed synthesis: %+v", st.Solver)
	}
	if st.Solver.EtaUpdates > st.Solver.SimplexPivots {
		t.Fatalf("eta_updates %d > simplex_pivots %d", st.Solver.EtaUpdates, st.Solver.SimplexPivots)
	}
	if st.Solver.WorkspaceReuses > st.Solver.WarmStarts {
		t.Fatalf("workspace_reuses %d > warm_starts %d", st.Solver.WorkspaceReuses, st.Solver.WarmStarts)
	}
	after := getStats(t, ts.URL)
	if after.Solver != st.Solver {
		t.Fatalf("solver stats changed without a solve: %+v vs %+v", after.Solver, st.Solver)
	}
	// Hit/miss surfaced through the obs trace sink: one line per request.
	lines := strings.Count(traces.String(), "\n")
	if lines != 4 {
		t.Fatalf("trace sink has %d lines, want 4", lines)
	}
	if !strings.Contains(traces.String(), `"result":"hit"`) ||
		!strings.Contains(traces.String(), `"result":"miss"`) {
		t.Fatalf("trace sink lacks cache result labels:\n%s", traces.String())
	}
}

// TestDifferentOptionsDifferentKey: the content address covers the
// option fingerprint, not just the netlist.
func TestDifferentOptionsDifferentKey(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	post(t, ts.URL+"/v1/synthesize", tinySrc)
	resp, _ := post(t, ts.URL+"/v1/synthesize?effort=seed", tinySrc)
	if c := resp.Header.Get("X-Columbas-Cache"); c != "miss" {
		t.Fatalf("different options served from cache (%q)", c)
	}
	if cs := s.cache.stats(); cs.Misses != 2 {
		t.Fatalf("cache counters = %+v, want 2 misses", cs)
	}
}

// TestCacheEviction bounds the cache at 2 and pushes 3 distinct designs
// through it.
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1, CacheEntries: 2})
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL+"/v1/synthesize", tinyN(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("design %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	cs := s.cache.stats()
	if cs.Len != 2 || cs.Evictions != 1 {
		t.Fatalf("cache counters = %+v, want len 2 / 1 eviction", cs)
	}
	// The oldest design was evicted: re-posting it misses.
	resp, _ := post(t, ts.URL+"/v1/synthesize", tinyN(0))
	if c := resp.Header.Get("X-Columbas-Cache"); c != "miss" {
		t.Fatalf("evicted design served from cache (%q)", c)
	}
}

// TestConcurrentFanIn fires far more simultaneous requests than the
// pool admits and checks every one succeeds while the pool bound holds
// (the -race run doubles as the data-race proof for the whole server).
func TestConcurrentFanIn(t *testing.T) {
	const jobs, requests = 2, 8
	s, ts := newTestServer(t, Config{Jobs: jobs})
	var wg sync.WaitGroup
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/synthesize?format=json", "text/plain",
				strings.NewReader(tinyN(i%4))) // some keys collide → cache races too
			if err != nil {
				errs[i] = err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := getStats(t, ts.URL)
	if st.Pool.ActiveHighWater > jobs {
		t.Fatalf("pool bound violated: high water %d > %d jobs", st.Pool.ActiveHighWater, jobs)
	}
	if st.Pool.Active != 0 || st.Pool.Queued != 0 {
		t.Fatalf("pool not drained after fan-in: %+v", st.Pool)
	}
	if st.Requests.Completed != requests {
		t.Fatalf("completed = %d, want %d", st.Requests.Completed, requests)
	}
	_ = s
}

// TestDeadlineCancelsMidSolve gives chip9 a full-effort, prove-optimal
// solve with a deadline far below its runtime: the reply must be 504
// and the pool must be empty again promptly — i.e. the branch-and-bound
// workers actually stopped instead of running out their 30 s budget.
func TestDeadlineCancelsMidSolve(t *testing.T) {
	c, err := cases.Get("chip9")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Jobs: 1})
	start := time.Now()
	resp, body := post(t, ts.URL+"/v1/synthesize?timeout=40ms&effort=full&time=30s", c.Source)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (after %v): %s", resp.StatusCode, time.Since(start), body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("504 took %v; cancellation did not reach the solver", elapsed)
	}
	// The handler returns only after SynthesizeContext, which joins the
	// solver workers — active must be back to zero immediately.
	st := getStats(t, ts.URL)
	if st.Pool.Active != 0 {
		t.Fatalf("solver still running after 504: %+v", st.Pool)
	}
	if st.Requests.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Requests.Timeouts)
	}
	// A canceled run must not poison the cache.
	if cs := s.cache.stats(); cs.Len != 0 {
		t.Fatalf("canceled result was cached: %+v", cs)
	}
}

// TestQueuedRequestHonorsDeadline: a request stuck behind a full pool
// times out in the queue with 504.
func TestQueuedRequestHonorsDeadline(t *testing.T) {
	// chip64 keeps the branch-and-bound busy for well over the queued
	// request's window; chip9 no longer does since the kernel got fast
	// enough to finish in tens of milliseconds.
	c, err := cases.Get("chip64")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Jobs: 1})
	// Occupy the only slot with a slow solve.
	release := make(chan struct{})
	go func() {
		defer close(release)
		post(t, ts.URL+"/v1/synthesize?timeout=3s&effort=full&time=30s", c.Source)
	}()
	// Wait for the slow solve to actually take the slot.
	for i := 0; ; i++ {
		if st := getStats(t, ts.URL); st.Pool.Active == 1 {
			break
		}
		if i > 200 {
			t.Fatal("slow solve never took the pool slot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, body := post(t, ts.URL+"/v1/synthesize?timeout=100ms", tinySrc)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued status %d: %s", resp.StatusCode, body)
	}
	<-release
}

// TestHealthzAndDrain covers the operational endpoints and graceful
// shutdown: draining flips /readyz to 503 (while /healthz, the
// liveness probe, stays 200) and refuses new synthesis work while an
// in-flight solve runs to a successful completion.
func TestHealthzAndDrain(t *testing.T) {
	s := New(Config{Jobs: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", ep, resp.StatusCode)
		}
	}

	// Start a solve that outlives the drain trigger.
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/synthesize?format=svg", "text/plain",
			strings.NewReader(tinySrc))
		if err != nil {
			done <- result{status: -1}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, b}
	}()
	// Wait until the job is actually running (or already finished).
	deadline := time.Now().Add(5 * time.Second)
	for s.active.Load() == 0 && s.completed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(time.Millisecond)
	}

	s.Drain()
	// Liveness stays up: a draining process must not be restarted.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining readyz lacks Retry-After")
	}
	resp, err = http.Post(base+"/v1/synthesize", "text/plain", strings.NewReader(tinySrc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining synthesize = %d, want 503", resp.StatusCode)
	}

	// Shutdown must wait for — not kill — the in-flight solve.
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d: %s", r.status, r.body)
	}
	if !bytes.Contains(r.body, []byte("<svg")) {
		t.Fatal("drained request returned a torn response")
	}
}

// TestFormatsEndpoint sanity-checks the registry listing.
func TestFormatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/formats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs []struct {
		Name string `json:"name"`
		MIME string `json:"mime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range fs {
		names[f.Name] = true
	}
	for _, want := range []string{"svg", "json", "scr", "dxf"} {
		if !names[want] {
			t.Errorf("formats listing missing %q", want)
		}
	}
}
