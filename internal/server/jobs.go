package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"columbas/internal/core"
	"columbas/internal/layout"
	"columbas/internal/netlist"
	"columbas/internal/obs"
)

// Schemas of the v2 job wire documents.
const (
	// JobSchema identifies the job resource (GET /v2/jobs/{id}).
	JobSchema = "columbas-job/v1"
	// JobEventSchema identifies one progress event on the SSE stream
	// (GET /v2/jobs/{id}/events).
	JobEventSchema = "columbas-jobevent/v1"
)

// JobState is the lifecycle position of a job resource.
type JobState string

// The job lifecycle: queued → running → one of the three terminal
// states. Cache hits jump straight from queued to succeeded.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobSucceeded JobState = "succeeded"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final: the result (or error) is
// sealed and the event stream has ended.
func (st JobState) Terminal() bool {
	return st == JobSucceeded || st == JobFailed || st == JobCanceled
}

// JobEvent is one columbas-jobevent/v1 document: a line on a job's SSE
// progress stream. Type "state" marks a lifecycle transition;
// "span-start"/"span-end" relay the synthesis pipeline's obs phase
// spans (planarize → layout → milp rounds → validate → drc) live, with
// the span's counters and labels attached on end.
type JobEvent struct {
	Schema string `json:"schema"`
	// Job is the owning job id; Seq is the event's position in the
	// stream (also the SSE id: field, so Last-Event-ID resume works).
	Job string `json:"job"`
	Seq int64  `json:"seq"`
	// Type is "state", "span-start" or "span-end".
	Type string `json:"type"`
	// State is set on "state" events.
	State JobState `json:"state,omitempty"`
	// Cache marks the terminal state event "hit" or "miss".
	Cache string `json:"cache,omitempty"`
	// Path is the slash-joined span ancestry on span events
	// ("layout", "layout/milp round 2").
	Path string `json:"path,omitempty"`
	// WallMS is the sealed span wall time on "span-end".
	WallMS float64 `json:"wall_ms,omitempty"`
	// Counters and Labels are the ended span's recorded values (the
	// metric names of docs/metrics.md).
	Counters map[string]float64 `json:"counters,omitempty"`
	Labels   map[string]string  `json:"labels,omitempty"`
	// Error is set on a terminal "state" event of a failed job.
	Error *ErrorDoc `json:"error,omitempty"`
}

// maxReplayEvents bounds a job's event replay buffer; past it the
// oldest events are dropped (late subscribers see a seq gap, exactly as
// an SSE reconnect would).
const maxReplayEvents = 1024

// eventHub fans a job's events out to any number of SSE subscribers
// and replays the backlog to late ones. Publishing never blocks: a
// subscriber that cannot keep up loses events (each carries Seq, so
// the gap is visible), and publishing to a closed hub is a no-op.
type eventHub struct {
	jobID string

	mu      sync.Mutex
	seq     int64
	events  []JobEvent
	subs    map[int]chan JobEvent
	nextSub int
	closed  bool
}

func newEventHub(jobID string) *eventHub {
	return &eventHub{jobID: jobID, subs: make(map[int]chan JobEvent)}
}

// publish stamps schema/job/seq onto ev, records it for replay and
// fans it out.
func (h *eventHub) publish(ev JobEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Schema = JobEventSchema
	ev.Job = h.jobID
	ev.Seq = h.seq
	h.events = append(h.events, ev)
	if len(h.events) > maxReplayEvents {
		h.events = h.events[len(h.events)-maxReplayEvents:]
	}
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, the seq gap tells the story
		}
	}
}

// subscribe returns the replay backlog plus a live channel. The
// channel is closed when the job reaches a terminal state (the last
// replayed or delivered event is that terminal "state" event). cancel
// detaches the subscriber; it is safe to call after close.
func (h *eventHub) subscribe() (replay []JobEvent, ch chan JobEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append([]JobEvent(nil), h.events...)
	ch = make(chan JobEvent, 128)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	id := h.nextSub
	h.nextSub++
	h.subs[id] = ch
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(ch)
		}
	}
}

// close seals the stream: subscriber channels are closed and further
// publishes are dropped.
func (h *eventHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}

// traceObserver adapts the hub into an obs.Observer: live pipeline
// spans become span-start/span-end job events. The trace-finish event
// is skipped — the job's own terminal state event ends the stream.
func (h *eventHub) traceObserver() obs.Observer {
	return func(ev obs.Event) {
		switch ev.Kind {
		case obs.EventSpanStart:
			h.publish(JobEvent{Type: "span-start", Path: ev.Path})
		case obs.EventSpanEnd:
			je := JobEvent{Type: "span-end", Path: ev.Path, WallMS: ev.WallMS}
			if ev.Span != nil {
				je.Counters = ev.Span.Counters
				je.Labels = ev.Span.Labels
			}
			h.publish(je)
		}
	}
}

// job is one synthesis job resource. Immutable identity fields are set
// at submit; the mutable lifecycle lives behind mu.
type job struct {
	id      string
	created time.Time
	name    string // design name
	key     cacheKey
	fp      *designFP    // similarity fingerprint (nil: caching disabled)
	opt     core.Options // resolved options (Trace stripped)
	timeout time.Duration
	format  string // default render format ("" = negotiate per GET)
	cancel  context.CancelFunc
	done    chan struct{} // closed when the job reaches a terminal state
	hub     *eventHub

	mu        sync.Mutex
	state     JobState
	cacheHit  bool
	res       *core.Result
	errStatus int
	errDoc    *ErrorDoc
	started   time.Time
	finished  time.Time
	expires   time.Time
}

// newJobID returns a 16-hex-char random id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// publishState emits a lifecycle transition on the event stream.
func (j *job) publishState(st JobState) {
	j.hub.publish(JobEvent{Type: "state", State: st})
}

// setRunning marks the moment the job took a pool slot.
func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.publishState(JobRunning)
}

// finalize seals the job in a terminal state, publishes the terminal
// event, ends the stream and wakes synchronous waiters. ttl <= 0 keeps
// the job retrievable forever.
func (j *job) finalize(st JobState, res *core.Result, errStatus int, errDoc *ErrorDoc, ttl time.Duration) {
	now := time.Now()
	j.mu.Lock()
	j.state = st
	j.res = res
	j.errStatus = errStatus
	j.errDoc = errDoc
	j.finished = now
	if ttl > 0 {
		j.expires = now.Add(ttl)
	}
	cache := "miss"
	if j.cacheHit {
		cache = "hit"
	}
	j.mu.Unlock()
	ev := JobEvent{Type: "state", State: st, Error: errDoc}
	if st == JobSucceeded {
		ev.Cache = cache
	}
	j.hub.publish(ev)
	j.hub.close()
	close(j.done)
}

// cancelJob requests cancellation. Idempotent, and a no-op on jobs
// that never got a cancelable context (cache hits).
func (j *job) cancelJob() {
	if j.cancel != nil {
		j.cancel()
	}
}

// outcome snapshots the terminal result for a synchronous waiter.
func (j *job) outcome() (st JobState, res *core.Result, errStatus int, errDoc *ErrorDoc, cache string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cache = "miss"
	if j.cacheHit {
		cache = "hit"
	}
	return j.state, j.res, j.errStatus, j.errDoc, cache
}

// expired reports whether the job's retention window has passed.
func (j *job) expired(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.expires.IsZero() && now.After(j.expires)
}

// JobDoc is the columbas-job/v1 resource document.
type JobDoc struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	// Name is the design name from the submitted netlist.
	Name  string   `json:"name"`
	State JobState `json:"state"`
	// Cache is "hit" or "miss" once the job succeeded.
	Cache string `json:"cache,omitempty"`
	// Key is the content address shared with the X-Columbas-Key header.
	Key       string     `json:"key,omitempty"`
	CreatedAt time.Time  `json:"created_at"`
	StartedAt *time.Time `json:"started_at,omitempty"`
	// FinishedAt and ExpiresAt bound the result's availability: after
	// ExpiresAt the job id answers 404 (job_not_found).
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	ExpiresAt  *time.Time `json:"expires_at,omitempty"`
	// Options is the fully resolved option set the job ran (or will
	// run) with — server defaults and clamps applied.
	Options core.Options `json:"options"`
	// Timeout is the job's wall-clock deadline budget ("" = none).
	Timeout string `json:"timeout,omitempty"`
	// Metrics is set once the job succeeded.
	Metrics *core.Metrics `json:"metrics,omitempty"`
	// Error is set once the job failed or was canceled.
	Error *ErrorDoc `json:"error,omitempty"`
	// Links names the job's subresources (self, events, result).
	Links map[string]string `json:"links"`
}

// doc snapshots the job as its wire resource.
func (j *job) doc() JobDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	d := JobDoc{
		Schema:    JobSchema,
		ID:        j.id,
		Name:      j.name,
		State:     j.state,
		Key:       j.key.String(),
		CreatedAt: j.created,
		Options:   j.opt,
		Links: map[string]string{
			"self":   "/v2/jobs/" + j.id,
			"events": "/v2/jobs/" + j.id + "/events",
			"result": "/v2/jobs/" + j.id + "/result",
		},
	}
	if j.timeout > 0 {
		d.Timeout = j.timeout.String()
	}
	if !j.started.IsZero() {
		t := j.started
		d.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		d.FinishedAt = &t
	}
	if !j.expires.IsZero() {
		t := j.expires
		d.ExpiresAt = &t
	}
	if j.state == JobSucceeded {
		if j.cacheHit {
			d.Cache = "hit"
		} else {
			d.Cache = "miss"
		}
		if j.res != nil {
			m := j.res.Metrics()
			d.Metrics = &m
		}
	}
	d.Error = j.errDoc
	return d
}

// jobStore indexes live job resources by id and garbage-collects
// terminal ones past their TTL. Collection is opportunistic — a sweep
// piggybacks on store accesses at most every ttl/4 — so the store
// needs no background goroutine and leaks none.
type jobStore struct {
	ttl time.Duration // <= 0: jobs are retained until process exit

	mu        sync.Mutex
	byID      map[string]*job
	lastSweep time.Time
	submitted int64
	expired   int64
}

func newJobStore(ttl time.Duration) *jobStore {
	return &jobStore{ttl: ttl, byID: make(map[string]*job)}
}

func (st *jobStore) add(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(time.Now())
	st.byID[j.id] = j
	st.submitted++
}

// get returns the live job for id. An expired job is indistinguishable
// from one that never existed.
func (st *jobStore) get(id string) (*job, bool) {
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(now)
	j, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	if j.expired(now) {
		delete(st.byID, id)
		st.expired++
		return nil, false
	}
	return j, true
}

// sweepLocked drops every expired job, at most once per ttl/4.
func (st *jobStore) sweepLocked(now time.Time) {
	if st.ttl <= 0 {
		return
	}
	if !st.lastSweep.IsZero() && now.Sub(st.lastSweep) < st.ttl/4 {
		return
	}
	st.lastSweep = now
	for id, j := range st.byID {
		if j.expired(now) {
			delete(st.byID, id)
			st.expired++
		}
	}
}

// JobStats is the job-store block of GET /v1/stats.
type JobStats struct {
	// TTLMS is the terminal-job retention window (0: forever).
	TTLMS int64 `json:"ttl_ms"`
	// Stored is the number of job resources currently retrievable.
	Stored int `json:"stored"`
	// Submitted counts jobs accepted since start (sync and async,
	// cache hits included); Expired counts jobs dropped by the TTL.
	Submitted int64 `json:"submitted"`
	Expired   int64 `json:"expired"`
}

func (st *jobStore) stats() JobStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	ttlMS := int64(0)
	if st.ttl > 0 {
		ttlMS = st.ttl.Milliseconds()
	}
	return JobStats{
		TTLMS:     ttlMS,
		Stored:    len(st.byID),
		Submitted: st.submitted,
		Expired:   st.expired,
	}
}

// errDraining is submit's refusal while the server drains.
var errDraining = errors.New("server is draining")

// submitRequest is a fully validated synthesis request: parsed
// netlist, resolved options, deadline budget.
type submitRequest struct {
	n       *netlist.Netlist
	opt     core.Options
	timeout time.Duration
	format  string // default render format for the job resource
	// warm pins an explicit donor hint (the /v2/explore chain); when nil
	// and the options allow delta warm starts, submit consults the
	// similarity index instead.
	warm *layout.WarmHint
}

// submit runs a validated request through cache lookup and admission
// control and, on a miss, spawns its job goroutine. It returns the job
// resource, or a Retry-After hint with errDraining, errQueueFull or
// errDoomedDeadline. Both the async POST /v2/jobs handler and the
// synchronous /v1/synthesize wrapper go through here — there is
// exactly one synthesis path.
func (s *Server) submit(req submitRequest) (*job, time.Duration, error) {
	if s.draining.Load() {
		return nil, drainRetryAfter, errDraining
	}
	j := &job{
		id:      newJobID(),
		created: time.Now(),
		name:    req.n.Name,
		key:     newCacheKey(req.n, req.opt),
		opt:     req.opt,
		timeout: req.timeout,
		format:  req.format,
		done:    make(chan struct{}),
	}
	j.hub = newEventHub(j.id)
	j.state = JobQueued
	j.publishState(JobQueued)

	if res, ok := s.cache.get(j.key); ok {
		// Cache hits bypass admission entirely: no queue slot, no pool
		// token, the job is born terminal.
		j.cacheHit = true
		s.completed.Add(1)
		s.emitHitTrace(req.n.Name)
		s.jobs.add(j)
		j.finalize(JobSucceeded, res, 0, nil, s.cfg.JobTTL)
		return j, 0, nil
	}
	j.fp = newDesignFP(req.n, req.opt)

	// Exact miss: a near miss can still warm-start. An explicit donor
	// (the /v2/explore chain) wins; otherwise the similarity index is
	// consulted for the nearest previously solved design. -no-delta
	// requests skip both and solve cold.
	if !req.opt.NoDelta {
		if req.warm != nil {
			j.opt.Warm = req.warm
		} else if donor := s.cache.similar(j.fp); donor != nil {
			j.opt.Warm = donor.WarmHint()
		}
	}

	var deadline time.Time
	if req.timeout > 0 {
		deadline = j.created.Add(req.timeout)
	}
	if wait, err := s.adm.admit(deadline); err != nil {
		return nil, wait, err
	}

	// The job's context is rooted in Background, not in any request:
	// the submitting connection may hang up while the job lives on.
	// Cancellation comes from DELETE (or the v1 wrapper's disconnect),
	// the deadline from the job's own timeout budget.
	ctx := context.Background()
	var cancel context.CancelFunc
	if req.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, req.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel
	s.jobs.add(j)
	s.jobsWG.Add(1)
	go s.runJob(ctx, cancel, j, req.n)
	return j, 0, nil
}

// runJob drives one admitted job to a terminal state and settles the
// request counters. It is the only goroutine that touches the pool
// semaphore and the solver-stat accumulators, for v1 and v2 alike.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, n *netlist.Netlist) {
	defer s.jobsWG.Done()
	defer cancel()
	res, err := s.solve(ctx, j, n)
	if err == nil {
		s.completed.Add(1)
		s.recordSolverStats(res)
		s.cache.add(j.key, j.fp, res)
		j.finalize(JobSucceeded, res, 0, nil, s.cfg.JobTTL)
		return
	}
	st := JobFailed
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
	case errors.Is(err, context.Canceled):
		s.canceled.Add(1)
		st = JobCanceled
	default:
		s.failed.Add(1)
	}
	status, doc := synthesisErrorDoc(err, res)
	j.finalize(st, nil, status, doc, s.cfg.JobTTL)
}

// solve waits for a pool token and runs the synthesis pipeline with
// live tracing wired to the job's event hub. By the time it returns,
// the pool token is released and active is back down — a synchronous
// waiter observing the terminal state sees a fully drained pool.
func (s *Server) solve(ctx context.Context, j *job, n *netlist.Netlist) (*core.Result, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.adm.abandoned()
		return nil, fmt.Errorf("queued: %w", ctx.Err())
	}
	defer func() { <-s.sem }()
	s.adm.started()
	a := s.active.Add(1)
	s.mu.Lock()
	if a > s.activeHW {
		s.activeHW = a
	}
	s.mu.Unlock()
	defer s.active.Add(-1)

	j.setRunning()
	tr := obs.New(n.Name)
	tr.Observe(j.hub.traceObserver())
	sp := tr.Phase("cache")
	sp.Label("result", "miss")
	if j.opt.Warm != nil {
		sp.Label("delta", "warm")
	}
	cs := s.cache.stats()
	sp.SetInt("hits", cs.Hits)
	sp.SetInt("misses", cs.Misses)
	sp.SetInt("evictions", cs.Evictions)
	sp.End()
	opt := j.opt
	opt.Trace = tr

	svc := time.Now()
	res, err := core.SynthesizeContext(ctx, n, opt)
	s.adm.finished(time.Since(svc))
	tr.Finish()
	s.emitTrace(tr)
	return res, err
}
