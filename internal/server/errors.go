package server

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"columbas/internal/core"
)

// ErrorSchema identifies the structured error envelope every non-2xx
// response carries (v1 and v2 alike).
const ErrorSchema = "columbas-error/v1"

// Stable machine-readable error codes. Clients branch on Code; Message
// and Detail are for humans and may change wording between releases.
const (
	// CodeBadRequest is a malformed request envelope or parameter.
	CodeBadRequest = "bad_request"
	// CodeNetlistParse is a netlist source that does not parse.
	CodeNetlistParse = "netlist_parse"
	// CodeNetlistInvalid is a netlist that parses but fails semantic
	// validation (not synthesizable as written).
	CodeNetlistInvalid = "netlist_invalid"
	// CodeInvalidOption is an option value rejected by the shared
	// OptionSpec validation.
	CodeInvalidOption = "invalid_option"
	// CodeUnknownFormat is an unregistered ?format= name.
	CodeUnknownFormat = "unknown_format"
	// CodeNotAcceptable is an Accept header matching no registered
	// format.
	CodeNotAcceptable = "not_acceptable"
	// CodeBodyTooLarge is a request body over the configured limit.
	CodeBodyTooLarge = "body_too_large"
	// CodeJobNotFound is an unknown (or TTL-expired) job id.
	CodeJobNotFound = "job_not_found"
	// CodeNotReady is a result fetched before the job reached a
	// terminal state.
	CodeNotReady = "not_ready"
	// CodeOverloaded is an admission-control shed: the queue is full or
	// the request's deadline would expire before a pool slot frees.
	// The response carries Retry-After.
	CodeOverloaded = "overloaded"
	// CodeDraining is a request refused because shutdown has begun.
	// The response carries Retry-After.
	CodeDraining = "draining"
	// CodeDeadline is a request whose wall-clock deadline fired
	// (queued or mid-solve).
	CodeDeadline = "deadline_exceeded"
	// CodeCanceled is a job canceled by the client.
	CodeCanceled = "canceled"
	// CodeSynthPlanarize/Layout/Validate/DRC map core.SynthesisError
	// phases onto the wire.
	CodeSynthPlanarize = "synthesis_planarize"
	CodeSynthLayout    = "synthesis_layout"
	CodeSynthValidate  = "synthesis_validate"
	CodeSynthDRC       = "synthesis_drc"
	// CodeRender is a failure rendering a completed design.
	CodeRender = "render_failed"
	// CodeInternal is everything else on our side.
	CodeInternal = "internal"
)

// ErrorDoc is the columbas-error/v1 envelope: the body of every non-2xx
// response and the error field of failed job resources.
type ErrorDoc struct {
	// Schema is always ErrorSchema.
	Schema string `json:"schema"`
	// Code is one of the Code* constants — the stable, machine-readable
	// failure class.
	Code string `json:"code"`
	// Message is the human-readable one-liner.
	Message string `json:"message"`
	// Detail optionally narrows the failure (e.g. the pipeline phase or
	// the offending parameter).
	Detail string `json:"detail,omitempty"`
}

// errDoc builds an envelope.
func errDoc(code, message string) *ErrorDoc {
	return &ErrorDoc{Schema: ErrorSchema, Code: code, Message: message}
}

// writeError writes the envelope as the response body with the given
// status.
func writeError(w http.ResponseWriter, status int, doc *ErrorDoc) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// writeErrorRetry is writeError plus a Retry-After hint (429/503): the
// client's backoff signal. The hint is rounded up to whole seconds,
// never below 1.
func writeErrorRetry(w http.ResponseWriter, status int, retryAfter time.Duration, doc *ErrorDoc) {
	w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	writeError(w, status, doc)
}

// retryAfterSeconds renders a duration as the integral-seconds form the
// Retry-After header requires, with a floor of 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// synthesisErrorDoc maps a synthesis failure onto the wire contract:
// deadline expiry is the gateway-timeout contract, cancellation is the
// client's own doing, design-rule violations are the client's problem,
// anything else is ours. Returns the HTTP status a synchronous caller
// would use plus the envelope.
func synthesisErrorDoc(err error, res *core.Result) (int, *ErrorDoc) {
	var serr *core.SynthesisError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		d := errDoc(CodeDeadline, "synthesis deadline exceeded")
		d.Detail = err.Error()
		return http.StatusGatewayTimeout, d
	case errors.Is(err, context.Canceled):
		d := errDoc(CodeCanceled, "synthesis canceled")
		d.Detail = err.Error()
		// 499 is the de-facto "client closed request" status; a live
		// client (v2 DELETE) reads the job resource, not this status.
		return 499, d
	case res != nil && res.DRC != nil && !res.DRC.Clean():
		d := errDoc(CodeSynthDRC, err.Error())
		d.Detail = core.PhaseDRC
		return http.StatusUnprocessableEntity, d
	case errors.As(err, &serr):
		code := CodeInternal
		switch serr.Phase {
		case core.PhasePlanarize:
			code = CodeSynthPlanarize
		case core.PhaseLayout:
			code = CodeSynthLayout
		case core.PhaseValidate:
			code = CodeSynthValidate
		case core.PhaseDRC:
			code = CodeSynthDRC
		}
		d := errDoc(code, err.Error())
		d.Detail = serr.Phase
		if serr.Phase == core.PhaseDRC {
			return http.StatusUnprocessableEntity, d
		}
		return http.StatusInternalServerError, d
	default:
		return http.StatusInternalServerError, errDoc(CodeInternal, err.Error())
	}
}
