// Package server exposes the Columba S synthesis flow as an HTTP
// service — the columbasd daemon. POST /v1/synthesize accepts a netlist
// description and returns the synthesized design in any registered
// export format (content negotiation against export.Formats); requests
// run through core.SynthesizeContext on a bounded worker pool, so a
// client deadline or disconnect genuinely cancels the in-flight
// branch-and-bound solve. A content-addressed LRU cache (SHA-256 of the
// canonical netlist plus an options fingerprint) serves repeated
// requests without re-solving; hit/miss/eviction counters surface
// through GET /v1/stats and, per request, through the obs trace sink.
// GET /healthz and Server.Drain support load-balanced rollouts and
// graceful shutdown. The wire contract is documented in docs/api.md.
package server
