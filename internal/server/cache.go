package server

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"

	"columbas/internal/core"
	"columbas/internal/netlist"
)

// cacheKey is the content address of one synthesis request: SHA-256 over
// the canonicalized netlist (netlist.Format, which normalizes
// whitespace, comments and statement spelling) plus a fingerprint of
// every option that can change the synthesized design. Two requests with
// the same key are guaranteed the same completed design, so the cache
// can serve either from one solve.
type cacheKey [sha256.Size]byte

// newCacheKey canonicalizes and hashes a request. The fingerprint
// deliberately excludes transient fields — trace handles, deadlines,
// interrupt channels — that do not influence the design itself.
func newCacheKey(n *netlist.Netlist, opt core.Options) cacheKey {
	h := sha256.New()
	io.WriteString(h, n.Format())
	lo := opt.Layout
	// Workers is included: parallel branch and bound may legally settle
	// on a different tie-equivalent placement, so byte-identical replies
	// are only guaranteed per worker count.
	// NoDelta is included too: a delta-warm solve may legally settle on a
	// different tie-equivalent placement than a cold one, so ablation
	// (-no-delta) runs never share entries with warm-started ones.
	fmt.Fprintf(h, "\x00a=%g;b=%g;g=%g;k=%g;tl=%d;gap=%g;stall=%d;eff=%d;gthr=%d;skip=%t;noseed=%t;eager=%t;w=%d;drc=%t;nodelta=%t",
		lo.Alpha, lo.Beta, lo.Gamma, lo.Kappa,
		lo.TimeLimit, lo.Gap, lo.StallLimit,
		lo.Effort, lo.GuidedThreshold,
		lo.SkipMILP, lo.NoSeed, lo.EagerSeparation,
		lo.Workers, opt.RunDRC, opt.NoDelta)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// String returns the short hex form used in the X-Columbas-Key header.
func (k cacheKey) String() string { return fmt.Sprintf("%x", k[:8]) }

// CacheStats is the cache counter snapshot served by GET /v1/stats.
type CacheStats struct {
	// Capacity is the configured entry bound (0: caching disabled).
	Capacity int `json:"capacity"`
	// Len is the current number of cached designs.
	Len int `json:"len"`
	// Hits and Misses count lookups; Evictions counts entries displaced
	// by the LRU bound since the server started.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// SimilarityHits and SimilarityMisses count the delta-aware nearest-
	// donor lookups consulted on exact misses (skipped entirely under
	// -no-delta): a similarity hit warm-starts the solve from the donor
	// design instead of solving cold.
	SimilarityHits   int64 `json:"similarity_hits"`
	SimilarityMisses int64 `json:"similarity_misses"`
}

// resultCache is a bounded LRU of completed synthesis results, keyed by
// content address. All methods are safe for concurrent use.
type resultCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	byKey     map[cacheKey]*list.Element
	hits      int64
	misses    int64
	evictions int64
	simHits   int64
	simMisses int64
}

type cacheEntry struct {
	key cacheKey
	// fp is the entry's structural fingerprint, doubling the LRU as the
	// delta-aware similarity index (see similar); nil entries are
	// invisible to similarity lookups.
	fp  *designFP
	res *core.Result
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached result for k, promoting it to most recently
// used. Every call counts as exactly one hit or one miss.
func (c *resultCache) get(k cacheKey) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	c.misses++
	return nil, false
}

// add installs a completed result with its similarity fingerprint,
// evicting from the LRU tail past capacity. Re-adding an existing key
// only refreshes its recency.
func (c *resultCache) add(k cacheKey, fp *designFP, res *core.Result) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		ent.fp, ent.res = fp, res
		return
	}
	c.byKey[k] = c.ll.PushFront(&cacheEntry{key: k, fp: fp, res: res})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns a consistent snapshot of the counters.
func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:         c.cap,
		Len:              c.ll.Len(),
		Hits:             c.hits,
		Misses:           c.misses,
		Evictions:        c.evictions,
		SimilarityHits:   c.simHits,
		SimilarityMisses: c.simMisses,
	}
}
