// Package planar implements netlist planarization (Section 3.1): the
// preparation step that turns a primitive application netlist into a
// planar one by adding switches and refining the logic connections,
// following the approach of Columba 2.0.
//
// Under the Columba S routing discipline every flow channel is a straight
// horizontal segment between two access pins, and every module offers
// exactly one flow pin per vertical boundary (left, right). Planarization
// therefore has to resolve two situations:
//
//  1. multi-terminal nets ("net a b c ..."): all endpoints must be mutually
//     reachable, which a direct channel cannot provide — a switch with one
//     flow-channel junction per endpoint is inserted (Figure 3(f));
//  2. pin overflow: a unit referenced by more than two nets exceeds its
//     two flow pins — a switch is inserted and the excess connections are
//     rerouted through it.
//
// Key types: Planarize maps a netlist.Netlist to a Result of Nodes
// (units, switches, terminals) and two-ended Channels; Stats counts the
// inserted switches.
package planar
