package planar

import (
	"fmt"

	"columbas/internal/netlist"
)

// NodeKind distinguishes planar graph nodes.
type NodeKind int

// Node kinds.
const (
	NodeUnit NodeKind = iota
	NodeSwitch
)

func (k NodeKind) String() string {
	if k == NodeUnit {
		return "unit"
	}
	return "switch"
}

// Node is a placeable object of the planarized netlist: a functional unit
// or an inserted switch.
type Node struct {
	Name      string
	Kind      NodeKind
	Unit      *netlist.Unit // nil for switches
	Junctions int           // switch junction count c (switches only)
}

// End is one endpoint of a planar channel.
type End struct {
	Node     string // node name; "" for a boundary terminal
	Junction int    // junction index for switch endpoints; -1 otherwise
	Terminal string // fluid name for boundary terminals; "" otherwise
	Inlet    bool   // terminal direction
}

// IsTerminal reports whether the endpoint is a boundary terminal.
func (e End) IsTerminal() bool { return e.Terminal != "" }

func (e End) String() string {
	if e.IsTerminal() {
		dir := "out"
		if e.Inlet {
			dir = "in"
		}
		return fmt.Sprintf("%s:%s", dir, e.Terminal)
	}
	if e.Junction >= 0 {
		return fmt.Sprintf("%s.j%d", e.Node, e.Junction)
	}
	return e.Node
}

// Channel is a planar flow channel requirement: a straight horizontal
// channel between two endpoints.
type Channel struct {
	A, B End
}

// Result is a planarized netlist: the input to physical synthesis.
type Result struct {
	Name     string
	Muxes    int
	Nodes    []Node
	Channels []Channel
	Parallel [][]string
	// SwitchCount is the number of switches planarization added.
	SwitchCount int
}

// Node returns the named node, or nil.
func (r *Result) Node(name string) *Node {
	for i := range r.Nodes {
		if r.Nodes[i].Name == name {
			return &r.Nodes[i]
		}
	}
	return nil
}

// Degree returns the number of channel endpoints referencing the node.
func (r *Result) Degree(name string) int {
	d := 0
	for _, c := range r.Channels {
		if c.A.Node == name {
			d++
		}
		if c.B.Node == name {
			d++
		}
	}
	return d
}

// SwitchNeedsInlets reports whether the named switch connects to boundary
// terminals (and therefore needs the n·d' boundary rectangle of merge
// rule 3 in Section 3.2.1).
func (r *Result) SwitchNeedsInlets(name string) bool {
	if n := r.Node(name); n == nil || n.Kind != NodeSwitch {
		return false
	}
	for _, c := range r.Channels {
		if c.A.Node == name && c.B.IsTerminal() {
			return true
		}
		if c.B.Node == name && c.A.IsTerminal() {
			return true
		}
	}
	return false
}

// Planarize transforms a validated netlist into a planar one.
func Planarize(n *netlist.Netlist) (*Result, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	r := &Result{
		Name:  n.Name,
		Muxes: n.Muxes,
	}
	for gi := range n.Parallel {
		g := make([]string, len(n.Parallel[gi]))
		copy(g, n.Parallel[gi])
		r.Parallel = append(r.Parallel, g)
	}
	for i := range n.Units {
		r.Nodes = append(r.Nodes, Node{
			Name:      n.Units[i].Name,
			Kind:      NodeUnit,
			Unit:      &n.Units[i],
			Junctions: -1,
		})
	}

	// Working copy of the nets; pin-overflow rewriting mutates endpoints.
	type wnet struct{ eps []netlist.Endpoint }
	nets := make([]wnet, len(n.Nets))
	for i, net := range n.Nets {
		nets[i].eps = append([]netlist.Endpoint(nil), net.Endpoints...)
	}

	// Pass 1: resolve pin overflow. A unit has two flow pins; a unit
	// referenced by more than two nets keeps its first two references and
	// routes the rest through a switch. Units of one parallel group share
	// a single overflow switch: their lanes actuate in lockstep (that is
	// what the parallel group means), and private per-lane switches
	// between two merged blocks cannot be ordered under the straight
	// routing discipline once there are more than two of them.
	newSwitch := func() string {
		r.SwitchCount++
		name := fmt.Sprintf("s%d", r.SwitchCount)
		r.Nodes = append(r.Nodes, Node{Name: name, Kind: NodeSwitch})
		return name
	}
	type ref struct{ net, ep int }
	refs := map[string][]ref{}
	for ni := range nets {
		for ei, ep := range nets[ni].eps {
			if ep.Unit != "" {
				refs[ep.Unit] = append(refs[ep.Unit], ref{ni, ei})
			}
		}
	}
	groupSwitch := map[int]string{}
	// Deterministic iteration: walk units in declaration order.
	for _, u := range n.Units {
		rs := refs[u.Name]
		if len(rs) <= 2 {
			continue
		}
		var swName string
		if gi := n.ParallelGroup(u.Name); gi >= 0 {
			var ok bool
			if swName, ok = groupSwitch[gi]; !ok {
				swName = newSwitch()
				groupSwitch[gi] = swName
			}
		} else {
			swName = newSwitch()
		}
		// The switch absorbs the excess references; the unit keeps its
		// first reference and gains one channel to the switch.
		for _, rf := range rs[1:] {
			nets[rf.net].eps[rf.ep] = netlist.Endpoint{Unit: swName}
		}
		nets = append(nets, wnet{eps: []netlist.Endpoint{
			{Unit: u.Name}, {Unit: swName},
		}})
	}

	// Pass 2: realise nets. Two-endpoint nets become direct channels;
	// larger nets get a switch with one junction per endpoint.
	junctionsUsed := map[string]int{}
	endFor := func(ep netlist.Endpoint) End {
		if ep.Terminal != "" {
			return End{Terminal: ep.Terminal, Inlet: ep.Inlet, Junction: -1}
		}
		node := r.Node(ep.Unit)
		if node.Kind == NodeSwitch {
			j := junctionsUsed[ep.Unit]
			junctionsUsed[ep.Unit]++
			return End{Node: ep.Unit, Junction: j}
		}
		return End{Node: ep.Unit, Junction: -1}
	}
	for _, net := range nets {
		if len(net.eps) == 2 {
			r.Channels = append(r.Channels, Channel{A: endFor(net.eps[0]), B: endFor(net.eps[1])})
			continue
		}
		swName := newSwitch()
		for _, ep := range net.eps {
			j := junctionsUsed[swName]
			junctionsUsed[swName]++
			r.Channels = append(r.Channels, Channel{
				A: endFor(ep),
				B: End{Node: swName, Junction: j},
			})
		}
	}
	for i := range r.Nodes {
		if r.Nodes[i].Kind == NodeSwitch {
			r.Nodes[i].Junctions = junctionsUsed[r.Nodes[i].Name]
			if r.Nodes[i].Junctions == 0 {
				return nil, fmt.Errorf("planar: switch %s has no junctions", r.Nodes[i].Name)
			}
		}
	}
	if err := r.check(); err != nil {
		return nil, err
	}
	return r, nil
}

// check verifies the planarity invariants the layout phase relies on.
func (r *Result) check() error {
	deg := map[string]int{}
	for _, c := range r.Channels {
		for _, e := range []End{c.A, c.B} {
			if e.IsTerminal() {
				continue
			}
			n := r.Node(e.Node)
			if n == nil {
				return fmt.Errorf("planar: channel references unknown node %q", e.Node)
			}
			deg[e.Node]++
		}
	}
	for _, n := range r.Nodes {
		switch n.Kind {
		case NodeUnit:
			if deg[n.Name] > 2 {
				return fmt.Errorf("planar: unit %s still has %d channel endpoints (max 2)", n.Name, deg[n.Name])
			}
		case NodeSwitch:
			if deg[n.Name] != n.Junctions {
				return fmt.Errorf("planar: switch %s degree %d != junctions %d", n.Name, deg[n.Name], n.Junctions)
			}
		}
	}
	return nil
}

// Stats summarises a planarization result for reporting.
type Stats struct {
	Units, Switches, Channels, Junctions int
}

// Stats returns summary counts.
func (r *Result) Stats() Stats {
	s := Stats{Channels: len(r.Channels)}
	for _, n := range r.Nodes {
		switch n.Kind {
		case NodeUnit:
			s.Units++
		case NodeSwitch:
			s.Switches++
			s.Junctions += n.Junctions
		}
	}
	return s
}
