package planar_test

import (
	"fmt"

	"columbas/internal/netlist"
	"columbas/internal/planar"
)

// A shared interconnect among three mixers cannot be routed with straight
// channels alone; planarization inserts a switch with one junction per
// endpoint (Figure 3(f)).
func ExamplePlanarize() {
	n, err := netlist.ParseString(`
design star
unit a mixer
unit b mixer
unit c mixer
connect in:x a
connect in:y b
connect in:z c
net a b c out:waste
`)
	if err != nil {
		panic(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		panic(err)
	}
	st := pr.Stats()
	fmt.Printf("units=%d switches=%d junctions=%d channels=%d\n",
		st.Units, st.Switches, st.Junctions, st.Channels)
	fmt.Printf("switch needs boundary access: %v\n", pr.SwitchNeedsInlets("s1"))
	// Output:
	// units=3 switches=1 junctions=4 channels=7
	// switch needs boundary access: true
}
