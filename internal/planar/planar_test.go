package planar

import (
	"strings"
	"testing"

	"columbas/internal/netlist"
)

func mustParse(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return n
}

func planarize(t *testing.T, src string) *Result {
	t.Helper()
	r, err := Planarize(mustParse(t, src))
	if err != nil {
		t.Fatalf("Planarize: %v", err)
	}
	return r
}

func TestSimpleChainNoSwitches(t *testing.T) {
	r := planarize(t, `
design chain
unit m1 mixer
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`)
	if r.SwitchCount != 0 {
		t.Fatalf("SwitchCount = %d, want 0", r.SwitchCount)
	}
	if len(r.Channels) != 3 {
		t.Fatalf("channels = %d, want 3", len(r.Channels))
	}
	s := r.Stats()
	if s.Units != 2 || s.Switches != 0 || s.Junctions != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMultiNetGetsSwitch(t *testing.T) {
	// Figure 3(f): pairwise connection of several modules via one switch.
	r := planarize(t, `
design star
unit a mixer
unit b mixer
unit c mixer
unit d mixer
net a b c d out:waste
`)
	if r.SwitchCount != 1 {
		t.Fatalf("SwitchCount = %d, want 1", r.SwitchCount)
	}
	sw := r.Node("s1")
	if sw == nil || sw.Kind != NodeSwitch {
		t.Fatal("switch s1 missing")
	}
	if sw.Junctions != 5 {
		t.Fatalf("junctions = %d, want 5 (one per endpoint)", sw.Junctions)
	}
	// Every original endpoint now has a dedicated channel to the switch.
	if len(r.Channels) != 5 {
		t.Fatalf("channels = %d, want 5", len(r.Channels))
	}
	if !r.SwitchNeedsInlets("s1") {
		t.Fatal("switch carries a terminal, must need boundary access")
	}
}

func TestPinOverflowInsertsSwitch(t *testing.T) {
	// Unit m feeds three chambers: degree 4 > 2 pins.
	r := planarize(t, `
design fanout
unit m mixer
unit c1 chamber
unit c2 chamber
unit c3 chamber
connect in:x m
connect m c1
connect m c2
connect m c3
connect c1 out:w1
connect c2 out:w2
connect c3 out:w3
`)
	if r.SwitchCount != 1 {
		t.Fatalf("SwitchCount = %d, want 1", r.SwitchCount)
	}
	// m keeps its inlet and one channel to the switch.
	if d := r.Degree("m"); d != 2 {
		t.Fatalf("Degree(m) = %d, want 2", d)
	}
	// Planarity invariant holds for every unit.
	for _, node := range r.Nodes {
		if node.Kind == NodeUnit && r.Degree(node.Name) > 2 {
			t.Fatalf("unit %s overflows pins", node.Name)
		}
	}
	sw := r.Node("s1")
	// Switch absorbed 3 rerouted nets + the new m channel = 4 junctions.
	if sw.Junctions != 4 {
		t.Fatalf("junctions = %d, want 4", sw.Junctions)
	}
}

func TestSwitchJunctionEndpointsDistinct(t *testing.T) {
	r := planarize(t, `
design j
unit a mixer
unit b mixer
unit c mixer
net a b c
`)
	seen := map[int]bool{}
	for _, ch := range r.Channels {
		for _, e := range []End{ch.A, ch.B} {
			if e.Node == "s1" {
				if seen[e.Junction] {
					t.Fatalf("junction %d used twice", e.Junction)
				}
				seen[e.Junction] = true
			}
		}
	}
	if len(seen) != 3 {
		t.Fatalf("junctions used = %d, want 3", len(seen))
	}
}

func TestParallelGroupsPropagated(t *testing.T) {
	r := planarize(t, `
design p
unit m1 mixer
unit m2 mixer
connect in:a m1
connect in:b m2
parallel m1 m2
`)
	if len(r.Parallel) != 1 || len(r.Parallel[0]) != 2 {
		t.Fatalf("parallel = %v", r.Parallel)
	}
}

func TestInvalidNetlistRejected(t *testing.T) {
	n := mustParse(t, "design d\nunit a mixer\nunit b mixer\nconnect in:x a\n")
	if _, err := Planarize(n); err == nil || !strings.Contains(err.Error(), "no connections") {
		t.Fatalf("err = %v", err)
	}
}

func TestEndString(t *testing.T) {
	e := End{Terminal: "buf", Inlet: true, Junction: -1}
	if e.String() != "in:buf" {
		t.Errorf("String = %q", e.String())
	}
	e = End{Terminal: "w", Junction: -1}
	if e.String() != "out:w" {
		t.Errorf("String = %q", e.String())
	}
	e = End{Node: "s1", Junction: 2}
	if e.String() != "s1.j2" {
		t.Errorf("String = %q", e.String())
	}
	e = End{Node: "m1", Junction: -1}
	if e.String() != "m1" {
		t.Errorf("String = %q", e.String())
	}
}

func TestNodeKindString(t *testing.T) {
	if NodeUnit.String() != "unit" || NodeSwitch.String() != "switch" {
		t.Error("NodeKind strings wrong")
	}
}

func TestDegreeAndNodeLookup(t *testing.T) {
	r := planarize(t, `
design d
unit a mixer
unit b chamber
connect in:x a
connect a b
connect b out:y
`)
	if r.Node("a") == nil || r.Node("zz") != nil {
		t.Fatal("Node lookup wrong")
	}
	if d := r.Degree("a"); d != 2 {
		t.Fatalf("Degree(a) = %d", d)
	}
	if r.SwitchNeedsInlets("a") {
		t.Fatal("unit is not an inlet-needing switch")
	}
}

func TestMuxCountPropagated(t *testing.T) {
	r := planarize(t, "design d\nmuxes 2\nunit a mixer\nconnect in:x a\n")
	if r.Muxes != 2 {
		t.Fatalf("Muxes = %d", r.Muxes)
	}
}

// Property-style test: for a family of generated fan-out netlists, the
// planarity invariant (unit degree <= 2, switch degree == junctions) holds.
func TestPlanarityInvariantFamily(t *testing.T) {
	for fan := 1; fan <= 9; fan++ {
		var b strings.Builder
		b.WriteString("design fam\nunit hub mixer\n")
		b.WriteString("connect in:src hub\n")
		for i := 0; i < fan; i++ {
			name := string(rune('a' + i))
			b.WriteString("unit " + name + " chamber\n")
			b.WriteString("connect hub " + name + "\n")
			b.WriteString("connect " + name + " out:w" + name + "\n")
		}
		r := planarize(t, b.String())
		for _, n := range r.Nodes {
			switch n.Kind {
			case NodeUnit:
				if d := r.Degree(n.Name); d > 2 {
					t.Fatalf("fan=%d: unit %s degree %d", fan, n.Name, d)
				}
			case NodeSwitch:
				if d := r.Degree(n.Name); d != n.Junctions {
					t.Fatalf("fan=%d: switch %s degree %d != %d", fan, n.Name, d, n.Junctions)
				}
			}
		}
	}
}
