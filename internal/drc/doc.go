// Package drc is the design-rule checker for completed Columba S designs.
// It verifies the geometric guarantees the paper's synthesis flow promises:
// the straight channel-routing discipline, minimum channel spacing d,
// module separation, control-layer exclusivity, fluid-inlet pitch d', and
// chip confinement. The checker is independent of the synthesis code
// paths, so a passing report is meaningful evidence of design validity —
// the reproduction's substitute for fabricating the chip.
//
// Key types: Check runs every Rule against a validate.Design and returns
// a Report listing Violations; Report.OK is the pass/fail verdict the
// pipeline's drc phase reports.
package drc
