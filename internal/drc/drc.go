package drc

import (
	"fmt"
	"math"

	"columbas/internal/geom"
	"columbas/internal/module"
	"columbas/internal/mux"
	"columbas/internal/validate"
)

// Rule identifies a design rule.
type Rule string

// Design rules checked.
const (
	RuleFlowHorizontal Rule = "flow-horizontal"    // flow channels run horizontally
	RuleCtrlVertical   Rule = "ctrl-vertical"      // control channels run vertically
	RuleFlowSpacing    Rule = "flow-spacing"       // parallel flow channels >= d apart
	RuleCtrlSpacing    Rule = "ctrl-spacing"       // control channels >= d apart
	RuleModuleOverlap  Rule = "module-overlap"     // module boxes must not overlap
	RuleCtrlOverlap    Rule = "ctrl-layer-overlap" // control channels must not overlap
	RuleInletPitch     Rule = "inlet-pitch"        // fluid inlets >= d' apart per boundary
	RuleConfinement    Rule = "chip-confinement"   // everything inside the chip
	RuleValveOnLine    Rule = "valve-on-line"      // valves sit on their control line
	RuleMuxIsolation   Rule = "mux-isolation"      // every MUX address isolates one channel
	RuleChannelAccess  Rule = "channel-access"     // flow channels end on modules/boundaries
	RuleSwitchGeometry Rule = "switch-geometry"    // junctions on the spine span, valves between spine and their side
	RulePumpPitch      Rule = "pump-pitch"         // pump valves respect the enlarged pitch
)

// Violation is one design-rule failure.
type Violation struct {
	Rule Rule
	Msg  string
	At   geom.Pt
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (at %s)", v.Rule, v.Msg, v.At)
}

// Report is the outcome of a DRC run.
type Report struct {
	Violations []Violation
	Checked    int // rules evaluated
}

// Clean reports whether the design passed every rule.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

func (r *Report) add(rule Rule, at geom.Pt, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Rule: rule, Msg: fmt.Sprintf(format, args...), At: at,
	})
}

// Check runs all design rules against the design.
func Check(d *validate.Design) *Report {
	rep := &Report{}
	checkOrientation(d, rep)
	checkFlowSpacing(d, rep)
	checkCtrlSpacing(d, rep)
	checkModuleOverlap(d, rep)
	checkInletPitch(d, rep)
	checkConfinement(d, rep)
	checkValvesOnLines(d, rep)
	checkMuxIsolation(d, rep)
	checkChannelAccess(d, rep)
	checkSwitchGeometry(d, rep)
	checkPumpPitch(d, rep)
	rep.Checked = 11
	return rep
}

// checkSwitchGeometry verifies every switch junction lies within the
// spine's vertical span and its valve sits between the junction's entry
// boundary and the spine (otherwise the valve cannot gate the junction).
func checkSwitchGeometry(d *validate.Design, rep *Report) {
	for _, m := range d.Modules {
		if m.Kind != module.KindSwitch {
			continue
		}
		for ji, j := range m.Junctions {
			if j.Y < m.Box.YB-geom.Eps || j.Y > m.Box.YT+geom.Eps {
				rep.add(RuleSwitchGeometry, geom.Pt{X: m.SpineX, Y: j.Y},
					"switch %s junction %d at y=%.0f outside box", m.Name, ji, j.Y)
			}
			if j.Left {
				if j.Valve.At.X <= m.Box.XL-geom.Eps || j.Valve.At.X >= m.SpineX+geom.Eps {
					rep.add(RuleSwitchGeometry, j.Valve.At,
						"switch %s junction %d valve off its channel run", m.Name, ji)
				}
			} else {
				if j.Valve.At.X <= m.SpineX-geom.Eps || j.Valve.At.X >= m.Box.XR+geom.Eps {
					rep.add(RuleSwitchGeometry, j.Valve.At,
						"switch %s junction %d valve off its channel run", m.Name, ji)
				}
			}
		}
	}
}

// checkPumpPitch verifies the enlarged pumping-valve spacing that
// Section 2.1 introduces for manufacturability.
func checkPumpPitch(d *validate.Design, rep *Report) {
	for _, m := range d.Modules {
		var xs []float64
		for _, v := range m.Valves() {
			if v.Kind == module.ValvePump {
				xs = append(xs, v.At.X)
			}
		}
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if dx := math.Abs(xs[i] - xs[j]); dx < module.PumpPitch-geom.Eps {
					rep.add(RulePumpPitch, geom.Pt{X: xs[i]},
						"pump valves of %s are %.0f µm apart (< %.0f)", m.Name, dx, module.PumpPitch)
				}
			}
		}
	}
}

// checkOrientation enforces the straight routing discipline (Section 2).
func checkOrientation(d *validate.Design, rep *Report) {
	for _, f := range d.Flow {
		if !f.Seg.Horizontal() {
			rep.add(RuleFlowHorizontal, f.Seg.A, "flow channel %s is not horizontal", f.Name)
		}
	}
	// Control channels are stored as (x, extent) pairs and are vertical
	// by representation; verify their valve anchors line up instead.
	for _, c := range d.Ctrl {
		if math.IsNaN(c.X) || math.IsInf(c.X, 0) {
			rep.add(RuleCtrlVertical, geom.Pt{}, "control channel %s has invalid x", c.Name)
		}
	}
}

// checkFlowSpacing verifies the minimum spacing d between distinct
// parallel flow channels (edge-to-edge; channels are ChannelW wide).
func checkFlowSpacing(d *validate.Design, rep *Report) {
	minCenter := module.D + module.ChannelW
	for i := 0; i < len(d.Flow); i++ {
		for j := i + 1; j < len(d.Flow); j++ {
			a, b := d.Flow[i].Seg.Canon(), d.Flow[j].Seg.Canon()
			if !a.Horizontal() || !b.Horizontal() {
				continue
			}
			dy := math.Abs(a.A.Y - b.A.Y)
			if dy < geom.Eps {
				continue // same row: continuation of the same fluid path
			}
			if dy >= minCenter-geom.Eps {
				continue
			}
			if geom.SpanOverlap(a.A.X, a.B.X, b.A.X, b.B.X) > geom.Eps {
				rep.add(RuleFlowSpacing, a.A,
					"flow channels %s and %s are %.0f µm apart (< d+w = %.0f)",
					d.Flow[i].Name, d.Flow[j].Name, dy, minCenter)
			}
		}
	}
}

// checkCtrlSpacing verifies control channel pitch and layer exclusivity:
// two control channels at the same x on the same boundary side would
// overlap, and closer than d+w violates spacing.
func checkCtrlSpacing(d *validate.Design, rep *Report) {
	minCenter := module.D + module.ChannelW
	for i := 0; i < len(d.Ctrl); i++ {
		for j := i + 1; j < len(d.Ctrl); j++ {
			a, b := &d.Ctrl[i], &d.Ctrl[j]
			dx := math.Abs(a.X - b.X)
			if dx < geom.Eps && a.Top == b.Top {
				rep.add(RuleCtrlOverlap, geom.Pt{X: a.X},
					"control channels %s and %s overlap at x=%.0f", a.Name, b.Name, a.X)
				continue
			}
			if dx > geom.Eps && dx < minCenter-geom.Eps && a.Top == b.Top {
				rep.add(RuleCtrlSpacing, geom.Pt{X: a.X},
					"control channels %s and %s are %.0f µm apart (< %.0f)",
					a.Name, b.Name, dx, minCenter)
			}
		}
	}
}

func checkModuleOverlap(d *validate.Design, rep *Report) {
	for i := 0; i < len(d.Modules); i++ {
		for j := i + 1; j < len(d.Modules); j++ {
			a, b := d.Modules[i], d.Modules[j]
			if in, ok := a.Box.Intersect(b.Box); ok && in.W() > 1 && in.H() > 1 {
				rep.add(RuleModuleOverlap, in.Center(),
					"modules %s and %s overlap", a.Name, b.Name)
			}
		}
	}
}

// checkInletPitch verifies fluid inlets keep the d' pitch that prevents
// punched ports from overlapping (Figure 3(e)).
func checkInletPitch(d *validate.Design, rep *Report) {
	for i := 0; i < len(d.Inlets); i++ {
		for j := i + 1; j < len(d.Inlets); j++ {
			a, b := d.Inlets[i], d.Inlets[j]
			sameBoundary := math.Abs(a.At.X-b.At.X) < geom.Eps
			if !sameBoundary {
				continue
			}
			if dy := math.Abs(a.At.Y - b.At.Y); dy < module.DPrime-geom.Eps {
				rep.add(RuleInletPitch, a.At,
					"inlets %s and %s are %.0f µm apart (< d' = %.0f)",
					a.Name, b.Name, dy, module.DPrime)
			}
		}
	}
}

func checkConfinement(d *validate.Design, rep *Report) {
	for _, m := range d.Modules {
		if !d.Chip.ContainsRect(m.Box) {
			rep.add(RuleConfinement, m.Box.Center(), "module %s outside chip", m.Name)
		}
	}
	for _, f := range d.Flow {
		if !d.Chip.Contains(f.Seg.A) || !d.Chip.Contains(f.Seg.B) {
			rep.add(RuleConfinement, f.Seg.A, "flow channel %s outside chip", f.Name)
		}
	}
	for _, in := range d.Inlets {
		if !d.Chip.Contains(in.At) {
			rep.add(RuleConfinement, in.At, "inlet %s outside chip", in.Name)
		}
	}
	if d.MuxBottom != nil && !d.Chip.ContainsRect(d.MuxBottom.Box) {
		rep.add(RuleConfinement, d.MuxBottom.Box.Center(), "bottom MUX outside chip")
	}
	if d.MuxTop != nil && !d.Chip.ContainsRect(d.MuxTop.Box) {
		rep.add(RuleConfinement, d.MuxTop.Box.Center(), "top MUX outside chip")
	}
}

func checkValvesOnLines(d *validate.Design, rep *Report) {
	for _, m := range d.Modules {
		for _, l := range m.Lines {
			for _, v := range l.Valves {
				if math.Abs(v.At.X-l.X) > geom.Eps {
					rep.add(RuleValveOnLine, v.At,
						"valve of %s at x=%.0f off its control line x=%.0f", l.Name, v.At.X, l.X)
				}
			}
		}
	}
}

func checkMuxIsolation(d *validate.Design, rep *Report) {
	for _, mx := range []*mux.Mux{d.MuxBottom, d.MuxTop} {
		if mx == nil {
			continue
		}
		for c := 0; c < mx.N; c++ {
			sel, err := mx.Select(c)
			if err != nil {
				rep.add(RuleMuxIsolation, geom.Pt{}, "address %d unselectable: %v", c, err)
				continue
			}
			open := mx.Open(sel)
			if len(open) != 1 || open[0] != c {
				rep.add(RuleMuxIsolation, geom.Pt{},
					"address %d opens channels %v", c, open)
			}
		}
	}
}

// checkChannelAccess verifies every inter-module flow channel terminates
// on a module boundary/pin or a chip flow boundary.
func checkChannelAccess(d *validate.Design, rep *Report) {
	onModule := func(p geom.Pt) bool {
		for _, m := range d.Modules {
			if m.Box.Contains(p) {
				return true
			}
		}
		return false
	}
	onBoundary := func(p geom.Pt) bool {
		return math.Abs(p.X-d.FuncRegion.XL) < 1 || math.Abs(p.X-d.FuncRegion.XR) < 1
	}
	for _, f := range d.Flow {
		for _, p := range []geom.Pt{f.Seg.A, f.Seg.B} {
			if !onModule(p) && !onBoundary(p) {
				rep.add(RuleChannelAccess, p, "flow channel %s endpoint floats", f.Name)
			}
		}
	}
}
