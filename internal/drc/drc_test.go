package drc

import (
	"strings"
	"testing"
	"time"

	"columbas/internal/geom"
	"columbas/internal/layout"
	"columbas/internal/module"
	"columbas/internal/netlist"
	"columbas/internal/planar"
	"columbas/internal/validate"
)

func design(t *testing.T, src string) *validate.Design {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatal(err)
	}
	o := layout.DefaultOptions()
	o.TimeLimit = 2 * time.Second
	o.StallLimit = 30
	o.Gap = 0.1
	p, err := layout.Generate(pr, o)
	if err != nil {
		t.Fatal(err)
	}
	d, err := validate.Validate(p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const chainSrc = `
design chain
unit m1 mixer
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`

func TestCleanDesignPasses(t *testing.T) {
	d := design(t, chainSrc)
	rep := Check(d)
	if !rep.Clean() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %v", v)
		}
	}
	if rep.Checked != 11 {
		t.Fatalf("Checked = %d, want 11", rep.Checked)
	}
}

func TestSwitchDesignPasses(t *testing.T) {
	d := design(t, `
design sw
unit a mixer
unit b mixer sieve
unit c chamber
connect in:x a
connect in:y b
connect b c
net a c out:waste
`)
	rep := Check(d)
	for _, v := range rep.Violations {
		t.Errorf("violation: %v", v)
	}
}

func TestTwoMuxDesignPasses(t *testing.T) {
	d := design(t, `
design two
muxes 2
unit m1 mixer
unit c1 chamber
unit m2 mixer celltrap
unit c2 chamber
connect in:a m1
connect m1 c1
connect c1 out:w1
connect in:b m2
connect m2 c2
connect c2 out:w2
`)
	rep := Check(d)
	for _, v := range rep.Violations {
		t.Errorf("violation: %v", v)
	}
}

func TestDetectsModuleOverlap(t *testing.T) {
	d := design(t, chainSrc)
	// Sabotage: slide c1 onto m1.
	c1 := d.Module("c1")
	m1 := d.Module("m1")
	c1.Translate(m1.Box.XL-c1.Box.XL, m1.Box.YB-c1.Box.YB)
	rep := Check(d)
	if !hasRule(rep, RuleModuleOverlap) {
		t.Fatal("module overlap not detected")
	}
}

func TestDetectsNonHorizontalFlow(t *testing.T) {
	d := design(t, chainSrc)
	d.Flow = append(d.Flow, validate.FlowChannel{
		Name: "diag",
		Seg:  geom.Seg{A: geom.Pt{X: 0, Y: 0}, B: geom.Pt{X: 100, Y: 100}},
	})
	rep := Check(d)
	if !hasRule(rep, RuleFlowHorizontal) {
		t.Fatal("non-horizontal flow channel not detected")
	}
}

func TestDetectsFlowSpacingViolation(t *testing.T) {
	d := design(t, chainSrc)
	base := d.Flow[0].Seg
	d.Flow = append(d.Flow, validate.FlowChannel{
		Name: "tooclose",
		Seg: geom.Seg{
			A: geom.Pt{X: base.A.X, Y: base.A.Y + module.D/2},
			B: geom.Pt{X: base.B.X, Y: base.A.Y + module.D/2},
		},
	})
	rep := Check(d)
	if !hasRule(rep, RuleFlowSpacing) {
		t.Fatal("flow spacing violation not detected")
	}
}

func TestDetectsCtrlOverlap(t *testing.T) {
	d := design(t, chainSrc)
	dup := d.Ctrl[0]
	dup.Name = "dup"
	d.Ctrl = append(d.Ctrl, dup)
	rep := Check(d)
	if !hasRule(rep, RuleCtrlOverlap) {
		t.Fatal("control overlap not detected")
	}
}

func TestDetectsCtrlSpacing(t *testing.T) {
	d := design(t, chainSrc)
	near := d.Ctrl[0]
	near.Name = "near"
	near.X += module.D / 2
	d.Ctrl = append(d.Ctrl, near)
	rep := Check(d)
	if !hasRule(rep, RuleCtrlSpacing) {
		t.Fatal("control spacing violation not detected")
	}
}

func TestDetectsInletPitch(t *testing.T) {
	d := design(t, chainSrc)
	if len(d.Inlets) == 0 {
		t.Fatal("no inlets")
	}
	clone := d.Inlets[0]
	clone.Name = "clone"
	clone.At.Y += module.DPrime / 3
	d.Inlets = append(d.Inlets, clone)
	rep := Check(d)
	if !hasRule(rep, RuleInletPitch) {
		t.Fatal("inlet pitch violation not detected")
	}
}

func TestDetectsConfinement(t *testing.T) {
	d := design(t, chainSrc)
	d.Module("m1").Translate(d.Chip.XR+1000, 0)
	rep := Check(d)
	if !hasRule(rep, RuleConfinement) {
		t.Fatal("confinement violation not detected")
	}
}

func TestDetectsFloatingChannel(t *testing.T) {
	d := design(t, chainSrc)
	// A stub hovering in the MUX region: touches neither a module nor a
	// flow boundary.
	d.Flow = append(d.Flow, validate.FlowChannel{
		Name: "floating",
		Seg: geom.Seg{
			A: geom.Pt{X: d.FuncRegion.XR / 3, Y: -50},
			B: geom.Pt{X: d.FuncRegion.XR / 2, Y: -50},
		},
	})
	rep := Check(d)
	if !hasRule(rep, RuleChannelAccess) {
		t.Fatal("floating channel not detected")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: RuleFlowSpacing, Msg: "too close", At: geom.Pt{X: 1, Y: 2}}
	s := v.String()
	if !strings.Contains(s, "flow-spacing") || !strings.Contains(s, "too close") {
		t.Fatalf("String = %q", s)
	}
}

func hasRule(rep *Report, rule Rule) bool {
	for _, v := range rep.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestDetectsSwitchGeometryViolation(t *testing.T) {
	d := design(t, `
design swg
unit a mixer
unit b mixer
net a b out:w
connect in:x a
connect in:y b
`)
	sw := d.Module("s1")
	if sw == nil {
		t.Fatal("switch missing")
	}
	// Sabotage: push a junction outside the box.
	sw.Junctions[0].Y = sw.Box.YT + 5000
	rep := Check(d)
	if !hasRule(rep, RuleSwitchGeometry) {
		t.Fatal("out-of-box junction not detected")
	}
}

func TestDetectsPumpPitchViolation(t *testing.T) {
	d := design(t, chainSrc)
	m1 := d.Module("m1")
	// Sabotage: move one pump valve next to another.
	moved := false
	for li := range m1.Lines {
		for vi := range m1.Lines[li].Valves {
			if m1.Lines[li].Valves[vi].Kind == module.ValvePump && !moved {
				m1.Lines[li].Valves[vi].At.X += module.PumpPitch - 50
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("no pump valve found")
	}
	rep := Check(d)
	if !hasRule(rep, RulePumpPitch) {
		t.Fatal("pump pitch violation not detected")
	}
}
