package layout

import (
	"fmt"

	"columbas/internal/geom"
	"columbas/internal/module"
	"columbas/internal/planar"
)

// buildBlocks merges parallel functional units into blocks (Figure 6(a))
// and wraps every remaining unit in a single-unit block. The returned map
// resolves unit names to their block.
func buildBlocks(pr *planar.Result) ([]*Block, map[string]*Block, error) {
	byUnit := map[string]*Block{}
	var blocks []*Block

	inGroup := map[string]bool{}
	for _, g := range pr.Parallel {
		for _, name := range g {
			inGroup[name] = true
		}
	}

	for gi, g := range pr.Parallel {
		bs, err := buildGroupBlocks(pr, gi, g)
		if err != nil {
			return nil, nil, err
		}
		for _, b := range bs {
			blocks = append(blocks, b)
			for i := range b.Units {
				byUnit[b.Units[i].Name] = b
			}
		}
	}
	for i := range pr.Nodes {
		n := &pr.Nodes[i]
		if n.Kind != planar.NodeUnit || inGroup[n.Name] {
			continue
		}
		bs, err := buildGroupBlocks(pr, -1, []string{n.Name})
		if err != nil {
			return nil, nil, err
		}
		b := bs[0]
		b.Name = n.Name
		blocks = append(blocks, b)
		byUnit[n.Name] = b
	}
	return blocks, byUnit, nil
}

// buildGroupBlocks lays the units of one parallel group out as stacked
// chains: sequentially connected units side by side in a row, parallel
// rows stacked vertically so their control channels align. Chains of
// different composition go into separate blocks: a switch connecting two
// units of one block would make the x-order cyclic under the straight
// routing discipline, so switch-separated stages merge stage by stage.
func buildGroupBlocks(pr *planar.Result, gi int, members []string) ([]*Block, error) {
	name := fmt.Sprintf("g%d", gi)
	if len(members) == 1 {
		name = members[0]
	}

	inSet := map[string]bool{}
	for _, m := range members {
		if n := pr.Node(m); n == nil || n.Kind != planar.NodeUnit {
			return nil, fmt.Errorf("layout: parallel group member %q is not a unit", m)
		}
		inSet[m] = true
	}
	// Intra-group adjacency from channels with both ends in the group.
	adj := map[string][]string{}
	for _, c := range pr.Channels {
		if c.A.Node != "" && c.B.Node != "" && inSet[c.A.Node] && inSet[c.B.Node] {
			adj[c.A.Node] = append(adj[c.A.Node], c.B.Node)
			adj[c.B.Node] = append(adj[c.B.Node], c.A.Node)
		}
	}
	// Chains: walk each connected component from an endpoint, in member
	// declaration order for determinism.
	visited := map[string]bool{}
	var chains [][]string
	for _, m := range members {
		if visited[m] {
			continue
		}
		// Find the western end of m's component: a node of degree <= 1.
		comp := component(m, adj)
		start := ""
		for _, u := range comp {
			if len(adj[u]) <= 1 {
				start = u
				break
			}
		}
		if start == "" {
			return nil, fmt.Errorf("layout: parallel group %s contains a cycle", name)
		}
		chain := walkChain(start, adj)
		for _, u := range chain {
			if len(adj[u]) > 2 {
				return nil, fmt.Errorf("layout: unit %s branches inside parallel group %s", u, name)
			}
			visited[u] = true
		}
		chains = append(chains, chain)
	}

	// Partition chains by composition signature; one block per partition.
	sig := func(chain []string) string {
		s := ""
		for _, u := range chain {
			un := pr.Node(u).Unit
			s += fmt.Sprintf("%v/%v;", un.Type, un.Opt)
		}
		return s
	}
	var order []string
	bySig := map[string][][]string{}
	for _, chain := range chains {
		k := sig(chain)
		if _, ok := bySig[k]; !ok {
			order = append(order, k)
		}
		bySig[k] = append(bySig[k], chain)
	}
	var blocks []*Block
	for pi, k := range order {
		bname := name
		if len(order) > 1 {
			bname = fmt.Sprintf("%s.%d", name, pi)
		}
		blocks = append(blocks, buildChainBlock(pr, bname, bySig[k]))
	}
	return blocks, nil
}

// buildChainBlock stacks same-composition chains into one block.
func buildChainBlock(pr *planar.Result, name string, chains [][]string) *Block {
	b := &Block{Name: name}
	yCursor := 0.0
	for row, chain := range chains {
		// Pin alignment: the row's flow line sits at the maximum pin
		// offset among its units.
		pinMax := 0.0
		for _, uname := range chain {
			u := pr.Node(uname).Unit
			if off := module.PinYOffset(*u); off > pinMax {
				pinMax = off
			}
		}
		x := 0.0
		rowTop := 0.0
		for col, uname := range chain {
			u := pr.Node(uname).Unit
			w, h := module.Footprint(*u)
			yOff := pinMax - module.PinYOffset(*u)
			b.Units = append(b.Units, BlockUnit{
				Name: uname,
				Unit: u,
				Off:  geom.Pt{X: x, Y: yCursor + yOff},
				Row:  row,
				Col:  col,
			})
			if yOff+h > rowTop {
				rowTop = yOff + h
			}
			x += w
			if col < len(chain)-1 {
				x += 2 * module.D // intra-chain channel gap
			}
		}
		if x > b.W {
			b.W = x
		}
		b.RowPinY = append(b.RowPinY, yCursor+pinMax)
		yCursor += rowTop + 2*module.D
	}
	b.H = yCursor - 2*module.D // no margin above the last row

	// Control lines shared across rows: the widest row defines the count.
	rowLines := map[int]int{}
	for i := range b.Units {
		rowLines[b.Units[i].Row] += module.ControlLineCount(*b.Units[i].Unit)
	}
	for _, n := range rowLines {
		if n > b.CtrlLines {
			b.CtrlLines = n
		}
	}
	return b
}

func component(start string, adj map[string][]string) []string {
	seen := map[string]bool{start: true}
	stack := []string{start}
	var out []string
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, u)
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return out
}

func walkChain(start string, adj map[string][]string) []string {
	chain := []string{start}
	prev := ""
	cur := start
	for {
		next := ""
		for _, v := range adj[cur] {
			if v != prev {
				next = v
				break
			}
		}
		if next == "" {
			return chain
		}
		chain = append(chain, next)
		prev, cur = cur, next
	}
}
