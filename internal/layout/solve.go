package layout

import (
	"fmt"
	"time"

	"columbas/internal/geom"
	"columbas/internal/milp"
	"columbas/internal/obs"
)

// maxSepRounds bounds the lazy non-overlap separation loop.
const maxSepRounds = 30

// solve runs the greedy seed, then iterates MILP solves with lazy
// non-overlap separation: disjunctions (3)-(5) are only added for
// rectangle pairs that actually overlap in a solution. Most pairs are
// already separated by the attachment chain structure, so the models stay
// small — the engineering counterpart of the paper's model-reduction
// theme.
func (b *builder) solve(opt Options) (*Plan, error) {
	seedSp := opt.Obs.Child("greedy seed")
	b.greedyPlace()
	b.snapshotSeed()
	seedSp.SetInt("rects", int64(len(b.rects)))
	seedSp.End()

	plan := &Plan{
		Name:   b.pr.Name,
		Muxes:  b.pr.Muxes,
		Rects:  b.rects,
		Planar: b.pr,
	}

	if opt.SkipMILP {
		plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
		plan.Stats = SolveStats{
			Status:   milp.Feasible,
			SeedUsed: true,
			SeedOnly: true,
		}
		return plan, nil
	}

	guided := opt.Effort == EffortGuided ||
		(opt.GuidedThreshold > 0 && len(b.rects) > opt.GuidedThreshold)
	tl := opt.TimeLimit
	if tl == 0 {
		tl = 30 * time.Second
	}
	stall := opt.StallLimit
	if stall == 0 {
		stall = 200
	}
	deadline := time.Now().Add(tl)
	if !opt.Deadline.IsZero() && opt.Deadline.Before(deadline) {
		deadline = opt.Deadline
	}

	// Later separation rounds only need to re-settle the fresh pairs, so
	// their stall budget shrinks: the first round explores, the rest fix.
	roundStall := func(round int) int {
		if round <= 1 {
			return stall
		}
		if s := stall / 4; s > 30 {
			return s
		}
		return 30
	}

	var active [][2]int
	activeSet := map[[2]int]bool{}
	if opt.EagerSeparation {
		n := len(b.rects)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if b.needDisjunction(i, j) {
					p := [2]int{i, j}
					active = append(active, p)
					activeSet[p] = true
				}
			}
		}
	}
	var last *milp.Result
	var agg milp.SearchStats
	totalNodes := 0
	rounds := 0
	for rounds < maxSepRounds {
		if interrupted(opt.Interrupt) {
			// Canceled between rounds: the valid greedy seed stands.
			agg.Interrupted = true
			b.restoreSeed()
			plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
			plan.Stats = SolveStats{
				Status: milp.Feasible, Nodes: totalNodes,
				SeedUsed: true, SeedOnly: true,
				Search: agg,
			}
			plan.Stats.Rounds = rounds
			return plan, nil
		}
		rounds++
		b.buildMILP(guided, active)
		var seed []float64
		if !opt.NoSeed {
			seed = b.seedVector()
		}
		remaining := time.Until(deadline)
		if remaining < time.Second {
			remaining = time.Second
		}
		roundSp := opt.Obs.Child(fmt.Sprintf("milp round %d", rounds))
		res, err := b.model.Solve(milp.Options{
			TimeLimit:   remaining,
			Deadline:    opt.Deadline,
			Interrupt:   opt.Interrupt,
			Gap:         opt.Gap,
			StallLimit:  roundStall(rounds),
			Start:       seed,
			Workers:     opt.Workers,
			NoWarmStart: opt.NoWarmStart,
			NoCuts:      opt.NoCuts,
			NoPresolve:  opt.NoPresolve,
			Branching:   opt.Branching,
			Kernel:      opt.Kernel,
		})
		if err != nil {
			roundSp.End()
			return nil, fmt.Errorf("layout: MILP solve: %w", err)
		}
		agg.Merge(res.Stats)
		recordRound(roundSp, b, res, len(active))
		totalNodes += res.Nodes
		if res.Status == milp.Infeasible {
			return nil, fmt.Errorf("layout: generation model infeasible for %s", b.pr.Name)
		}
		if res.Status != milp.Optimal && res.Status != milp.Feasible {
			// Budget exhausted with no incumbent: the greedy seed stands.
			b.restoreSeed()
			plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
			plan.Stats = SolveStats{
				Status: res.Status, Nodes: totalNodes,
				Vars: b.model.NumVars(), Rows: b.model.NumRows(), Binaries: b.model.NumInt(),
				SeedOnly: true,
				Search:   agg,
			}
			return plan, nil
		}
		plan.XMax, plan.YMax = b.applySolution(res)
		last = res
		fresh := b.overlappingPairs(activeSet)
		if len(fresh) == 0 {
			break
		}
		for _, p := range fresh {
			activeSet[p] = true
		}
		active = append(active, fresh...)
		if time.Now().After(deadline) {
			// Out of budget with unresolved overlaps: keep the valid seed.
			b.restoreSeed()
			plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
			plan.Stats = SolveStats{
				Status: milp.Feasible, Nodes: totalNodes,
				Vars: b.model.NumVars(), Rows: b.model.NumRows(), Binaries: b.model.NumInt(),
				SeedUsed: true, SeedOnly: true,
				Search: agg,
			}
			return plan, nil
		}
	}
	// Separation must have converged to an overlap-free solution;
	// otherwise fall back to the seed, which is overlap-free by
	// construction.
	if len(b.overlappingPairs(activeSet)) > 0 || last == nil {
		b.restoreSeed()
		plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
		plan.Stats.Status = milp.Feasible
		plan.Stats.SeedUsed = true
		plan.Stats.SeedOnly = true
		plan.Stats.Search = agg
		return plan, nil
	}
	plan.Stats = SolveStats{
		Status:   last.Status,
		Nodes:    totalNodes,
		Runtime:  last.Runtime,
		Obj:      last.Obj,
		Bound:    last.Bound,
		Vars:     b.model.NumVars(),
		Rows:     b.model.NumRows(),
		Binaries: b.model.NumInt(),
		SeedUsed: true,
		Search:   agg,
	}
	plan.Stats.Rounds = rounds
	return plan, nil
}

// interrupted reports whether the cancellation channel has fired (nil:
// never).
func interrupted(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// recordRound attaches one separation round's model shape and solver
// counters to its trace span. No-op on a nil span.
func recordRound(sp *obs.Span, b *builder, res *milp.Result, activePairs int) {
	if sp == nil {
		return
	}
	sp.Label("status", res.Status.String())
	sp.SetInt("vars", int64(b.model.NumVars()))
	sp.SetInt("rows", int64(b.model.NumRows()))
	sp.SetInt("binaries", int64(b.model.NumInt()))
	sp.SetInt("active_pairs", int64(activePairs))
	st := res.Stats
	sp.SetInt("nodes", st.NodesExplored)
	sp.SetInt("nodes_pruned", st.NodesPruned)
	sp.SetInt("nodes_cutoff", st.NodesCutoff)
	sp.SetInt("lp_solves", st.LPSolves)
	sp.SetInt("simplex_pivots", st.SimplexPivots)
	sp.SetInt("warm_starts", st.WarmStarts)
	sp.SetInt("warm_pivots", st.WarmPivots)
	sp.SetInt("eta_updates", st.EtaUpdates)
	sp.SetInt("refactorizations", st.Refactorizations)
	sp.SetInt("sparse_refactorizations", st.SparseRefactorizations)
	sp.SetInt("dense_fallbacks", st.DenseFallbacks)
	sp.SetInt("fill_in", st.FillIn)
	sp.SetInt("basis_nonzeros", st.BasisNonzeros)
	sp.SetInt("workspace_reuses", st.WorkspaceReuses)
	sp.SetInt("incumbent_updates", st.IncumbentUpdates)
	sp.SetInt("cuts_added", st.CutsAdded)
	sp.SetInt("cut_rounds", st.CutRounds)
	sp.SetInt("nodes_presolved", st.NodesPresolved)
	sp.SetInt("bounds_tightened", st.BoundsTightened)
	sp.SetInt("branchings", st.Branchings)
	sp.SetInt("pseudocost_branches", st.PseudocostBranches)
	sp.End()
}

// snapshotSeed preserves the greedy geometry: the separation loop derives
// warm starts and guided relations from it, and failed runs restore it.
func (b *builder) snapshotSeed() {
	b.seedBoxes = make([]geom.Rect, len(b.rects))
	b.seedTops = make([]bool, len(b.rects))
	for i, r := range b.rects {
		b.seedBoxes[i] = r.Box
		b.seedTops[i] = r.CtrlTop
	}
}

func (b *builder) restoreSeed() {
	for i, r := range b.rects {
		r.Box = b.seedBoxes[i]
		r.CtrlTop = b.seedTops[i]
	}
}
