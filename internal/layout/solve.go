package layout

import (
	"fmt"
	"time"

	"columbas/internal/geom"
	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/obs"
)

// maxSepRounds bounds the lazy non-overlap separation loop.
const maxSepRounds = 30

// solve runs the greedy seed, then iterates MILP solves with lazy
// non-overlap separation: disjunctions (3)-(5) are only added for
// rectangle pairs that actually overlap in a solution. Most pairs are
// already separated by the attachment chain structure, so the models stay
// small — the engineering counterpart of the paper's model-reduction
// theme.
func (b *builder) solve(opt Options) (*Plan, error) {
	seedSp := opt.Obs.Child("greedy seed")
	b.greedyPlace()
	b.snapshotSeed()
	seedSp.SetInt("rects", int64(len(b.rects)))
	seedSp.End()

	plan := &Plan{
		Name:   b.pr.Name,
		Muxes:  b.pr.Muxes,
		Rects:  b.rects,
		Planar: b.pr,
	}

	if opt.SkipMILP {
		plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
		plan.Stats = SolveStats{
			Status:   milp.Feasible,
			SeedUsed: true,
			SeedOnly: true,
		}
		return plan, nil
	}

	guided := opt.Effort == EffortGuided ||
		(opt.GuidedThreshold > 0 && len(b.rects) > opt.GuidedThreshold)
	tl := opt.TimeLimit
	if tl == 0 {
		tl = 30 * time.Second
	}
	stall := opt.StallLimit
	if stall == 0 {
		stall = 200
	}
	deadline := time.Now().Add(tl)
	if !opt.Deadline.IsZero() && opt.Deadline.Before(deadline) {
		deadline = opt.Deadline
	}

	var active [][2]int
	activeSet := map[[2]int]bool{}
	if opt.EagerSeparation {
		n := len(b.rects)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if b.needDisjunction(i, j) {
					p := [2]int{i, j}
					active = append(active, p)
					activeSet[p] = true
				}
			}
		}
	}
	// Delta warm start: a donor design's converged pair set pre-fills the
	// separation loop (skipping the rounds that would rediscover it), its
	// geometry fixes the relative order of donor-placed pairs (collapsing
	// their disjunction binaries) and becomes a candidate starting
	// incumbent each round, and its root basis warm-starts the first MILP
	// round. Everything is validated; stale donor material silently
	// degrades to a cold round — including a mid-loop rebuild when the
	// donor-fixed relations turn out to over-constrain the edited design.
	hint := opt.Warm
	var hintBoxes []geom.Rect
	var hintTops []bool
	var hintMatched []bool
	var hintPairList [][2]int
	hintGeom := false
	hintPairsAdded := 0
	deltaFixed := map[[2]int]bool{}
	if hint != nil {
		if hp := b.hintPairs(hint, activeSet); len(hp) > 0 {
			active = append(active, hp...)
			hintPairList = hp
			hintPairsAdded = len(hp)
		}
		hintBoxes, hintTops, hintMatched, hintGeom = b.hintGeometry(hint)
		if hintGeom && !guided {
			deltaFixedPairs(deltaFixed, active, hintMatched)
		}
	}
	b.deltaBoxes = hintBoxes
	// Later separation rounds only need to re-settle the fresh pairs, so
	// their stall budget shrinks: the first round explores, the rest fix.
	// A round 1 pre-filled from a donor pair set is already a fix round —
	// the disjunctions are converged, not discovered — and exploring the
	// enlarged model at the full stall budget would cost more wall than
	// the cold rounds it replaces.
	roundStall := func(round int) int {
		if round <= 1 && hintPairsAdded == 0 {
			return stall
		}
		if s := stall / 4; s > 30 {
			return s
		}
		return 30
	}
	var last *milp.Result
	var agg milp.SearchStats
	totalNodes := 0
	rounds := 0
	deltaDropped := false
	lastRestricted := false
	for rounds < maxSepRounds {
		if interrupted(opt.Interrupt) {
			// Canceled between rounds: the valid greedy seed stands.
			agg.Interrupted = true
			b.restoreSeed()
			plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
			plan.Stats = SolveStats{
				Status: milp.Feasible, Nodes: totalNodes,
				SeedUsed: true, SeedOnly: true,
				Search: agg,
			}
			plan.Stats.Rounds = rounds
			return plan, nil
		}
		rounds++
		b.deltaFixed = deltaFixed
		b.buildMILP(guided, active)
		var seed []float64
		if !opt.NoSeed {
			seed = b.seedVector()
		}
		// The donor geometry competes with the greedy seed for the round's
		// starting incumbent: whichever validates with the better objective
		// wins. A donor vector that fails the feasibility check (overlaps
		// introduced by the edit, missing rects) is dropped silently.
		usedHintVec := false
		if hintGeom {
			hv := b.hintVector(hintBoxes, hintTops)
			if ok, hobj := b.model.CheckStart(hv); ok {
				use := true
				if seed != nil {
					if sok, sobj := b.model.CheckStart(seed); sok && sobj <= hobj {
						use = false
					}
				}
				if use {
					seed = hv
					usedHintVec = true
				}
			}
		}
		var rootBasis *lp.Basis
		if hint != nil && rounds == 1 {
			rootBasis = hint.RootBasis
		}
		remaining := time.Until(deadline)
		if remaining < time.Second {
			remaining = time.Second
		}
		roundSp := opt.Obs.Child(fmt.Sprintf("milp round %d", rounds))
		res, err := b.model.Solve(milp.Options{
			TimeLimit:   remaining,
			Deadline:    opt.Deadline,
			Interrupt:   opt.Interrupt,
			Gap:         opt.Gap,
			StallLimit:  roundStall(rounds),
			Start:       seed,
			RootBasis:   rootBasis,
			Workers:     opt.Workers,
			NoWarmStart: opt.NoWarmStart,
			NoCuts:      opt.NoCuts,
			NoPresolve:  opt.NoPresolve,
			Branching:   opt.Branching,
			Kernel:      opt.Kernel,
		})
		if err != nil {
			roundSp.End()
			return nil, fmt.Errorf("layout: MILP solve: %w", err)
		}
		agg.Merge(res.Stats)
		if res.Status == milp.Infeasible && !deltaDropped &&
			(b.deltaApplied > 0 || hintPairsAdded > 0) {
			// The donor material over-constrained the edited design: a
			// fixed ordering the new extents cannot realise, or a donor
			// disjunction demanding a hard margin separation the cold
			// trajectory would never even ask for (its separation oracle
			// tolerates slack the big-M rows do not). Drop every
			// model-shaping part of the hint — fixed relations and
			// pre-filled pairs — and redo the separation as a fresh cold
			// round; the oracle re-discovers any pair the design genuinely
			// needs, and true infeasibility is re-detected there, so warm
			// and cold verdicts cannot diverge.
			agg.DeltaFallbacks++
			recordRound(roundSp, b, res, len(active))
			totalNodes += res.Nodes
			deltaFixed = map[[2]int]bool{}
			if hintPairsAdded > 0 {
				drop := make(map[[2]int]bool, len(hintPairList))
				for _, p := range hintPairList {
					drop[p] = true
				}
				kept := active[:0]
				for _, p := range active {
					if drop[p] {
						delete(activeSet, p)
						continue
					}
					kept = append(kept, p)
				}
				active = kept
				hintPairsAdded = 0
			}
			deltaDropped = true
			continue
		}
		if hint != nil {
			// Exactly one delta counter per round while a hint is active:
			// warm when any donor material reached the round (incumbent,
			// donor-fixed relations, pre-filled pairs, or the round-1 root
			// basis), fallback when the hint contributed nothing.
			if usedHintVec {
				agg.IncumbentFromHint++
			}
			if usedHintVec || b.deltaApplied > 0 ||
				(rounds == 1 && (hintPairsAdded > 0 || rootBasis != nil)) {
				agg.DeltaWarmStarts++
			} else {
				agg.DeltaFallbacks++
			}
		}
		recordRound(roundSp, b, res, len(active))
		totalNodes += res.Nodes
		if res.Status == milp.Infeasible {
			// The discovered pair set admits no point satisfying every
			// margin and band row. Which pairs get discovered is
			// trajectory-dependent (warm starts, ablations and budgets all
			// steer the separation loop), so erroring here would make the
			// synthesis verdict depend on the solver path taken. The greedy
			// seed is a valid overlap-free layout regardless; deliver it —
			// DRC still judges the result — exactly like the other dead
			// ends (budget exhausted, unresolved overlaps at the cap).
			b.restoreSeed()
			plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
			plan.Stats = SolveStats{
				Status: res.Status, Nodes: totalNodes,
				Vars: b.model.NumVars(), Rows: b.model.NumRows(), Binaries: b.model.NumInt(),
				SeedUsed: true, SeedOnly: true,
				Search: agg,
			}
			plan.Stats.Rounds = rounds
			return plan, nil
		}
		if res.Status != milp.Optimal && res.Status != milp.Feasible {
			// Budget exhausted with no incumbent: the greedy seed stands.
			b.restoreSeed()
			plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
			plan.Stats = SolveStats{
				Status: res.Status, Nodes: totalNodes,
				Vars: b.model.NumVars(), Rows: b.model.NumRows(), Binaries: b.model.NumInt(),
				SeedOnly: true,
				Search:   agg,
			}
			return plan, nil
		}
		plan.XMax, plan.YMax = b.applySolution(res)
		last = res
		lastRestricted = b.deltaApplied > 0
		fresh := b.overlappingPairs(activeSet)
		if len(fresh) == 0 {
			break
		}
		for _, p := range fresh {
			activeSet[p] = true
		}
		active = append(active, fresh...)
		if hintGeom && !guided && !deltaDropped {
			// Freshly separated pairs of donor-placed rects can be fixed
			// too: the donor layout kept them apart even without an
			// explicit disjunction, so its ordering is just as valid.
			deltaFixedPairs(deltaFixed, fresh, hintMatched)
		}
		if time.Now().After(deadline) {
			// Out of budget with unresolved overlaps: keep the valid seed.
			b.restoreSeed()
			plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
			plan.Stats = SolveStats{
				Status: milp.Feasible, Nodes: totalNodes,
				Vars: b.model.NumVars(), Rows: b.model.NumRows(), Binaries: b.model.NumInt(),
				SeedUsed: true, SeedOnly: true,
				Search: agg,
			}
			return plan, nil
		}
	}
	// Separation must have converged to an overlap-free solution;
	// otherwise fall back to the seed, which is overlap-free by
	// construction.
	if len(b.overlappingPairs(activeSet)) > 0 || last == nil {
		b.restoreSeed()
		plan.XMax, plan.YMax = b.seedXMax, b.seedYMax
		plan.Stats.Status = milp.Feasible
		plan.Stats.SeedUsed = true
		plan.Stats.SeedOnly = true
		plan.Stats.Search = agg
		return plan, nil
	}
	status := last.Status
	if lastRestricted && status == milp.Optimal {
		// Donor-fixed relations restrict the search to the donor's
		// topology: the solve is exact within that restriction, but
		// global optimality is unproven, so the honest status is
		// Feasible — same as a cold solve that stalled out.
		status = milp.Feasible
	}
	plan.Stats = SolveStats{
		Status:   status,
		Nodes:    totalNodes,
		Runtime:  last.Runtime,
		Obj:      last.Obj,
		Bound:    last.Bound,
		Vars:     b.model.NumVars(),
		Rows:     b.model.NumRows(),
		Binaries: b.model.NumInt(),
		SeedUsed: true,
		Search:   agg,
	}
	plan.Stats.Rounds = rounds
	// Donor payload for the next similar solve: the converged pair set
	// and the final round's root basis (see HintFromPlan).
	plan.ActivePairs = b.pairNames(active)
	plan.RootBasis = last.RootBasis
	return plan, nil
}

// interrupted reports whether the cancellation channel has fired (nil:
// never).
func interrupted(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// recordRound attaches one separation round's model shape and solver
// counters to its trace span. No-op on a nil span.
func recordRound(sp *obs.Span, b *builder, res *milp.Result, activePairs int) {
	if sp == nil {
		return
	}
	sp.Label("status", res.Status.String())
	sp.SetInt("vars", int64(b.model.NumVars()))
	sp.SetInt("rows", int64(b.model.NumRows()))
	sp.SetInt("binaries", int64(b.model.NumInt()))
	sp.SetInt("active_pairs", int64(activePairs))
	st := res.Stats
	sp.SetInt("nodes", st.NodesExplored)
	sp.SetInt("nodes_pruned", st.NodesPruned)
	sp.SetInt("nodes_cutoff", st.NodesCutoff)
	sp.SetInt("lp_solves", st.LPSolves)
	sp.SetInt("simplex_pivots", st.SimplexPivots)
	sp.SetInt("warm_starts", st.WarmStarts)
	sp.SetInt("warm_pivots", st.WarmPivots)
	sp.SetInt("eta_updates", st.EtaUpdates)
	sp.SetInt("refactorizations", st.Refactorizations)
	sp.SetInt("sparse_refactorizations", st.SparseRefactorizations)
	sp.SetInt("dense_fallbacks", st.DenseFallbacks)
	sp.SetInt("fill_in", st.FillIn)
	sp.SetInt("basis_nonzeros", st.BasisNonzeros)
	sp.SetInt("workspace_reuses", st.WorkspaceReuses)
	sp.SetInt("incumbent_updates", st.IncumbentUpdates)
	sp.SetInt("cuts_added", st.CutsAdded)
	sp.SetInt("cut_rounds", st.CutRounds)
	sp.SetInt("nodes_presolved", st.NodesPresolved)
	sp.SetInt("bounds_tightened", st.BoundsTightened)
	sp.SetInt("branchings", st.Branchings)
	sp.SetInt("pseudocost_branches", st.PseudocostBranches)
	sp.End()
}

// snapshotSeed preserves the greedy geometry: the separation loop derives
// warm starts and guided relations from it, and failed runs restore it.
func (b *builder) snapshotSeed() {
	b.seedBoxes = make([]geom.Rect, len(b.rects))
	b.seedTops = make([]bool, len(b.rects))
	for i, r := range b.rects {
		b.seedBoxes[i] = r.Box
		b.seedTops[i] = r.CtrlTop
	}
}

func (b *builder) restoreSeed() {
	for i, r := range b.rects {
		r.Box = b.seedBoxes[i]
		r.CtrlTop = b.seedTops[i]
	}
}
