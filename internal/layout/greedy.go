package layout

import (
	"math"
	"sort"

	"columbas/internal/module"
)

// greedyPlace produces a feasible seed placement using an ascending
// staircase: placeables are walked in topological west-of order, grouped
// by connected component, and each block starts east of and above the
// previous one. This construction respects every constraint family of the
// generation model by construction:
//
//   - attachment equalities hold because x runs with the topological order
//     and flow rows rise monotonically, so no channel crosses a module;
//   - control rectangles extend to their MUX boundary through x-spans
//     that contain no other placeable (x-spans are pairwise disjoint per
//     lane, and lanes are vertically separated);
//   - switch spines stretch over all their incident rows (constraint 12).
//
// For 2-MUX designs the components are distributed over two lanes (bottom
// lane controls exit downward, top lane upward), which compresses the x
// dimension at the cost of height — the trade-off visible in Table 1.
func (b *builder) greedyPlace() {
	placeables := b.sortedPlaceables()
	comps := b.components(placeables)

	nLanes := 1
	if b.pr.Muxes == 2 {
		nLanes = 2
	}
	// Assign whole components to lanes, balancing estimated width.
	laneOf := make(map[int]int) // component index -> lane
	laneWidth := make([]float64, nLanes)
	for ciIdx, comp := range comps {
		w := 0.0
		for _, i := range comp {
			w += b.rects[i].W + 2*module.D
		}
		lane := 0
		for l := 1; l < nLanes; l++ {
			if laneWidth[l] < laneWidth[lane] {
				lane = l
			}
		}
		laneOf[ciIdx] = lane
		laneWidth[lane] += w
	}

	// Pass 1: x positions (shared-order cursors per lane; switches reserve
	// x in every lane) and lane-relative y positions.
	xCursor := make([]float64, nLanes)
	yCursor := make([]float64, nLanes)
	for l := range xCursor {
		xCursor[l] = 2 * module.D
	}
	relY := make(map[int]float64) // placeable -> lane-relative y
	laneIdx := make(map[int]int)  // placeable -> lane
	yDone := make(map[int]bool)   // y already bound by a chain edge
	edges := b.blockEdges()       // placeable edges with pin deltas

	// Switch-to-boundary rects occupy rows above their switch's partners;
	// reserve that stratum space (plus the d' fluid-port pitch toward the
	// next stratum's boundary ports) so later blocks in the lane clear
	// it. The reservation lands when the switch's last partner is placed.
	eastRes := map[int]float64{}
	for _, r := range b.rects {
		if si, _ := b.switchBoundaryRect(r); si >= 0 {
			eastRes[si] += r.H + 2*module.D
		}
	}
	for si := range eastRes {
		eastRes[si] += module.DPrime
	}
	partnersLeft := map[int]int{}
	partnerOf := map[int][]int{} // placeable -> switches it unblocks
	for i, r := range b.rects {
		if r.Kind != RSwitch {
			continue
		}
		// The switch itself counts as a pseudo-partner so the reservation
		// can never fire before the switch has a lane.
		partnersLeft[i] = 1
		partnerOf[i] = append(partnerOf[i], i)
		for _, p := range b.switchPartners(i) {
			partnersLeft[i]++
			partnerOf[p] = append(partnerOf[p], i)
		}
	}

	for ciIdx, comp := range comps {
		lane := laneOf[ciIdx]
		for _, i := range comp {
			r := b.rects[i]
			laneIdx[i] = lane
			// x: after this lane's cursor and after every western partner.
			x := xCursor[lane]
			for _, e := range edges {
				if e.east == i && b.rects[e.west].Box.XR > 0 {
					if v := b.rects[e.west].Box.XR + 2*module.D; v > x {
						x = v
					}
				}
			}
			r.Box.XL = x
			r.Box.XR = x + r.W
			xCursor[lane] = r.Box.XR + 2*module.D
			if r.Kind == RSwitch {
				// Switches may span both lanes vertically; reserve their
				// x-span everywhere.
				for l := range xCursor {
					if xCursor[l] < r.Box.XR+2*module.D {
						xCursor[l] = r.Box.XR + 2*module.D
					}
				}
			}
			// Lane-relative y: chain edges bind to the western partner,
			// otherwise start a new staircase step.
			if r.Kind == RBlock {
				bound := false
				for _, e := range edges {
					if e.east != i || e.blockBind == bindNone {
						continue
					}
					w := b.rects[e.west]
					if w.Kind != RBlock || !yDone[e.west] {
						continue
					}
					switch e.blockBind {
					case bindPins:
						relY[i] = relY[e.west] + e.pinDelta
					case bindBottoms:
						relY[i] = relY[e.west]
					}
					bound = true
					break
				}
				if !bound {
					relY[i] = yCursor[lane]
				}
				yDone[i] = true
				top := relY[i] + r.H
				if top+2*module.D > yCursor[lane] {
					yCursor[lane] = top + 2*module.D
				}
			}
			// Reserve the east-going boundary stratum of any switch whose
			// partner set (including itself) is now fully placed.
			for _, si := range partnerOf[i] {
				partnersLeft[si]--
				if partnersLeft[si] == 0 && eastRes[si] > 0 {
					yCursor[laneIdx[si]] += eastRes[si] + 2*module.D
				}
			}
		}
	}

	// Pass 2: absolute y. The bottom lane starts above the control
	// clearance; the top lane starts above everything in the bottom lane.
	laneBase := make([]float64, nLanes)
	laneBase[0] = 4 * module.D
	if nLanes == 2 {
		laneBase[1] = laneBase[0] + yCursor[0] + 4*module.D
	}
	minRel := make([]float64, nLanes)
	for i, r := range b.rects {
		if r.Kind == RBlock {
			if v := relY[i]; v < minRel[laneIdx[i]] {
				minRel[laneIdx[i]] = v
			}
		}
	}
	for i, r := range b.rects {
		if r.Kind != RBlock {
			continue
		}
		l := laneIdx[i]
		r.Box.YB = laneBase[l] + relY[i] - minRel[l]
		r.Box.YT = r.Box.YB + r.H
	}

	// Pass 3: flow rect y for block-attached rects, then switch spans.
	b.placeFlowY()
	b.placeSwitchY(laneBase)
	// Boundary rects attached to switches need the switch placed first.
	b.placeSwitchBoundaryFlow()

	// Pass 4: chip extents.
	xmax := 0.0
	hasEast := false
	for _, r := range b.rects {
		if r.Placeable() && r.Box.XR > xmax {
			xmax = r.Box.XR
		}
		if r.Kind == RFlow && r.B.Rect < 0 {
			hasEast = true
		}
	}
	if hasEast {
		xmax += 2 * module.D
	}
	// Horizontal extents of flow rects.
	for _, r := range b.rects {
		if r.Kind != RFlow {
			continue
		}
		if r.A.Rect < 0 {
			r.Box.XL = 0
		} else {
			r.Box.XL = b.rects[r.A.Rect].Box.XR
		}
		if r.B.Rect < 0 {
			r.Box.XR = xmax
		} else {
			r.Box.XR = b.rects[r.B.Rect].Box.XL
		}
	}
	ymax := 0.0
	for _, r := range b.rects {
		if r.Kind != RCtrl && r.Box.YT > ymax {
			ymax = r.Box.YT
		}
	}
	if b.pr.Muxes == 2 {
		ymax += 4 * module.D
	}
	// Pass 5: control rects. With two lanes the lane decides the boundary;
	// a single-lane 2-MUX design instead balances the channel counts
	// between both boundaries (safe because placeable x-spans are
	// pairwise disjoint within one lane, so an upward control rect
	// crosses no module).
	singleLane := true
	for _, l := range laneIdx {
		if l != 0 {
			singleLane = false
			break
		}
	}
	balBottom, balTop := 0, 0
	for _, r := range b.rects {
		if r.Kind != RCtrl {
			continue
		}
		o := b.rects[r.Owner]
		r.Box.XL, r.Box.XR = o.Box.XL, o.Box.XR
		var top bool
		if b.pr.Muxes == 2 {
			if singleLane {
				top = balTop < balBottom
			} else {
				top = laneIdx[r.Owner] == 1
			}
		}
		if top {
			balTop += r.NumChannels
		} else {
			balBottom += r.NumChannels
		}
		r.CtrlTop = top
		if top {
			r.Box.YB, r.Box.YT = o.Box.YT, ymax
		} else {
			r.Box.YB, r.Box.YT = 0, o.Box.YB
		}
	}
	b.seedXMax, b.seedYMax = xmax, ymax
}

// edge binding kinds between two directly connected blocks.
type bindKind int

const (
	bindNone    bindKind = iota
	bindPins             // single units: align pin rows
	bindBottoms          // merged blocks: align bottoms
)

type blockEdge struct {
	west, east int
	blockBind  bindKind
	pinDelta   float64 // y offset from west block's base to east block's base
}

// blockEdges extracts the placeable-to-placeable edges from the flow rects.
func (b *builder) blockEdges() []blockEdge {
	var out []blockEdge
	for _, r := range b.rects {
		if r.Kind != RFlow || r.A.Rect < 0 || r.B.Rect < 0 {
			continue
		}
		e := blockEdge{west: r.A.Rect, east: r.B.Rect}
		ra, rb := b.rects[r.A.Rect], b.rects[r.B.Rect]
		if ra.Kind == RBlock && rb.Kind == RBlock {
			if r.ABind == BindFull || r.BBind == BindFull {
				e.blockBind = bindBottoms
			} else {
				e.blockBind = bindPins
				e.pinDelta = r.APinLo - r.BPinLo
			}
		}
		out = append(out, e)
	}
	return out
}

// placeFlowY computes the vertical extent of flow rects with at least one
// block attachment.
func (b *builder) placeFlowY() {
	for _, r := range b.rects {
		if r.Kind != RFlow {
			continue
		}
		for _, att := range []struct {
			a     FlowAttach
			bind  BindKind
			pinLo float64
		}{{r.A, r.ABind, r.APinLo}, {r.B, r.BBind, r.BPinLo}} {
			if att.a.Rect < 0 || att.bind == BindNone {
				continue
			}
			tr := b.rects[att.a.Rect]
			if tr.Kind != RBlock {
				continue
			}
			if att.bind == BindFull {
				r.Box.YB = tr.Box.YB
			} else {
				r.Box.YB = tr.Box.YB + att.pinLo - module.D
			}
			r.Box.YT = r.Box.YB + r.H
			break
		}
	}
}

// placeSwitchY stretches each switch over the rows of its incident flow
// rects, then resolves switch-to-switch rects iteratively.
func (b *builder) placeSwitchY(laneBase []float64) {
	span := map[int][2]float64{}
	expand := func(si int, lo, hi float64) {
		s, ok := span[si]
		if !ok {
			span[si] = [2]float64{lo, hi}
			return
		}
		span[si] = [2]float64{math.Min(s[0], lo), math.Max(s[1], hi)}
	}
	// Block-driven rects first.
	for _, r := range b.rects {
		if r.Kind != RFlow {
			continue
		}
		blockEnd := (r.A.Rect >= 0 && b.rects[r.A.Rect].Kind == RBlock) ||
			(r.B.Rect >= 0 && b.rects[r.B.Rect].Kind == RBlock)
		if !blockEnd {
			continue
		}
		for _, att := range []FlowAttach{r.A, r.B} {
			if att.Rect >= 0 && b.rects[att.Rect].Kind == RSwitch {
				expand(att.Rect, r.Box.YB, r.Box.YT)
			}
		}
	}
	// Switch-to-switch rects: settle iteratively from already-spanned
	// switches.
	for iter := 0; iter < len(b.rects); iter++ {
		progress := false
		for _, r := range b.rects {
			if r.Kind != RFlow || r.A.Rect < 0 || r.B.Rect < 0 {
				continue
			}
			ra, rb := b.rects[r.A.Rect], b.rects[r.B.Rect]
			if ra.Kind != RSwitch || rb.Kind != RSwitch {
				continue
			}
			if r.Box.YT > 0 {
				continue // already placed
			}
			sa, aok := span[r.A.Rect]
			sb, bok := span[r.B.Rect]
			var y float64
			switch {
			case aok:
				y = (sa[0] + sa[1]) / 2
			case bok:
				y = (sb[0] + sb[1]) / 2
			default:
				continue
			}
			r.Box.YB, r.Box.YT = y-r.H/2, y+r.H/2
			expand(r.A.Rect, r.Box.YB, r.Box.YT)
			expand(r.B.Rect, r.Box.YB, r.Box.YT)
			progress = true
		}
		if !progress {
			break
		}
	}
	for si, r := range b.rects {
		if r.Kind != RSwitch {
			continue
		}
		s, ok := span[si]
		if !ok {
			s = [2]float64{laneBase[0], laneBase[0] + 2*module.D}
		}
		minH := 2 * module.D * float64(r.SwitchNode.Junctions+1)
		if s[1]-s[0] < minH {
			s[1] = s[0] + minH
		}
		r.Box.YB, r.Box.YT = s[0], s[1]
	}
}

// switchBoundaryRect returns the switch index of a switch-to-boundary
// flow rect, and whether the rect runs west (to x=0) — or (-1, false).
func (b *builder) switchBoundaryRect(r *PRect) (int, bool) {
	if r.Kind != RFlow {
		return -1, false
	}
	if r.A.Rect < 0 && r.B.Rect >= 0 && b.rects[r.B.Rect].Kind == RSwitch {
		return r.B.Rect, true // west-going: boundary at x=0
	}
	if r.B.Rect < 0 && r.A.Rect >= 0 && b.rects[r.A.Rect].Kind == RSwitch {
		return r.A.Rect, false // east-going: boundary at x=xmax
	}
	return -1, false
}

// switchPartners returns the placeables connected to switch si through
// flow rects.
func (b *builder) switchPartners(si int) []int {
	var out []int
	for _, r := range b.rects {
		if r.Kind != RFlow || r.A.Rect < 0 || r.B.Rect < 0 {
			continue
		}
		if r.A.Rect == si {
			out = append(out, r.B.Rect)
		}
		if r.B.Rect == si {
			out = append(out, r.A.Rect)
		}
	}
	return out
}

// placeSwitchBoundaryFlow stacks each switch's boundary rects immediately
// above the switch's covered span and its partners' tops — inside the
// stratum pass 1 reserved. Stratum-local placement keeps the full-width
// rect rows clear of every other placeable:
//
//   - west-going rects cross only x < switch, which the staircase keeps
//     at lower strata;
//   - east-going rects cross x > switch, whose strata start above the
//     pass-1 reservation.
func (b *builder) placeSwitchBoundaryFlow() {
	type item struct {
		rect *PRect
		west bool
	}
	bySwitch := map[int][]item{}
	var order []int
	for _, r := range b.rects {
		if si, west := b.switchBoundaryRect(r); si >= 0 {
			if _, ok := bySwitch[si]; !ok {
				order = append(order, si)
			}
			bySwitch[si] = append(bySwitch[si], item{r, west})
		}
	}
	sort.Ints(order)
	for _, si := range order {
		sw := b.rects[si]
		base := sw.Box.YT
		for _, p := range b.switchPartners(si) {
			if t := b.rects[p].Box.YT; t > base {
				base = t
			}
		}
		items := bySwitch[si]
		// East-going rects first (lowest): their rows must stay within
		// the reserved stratum below the next lane step.
		sort.SliceStable(items, func(i, j int) bool {
			if items[i].west != items[j].west {
				return !items[i].west
			}
			return items[i].rect.Name < items[j].rect.Name
		})
		y := base + 2*module.D
		for _, it := range items {
			it.rect.Box.YB = y
			it.rect.Box.YT = y + it.rect.H
			y = it.rect.Box.YT + 2*module.D
			if it.rect.Box.YT > sw.Box.YT {
				sw.Box.YT = it.rect.Box.YT
			}
			if it.rect.Box.YB < sw.Box.YB {
				sw.Box.YB = it.rect.Box.YB
			}
		}
	}
}

// components groups placeables into weakly connected components, each
// sorted in topological order, components ordered by first appearance.
func (b *builder) components(order []int) [][]int {
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, i := range order {
		parent[i] = i
	}
	union := func(a, c int) {
		ra, rc := find(a), find(c)
		if ra != rc {
			parent[rc] = ra
		}
	}
	for _, r := range b.rects {
		if r.Kind == RFlow && r.A.Rect >= 0 && r.B.Rect >= 0 {
			union(r.A.Rect, r.B.Rect)
		}
	}
	seen := map[int]bool{}
	var comps [][]int
	for _, i := range order {
		root := find(i)
		if seen[root] {
			continue
		}
		seen[root] = true
		var comp []int
		for _, j := range order {
			if find(j) == root {
				comp = append(comp, j)
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
