package layout

import (
	"fmt"
	"math"
	"sort"

	"columbas/internal/geom"

	"columbas/internal/milp"
	"columbas/internal/module"
	"columbas/internal/planar"
)

// mmScale converts µm to the model's millimetre unit. Working in mm keeps
// coordinates O(10²) and the big-M constant O(10³), which the dense
// simplex handles comfortably.
const mmScale = 1000.0

// endDesc resolves one planar channel endpoint to the generation model:
// either an attached placeable rect (with side and pin offset) or a chip
// flow boundary.
type endDesc struct {
	rect     int  // placeable rect index; -1 for a flow boundary
	side     Side // boundary of the rect (or of the chip) used
	pinOff   float64
	junction int    // switch junction index, -1 otherwise
	unit     string // attached unit name, "" for switches/boundaries
	terminal string // terminal name for boundaries
	inlet    bool
}

// builder assembles the generation model.
type builder struct {
	pr     *planar.Result
	opt    Options
	blocks []*Block
	byUnit map[string]*Block
	rects  []*PRect
	idx    map[string]int // placeable name -> rect index

	// chanEnds[i] are the resolved endpoints of planar channel i,
	// ordered (west end, east end).
	chanEnds [][2]endDesc

	// xOrder[i][j] records that rect i is known to lie west of rect j
	// through attachment equalities (transitively closed).
	xOrder map[[2]int]bool

	model             *milp.Model
	xl, xr, yb, yt    []milp.VarID
	xmax, ymax, xymax milp.VarID
	ctrlQ             map[int][2]milp.VarID // ctrl rect -> (qBottom, qTop); active = 0
	pairs             []pairDisj
	bigM              float64

	// Greedy seed geometry (µm), filled by greedyPlace/snapshotSeed.
	seedXMax, seedYMax float64
	seedBoxes          []geom.Rect
	seedTops           []bool

	// Delta warm start (solve): pairs whose relative order is fixed from
	// the donor geometry in deltaBoxes instead of getting a disjunction.
	// Cleared when a donor-restricted round comes back infeasible.
	// deltaApplied counts the relations the last buildMILP actually fixed.
	deltaFixed   map[[2]int]bool
	deltaBoxes   []geom.Rect
	deltaApplied int
}

// pairDisj is one non-overlap disjunction between rects i and j. qs holds
// the auxiliary binaries in option order: left(i west of j), right,
// below(i below j), above; xOnly pairs omit the vertical options.
type pairDisj struct {
	i, j  int
	qs    []milp.VarID
	xOnly bool
	// Port-pitch margins (µm) for the two vertical orientations.
	mBelow, mAbove float64 // i-below-j, j-below-i
}

func buildModel(pr *planar.Result, opt Options) (*builder, error) {
	b := &builder{
		pr:     pr,
		opt:    opt,
		idx:    map[string]int{},
		xOrder: map[[2]int]bool{},
		ctrlQ:  map[int][2]milp.VarID{},
	}
	var err error
	b.blocks, b.byUnit, err = buildBlocks(pr)
	if err != nil {
		return nil, err
	}
	if len(b.blocks) == 0 {
		return nil, errNoPlaceables
	}
	// Placeable rects: blocks then switches.
	for _, blk := range b.blocks {
		b.idx[blk.Name] = len(b.rects)
		b.rects = append(b.rects, &PRect{
			Name: blk.Name, Kind: RBlock, W: blk.W, H: blk.H, Block: blk,
		})
	}
	for i := range pr.Nodes {
		n := &pr.Nodes[i]
		if n.Kind != planar.NodeSwitch {
			continue
		}
		b.idx[n.Name] = len(b.rects)
		b.rects = append(b.rects, &PRect{
			Name: n.Name, Kind: RSwitch,
			W:          module.SwitchWidth(n.Junctions),
			SwitchNode: n,
		})
	}
	if err := b.resolveEnds(); err != nil {
		return nil, err
	}
	if err := b.mergeFlowRects(); err != nil {
		return nil, err
	}
	b.addCtrlRects()
	b.propagateCtrlOrder()
	return b, nil
}

// propagateCtrlOrder inherits the owner's known x-order for every control
// rect (a control rect shares its owner's x-span exactly).
func (b *builder) propagateCtrlOrder() {
	for ci, r := range b.rects {
		if r.Kind != RCtrl {
			continue
		}
		o := r.Owner
		for k := range b.rects {
			if k == ci || k == o {
				continue
			}
			if b.xOrder[[2]int{o, k}] {
				b.orderPair(ci, k)
			}
			if b.xOrder[[2]int{k, o}] {
				b.orderPair(k, ci)
			}
		}
	}
	// Two control rects whose owners are ordered are ordered themselves.
	for ci, r := range b.rects {
		if r.Kind != RCtrl {
			continue
		}
		for cj, s := range b.rects {
			if s.Kind != RCtrl || ci == cj {
				continue
			}
			if b.xOrder[[2]int{r.Owner, s.Owner}] {
				b.orderPair(ci, cj)
			}
		}
	}
}

// internalChan marks a channel endpoint absorbed inside a merged block.
const internalChan = -2

// pinUse tracks which flow pins of a unit are consumed.
type pinUse struct{ west, east bool }

// resolveEnds assigns every planar channel endpoint a placeable rect and a
// side. Unit sides follow the chain structure: interior chain units have
// no free pins, chain-end units hand out their free pin (first come,
// first served, West preferred). Switch and boundary sides are derived
// from the opposite end.
func (b *builder) resolveEnds() error {
	used := map[string]*pinUse{}
	for _, blk := range b.blocks {
		for i := range blk.Units {
			u := &blk.Units[i]
			pu := &pinUse{}
			// Pins consumed by intra-chain neighbours.
			if !blk.RowEnd(u.Name, West) {
				pu.west = true
			}
			if !blk.RowEnd(u.Name, East) {
				pu.east = true
			}
			used[u.Name] = pu
		}
	}

	b.chanEnds = make([][2]endDesc, len(b.pr.Channels))
	for ci, ch := range b.pr.Channels {
		// Channels between two units of the same block are realised inside
		// the block (the merged rectangle absorbs them, Figure 6(a)).
		if ch.A.Node != "" && ch.B.Node != "" {
			ba, bb := b.byUnit[ch.A.Node], b.byUnit[ch.B.Node]
			if ba != nil && ba == bb {
				b.chanEnds[ci] = [2]endDesc{{rect: internalChan}, {rect: internalChan}}
				continue
			}
		}
		var unitEnds, swEnds, termEnds []planar.End
		for _, e := range []planar.End{ch.A, ch.B} {
			switch {
			case e.IsTerminal():
				termEnds = append(termEnds, e)
			case b.pr.Node(e.Node).Kind == planar.NodeSwitch:
				swEnds = append(swEnds, e)
			default:
				unitEnds = append(unitEnds, e)
			}
		}
		resolveUnit := func(e planar.End) (endDesc, error) {
			blk := b.byUnit[e.Node]
			pu := used[e.Node]
			var side Side
			switch {
			case !pu.west:
				side, pu.west = West, true
			case !pu.east:
				side, pu.east = East, true
			default:
				return endDesc{}, fmt.Errorf("layout: unit %s has no free flow pin (channel %d)", e.Node, ci)
			}
			bu := blk.UnitAt(e.Node)
			return endDesc{
				rect: b.idx[blk.Name], side: side,
				pinOff:   blk.RowPinY[bu.Row],
				junction: -1, unit: e.Node,
			}, nil
		}

		var west, east endDesc
		switch {
		case len(unitEnds) == 2:
			d0, err := resolveUnit(unitEnds[0])
			if err != nil {
				return err
			}
			d1, err := resolveUnit(unitEnds[1])
			if err != nil {
				return err
			}
			if d0.side == d1.side {
				// Both free pins landed on the same side (e.g. two
				// single-unit blocks with both pins free): flip one.
				d1.side = opposite(d0.side)
				flipPin(used[unitEnds[1].Node], d1.side)
			}
			if d0.side == East {
				west, east = d0, d1
			} else {
				west, east = d1, d0
			}
		case len(unitEnds) == 1 && len(swEnds) == 1:
			du, err := resolveUnit(unitEnds[0])
			if err != nil {
				return err
			}
			sw := swEnds[0]
			ds := endDesc{
				rect: b.idx[sw.Node], junction: sw.Junction, pinOff: -1,
			}
			if du.side == East { // unit west of switch
				ds.side = West
				west, east = du, ds
			} else {
				ds.side = East
				west, east = ds, du
			}
		case len(unitEnds) == 1 && len(termEnds) == 1:
			du, err := resolveUnit(unitEnds[0])
			if err != nil {
				return err
			}
			te := termEnds[0]
			dt := endDesc{rect: -1, terminal: te.Terminal, inlet: te.Inlet, junction: -1, pinOff: -1}
			if du.side == West { // channel runs west to the left boundary
				dt.side = West
				west, east = dt, du
			} else {
				dt.side = East
				west, east = du, dt
			}
		case len(swEnds) == 1 && len(termEnds) == 1:
			sw := swEnds[0]
			te := termEnds[0]
			ds := endDesc{rect: b.idx[sw.Node], junction: sw.Junction, pinOff: -1}
			dt := endDesc{rect: -1, terminal: te.Terminal, inlet: te.Inlet, junction: -1, pinOff: -1}
			if te.Inlet { // inlets arrive from the left boundary
				ds.side, dt.side = West, West
				west, east = dt, ds
			} else {
				ds.side, dt.side = East, East
				west, east = ds, dt
			}
		case len(swEnds) == 2:
			d0 := endDesc{rect: b.idx[swEnds[0].Node], junction: swEnds[0].Junction, pinOff: -1, side: East}
			d1 := endDesc{rect: b.idx[swEnds[1].Node], junction: swEnds[1].Junction, pinOff: -1, side: West}
			west, east = d0, d1
		default:
			return fmt.Errorf("layout: channel %d has unsupported endpoint combination", ci)
		}
		b.chanEnds[ci] = [2]endDesc{west, east}
	}
	return nil
}

func opposite(s Side) Side {
	if s == West {
		return East
	}
	return West
}

func flipPin(pu *pinUse, newSide Side) {
	// resolveUnit marked the wrong side used; correct the bookkeeping.
	if newSide == West {
		pu.east = false
		pu.west = true
	} else {
		pu.west = false
		pu.east = true
	}
}

// flowKey groups channels into merged rectangles: same pair of attachment
// points (rect+side on both ends).
type flowKey struct {
	aRect int
	aSide Side
	bRect int
	bSide Side
	aTerm bool
	bTerm bool
}

// mergeFlowRects applies the channel-merge rules of Section 3.2.1 and
// creates RFlow rects with attachment metadata.
func (b *builder) mergeFlowRects() error {
	groups := map[flowKey][]int{}
	var order []flowKey
	for ci := range b.pr.Channels {
		w, e := b.chanEnds[ci][0], b.chanEnds[ci][1]
		if w.rect == internalChan {
			continue
		}
		k := flowKey{
			aRect: w.rect, aSide: w.side, aTerm: w.rect < 0,
			bRect: e.rect, bSide: e.side, bTerm: e.rect < 0,
		}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], ci)
	}
	// Count groups per (block, side): a boundary whose channels split
	// across several targets cannot use the full-height merge rule.
	sideGroups := map[[2]int]int{}
	for _, k := range order {
		if k.aRect >= 0 {
			sideGroups[[2]int{k.aRect, int(k.aSide)}]++
		}
		if k.bRect >= 0 {
			sideGroups[[2]int{k.bRect, int(k.bSide)}]++
		}
	}
	for gi, k := range order {
		cis := groups[k]
		r := &PRect{
			Name:        fmt.Sprintf("f%d", gi),
			Kind:        RFlow,
			NumChannels: len(cis),
		}
		w0 := b.chanEnds[cis[0]][0]
		e0 := b.chanEnds[cis[0]][1]
		r.A = FlowAttach{Rect: w0.rect, Side: w0.side}
		r.B = FlowAttach{Rect: e0.rect, Side: e0.side}
		for _, ci := range cis {
			r.Channels = append(r.Channels, ChannelRef{Planar: b.pr.Channels[ci]})
		}
		// End bindings and pin spans. Full-height merging (the paper's
		// rule) applies to a multi-row block boundary with a single
		// channel group; everything else pins to its flow rows.
		endBind := func(which int, d0 endDesc, side Side) (BindKind, float64, float64) {
			if d0.rect < 0 || b.rects[d0.rect].Kind != RBlock {
				return BindNone, 0, 0
			}
			blk := b.rects[d0.rect].Block
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, ci := range cis {
				d := b.chanEnds[ci][which]
				lo = math.Min(lo, d.pinOff)
				hi = math.Max(hi, d.pinOff)
			}
			if blk.MultiUnit() && len(blk.RowPinY) > 1 &&
				sideGroups[[2]int{d0.rect, int(side)}] == 1 {
				return BindFull, lo, hi
			}
			return BindRow, lo, hi
		}
		r.ABind, r.APinLo, r.APinHi = endBind(0, w0, w0.side)
		r.BBind, r.BPinLo, r.BPinHi = endBind(1, e0, e0.side)
		// A Full end paired with a Row end downgrades to Row so the
		// heights stay consistent.
		if r.ABind == BindFull && r.BBind == BindRow {
			r.ABind = BindRow
		}
		if r.BBind == BindFull && r.ABind == BindRow {
			r.BBind = BindRow
		}
		// Height per the merge rules.
		h, err := b.flowHeight(r, w0, e0, len(cis))
		if err != nil {
			return err
		}
		r.H = h
		// Fluid-port span for boundary-attached rects: ports sit on the
		// channel rows, whose offsets within the rect depend on the
		// binding of the opposite (placeable) end.
		if r.A.Rect < 0 || r.B.Rect < 0 {
			bind, lo, hi := r.ABind, r.APinLo, r.APinHi
			if r.A.Rect >= 0 {
				bind, lo, hi = r.ABind, r.APinLo, r.APinHi
			} else {
				bind, lo, hi = r.BBind, r.BPinLo, r.BPinHi
			}
			switch bind {
			case BindFull:
				r.PortLo, r.PortHi = lo, hi
			case BindRow:
				r.PortLo, r.PortHi = module.D, r.H-module.D
			default:
				// Switch-to-boundary: ports stacked at d' pitch.
				r.PortLo, r.PortHi = module.DPrime/2, r.H-module.DPrime/2
			}
		}
		// Record known x-order from the attachment equalities: the flow
		// rect itself sits strictly between its attached rects.
		fiIdx := len(b.rects)
		if w0.rect >= 0 {
			b.orderPair(w0.rect, fiIdx)
		}
		if e0.rect >= 0 {
			b.orderPair(fiIdx, e0.rect)
		}
		if w0.rect >= 0 && e0.rect >= 0 {
			b.orderPair(w0.rect, e0.rect)
		}
		b.rects = append(b.rects, r)
	}
	b.closeOrder()
	return nil
}

// flowHeight picks the merged rect height: block height for full-bound
// ends, the pin-row span plus 2d for row-bound ends, n·d' for
// switch-to-boundary rects and 2d·n for switch-to-switch rects.
func (b *builder) flowHeight(r *PRect, w, e endDesc, n int) (float64, error) {
	kindOf := func(d endDesc) RectKind {
		if d.rect < 0 {
			return RFlow // boundary sentinel, never a placeable kind
		}
		return b.rects[d.rect].Kind
	}
	switch {
	case r.ABind == BindFull && r.BBind == BindFull:
		bw, be := b.rects[w.rect].Block, b.rects[e.rect].Block
		if len(bw.RowPinY) != len(be.RowPinY) {
			return 0, fmt.Errorf("layout: blocks %s and %s have mismatched row structure; route through a switch", bw.Name, be.Name)
		}
		for i := range bw.RowPinY {
			if bw.RowPinY[i] != be.RowPinY[i] {
				return 0, fmt.Errorf("layout: blocks %s and %s have misaligned flow rows; route through a switch", bw.Name, be.Name)
			}
		}
		return bw.H, nil
	case r.ABind == BindFull:
		return b.rects[w.rect].Block.H, nil
	case r.BBind == BindFull:
		return b.rects[e.rect].Block.H, nil
	case r.ABind == BindRow && r.BBind == BindRow:
		spanA := r.APinHi - r.APinLo
		spanB := r.BPinHi - r.BPinLo
		if math.Abs(spanA-spanB) > 1 {
			return 0, fmt.Errorf("layout: flow rows of %s and %s misaligned; route through a switch",
				b.rects[w.rect].Name, b.rects[e.rect].Name)
		}
		return spanA + 2*module.D, nil
	case r.ABind == BindRow:
		return r.APinHi - r.APinLo + 2*module.D, nil
	case r.BBind == BindRow:
		return r.BPinHi - r.BPinLo + 2*module.D, nil
	case (w.rect < 0 && e.rect >= 0 && kindOf(e) == RSwitch) ||
		(e.rect < 0 && w.rect >= 0 && kindOf(w) == RSwitch):
		// Switch to flow boundary: l = n·d' (merge rule 3).
		return float64(n) * module.DPrime, nil
	default:
		return float64(n) * 2 * module.D, nil
	}
}

func (b *builder) orderPair(i, j int) {
	b.xOrder[[2]int{i, j}] = true
}

// closeOrder transitively closes the west-of relation so separated pairs
// skip their non-overlap disjunction.
func (b *builder) closeOrder() {
	n := len(b.rects)
	changed := true
	for changed {
		changed = false
		for p := range b.xOrder {
			for k := 0; k < n; k++ {
				if b.xOrder[[2]int{p[1], k}] && !b.xOrder[[2]int{p[0], k}] {
					b.xOrder[[2]int{p[0], k}] = true
					changed = true
				}
			}
		}
	}
}

// addCtrlRects creates the merged control rectangle of every
// valve-containing rect (merge rule 1).
func (b *builder) addCtrlRects() {
	n := len(b.rects)
	for i := 0; i < n; i++ {
		r := b.rects[i]
		if !r.Placeable() {
			continue
		}
		lines := 0
		switch r.Kind {
		case RBlock:
			lines = r.Block.CtrlLines
		case RSwitch:
			lines = r.SwitchNode.Junctions
		}
		if lines == 0 {
			continue
		}
		b.rects = append(b.rects, &PRect{
			Name:        "ctrl:" + r.Name,
			Kind:        RCtrl,
			W:           r.W,
			Owner:       i,
			NumChannels: lines,
		})
	}
}

// ctrlOf returns the index of the control rect owned by placeable i, or -1.
func (b *builder) ctrlOf(i int) int {
	for k, r := range b.rects {
		if r.Kind == RCtrl && r.Owner == i {
			return k
		}
	}
	return -1
}

// attachedFlow reports whether flow rect f attaches to placeable p.
func attachedFlow(f *PRect, p int) bool {
	return f.A.Rect == p || f.B.Rect == p
}

// buildMILP assembles the integer-linear program. Non-overlap
// disjunctions are added lazily: only the pairs in active (discovered by
// overlap separation rounds in solve) get constraints (3)-(5). guided
// fixes those pair relations to the greedy seed instead of adding
// disjunctions.
func (b *builder) buildMILP(guided bool, active [][2]int) {
	m := milp.NewModel()
	b.model = m
	b.pairs = nil
	b.deltaApplied = 0
	b.ctrlQ = map[int][2]milp.VarID{}
	n := len(b.rects)
	b.xl = make([]milp.VarID, n)
	b.xr = make([]milp.VarID, n)
	b.yb = make([]milp.VarID, n)
	b.yt = make([]milp.VarID, n)

	// Coordinate upper bound and big-M in mm.
	ub := 0.0
	for _, r := range b.rects {
		ub += (r.W + r.H + 8*module.D) / mmScale
	}
	ub += 20
	b.bigM = 2 * ub

	for i, r := range b.rects {
		b.xl[i] = m.Var(r.Name+".xl", 0, ub)
		b.xr[i] = m.Var(r.Name+".xr", 0, ub)
		b.yb[i] = m.Var(r.Name+".yb", 0, ub)
		b.yt[i] = m.Var(r.Name+".yt", 0, ub)
		// Constraint (1): fixed extents.
		if r.W > 0 {
			m.AddEQ(milp.T(b.xr[i], 1).Add(b.xl[i], -1), r.W/mmScale)
		} else {
			// Free width: flow channels keep a 2d minimum run so every
			// merged channel remains physically realisable.
			minW := 0.0
			if r.Kind == RFlow {
				minW = 2 * module.D / mmScale
			}
			m.AddGE(milp.T(b.xr[i], 1).Add(b.xl[i], -1), minW)
		}
		if r.H > 0 {
			m.AddEQ(milp.T(b.yt[i], 1).Add(b.yb[i], -1), r.H/mmScale)
		} else {
			minH := 0.0
			if r.Kind == RSwitch {
				minH = 2 * module.D * float64(r.SwitchNode.Junctions+1) / mmScale
			}
			m.AddGE(milp.T(b.yt[i], 1).Add(b.yb[i], -1), minH)
		}
	}
	b.xmax = m.Var("xmax", 0, ub)
	b.ymax = m.Var("ymax", 0, ub)
	b.xymax = m.Var("xymax", 0, ub)
	m.AddGE(milp.T(b.xymax, 1).Add(b.xmax, -1), 0)
	m.AddGE(milp.T(b.xymax, 1).Add(b.ymax, -1), 0)
	// Constraint (2): chip confinement.
	for i := range b.rects {
		m.AddLE(milp.T(b.xr[i], 1).Add(b.xmax, -1), 0)
		m.AddLE(milp.T(b.yt[i], 1).Add(b.ymax, -1), 0)
	}

	b.addAttachmentConstraints()
	b.addCtrlConstraints()
	b.addNonOverlap(guided, active)
	b.addBoundCuts()
	b.setObjective()
}

// pairMargins returns the extra vertical edge clearances two rects must
// keep so their fluid ports respect the d' pitch (Figure 3(e)):
// mIBelowJ applies when rect i sits below rect j, mJBelowI when above.
// Only flow rects attached to the same chip flow boundary need any; the
// requirement shrinks by how far each rect's nearest port sits from its
// facing edge.
func (b *builder) pairMargins(i, j int) (mIBelowJ, mJBelowI float64) {
	ri, rj := b.rects[i], b.rects[j]
	if ri.Kind != RFlow || rj.Kind != RFlow {
		return 0, 0
	}
	sameWest := ri.A.Rect < 0 && rj.A.Rect < 0
	sameEast := ri.B.Rect < 0 && rj.B.Rect < 0
	if !sameWest && !sameEast {
		return 0, 0
	}
	mIBelowJ = math.Max(0, module.DPrime-(ri.H-ri.PortHi)-rj.PortLo)
	mJBelowI = math.Max(0, module.DPrime-(rj.H-rj.PortHi)-ri.PortLo)
	return mIBelowJ, mJBelowI
}

// overlappingPairs returns the conflicting rect pairs whose current boxes
// overlap (or, for boundary-port pairs, run closer than the d' margin) —
// the separation oracle of the lazy non-overlap loop.
func (b *builder) overlappingPairs(skip map[[2]int]bool) [][2]int {
	var out [][2]int
	n := len(b.rects)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if skip[[2]int{i, j}] || !b.needDisjunction(i, j) {
				continue
			}
			ri, rj := b.rects[i], b.rects[j]
			if mbij, mbji := b.pairMargins(i, j); mbij > 0 || mbji > 0 {
				xsep := ri.Box.XR <= rj.Box.XL+1 || rj.Box.XR <= ri.Box.XL+1
				okBelow := rj.Box.YB-ri.Box.YT >= mbij-1
				okAbove := ri.Box.YB-rj.Box.YT >= mbji-1
				if !xsep && !okBelow && !okAbove {
					out = append(out, [2]int{i, j})
				}
				continue
			}
			in, ok := ri.Box.Intersect(rj.Box)
			if ok && in.W() > 1 && in.H() > 1 {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// addBoundCuts adds valid inequalities that lift the LP relaxation bound.
// The big-M disjunctions alone leave the root relaxation nearly
// unconstrained, which makes branch and bound explore far more nodes than
// necessary; the x-chain and height cuts are implied by any integer
// solution and close most of that gap at the root.
func (b *builder) addBoundCuts() {
	m := b.model
	n := len(b.rects)
	minW := func(i int) float64 {
		r := b.rects[i]
		if r.W > 0 {
			return r.W
		}
		if r.Kind == RFlow {
			return 2 * module.D
		}
		return 0
	}
	// Longest chain of x-ordered rects: xmax >= sum of widths.
	memo := make([]float64, n)
	done := make([]bool, n)
	var chain func(i int) float64
	chain = func(i int) float64 {
		if done[i] {
			return memo[i]
		}
		done[i] = true // mark before recursion; xOrder is acyclic
		best := 0.0
		for p := 0; p < n; p++ {
			if b.xOrder[[2]int{p, i}] {
				if v := chain(p); v > best {
					best = v
				}
			}
		}
		memo[i] = best + minW(i)
		return memo[i]
	}
	longest := 0.0
	for i := 0; i < n; i++ {
		if v := chain(i); v > longest {
			longest = v
		}
	}
	if longest > 0 {
		m.AddGE(milp.T(b.xmax, 1), longest/mmScale)
	}
	// Height cut: the chip is at least as tall as its tallest fixed rect.
	maxH := 0.0
	for _, r := range b.rects {
		if r.H > maxH {
			maxH = r.H
		}
	}
	if maxH > 0 {
		m.AddGE(milp.T(b.ymax, 1), maxH/mmScale)
	}
}

// addAttachmentConstraints pins flow rects to their attached rects and
// boundaries (constraints (6)-(12) with derived boundary choices).
func (b *builder) addAttachmentConstraints() {
	m := b.model
	for fi, r := range b.rects {
		if r.Kind != RFlow {
			continue
		}
		// West end.
		if r.A.Rect < 0 {
			// Left chip boundary: xl = 0.
			m.AddEQ(milp.T(b.xl[fi], 1), 0)
		} else {
			// xl = attached rect's east boundary.
			m.AddEQ(milp.T(b.xl[fi], 1).Add(b.xr[r.A.Rect], -1), 0)
		}
		// East end.
		if r.B.Rect < 0 {
			m.AddEQ(milp.T(b.xr[fi], 1).Add(b.xmax, -1), 0)
		} else {
			m.AddEQ(milp.T(b.xr[fi], 1).Add(b.xl[r.B.Rect], -1), 0)
		}
		// Vertical binding per end.
		b.bindFlowY(fi, r)
	}
}

// bindFlowY aligns the flow rect with its attached pins/rows, or lets the
// attached switch cover it (constraint (12)).
func (b *builder) bindFlowY(fi int, r *PRect) {
	m := b.model
	bindEnd := func(att FlowAttach, bind BindKind, pinLo float64) {
		if att.Rect < 0 {
			return // chip boundary imposes no vertical constraint
		}
		tr := b.rects[att.Rect]
		switch {
		case tr.Kind == RSwitch:
			// Switch covers the rect: s.yt >= r.yt, s.yb <= r.yb.
			m.AddGE(milp.T(b.yt[att.Rect], 1).Add(b.yt[fi], -1), 0)
			m.AddLE(milp.T(b.yb[att.Rect], 1).Add(b.yb[fi], -1), 0)
		case bind == BindFull:
			// Full-boundary merge: share the block's vertical extent.
			m.AddEQ(milp.T(b.yb[fi], 1).Add(b.yb[att.Rect], -1), 0)
		case bind == BindRow:
			// Pin to the carried flow rows: yb = block.yb + pinLo - d.
			m.AddEQ(milp.T(b.yb[fi], 1).Add(b.yb[att.Rect], -1), (pinLo-module.D)/mmScale)
		}
	}
	bindEnd(r.A, r.ABind, r.APinLo)
	bindEnd(r.B, r.BBind, r.BPinLo)
}

// addCtrlConstraints glues control rects to their owners and to a MUX
// boundary (constraints (9)-(11)).
func (b *builder) addCtrlConstraints() {
	m := b.model
	M := b.bigM
	for ci, r := range b.rects {
		if r.Kind != RCtrl {
			continue
		}
		o := r.Owner
		m.AddEQ(milp.T(b.xl[ci], 1).Add(b.xl[o], -1), 0)
		m.AddEQ(milp.T(b.xr[ci], 1).Add(b.xr[o], -1), 0)
		if b.pr.Muxes == 1 {
			// Forced bottom: yb = 0, yt = owner.yb.
			m.AddEQ(milp.T(b.yb[ci], 1), 0)
			m.AddEQ(milp.T(b.yt[ci], 1).Add(b.yb[o], -1), 0)
			continue
		}
		qb := m.Binary(r.Name + ".qb")
		qt := m.Binary(r.Name + ".qt")
		// Bottom option (qb = 0 active): yb = 0, yt = owner.yb.
		m.AddLE(milp.T(b.yb[ci], 1).Add(qb, -M), 0)
		m.AddLE(milp.T(b.yt[ci], 1).Add(b.yb[o], -1).Add(qb, -M), 0)
		m.AddGE(milp.T(b.yt[ci], 1).Add(b.yb[o], -1).Add(qb, M), 0)
		// Top option (qt = 0 active): yb = owner.yt, yt = ymax.
		m.AddLE(milp.T(b.yb[ci], 1).Add(b.yt[o], -1).Add(qt, -M), 0)
		m.AddGE(milp.T(b.yb[ci], 1).Add(b.yt[o], -1).Add(qt, M), 0)
		m.AddGE(milp.T(b.yt[ci], 1).Add(b.ymax, -1).Add(qt, M), 0)
		m.MarkDisjunction([]milp.VarID{qb, qt})
		b.ctrlQ[ci] = [2]milp.VarID{qb, qt}
	}
	// A 2-MUX netlist asks for two multiplexers, so the channel load must
	// actually split: each boundary carries at least a third of the
	// channels (the paper's 2-MUX designs populate both MUXes; without
	// this the solver would collapse everything onto one boundary).
	if b.pr.Muxes == 2 && len(b.ctrlQ) >= 2 {
		total, maxLoad := 0.0, 0.0
		topLoad := milp.NewExpr() // channels on the top boundary: Σ n·(1-qt)
		for ci, qs := range b.ctrlQ {
			n := float64(b.rects[ci].NumChannels)
			total += n
			if n > maxLoad {
				maxLoad = n
			}
			topLoad.AddConst(n)
			topLoad.Add(qs[1], -n)
		}
		// A single dominant rect may make an exact third-split impossible;
		// relax the band just enough to keep it satisfiable.
		lo := math.Min(total/3, total-maxLoad)
		hi := math.Max(2*total/3, maxLoad)
		m.AddGE(topLoad, lo)
		m.AddLE(topLoad, hi)
	}
}

// needDisjunction reports whether rects i and j still need an explicit
// non-overlap disjunction.
func (b *builder) needDisjunction(i, j int) bool {
	ri, rj := b.rects[i], b.rects[j]
	if !conflicting(ri.Kind, rj.Kind) {
		return false
	}
	if b.xOrder[[2]int{i, j}] || b.xOrder[[2]int{j, i}] {
		return false
	}
	// A flow rect never conflicts with the rects it attaches to.
	if ri.Kind == RFlow && attachedFlow(ri, j) {
		return false
	}
	if rj.Kind == RFlow && attachedFlow(rj, i) {
		return false
	}
	// A control rect is vertically separated from its owner by
	// construction.
	if ri.Kind == RCtrl && ri.Owner == j {
		return false
	}
	if rj.Kind == RCtrl && rj.Owner == i {
		return false
	}
	return true
}

// addNonOverlap emits constraints (3)-(5) for the given conflicting
// pairs. In guided mode, relations are fixed from the seed geometry
// instead (the seed must already be placed).
func (b *builder) addNonOverlap(guided bool, active [][2]int) {
	m := b.model
	M := b.bigM
	for _, p := range active {
		i, j := p[0], p[1]
		{
			ri, rj := b.rects[i], b.rects[j]
			// Both control rects forced to the bottom boundary can only
			// separate horizontally.
			xOnly := b.pr.Muxes == 1 && ri.Kind == RCtrl && rj.Kind == RCtrl

			if guided {
				b.fixRelation(i, j)
				continue
			}
			// Delta warm start: both rects carry donor geometry, so the
			// donor's relative order stands in for the disjunction — the
			// binaries collapse and the pair costs one LE row. Pairs the
			// donor boxes cannot order cleanly (or that may only separate
			// horizontally when the donor shows a vertical split) keep the
			// full disjunction.
			if b.deltaFixed[p] && b.fixRelationFrom(b.deltaBoxes, i, j, xOnly) {
				b.deltaApplied++
				continue
			}
			mbij, mbji := b.pairMargins(i, j)
			q1 := m.Binary(fmt.Sprintf("q.%s|%s.l", ri.Name, rj.Name))
			q2 := m.Binary(fmt.Sprintf("q.%s|%s.r", ri.Name, rj.Name))
			// (3): horizontal options.
			m.AddLE(milp.T(b.xr[i], 1).Add(b.xl[j], -1).Add(q1, -M), 0)
			m.AddLE(milp.T(b.xr[j], 1).Add(b.xl[i], -1).Add(q2, -M), 0)
			qs := []milp.VarID{q1, q2}
			if !xOnly {
				q3 := m.Binary(fmt.Sprintf("q.%s|%s.b", ri.Name, rj.Name))
				q4 := m.Binary(fmt.Sprintf("q.%s|%s.a", ri.Name, rj.Name))
				// (4): vertical options, with the port-pitch margins where
				// the pair shares a flow boundary.
				m.AddLE(milp.T(b.yt[i], 1).Add(b.yb[j], -1).Add(q3, -M), -mbij/mmScale)
				m.AddLE(milp.T(b.yt[j], 1).Add(b.yb[i], -1).Add(q4, -M), -mbji/mmScale)
				qs = append(qs, q3, q4)
			}
			// (5): exactly one option active.
			m.MarkDisjunction(qs)
			b.pairs = append(b.pairs, pairDisj{i: i, j: j, qs: qs, xOnly: xOnly, mBelow: mbij, mAbove: mbji})
		}
	}
}

// fixRelation hard-codes the seed's relative position of rects i, j
// (EffortGuided). Must run after snapshotSeed. The seed is overlap-free
// by construction, so one of the four relations always applies.
func (b *builder) fixRelation(i, j int) {
	m := b.model
	mbij, mbji := b.pairMargins(i, j)
	bi, bj := b.seedBoxes[i], b.seedBoxes[j]
	switch {
	case bi.XR <= bj.XL+1: // i west of j
		m.AddLE(milp.T(b.xr[i], 1).Add(b.xl[j], -1), 0)
	case bj.XR <= bi.XL+1:
		m.AddLE(milp.T(b.xr[j], 1).Add(b.xl[i], -1), 0)
	case bi.YT <= bj.YB+1:
		m.AddLE(milp.T(b.yt[i], 1).Add(b.yb[j], -1), -mbij/mmScale)
	default:
		m.AddLE(milp.T(b.yt[j], 1).Add(b.yb[i], -1), -mbji/mmScale)
	}
}

// fixRelationFrom emits the relative order of rects i, j implied by the
// given (donor) geometry as a single LE row, reporting whether a clean
// relation applied. Unlike fixRelation it refuses to guess: boxes the
// geometry leaves overlapping, or a vertical split for a pair that may
// only separate horizontally (xOnly), return false and the caller keeps
// the full disjunction.
func (b *builder) fixRelationFrom(boxes []geom.Rect, i, j int, xOnly bool) bool {
	m := b.model
	bi, bj := boxes[i], boxes[j]
	switch {
	case bi.XR <= bj.XL+1: // i west of j
		m.AddLE(milp.T(b.xr[i], 1).Add(b.xl[j], -1), 0)
	case bj.XR <= bi.XL+1:
		m.AddLE(milp.T(b.xr[j], 1).Add(b.xl[i], -1), 0)
	case !xOnly && bi.YT <= bj.YB+1: // i below j
		mbij, _ := b.pairMargins(i, j)
		m.AddLE(milp.T(b.yt[i], 1).Add(b.yb[j], -1), -mbij/mmScale)
	case !xOnly && bj.YT <= bi.YB+1:
		_, mbji := b.pairMargins(i, j)
		m.AddLE(milp.T(b.yt[j], 1).Add(b.yb[i], -1), -mbji/mmScale)
	default:
		return false
	}
	return true
}

// setObjective emits the minimisation objective (13).
func (b *builder) setObjective() {
	o := b.opt
	e := milp.NewExpr().
		Add(b.xmax, o.Alpha).
		Add(b.ymax, o.Beta).
		Add(b.xymax, o.Gamma)
	for i, r := range b.rects {
		switch r.Kind {
		case RFlow:
			e.Add(b.xr[i], o.Kappa*float64(r.NumChannels))
			e.Add(b.xl[i], -o.Kappa*float64(r.NumChannels))
		case RCtrl:
			e.Add(b.yt[i], o.Kappa*float64(r.NumChannels))
			e.Add(b.yb[i], -o.Kappa*float64(r.NumChannels))
		}
	}
	b.model.Minimize(e)
}

// seedVector converts the greedy seed geometry into a Start assignment
// for the MILP, deriving every auxiliary binary from the geometry. The
// snapshot (not the possibly-overwritten rect boxes) is the source: it is
// overlap-free by construction, so every disjunction binary is derivable.
func (b *builder) seedVector() []float64 {
	x := make([]float64, b.model.NumVars())
	xmaxV, ymaxV := 0.0, 0.0
	for _, bx := range b.seedBoxes {
		if bx.XR > xmaxV {
			xmaxV = bx.XR
		}
		if bx.YT > ymaxV {
			ymaxV = bx.YT
		}
	}
	for i := range b.rects {
		x[b.xl[i]] = b.seedBoxes[i].XL / mmScale
		x[b.xr[i]] = b.seedBoxes[i].XR / mmScale
		x[b.yb[i]] = b.seedBoxes[i].YB / mmScale
		x[b.yt[i]] = b.seedBoxes[i].YT / mmScale
	}
	x[b.xmax] = xmaxV / mmScale
	x[b.ymax] = ymaxV / mmScale
	x[b.xymax] = x[b.xmax]
	if x[b.ymax] > x[b.xymax] {
		x[b.xymax] = x[b.ymax]
	}
	for ci, qs := range b.ctrlQ {
		if b.seedTops[ci] {
			x[qs[0]], x[qs[1]] = 1, 0
		} else {
			x[qs[0]], x[qs[1]] = 0, 1
		}
	}
	for _, p := range b.pairs {
		bi, bj := b.seedBoxes[p.i], b.seedBoxes[p.j]
		for k := range p.qs {
			x[p.qs[k]] = 1
		}
		switch {
		case bi.XR <= bj.XL+1:
			x[p.qs[0]] = 0
		case bj.XR <= bi.XL+1:
			x[p.qs[1]] = 0
		case !p.xOnly && bi.YT+p.mBelow <= bj.YB+1:
			x[p.qs[2]] = 0
		case !p.xOnly && bj.YT+p.mAbove <= bi.YB+1:
			x[p.qs[3]] = 0
		default:
			x[p.qs[0]] = 0 // seed is broken; feasibility check will reject
		}
	}
	return x
}

// applySolution writes the MILP solution back into the rect boxes (µm).
func (b *builder) applySolution(res *milp.Result) (xmax, ymax float64) {
	for i, r := range b.rects {
		r.Box.XL = res.Value(b.xl[i]) * mmScale
		r.Box.XR = res.Value(b.xr[i]) * mmScale
		r.Box.YB = res.Value(b.yb[i]) * mmScale
		r.Box.YT = res.Value(b.yt[i]) * mmScale
		if qs, ok := b.ctrlQ[i]; ok {
			r.CtrlTop = res.Value(qs[1]) < 0.5
		}
	}
	return res.Value(b.xmax) * mmScale, res.Value(b.ymax) * mmScale
}

// sortedPlaceables returns placeable rect indices in deterministic
// topological order of the west-of relation (Kahn's algorithm with
// lowest-index tie-breaking).
func (b *builder) sortedPlaceables() []int {
	var nodes []int
	for i, r := range b.rects {
		if r.Placeable() {
			nodes = append(nodes, i)
		}
	}
	pred := map[int]int{}
	for _, i := range nodes {
		for _, j := range nodes {
			if b.xOrder[[2]int{j, i}] {
				pred[i]++
			}
		}
	}
	var out []int
	done := map[int]bool{}
	for len(out) < len(nodes) {
		pick := -1
		for _, i := range nodes {
			if !done[i] && pred[i] == 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Cycle in the order relation (should not happen); fall back
			// to declaration order for the remainder.
			sort.Ints(nodes)
			for _, i := range nodes {
				if !done[i] {
					out = append(out, i)
				}
			}
			return out
		}
		done[pick] = true
		out = append(out, pick)
		for _, j := range nodes {
			if !done[j] && b.xOrder[[2]int{pick, j}] {
				pred[j]--
			}
		}
	}
	return out
}
