package layout

import (
	"context"
	"fmt"
	"time"

	"columbas/internal/geom"
	"columbas/internal/lp"
	"columbas/internal/milp"
	"columbas/internal/netlist"
	"columbas/internal/obs"
	"columbas/internal/planar"
)

// Side is a horizontal direction on a block boundary.
type Side int

// Sides.
const (
	West Side = iota // left boundary
	East             // right boundary
)

func (s Side) String() string {
	if s == West {
		return "west"
	}
	return "east"
}

// BlockUnit is one functional unit inside a block, at a fixed offset.
type BlockUnit struct {
	Name string
	Unit *netlist.Unit
	Off  geom.Pt // offset of the unit's module box inside the block
	Row  int     // chain (row) index
	Col  int     // position along the chain
}

// Block is a merged rectangle of parallel functional units (or a single
// unit), per Figure 6(a).
type Block struct {
	Name  string
	Units []BlockUnit
	W, H  float64
	// RowPinY[r] is the y offset of the flow row of chain r inside the
	// block. All units of the chain have their pins on this row.
	RowPinY []float64
	// CtrlLines is the number of independent control channels the block
	// needs at a multiplexer (parallel rows share their lines).
	CtrlLines int
}

// MultiUnit reports whether the block merges more than one unit.
func (b *Block) MultiUnit() bool { return len(b.Units) > 1 }

// UnitAt returns the block unit with the given name, or nil.
func (b *Block) UnitAt(name string) *BlockUnit {
	for i := range b.Units {
		if b.Units[i].Name == name {
			return &b.Units[i]
		}
	}
	return nil
}

// RowEnd reports whether the named unit sits at the western or eastern end
// of its chain, i.e. has a free pin on that side.
func (b *Block) RowEnd(name string, s Side) bool {
	u := b.UnitAt(name)
	if u == nil {
		return false
	}
	if s == West {
		return u.Col == 0
	}
	last := 0
	for i := range b.Units {
		if b.Units[i].Row == u.Row && b.Units[i].Col > last {
			last = b.Units[i].Col
		}
	}
	return u.Col == last
}

// RectKind classifies planned rectangles.
type RectKind int

// Rectangle kinds of the generation model.
const (
	RBlock  RectKind = iota // merged functional-unit rectangle
	RSwitch                 // switch rectangle (vertically extensible)
	RCtrl                   // merged control-channel rectangle
	RFlow                   // merged flow-channel rectangle
)

func (k RectKind) String() string {
	switch k {
	case RBlock:
		return "block"
	case RSwitch:
		return "switch"
	case RCtrl:
		return "ctrl"
	case RFlow:
		return "flow"
	}
	return "unknown"
}

// ChannelRef ties one planar channel to the flow rectangle that carries it.
type ChannelRef struct {
	Planar planar.Channel
}

// FlowAttach describes one end of a flow rectangle.
type FlowAttach struct {
	// Rect is the index of the attached placeable rectangle, or -1 for a
	// chip flow boundary.
	Rect int
	// Side is the boundary of the attached rectangle the channel leaves
	// through (for boundaries: West = x=0, East = x=x_max).
	Side Side
}

// PRect is a rectangle of the generation model.
type PRect struct {
	Name string
	Kind RectKind

	// Fixed extents; 0 means the dimension is free (switch height,
	// control rect height, flow rect width).
	W, H float64

	// Payload.
	Block       *Block       // RBlock
	SwitchNode  *planar.Node // RSwitch
	Owner       int          // RCtrl: index of the owning placeable rect
	NumChannels int          // RFlow/RCtrl: channels merged into this rect
	Channels    []ChannelRef // RFlow: carried planar channels
	A, B        FlowAttach   // RFlow: attachments (A west end, B east end)

	// Vertical binding per end. BindFull glues the rect to the whole
	// block extent (the paper's merge rule for a boundary whose channels
	// all leave together); BindRow pins it to the span of the carried
	// channels' flow rows (needed when one boundary feeds several
	// targets). Switch and chip-boundary ends use BindNone.
	ABind, BBind BindKind
	// Pin row spans (offsets within the attached block) for BindRow ends.
	APinLo, APinHi float64
	BPinLo, BPinHi float64

	// PortLo/PortHi are the offsets (from the rect's bottom) of the
	// lowest and highest fluid port the rect carries at a chip flow
	// boundary; meaningful only for boundary-attached flow rects.
	PortLo, PortHi float64

	// Solved geometry in µm.
	Box geom.Rect
	// CtrlTop is true when the control rect exits through the top MUX
	// boundary (2-MUX designs only).
	CtrlTop bool
}

// Placeable reports whether the rect is a module-bearing rectangle.
func (r *PRect) Placeable() bool { return r.Kind == RBlock || r.Kind == RSwitch }

// BindKind is the vertical binding of one flow rect end.
type BindKind int

// Flow rect end bindings.
const (
	BindNone BindKind = iota // switch or chip boundary: no pin constraint
	BindFull                 // share the attached block's vertical extent
	BindRow                  // pin to the carried channels' flow rows
)

// Effort selects how aggressively the MILP explores placement options.
type Effort int

// Effort levels.
const (
	// EffortFull models every non-overlap disjunction; optimal for small
	// designs but expensive for large ones.
	EffortFull Effort = iota
	// EffortGuided fixes the relative order of rectangle pairs that are
	// far apart in the greedy seed and only leaves nearby pairs open.
	EffortGuided
)

// Options configures layout generation. The json tags are a stable
// contract — columbasd /v2 job resources embed the resolved options of
// every job; transient fields (Deadline, Interrupt, Obs) never
// serialize.
type Options struct {
	// Weights of objective (13): α·x_max + β·y_max + γ·max(x,y) + κ·Σ length.
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
	Kappa float64 `json:"kappa"`
	// TimeLimit bounds the MILP search (0: solver default of 30 s).
	TimeLimit time.Duration `json:"time_limit_ns"`
	// Gap is the acceptable relative optimality gap (default 0.02).
	Gap float64 `json:"gap"`
	// StallLimit stops branch and bound after this many nodes without an
	// incumbent improvement (0: solver default of 200).
	StallLimit int `json:"stall_limit"`
	// Effort selects the disjunction policy. Designs above
	// GuidedThreshold rectangles use EffortGuided automatically.
	Effort          Effort `json:"effort"`
	GuidedThreshold int    `json:"guided_threshold"`
	// SkipMILP accepts the greedy seed directly (debug/ablation).
	SkipMILP bool `json:"skip_milp,omitempty"`
	// NoSeed withholds the greedy warm start from branch and bound
	// (ablation: measures the value of seeding).
	NoSeed bool `json:"no_seed,omitempty"`
	// EagerSeparation adds every non-overlap disjunction up front instead
	// of lazily separating violated pairs (ablation: measures the value
	// of lazy separation).
	EagerSeparation bool `json:"eager_separation,omitempty"`
	// NoWarmStart disables LP basis reuse between branch-and-bound nodes
	// (milp.Options.NoWarmStart), solving every relaxation cold from an
	// artificial basis (ablation: measures the value of warm starts; the
	// seed solver's behaviour, used by make bench-warmstart as the
	// "before" side).
	NoWarmStart bool `json:"no_warmstart,omitempty"`
	// NoCuts disables root-node cut separation in every MILP round
	// (milp.Options.NoCuts): no Gomory or cover cuts strengthen the root
	// relaxation (ablation: measures the value of cutting planes).
	NoCuts bool `json:"no_cuts,omitempty"`
	// NoPresolve disables the MILP presolve (milp.Options.NoPresolve):
	// no root or node bound tightening, redundant-row removal, or
	// coefficient strengthening (ablation: measures presolve's value).
	NoPresolve bool `json:"no_presolve,omitempty"`
	// Branching selects the branch-and-bound variable selection rule
	// (milp.Options.Branching); the zero value is pseudocost branching
	// with reliability initialization.
	Branching milp.BranchRule `json:"branching"`
	// Kernel selects the LP basis engine for every MILP relaxation
	// (milp.Options.Kernel): the zero value picks dense or sparse per
	// problem from the size/density heuristic; the columbas CLI exposes
	// it as -kernel={auto,dense,sparse}.
	Kernel lp.Kernel `json:"kernel"`
	// Workers is the number of parallel branch-and-bound workers handed
	// to the MILP solver (milp.Options.Workers): 0 or 1 runs the exact
	// sequential search, a negative value uses runtime.GOMAXPROCS(0).
	// Parallel runs keep the same optimal objective but may pick a
	// different tie-equivalent placement; the columbas CLI defaults to
	// all cores via -workers.
	Workers int `json:"workers"`
	// Deadline, when non-zero, is an absolute wall-clock bound on
	// generation; the earlier of Deadline and now+TimeLimit wins. Like a
	// TimeLimit expiry, hitting it falls back to the greedy seed — use
	// GenerateContext to turn a context deadline into a hard error
	// instead.
	Deadline time.Time `json:"-"`
	// Interrupt, when non-nil, cancels generation as soon as the channel
	// is closed: the in-flight branch and bound halts
	// (milp.Options.Interrupt) and no further separation rounds start.
	// Generate still returns the seed-fallback plan; GenerateContext
	// maps the cancellation to the context's error.
	Interrupt <-chan struct{} `json:"-"`
	// Obs, when non-nil, is the parent trace span (the pipeline's "layout"
	// phase) under which generation records its sub-phases: the greedy
	// seed and each lazy-separation MILP round with that round's solver
	// counters. A nil span disables the recording at no cost.
	Obs *obs.Span `json:"-"`
	// Warm, when non-nil, is a donor design's warm-start payload (see
	// WarmHint): its geometry seeds the starting incumbent, its active
	// pair set pre-fills the lazy separation loop, and its root basis
	// warm-starts the first MILP round. Every part is validated and
	// silently dropped when stale, so a wrong hint costs only the checks.
	// The SearchStats delta counters (DeltaWarmStarts, DeltaFallbacks,
	// IncumbentFromHint) report what was actually used.
	Warm *WarmHint `json:"-"`
}

// DefaultOptions returns the options used by the Columba S flow.
func DefaultOptions() Options {
	return Options{
		Alpha: 1, Beta: 1, Gamma: 1, Kappa: 0.05,
		TimeLimit:       30 * time.Second,
		Gap:             0.02,
		StallLimit:      200,
		Effort:          EffortFull,
		GuidedThreshold: 36,
	}
}

// SolveStats reports how the generation model was solved.
type SolveStats struct {
	Status   milp.Status
	Nodes    int
	Runtime  time.Duration
	Obj      float64
	Bound    float64
	Vars     int
	Rows     int
	Binaries int
	// Rounds is the number of lazy non-overlap separation rounds.
	Rounds   int
	SeedUsed bool // greedy seed accepted as incumbent
	SeedOnly bool // result is the raw greedy seed (SkipMILP or MILP failure)
	// Search aggregates the branch-and-bound counters across every
	// separation round (milp.SearchStats.Merge); Search.NodesExplored
	// equals Nodes above.
	Search milp.SearchStats
}

// Plan is the output of the layout generation phase: positioned merged
// rectangles, ready for layout validation (Section 3.2.2).
type Plan struct {
	Name   string
	Muxes  int
	XMax   float64 // functional region x dimension, µm
	YMax   float64 // functional region y dimension, µm
	Rects  []*PRect
	Planar *planar.Result
	Stats  SolveStats
	// ActivePairs names the rect pairs whose non-overlap disjunctions
	// the lazy separation loop converged on, and RootBasis the final
	// MILP round's root LP basis — the donor payload HintFromPlan packs
	// into a WarmHint for the next similar solve. Both are nil on
	// seed-only plans and never serialize.
	ActivePairs [][2]string `json:"-"`
	RootBasis   *lp.Basis   `json:"-"`
}

// Rect returns the named rect, or nil.
func (p *Plan) Rect(name string) *PRect {
	for _, r := range p.Rects {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// FlowLength returns the total functional-region flow channel length in
// µm, counting each merged channel with its multiplicity n_r — the L_f
// metric of Table 1 (MUX-flow channels excluded by construction).
func (p *Plan) FlowLength() float64 {
	total := 0.0
	for _, r := range p.Rects {
		if r.Kind != RFlow {
			continue
		}
		total += float64(r.NumChannels) * r.Box.W()
	}
	return total
}

// CtrlLength returns the total control channel length in µm with channel
// multiplicity.
func (p *Plan) CtrlLength() float64 {
	total := 0.0
	for _, r := range p.Rects {
		if r.Kind != RCtrl {
			continue
		}
		total += float64(r.NumChannels) * r.Box.H()
	}
	return total
}

// ControlChannelCount returns the number of independent control channels
// that reach each MUX boundary: bottom (and top for 2-MUX designs).
func (p *Plan) ControlChannelCount() (bottom, top int) {
	for _, r := range p.Rects {
		if r.Kind != RCtrl {
			continue
		}
		if r.CtrlTop {
			top += r.NumChannels
		} else {
			bottom += r.NumChannels
		}
	}
	return bottom, top
}

// Generate runs the layout generation phase on a planarized netlist.
func Generate(pr *planar.Result, opt Options) (*Plan, error) {
	b, err := buildModel(pr, opt)
	if err != nil {
		return nil, err
	}
	return b.solve(opt)
}

// GenerateContext is Generate under a context: the context's deadline
// tightens opt.Deadline, its Done channel joins opt.Interrupt, and a
// context that expires or is canceled before generation completes turns
// the seed-fallback result into ctx.Err() — the solver workers are
// provably stopped by the time it returns.
func GenerateContext(ctx context.Context, pr *planar.Result, opt Options) (*Plan, error) {
	if d, ok := ctx.Deadline(); ok {
		if opt.Deadline.IsZero() || d.Before(opt.Deadline) {
			opt.Deadline = d
		}
	}
	if done := ctx.Done(); done != nil {
		if opt.Interrupt == nil {
			opt.Interrupt = done
		} else {
			opt.Interrupt = mergeInterrupt(opt.Interrupt, done)
		}
	}
	p, err := Generate(pr, opt)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// mergeInterrupt returns a channel closed when either input closes. The
// forwarding goroutine lives until one of them fires; with a context in
// play that is bounded by the context's lifetime.
func mergeInterrupt(a, b <-chan struct{}) <-chan struct{} {
	c := make(chan struct{})
	go func() {
		defer close(c)
		select {
		case <-a:
		case <-b:
		}
	}()
	return c
}

func (k RectKind) layer() layer {
	switch k {
	case RBlock, RSwitch:
		return layerModule
	case RCtrl:
		return layerControl
	case RFlow:
		return layerFlow
	}
	return layerModule
}

type layer int

const (
	layerModule layer = iota
	layerControl
	layerFlow
)

// conflicting reports whether two rect kinds must not overlap: modules
// conflict with everything, channels conflict within their own layer only
// (flow and control channels may overlap across layers, Section 3.2).
func conflicting(a, b RectKind) bool {
	la, lb := a.layer(), b.layer()
	if la == layerModule || lb == layerModule {
		return true
	}
	return la == lb
}

var errNoPlaceables = fmt.Errorf("layout: netlist has no placeable rectangles")
