package layout

import (
	"math"
	"testing"
	"time"

	"columbas/internal/geom"
	"columbas/internal/module"
	"columbas/internal/netlist"
	"columbas/internal/planar"
)

func plan(t *testing.T, src string, opt Options) *Plan {
	t.Helper()
	n, err := netlist.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatalf("planarize: %v", err)
	}
	p, err := Generate(pr, opt)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return p
}

func fastOpts() Options {
	o := DefaultOptions()
	// The stall limit and gap are the real work bounds — every model in
	// this package converges well under a second of solver time. The
	// time limit is only the safety net for a wedged search, sized so it
	// cannot fire spuriously under the race detector's ~10× slowdown
	// (budget expiry degrades to the greedy seed, whose geometry is not
	// overlap-free for every topology, and the invariant checks would
	// then report seed overlaps instead of the real failure).
	o.TimeLimit = 15 * time.Second
	o.Gap = 0.05
	o.StallLimit = 60
	return o
}

const chainSrc = `
design chain
unit m1 mixer
unit c1 chamber
connect in:sample m1
connect m1 c1
connect c1 out:waste
`

// checkPlanInvariants verifies the architectural framework on a solved
// plan: straight routing, non-overlap, boundary attachment, confinement.
func checkPlanInvariants(t *testing.T, p *Plan) {
	t.Helper()
	for _, r := range p.Rects {
		if !r.Box.Valid() {
			t.Fatalf("rect %s has invalid box %v", r.Name, r.Box)
		}
		if r.Box.XL < -geom.Eps || r.Box.XR > p.XMax+geom.Eps ||
			r.Box.YB < -geom.Eps || r.Box.YT > p.YMax+geom.Eps {
			t.Errorf("rect %s %v outside chip [0,%v]x[0,%v]", r.Name, r.Box, p.XMax, p.YMax)
		}
		if r.W > 0 && math.Abs(r.Box.W()-r.W) > 1 {
			t.Errorf("rect %s width %v != fixed %v", r.Name, r.Box.W(), r.W)
		}
		if r.H > 0 && math.Abs(r.Box.H()-r.H) > 1 {
			t.Errorf("rect %s height %v != fixed %v", r.Name, r.Box.H(), r.H)
		}
	}
	// Non-overlap between conflicting rects.
	for i := 0; i < len(p.Rects); i++ {
		for j := i + 1; j < len(p.Rects); j++ {
			ri, rj := p.Rects[i], p.Rects[j]
			if !conflicting(ri.Kind, rj.Kind) {
				continue
			}
			// Attached flow rects may abut, never overlap inner area.
			if in, ok := ri.Box.Intersect(rj.Box); ok && in.W() > 1 && in.H() > 1 {
				t.Errorf("rects %s %v and %s %v overlap: %v", ri.Name, ri.Box, rj.Name, rj.Box, in)
			}
		}
	}
	// Flow rect attachments.
	for _, r := range p.Rects {
		if r.Kind != RFlow {
			continue
		}
		if r.A.Rect < 0 {
			if math.Abs(r.Box.XL) > 1 {
				t.Errorf("flow %s west boundary attach broken: xl=%v", r.Name, r.Box.XL)
			}
		} else if math.Abs(r.Box.XL-p.Rects[r.A.Rect].Box.XR) > 1 {
			t.Errorf("flow %s not attached to %s east", r.Name, p.Rects[r.A.Rect].Name)
		}
		if r.B.Rect < 0 {
			if math.Abs(r.Box.XR-p.XMax) > 1 {
				t.Errorf("flow %s east boundary attach broken: xr=%v xmax=%v", r.Name, r.Box.XR, p.XMax)
			}
		} else if math.Abs(r.Box.XR-p.Rects[r.B.Rect].Box.XL) > 1 {
			t.Errorf("flow %s not attached to %s west", r.Name, p.Rects[r.B.Rect].Name)
		}
	}
	// Control rects glue to owner and reach a MUX boundary.
	for _, r := range p.Rects {
		if r.Kind != RCtrl {
			continue
		}
		o := p.Rects[r.Owner]
		if math.Abs(r.Box.XL-o.Box.XL) > 1 || math.Abs(r.Box.XR-o.Box.XR) > 1 {
			t.Errorf("ctrl %s not x-glued to owner %s", r.Name, o.Name)
		}
		if r.CtrlTop {
			if p.Muxes != 2 {
				t.Errorf("ctrl %s exits top in a 1-MUX design", r.Name)
			}
			if math.Abs(r.Box.YT-p.YMax) > 1 || math.Abs(r.Box.YB-o.Box.YT) > 1 {
				t.Errorf("ctrl %s top attach broken: %v (owner %v, ymax %v)", r.Name, r.Box, o.Box, p.YMax)
			}
		} else {
			if math.Abs(r.Box.YB) > 1 || math.Abs(r.Box.YT-o.Box.YB) > 1 {
				t.Errorf("ctrl %s bottom attach broken: %v (owner %v)", r.Name, r.Box, o.Box)
			}
		}
	}
	// Switches cover their attached flow rects (constraint 12).
	for _, r := range p.Rects {
		if r.Kind != RFlow {
			continue
		}
		for _, att := range []FlowAttach{r.A, r.B} {
			if att.Rect < 0 {
				continue
			}
			s := p.Rects[att.Rect]
			if s.Kind != RSwitch {
				continue
			}
			if r.Box.YB < s.Box.YB-1 || r.Box.YT > s.Box.YT+1 {
				t.Errorf("switch %s %v does not cover flow %s %v", s.Name, s.Box, r.Name, r.Box)
			}
		}
	}
}

func TestChainPlan(t *testing.T) {
	p := plan(t, chainSrc, fastOpts())
	checkPlanInvariants(t, p)
	if p.Stats.SeedOnly {
		t.Error("small design should be solved by MILP, not seed-only")
	}
	// Two blocks, no switches, 3 flow rects, 2 ctrl rects.
	var blocks, switches, flows, ctrls int
	for _, r := range p.Rects {
		switch r.Kind {
		case RBlock:
			blocks++
		case RSwitch:
			switches++
		case RFlow:
			flows++
		case RCtrl:
			ctrls++
		}
	}
	if blocks != 2 || switches != 0 || flows != 3 || ctrls != 2 {
		t.Fatalf("rect census = %d blocks, %d switches, %d flows, %d ctrls", blocks, switches, flows, ctrls)
	}
	if p.FlowLength() <= 0 {
		t.Error("flow length must be positive")
	}
	bottom, top := p.ControlChannelCount()
	if bottom != 7 || top != 0 { // mixer 5 + chamber 2
		t.Errorf("control channels = %d/%d, want 7/0", bottom, top)
	}
}

func TestChainPinAlignment(t *testing.T) {
	p := plan(t, chainSrc, fastOpts())
	m1 := p.Rect("m1")
	c1 := p.Rect("c1")
	if m1 == nil || c1 == nil {
		t.Fatal("blocks missing")
	}
	pinM := m1.Box.YB + module.MixerH/2
	pinC := c1.Box.YB + module.ChamberH/2
	if math.Abs(pinM-pinC) > 1 {
		t.Fatalf("pins misaligned: mixer %v vs chamber %v", pinM, pinC)
	}
}

func TestParallelMergedBlock(t *testing.T) {
	p := plan(t, `
design par
unit m1 mixer
unit c1 chamber
unit m2 mixer
unit c2 chamber
connect in:a m1
connect m1 c1
connect in:a m2
connect m2 c2
net c1 c2 out:waste
parallel m1 c1 m2 c2
`, fastOpts())
	checkPlanInvariants(t, p)
	blk := p.Rect("g0")
	if blk == nil {
		t.Fatal("merged block g0 missing")
	}
	if len(blk.Block.Units) != 4 {
		t.Fatalf("block units = %d, want 4", len(blk.Block.Units))
	}
	if len(blk.Block.RowPinY) != 2 {
		t.Fatalf("rows = %d, want 2 (two chains)", len(blk.Block.RowPinY))
	}
	// The merged block is as wide as one chain: mixer + gap + chamber.
	wantW := module.MixerW + 2*module.D + module.ChamberW
	if math.Abs(blk.Block.W-wantW) > 1 {
		t.Fatalf("block width = %v, want %v", blk.Block.W, wantW)
	}
	// Parallel rows share control lines: 5 + 2, not 2*(5+2).
	if blk.Block.CtrlLines != 7 {
		t.Fatalf("CtrlLines = %d, want 7", blk.Block.CtrlLines)
	}
	// The inlet rect carries both row channels.
	found := false
	for _, r := range p.Rects {
		if r.Kind == RFlow && r.A.Rect < 0 && r.NumChannels == 2 {
			found = true
		}
	}
	if !found {
		t.Error("merged 2-channel inlet rect missing")
	}
}

func TestSwitchCoverage(t *testing.T) {
	p := plan(t, `
design sw
unit a mixer
unit b mixer
unit c mixer
net a b c out:waste
connect in:x a
connect in:y b
connect in:z c
`, fastOpts())
	checkPlanInvariants(t, p)
	sw := p.Rect("s1")
	if sw == nil {
		t.Fatal("switch missing")
	}
	if sw.Box.W() != module.SwitchWidth(4) {
		t.Fatalf("switch width = %v, want %v", sw.Box.W(), module.SwitchWidth(4))
	}
}

func TestTwoMuxSplitsControls(t *testing.T) {
	p := plan(t, `
design two
muxes 2
unit m1 mixer
unit c1 chamber
unit m2 mixer
unit c2 chamber
connect in:a m1
connect m1 c1
connect c1 out:w1
connect in:b m2
connect m2 c2
connect c2 out:w2
`, fastOpts())
	checkPlanInvariants(t, p)
	bottom, top := p.ControlChannelCount()
	if bottom == 0 || top == 0 {
		t.Errorf("2-MUX should use both boundaries: %d/%d", bottom, top)
	}
	if bottom+top != 14 {
		t.Errorf("total control channels = %d, want 14", bottom+top)
	}
}

func TestOneMuxForcesBottom(t *testing.T) {
	p := plan(t, chainSrc, fastOpts())
	for _, r := range p.Rects {
		if r.Kind == RCtrl && r.CtrlTop {
			t.Fatalf("ctrl %s exits top in 1-MUX design", r.Name)
		}
	}
}

func TestSeedOnlyMode(t *testing.T) {
	o := fastOpts()
	o.SkipMILP = true
	p := plan(t, chainSrc, o)
	checkPlanInvariants(t, p)
	if !p.Stats.SeedOnly {
		t.Fatal("SkipMILP must mark the plan seed-only")
	}
}

func TestGuidedMatchesFullInvariants(t *testing.T) {
	o := fastOpts()
	o.Effort = EffortGuided
	p := plan(t, chainSrc, o)
	checkPlanInvariants(t, p)
}

func TestMILPImprovesOnSeed(t *testing.T) {
	o := fastOpts()
	o.SkipMILP = true
	seed := plan(t, chainSrc, o)
	full := plan(t, chainSrc, fastOpts())
	seedArea := seed.XMax * seed.YMax
	fullArea := full.XMax * full.YMax
	if fullArea > seedArea*1.001 {
		t.Errorf("MILP result (%.0f µm²) worse than greedy seed (%.0f µm²)", fullArea, seedArea)
	}
}

func TestFlowLengthCountsMultiplicity(t *testing.T) {
	p := plan(t, `
design mult
unit m1 mixer
unit c1 chamber
unit m2 mixer
unit c2 chamber
connect in:a m1
connect m1 c1
connect in:a m2
connect m2 c2
net c1 c2 out:waste
parallel m1 c1 m2 c2
`, fastOpts())
	manual := 0.0
	for _, r := range p.Rects {
		if r.Kind == RFlow {
			manual += float64(r.NumChannels) * r.Box.W()
		}
	}
	if math.Abs(p.FlowLength()-manual) > 1e-6 {
		t.Fatalf("FlowLength = %v, manual = %v", p.FlowLength(), manual)
	}
}

func TestRowEndDetection(t *testing.T) {
	b := &Block{
		Units: []BlockUnit{
			{Name: "a", Row: 0, Col: 0},
			{Name: "b", Row: 0, Col: 1},
			{Name: "c", Row: 0, Col: 2},
			{Name: "d", Row: 1, Col: 0},
		},
	}
	if !b.RowEnd("a", West) || b.RowEnd("a", East) {
		t.Error("a is the west end only")
	}
	if b.RowEnd("b", West) || b.RowEnd("b", East) {
		t.Error("b is interior")
	}
	if !b.RowEnd("c", East) {
		t.Error("c is the east end")
	}
	if !b.RowEnd("d", West) || !b.RowEnd("d", East) {
		t.Error("singleton row unit is both ends")
	}
	if b.RowEnd("zz", West) {
		t.Error("unknown unit is never a row end")
	}
}

func TestKindAndSideStrings(t *testing.T) {
	if West.String() != "west" || East.String() != "east" {
		t.Error("side strings")
	}
	for k, want := range map[RectKind]string{
		RBlock: "block", RSwitch: "switch", RCtrl: "ctrl", RFlow: "flow",
	} {
		if k.String() != want {
			t.Errorf("%v string = %q", want, k.String())
		}
	}
	if RectKind(9).String() != "unknown" {
		t.Error("unknown RectKind")
	}
}

func TestConflictMatrix(t *testing.T) {
	cases := []struct {
		a, b RectKind
		want bool
	}{
		{RBlock, RBlock, true},
		{RBlock, RSwitch, true},
		{RBlock, RCtrl, true},
		{RBlock, RFlow, true},
		{RCtrl, RCtrl, true},
		{RFlow, RFlow, true},
		{RCtrl, RFlow, false}, // different layers may overlap
	}
	for _, tc := range cases {
		if got := conflicting(tc.a, tc.b); got != tc.want {
			t.Errorf("conflicting(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := conflicting(tc.b, tc.a); got != tc.want {
			t.Errorf("conflicting(%v,%v) = %v, want %v", tc.b, tc.a, got, tc.want)
		}
	}
}
