package layout

import (
	"math"
	"testing"

	"columbas/internal/module"
)

// Two independent components in a 2-MUX design should stack into two
// lanes: the chip narrows relative to the 1-MUX single-row layout, and
// the lanes' control channels exit through opposite boundaries — the
// Table 1 trade-off (2-MUX: narrower x, taller y, more inlets).
func TestTwoMuxLaneStacking(t *testing.T) {
	src := func(muxes string) string {
		return `
design lanes
muxes ` + muxes + `
unit m1 mixer
unit c1 chamber
unit m2 mixer
unit c2 chamber
connect in:a m1
connect m1 c1
connect c1 out:w1
connect in:b m2
connect m2 c2
connect c2 out:w2
`
	}
	o := fastOpts()
	o.SkipMILP = true // compare the constructive layouts directly
	p1 := plan(t, src("1"), o)
	p2 := plan(t, src("2"), o)
	if p2.XMax >= p1.XMax {
		t.Errorf("2-MUX should compress x: %v vs %v", p2.XMax, p1.XMax)
	}
	if p2.YMax <= p1.YMax {
		t.Errorf("2-MUX should grow y: %v vs %v", p2.YMax, p1.YMax)
	}
	checkPlanInvariants(t, p2)
}

// A fan of sources through one switch into a fan of sinks: switches must
// stretch over all incident rows and no rect may overlap.
func TestFanInFanOutThroughSwitch(t *testing.T) {
	p := plan(t, `
design fan
unit a1 mixer
unit a2 mixer
unit a3 mixer
unit b1 chamber
unit b2 chamber
connect in:x1 a1
connect in:x2 a2
connect in:x3 a3
net a1 a2 a3 b1 b2
connect b1 out:w1
connect b2 out:w2
`, fastOpts())
	checkPlanInvariants(t, p)
	sw := p.Rect("s1")
	if sw == nil {
		t.Fatal("switch missing")
	}
	if sw.SwitchNode.Junctions != 5 {
		t.Fatalf("junctions = %d, want 5", sw.SwitchNode.Junctions)
	}
}

// Chained switches: two multi-terminal nets sharing a unit force a
// switch-to-switch channel.
func TestSwitchToSwitchChannel(t *testing.T) {
	p := plan(t, `
design chainsw
unit a mixer
unit b mixer
unit c mixer
unit d mixer
net a b c
net c d out:w
connect in:x a
connect in:y b
connect in:z d
`, fastOpts())
	checkPlanInvariants(t, p)
	// c participates in both nets -> two switches exist, and c (degree 2)
	// bridges them.
	var switches int
	for _, r := range p.Rects {
		if r.Kind == RSwitch {
			switches++
		}
	}
	if switches != 2 {
		t.Fatalf("switches = %d, want 2", switches)
	}
}

// Rows of unequal composition inside one parallel group: the block must
// still build, with width = the widest chain.
func TestUnequalParallelRows(t *testing.T) {
	p := plan(t, `
design uneq
unit m1 mixer
unit c1 chamber
unit m2 mixer
connect in:a m1
connect m1 c1
connect in:b m2
net c1 m2 out:w
parallel m1 c1 m2
`, fastOpts())
	checkPlanInvariants(t, p)
	// Chains of unequal composition split into one block per signature (a
	// switch between two same-block units would make the x-order cyclic).
	b0, b1 := p.Rect("g0.0"), p.Rect("g0.1")
	if b0 == nil || b1 == nil {
		t.Fatal("partitioned blocks g0.0/g0.1 missing")
	}
	chainW := module.MixerW + 2*module.D + module.ChamberW
	if math.Abs(b0.Block.W-chainW) > 1 && math.Abs(b1.Block.W-chainW) > 1 {
		t.Fatalf("no block has the m+c chain width %v (%v, %v)", chainW, b0.Block.W, b1.Block.W)
	}
}

// Same-composition chains that a shared switch connects stage-by-stage
// must still merge per stage (the hls pipeline shape).
func TestSwitchSeparatedStagesMerge(t *testing.T) {
	p := plan(t, `
design stages
unit b1 mixer sieve
unit r1 chamber
unit b2 mixer sieve
unit r2 chamber
connect in:x1 b1
net in:y1 b1 r1
connect r1 out:p1
connect in:x2 b2
net in:y2 b2 r2
connect r2 out:p2
parallel b1 r1 b2 r2
`, fastOpts())
	checkPlanInvariants(t, p)
	var blocks int
	for _, r := range p.Rects {
		if r.Kind == RBlock {
			blocks++
			if len(r.Block.Units) != 2 {
				t.Errorf("block %s has %d units, want 2", r.Name, len(r.Block.Units))
			}
		}
	}
	if blocks != 2 {
		t.Fatalf("blocks = %d, want 2 (stage-wise merging)", blocks)
	}
}

// The greedy seed alone must satisfy all plan invariants on every corpus
// shape — it is the fallback of record when budgets expire.
func TestSeedInvariantsAcrossShapes(t *testing.T) {
	shapes := []string{
		`
design s1
unit a mixer
connect in:x a
connect a out:y
`,
		`
design s2
muxes 2
unit a mixer sieve
unit b chamber
unit c mixer celltrap
unit d chamber
connect in:x a
connect a b
connect in:y c
connect c d
net b d out:w
`,
		`
design s3
unit a mixer
unit b mixer
unit c mixer
unit d chamber
unit e chamber
unit f chamber
connect in:1 a
connect in:2 b
connect in:3 c
connect a d
connect b e
connect c f
net d e f out:w
`,
	}
	o := fastOpts()
	o.SkipMILP = true
	for i, src := range shapes {
		p := plan(t, src, o)
		checkPlanInvariants(t, p)
		_ = i
	}
}

// EagerSeparation must reach an overlap-free plan equivalent in validity
// to the lazy default, carrying every pairwise disjunction up front.
func TestEagerSeparationInvariants(t *testing.T) {
	// Two independent chains: their cross pairs are not chain-ordered, so
	// eager mode has real disjunctions to carry.
	const src = `
design eager
unit m1 mixer
unit c1 chamber
unit m2 mixer
unit c2 chamber
connect in:a m1
connect m1 c1
connect c1 out:w1
connect in:b m2
connect m2 c2
connect c2 out:w2
`
	o := fastOpts()
	o.EagerSeparation = true
	p := plan(t, src, o)
	checkPlanInvariants(t, p)
	if p.Stats.Binaries == 0 {
		t.Fatal("eager mode should carry disjunction binaries")
	}
	o.EagerSeparation = false
	lazy := plan(t, src, o)
	checkPlanInvariants(t, lazy)
	if lazy.Stats.Binaries > p.Stats.Binaries {
		t.Fatalf("lazy binaries %d exceed eager %d", lazy.Stats.Binaries, p.Stats.Binaries)
	}
}

// NoSeed still converges on a small model (cold-started search).
func TestNoSeedColdStart(t *testing.T) {
	o := fastOpts()
	o.NoSeed = true
	p := plan(t, chainSrc, o)
	checkPlanInvariants(t, p)
}

// Kappa sweep: a higher channel-length weight must not lengthen the
// total weighted channel length.
func TestKappaReducesChannelLength(t *testing.T) {
	oLow := fastOpts()
	oLow.Kappa = 0.0001
	oHigh := fastOpts()
	oHigh.Kappa = 2.0
	low := plan(t, chainSrc, oLow)
	high := plan(t, chainSrc, oHigh)
	if high.FlowLength() > low.FlowLength()+1 {
		t.Errorf("kappa=2 flow %v exceeds kappa≈0 flow %v", high.FlowLength(), low.FlowLength())
	}
}
