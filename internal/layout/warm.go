package layout

import (
	"columbas/internal/geom"
	"columbas/internal/lp"
)

// WarmHint is the donor payload of the delta-aware pipeline: everything a
// previously solved, structurally similar design can lend a new solve.
// Hints are advisory on every axis — geometry is matched by rect name and
// validated before use, active pairs are re-filtered through the current
// model's needDisjunction, and the root basis goes through the LP
// kernel's compatibility check — so a stale or wrongly shaped hint can
// only cost the validation work, never correctness.
type WarmHint struct {
	// Boxes holds the donor's solved geometry (µm) keyed by rect name,
	// and Tops the donor's control-boundary choice for 2-MUX designs.
	// Rects the recipient model has but the donor lacked keep their
	// greedy seed geometry; a mixed vector that fails the MILP's
	// feasibility check is silently dropped.
	Boxes map[string]geom.Rect
	Tops  map[string]bool
	// ActivePairs names the rect pairs whose non-overlap disjunctions
	// the donor's lazy separation loop converged on. Seeding them up
	// front skips the separation rounds that would rediscover them.
	ActivePairs [][2]string
	// RootBasis is the donor's final root LP basis; dimension mismatches
	// fall back to a cold solve inside the LP kernel.
	RootBasis *lp.Basis
}

// HintFromPlan harvests a WarmHint from a solved plan: the rect geometry
// as placed, the converged active pair set, and the final MILP round's
// root basis. Callers chain it into the next similar solve via
// Options.Warm. Returns nil on a nil plan.
func HintFromPlan(p *Plan) *WarmHint {
	if p == nil {
		return nil
	}
	h := &WarmHint{
		Boxes:       make(map[string]geom.Rect, len(p.Rects)),
		Tops:        make(map[string]bool),
		ActivePairs: p.ActivePairs,
		RootBasis:   p.RootBasis,
	}
	for _, r := range p.Rects {
		h.Boxes[r.Name] = r.Box
		if r.Kind == RCtrl {
			h.Tops[r.Name] = r.CtrlTop
		}
	}
	return h
}

// hintPairs maps the donor's active pair names into the current model's
// rect indices, dropping pairs whose names no longer resolve or whose
// disjunction the attachment structure already settles. The returned
// pairs are normalized (i < j) and deduplicated against have.
func (b *builder) hintPairs(h *WarmHint, have map[[2]int]bool) [][2]int {
	if h == nil || len(h.ActivePairs) == 0 {
		return nil
	}
	nameIdx := make(map[string]int, len(b.rects))
	for i, r := range b.rects {
		nameIdx[r.Name] = i
	}
	var out [][2]int
	for _, np := range h.ActivePairs {
		i, oki := nameIdx[np[0]]
		j, okj := nameIdx[np[1]]
		if !oki || !okj || i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		p := [2]int{i, j}
		if have[p] || !b.needDisjunction(i, j) {
			continue
		}
		have[p] = true
		out = append(out, p)
	}
	return out
}

// pairNames maps active pair indices back to rect names — the stable
// form a WarmHint carries across model rebuilds.
func (b *builder) pairNames(active [][2]int) [][2]string {
	if len(active) == 0 {
		return nil
	}
	out := make([][2]string, 0, len(active))
	for _, p := range active {
		out = append(out, [2]string{b.rects[p[0]].Name, b.rects[p[1]].Name})
	}
	return out
}

// hintGeometry resolves the donor geometry against the current model's
// rects: matched names take the donor box, everything else keeps the
// greedy seed. matched[i] marks the rects that took a donor box — the
// pairs the donor can order (see deltaFixedPairs) — and the boolean
// reports whether any box matched at all (a hint from an unrelated
// design matches nothing and is not worth a vector build).
func (b *builder) hintGeometry(h *WarmHint) (boxes []geom.Rect, tops []bool, matched []bool, any bool) {
	if h == nil || len(h.Boxes) == 0 {
		return nil, nil, nil, false
	}
	boxes = make([]geom.Rect, len(b.rects))
	copy(boxes, b.seedBoxes)
	tops = make([]bool, len(b.rects))
	copy(tops, b.seedTops)
	matched = make([]bool, len(b.rects))
	for i, r := range b.rects {
		if bx, ok := h.Boxes[r.Name]; ok {
			boxes[i] = bx
			matched[i] = true
			any = true
		}
		if t, ok := h.Tops[r.Name]; ok {
			tops[i] = t
		}
	}
	return boxes, tops, matched, any
}

// deltaFixedPairs selects the active pairs whose relative order the donor
// geometry can fix in place of a disjunction: both rects took a donor box,
// so the donor's overlap-free placement implies a valid ordering. Pairs
// touching a rect the donor did not place (an added or renamed unit — the
// edit neighborhood) are left out and keep their full disjunctions.
func deltaFixedPairs(fixed map[[2]int]bool, pairs [][2]int, matched []bool) {
	for _, p := range pairs {
		if matched[p[0]] && matched[p[1]] {
			fixed[p] = true
		}
	}
}

// hintVector derives a MILP Start assignment from the donor geometry by
// running seedVector over a temporary snapshot swap. Must run after
// buildMILP (it reads the round's variable ids). The caller validates
// the result with the model's feasibility check before offering it.
func (b *builder) hintVector(boxes []geom.Rect, tops []bool) []float64 {
	saveBoxes, saveTops := b.seedBoxes, b.seedTops
	b.seedBoxes, b.seedTops = boxes, tops
	x := b.seedVector()
	b.seedBoxes, b.seedTops = saveBoxes, saveTops
	return x
}
