// Package layout implements the layout generation phase of Columba S
// (Section 3.2.1): the integer-linear-programming model that decides the
// location of all modules and channels in the functional region.
//
// The model works on *merged rectangles* to keep the problem space small —
// this merging is the key scalability idea of the paper:
//
//   - parallel functional units are merged into one block rectangle
//     (Figure 6(a));
//   - control channels attached to one valve-containing rectangle are
//     merged into a single control rectangle of the same width;
//   - flow channels attached to the same boundary of a multi-unit
//     rectangle are merged into a single flow rectangle of the same
//     height; switch-to-boundary channels merge with height n·d'.
//
// Under the straight-routing discipline every module offers one flow pin
// per vertical boundary, so the side at which a channel leaves a block is
// derivable from the chain structure; the remaining discrete decisions —
// relative placement of unconnected rectangles (constraints (3)–(5)) and
// the control boundary choice for 2-MUX designs (constraints (9)–(11)) —
// are left to branch and bound.
//
// Key types: Generate turns a planar.Result into a Plan of placed PRects;
// Options selects effort, time budget, solver workers and an optional
// obs.Span for per-round tracing; SolveStats carries the model size and
// the aggregated milp.SearchStats.
package layout
