package layout

import (
	"columbas/internal/milp"
	"columbas/internal/planar"
)

// PlacementModel builds the full placement MILP for a planarized
// netlist and returns it without solving: the model solve assembles on
// its final separation round, with every needed non-overlap disjunction
// added eagerly instead of lazily. The result is a self-contained
// instance — exporting it (e.g. as MPS via internal/mps) and solving it
// standalone reproduces the placement optimum the layout pipeline would
// reach.
func PlacementModel(pr *planar.Result, opt Options) (*milp.Model, error) {
	b, err := buildModel(pr, opt)
	if err != nil {
		return nil, err
	}
	var active [][2]int
	n := len(b.rects)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if b.needDisjunction(i, j) {
				active = append(active, [2]int{i, j})
			}
		}
	}
	b.buildMILP(false, active)
	return b.model, nil
}
