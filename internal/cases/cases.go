package cases

import (
	"fmt"
	"strings"

	"columbas/internal/netlist"
)

// Case is one evaluation application.
type Case struct {
	// ID is the short name used throughout the benchmarks.
	ID string
	// Ref is the paper's citation for the application.
	Ref string
	// Units is the functional-unit count (#u in Table 1).
	Units int
	// Source is the netlist description text.
	Source string
	// InPaper reports whether Columba 2.0 results exist for this case in
	// Table 1 (the two synthetic cases were S-only because 2.0 could not
	// solve them).
	InPaper bool
}

// Netlist parses the case's netlist description.
func (c Case) Netlist() (*netlist.Netlist, error) {
	n, err := netlist.ParseString(c.Source)
	if err != nil {
		return nil, fmt.Errorf("cases: %s: %w", c.ID, err)
	}
	if got := n.NumUnits(); got != c.Units {
		return nil, fmt.Errorf("cases: %s has %d units, expected %d", c.ID, got, c.Units)
	}
	return n, nil
}

// WithMuxes returns a copy of the case with the multiplexer count
// overridden (Table 1 reports 1-MUX and 2-MUX variants of each design).
func (c Case) WithMuxes(m int) Case {
	src := c.Source
	if strings.Contains(src, "muxes ") {
		lines := strings.Split(src, "\n")
		for i, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), "muxes ") {
				lines[i] = fmt.Sprintf("muxes %d", m)
			}
		}
		src = strings.Join(lines, "\n")
	} else {
		src = strings.Replace(src, "\n", fmt.Sprintf("\nmuxes %d\n", m), 1)
	}
	c.Source = src
	return c
}

// NAP6 is the nucleic-acid processor of Hong et al. [8]: 6 units — two
// sieve-mixer/chamber purification lanes plus two standalone mixers, all
// collected through one switch.
func NAP6() Case {
	return Case{
		ID: "nap6", Ref: "[8] nucleic-acid processor", Units: 6, InPaper: true,
		Source: `design nap6
muxes 1
unit m1 mixer sieve
unit c1 chamber
unit m2 mixer sieve
unit c2 chamber
unit m3 mixer
unit m4 mixer
connect in:lysate1 m1
connect m1 c1
connect in:lysate2 m2
connect m2 c2
connect in:buffer1 m3
connect in:buffer2 m4
net c1 c2 m3 m4 out:product
`,
	}
}

// ChIP9 is the automated chromatin-immunoprecipitation chip of Wu et al.
// [3] (ChIP 4-IP): four independent IP lanes (sieve mixer + wash chamber)
// and a collection mixer behind a switch. The lanes run different
// antibodies, so their control is independent (no parallel merging).
func ChIP9() Case {
	return Case{
		ID: "chip9", Ref: "[3] ChIP 4-IP", Units: 9, InPaper: true,
		Source: `design chip9
muxes 1
unit m1 mixer sieve
unit c1 chamber
unit m2 mixer sieve
unit c2 chamber
unit m3 mixer sieve
unit c3 chamber
unit m4 mixer sieve
unit c4 chamber
unit col mixer
connect in:chromatin1 m1
connect m1 c1
connect in:chromatin2 m2
connect m2 c2
connect in:chromatin3 m3
connect m3 c3
connect in:chromatin4 m4
connect m4 c4
net c1 c2 c3 c4 col out:waste
connect col out:collect
`,
	}
}

// MRNA8 is the single-cell mRNA isolation chip of Marcus et al. [7]:
// four independent capture lanes of a cell-trap mixer followed by an
// elution chamber.
func MRNA8() Case {
	return Case{
		ID: "mrna8", Ref: "[7] mRNA isolation", Units: 8, InPaper: true,
		Source: `design mrna8
muxes 1
unit m1 mixer celltrap
unit c1 chamber
unit m2 mixer celltrap
unit c2 chamber
unit m3 mixer celltrap
unit c3 chamber
unit m4 mixer celltrap
unit c4 chamber
connect in:cells1 m1
connect m1 c1
connect c1 out:cdna1
connect in:cells2 m2
connect m2 c2
connect c2 out:cdna2
connect in:cells3 m3
connect m3 c3
connect c3 out:cdna3
connect in:cells4 m4
connect m4 c4
connect c4 out:cdna4
`,
	}
}

// Kinase21 is the kinase-activity radioassay of Fang et al. [17], the
// Columba 2.0 test case [12] shown in Figure 1: seven independent assay
// lanes of a mixer followed by two reaction chambers (21 units).
func Kinase21() Case {
	var b strings.Builder
	b.WriteString("design kinase21\nmuxes 1\n")
	for i := 1; i <= 7; i++ {
		fmt.Fprintf(&b, "unit m%d mixer\nunit ca%d chamber\nunit cb%d chamber\n", i, i, i)
	}
	for i := 1; i <= 7; i++ {
		fmt.Fprintf(&b, "connect in:sample%d m%d\n", i, i)
		fmt.Fprintf(&b, "connect m%d ca%d\n", i, i)
		fmt.Fprintf(&b, "connect ca%d cb%d\n", i, i)
		fmt.Fprintf(&b, "connect cb%d out:read%d\n", i, i)
	}
	return Case{
		ID: "kinase21", Ref: "[12]/[17] kinase activity", Units: 21, InPaper: true,
		Source: b.String(),
	}
}

// Kinase21Parallel is a variant of the kinase case with all seven lanes
// in one parallel group (shared control). It is not a Table 1 row: the
// paper's kinase design reports 13 control inlets, which requires
// independent lanes (63 channels), while its Figure 6(b) shows merged
// rectangles. This variant exists to quantify that tension — merging
// shrinks the flow length dramatically at the cost of per-lane control
// independence (see EXPERIMENTS.md, kinase21 L_f note).
func Kinase21Parallel() Case {
	c := Kinase21()
	c.ID = "kinase21p"
	var group strings.Builder
	group.WriteString("parallel")
	for i := 1; i <= 7; i++ {
		fmt.Fprintf(&group, " m%d ca%d cb%d", i, i, i)
	}
	c.Source += group.String() + "\n"
	c.InPaper = false
	return c
}

// ChIPScale generates the synthetic large-scale ChIP applications of
// Table 1 (based on [3]): nIP immunoprecipitation lanes divided into
// parallel-execution groups (Figure 7(d): ChIP64 runs 8 groups), plus a
// collection mixer. Each group's lanes share their control channels.
func ChIPScale(nIP, groups int) (Case, error) {
	if nIP <= 0 || groups <= 0 || nIP%groups != 0 {
		return Case{}, fmt.Errorf("cases: invalid ChIP configuration %d/%d", nIP, groups)
	}
	perGroup := nIP / groups
	var b strings.Builder
	fmt.Fprintf(&b, "design chip%d\nmuxes 1\n", nIP)
	for g := 0; g < groups; g++ {
		for k := 0; k < perGroup; k++ {
			i := g*perGroup + k + 1
			fmt.Fprintf(&b, "unit m%d mixer sieve\nunit c%d chamber\n", i, i)
		}
	}
	b.WriteString("unit col mixer\n")
	for g := 0; g < groups; g++ {
		for k := 0; k < perGroup; k++ {
			i := g*perGroup + k + 1
			fmt.Fprintf(&b, "connect in:ab%d m%d\n", g+1, i)
			fmt.Fprintf(&b, "connect m%d c%d\n", i, i)
		}
	}
	// All chamber outputs, the collector and the waste share one switch.
	b.WriteString("net")
	for i := 1; i <= nIP; i++ {
		fmt.Fprintf(&b, " c%d", i)
	}
	b.WriteString(" col out:waste\n")
	b.WriteString("connect col out:collect\n")
	for g := 0; g < groups; g++ {
		b.WriteString("parallel")
		for k := 0; k < perGroup; k++ {
			i := g*perGroup + k + 1
			fmt.Fprintf(&b, " m%d c%d", i, i)
		}
		b.WriteString("\n")
	}
	return Case{
		ID:      fmt.Sprintf("chip%d", nIP),
		Ref:     fmt.Sprintf("synthetic ChIP %d-IP based on [3]", nIP),
		Units:   2*nIP + 1,
		Source:  b.String(),
		InPaper: false,
	}, nil
}

// ChIP16 is a mid-scale synthetic ChIP application: 33 units in 4
// parallel groups. It sits between chip9 and chip64 and is the reference
// case for the warm-start benchmarks (make bench-warmstart).
func ChIP16() Case {
	c, err := ChIPScale(16, 4)
	if err != nil {
		panic(err)
	}
	return c
}

// ChIP64 is the fifth Table 1 case: 129 units in 8 parallel groups.
func ChIP64() Case {
	c, err := ChIPScale(64, 8)
	if err != nil {
		panic(err)
	}
	return c
}

// ChIP128 is the sixth Table 1 case: 257 units in 16 parallel groups.
func ChIP128() Case {
	c, err := ChIPScale(128, 16)
	if err != nil {
		panic(err)
	}
	return c
}

// ChIP256 is the scaling-curve extension beyond Table 1: 513 units in 32
// parallel groups. Its layout model is roughly double chip128's (the LP
// dimension grows with the group count, since each group's lanes merge
// into one block rectangle); it is the largest point of the sparse-kernel
// scaling curve (make bench-scaling) and the reason the kernel factorizes
// rather than inverts.
func ChIP256() Case {
	c, err := ChIPScale(256, 32)
	if err != nil {
		panic(err)
	}
	return c
}

// Table1 returns the six evaluation cases in the paper's row order.
func Table1() []Case {
	return []Case{NAP6(), ChIP9(), MRNA8(), Kinase21(), ChIP64(), ChIP128()}
}

// Get returns the case with the given ID — a Table 1 row or one of the
// extra synthetic sizes (chip16, chip256).
func Get(id string) (Case, error) {
	for _, c := range append(Table1(), ChIP16(), ChIP256()) {
		if c.ID == id {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("cases: unknown case %q", id)
}
