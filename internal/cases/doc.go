// Package cases provides the reconstructed application netlists behind
// the paper's evaluation (Table 1). The original netlists are not
// published; these reconstructions match the paper's unit counts (#u),
// unit types and connection-topology classes, which is what the Table 1
// metrics depend on. See DESIGN.md §4 for the reconstruction rationale.
//
// Key types: Case carries a netlist source plus the paper's identity
// (#u, reference); Get and Table1 retrieve the six evaluation designs,
// and ChIPScale generates the scalability series of Figure 9.
package cases
