package cases

import (
	"strings"
	"testing"

	"columbas/internal/module"
	"columbas/internal/mux"
	"columbas/internal/planar"
)

func TestTable1Roster(t *testing.T) {
	cs := Table1()
	if len(cs) != 6 {
		t.Fatalf("cases = %d, want 6", len(cs))
	}
	wantUnits := []int{6, 9, 8, 21, 129, 257}
	for i, c := range cs {
		if c.Units != wantUnits[i] {
			t.Errorf("%s units = %d, want %d", c.ID, c.Units, wantUnits[i])
		}
	}
}

func TestAllNetlistsParseAndValidate(t *testing.T) {
	for _, c := range Table1() {
		n, err := c.Netlist()
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		if _, err := planar.Planarize(n); err != nil {
			t.Fatalf("%s: planarize: %v", c.ID, err)
		}
	}
}

func TestGet(t *testing.T) {
	c, err := Get("kinase21")
	if err != nil || c.Units != 21 {
		t.Fatalf("Get(kinase21) = %+v, %v", c, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("expected error for unknown case")
	}
}

func TestWithMuxes(t *testing.T) {
	c := NAP6().WithMuxes(2)
	n, err := c.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if n.Muxes != 2 {
		t.Fatalf("Muxes = %d, want 2", n.Muxes)
	}
	// Original case unchanged (value semantics).
	n1, _ := NAP6().Netlist()
	if n1.Muxes != 1 {
		t.Fatal("original case mutated")
	}
}

func TestChIPScaleValidation(t *testing.T) {
	if _, err := ChIPScale(0, 1); err == nil {
		t.Error("0 IPs should fail")
	}
	if _, err := ChIPScale(10, 3); err == nil {
		t.Error("non-divisible groups should fail")
	}
	c, err := ChIPScale(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Units != 33 {
		t.Fatalf("units = %d, want 33", c.Units)
	}
}

// Control-channel budgets drive the #c_in column of Table 1; verify the
// reconstructions land in the right inlet bands for 1-MUX designs.
func TestControlInletBands(t *testing.T) {
	want := map[string]int{
		// 2*ceil(log2 n)+1 for the case's independent channel count.
		"nap6":     13, // 33 channels
		"chip9":    13, // 47 channels
		"mrna8":    13, // 36 channels
		"kinase21": 13, // 63 channels
		"chip64":   17, // 143 channels
	}
	for _, c := range Table1() {
		wantInlets, ok := want[c.ID]
		if !ok {
			continue
		}
		n, err := c.Netlist()
		if err != nil {
			t.Fatal(err)
		}
		pr, err := planar.Planarize(n)
		if err != nil {
			t.Fatal(err)
		}
		channels := 0
		seen := map[string]bool{}
		for _, g := range pr.Parallel {
			for _, u := range g {
				seen[u] = true
			}
		}
		// Parallel groups share one chain's lines: every group in the
		// corpus is a stack of (sieve mixer -> chamber) chains = 7+2.
		channels += 9 * len(pr.Parallel)
		for _, node := range pr.Nodes {
			switch node.Kind {
			case planar.NodeUnit:
				if !seen[node.Name] {
					channels += module.ControlLineCount(*node.Unit)
				}
			case planar.NodeSwitch:
				channels += node.Junctions
			}
		}
		if got := mux.InletsFor(channels); got != wantInlets {
			t.Errorf("%s: %d channels -> %d inlets, want %d", c.ID, channels, got, wantInlets)
		}
	}
}

func TestNetlistTextIsCanonical(t *testing.T) {
	for _, c := range Table1() {
		if !strings.Contains(c.Source, "design "+c.ID) {
			t.Errorf("%s: source lacks design header", c.ID)
		}
	}
}

func TestChIP64Shape(t *testing.T) {
	n, err := ChIP64().Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Parallel) != 8 {
		t.Fatalf("parallel groups = %d, want 8", len(n.Parallel))
	}
	for gi, g := range n.Parallel {
		if len(g) != 16 { // 8 mixers + 8 chambers per group
			t.Fatalf("group %d size = %d, want 16", gi, len(g))
		}
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatal(err)
	}
	st := pr.Stats()
	if st.Switches != 1 {
		t.Fatalf("switches = %d, want 1 (shared collection switch)", st.Switches)
	}
	if st.Junctions != 66 {
		t.Fatalf("junctions = %d, want 66", st.Junctions)
	}
}

func TestKinase21ParallelVariant(t *testing.T) {
	c := Kinase21Parallel()
	n, err := c.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Parallel) != 1 || len(n.Parallel[0]) != 21 {
		t.Fatalf("parallel = %v", n.Parallel)
	}
	pr, err := planar.Planarize(n)
	if err != nil {
		t.Fatal(err)
	}
	// Shared lanes: one chain's worth of control lines = 5+2+2 = 9
	// channels -> 2*ceil(log2 9)+1 = 9 inlets, far below the independent
	// variant's 13.
	if got := mux.InletsFor(9); got != 9 {
		t.Fatalf("InletsFor(9) = %d", got)
	}
	_ = pr
}
