package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// FormatDuration renders a wall-clock duration at the resolution this
// package uses everywhere a human reads one: sub-millisecond phases keep
// microseconds, sub-second phases keep two decimals of milliseconds, and
// anything longer rounds to milliseconds of seconds. All four commands
// route their timing output through this so reports line up.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// formatCounter renders counter values compactly: integral values without
// a fraction, everything else with three significant digits.
func formatCounter(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// WriteTable renders the trace as a human-readable per-phase table:
//
//	phase                       wall      %  detail
//	planarize                  210µs    0.1
//	layout                   402.1ms   97.2  status=optimal nodes=512 ...
//	  milp round 1           398.2ms   96.3  lp_solves=837 ...
//
// The %% column is each phase's share of the trace's total wall time;
// nested spans indent under their parent and overlap with it, so the
// column does not sum to 100. A nil trace writes nothing.
func (t *Trace) WriteTable(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.wallLocked()
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %6s  %s\n", "phase", "wall", "%", "detail")
	for _, s := range t.spans {
		s.writeRowsLocked(&b, 0, total)
	}
	fmt.Fprintf(&b, "%-28s %10s %6s\n", "total", FormatDuration(total), "100.0")
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary renders the top-level phases as one line — "parse 82µs ·
// layout 447µs · total 948µs" — for commands where the full table is
// overkill but timing output should still come from the shared phase
// recording. Empty on a nil trace.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parts := make([]string, 0, len(t.spans)+1)
	for _, s := range t.spans {
		wall := s.end.Sub(s.start)
		if s.end.IsZero() {
			wall = time.Since(s.start)
		}
		parts = append(parts, s.name+" "+FormatDuration(wall))
	}
	parts = append(parts, "total "+FormatDuration(t.wallLocked()))
	return strings.Join(parts, " · ")
}

func (s *Span) writeRowsLocked(b *strings.Builder, depth int, total time.Duration) {
	wall := s.end.Sub(s.start)
	if s.end.IsZero() {
		wall = time.Since(s.start)
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(wall) / float64(total)
	}
	var detail []string
	for _, k := range s.labelKeysLocked() {
		detail = append(detail, k+"="+s.labels[k])
	}
	for _, k := range s.counterKeysLocked() {
		detail = append(detail, k+"="+formatCounter(s.counters[k]))
	}
	name := strings.Repeat("  ", depth) + s.name
	fmt.Fprintf(b, "%-28s %10s %6.1f  %s\n", name, FormatDuration(wall), pct, strings.Join(detail, " "))
	for _, c := range s.children {
		c.writeRowsLocked(b, depth+1, total)
	}
}
