package obs

import (
	"encoding/json"
	"io"
	"time"
)

// SchemaVersion identifies the trace-JSON document layout. Consumers
// should check it before interpreting the rest of the document; the suffix
// is bumped on any incompatible field change. The full schema is
// documented in docs/metrics.md.
const SchemaVersion = "columbas-trace/v1"

// TraceJSON is the machine-readable snapshot of a Trace — the exact
// document written by `columbas -trace-json` and embedded per run in
// benchtab's -json report. Unmarshalling a trace document into this
// struct and re-marshalling it is lossless (the golden round-trip test in
// obs_test.go pins this).
type TraceJSON struct {
	// Schema is always SchemaVersion for documents this package writes.
	Schema string `json:"schema"`
	// Name identifies the traced run (typically the design name).
	Name string `json:"name"`
	// WallMS is the total wall-clock time of the run in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Spans are the top-level phases in execution order.
	Spans []SpanJSON `json:"spans,omitempty"`
}

// SpanJSON is one phase of a TraceJSON document.
type SpanJSON struct {
	// Name is the phase name (e.g. "layout", "milp round 1").
	Name string `json:"name"`
	// WallMS is the phase's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Counters are the phase's numeric measurements, keyed by the counter
	// names documented in docs/metrics.md.
	Counters map[string]float64 `json:"counters,omitempty"`
	// Labels are string-valued annotations (e.g. "status": "optimal").
	Labels map[string]string `json:"labels,omitempty"`
	// Spans are nested sub-phases in execution order.
	Spans []SpanJSON `json:"spans,omitempty"`
}

// ms converts a duration to milliseconds with microsecond resolution, so
// snapshots are compact and stable to format.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

// Snapshot converts the trace's current state into its JSON schema form.
// Nil traces snapshot to nil.
func (t *Trace) Snapshot() *TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := &TraceJSON{
		Schema: SchemaVersion,
		Name:   t.name,
		WallMS: ms(t.wallLocked()),
	}
	for _, s := range t.spans {
		doc.Spans = append(doc.Spans, s.snapshotLocked())
	}
	return doc
}

func (s *Span) snapshotLocked() SpanJSON {
	wall := s.end.Sub(s.start)
	if s.end.IsZero() {
		wall = time.Since(s.start)
	}
	j := SpanJSON{Name: s.name, WallMS: ms(wall)}
	if len(s.counters) > 0 {
		j.Counters = make(map[string]float64, len(s.counters))
		for k, v := range s.counters {
			j.Counters[k] = v
		}
	}
	if len(s.labels) > 0 {
		j.Labels = make(map[string]string, len(s.labels))
		for k, v := range s.labels {
			j.Labels[k] = v
		}
	}
	for _, c := range s.children {
		j.Spans = append(j.Spans, c.snapshotLocked())
	}
	return j
}

// WriteJSON writes the trace snapshot as indented JSON. A nil trace
// writes "null".
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}
